package hana

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"hana/internal/engine"
	"hana/internal/tpch"
	"hana/internal/value"
)

// The morsel executor promises byte-identical results at any parallelism:
// morsel boundaries depend only on input size and partials merge in morsel
// order, so worker count must never show up in the output. Property-check
// that across the TPC-H query set: every query at parallelism 1 must equal
// the same query at parallelism N, row for row, in order.
func TestParallelExecutionMatchesSerial(t *testing.T) {
	data := tpch.Generate(0.005, 2015)
	schemas := tpch.Schemas()

	newLoaded := func(parallelism int) *engine.Engine {
		e := engine.New(engine.Config{
			ExtendedStorageDir: t.TempDir(),
			Parallelism:        parallelism,
		})
		for name, rows := range data.Tables {
			ddl := fmt.Sprintf("CREATE TABLE %s (", name)
			for i, c := range schemas[name].Cols {
				if i > 0 {
					ddl += ", "
				}
				ddl += c.Name + " " + c.Kind.String()
			}
			ddl += ")"
			if _, err := e.ExecuteContext(context.Background(), ddl); err != nil {
				t.Fatalf("create %s: %v", name, err)
			}
			if err := e.BulkLoad(name, rows); err != nil {
				t.Fatalf("load %s: %v", name, err)
			}
		}
		return e
	}

	serial := newLoaded(1)
	parallel := newLoaded(4)
	ctx := context.Background()

	for _, id := range tpch.QueryIDs() {
		q := tpch.Queries()[id]
		t.Run(fmt.Sprintf("Q%d", id), func(t *testing.T) {
			want, err := serial.ExecuteContext(ctx, q.SQL, engine.WithParallelism(1))
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			got, err := parallel.ExecuteContext(ctx, q.SQL, engine.WithParallelism(4))
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !reflect.DeepEqual(got.Schema, want.Schema) {
				t.Fatalf("schema diverged: %v vs %v", got.Schema, want.Schema)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("row count diverged: parallel %d vs serial %d", len(got.Rows), len(want.Rows))
			}
			for i := range want.Rows {
				if !rowsEqual(got.Rows[i], want.Rows[i]) {
					t.Fatalf("row %d diverged:\nparallel: %v\nserial:   %v", i, got.Rows[i], want.Rows[i])
				}
			}
		})
	}
}

// The vectorized executor promises the same thing against the classic row
// path: batches are cut on the same morsel boundaries the row scan uses and
// late materialization must be invisible in the output. Property-check every
// TPC-H query three ways — serial rows (the pre-vectorization executor,
// pinned via WithRowExec) against batch execution at parallelism 1 and 4 —
// row for row, in order.
func TestVectorizedExecutionMatchesRowSerial(t *testing.T) {
	data := tpch.Generate(0.005, 2015)
	schemas := tpch.Schemas()

	newLoaded := func(parallelism int) *engine.Engine {
		e := engine.New(engine.Config{
			ExtendedStorageDir: t.TempDir(),
			Parallelism:        parallelism,
		})
		for name, rows := range data.Tables {
			ddl := fmt.Sprintf("CREATE TABLE %s (", name)
			for i, c := range schemas[name].Cols {
				if i > 0 {
					ddl += ", "
				}
				ddl += c.Name + " " + c.Kind.String()
			}
			ddl += ")"
			if _, err := e.ExecuteContext(context.Background(), ddl); err != nil {
				t.Fatalf("create %s: %v", name, err)
			}
			if err := e.BulkLoad(name, rows); err != nil {
				t.Fatalf("load %s: %v", name, err)
			}
		}
		return e
	}

	serial := newLoaded(1)
	parallel := newLoaded(4)
	ctx := context.Background()

	for _, id := range tpch.QueryIDs() {
		q := tpch.Queries()[id]
		t.Run(fmt.Sprintf("Q%d", id), func(t *testing.T) {
			want, err := serial.ExecuteContext(ctx, q.SQL,
				engine.WithParallelism(1), engine.WithRowExec())
			if err != nil {
				t.Fatalf("serial rows: %v", err)
			}
			for _, width := range []int{1, 4} {
				e := serial
				if width > 1 {
					e = parallel
				}
				got, err := e.ExecuteContext(ctx, q.SQL, engine.WithParallelism(width))
				if err != nil {
					t.Fatalf("vectorized width %d: %v", width, err)
				}
				if !reflect.DeepEqual(got.Schema, want.Schema) {
					t.Fatalf("width %d: schema diverged: %v vs %v", width, got.Schema, want.Schema)
				}
				if len(got.Rows) != len(want.Rows) {
					t.Fatalf("width %d: row count diverged: vectorized %d vs row-serial %d",
						width, len(got.Rows), len(want.Rows))
				}
				for i := range want.Rows {
					if !rowsEqual(got.Rows[i], want.Rows[i]) {
						t.Fatalf("width %d: row %d diverged:\nvectorized: %v\nrow-serial: %v",
							width, i, got.Rows[i], want.Rows[i])
					}
				}
			}
		})
	}
}

func rowsEqual(a, b value.Row) bool {
	return reflect.DeepEqual(a, b)
}
