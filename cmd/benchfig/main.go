// Command benchfig regenerates the paper's figures as text tables.
//
//	benchfig -fig 2             time-series compression (Figure 2)
//	benchfig -fig 7             federated strategy demonstration (Figure 7)
//	benchfig -fig 14            remote materialization benefit (Figure 14)
//	benchfig -fig 15            materialization overhead (Figure 15)
//	benchfig -fig all           everything
//
// Flags -sf and -jobstartup scale the federated TPC-H experiment; the
// paper used SF 1 on a real 7-node cluster, this reproduction defaults to
// SF 0.05 on the in-process simulation.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hana/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2, 7, 14, 15, all")
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor for fig 14/15")
	jobStartup := flag.Duration("jobstartup", 15*time.Millisecond,
		"simulated map-reduce job submission overhead")
	points := flag.Int("points", 1<<20, "points for the fig 2 series")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "fig %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("2", func() error {
		r, err := bench.RunFig2(*points)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig2(r))
		return nil
	})

	run("7", func() error {
		dir, err := os.MkdirTemp("", "hana-fig7-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		r, err := bench.RunFig7(dir, 200000)
		if err != nil {
			return err
		}
		fmt.Println("Figure 7 — Federated query processing strategies")
		fmt.Println("Query: SELECT d_name, SUM(f_val) FROM dim, fact WHERE d_key = f_key AND d_name = 'dim-0042' GROUP BY d_name")
		fmt.Println("(dim: 1000 rows in-memory; fact: 200000 rows in extended storage)")
		fmt.Println()
		fmt.Print(r.Plan)
		fmt.Printf("\nsemijoin strategies chosen: %d, extended-store chunks skipped: %d, result: %.0f\n",
			r.SemiJoinsChosen, r.ChunksSkipped, r.Result)
		return nil
	})

	var figRows []bench.Fig14Row
	runFederation := func() error {
		if figRows != nil {
			return nil
		}
		dir, err := os.MkdirTemp("", "hana-fig14-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		fmt.Fprintf(os.Stderr, "setting up federated TPC-H at SF %.3f (job startup %v)...\n", *sf, *jobStartup)
		fed, err := bench.SetupFederation(bench.FederationConfig{
			SF: *sf, JobStartup: *jobStartup, ExtDir: dir,
		})
		if err != nil {
			return err
		}
		defer fed.Close()
		fmt.Fprintf(os.Stderr, "running the 12 queries (normal / materializing / cached)...\n")
		figRows, err = fed.RunFig14()
		return err
	}

	run("14", func() error {
		if err := runFederation(); err != nil {
			return err
		}
		fmt.Print(bench.FormatFig14(figRows))
		return nil
	})
	run("15", func() error {
		if err := runFederation(); err != nil {
			return err
		}
		fmt.Print(bench.FormatFig15(figRows))
		return nil
	})
}
