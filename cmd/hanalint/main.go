// Command hanalint runs the project's static-analysis suite (internal/lint)
// over the repository and prints file:line:col diagnostics. It exits 0 when
// clean, 1 on findings, and 2 on load/usage errors.
//
// Usage:
//
//	go run ./cmd/hanalint ./...            # whole repo
//	go run ./cmd/hanalint ./internal/esp   # one package
//	go run ./cmd/hanalint -list            # list analyzers
//	go run ./cmd/hanalint -lockgraph       # lock-order graph as DOT
//
// Deliberate violations are suppressed in source with
// //lint:ignore <analyzer> <reason> on the offending line or the line
// above. The suite is stdlib-only: go/ast, go/parser, go/token.
package main

import (
	"flag"
	"fmt"
	"os"

	"hana/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	root := flag.String("root", "", "module root (default: nearest dir with go.mod)")
	lockgraph := flag.Bool("lockgraph", false, "dump the global lock-order graph as DOT and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hanalint [-list] [-lockgraph] [-root dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hanalint:", err)
			os.Exit(2)
		}
	}

	pkgs, err := lint.Load(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanalint:", err)
		os.Exit(2)
	}
	if *lockgraph {
		fmt.Print(lint.LockGraphDOT(lint.BuildProgram(pkgs)))
		return
	}
	module, err := lint.ModulePath(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanalint:", err)
		os.Exit(2)
	}
	selected := lint.Filter(pkgs, module, flag.Args())
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "hanalint: no packages match", flag.Args())
		os.Exit(2)
	}

	// Analyzers always see the full repo for cross-package facts; only the
	// reporting set is filtered.
	diags := lint.Run(pkgs, analyzers)
	shown := 0
	for _, d := range diags {
		if _, ok := selected[pkgOf(pkgs, d.Pos.Filename)]; !ok && len(flag.Args()) > 0 {
			continue
		}
		fmt.Println(d)
		shown++
	}
	if shown > 0 {
		fmt.Fprintf(os.Stderr, "hanalint: %d finding(s)\n", shown)
		os.Exit(1)
	}
}

// pkgOf maps a diagnostic filename back to its package's import path.
func pkgOf(pkgs map[string]*lint.Package, filename string) string {
	for path, p := range pkgs {
		for _, f := range p.Files {
			if p.Fset.Position(f.Pos()).Filename == filename {
				return path
			}
		}
	}
	return ""
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:max(0, lastSlash(dir))]
		if parent == "" || parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == '\\' {
			return i
		}
	}
	return -1
}
