// Command hanalint runs the project's static-analysis suite (internal/lint)
// over the repository and prints file:line:col diagnostics. It exits 0 when
// clean, 1 on findings, and 2 on load/usage errors.
//
// Usage:
//
//	go run ./cmd/hanalint ./...            # whole repo
//	go run ./cmd/hanalint ./internal/esp   # one package
//	go run ./cmd/hanalint -list            # list analyzers
//	go run ./cmd/hanalint -lockgraph       # lock-order graph as DOT
//	go run ./cmd/hanalint -analyzers hotalloc,deferhot ./...
//	go run ./cmd/hanalint -hot             # hot-function set + call chains
//	go run ./cmd/hanalint -escapes         # diff hot-path heap escapes vs baseline
//	go run ./cmd/hanalint -write-escapes   # regenerate the escape baseline
//
// Deliberate violations are suppressed in source with
// //lint:ignore <analyzer> <reason> on the offending line or the line
// above. The suite is stdlib-only: go/ast, go/parser, go/token (the
// -escapes mode additionally shells out to the Go compiler for -m output).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hana/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	root := flag.String("root", "", "module root (default: nearest dir with go.mod)")
	lockgraph := flag.Bool("lockgraph", false, "dump the global lock-order graph as DOT and exit")
	only := flag.String("analyzers", "", "comma-separated analyzer subset to run (default: all)")
	hot := flag.Bool("hot", false, "print the derived hot-function set with call chains and exit")
	escapes := flag.Bool("escapes", false, "diff hot-path heap escapes against internal/lint/escapes_baseline.txt")
	writeEscapes := flag.Bool("write-escapes", false, "regenerate the escape baseline from the current tree")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hanalint [-list] [-lockgraph] [-hot] [-escapes] [-write-escapes] [-analyzers a,b] [-root dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var subset []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := byName[name]
			if a == nil {
				fmt.Fprintf(os.Stderr, "hanalint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			subset = append(subset, a)
		}
		analyzers = subset
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hanalint:", err)
			os.Exit(2)
		}
	}

	pkgs, err := lint.Load(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanalint:", err)
		os.Exit(2)
	}
	if *lockgraph {
		fmt.Print(lint.LockGraphDOT(lint.BuildProgram(pkgs)))
		return
	}
	if *hot {
		printHotSet(lint.BuildProgram(pkgs))
		return
	}
	if *escapes || *writeEscapes {
		os.Exit(runEscapes(dir, lint.BuildProgram(pkgs), *writeEscapes))
	}
	module, err := lint.ModulePath(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanalint:", err)
		os.Exit(2)
	}
	selected := lint.Filter(pkgs, module, flag.Args())
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "hanalint: no packages match", flag.Args())
		os.Exit(2)
	}

	// Analyzers always see the full repo for cross-package facts; only the
	// reporting set is filtered.
	diags := lint.Run(pkgs, analyzers)
	shown := 0
	for _, d := range diags {
		if _, ok := selected[pkgOf(pkgs, d.Pos.Filename)]; !ok && len(flag.Args()) > 0 {
			continue
		}
		fmt.Println(d)
		shown++
	}
	if shown > 0 {
		fmt.Fprintf(os.Stderr, "hanalint: %d finding(s)\n", shown)
		os.Exit(1)
	}
}

// printHotSet lists every hot function and the call chain that makes it
// hot, plus any seed-list entries that no longer resolve.
func printHotSet(prog *lint.Program) {
	hot := prog.HotFuncs()
	keys := make([]string, 0, len(hot))
	for k := range hot {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if hot[k] == "" {
			fmt.Printf("%-55s root\n", k)
		} else {
			fmt.Printf("%-55s via %s\n", k, hot[k])
		}
	}
	for _, r := range prog.UnmatchedHotRoots() {
		fmt.Fprintf(os.Stderr, "hanalint: hot root matches no function: %s\n", r)
	}
}

// runEscapes implements -escapes / -write-escapes and returns the exit
// code: new hot-path escapes fail, stale baseline entries only warn.
func runEscapes(dir string, prog *lint.Program, write bool) int {
	sites, err := lint.EscapeSites(dir, prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanalint:", err)
		return 2
	}
	baselinePath := filepath.Join(dir, "internal", "lint", "escapes_baseline.txt")
	if write {
		if err := lint.WriteEscapeBaseline(baselinePath, sites); err != nil {
			fmt.Fprintln(os.Stderr, "hanalint:", err)
			return 2
		}
		fmt.Printf("hanalint: wrote %d hot-path escape site(s) to %s\n", len(sites), baselinePath)
		return 0
	}
	baseline, err := lint.ReadEscapeBaseline(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanalint:", err)
		return 2
	}
	newSites, stale := lint.DiffEscapes(sites, baseline)
	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "hanalint: stale escape baseline entry (no longer reported): %s\n", s)
	}
	if len(newSites) > 0 {
		for _, s := range newSites {
			fmt.Printf("%s: new heap escape in hot function %s: %s\n", s.File, s.Func, s.Msg)
		}
		fmt.Fprintf(os.Stderr, "hanalint: %d new hot-path escape(s); fix them or update %s via -write-escapes\n",
			len(newSites), baselinePath)
		return 1
	}
	fmt.Printf("hanalint: %d hot-path escape site(s), all baselined\n", len(sites))
	return 0
}

// pkgOf maps a diagnostic filename back to its package's import path.
func pkgOf(pkgs map[string]*lint.Package, filename string) string {
	for path, p := range pkgs {
		for _, f := range p.Files {
			if p.Fset.Position(f.Pos()).Filename == filename {
				return path
			}
		}
	}
	return ""
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:max(0, lastSlash(dir))]
		if parent == "" || parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == '\\' {
			return i
		}
	}
	return -1
}
