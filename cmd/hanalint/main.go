// Command hanalint runs the project's static-analysis suite (internal/lint)
// over the repository and prints file:line:col diagnostics. It exits 0 when
// clean, 1 on findings, and 2 on load/usage errors.
//
// Usage:
//
//	go run ./cmd/hanalint ./...            # whole repo
//	go run ./cmd/hanalint ./internal/esp   # one package
//	go run ./cmd/hanalint -list            # list analyzers
//	go run ./cmd/hanalint -lockgraph       # lock-order graph as DOT
//	go run ./cmd/hanalint -analyzers hotalloc,deferhot ./...
//	go run ./cmd/hanalint -hot             # hot-function set + call chains
//	go run ./cmd/hanalint -escapes         # diff hot-path heap escapes vs baseline
//	go run ./cmd/hanalint -write-escapes   # regenerate the escape baseline
//	go run ./cmd/hanalint -prune-escapes   # drop stale baseline entries, keep the rest
//	go run ./cmd/hanalint -suggest-guards  # advisory // hana:guardedby candidates
//	go run ./cmd/hanalint -json ./...      # findings as a JSON array (CI artifact)
//
// Deliberate violations are suppressed in source with
// //lint:ignore <analyzer> <reason> on the offending line or the line
// above. The suite is stdlib-only: go/ast, go/parser, go/token (the
// -escapes mode additionally shells out to the Go compiler for -m output).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hana/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	root := flag.String("root", "", "module root (default: nearest dir with go.mod)")
	lockgraph := flag.Bool("lockgraph", false, "dump the global lock-order graph as DOT and exit")
	only := flag.String("analyzers", "", "comma-separated analyzer subset to run (default: all)")
	hot := flag.Bool("hot", false, "print the derived hot-function set with call chains and exit")
	escapes := flag.Bool("escapes", false, "diff hot-path heap escapes against internal/lint/escapes_baseline.txt")
	writeEscapes := flag.Bool("write-escapes", false, "regenerate the escape baseline from the current tree")
	pruneEscapes := flag.Bool("prune-escapes", false, "remove stale entries from the escape baseline, keeping live ones")
	suggestGuards := flag.Bool("suggest-guards", false, "print advisory // hana:guardedby candidates for unannotated shared fields")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hanalint [-list] [-lockgraph] [-hot] [-escapes] [-write-escapes] [-prune-escapes] [-suggest-guards] [-json] [-analyzers a,b] [-root dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var subset []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := byName[name]
			if a == nil {
				fmt.Fprintf(os.Stderr, "hanalint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			subset = append(subset, a)
		}
		analyzers = subset
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hanalint:", err)
			os.Exit(2)
		}
	}

	pkgs, err := lint.Load(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanalint:", err)
		os.Exit(2)
	}
	if *lockgraph {
		fmt.Print(lint.LockGraphDOT(lint.BuildProgram(pkgs)))
		return
	}
	if *hot {
		printHotSet(lint.BuildProgram(pkgs))
		return
	}
	if *escapes || *writeEscapes || *pruneEscapes {
		os.Exit(runEscapes(dir, lint.BuildProgram(pkgs), *writeEscapes, *pruneEscapes))
	}
	if *suggestGuards {
		prog := lint.BuildProgram(pkgs)
		for _, s := range lint.SuggestGuards(prog) {
			guardField := s.Guard
			if i := strings.LastIndex(guardField, "."); i >= 0 {
				guardField = guardField[i+1:]
			}
			fmt.Printf("%s:%d: field %s.%s looks shared (%d locked write(s), %d bare access(es) under %s); consider // hana:guardedby %s\n",
				s.Pos.Filename, s.Pos.Line, s.Owner.Name, s.Field, s.Locked, s.Unlocked, s.Guard, guardField)
		}
		return
	}
	module, err := lint.ModulePath(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanalint:", err)
		os.Exit(2)
	}
	selected := lint.Filter(pkgs, module, flag.Args())
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "hanalint: no packages match", flag.Args())
		os.Exit(2)
	}

	// Analyzers always see the full repo for cross-package facts; only the
	// reporting set is filtered.
	diags := lint.Run(pkgs, analyzers)
	var out []lint.Diagnostic
	for _, d := range diags {
		if _, ok := selected[pkgOf(pkgs, d.Pos.Filename)]; !ok && len(flag.Args()) > 0 {
			continue
		}
		out = append(out, d)
	}
	if *jsonOut {
		printJSON(out)
	} else {
		for _, d := range out {
			fmt.Println(d)
		}
	}
	if len(out) > 0 {
		fmt.Fprintf(os.Stderr, "hanalint: %d finding(s)\n", len(out))
		os.Exit(1)
	}
}

// jsonFinding is the machine-readable diagnostic shape uploaded as a CI
// artifact. Kept flat and stable: downstream tooling diffs runs by it.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(diags []lint.Diagnostic) {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(findings); err != nil {
		fmt.Fprintln(os.Stderr, "hanalint:", err)
		os.Exit(2)
	}
}

// printHotSet lists every hot function and the call chain that makes it
// hot, plus any seed-list entries that no longer resolve.
func printHotSet(prog *lint.Program) {
	hot := prog.HotFuncs()
	keys := make([]string, 0, len(hot))
	for k := range hot {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if hot[k] == "" {
			fmt.Printf("%-55s root\n", k)
		} else {
			fmt.Printf("%-55s via %s\n", k, hot[k])
		}
	}
	for _, r := range prog.UnmatchedHotRoots() {
		fmt.Fprintf(os.Stderr, "hanalint: hot root matches no function: %s\n", r)
	}
}

// runEscapes implements -escapes / -write-escapes / -prune-escapes and
// returns the exit code. The gate fails on new hot-path escapes AND on
// stale baseline entries: a dead entry means the baseline over-claims, and
// would silently re-admit that escape if it came back.
func runEscapes(dir string, prog *lint.Program, write, prune bool) int {
	sites, err := lint.EscapeSites(dir, prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanalint:", err)
		return 2
	}
	baselinePath := filepath.Join(dir, "internal", "lint", "escapes_baseline.txt")
	if write {
		if err := lint.WriteEscapeBaseline(baselinePath, sites); err != nil {
			fmt.Fprintln(os.Stderr, "hanalint:", err)
			return 2
		}
		fmt.Printf("hanalint: wrote %d hot-path escape site(s) to %s\n", len(sites), baselinePath)
		return 0
	}
	if prune {
		removed, err := lint.PruneEscapeBaseline(baselinePath, sites)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hanalint:", err)
			return 2
		}
		for _, s := range removed {
			fmt.Printf("hanalint: pruned stale escape baseline entry: %s\n", s)
		}
		fmt.Printf("hanalint: pruned %d stale entr(ies) from %s\n", len(removed), baselinePath)
		return 0
	}
	baseline, err := lint.ReadEscapeBaseline(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanalint:", err)
		return 2
	}
	newSites, stale := lint.DiffEscapes(sites, baseline)
	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "hanalint: stale escape baseline entry (no longer reported): %s\n", s)
	}
	if len(newSites) > 0 {
		for _, s := range newSites {
			fmt.Printf("%s: new heap escape in hot function %s: %s\n", s.File, s.Func, s.Msg)
		}
		fmt.Fprintf(os.Stderr, "hanalint: %d new hot-path escape(s); fix them or update %s via -write-escapes\n",
			len(newSites), baselinePath)
		return 1
	}
	if len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "hanalint: %d stale baseline entr(ies); run -prune-escapes to drop them\n", len(stale))
		return 1
	}
	fmt.Printf("hanalint: %d hot-path escape site(s), all baselined\n", len(sites))
	return 0
}

// pkgOf maps a diagnostic filename back to its package's import path.
func pkgOf(pkgs map[string]*lint.Package, filename string) string {
	for path, p := range pkgs {
		for _, f := range p.Files {
			if p.Fset.Position(f.Pos()).Filename == filename {
				return path
			}
		}
	}
	return ""
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:max(0, lastSlash(dir))]
		if parent == "" || parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == '\\' {
			return i
		}
	}
	return -1
}
