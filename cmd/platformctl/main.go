// Command platformctl administers a data platform landscape: deploy and
// transport artifacts between tiers, run coordinated backups and restores,
// and show status — the command-line stand-in for the paper's "single
// administration interface and consistent coordination of administrative
// tasks of all participating platform components".
//
// The tool operates on a self-contained demo landscape under -base and
// accepts subcommands:
//
//	platformctl -base DIR status
//	platformctl -base DIR demo            # deploy a demo app DEV→TEST→PROD
//	platformctl -base DIR backup  TIER OUTDIR
//	platformctl -base DIR restore TIER INDIR
//	platformctl -base DIR trace SQL...    # run SQL on DEV and print its query trace
//	platformctl wal dump|fsck DIR|WALFILE # inspect a durable engine's WAL offline
//	platformctl wal savepoint DIR         # show the active savepoint
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"hana/internal/platform"
)

func main() {
	base := flag.String("base", "./platform-data", "landscape base directory")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	p := platform.New(*base)
	p.Users().AddUser("admin", "admin", platform.RoleAdmin)

	var err error
	switch args[0] {
	case "status":
		err = status(p)
	case "demo":
		err = demo(p)
	case "backup":
		if len(args) != 3 {
			usage()
		}
		err = p.BackupCtx(context.Background(), platform.Tier(args[1]), args[2])
		if err == nil {
			fmt.Printf("backup of %s written to %s\n", args[1], args[2])
		}
	case "restore":
		if len(args) != 3 {
			usage()
		}
		err = p.RestoreCtx(context.Background(), platform.Tier(args[1]), args[2])
		if err == nil {
			fmt.Printf("restored %s from %s\n", args[1], args[2])
		}
	case "trace":
		if len(args) < 2 {
			usage()
		}
		err = trace(p, strings.Join(args[1:], " "))
	case "wal":
		err = walCmd(args[1:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: platformctl [-base DIR] status|demo|backup TIER OUT|restore TIER IN|trace SQL...|wal dump|fsck|savepoint PATH")
	os.Exit(2)
}

func status(p *platform.Platform) error {
	fmt.Println("landscape tiers: DEV, TEST, PROD")
	fmt.Println("repository artifacts:")
	for _, a := range p.Artifacts() {
		fmt.Printf("  %-20s %-8s v%d\n", a.Name, a.Kind, a.Version)
		for _, tier := range []platform.Tier{platform.TierDev, platform.TierTest, platform.TierProd} {
			if v := p.DeployedVersion(tier, a.Name); v > 0 {
				fmt.Printf("    deployed on %-4s at v%d\n", tier, v)
			}
		}
	}
	return nil
}

// saveDemoArtifacts stores the demo application in the repository: schema
// + seed content, ready to promote through the landscape.
func saveDemoArtifacts(p *platform.Platform) {
	p.SaveArtifact("demo-schema", platform.ArtifactDDL, `
		CREATE TABLE meters (meter_id BIGINT, region VARCHAR(10), kwh DOUBLE);
		CREATE TABLE meter_archive (meter_id BIGINT, region VARCHAR(10), kwh DOUBLE) USING EXTENDED STORAGE`)
	p.SaveArtifact("demo-content", platform.ArtifactScript, `
		INSERT INTO meters VALUES (1,'NORTH',12.5), (2,'SOUTH',8.25), (3,'NORTH',31.0)`)
}

// trace runs one statement on the DEV system and prints its recorded query
// trace: the span timeline with durations, strategy decisions and notes.
// The demo application is deployed to DEV first if nothing is there, so the
// command works standalone.
func trace(p *platform.Platform, sql string) error {
	if p.DeployedVersion(platform.TierDev, "demo-schema") == 0 {
		saveDemoArtifacts(p)
		if err := p.DeployCtx(context.Background(), platform.TierDev, "demo-schema", "demo-content"); err != nil {
			return err
		}
	}
	sys, err := p.System(platform.TierDev)
	if err != nil {
		return err
	}
	res, err := sys.Engine.ExecuteContext(context.Background(), sql)
	if err != nil {
		return err
	}
	fmt.Printf("%d row(s)\n", len(res.Rows))
	traces := sys.Engine.Traces().Snapshot()
	if len(traces) == 0 {
		return fmt.Errorf("no trace recorded")
	}
	tr := traces[len(traces)-1]
	fmt.Printf("trace %d: %s\n", tr.ID(), tr.Statement())
	fmt.Print(tr.Timeline())
	return nil
}

func demo(p *platform.Platform) error {
	saveDemoArtifacts(p)

	for _, step := range []struct {
		from, to platform.Tier
	}{{from: "", to: platform.TierDev}, {from: platform.TierDev, to: platform.TierTest}, {from: platform.TierTest, to: platform.TierProd}} {
		var err error
		if step.from == "" {
			err = p.DeployCtx(context.Background(), step.to, "demo-schema", "demo-content")
		} else {
			err = p.TransportCtx(context.Background(), step.from, step.to)
		}
		if err != nil {
			return err
		}
		sys, _ := p.System(step.to)
		res, err := sys.Engine.ExecuteContext(context.Background(), `SELECT region, SUM(kwh) FROM meters GROUP BY region ORDER BY region`)
		if err != nil {
			return err
		}
		fmt.Printf("%s: demo app deployed; meters by region:\n", step.to)
		for _, row := range res.Rows {
			fmt.Printf("  %-6s %8.2f kWh\n", row[0].String(), row[1].Float())
		}
	}
	return status(p)
}
