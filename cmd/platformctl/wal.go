package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hana/internal/engine"
	"hana/internal/txn"
)

// wal administers a durable engine's write-ahead log offline:
//
//	platformctl wal dump DIR|WALFILE       # print every record, decoded
//	platformctl wal fsck DIR|WALFILE       # verify framing; report torn tails
//	platformctl wal savepoint DIR          # show the active savepoint
//
// DIR is an engine data directory (as used by engine.Open); a bare file
// path is treated as the WAL itself. Everything is read-only: fsck reports
// a torn tail, it does not repair it — the repair happens on the next
// engine.Open.
func walCmd(args []string) error {
	if len(args) < 2 {
		usage()
	}
	verb, target := args[0], args[1]
	walPath := target
	if st, err := os.Stat(target); err == nil && st.IsDir() {
		walPath = filepath.Join(target, "wal.log")
	}
	switch verb {
	case "dump":
		return walDump(walPath)
	case "fsck":
		return walFsck(walPath)
	case "savepoint":
		return walSavepoint(target)
	}
	usage()
	return nil
}

func walDump(path string) error {
	n := 0
	stats, err := txn.ScanFile(path, func(r txn.Record) error {
		n++
		note := ""
		switch {
		case r.Type == txn.RecData:
			note = "  " + engine.FormatRedoNote(r.Note)
		case r.Note != "":
			note = "  " + r.Note
		}
		fmt.Printf("%8d  %-8s tid=%-6d cid=%-6d%s\n", r.LSN, r.Type, r.TID, r.CID, note)
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d record(s), last LSN %d\n", n, stats.LastLSN)
	if stats.TornTail {
		fmt.Printf("torn tail at offset %d: %s (next engine open truncates it)\n", stats.TornOff, stats.Reason)
	}
	return nil
}

func walFsck(path string) error {
	var commits, aborts, data int
	stats, err := txn.ScanFile(path, func(r txn.Record) error {
		switch r.Type {
		case txn.RecCommit:
			commits++
		case txn.RecAbort:
			aborts++
		case txn.RecData:
			data++
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d record(s), last LSN %d (%d commit, %d abort, %d redo)\n",
		path, stats.Records, stats.LastLSN, commits, aborts, data)
	if stats.TornTail {
		fmt.Printf("TORN TAIL at offset %d: %s\n", stats.TornOff, stats.Reason)
		fmt.Println("the log is recoverable: replay stops at the tear and the next engine open truncates it")
		return nil
	}
	fmt.Println("clean: every record framed and checksummed")
	return nil
}

func walSavepoint(dir string) error {
	cur, err := os.ReadFile(filepath.Join(dir, "CURRENT"))
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Println("no savepoint: recovery replays the WAL from the beginning")
			return nil
		}
		return err
	}
	name := strings.TrimSpace(string(cur))
	data, err := os.ReadFile(filepath.Join(dir, name, "manifest.json"))
	if err != nil {
		return fmt.Errorf("CURRENT points at %s but its manifest is unreadable: %w", name, err)
	}
	var m struct {
		LSN     uint64 `json:"lsn"`
		NextTID uint64 `json:"next_tid"`
		LastCID uint64 `json:"last_cid"`
		Tables  []any  `json:"tables"`
		Branch  []any  `json:"in_doubt"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	fmt.Printf("savepoint %s\n", name)
	fmt.Printf("  consistent at LSN %d (recovery replays only the WAL suffix past it)\n", m.LSN)
	fmt.Printf("  watermarks: next tid %d, last cid %d\n", m.NextTID, m.LastCID)
	fmt.Printf("  %d table(s), %d in-doubt branch(es)\n", len(m.Tables), len(m.Branch))
	return nil
}
