// Command benchpar measures the morsel executor: every workload in
// bench.ParallelWorkloads at parallelism 1 vs N over an all-local TPC-H
// fixture, written as JSON (BENCH_parallel.json in CI). Alongside wall
// clock it reports allocs/op and bytes/op so the perf trajectory tracks
// allocation pressure, not just latency.
//
//	benchpar -sf 0.02 -workers 4 -iters 3 -out BENCH_parallel.json
//	benchpar -sf 0.02 -workers 4 -iters 5 -hotpath BENCH_hotpath.json \
//	    -hotpath-before old_hotpath.json
//	benchpar -sf 0.1 -workers 4 -iters 3 -vector BENCH_vector.json
//	benchpar -sf 0.1 -workers 4 -iters 3 -dist BENCH_dist.json
//
// -vector writes the row-vs-vectorized executor comparison: every workload
// through the classic row path (engine.WithRowExec) and the default batch
// path at the same parallelism, with ns/op, allocs/op, and bytes/op.
//
// -dist writes the scale-out comparison: every workload on a sharded
// coordinator/worker fleet at 1, 2 and 4 shards against the same query
// pinned local (engine.WithLocalOnly) on the same engine, so the measured
// delta is exactly the exchange.
//
// -hotpath writes the allocation-focused report (ns/op, allocs/op,
// bytes/op per workload); -hotpath-before embeds a previously captured
// report's measurements as the "before" half, making the output a
// self-contained before/after comparison.
//
// Speedup is wall-clock serial/parallel; it only exceeds 1 when
// GOMAXPROCS > 1 (the report records num_cpu and gomaxprocs so a 1.0x
// result on a single-core runner is self-explaining).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hana/internal/bench"
)

func main() {
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor")
	workers := flag.Int("workers", 4, "parallel worker count")
	iters := flag.Int("iters", 3, "runs per measurement (best is kept)")
	out := flag.String("out", "", "write parallel JSON report here (default stdout)")
	hotpath := flag.String("hotpath", "", "write allocation (hotpath) JSON report here")
	hotBefore := flag.String("hotpath-before", "", "embed this prior hotpath report as the before half")
	vector := flag.String("vector", "", "write the row-vs-vectorized executor JSON report here")
	distOut := flag.String("dist", "", "write the sharded scale-out JSON report here")
	flag.Parse()

	if *distOut != "" {
		rep, err := bench.RunDistBench(*sf, 2015, *workers, *iters, []int{1, 2, 4})
		if err != nil {
			fatal(err)
		}
		if err := writeJSON(*distOut, rep); err != nil {
			fatal(err)
		}
		for _, r := range rep.Results {
			fmt.Printf("%-6s shards=%d %10.2fms local  %10.2fms dist  ratio %.2fx  %d rows\n",
				r.Workload, r.Shards, r.LocalMS, r.DistMS, r.Speedup, r.Rows)
		}
		return
	}

	dir, err := os.MkdirTemp("", "benchpar")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	e, err := bench.SetupLocalTPCH(*sf, 2015, dir, *workers)
	if err != nil {
		fatal(err)
	}

	if *vector != "" {
		rep, err := bench.RunVectorBench(e, *sf, *workers, *iters)
		if err != nil {
			fatal(err)
		}
		if err := writeJSON(*vector, rep); err != nil {
			fatal(err)
		}
		for _, r := range rep.Results {
			fmt.Printf("%-6s %10.2fms rows  %10.2fms vector  speedup %.2fx  allocs %d -> %d\n",
				r.Workload, r.RowNSOp/1e6, r.VectorNSOp/1e6, r.Speedup, r.RowAllocs, r.VectorAllocs)
		}
		return
	}

	if *hotpath != "" {
		rep, err := bench.RunHotpathBench(e, *sf, *workers, *iters)
		if err != nil {
			fatal(err)
		}
		if *hotBefore != "" {
			prev, err := os.ReadFile(*hotBefore)
			if err != nil {
				fatal(err)
			}
			var old bench.HotpathReport
			if err := json.Unmarshal(prev, &old); err != nil {
				fatal(fmt.Errorf("parse %s: %w", *hotBefore, err))
			}
			rep.Before = old.After
		}
		if err := writeJSON(*hotpath, rep); err != nil {
			fatal(err)
		}
		for _, r := range rep.After {
			fmt.Printf("%-6s %10.2fms  %9d allocs/op  %11d B/op  %7.1f allocs/row\n",
				r.Workload, r.NSPerOp/1e6, r.AllocsPerOp, r.BytesPerOp, r.AllocsRow)
		}
		return
	}

	rep, err := bench.RunParallelBench(e, *sf, *workers, *iters)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		os.Stdout.Write(data)
		return
	}
	if err := writeJSON(*out, rep); err != nil {
		fatal(err)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-6s %8.2fms serial  %8.2fms x%d  speedup %.2fx  %d allocs/op serial\n",
			r.Workload, r.SerialMS, r.ParallelMS, r.Workers, r.Speedup, r.SerialAllocs)
	}
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpar:", err)
	os.Exit(1)
}
