// Command benchpar measures the morsel executor: every workload in
// bench.ParallelWorkloads at parallelism 1 vs N over an all-local TPC-H
// fixture, written as JSON (BENCH_parallel.json in CI).
//
//	benchpar -sf 0.02 -workers 4 -iters 3 -out BENCH_parallel.json
//
// Speedup is wall-clock serial/parallel; it only exceeds 1 when
// GOMAXPROCS > 1 (the report records num_cpu and gomaxprocs so a 1.0x
// result on a single-core runner is self-explaining).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hana/internal/bench"
)

func main() {
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor")
	workers := flag.Int("workers", 4, "parallel worker count")
	iters := flag.Int("iters", 3, "runs per measurement (best is kept)")
	out := flag.String("out", "", "write JSON report here (default stdout)")
	flag.Parse()

	dir, err := os.MkdirTemp("", "benchpar")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	e, err := bench.SetupLocalTPCH(*sf, 2015, dir, *workers)
	if err != nil {
		fatal(err)
	}
	rep, err := bench.RunParallelBench(e, *sf, *workers, *iters)
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-6s %8.2fms serial  %8.2fms x%d  speedup %.2fx\n",
			r.Workload, r.SerialMS, r.ParallelMS, r.Workers, r.Speedup)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpar:", err)
	os.Exit(1)
}
