// Command hanasql is an interactive SQL shell against a platform engine
// instance — the stand-in for the SAP HANA Studio SQL console. Statements
// are read from stdin (or a script file with -f), executed, and results
// printed as aligned tables. EXPLAIN <select> prints the federated plan.
//
// Usage:
//
//	hanasql [-ext DIR] [-shards N] [-f script.sql]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"hana/internal/dist"
	"hana/internal/engine"
	"hana/internal/hive"
	"hana/internal/value"
)

func main() {
	extDir := flag.String("ext", "", "extended storage directory (default: temp)")
	shards := flag.Int("shards", 0, "run sharded across N in-process workers (0 = single-node)")
	script := flag.String("f", "", "execute a script file and exit")
	flag.Parse()

	e := engine.New(engine.Config{
		ExtendedStorageDir: *extDir,
		EnableRemoteCache:  true,
		Topology:           dist.Topology{Shards: *shards},
	})
	e.Registry().Register("hiveodbc", hive.NewAdapterFactory())
	e.Registry().Register("hadoop", hive.NewHadoopAdapterFactory())

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := runStatements(e, string(data)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("hanasql — type SQL statements terminated by ';', or \\q to quit")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("sql> ")
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == `\q` {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			if err := runStatements(e, buf.String()); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			buf.Reset()
		}
		fmt.Print("sql> ")
	}
}

func runStatements(e *engine.Engine, sql string) error {
	for _, stmt := range splitStatements(sql) {
		res, err := e.ExecuteContext(context.Background(), stmt)
		if err != nil {
			return err
		}
		printResult(os.Stdout, res)
	}
	return nil
}

// splitStatements separates on semicolons outside string literals.
func splitStatements(sql string) []string {
	var out []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		if c == '\'' {
			inStr = !inStr
		}
		if c == ';' && !inStr {
			if s := strings.TrimSpace(cur.String()); s != "" {
				out = append(out, s)
			}
			cur.Reset()
			continue
		}
		cur.WriteByte(c)
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		out = append(out, s)
	}
	return out
}

func printResult(w *os.File, res *engine.Result) {
	if res.Plan != "" && res.Schema == nil && len(res.Rows) == 0 && res.Message == "explained" {
		fmt.Fprintln(w, res.Plan)
		return
	}
	if res.Schema == nil || res.Schema.Len() == 0 {
		if res.Message != "" {
			fmt.Fprintln(w, res.Message)
		} else {
			fmt.Fprintf(w, "%d row(s) affected\n", res.Affected)
		}
		return
	}
	names := res.Schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			s := renderCell(v)
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	line := func(parts []string) {
		for i, p := range parts {
			fmt.Fprintf(w, "| %-*s ", widths[i], p)
		}
		fmt.Fprintln(w, "|")
	}
	sep := "+"
	for _, wd := range widths {
		sep += strings.Repeat("-", wd+2) + "+"
	}
	fmt.Fprintln(w, sep)
	line(names)
	fmt.Fprintln(w, sep)
	for _, row := range cells {
		line(row)
	}
	fmt.Fprintln(w, sep)
	fmt.Fprintf(w, "%d row(s)\n", len(res.Rows))
}

func renderCell(v value.Value) string {
	if v.IsNull() {
		return "NULL"
	}
	return v.String()
}
