module hana

go 1.22
