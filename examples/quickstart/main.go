// Quickstart: the core engine in five minutes — column/row/flexible
// tables, transactions with snapshot isolation, a hybrid table spanning
// in-memory and extended storage, and the built-in aging mechanism.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"hana/internal/engine"
)

func main() {
	dir, err := os.MkdirTemp("", "hana-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	e := engine.New(engine.Config{ExtendedStorageDir: dir})
	must := func(sql string) *engine.Result {
		res, err := e.ExecuteContext(context.Background(), sql)
		if err != nil {
			log.Fatalf("%s\n-> %v", sql, err)
		}
		return res
	}

	fmt.Println("== column table with analytics ==")
	must(`CREATE TABLE orders (id BIGINT, customer VARCHAR(20), amount DOUBLE, odate DATE)`)
	must(`INSERT INTO orders VALUES
		(1, 'alice', 120.5, DATE '2014-11-02'),
		(2, 'bob',    75.0, DATE '2014-12-24'),
		(3, 'alice',  19.9, DATE '2015-01-05'),
		(4, 'carol', 310.0, DATE '2015-02-14')`)
	res := must(`SELECT customer, COUNT(*) n, SUM(amount) total
		FROM orders GROUP BY customer HAVING SUM(amount) > 50 ORDER BY total DESC`)
	for _, row := range res.Rows {
		fmt.Printf("  %-6s orders=%d total=%.2f\n", row[0], row[1].Int(), row[2].Float())
	}

	fmt.Println("\n== snapshot isolation ==")
	reader := e.Begin()
	writer := e.Begin()
	if _, err := e.ExecuteContext(context.Background(), `INSERT INTO orders VALUES (5,'dave',42.0,DATE '2015-03-01')`, engine.WithTx(writer)); err != nil {
		log.Fatal(err)
	}
	if err := e.CommitTxContext(context.Background(), writer); err != nil {
		log.Fatal(err)
	}
	r1, _ := e.ExecuteContext(context.Background(), `SELECT COUNT(*) FROM orders`, engine.WithTx(reader))
	fmt.Printf("  reader (old snapshot) sees %d orders\n", r1.Rows[0][0].Int())
	_ = e.CommitTxContext(context.Background(), reader)
	r2 := must(`SELECT COUNT(*) FROM orders`)
	fmt.Printf("  new statement sees %d orders\n", r2.Rows[0][0].Int())

	fmt.Println("\n== flexible table: schema extension on insert ==")
	must(`CREATE FLEXIBLE TABLE events (id BIGINT)`)
	must(`INSERT INTO events (id) VALUES (1)`)
	must(`INSERT INTO events (id, source, severity) VALUES (2, 'sensor-7', 'HIGH')`)
	res = must(`SELECT id, source, severity FROM events ORDER BY id`)
	for _, row := range res.Rows {
		fmt.Printf("  id=%d source=%v severity=%v\n", row[0].Int(), row[1], row[2])
	}

	fmt.Println("\n== hybrid table with extended storage and aging ==")
	must(`CREATE TABLE sales (id BIGINT, amount DOUBLE, sale_date DATE, cold BOOLEAN)
		PARTITION BY RANGE (sale_date) (
			PARTITION VALUES < DATE '2014-01-01' USING EXTENDED STORAGE,
			PARTITION OTHERS)
		WITH AGING ON (cold)`)
	must(`INSERT INTO sales VALUES
		(1, 10, DATE '2013-05-01', FALSE),
		(2, 20, DATE '2014-06-01', FALSE),
		(3, 30, DATE '2014-07-01', TRUE),
		(4, 40, DATE '2015-01-01', FALSE)`)
	printParts(e)

	moved, err := e.RunAgingContext(context.Background(), "sales")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  aging moved %d flagged row(s) to the cold store\n", moved)
	printParts(e)

	res = must(`EXPLAIN SELECT SUM(amount) FROM sales`)
	fmt.Println("\n  federated plan over the hybrid table (Union Plan):")
	fmt.Println(indent(res.Plan, "    "))
}

func printParts(e *engine.Engine) {
	parts, err := e.PartitionRowCounts("sales")
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range parts {
		kind := "hot (in-memory columnar)"
		if p.Cold {
			kind = "cold (extended storage)"
		}
		fmt.Printf("  partition %d: %-26s %d rows\n", i, kind, p.Rows)
	}
}

func indent(s, pre string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += pre + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
