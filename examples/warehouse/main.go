// Warehouse: the SAP BW scenario of §3.1 — a persistent staging area (PSA)
// and write-optimized DataStore objects live in the extended storage, the
// refined fact table is hybrid (hot recent partitions, cold history), and
// queries across temperatures exercise the federated strategies: remote
// scan with zone-map pruning, semijoin shipping, and union plans.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"hana/internal/engine"
	"hana/internal/value"
)

func main() {
	dir, err := os.MkdirTemp("", "hana-warehouse-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	e := engine.New(engine.Config{ExtendedStorageDir: dir, SemiJoinThreshold: 64})
	must := func(sql string) *engine.Result {
		res, err := e.ExecuteContext(context.Background(), sql)
		if err != nil {
			log.Fatalf("%s -> %v", sql, err)
		}
		return res
	}

	// 1. PSA: source extracts mirrored 1:1 into the BW infrastructure,
	// rarely read again → extended storage with direct (bulk) load.
	fmt.Println("== persistent staging area in extended storage ==")
	must(`CREATE TABLE psa_sales_extract (
		src_system VARCHAR(10), doc_id BIGINT, customer_id BIGINT,
		product VARCHAR(20), amount DOUBLE, extract_date DATE) USING EXTENDED STORAGE`)
	var psa []value.Row
	day, _ := value.ParseDate("2014-06-01")
	for i := 0; i < 50000; i++ {
		psa = append(psa, value.Row{
			value.NewString("ERP1"),
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 500)),
			value.NewString(fmt.Sprintf("product-%02d", i%40)),
			value.NewDouble(float64(i%997) * 1.1),
			value.NewDate(day.I + int64(i%365)),
		})
	}
	if err := e.BulkLoad("psa_sales_extract", psa); err != nil {
		log.Fatal(err)
	}
	ext, _ := e.ExtendedStore()
	tbl, _ := ext.Table("psa_sales_extract")
	size, _ := tbl.DiskSize()
	fmt.Printf("  direct-loaded %d rows, %d KB on disk (compressed column chunks)\n",
		len(psa), size/1024)

	// 2. Corporate memory DSO: long retention, extended storage too.
	must(`CREATE TABLE dso_corporate_memory (doc_id BIGINT, payload VARCHAR(60), kept_since DATE)
		USING EXTENDED STORAGE`)
	must(`INSERT INTO dso_corporate_memory
		SELECT doc_id, product, extract_date FROM psa_sales_extract WHERE doc_id < 100`)
	fmt.Printf("  corporate-memory DSO filled from the PSA: %d rows\n",
		must(`SELECT COUNT(*) FROM dso_corporate_memory`).Rows[0][0].Int())

	// 3. Refined hybrid fact table: recent data hot, history cold.
	fmt.Println("\n== hybrid fact table (hot 2014+, cold history) ==")
	must(`CREATE TABLE fact_sales (customer_id BIGINT, product VARCHAR(20),
		amount DOUBLE, sale_date DATE, aged BOOLEAN)
		PARTITION BY RANGE (sale_date) (
			PARTITION VALUES < DATE '2014-01-01' USING EXTENDED STORAGE,
			PARTITION OTHERS)
		WITH AGING ON (aged)`)
	var facts []value.Row
	histDay, _ := value.ParseDate("2012-01-01")
	for i := 0; i < 30000; i++ {
		facts = append(facts, value.Row{
			value.NewInt(int64(i % 500)),
			value.NewString(fmt.Sprintf("product-%02d", i%40)),
			value.NewDouble(float64(i%997) * 2.5),
			value.NewDate(histDay.I + int64(i%1200)), // spans 2012-2015
			value.NewBool(false),
		})
	}
	if err := e.BulkLoad("fact_sales", facts); err != nil {
		log.Fatal(err)
	}
	_ = e.Analyze("fact_sales")
	printParts(e, "fact_sales")

	// 4. Dimension table stays hot.
	must(`CREATE TABLE dim_customer (customer_id BIGINT, name VARCHAR(30), tier VARCHAR(8))`)
	var dims []value.Row
	for i := 0; i < 500; i++ {
		tier := "SILVER"
		if i%50 == 0 {
			tier = "GOLD"
		}
		dims = append(dims, value.Row{
			value.NewInt(int64(i)), value.NewString(fmt.Sprintf("Customer#%03d", i)), value.NewString(tier),
		})
	}
	if err := e.BulkLoad("dim_customer", dims); err != nil {
		log.Fatal(err)
	}
	_ = e.Analyze("dim_customer")

	// 5. Federated strategies in action.
	fmt.Println("\n== union plan: aggregate across hot and cold partitions ==")
	res := must(`SELECT COUNT(*), SUM(amount) FROM fact_sales`)
	fmt.Printf("  all-time: %d rows, %.0f revenue\n", res.Rows[0][0].Int(), res.Rows[0][1].Float())
	showStrategy(must(`EXPLAIN SELECT COUNT(*) FROM fact_sales`).Plan)

	fmt.Println("\n== partition pruning: hot-only predicate skips the cold store ==")
	showStrategy(must(`EXPLAIN SELECT SUM(amount) FROM fact_sales WHERE sale_date >= DATE '2014-06-01'`).Plan)

	fmt.Println("\n== semijoin: selective dimension filter shipped into the cold store ==")
	res = must(`SELECT d.name, SUM(p.amount)
		FROM dim_customer d, psa_sales_extract p
		WHERE d.customer_id = p.customer_id AND d.name = 'Customer#042'
		GROUP BY d.name`)
	fmt.Printf("  Customer#042 staged revenue: %.0f\n", res.Rows[0][1].Float())
	showStrategy(must(`EXPLAIN SELECT COUNT(*) FROM dim_customer d, psa_sales_extract p
		WHERE d.customer_id = p.customer_id AND d.name = 'Customer#042'`).Plan)
	m := e.Metrics.Snapshot()
	fmt.Printf("  semijoin strategies chosen so far: %d\n", m.SemiJoinsChosen)

	// 6. Aging: flag the 2014 rows that closed out, run the aging job.
	fmt.Println("\n== aging: move closed 2014 documents to the cold store ==")
	res = must(`UPDATE fact_sales SET aged = TRUE
		WHERE sale_date < DATE '2014-07-01' AND sale_date >= DATE '2014-01-01'`)
	fmt.Printf("  flagged %d rows\n", res.Affected)
	moved, err := e.RunAgingContext(context.Background(), "fact_sales")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  aging moved %d rows hot→cold\n", moved)
	printParts(e, "fact_sales")
	res = must(`SELECT COUNT(*) FROM fact_sales`)
	fmt.Printf("  table is logically unchanged: %d rows\n", res.Rows[0][0].Int())
}

func printParts(e *engine.Engine, table string) {
	parts, err := e.PartitionRowCounts(table)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range parts {
		kind := "hot "
		if p.Cold {
			kind = "cold"
		}
		fmt.Printf("  partition %d (%s): %6d rows\n", i, kind, p.Rows)
	}
}

func showStrategy(plan string) {
	for _, line := range strings.Split(plan, "\n") {
		t := strings.TrimSpace(line)
		if strings.Contains(t, "Union Plan") || strings.Contains(t, "Remote Scan") ||
			strings.Contains(t, "Semijoin") || strings.Contains(t, "Column Scan") {
			fmt.Println("  plan: " + t)
		}
	}
}
