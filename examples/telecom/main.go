// Telecom: the complex event processing scenario of Figure 8. A mobile
// network emits call events at high volume; the ESP pre-filters and
// pre-aggregates them, forwards aggregates into HANA (time-series style),
// archives the raw feed to HDFS for offline map-reduce analysis, detects
// outage patterns for immediate alerting, and lets a HANA query join the
// live window state (the three §3.2 integration patterns end to end).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"

	"hana/internal/engine"
	"hana/internal/esp"
	"hana/internal/hdfs"
	"hana/internal/hive"
	"hana/internal/mapreduce"
	"hana/internal/obs"
	"hana/internal/timeseries"
	"hana/internal/value"
)

func main() {
	dir, err := os.MkdirTemp("", "hana-telecom-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- components of figure 8 ---
	db := engine.New(engine.Config{ExtendedStorageDir: dir})
	project := esp.NewProject()
	cluster := hdfs.NewCluster(3, hdfs.WithBlockSize(64<<10), hdfs.WithReplication(2))
	mr := mapreduce.NewEngine(cluster, mapreduce.Config{MapSlots: 8, ReduceSlots: 4})

	must := func(sql string) *engine.Result {
		res, err := db.ExecuteContext(context.Background(), sql)
		if err != nil {
			log.Fatalf("%s -> %v", sql, err)
		}
		return res
	}
	must(`CREATE TABLE network_health (cell_id BIGINT, avg_signal DOUBLE, drops BIGINT)`)
	must(`CREATE TABLE alerts (cell_id BIGINT, message VARCHAR(100))`)

	// Raw event stream from the network sensors.
	eventSchema := value.NewSchema(
		value.Column{Name: "cell_id", Kind: value.KindInt},
		value.Column{Name: "event_type", Kind: value.KindVarchar},
		value.Column{Name: "signal", Kind: value.KindDouble},
	)
	if _, err := project.CreateInputStream("network_events", eventSchema); err != nil {
		log.Fatal(err)
	}

	// Continuous query: per-cell health over a 5-minute window.
	health, err := project.CreateWindow("cell_health", `
		SELECT cell_id, AVG(signal) avg_signal,
		       SUM(CASE WHEN event_type = 'CALL_DROP' THEN 1 ELSE 0 END) drops
		FROM network_events GROUP BY cell_id KEEP 5 MINUTES`)
	if err != nil {
		log.Fatal(err)
	}

	// Integration 1 (forward): raw events are archived to HDFS through the
	// dedicated adapter ("the raw data may be pushed into an existing HDFS
	// using a dedicated adapter").
	archive := esp.NewHDFSArchiveSink(cluster, "/archive/network", 2000)
	if err := project.SubscribeSink("network_events", "", archive); err != nil {
		log.Fatal(err)
	}

	// Pattern: three dropped calls within a minute → immediate alert.
	if _, err := project.CreatePattern("outage", "network_events", []string{
		"event_type = 'CALL_DROP'", "event_type = 'CALL_DROP'", "event_type = 'CALL_DROP'",
	}, time.Minute, func(evs []esp.Event) {
		cell := evs[0].Row[0].Int()
		_, _ = db.ExecuteContext(context.Background(), fmt.Sprintf(
			`INSERT INTO alerts VALUES (%d, 'outage pattern: 3 dropped calls within 1 minute')`, cell))
	}); err != nil {
		log.Fatal(err)
	}

	// Integration 3 (HANA join): expose the live window as a table function.
	if err := db.RegisterView(obs.ViewDef{
		Name: "CELL_HEALTH_WINDOW",
		Columns: []value.Column{
			{Name: "cell_id", Kind: value.KindDouble, Nullable: true},
			{Name: "avg_signal", Kind: value.KindDouble, Nullable: true},
			{Name: "drops", Kind: value.KindDouble, Nullable: true},
		},
		Fill: func(out *value.Rows) error {
			rows, err := health.Rows(time.Now())
			if err != nil {
				return err
			}
			out.Data = append(out.Data, rows.Data...)
			return nil
		},
	}); err != nil {
		log.Fatal(err)
	}

	// --- drive the network ---
	fmt.Println("publishing 5000 network events...")
	rng := rand.New(rand.NewSource(8))
	now := time.Now()
	for i := 0; i < 5000; i++ {
		cell := int64(rng.Intn(8))
		typ := "CALL_START"
		sig := 60 + rng.Float64()*40
		if cell == 3 && rng.Float64() < 0.4 {
			typ = "CALL_DROP" // cell 3 is failing
			sig = 10 + rng.Float64()*20
		} else if rng.Float64() < 0.02 {
			typ = "CALL_DROP"
		}
		ev := value.Row{value.NewInt(cell), value.NewString(typ), value.NewDouble(sig)}
		if err := project.Publish("network_events", ev, now.Add(time.Duration(i)*50*time.Millisecond)); err != nil {
			log.Fatal(err)
		}
	}

	// Forward the aggregated window into HANA (integration 1, aggregated).
	if err := health.Forward(now.Add(5*time.Minute), esp.SinkFunc(
		func(rows []value.Row, _ *value.Schema) error {
			for _, r := range rows {
				_, err := db.ExecuteContext(context.Background(), fmt.Sprintf(`INSERT INTO network_health VALUES (%d, %f, %d)`,
					r[0].Int(), r[1].Float(), r[2].Int()))
				if err != nil {
					return err
				}
			}
			return nil
		})); err != nil {
		log.Fatal(err)
	}

	res := must(`SELECT cell_id, avg_signal, drops FROM network_health ORDER BY drops DESC LIMIT 3`)
	fmt.Println("\nworst cells (forwarded window aggregates in HANA):")
	for _, r := range res.Rows {
		fmt.Printf("  cell %d: avg signal %.1f, %d drops\n", r[0].Int(), r[1].Float(), r[2].Int())
	}

	res = must(`SELECT COUNT(*) FROM alerts WHERE cell_id = 3`)
	fmt.Printf("\nimmediate alerts for failing cell 3: %d\n", res.Rows[0][0].Int())

	// HANA join: relational query over the live window state.
	res = must(`SELECT w.cell_id, w.drops FROM CELL_HEALTH_WINDOW() w WHERE w.drops > 50`)
	fmt.Printf("cells over drop threshold via HANA join on the live window: %d\n", len(res.Rows))

	// --- offline: archive → HDFS → map-reduce analysis ---
	if err := archive.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nraw archive pushed to HDFS (%d rows over %d part files, %d datanodes)\n",
		archive.RowsWritten(), len(cluster.List("/archive/network")), cluster.NumNodes())

	job := &mapreduce.Job{
		Name:   "drop-rate-by-cell",
		Inputs: []string{"/archive/network"},
		Output: "/analytics/drop-rate",
		Map: func(line string, emit func(k, v string)) {
			f := strings.Split(line, "\t")
			if len(f) == 3 {
				drop := "0"
				if f[1] == "CALL_DROP" {
					drop = "1"
				}
				emit(f[0], drop)
			}
		},
		Reduce: func(key string, values []string, emit func(k, v string)) {
			total, drops := 0, 0
			for _, v := range values {
				total++
				if v == "1" {
					drops++
				}
			}
			emit(key, fmt.Sprintf("%.3f", float64(drops)/float64(total)))
		},
		NumReducers: 2,
	}
	if _, err := mr.RunCtx(context.Background(), job); err != nil {
		log.Fatal(err)
	}
	fmt.Println("offline map-reduce drop rates per cell:")
	ms := hive.NewMetastore(cluster, "/warehouse")
	out, err := ms.ReadDir("/analytics/drop-rate", value.NewSchema(
		value.Column{Name: "cell", Kind: value.KindInt},
		value.Column{Name: "rate", Kind: value.KindDouble},
	))
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for _, r := range out.Data {
		if r[1].Float() > worst {
			worst = r[1].Float()
		}
		fmt.Printf("  cell %d: %.1f%% drops\n", r[0].Int(), 100*r[1].Float())
	}

	// Correlate two cells' signal over time (time-series analysis of §3.2:
	// "perform correlation analysis between different sensors").
	a := timeseries.New(now, time.Second, timeseries.CompensateLinear)
	b := timeseries.New(now, time.Second, timeseries.CompensateLinear)
	for i := 0; i < 600; i++ {
		base := 70 + 10*rand.New(rand.NewSource(int64(i))).Float64()
		a.Append(base)
		b.Append(base - 5)
	}
	corr, _ := timeseries.Correlate(a, b)
	fmt.Printf("\nsignal correlation between neighboring antennas: %.3f\n", corr)
}
