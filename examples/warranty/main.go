// Warranty: the automotive predictive-maintenance project of §4.1. Raw
// diagnosis read-outs live in HDFS behind Hive; condensed sales facts live
// in the HANA engine. Hive extracts twelve months of read-outs for one car
// series through SDA, the predictive analysis library mines association
// rules with the apriori algorithm, and the derived model classifies new
// read-outs as warranty candidates in real time.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"hana/internal/engine"
	"hana/internal/hdfs"
	"hana/internal/hive"
	"hana/internal/mapreduce"
	"hana/internal/pal"
	"hana/internal/value"
)

func main() {
	dir, err := os.MkdirTemp("", "hana-warranty-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Hadoop side: the raw diagnosis read-outs (paper: "diagnosis read-outs
	// on cars, support escalations, warranty claims").
	cluster := hdfs.NewCluster(5, hdfs.WithBlockSize(256<<10), hdfs.WithReplication(3))
	ms := hive.NewMetastore(cluster, "/warehouse")
	mr := mapreduce.NewEngine(cluster, mapreduce.Config{MapSlots: 16, ReduceSlots: 8})
	srv := hive.NewServer("hivewarranty", ms, mr)
	hive.RegisterServer(srv)
	defer hive.UnregisterServer(srv.Host)

	readoutSchema := value.NewSchema(
		value.Column{Name: "vin", Kind: value.KindInt},
		value.Column{Name: "series", Kind: value.KindVarchar},
		value.Column{Name: "month", Kind: value.KindInt},
		value.Column{Name: "codes", Kind: value.KindVarchar}, // comma-separated diagnostic codes
		value.Column{Name: "claim", Kind: value.KindBool},
	)
	if _, err := ms.CreateTable("readouts", readoutSchema, false); err != nil {
		log.Fatal(err)
	}

	// Synthetic read-outs: code pair P0301+P0171 strongly predicts claims.
	rng := rand.New(rand.NewSource(41))
	var rows []value.Row
	for vin := 1; vin <= 4000; vin++ {
		series := "S300"
		if vin%3 == 0 {
			series = "S500"
		}
		codes := []string{fmt.Sprintf("code%02d", rng.Intn(25))}
		claim := rng.Float64() < 0.03
		if rng.Float64() < 0.25 {
			codes = append(codes, "P0301", "P0171")
			claim = rng.Float64() < 0.88
		}
		rows = append(rows, value.Row{
			value.NewInt(int64(vin)), value.NewString(series),
			value.NewInt(int64(1 + rng.Intn(12))),
			value.NewString(strings.Join(codes, ",")),
			value.NewBool(claim),
		})
	}
	if err := ms.LoadRows("readouts", rows, 4); err != nil {
		log.Fatal(err)
	}
	ti, _ := ms.Table("readouts")
	fmt.Printf("Hadoop cluster: %d nodes, readouts table: %d rows in %d files\n",
		cluster.NumNodes(), ti.RowCount, ti.Files)

	// HANA side: federate the read-outs through SDA.
	db := engine.New(engine.Config{ExtendedStorageDir: dir})
	db.Registry().Register("hiveodbc", hive.NewAdapterFactory())
	must := func(sql string) *engine.Result {
		res, err := db.ExecuteContext(context.Background(), sql)
		if err != nil {
			log.Fatalf("%s -> %v", sql, err)
		}
		return res
	}
	must(`CREATE REMOTE SOURCE HIVEW ADAPTER "hiveodbc" CONFIGURATION 'DSN=hivewarranty'
		WITH CREDENTIAL TYPE 'PASSWORD' USING 'user=dfuser;password=dfpass'`)
	must(`CREATE VIRTUAL TABLE V_READOUTS AT "HIVEW"."dflo"."dflo"."readouts"`)

	// "Using Hive, we extracted data from twelve months data for a specific
	// car series and made it available to the SAP HANA database server."
	res := must(`SELECT codes, claim FROM V_READOUTS WHERE series = 'S300' AND month <= 12`)
	fmt.Printf("extracted %d S300 read-outs via Hive (map-reduce jobs run: %d)\n",
		len(res.Rows), mr.JobsRun.Load())

	// Mine association rules with the PAL apriori implementation.
	var txns []pal.Transaction
	for _, r := range res.Rows {
		t := pal.Transaction(strings.Split(r[0].S, ","))
		if r[1].Bool() {
			t = append(t, "WARRANTY_CLAIM")
		}
		txns = append(txns, t)
	}
	rules, err := pal.Apriori(txns, pal.AprioriParams{
		MinSupport: 0.02, MinConfidence: 0.8, MaxItemsetLen: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("apriori discovered %d rules with confidence between 80%% and 100%%\n", len(rules))
	shown := 0
	for _, r := range rules {
		if r.Consequent == "WARRANTY_CLAIM" && shown < 3 {
			fmt.Printf("  %s\n", r)
			shown++
		}
	}

	// "The derived models then were used to classify new readouts as
	// warranty candidates in real-time in the SAP HANA database."
	clf := pal.NewClassifier(rules, "WARRANTY_CLAIM")
	fmt.Printf("classifier holds %d warranty rules\n", clf.NumRules())
	newReadouts := []pal.Transaction{
		{"code07"},
		{"code04", "P0301", "P0171"},
		{"P0301"},
	}
	for _, ro := range newReadouts {
		score, rule := clf.Score(ro)
		verdict := "ok"
		if score >= 0.8 {
			verdict = "WARRANTY CANDIDATE"
		}
		fmt.Printf("  readout [%-22s] score %.2f → %s", strings.Join(ro, ","), score, verdict)
		if rule != nil {
			fmt.Printf("  (rule %s)", rule)
		}
		fmt.Println()
	}
}
