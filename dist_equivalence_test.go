package hana

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"hana/internal/dist"
	"hana/internal/engine"
	"hana/internal/tpch"
)

// The distributed executor promises the same thing the morsel executor
// does, one level up: shard count and worker count must never show up in
// the output. Shipped rows carry their global scan sequence and the
// coordinator's k-way merge restores the exact serial order, so a scan
// fanned out over N shard replicas is byte-identical to the single-node
// partition scan — and everything built on top of it (distributed
// aggregation partials, broadcast joins) inherits the property.
// Property-check it across the TPC-H query set: every query on a sharded
// engine must equal the same query pinned local with WithLocalOnly(), and
// equal a plain single-node engine, at shard counts 1/2/4 and widths 1/4.
func TestDistributedExecutionMatchesSerial(t *testing.T) {
	data := tpch.Generate(0.005, 2015)
	schemas := tpch.Schemas()

	newLoaded := func(shards int) *engine.Engine {
		e := engine.New(engine.Config{
			ExtendedStorageDir: t.TempDir(),
			Parallelism:        4,
			Topology:           dist.Topology{Shards: shards},
		})
		for name, rows := range data.Tables {
			ddl := fmt.Sprintf("CREATE TABLE %s (", name)
			for i, c := range schemas[name].Cols {
				if i > 0 {
					ddl += ", "
				}
				ddl += c.Name + " " + c.Kind.String()
			}
			ddl += ")"
			if _, err := e.ExecuteContext(context.Background(), ddl); err != nil {
				t.Fatalf("create %s: %v", name, err)
			}
			if err := e.BulkLoad(name, rows); err != nil {
				t.Fatalf("load %s: %v", name, err)
			}
		}
		return e
	}

	serial := newLoaded(0) // no topology: the pre-distribution engine
	ctx := context.Background()

	for _, shards := range []int{1, 2, 4} {
		e := newLoaded(shards)
		if shards == 2 {
			// Exercise the wire codec on one fleet: chunks round-trip
			// through Encode/DecodeChunk instead of in-process handoff.
			e.DistTransport().Wire = true
		}
		for _, id := range tpch.QueryIDs() {
			q := tpch.Queries()[id]
			t.Run(fmt.Sprintf("shards=%d/Q%d", shards, id), func(t *testing.T) {
				want, err := serial.ExecuteContext(ctx, q.SQL, engine.WithParallelism(1))
				if err != nil {
					t.Fatalf("serial: %v", err)
				}
				local, err := e.ExecuteContext(ctx, q.SQL, engine.WithLocalOnly())
				if err != nil {
					t.Fatalf("local-only: %v", err)
				}
				compareResults(t, "local-only", q.SQL, local, want)
				for _, width := range []int{1, 4} {
					got, err := e.ExecuteContext(ctx, q.SQL, engine.WithParallelism(width))
					if err != nil {
						t.Fatalf("dist width %d: %v", width, err)
					}
					compareResults(t, fmt.Sprintf("dist width %d", width), q.SQL, got, want)
				}
			})
		}
	}
}

func compareResults(t *testing.T, label, sql string, got, want *engine.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Schema, want.Schema) {
		t.Fatalf("%s: schema diverged for %q: %v vs %v", label, sql, got.Schema, want.Schema)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: row count diverged for %q: %d vs %d", label, sql, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if !rowsEqual(got.Rows[i], want.Rows[i]) {
			t.Fatalf("%s: row %d diverged for %q:\ngot:  %v\nwant: %v", label, i, sql, got.Rows[i], want.Rows[i])
		}
	}
}
