// Package value defines the data types, values, rows and schemas shared by
// every storage and processing engine in the platform: the in-memory column
// and row stores, the disk-based extended storage, the event stream
// processor, the Hive/MapReduce substrate and the federation layer.
//
// A Value is a compact tagged union. Strings are interned by the stores via
// dictionary encoding; the Value itself carries the string for exchange
// between engines.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the SQL data types supported across the platform.
type Kind uint8

// Supported kinds. KindNull is the type of the SQL NULL literal before it is
// coerced to a column type.
const (
	KindNull Kind = iota
	KindBool
	KindInt     // 64-bit signed integer (covers INTEGER and BIGINT)
	KindDouble  // 64-bit IEEE float (covers DOUBLE and DECIMAL in this engine)
	KindVarchar // UTF-8 string
	KindDate    // days since 1970-01-01
	KindTimestamp
)

// String returns the SQL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "BIGINT"
	case KindDouble:
		return "DOUBLE"
	case KindVarchar:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	case KindTimestamp:
		return "TIMESTAMP"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromSQL maps a SQL type name (possibly with a length suffix, e.g.
// VARCHAR(30)) to a Kind. It returns false for unknown names.
func KindFromSQL(name string) (Kind, bool) {
	base := strings.ToUpper(name)
	if i := strings.IndexByte(base, '('); i >= 0 {
		base = base[:i]
	}
	switch strings.TrimSpace(base) {
	case "BOOL", "BOOLEAN":
		return KindBool, true
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return KindInt, true
	case "DOUBLE", "FLOAT", "REAL", "DECIMAL", "NUMERIC":
		return KindDouble, true
	case "VARCHAR", "NVARCHAR", "CHAR", "STRING", "TEXT", "CLOB":
		return KindVarchar, true
	case "DATE":
		return KindDate, true
	case "TIMESTAMP", "DATETIME", "SECONDDATE":
		return KindTimestamp, true
	}
	return KindNull, false
}

// Value is a tagged union holding one SQL value. The zero Value is NULL.
type Value struct {
	K Kind
	I int64   // KindBool (0/1), KindInt, KindDate (days), KindTimestamp (micros)
	F float64 // KindDouble
	S string  // KindVarchar
}

// Null is the SQL NULL value.
var Null = Value{K: KindNull}

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value {
	if b {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool}
}

// NewInt returns a BIGINT value.
func NewInt(i int64) Value { return Value{K: KindInt, I: i} }

// NewDouble returns a DOUBLE value.
func NewDouble(f float64) Value { return Value{K: KindDouble, F: f} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{K: KindVarchar, S: s} }

// NewDate returns a DATE value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{K: KindDate, I: days} }

// NewTimestamp returns a TIMESTAMP value from microseconds since the epoch.
func NewTimestamp(micros int64) Value { return Value{K: KindTimestamp, I: micros} }

// DateFromTime converts a time.Time to a DATE value (UTC calendar day).
func DateFromTime(t time.Time) Value {
	return NewDate(t.UTC().Unix() / 86400)
}

// TimestampFromTime converts a time.Time to a TIMESTAMP value.
func TimestampFromTime(t time.Time) Value {
	return NewTimestamp(t.UnixMicro())
}

// ParseDate parses a YYYY-MM-DD literal.
func ParseDate(s string) (Value, error) {
	t, err := time.ParseInLocation("2006-01-02", s, time.UTC)
	if err != nil {
		return Null, fmt.Errorf("invalid DATE literal %q: %w", s, err)
	}
	return DateFromTime(t), nil
}

// ParseTimestamp parses a YYYY-MM-DD[ HH:MM:SS[.ffffff]] literal.
func ParseTimestamp(s string) (Value, error) {
	for _, layout := range []string{"2006-01-02 15:04:05.999999", "2006-01-02 15:04:05", "2006-01-02"} {
		if t, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return TimestampFromTime(t), nil
		}
	}
	return Null, fmt.Errorf("invalid TIMESTAMP literal %q", s)
}

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool returns the boolean payload. It is only meaningful for KindBool.
func (v Value) Bool() bool { return v.I != 0 }

// Int returns the integer payload (KindInt/KindDate/KindTimestamp), or a
// truncated double.
func (v Value) Int() int64 {
	if v.K == KindDouble {
		return int64(v.F)
	}
	return v.I
}

// Float returns the value as a float64, promoting integers.
func (v Value) Float() float64 {
	if v.K == KindDouble {
		return v.F
	}
	return float64(v.I)
}

// Str returns the string payload.
func (v Value) Str() string { return v.S }

// Time converts a DATE or TIMESTAMP value to time.Time (UTC).
func (v Value) Time() time.Time {
	switch v.K {
	case KindDate:
		return time.Unix(v.I*86400, 0).UTC()
	case KindTimestamp:
		return time.UnixMicro(v.I).UTC()
	}
	return time.Time{}
}

// numericKind reports whether k participates in arithmetic promotion.
func numericKind(k Kind) bool { return k == KindInt || k == KindDouble }

// Compare orders two values: -1, 0, +1. NULL sorts before every non-NULL
// value. Numeric kinds compare by promoted value; temporal kinds compare by
// their integer encodings; mixed incomparable kinds compare by kind tag so
// that sorting is still total.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == KindNull && b.K == KindNull:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if numericKind(a.K) && numericKind(b.K) {
		if a.K == KindInt && b.K == KindInt {
			return cmpInt(a.I, b.I)
		}
		return cmpFloat(a.Float(), b.Float())
	}
	if a.K != b.K {
		// Temporal kinds are mutually comparable by encoding.
		if temporal(a.K) && temporal(b.K) {
			return cmpInt(a.I, b.I)
		}
		return cmpInt(int64(a.K), int64(b.K))
	}
	switch a.K {
	case KindBool, KindInt, KindDate, KindTimestamp:
		return cmpInt(a.I, b.I)
	case KindDouble:
		return cmpFloat(a.F, b.F)
	case KindVarchar:
		return strings.Compare(a.S, b.S)
	}
	return 0
}

func temporal(k Kind) bool { return k == KindDate || k == KindTimestamp }

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality (NULL is not equal to anything, including NULL;
// use Compare for ordering semantics).
func Equal(a, b Value) bool {
	if a.K == KindNull || b.K == KindNull {
		return false
	}
	return Compare(a, b) == 0
}

// FNV-1a constants; Hash inlines the arithmetic instead of allocating an
// fnv.New64a state per call — this runs once per value per row in every
// hash join and aggregation.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvUint64(h uint64, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(x>>(8*i)))
	}
	return h
}

// Hash returns a 64-bit hash suitable for hash joins and aggregation.
// Values that compare equal hash equally (numerics hash by float image when
// either side may be a double; we always hash the float image of numerics).
// The result is exactly FNV-1a over a kind tag plus the little-endian
// payload bytes, allocation-free.
func (v Value) Hash() uint64 {
	h := uint64(fnvOffset64)
	switch v.K {
	case KindNull:
		h = fnvByte(h, 0)
	case KindBool:
		h = fnvByte(fnvByte(h, 1), byte(v.I))
	case KindInt, KindDouble:
		h = fnvUint64(fnvByte(h, 2), math.Float64bits(v.Float()))
	case KindDate, KindTimestamp:
		h = fnvUint64(fnvByte(h, 3), uint64(v.I))
	case KindVarchar:
		h = fnvByte(h, 4)
		for i := 0; i < len(v.S); i++ {
			h = fnvByte(h, v.S[i])
		}
	}
	return h
}

// String renders the value for display and for remote SQL generation of
// literals (VARCHAR values are NOT quoted; use SQLLiteral for that).
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindDouble:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindVarchar:
		return v.S
	case KindDate:
		return v.Time().Format("2006-01-02")
	case KindTimestamp:
		return v.Time().Format("2006-01-02 15:04:05.000000")
	}
	return "?"
}

// SQLLiteral renders the value as a SQL literal that the parser accepts
// again, used when generating remote statements for query shipping.
func (v Value) SQLLiteral() string {
	switch v.K {
	case KindVarchar:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KindDate:
		return "DATE '" + v.String() + "'"
	case KindTimestamp:
		return "TIMESTAMP '" + v.String() + "'"
	default:
		return v.String()
	}
}

// Cast coerces v to kind k, returning an error when the conversion is not
// meaningful. Casting NULL yields NULL of any kind.
func Cast(v Value, k Kind) (Value, error) {
	if v.K == KindNull || v.K == k {
		if v.K == KindNull {
			return Null, nil
		}
		return v, nil
	}
	switch k {
	case KindBool:
		switch v.K {
		case KindInt:
			return NewBool(v.I != 0), nil
		}
	case KindInt:
		switch v.K {
		case KindDouble:
			return NewInt(int64(v.F)), nil
		case KindBool, KindDate, KindTimestamp:
			return NewInt(v.I), nil
		case KindVarchar:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return Null, fmt.Errorf("cannot cast %q to BIGINT", v.S)
			}
			return NewInt(i), nil
		}
	case KindDouble:
		switch v.K {
		case KindInt, KindBool:
			return NewDouble(float64(v.I)), nil
		case KindVarchar:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return Null, fmt.Errorf("cannot cast %q to DOUBLE", v.S)
			}
			return NewDouble(f), nil
		}
	case KindVarchar:
		return NewString(v.String()), nil
	case KindDate:
		switch v.K {
		case KindVarchar:
			return ParseDate(strings.TrimSpace(v.S))
		case KindTimestamp:
			return NewDate(v.I / (86400 * 1e6)), nil
		case KindInt:
			return NewDate(v.I), nil
		}
	case KindTimestamp:
		switch v.K {
		case KindVarchar:
			return ParseTimestamp(strings.TrimSpace(v.S))
		case KindDate:
			return NewTimestamp(v.I * 86400 * 1e6), nil
		case KindInt:
			return NewTimestamp(v.I), nil
		}
	}
	return Null, fmt.Errorf("cannot cast %s to %s", v.K, k)
}

// Add returns a+b with numeric promotion; DATE + INT adds days.
func Add(a, b Value) (Value, error) { return arith(a, b, '+') }

// Sub returns a-b with numeric promotion; DATE - INT subtracts days.
func Sub(a, b Value) (Value, error) { return arith(a, b, '-') }

// Mul returns a*b with numeric promotion.
func Mul(a, b Value) (Value, error) { return arith(a, b, '*') }

// Div returns a/b; integer operands produce a DOUBLE quotient (OLAP
// semantics) and division by zero is an error.
func Div(a, b Value) (Value, error) { return arith(a, b, '/') }

func arith(a, b Value, op byte) (Value, error) {
	if a.K == KindNull || b.K == KindNull {
		return Null, nil
	}
	if a.K == KindDate && b.K == KindInt && (op == '+' || op == '-') {
		if op == '+' {
			return NewDate(a.I + b.I), nil
		}
		return NewDate(a.I - b.I), nil
	}
	if a.K == KindDate && b.K == KindDate && op == '-' {
		return NewInt(a.I - b.I), nil
	}
	if !numericKind(a.K) || !numericKind(b.K) {
		return Null, fmt.Errorf("arithmetic %c not defined for %s and %s", op, a.K, b.K)
	}
	if a.K == KindInt && b.K == KindInt && op != '/' {
		switch op {
		case '+':
			return NewInt(a.I + b.I), nil
		case '-':
			return NewInt(a.I - b.I), nil
		case '*':
			return NewInt(a.I * b.I), nil
		}
	}
	x, y := a.Float(), b.Float()
	switch op {
	case '+':
		return NewDouble(x + y), nil
	case '-':
		return NewDouble(x - y), nil
	case '*':
		return NewDouble(x * y), nil
	case '/':
		if y == 0 {
			return Null, fmt.Errorf("division by zero")
		}
		return NewDouble(x / y), nil
	}
	return Null, fmt.Errorf("unknown arithmetic operator %c", op)
}
