package value

// Columnar batches: the unit of vectorized execution (ROADMAP item 2).
//
// A Batch carries a morsel's worth of rows in columnar form — one typed Vec
// per schema column plus a selection vector — so operators can evaluate
// predicates and aggregates over primitive arrays (and, for VARCHAR, over
// dictionary codes) instead of materialized Value rows. Batches are built
// per morsel, so the byte-identical-at-any-width determinism contract is
// unchanged: batch boundaries depend only on input size, and downstream
// merges still happen in morsel-index order.

// Vec is one typed column vector of a Batch. Exactly one payload family is
// populated, chosen by Kind:
//
//   - KindBool, KindInt, KindDate, KindTimestamp: Ints (the Value.I payload)
//   - KindDouble: Floats
//   - KindVarchar: either Strs (materialized), or Codes+Dict (dictionary
//     encoded, the compressed form handed up by the column store)
//   - any kind: Vals, the boxed escape hatch for columns whose stored values
//     do not all match the declared kind; kernels treat such vectors like
//     rows, so nothing is re-coerced and results stay byte-identical
//
// Nulls is a validity bitmap (bit i set = row i is NULL); nil means no row
// is NULL. Dict slices are shared with the owning store and must be treated
// as immutable; payload slices are either freshly decoded per batch or
// sliced from append-only store arrays whose visible prefix never mutates.
type Vec struct {
	Kind   Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Codes  []uint32
	Dict   []string
	Vals   []Value  // boxed fallback; when non-nil all other payloads are unset
	Sorted bool     // Dict is sorted ascending (main-fragment dictionary)
	Nulls  []uint64 // validity bitmap; bit i set = NULL; nil = no nulls
	Pruned bool     // column dropped by late materialization; reads yield NULL
}

// Null reports whether row i of the vector is NULL.
func (v *Vec) Null(i int) bool {
	if v.Pruned {
		return true
	}
	if v.Vals != nil {
		return v.Vals[i].K == KindNull
	}
	if v.Nulls == nil {
		return false
	}
	w := i >> 6
	if w >= len(v.Nulls) {
		return false
	}
	return v.Nulls[w]&(1<<(uint(i)&63)) != 0
}

// SetNull marks row i NULL. EnsureNulls must have been called with a
// capacity covering i.
func (v *Vec) SetNull(i int) { v.Nulls[i>>6] |= 1 << (uint(i) & 63) }

// EnsureNulls allocates the validity bitmap for n rows if absent.
func (v *Vec) EnsureNulls(n int) {
	if v.Nulls == nil {
		v.Nulls = make([]uint64, (n+63)/64)
	}
}

// HasNulls reports whether any bit of the validity bitmap is set.
func (v *Vec) HasNulls() bool {
	for _, w := range v.Nulls {
		if w != 0 {
			return true
		}
	}
	return false
}

// Str returns the string payload of row i without boxing. Valid only for
// VARCHAR vectors with a non-NULL row i.
func (v *Vec) Str(i int) string {
	if v.Vals != nil {
		return v.Vals[i].S
	}
	if v.Dict != nil {
		return v.Dict[v.Codes[i]]
	}
	return v.Strs[i]
}

// Value boxes row i as a Value, exactly as the row-at-a-time store getters
// would: dictionary codes decode through the shared dictionary, integer-like
// kinds carry their payload in I. Pruned columns yield NULL.
func (v *Vec) Value(i int) Value {
	if v.Pruned {
		return Null
	}
	if v.Vals != nil {
		return v.Vals[i]
	}
	if v.Null(i) {
		return Null
	}
	switch v.Kind {
	case KindDouble:
		return Value{K: KindDouble, F: v.Floats[i]}
	case KindVarchar:
		return Value{K: KindVarchar, S: v.Str(i)}
	default:
		return Value{K: v.Kind, I: v.Ints[i]}
	}
}

// Batch is a columnar batch of N physical rows. Sel, when non-nil, lists the
// live physical row indices in ascending order (filtered batches keep their
// payload untouched and shrink the selection instead); a nil Sel means all
// N rows are live.
type Batch struct {
	Schema *Schema
	Cols   []Vec
	Sel    []int32
	N      int
}

// Len returns the number of live (selected) rows.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// RowIndex returns the physical row index of the k-th live row.
func (b *Batch) RowIndex(k int) int {
	if b.Sel != nil {
		return int(b.Sel[k])
	}
	return k
}

// FillRow materializes physical row i into dst, which must have
// len(b.Cols) capacity. It boxes every column, pruned ones as NULL.
func (b *Batch) FillRow(i int, dst Row) {
	for c := range b.Cols {
		dst[c] = b.Cols[c].Value(i)
	}
}

// MaterializeRows decodes every live row into freshly allocated Rows backed
// by a single Value slab (two allocations per batch, none per row). This is
// the late-materialization boundary: it runs only after predicates have
// shrunk the selection.
func (b *Batch) MaterializeRows() []Row {
	n := b.Len()
	w := len(b.Cols)
	rows := make([]Row, n)
	slab := make([]Value, n*w)
	for k := 0; k < n; k++ {
		r := slab[k*w : (k+1)*w : (k+1)*w]
		b.FillRow(b.RowIndex(k), r)
		rows[k] = r
	}
	return rows
}

// BatchFromRows builds a fully materialized batch from rows: integer-like
// and double kinds land in primitive arrays, VARCHAR stays as Strs (no
// dictionary). Row stores and remote sources use it to enter the vectorized
// path. NULLs set validity bits. A column whose values do not all carry the
// declared kind switches to the boxed Vals form so nothing is re-coerced.
func BatchFromRows(schema *Schema, rows []Row) *Batch {
	n := len(rows)
	b := &Batch{Schema: schema, Cols: make([]Vec, len(schema.Cols)), N: n}
	for c := range schema.Cols {
		v := &b.Cols[c]
		v.Kind = schema.Cols[c].Kind
		switch v.Kind {
		case KindDouble:
			v.Floats = make([]float64, n)
		case KindVarchar:
			v.Strs = make([]string, n)
		default:
			v.Ints = make([]int64, n)
		}
		for i := 0; i < n; i++ {
			x := rows[i][c]
			if x.K == KindNull {
				v.EnsureNulls(n)
				v.SetNull(i)
				continue
			}
			if x.K != v.Kind {
				boxColumn(v, rows, c, n)
				break
			}
			switch v.Kind {
			case KindDouble:
				v.Floats[i] = x.F
			case KindVarchar:
				v.Strs[i] = x.S
			default:
				v.Ints[i] = x.I
			}
		}
	}
	return b
}

// boxColumn rewrites column c of the batch into boxed form, copying the
// stored values verbatim.
func boxColumn(v *Vec, rows []Row, c, n int) {
	v.Ints, v.Floats, v.Strs, v.Nulls = nil, nil, nil, nil
	v.Vals = make([]Value, n)
	for i := 0; i < n; i++ {
		v.Vals[i] = rows[i][c]
	}
}
