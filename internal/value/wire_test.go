package value

import (
	"bytes"
	"math"
	"testing"
)

func TestWireValueRoundTrip(t *testing.T) {
	vals := []Value{
		Null,
		NewBool(true),
		NewBool(false),
		NewInt(0),
		NewInt(-1),
		NewInt(math.MaxInt64),
		NewInt(math.MinInt64),
		NewDouble(0),
		NewDouble(-3.25),
		NewDouble(math.Inf(1)),
		NewString(""),
		NewString("héllo, wörld"),
		NewDate(19000),
		NewTimestamp(1_700_000_000_000_000),
	}
	for _, v := range vals {
		buf := AppendValue(nil, v)
		got, n, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if n != len(buf) {
			t.Fatalf("%v: consumed %d of %d", v, n, len(buf))
		}
		if got != v && !(math.IsNaN(got.F) && math.IsNaN(v.F)) {
			t.Fatalf("round-trip %v -> %v", v, got)
		}
	}
}

func TestWireRowRoundTripAndDeterminism(t *testing.T) {
	row := Row{NewInt(7), NewString("abc"), Null, NewDouble(1.5), NewBool(true)}
	a := AppendRow(nil, row)
	b := AppendRow(nil, row.Clone())
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic")
	}
	got, n, err := DecodeRow(a)
	if err != nil || n != len(a) {
		t.Fatalf("decode: %v (n=%d/%d)", err, n, len(a))
	}
	if len(got) != len(row) {
		t.Fatalf("arity %d != %d", len(got), len(row))
	}
	for i := range row {
		if got[i] != row[i] {
			t.Fatalf("col %d: %v != %v", i, got[i], row[i])
		}
	}
	// Two rows back to back decode independently.
	two := AppendRow(a, row)
	_, n1, _ := DecodeRow(two)
	r2, n2, err := DecodeRow(two[n1:])
	if err != nil || n1+n2 != len(two) || r2[1].S != "abc" {
		t.Fatalf("sequential decode broken: %v", err)
	}
}

func TestWireDecodeCorrupt(t *testing.T) {
	row := Row{NewString("abcdef"), NewInt(1)}
	buf := AppendRow(nil, row)
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := DecodeRow(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	if _, _, err := DecodeValue([]byte{0xEE}); err == nil {
		t.Fatal("unknown kind not detected")
	}
}
