package value

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindFromSQL(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"INTEGER", KindInt, true},
		{"int", KindInt, true},
		{"VARCHAR(30)", KindVarchar, true},
		{"NVARCHAR(12)", KindVarchar, true},
		{"DECIMAL(15,2)", KindDouble, true},
		{"DATE", KindDate, true},
		{"TIMESTAMP", KindTimestamp, true},
		{"BOOLEAN", KindBool, true},
		{"BLOB", KindNull, false},
	}
	for _, c := range cases {
		got, ok := KindFromSQL(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("KindFromSQL(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestCompareNumericPromotion(t *testing.T) {
	if Compare(NewInt(3), NewDouble(3.0)) != 0 {
		t.Error("3 should equal 3.0")
	}
	if Compare(NewInt(3), NewDouble(3.5)) != -1 {
		t.Error("3 < 3.5")
	}
	if Compare(NewDouble(4.5), NewInt(4)) != 1 {
		t.Error("4.5 > 4")
	}
}

func TestCompareNullsFirst(t *testing.T) {
	if Compare(Null, NewInt(-999)) != -1 {
		t.Error("NULL sorts before any value")
	}
	if Compare(NewString(""), Null) != 1 {
		t.Error("any value sorts after NULL")
	}
	if Compare(Null, Null) != 0 {
		t.Error("NULL compares equal to NULL for ordering")
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null, Null) {
		t.Error("NULL = NULL must be false under SQL equality")
	}
	if Equal(Null, NewInt(0)) {
		t.Error("NULL = 0 must be false")
	}
	if !Equal(NewString("a"), NewString("a")) {
		t.Error("'a' = 'a'")
	}
}

func TestDateParsingAndArithmetic(t *testing.T) {
	d, err := ParseDate("1994-01-01")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.String(); got != "1994-01-01" {
		t.Fatalf("round trip = %q", got)
	}
	d2, err := Add(d, NewInt(365))
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.String(); got != "1995-01-01" {
		t.Fatalf("1994-01-01 + 365 = %q", got)
	}
	diff, err := Sub(d2, d)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Int() != 365 {
		t.Fatalf("date diff = %d", diff.Int())
	}
}

func TestTimestampParsing(t *testing.T) {
	ts, err := ParseTimestamp("2015-03-23 10:30:00")
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.Time().Format("2006-01-02 15:04:05"); got != "2015-03-23 10:30:00" {
		t.Fatalf("timestamp round trip = %q", got)
	}
	if _, err := ParseTimestamp("not a time"); err == nil {
		t.Fatal("expected error for invalid timestamp")
	}
}

func TestCast(t *testing.T) {
	v, err := Cast(NewString("42"), KindInt)
	if err != nil || v.Int() != 42 {
		t.Fatalf("cast '42' to int: %v %v", v, err)
	}
	v, err = Cast(NewInt(7), KindDouble)
	if err != nil || v.Float() != 7.0 {
		t.Fatalf("cast 7 to double: %v %v", v, err)
	}
	v, err = Cast(NewDouble(2.9), KindInt)
	if err != nil || v.Int() != 2 {
		t.Fatalf("cast 2.9 to int truncates: %v %v", v, err)
	}
	if _, err := Cast(NewString("xyz"), KindInt); err == nil {
		t.Fatal("casting 'xyz' to int should fail")
	}
	v, err = Cast(Null, KindVarchar)
	if err != nil || !v.IsNull() {
		t.Fatal("cast NULL stays NULL")
	}
}

func TestArithmetic(t *testing.T) {
	sum, err := Add(NewInt(2), NewInt(3))
	if err != nil || sum.K != KindInt || sum.I != 5 {
		t.Fatalf("2+3 = %v", sum)
	}
	q, err := Div(NewInt(7), NewInt(2))
	if err != nil || q.K != KindDouble || q.F != 3.5 {
		t.Fatalf("7/2 = %v (want DOUBLE 3.5)", q)
	}
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Fatal("division by zero must error")
	}
	n, err := Mul(Null, NewInt(3))
	if err != nil || !n.IsNull() {
		t.Fatal("NULL * 3 is NULL")
	}
	if _, err := Add(NewString("a"), NewInt(1)); err == nil {
		t.Fatal("string + int must error")
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := NewString("O'Brien").SQLLiteral(); got != "'O''Brien'" {
		t.Fatalf("quote escaping: %q", got)
	}
	d, _ := ParseDate("1998-12-01")
	if got := d.SQLLiteral(); got != "DATE '1998-12-01'" {
		t.Fatalf("date literal: %q", got)
	}
	if got := NewInt(-5).SQLLiteral(); got != "-5" {
		t.Fatalf("int literal: %q", got)
	}
}

func TestHashConsistentWithCompare(t *testing.T) {
	// Values that compare equal must hash equal, across kinds.
	pairs := [][2]Value{
		{NewInt(10), NewDouble(10)},
		{NewString("x"), NewString("x")},
		{NewBool(true), NewBool(true)},
	}
	for _, p := range pairs {
		if Compare(p[0], p[1]) == 0 && p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values hash differently: %v %v", p[0], p[1])
		}
	}
}

func TestCompareTotalOrderProperty(t *testing.T) {
	// Antisymmetry: Compare(a,b) == -Compare(b,a) for arbitrary ints/doubles.
	f := func(a, b int64, x, y float64) bool {
		vals := []Value{NewInt(a), NewInt(b), NewDouble(x), NewDouble(y), Null}
		for _, u := range vals {
			for _, v := range vals {
				if Compare(u, v) != -Compare(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashEqualityProperty(t *testing.T) {
	f := func(i int64) bool {
		return NewInt(i).Hash() == NewDouble(float64(i)).Hash() ==
			(Compare(NewInt(i), NewDouble(float64(i))) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCastRoundTripProperty(t *testing.T) {
	f := func(i int64) bool {
		s, err := Cast(NewInt(i), KindVarchar)
		if err != nil {
			return false
		}
		back, err := Cast(s, KindInt)
		return err == nil && back.I == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchemaFind(t *testing.T) {
	s := NewSchema(
		Column{Name: "l.l_orderkey", Kind: KindInt},
		Column{Name: "l_quantity", Kind: KindDouble},
	)
	if s.Find("L_QUANTITY") != 1 {
		t.Error("case-insensitive lookup failed")
	}
	if s.Find("l_orderkey") != 0 {
		t.Error("suffix match for qualified stored name failed")
	}
	if s.Find("x.l_quantity") != 1 {
		t.Error("suffix match for qualified lookup failed")
	}
	if s.Find("missing") != -1 {
		t.Error("missing column should return -1")
	}
}

func TestSchemaQualifyConcat(t *testing.T) {
	a := NewSchema(Column{Name: "id", Kind: KindInt}).Qualify("t")
	if a.Cols[0].Name != "t.id" {
		t.Fatalf("qualify: %q", a.Cols[0].Name)
	}
	b := NewSchema(Column{Name: "v", Kind: KindVarchar})
	c := a.Concat(b)
	if c.Len() != 2 || c.Cols[1].Name != "v" {
		t.Fatalf("concat: %v", c)
	}
	// Concat must not alias the inputs.
	c.Cols[0].Name = "mutated"
	if a.Cols[0].Name != "t.id" {
		t.Fatal("concat aliases its input")
	}
}

func TestRowHashGrouping(t *testing.T) {
	r1 := Row{NewInt(1), NewString("a"), NewDouble(2)}
	r2 := Row{NewInt(1), NewString("b"), NewDouble(2)}
	if r1.Hash([]int{0, 2}) != r2.Hash([]int{0, 2}) {
		t.Error("rows equal on key ordinals must hash equal")
	}
	if !r1.EqualAt(r2, []int{0, 2}, []int{0, 2}) {
		t.Error("EqualAt on matching ordinals")
	}
	if r1.EqualAt(r2, []int{1}, []int{1}) {
		t.Error("EqualAt must detect mismatch")
	}
}

func TestRowEqualAtNulls(t *testing.T) {
	r1 := Row{Null}
	r2 := Row{Null}
	if !r1.EqualAt(r2, []int{0}, []int{0}) {
		t.Error("grouping treats NULL keys as equal")
	}
}

func TestValueStringFormats(t *testing.T) {
	if NewDouble(math.Inf(1)).String() != "+Inf" {
		t.Skip("formatting of Inf not asserted strictly")
	}
}

func TestRowBytes(t *testing.T) {
	r := Row{NewInt(1), NewString("abcd")}
	if got := RowBytes(r); got != 8+4+2 {
		t.Fatalf("RowBytes = %d", got)
	}
	rs := NewRows(NewSchema(Column{Name: "a", Kind: KindInt}))
	rs.Append(Row{NewInt(1)})
	rs.Append(Row{NewInt(2)})
	if rs.EstimateBytes() != 16 {
		t.Fatalf("EstimateBytes = %d", rs.EstimateBytes())
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "NULL", KindBool: "BOOLEAN", KindInt: "BIGINT",
		KindDouble: "DOUBLE", KindVarchar: "VARCHAR", KindDate: "DATE",
		KindTimestamp: "TIMESTAMP",
	} {
		if k.String() != want {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
}

func TestValueStringAllKinds(t *testing.T) {
	d, _ := ParseDate("2015-03-23")
	ts, _ := ParseTimestamp("2015-03-23 10:30:00.5")
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
		{NewInt(-7), "-7"},
		{NewDouble(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{d, "2015-03-23"},
		{ts, "2015-03-23 10:30:00.500000"},
	}
	for _, c := range cases {
		if c.v.String() != c.want {
			t.Errorf("String() = %q want %q", c.v.String(), c.want)
		}
	}
}

func TestCastTemporalConversions(t *testing.T) {
	d, _ := ParseDate("2015-03-23")
	ts, err := Cast(d, KindTimestamp)
	if err != nil || ts.K != KindTimestamp {
		t.Fatalf("date→timestamp: %v %v", ts, err)
	}
	back, err := Cast(ts, KindDate)
	if err != nil || Compare(back, d) != 0 {
		t.Fatalf("timestamp→date: %v %v", back, err)
	}
	// varchar → timestamp
	v, err := Cast(NewString("2015-03-23 10:00:00"), KindTimestamp)
	if err != nil || v.K != KindTimestamp {
		t.Fatalf("varchar→timestamp: %v %v", v, err)
	}
	// bool ↔ int
	b, err := Cast(NewInt(1), KindBool)
	if err != nil || !b.Bool() {
		t.Fatal("int→bool")
	}
	i, err := Cast(NewBool(true), KindInt)
	if err != nil || i.Int() != 1 {
		t.Fatal("bool→int")
	}
	// impossible casts
	if _, err := Cast(NewBool(true), KindDate); err == nil {
		t.Fatal("bool→date must fail")
	}
	if _, err := Cast(NewString("not a date"), KindDate); err == nil {
		t.Fatal("bad date cast must fail")
	}
}

func TestDateMinusDateAndErrors(t *testing.T) {
	a, _ := ParseDate("2015-01-10")
	b, _ := ParseDate("2015-01-01")
	diff, err := Sub(a, b)
	if err != nil || diff.Int() != 9 {
		t.Fatalf("date diff: %v %v", diff, err)
	}
	if _, err := Mul(a, b); err == nil {
		t.Fatal("date * date must fail")
	}
	sum, err := Sub(a, NewInt(5))
	if err != nil || sum.String() != "2015-01-05" {
		t.Fatalf("date - int: %v", sum)
	}
}

func TestCompareTemporalCrossKind(t *testing.T) {
	d, _ := ParseDate("2015-01-01")
	ts := NewTimestamp(d.I) // same integer encoding, different kinds
	if Compare(d, ts) != 0 {
		t.Skip("cross-kind temporal comparison is by encoding; informational")
	}
}

func TestMustFindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFind must panic on missing column")
		}
	}()
	NewSchema().MustFind("nope")
}

func TestSchemaStringAndClone(t *testing.T) {
	s := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindVarchar})
	if s.String() != "(a BIGINT, b VARCHAR)" {
		t.Fatalf("schema string = %q", s.String())
	}
	c := s.Clone()
	c.Cols[0].Name = "z"
	if s.Cols[0].Name != "a" {
		t.Fatal("clone aliases input")
	}
	if len(s.Names()) != 2 {
		t.Fatal("names")
	}
}

func TestRowString(t *testing.T) {
	r := Row{NewInt(1), Null, NewString("x")}
	if r.String() != "[1, NULL, x]" {
		t.Fatalf("row string = %q", r.String())
	}
}

func TestTimeConversionHelpers(t *testing.T) {
	now := time.Date(2015, 3, 23, 12, 0, 0, 0, time.UTC)
	d := DateFromTime(now)
	if d.Time().Format("2006-01-02") != "2015-03-23" {
		t.Fatal("DateFromTime")
	}
	ts := TimestampFromTime(now)
	if !ts.Time().Equal(now) {
		t.Fatal("TimestampFromTime")
	}
	if !NewString("x").Time().IsZero() {
		t.Fatal("Time on non-temporal is zero")
	}
}
