package value

import "testing"

// The hashing and comparison leaves run once per row per query operator;
// these tests pin them at zero heap allocations so a regression (like the
// hash/fnv constructor this replaced) cannot sneak back in.

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if n := testing.AllocsPerRun(200, fn); n != 0 {
		t.Errorf("%s allocates %.1f times per call, want 0", name, n)
	}
}

func TestHashZeroAllocs(t *testing.T) {
	vals := []Value{
		Null,
		NewBool(true),
		NewInt(42),
		NewDouble(3.5),
		NewString("dictionary-encoded"),
		{K: KindDate, I: 19000},
	}
	for _, v := range vals {
		v := v
		assertZeroAllocs(t, "Value.Hash", func() { _ = v.Hash() })
	}
}

func TestRowOpsZeroAllocs(t *testing.T) {
	row := Row{NewInt(7), NewString("x"), NewDouble(1.25)}
	other := Row{NewInt(7), NewString("x"), NewDouble(2.5)}
	ords := []int{0, 1}
	assertZeroAllocs(t, "Row.Hash", func() { _ = row.Hash(ords) })
	assertZeroAllocs(t, "Row.EqualAt", func() { _ = row.EqualAt(other, ords, ords) })
	assertZeroAllocs(t, "Compare", func() { _ = Compare(row[0], other[0]) })
	assertZeroAllocs(t, "Equal", func() { _ = Equal(row[1], other[1]) })
}
