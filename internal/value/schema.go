package value

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a schema.
type Column struct {
	Name     string
	Kind     Kind
	Nullable bool
}

// Schema is an ordered list of columns. Column name lookup is
// case-insensitive, matching the SQL dialect.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// Find returns the ordinal of the named column, or -1. Names match
// case-insensitively and may be qualified ("t.a" matches column "a" as well
// as a column literally named "t.a").
func (s *Schema) Find(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	// Fall back to suffix match for qualified lookups against unqualified
	// column names and vice versa.
	if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
		suffix := name[dot+1:]
		for i, c := range s.Cols {
			if strings.EqualFold(c.Name, suffix) {
				return i
			}
		}
	} else {
		for i, c := range s.Cols {
			if d := strings.LastIndexByte(c.Name, '.'); d >= 0 && strings.EqualFold(c.Name[d+1:], name) {
				return i
			}
		}
	}
	return -1
}

// MustFind is Find but panics on a missing column; used in tests and
// internal plan construction where the column is known to exist.
func (s *Schema) MustFind(name string) int {
	i := s.Find(name)
	if i < 0 {
		panic(fmt.Sprintf("schema has no column %q (have %v)", name, s.Names()))
	}
	return i
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		names[i] = c.Name
	}
	return names
}

// Qualify returns a copy of the schema with every unqualified column name
// prefixed by alias.
func (s *Schema) Qualify(alias string) *Schema {
	out := &Schema{Cols: make([]Column, len(s.Cols))}
	for i, c := range s.Cols {
		if !strings.ContainsRune(c.Name, '.') && alias != "" {
			c.Name = alias + "." + c.Name
		}
		out.Cols[i] = c
	}
	return out
}

// Concat returns the concatenation of two schemas (used by joins).
func (s *Schema) Concat(o *Schema) *Schema {
	out := &Schema{Cols: make([]Column, 0, len(s.Cols)+len(o.Cols))}
	out.Cols = append(out.Cols, s.Cols...)
	out.Cols = append(out.Cols, o.Cols...)
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	out := &Schema{Cols: make([]Column, len(s.Cols))}
	copy(out.Cols, s.Cols)
	return out
}

// String renders the schema as "(a BIGINT, b VARCHAR)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Row is one tuple of values, positionally aligned with a Schema.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Hash hashes the projection of the row at the given ordinals; used for
// hash joins and grouping.
func (r Row) Hash(ordinals []int) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for _, o := range ordinals {
		h = h*1099511628211 ^ r[o].Hash()
	}
	return h
}

// EqualAt reports whether two rows agree (by Compare==0, so NULL==NULL here,
// matching GROUP BY and join-key semantics used by the executor's hash
// operators which treat NULL groups as equal) on the given ordinals.
func (r Row) EqualAt(o Row, a, b []int) bool {
	for i := range a {
		if Compare(r[a[i]], o[b[i]]) != 0 {
			return false
		}
	}
	return true
}

// String renders the row for debugging: "[1, foo, 2.5]".
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Rows is a materialized result set.
type Rows struct {
	Schema *Schema
	Data   []Row
}

// NewRows allocates an empty result set with the given schema.
func NewRows(s *Schema) *Rows { return &Rows{Schema: s} }

// Append adds a row.
func (r *Rows) Append(row Row) { r.Data = append(r.Data, row) }

// Len returns the row count.
func (r *Rows) Len() int { return len(r.Data) }

// EstimateBytes approximates the wire size of the result set; the federated
// cost model uses it to account for communication costs.
func (r *Rows) EstimateBytes() int64 {
	var n int64
	for _, row := range r.Data {
		n += RowBytes(row)
	}
	return n
}

// RowBytes approximates the serialized size of one row.
func RowBytes(row Row) int64 {
	var n int64
	for _, v := range row {
		switch v.K {
		case KindVarchar:
			n += int64(len(v.S)) + 2
		default:
			n += 8
		}
	}
	return n
}
