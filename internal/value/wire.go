package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire encoding of values and rows — the redo-record row format shared by
// the WAL and the savepoint row files. The encoding is deterministic
// (byte-identical for equal rows), self-delimiting, and append-friendly:
//
//	value: [1B kind][payload]   payload by kind:
//	  NULL                      —
//	  BOOLEAN                   1 byte (0/1)
//	  BIGINT/DATE/TIMESTAMP     zigzag varint
//	  DOUBLE                    8 bytes little-endian IEEE bits
//	  VARCHAR                   uvarint length + bytes
//	row: uvarint column count, then each value

// AppendValue appends the wire encoding of v to buf.
func AppendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.K))
	switch v.K {
	case KindNull:
	case KindBool:
		if v.I != 0 {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case KindInt, KindDate, KindTimestamp:
		buf = binary.AppendVarint(buf, v.I)
	case KindDouble:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
		buf = append(buf, b[:]...)
	case KindVarchar:
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		buf = append(buf, v.S...)
	}
	return buf
}

// DecodeValue decodes one value from b, returning it and the bytes
// consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Null, 0, fmt.Errorf("value decode: empty buffer")
	}
	k := Kind(b[0])
	n := 1
	switch k {
	case KindNull:
		return Null, n, nil
	case KindBool:
		if len(b) < 2 {
			return Null, 0, fmt.Errorf("value decode: short BOOLEAN")
		}
		return Value{K: KindBool, I: int64(b[1] & 1)}, 2, nil
	case KindInt, KindDate, KindTimestamp:
		i, w := binary.Varint(b[1:])
		if w <= 0 {
			return Null, 0, fmt.Errorf("value decode: bad varint")
		}
		return Value{K: k, I: i}, 1 + w, nil
	case KindDouble:
		if len(b) < 9 {
			return Null, 0, fmt.Errorf("value decode: short DOUBLE")
		}
		return Value{K: KindDouble, F: math.Float64frombits(binary.LittleEndian.Uint64(b[1:]))}, 9, nil
	case KindVarchar:
		l, w := binary.Uvarint(b[1:])
		if w <= 0 || uint64(len(b)) < 1+uint64(w)+l {
			return Null, 0, fmt.Errorf("value decode: short VARCHAR")
		}
		start := 1 + w
		return Value{K: KindVarchar, S: string(b[start : start+int(l)])}, start + int(l), nil
	}
	return Null, 0, fmt.Errorf("value decode: unknown kind %d", k)
}

// AppendRow appends the wire encoding of a row to buf.
func AppendRow(buf []byte, row Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	for _, v := range row {
		buf = AppendValue(buf, v)
	}
	return buf
}

// DecodeRow decodes one row from b, returning it and the bytes consumed.
func DecodeRow(b []byte) (Row, int, error) {
	cols, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, 0, fmt.Errorf("row decode: bad column count")
	}
	if cols > 1<<20 {
		return nil, 0, fmt.Errorf("row decode: implausible column count %d", cols)
	}
	off := w
	row := make(Row, cols)
	for i := range row {
		v, n, err := DecodeValue(b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("row decode: column %d: %w", i, err)
		}
		row[i] = v
		off += n
	}
	return row, off, nil
}
