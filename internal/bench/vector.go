package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"hana/internal/engine"
)

// The vectorized-executor benchmark: the same TPC-H workloads once through
// the classic row-at-a-time executor (pinned via engine.WithRowExec) and
// once through the default batch path, over the same loaded engine — so the
// only variable is the operator interface. Results land in BENCH_vector.json
// via `cmd/benchpar -vector`.

// VectorResult is one workload's row-vs-batch measurement.
type VectorResult struct {
	Workload     string  `json:"workload"`
	Rows         int     `json:"rows"`
	RowNSOp      float64 `json:"row_ns_per_op"`
	VectorNSOp   float64 `json:"vector_ns_per_op"`
	Speedup      float64 `json:"speedup"`
	RowAllocs    uint64  `json:"row_allocs_per_op"`
	RowBytes     uint64  `json:"row_bytes_per_op"`
	VectorAllocs uint64  `json:"vector_allocs_per_op"`
	VectorBytes  uint64  `json:"vector_bytes_per_op"`
}

// VectorReport is the BENCH_vector.json payload.
type VectorReport struct {
	SF         float64        `json:"sf"`
	NumCPU     int            `json:"num_cpu"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Workers    int            `json:"workers"`
	Iterations int            `json:"iterations"`
	Results    []VectorResult `json:"results"`
}

// RunVectorBench measures every workload through the row executor and the
// vectorized executor at the same parallelism, taking the best of `iters`
// runs each (min, not mean: the interesting number is the cost of the work,
// not of the scheduler).
func RunVectorBench(e *engine.Engine, sf float64, workers, iters int) (*VectorReport, error) {
	ctx := context.Background()
	rep := &VectorReport{
		SF:         sf,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Iterations: iters,
	}
	best := func(sql string, opts ...engine.ExecOption) (time.Duration, int, uint64, uint64, error) {
		min := time.Duration(0)
		rows := 0
		runtime.GC()
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		for i := 0; i < iters; i++ {
			start := time.Now()
			res, err := e.ExecuteContext(ctx, sql, opts...)
			d := time.Since(start)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			rows = len(res.Rows)
			if min == 0 || d < min {
				min = d
			}
		}
		runtime.ReadMemStats(&msAfter)
		allocs := (msAfter.Mallocs - msBefore.Mallocs) / uint64(iters)
		bytes := (msAfter.TotalAlloc - msBefore.TotalAlloc) / uint64(iters)
		return min, rows, allocs, bytes, nil
	}
	for _, w := range ParallelWorkloads {
		row, rows, rowAllocs, rowBytes, err := best(w.SQL,
			engine.WithParallelism(workers), engine.WithRowExec())
		if err != nil {
			return nil, fmt.Errorf("%s row: %w", w.Name, err)
		}
		vec, _, vecAllocs, vecBytes, err := best(w.SQL, engine.WithParallelism(workers))
		if err != nil {
			return nil, fmt.Errorf("%s vector: %w", w.Name, err)
		}
		speedup := 0.0
		if vec > 0 {
			speedup = float64(row) / float64(vec)
		}
		rep.Results = append(rep.Results, VectorResult{
			Workload:     w.Name,
			Rows:         rows,
			RowNSOp:      float64(row),
			VectorNSOp:   float64(vec),
			Speedup:      speedup,
			RowAllocs:    rowAllocs,
			RowBytes:     rowBytes,
			VectorAllocs: vecAllocs,
			VectorBytes:  vecBytes,
		})
	}
	return rep, nil
}
