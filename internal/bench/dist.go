package bench

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"hana/internal/dist"
	"hana/internal/engine"
	"hana/internal/tpch"
)

// The scale-out benchmark: the same TPC-H workloads on a sharded
// coordinator/worker fleet at increasing shard counts, each measured
// against the identical query pinned local on the same engine
// (engine.WithLocalOnly), so the only variable is the exchange. Results
// land in BENCH_dist.json via cmd/benchpar -dist.

// DistWorkloads are the measured queries, chosen so each exercises one
// distributed operator: Scan ships the filter and merges the shard streams
// by global sequence; Agg ships exactly-mergeable partials (COUNT/MIN/MAX)
// per shard; Join broadcasts the small build side and probes sharded.
var DistWorkloads = []struct {
	Name string
	SQL  string
}{
	{"scan", `SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_extendedprice > 4000 AND l_discount > 0.05`},
	{"agg", `SELECT l_returnflag, l_linestatus, COUNT(*), MIN(l_orderkey), MAX(l_orderkey)
		FROM lineitem GROUP BY l_returnflag, l_linestatus`},
	{"join", `SELECT COUNT(*) FROM lineitem, orders
		WHERE l_orderkey = o_orderkey AND o_orderpriority = '1-URGENT'`},
}

// DistResult is one workload's measurement at one shard count.
type DistResult struct {
	Workload string  `json:"workload"`
	Shards   int     `json:"shards"`
	Rows     int     `json:"rows"`
	LocalMS  float64 `json:"local_ms"`
	DistMS   float64 `json:"dist_ms"`
	// Speedup is local/dist wall clock; in-process workers share the host,
	// so this tracks exchange overhead, not cluster scaling.
	Speedup float64 `json:"speedup"`
}

// DistReport is the BENCH_dist.json payload.
type DistReport struct {
	SF         float64      `json:"sf"`
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Iterations int          `json:"iterations"`
	Results    []DistResult `json:"results"`
}

// RunDistBench loads the TPC-H fixture once per shard count into a sharded
// engine and measures every workload distributed vs pinned-local, best of
// `iters` runs each.
func RunDistBench(sf float64, seed int64, workers, iters int, shardCounts []int) (*DistReport, error) {
	data := tpch.Generate(sf, seed)
	schemas := tpch.Schemas()
	rep := &DistReport{
		SF:         sf,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Iterations: iters,
	}
	ctx := context.Background()
	for _, shards := range shardCounts {
		extDir, err := os.MkdirTemp("", "benchdist")
		if err != nil {
			return nil, err
		}
		e := engine.New(engine.Config{
			ExtendedStorageDir: extDir,
			Parallelism:        workers,
			Topology:           dist.Topology{Shards: shards},
		})
		for name, rows := range data.Tables {
			if err := createLocal(e, name, schemas[name], rows); err != nil {
				os.RemoveAll(extDir)
				return nil, fmt.Errorf("shards=%d load %s: %w", shards, name, err)
			}
		}
		best := func(sql string, opts ...engine.ExecOption) (time.Duration, int, error) {
			min := time.Duration(0)
			rows := 0
			for i := 0; i < iters; i++ {
				start := time.Now()
				res, err := e.ExecuteContext(ctx, sql, opts...)
				d := time.Since(start)
				if err != nil {
					return 0, 0, err
				}
				rows = len(res.Rows)
				if min == 0 || d < min {
					min = d
				}
			}
			return min, rows, nil
		}
		for _, w := range DistWorkloads {
			local, _, err := best(w.SQL, engine.WithLocalOnly(), engine.WithParallelism(workers))
			if err != nil {
				os.RemoveAll(extDir)
				return nil, fmt.Errorf("%s local: %w", w.Name, err)
			}
			dd, rows, err := best(w.SQL, engine.WithParallelism(workers))
			if err != nil {
				os.RemoveAll(extDir)
				return nil, fmt.Errorf("%s shards=%d: %w", w.Name, shards, err)
			}
			speedup := 0.0
			if dd > 0 {
				speedup = float64(local) / float64(dd)
			}
			rep.Results = append(rep.Results, DistResult{
				Workload: w.Name,
				Shards:   shards,
				Rows:     rows,
				LocalMS:  float64(local) / float64(time.Millisecond),
				DistMS:   float64(dd) / float64(time.Millisecond),
				Speedup:  speedup,
			})
		}
		os.RemoveAll(extDir)
	}
	return rep, nil
}
