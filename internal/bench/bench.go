// Package bench assembles the experiment harnesses that regenerate the
// paper's figures: the federated TPC-H setup of §4.4 (Figures 14 and 15),
// the time-series compression comparison of Figure 2, and the federated
// plan-strategy demonstration of Figure 7. Both the root benchmarks and
// cmd/benchfig drive these harnesses.
package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"hana/internal/colstore"
	"hana/internal/engine"
	"hana/internal/hdfs"
	"hana/internal/hive"
	"hana/internal/mapreduce"
	"hana/internal/rowstore"
	"hana/internal/timeseries"
	"hana/internal/tpch"
	"hana/internal/value"
)

// FederationConfig tunes the Figure 14/15 setup.
type FederationConfig struct {
	SF          float64       // TPC-H scale factor (paper: 1; default here 0.02)
	Seed        int64         // generator seed
	JobStartup  time.Duration // simulated MR job submission overhead
	MapSlots    int           // paper cluster: 240
	ReduceSlots int           // paper cluster: 120
	ExtDir      string        // extended storage dir (temp dir of the caller)
}

func (c FederationConfig) withDefaults() FederationConfig {
	if c.SF == 0 {
		c.SF = 0.02
	}
	if c.Seed == 0 {
		c.Seed = 2015
	}
	if c.MapSlots == 0 {
		c.MapSlots = 240
	}
	if c.ReduceSlots == 0 {
		c.ReduceSlots = 120
	}
	return c
}

// Federation is the assembled engine + Hive deployment mirroring the
// paper's evaluation: LINEITEM, CUSTOMER, ORDERS, PARTSUPP and PART
// federated at Hive; SUPPLIER, NATION, REGION (and a local PART copy for
// Q14/Q19) in the HANA engine.
type Federation struct {
	Engine *engine.Engine
	Server *hive.Server
	Data   *tpch.Data
	Host   string
}

// SetupFederation generates data and loads both sides.
func SetupFederation(cfg FederationConfig) (*Federation, error) {
	cfg = cfg.withDefaults()
	data := tpch.Generate(cfg.SF, cfg.Seed)
	schemas := tpch.Schemas()

	// The 7-node Hadoop cluster of the paper's evaluation.
	cluster := hdfs.NewCluster(7, hdfs.WithBlockSize(1<<20), hdfs.WithReplication(3))
	ms := hive.NewMetastore(cluster, "/warehouse")
	mr := mapreduce.NewEngine(cluster, mapreduce.Config{
		MapSlots:        cfg.MapSlots,
		ReduceSlots:     cfg.ReduceSlots,
		DefaultReducers: 4,
		JobStartup:      cfg.JobStartup,
	})
	host := fmt.Sprintf("hive-bench-%d", time.Now().UnixNano())
	srv := hive.NewServer(host, ms, mr)
	hive.RegisterServer(srv)

	for _, t := range tpch.FederatedTables {
		if _, err := ms.CreateTable(t, schemas[t], false); err != nil {
			return nil, err
		}
		// Spread across part files like a real warehouse directory.
		files := 1 + len(data.Tables[t])/50000
		if err := ms.LoadRows(t, data.Tables[t], files); err != nil {
			return nil, err
		}
	}

	e := engine.New(engine.Config{
		ExtendedStorageDir:  cfg.ExtDir,
		EnableRemoteCache:   true,
		RemoteCacheValidity: time.Hour,
	})
	e.Registry().Register("hiveodbc", hive.NewAdapterFactory())
	e.Registry().Register("hadoop", hive.NewHadoopAdapterFactory())

	if _, err := e.ExecuteContext(context.Background(), fmt.Sprintf(
		`CREATE REMOTE SOURCE HIVE1 ADAPTER "hiveodbc" CONFIGURATION 'DSN=%s'
		 WITH CREDENTIAL TYPE 'PASSWORD' USING 'user=dfuser;password=dfpass'`, host)); err != nil {
		return nil, err
	}
	for _, t := range tpch.FederatedTables {
		if _, err := e.ExecuteContext(context.Background(), fmt.Sprintf(
			`CREATE VIRTUAL TABLE %s AT "HIVE1"."dflo"."dflo"."%s"`, t, t)); err != nil {
			return nil, err
		}
	}
	// Local tables.
	locals := append([]string{}, tpch.LocalTables...)
	for _, t := range locals {
		if err := createLocal(e, t, schemas[t], data.Tables[t]); err != nil {
			return nil, err
		}
	}
	// Local PART copy for Q14/Q19.
	partSchema := schemas["part"].Clone()
	if err := createLocal(e, "part_local", partSchema, data.Tables["part"]); err != nil {
		return nil, err
	}
	return &Federation{Engine: e, Server: srv, Data: data, Host: host}, nil
}

func createLocal(e *engine.Engine, name string, schema *value.Schema, rows []value.Row) error {
	ddl := fmt.Sprintf("CREATE TABLE %s (", name)
	for i, c := range schema.Cols {
		if i > 0 {
			ddl += ", "
		}
		ddl += c.Name + " " + c.Kind.String()
	}
	ddl += ")"
	if _, err := e.ExecuteContext(context.Background(), ddl); err != nil {
		return err
	}
	if err := e.BulkLoad(name, rows); err != nil {
		return err
	}
	return e.Analyze(name)
}

// Close unregisters the Hive server.
func (f *Federation) Close() { hive.UnregisterServer(f.Host) }

// Fig14Row is one bar of Figure 14 plus the matching Figure 15 bar.
type Fig14Row struct {
	Q           int
	Starred     bool
	Normal      time.Duration // normal SDA execution (no caching)
	FirstRun    time.Duration // cache-populating run (normal + materialization)
	CachedRun   time.Duration // run served from the remote materialization
	BenefitPct  float64       // Figure 14: (Normal-CachedRun)/Normal · 100
	OverheadPct float64       // Figure 15: (FirstRun-Normal)/Normal · 100
	Rows        int           // result cardinality (sanity)
}

// RunFig14 executes every query three times: normally, with the
// USE_REMOTE_CACHE hint cold (materializing), and with the hint warm
// (served from the remote temp table).
func (f *Federation) RunFig14() ([]Fig14Row, error) {
	queries := tpch.Queries()
	var out []Fig14Row
	for _, id := range tpch.QueryIDs() {
		q := queries[id]
		sql := tpch.UsesLocalPart(q)
		hinted := sql + " WITH HINT (USE_REMOTE_CACHE)"

		// Normal execution mode (baseline of the paper's comparison).
		f.Server.MS.CacheInvalidateAll()
		start := time.Now()
		res, err := f.Engine.ExecuteContext(context.Background(), sql)
		if err != nil {
			return nil, fmt.Errorf("Q%d normal: %w", id, err)
		}
		normal := time.Since(start)

		// First hinted run: executes + materializes remotely.
		start = time.Now()
		if _, err := f.Engine.ExecuteContext(context.Background(), hinted); err != nil {
			return nil, fmt.Errorf("Q%d first hinted: %w", id, err)
		}
		first := time.Since(start)

		// Warm run: served from the remote materialization.
		start = time.Now()
		res2, err := f.Engine.ExecuteContext(context.Background(), hinted)
		if err != nil {
			return nil, fmt.Errorf("Q%d cached: %w", id, err)
		}
		cached := time.Since(start)
		if len(res2.Rows) != len(res.Rows) {
			return nil, fmt.Errorf("Q%d: cached result has %d rows, normal %d", id, len(res2.Rows), len(res.Rows))
		}

		row := Fig14Row{
			Q: id, Starred: q.Starred,
			Normal: normal, FirstRun: first, CachedRun: cached,
			Rows: len(res.Rows),
		}
		if normal > 0 {
			row.BenefitPct = 100 * float64(normal-cached) / float64(normal)
			row.OverheadPct = 100 * float64(first-normal) / float64(normal)
		}
		out = append(out, row)
	}
	// Figure 14 sorts by descending benefit.
	sort.Slice(out, func(i, j int) bool { return out[i].BenefitPct > out[j].BenefitPct })
	return out, nil
}

// FormatFig14 renders the Figure 14 bar chart as text.
func FormatFig14(rows []Fig14Row) string {
	s := "Figure 14 — Runtime benefit of remote materialization (% vs normal SDA execution)\n"
	for _, r := range rows {
		star := " "
		if r.Starred {
			star = "*"
		}
		s += fmt.Sprintf("  Q%-2d%s %6.2f%%  (normal %8s → cached %8s, %d rows)\n",
			r.Q, star, r.BenefitPct, r.Normal.Round(time.Millisecond), r.CachedRun.Round(time.Millisecond), r.Rows)
	}
	return s
}

// FormatFig15 renders the Figure 15 bar chart as text.
func FormatFig15(rows []Fig14Row) string {
	sorted := append([]Fig14Row{}, rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].OverheadPct > sorted[j].OverheadPct })
	s := "Figure 15 — Materialization overhead of remote materialization (% vs normal execution)\n"
	for _, r := range sorted {
		star := " "
		if r.Starred {
			star = "*"
		}
		s += fmt.Sprintf("  Q%-2d%s %6.2f%%  (first hinted run %8s vs normal %8s)\n",
			r.Q, star, r.OverheadPct, r.FirstRun.Round(time.Millisecond), r.Normal.Round(time.Millisecond))
	}
	return s
}

// Fig2Result compares the storage footprints of Figure 2.
type Fig2Result struct {
	Points          int
	RowBytes        int64
	ColumnarBytes   int64
	TimeSeriesBytes int64
	VsRow           float64 // compression factor vs row storage
	VsColumnar      float64 // compression factor vs plain columnar
}

// RunFig2 stores the same equidistant sensor series three ways: row store
// (timestamp + value per row), dictionary-compressed column store, and the
// time-series representation. The paper claims >10× vs rows and >3× vs
// columnar.
func RunFig2(points int) (*Fig2Result, error) {
	if points <= 0 {
		points = 1 << 20
	}
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	interval := time.Second

	schema := value.NewSchema(
		value.Column{Name: "ts", Kind: value.KindTimestamp},
		value.Column{Name: "val", Kind: value.KindDouble},
	)
	rowTbl := rowstore.NewTable(schema, -1)
	colTbl := colstore.NewTable(schema.Clone())
	series := timeseries.New(start, interval, timeseries.CompensateLinear)

	// Deterministic quantized sensor signal (energy-meter style: long
	// plateaus, occasional quarter-unit steps).
	v := 230.0
	stateA, stateB := uint64(88172645463325252), uint64(362436069)
	nextRand := func() float64 {
		stateA ^= stateA << 13
		stateA ^= stateA >> 7
		stateA ^= stateA << 17
		stateB = stateB*69069 + 1
		return float64((stateA^stateB)%1000) / 1000
	}
	for i := 0; i < points; i++ {
		ts := start.Add(time.Duration(i) * interval)
		if nextRand() < 0.05 {
			v += float64(int(nextRand()*3)-1) * 0.25
		}
		row := value.Row{value.TimestampFromTime(ts), value.NewDouble(v)}
		if _, err := rowTbl.Append(row); err != nil {
			return nil, err
		}
		if _, err := colTbl.Append(row); err != nil {
			return nil, err
		}
		series.Append(v)
	}
	colTbl.Merge()

	r := &Fig2Result{
		Points:          points,
		RowBytes:        rowTbl.MemSize(),
		ColumnarBytes:   colTbl.MemSize(),
		TimeSeriesBytes: series.MemSize(),
	}
	r.VsRow = float64(r.RowBytes) / float64(r.TimeSeriesBytes)
	r.VsColumnar = float64(r.ColumnarBytes) / float64(r.TimeSeriesBytes)
	return r, nil
}

// FormatFig2 renders the comparison.
func FormatFig2(r *Fig2Result) string {
	return fmt.Sprintf(`Figure 2 — Time-series storage footprint (%d points)
  row storage        %10d bytes
  columnar storage   %10d bytes
  time-series store  %10d bytes
  compression vs row storage:      %5.1fx  (paper: >10x)
  compression vs columnar storage: %5.1fx  (paper: >3x)
`, r.Points, r.RowBytes, r.ColumnarBytes, r.TimeSeriesBytes, r.VsRow, r.VsColumnar)
}

// Fig7Result captures the federated-strategy demonstration.
type Fig7Result struct {
	Plan            string
	SemiJoinsChosen int64
	RowsScannedCold int64
	ChunksSkipped   int64
	Result          float64
}

// RunFig7 reproduces the plan of Figure 7: a selective local predicate on
// a small dimension table joined with a large fact table in extended
// storage; the optimizer must choose the semijoin strategy (ship the
// single matching key into the extended store) and push the group-by
// below the join boundary's data movement.
func RunFig7(extDir string, factRows int) (*Fig7Result, error) {
	e := engine.New(engine.Config{ExtendedStorageDir: extDir, SemiJoinThreshold: 64})
	if _, err := e.ExecuteContext(context.Background(), `CREATE TABLE dim (d_key BIGINT, d_name VARCHAR(20))`); err != nil {
		return nil, err
	}
	var dims []value.Row
	for i := 0; i < 1000; i++ {
		dims = append(dims, value.Row{value.NewInt(int64(i)), value.NewString(fmt.Sprintf("dim-%04d", i))})
	}
	if err := e.BulkLoad("dim", dims); err != nil {
		return nil, err
	}
	if err := e.Analyze("dim"); err != nil {
		return nil, err
	}
	if _, err := e.ExecuteContext(context.Background(), `CREATE TABLE fact (f_key BIGINT, f_val DOUBLE) USING EXTENDED STORAGE`); err != nil {
		return nil, err
	}
	var facts []value.Row
	for i := 0; i < factRows; i++ {
		facts = append(facts, value.Row{value.NewInt(int64(i % 1000)), value.NewDouble(float64(i % 97))})
	}
	if err := e.BulkLoad("fact", facts); err != nil {
		return nil, err
	}
	res, err := e.ExecuteContext(context.Background(), `SELECT d_name, SUM(f_val) FROM dim, fact
		WHERE d_key = f_key AND d_name = 'dim-0042' GROUP BY d_name`)
	if err != nil {
		return nil, err
	}
	m := e.Metrics.Snapshot()
	out := &Fig7Result{
		Plan:            res.Plan,
		SemiJoinsChosen: m.SemiJoinsChosen,
	}
	if len(res.Rows) == 1 {
		out.Result = res.Rows[0][1].Float()
	}
	ext, err := e.ExtendedStore()
	if err == nil {
		out.ChunksSkipped = ext.Stats.ChunksSkipped.Load()
	}
	return out, nil
}
