package bench

import (
	"strings"
	"testing"
)

func TestFig14AllQueriesExecute(t *testing.T) {
	if testing.Short() {
		t.Skip("federated TPC-H run")
	}
	fed, err := SetupFederation(FederationConfig{SF: 0.005, ExtDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	rows, err := fed.RunFig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("queries run = %d", len(rows))
	}
	byQ := map[int]Fig14Row{}
	for _, r := range rows {
		byQ[r.Q] = r
	}
	// Shape assertions against the paper: fully-federated queries (no local
	// joins) gain more than mixed queries, and every query gains something.
	fullShip := []int{1, 3, 4, 6, 12, 13, 18}
	mixed := []int{5, 10, 14, 16, 19}
	var fullAvg, mixedAvg float64
	for _, q := range fullShip {
		if byQ[q].BenefitPct <= 0 {
			t.Errorf("Q%d benefit = %.1f%%, want > 0", q, byQ[q].BenefitPct)
		}
		fullAvg += byQ[q].BenefitPct
	}
	for _, q := range mixed {
		mixedAvg += byQ[q].BenefitPct
	}
	fullAvg /= float64(len(fullShip))
	mixedAvg /= float64(len(mixed))
	if fullAvg <= mixedAvg {
		t.Errorf("fully-shipped avg benefit %.1f%% must exceed mixed %.1f%%", fullAvg, mixedAvg)
	}
	// Sanity on result sizes: Q1 has at most 6 groups, Q10 is limited to 20.
	if byQ[1].Rows == 0 || byQ[1].Rows > 6 {
		t.Errorf("Q1 rows = %d", byQ[1].Rows)
	}
	if byQ[10].Rows > 20 {
		t.Errorf("Q10 rows = %d", byQ[10].Rows)
	}
	t.Log("\n" + FormatFig14(rows))
	t.Log("\n" + FormatFig15(rows))
}

func TestFig2Compression(t *testing.T) {
	r, err := RunFig2(200000)
	if err != nil {
		t.Fatal(err)
	}
	if r.VsRow < 10 {
		t.Errorf("vs row = %.1fx, paper claims >10x", r.VsRow)
	}
	if r.VsColumnar < 3 {
		t.Errorf("vs columnar = %.1fx, paper claims >3x", r.VsColumnar)
	}
	t.Log("\n" + FormatFig2(r))
}

func TestFig7SemijoinStrategy(t *testing.T) {
	r, err := RunFig7(t.TempDir(), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if r.SemiJoinsChosen == 0 {
		t.Errorf("semijoin strategy not chosen:\n%s", r.Plan)
	}
	if !strings.Contains(r.Plan, "Semijoin") {
		t.Errorf("plan must show semijoin:\n%s", r.Plan)
	}
	if r.Result <= 0 {
		t.Errorf("query result = %f", r.Result)
	}
}
