package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"hana/internal/engine"
)

// Hot-path allocation benchmark: the same workloads as the parallel bench,
// but the measured quantity is allocation pressure (allocs/op, bytes/op)
// rather than wall clock. One "op" is one full query execution. Results
// land in BENCH_hotpath.json via cmd/benchpar -hotpath, with the pre-fix
// numbers embedded as "before" so the report is a self-contained
// before/after comparison.

// HotpathResult is one workload's allocation measurement at a fixed
// parallelism.
type HotpathResult struct {
	Workload    string  `json:"workload"`
	Rows        int     `json:"rows"`
	NSPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	AllocsRow   float64 `json:"allocs_per_row"`
}

// HotpathReport is the BENCH_hotpath.json payload. Before holds the
// measurements taken at the commit prior to the hot-path fixes; After holds
// the current tree's numbers.
type HotpathReport struct {
	SF         float64         `json:"sf"`
	Workers    int             `json:"workers"`
	Iterations int             `json:"iterations"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Before     []HotpathResult `json:"before,omitempty"`
	After      []HotpathResult `json:"after"`
}

// measureAlloc runs sql iters times at the given parallelism and returns
// the per-op wall clock (best of iters) plus per-op allocation deltas
// (mean over iters — allocation is deterministic enough that the mean is
// the honest number, and a min would under-report warm-cache effects).
func measureAlloc(e *engine.Engine, sql string, width, iters int) (HotpathResult, error) {
	ctx := context.Background()
	var res HotpathResult
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	min := time.Duration(0)
	for i := 0; i < iters; i++ {
		start := time.Now()
		out, err := e.ExecuteContext(ctx, sql, engine.WithParallelism(width))
		d := time.Since(start)
		if err != nil {
			return res, err
		}
		res.Rows = len(out.Rows)
		if min == 0 || d < min {
			min = d
		}
	}
	runtime.ReadMemStats(&after)
	res.NSPerOp = float64(min.Nanoseconds())
	res.AllocsPerOp = (after.Mallocs - before.Mallocs) / uint64(iters)
	res.BytesPerOp = (after.TotalAlloc - before.TotalAlloc) / uint64(iters)
	if res.Rows > 0 {
		res.AllocsRow = float64(res.AllocsPerOp) / float64(res.Rows)
	}
	return res, nil
}

// RunHotpathBench measures allocation pressure for every workload at the
// given parallelism.
func RunHotpathBench(e *engine.Engine, sf float64, workers, iters int) (*HotpathReport, error) {
	rep := &HotpathReport{
		SF:         sf,
		Workers:    workers,
		Iterations: iters,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, w := range ParallelWorkloads {
		r, err := measureAlloc(e, w.SQL, workers, iters)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		r.Workload = w.Name
		rep.After = append(rep.After, r)
	}
	return rep, nil
}
