package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"hana/internal/engine"
	"hana/internal/tpch"
)

// The morsel-executor benchmark: the same TPC-H workloads at parallelism 1
// and parallelism N over an all-local engine, so the only variable is the
// worker pool. Results land in BENCH_parallel.json via cmd/benchpar and in
// the root BenchmarkParallel* benches.

// ParallelWorkloads are the measured queries. Scan exercises the morsel
// table scan (filter pushed into the morsel loop); Agg exercises the
// parallel hash aggregation with per-worker partials; Join exercises the
// partitioned hash-join build/probe.
var ParallelWorkloads = []struct {
	Name string
	SQL  string
}{
	{"scan", `SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_extendedprice > 4000 AND l_discount > 0.05`},
	{"agg", tpch.Queries()[1].SQL},
	{"join", `SELECT o_orderpriority, COUNT(*) FROM orders, lineitem
		WHERE l_orderkey = o_orderkey AND l_shipdate > DATE '1995-03-15'
		GROUP BY o_orderpriority`},
}

// SetupLocalTPCH loads the full TPC-H fixture into a single all-local
// engine whose pool admits up to `parallelism` workers.
func SetupLocalTPCH(sf float64, seed int64, extDir string, parallelism int) (*engine.Engine, error) {
	data := tpch.Generate(sf, seed)
	schemas := tpch.Schemas()
	e := engine.New(engine.Config{
		ExtendedStorageDir: extDir,
		Parallelism:        parallelism,
	})
	for name, rows := range data.Tables {
		if err := createLocal(e, name, schemas[name], rows); err != nil {
			return nil, fmt.Errorf("load %s: %w", name, err)
		}
	}
	return e, nil
}

// ParallelResult is one workload's serial-vs-parallel measurement. The
// alloc columns track allocation pressure alongside latency so the perf
// trajectory catches regressions that a warm-cache wall clock hides.
type ParallelResult struct {
	Workload       string  `json:"workload"`
	Rows           int     `json:"rows"`
	SerialMS       float64 `json:"serial_ms"`
	ParallelMS     float64 `json:"parallel_ms"`
	Workers        int     `json:"workers"`
	Speedup        float64 `json:"speedup"`
	SerialAllocs   uint64  `json:"serial_allocs_per_op"`
	SerialBytes    uint64  `json:"serial_bytes_per_op"`
	ParallelAllocs uint64  `json:"parallel_allocs_per_op"`
	ParallelBytes  uint64  `json:"parallel_bytes_per_op"`
}

// ParallelReport is the BENCH_parallel.json payload.
type ParallelReport struct {
	SF         float64          `json:"sf"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Iterations int              `json:"iterations"`
	Results    []ParallelResult `json:"results"`
}

// RunParallelBench measures every workload at parallelism 1 and
// `workers`, taking the best of `iters` runs each (min, not mean: the
// interesting number is the cost of the work, not of the scheduler).
func RunParallelBench(e *engine.Engine, sf float64, workers, iters int) (*ParallelReport, error) {
	ctx := context.Background()
	rep := &ParallelReport{
		SF:         sf,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Iterations: iters,
	}
	best := func(sql string, width int) (time.Duration, int, uint64, uint64, error) {
		min := time.Duration(0)
		rows := 0
		runtime.GC()
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		for i := 0; i < iters; i++ {
			start := time.Now()
			res, err := e.ExecuteContext(ctx, sql, engine.WithParallelism(width))
			d := time.Since(start)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			rows = len(res.Rows)
			if min == 0 || d < min {
				min = d
			}
		}
		runtime.ReadMemStats(&msAfter)
		allocs := (msAfter.Mallocs - msBefore.Mallocs) / uint64(iters)
		bytes := (msAfter.TotalAlloc - msBefore.TotalAlloc) / uint64(iters)
		return min, rows, allocs, bytes, nil
	}
	for _, w := range ParallelWorkloads {
		serial, rows, serAllocs, serBytes, err := best(w.SQL, 1)
		if err != nil {
			return nil, fmt.Errorf("%s serial: %w", w.Name, err)
		}
		par, _, parAllocs, parBytes, err := best(w.SQL, workers)
		if err != nil {
			return nil, fmt.Errorf("%s parallel: %w", w.Name, err)
		}
		speedup := 0.0
		if par > 0 {
			speedup = float64(serial) / float64(par)
		}
		rep.Results = append(rep.Results, ParallelResult{
			Workload:       w.Name,
			Rows:           rows,
			SerialMS:       float64(serial) / float64(time.Millisecond),
			ParallelMS:     float64(par) / float64(time.Millisecond),
			Workers:        workers,
			Speedup:        speedup,
			SerialAllocs:   serAllocs,
			SerialBytes:    serBytes,
			ParallelAllocs: parAllocs,
			ParallelBytes:  parBytes,
		})
	}
	return rep, nil
}
