package dist

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hana/internal/faults"
	"hana/internal/fed"
	"hana/internal/value"
)

func intRow(vals ...int64) value.Row {
	r := make(value.Row, len(vals))
	for i, v := range vals {
		r[i] = value.NewInt(v)
	}
	return r
}

func testSchema() *value.Schema {
	return value.NewSchema(
		value.Column{Name: "A", Kind: value.KindInt},
		value.Column{Name: "B", Kind: value.KindInt},
	)
}

// seedFleet builds a topology + fleet + transport with table T sharded by
// column A, rows A=0..n-1, B=A*10, committed at cid 1.
func seedFleet(t *testing.T, topo Topology, n int, wire bool) *Local {
	t.Helper()
	workers := make([]*Worker, topo.Shards)
	for i := range workers {
		workers[i] = NewWorker(i, 2, nil)
		workers[i].Register("T", testSchema())
	}
	for i := 0; i < n; i++ {
		row := intRow(int64(i), int64(i*10))
		shard := ShardOf(row[0], topo.Shards)
		for _, owner := range topo.Owners(shard) {
			if err := workers[owner].LoadCommitted("T", shard, []int64{int64(i)}, []value.Row{row.Clone()}, 1); err != nil {
				t.Fatalf("seed: %v", err)
			}
		}
	}
	tr := NewLocal(workers)
	tr.Wire = wire
	return tr
}

// testCaller builds the guarded caller every test coordinator installs:
// Caller is required (the nil-bypass that once ran attempts bare was
// exactly the hole guardcall exists to close). Thresholds are generous so
// failover tests exercise replicas, not the breaker.
func testCaller() fed.Caller {
	return &fed.GuardedCall{
		Health: fed.NewHealth(1000, 0),
		Retry:  faults.RetryPolicy{MaxAttempts: 1},
		Span:   "fragment",
	}
}

func gather(t *testing.T, tr *Local, topo Topology, f *Fragment, fanout int) *GatherResult {
	t.Helper()
	c := &Coordinator{Topo: topo, Transport: tr, Caller: testCaller()}
	res, err := c.Gather(context.Background(), f, fanout)
	if err != nil {
		t.Fatalf("gather: %v", err)
	}
	return res
}

func TestGatherScanRestoresSerialOrder(t *testing.T) {
	const n = 10000
	for _, shards := range []int{2, 3, 4} {
		for _, wire := range []bool{false, true} {
			topo := Topology{Shards: shards}
			tr := seedFleet(t, topo, n, wire)
			f := &Fragment{Snapshot: 1, Table: "T", Binding: "T", Where: "MOD(A, 3) = 0"}
			for _, fanout := range []int{0, 1, 2} {
				res := gather(t, tr, topo, f, fanout)
				want := int64(0)
				for i, row := range res.Rows {
					if row[0].I != want || res.Seqs[i] != want {
						t.Fatalf("shards=%d wire=%v fanout=%d: row %d = %v seq %d, want A=%d", shards, wire, fanout, i, row, res.Seqs[i], want)
					}
					want += 3
				}
				if len(res.Rows) != (n+2)/3 {
					t.Fatalf("shards=%d: got %d rows, want %d", shards, len(res.Rows), (n+2)/3)
				}
				if res.Scanned != n {
					t.Fatalf("shards=%d: scanned %d, want %d", shards, res.Scanned, n)
				}
			}
		}
	}
}

func TestSnapshotVisibility(t *testing.T) {
	topo := Topology{Shards: 2, Replicas: 1}
	tr := seedFleet(t, topo, 10, false)
	// Insert a row at cid 5 and delete row seq 0 at cid 7.
	row := intRow(100, 1000)
	shard := ShardOf(row[0], 2)
	w := tr.Worker(topo.Owners(shard)[0])
	w.BufferInsert(42, "T", shard, 100, row)
	if err := w.Prepare(42); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if err := w.Commit(42, 5); err != nil {
		t.Fatalf("commit: %v", err)
	}
	shard0 := ShardOf(value.NewInt(0), 2)
	w0 := tr.Worker(topo.Owners(shard0)[0])
	w0.BufferDelete(43, "T", shard0, 0)
	if err := w0.Prepare(43); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if err := w0.Commit(43, 7); err != nil {
		t.Fatalf("commit: %v", err)
	}

	counts := map[uint64]int{1: 10, 5: 11, 7: 10, 9: 10}
	for snap, want := range counts {
		res := gather(t, tr, topo, &Fragment{Snapshot: snap, Table: "T", Binding: "T"}, 0)
		if len(res.Rows) != want {
			t.Fatalf("snapshot %d: got %d rows, want %d", snap, len(res.Rows), want)
		}
	}
	// Aborted transactions leave nothing behind.
	w.BufferInsert(44, "T", shard, 200, intRow(200, 2000))
	if err := w.Abort(44); err != nil {
		t.Fatalf("abort: %v", err)
	}
	res := gather(t, tr, topo, &Fragment{Snapshot: 99, Table: "T", Binding: "T"}, 0)
	if len(res.Rows) != 10 {
		t.Fatalf("after abort: got %d rows, want 10", len(res.Rows))
	}
}

func TestGatherAggregatePartials(t *testing.T) {
	const n = 1000
	topo := Topology{Shards: 3}
	tr := seedFleet(t, topo, n, true)
	f := &Fragment{
		Snapshot: 1, Table: "T", Binding: "T",
		Agg: &AggFragment{
			GroupBy: []string{"MOD(A, 7)"},
			Aggs: []AggCall{
				{Func: "COUNT"},
				{Func: "SUM", Arg: "B"},
				{Func: "MIN", Arg: "A"},
				{Func: "MAX", Arg: "A"},
				{Func: "COUNT", Arg: "MOD(A, 2)", Distinct: true},
			},
		},
	}
	res := gather(t, tr, topo, f, 0)
	if res.Partial == nil || len(res.Partial.Groups) != 7 {
		t.Fatalf("got %+v, want 7 groups", res.Partial)
	}
	for gi, g := range res.Partial.Groups {
		// Groups sorted by MinSeq = first-seen order: group key gi at seq gi.
		if g.Key[0].I != int64(gi) || g.MinSeq != int64(gi) {
			t.Fatalf("group %d: key %v minseq %d", gi, g.Key, g.MinSeq)
		}
		var count, sum int64
		minA, maxA := int64(-1), int64(-1)
		for a := int64(gi); a < n; a += 7 {
			count++
			sum += a * 10
			if minA < 0 {
				minA = a
			}
			maxA = a
		}
		check := func(i int, fn string, want value.Value) {
			got, err := g.States[i].result(fn)
			if err != nil {
				t.Fatalf("group %d state %d: %v", gi, i, err)
			}
			if value.Compare(got, want) != 0 {
				t.Fatalf("group %d %s: got %v, want %v", gi, fn, got, want)
			}
		}
		check(0, "COUNT", value.NewInt(count))
		check(1, "SUM", value.NewInt(sum))
		check(2, "MIN", value.NewInt(minA))
		check(3, "MAX", value.NewInt(maxA))
		check(4, "COUNT", value.NewInt(2)) // distinct A%2 values
	}
}

func TestGatherBroadcastJoin(t *testing.T) {
	topo := Topology{Shards: 2}
	tr := seedFleet(t, topo, 100, true)
	buildCols := []value.Column{
		{Name: "R.K", Kind: value.KindInt},
		{Name: "R.V", Kind: value.KindInt},
	}
	var buildRows []value.Row
	for k := int64(0); k < 100; k += 10 {
		buildRows = append(buildRows, intRow(k, k+1))
		buildRows = append(buildRows, intRow(k, k+2)) // duplicate key: two matches
	}
	f := &Fragment{
		Snapshot: 1, Table: "T", Binding: "T",
		Join: &JoinFragment{
			ProbeKeys: []string{"A"},
			BuildKeys: []string{"R.K"},
			Residual:  "MOD(R.V, 2) = 1",
			BuildCols: buildCols,
			BuildRows: buildRows,
		},
	}
	res := gather(t, tr, topo, f, 0)
	// Each multiple of 10 matches two build rows; residual keeps odd V only.
	var want []value.Row
	for k := int64(0); k < 100; k += 10 {
		v := k + 1
		if v%2 == 0 {
			v = k + 2
		}
		want = append(want, intRow(k, k*10, k, v))
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(res.Rows[i], want[i]) {
			t.Fatalf("row %d: got %v, want %v", i, res.Rows[i], want[i])
		}
	}
}

func TestFailoverToReplica(t *testing.T) {
	topo := Topology{Shards: 3, Replicas: 2}
	tr := seedFleet(t, topo, 300, false)
	tr.Worker(1).Kill()
	c := &Coordinator{Topo: topo, Transport: tr, Caller: testCaller()}
	res, err := c.Gather(context.Background(), &Fragment{Snapshot: 1, Table: "T", Binding: "T"}, 0)
	if err != nil {
		t.Fatalf("gather with dead worker: %v", err)
	}
	if len(res.Rows) != 300 {
		t.Fatalf("got %d rows, want 300", len(res.Rows))
	}
	if res.Failovers == 0 {
		t.Fatal("expected at least one failover")
	}
	for i, row := range res.Rows {
		if row[0].I != int64(i) {
			t.Fatalf("row %d out of order: %v", i, row)
		}
	}

	// Two dead workers with Replicas=2 must fail cleanly, not hang or lie.
	tr.Worker(2).Kill()
	if _, err := c.Gather(context.Background(), &Fragment{Snapshot: 1, Table: "T", Binding: "T"}, 0); err == nil {
		t.Fatal("expected failure with two dead workers")
	}
	tr.Worker(1).Revive()
	tr.Worker(2).Revive()
	if res, err := c.Gather(context.Background(), &Fragment{Snapshot: 1, Table: "T", Binding: "T"}, 0); err != nil || len(res.Rows) != 300 {
		t.Fatalf("after revive: %v, %d rows", err, len(res.Rows))
	}
}

func TestGuardedCallerBreaker(t *testing.T) {
	topo := Topology{Shards: 2, Replicas: 1}
	tr := seedFleet(t, topo, 10, false)
	tr.Worker(1).Kill()
	health := fed.NewHealth(2, 0)
	c := &Coordinator{
		Topo:      topo,
		Transport: tr,
		Caller:    &fed.GuardedCall{Health: health, Retry: faults.RetryPolicy{MaxAttempts: 1}, Span: "fragment"},
	}
	frag := &Fragment{Snapshot: 1, Table: "T", Binding: "T"}
	for i := 0; i < 3; i++ {
		if _, err := c.Gather(context.Background(), frag, 0); err == nil {
			t.Fatal("expected failure with dead sole replica")
		}
	}
	_, err := c.Gather(context.Background(), frag, 0)
	if !errors.Is(err, faults.ErrCircuitOpen) {
		t.Fatalf("expected breaker-open error, got %v", err)
	}
}

func TestFragmentWireRoundTrip(t *testing.T) {
	f := &Fragment{
		Query: 7, Shard: 2, Snapshot: 99, Width: 4,
		Table: "LINEITEM", Binding: "L", Where: "L.L_QUANTITY < 24",
		Agg: &AggFragment{
			GroupBy: []string{"L.L_RETURNFLAG", "L.L_LINESTATUS"},
			Aggs:    []AggCall{{Func: "COUNT"}, {Func: "SUM", Arg: "L.L_QUANTITY"}, {Func: "COUNT", Arg: "L.L_ORDERKEY", Distinct: true}},
		},
	}
	got, err := DecodeFragment(f.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", f, got)
	}
	j := &Fragment{
		Table: "ORDERS", Binding: "O",
		Join: &JoinFragment{
			ProbeKeys: []string{"O.O_CUSTKEY"},
			BuildKeys: []string{"C.C_CUSTKEY"},
			Residual:  "C.C_NAME <> O.O_COMMENT",
			BuildCols: []value.Column{{Name: "C.C_CUSTKEY", Kind: value.KindInt}, {Name: "C.C_NAME", Kind: value.KindVarchar, Nullable: true}},
			BuildRows: []value.Row{{value.NewInt(1), value.NewString("x")}},
		},
	}
	got, err = DecodeFragment(j.Encode())
	if err != nil {
		t.Fatalf("decode join: %v", err)
	}
	if !reflect.DeepEqual(j, got) {
		t.Fatalf("join round trip mismatch:\n%+v\n%+v", j, got)
	}
	// Truncated payloads error instead of panicking.
	enc := f.Encode()
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := DecodeFragment(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d silently accepted", cut)
		}
	}
}

func TestChunkWireRoundTrip(t *testing.T) {
	st := newAggState(false)
	st.add(value.NewInt(5))
	st.add(value.NewInt(9))
	dst := newAggState(true)
	dst.add(value.NewString("a"))
	dst.add(value.NewString("a"))
	dst.add(value.NewString("b"))
	ch := &Chunk{
		Shard: 1, Worker: 2, Scanned: 77,
		Seqs: []int64{3, 9},
		Rows: []value.Row{intRow(1, 2), intRow(3, 4)},
		Partial: &Partial{Groups: []PartialGroup{
			{MinSeq: 3, Key: value.Row{value.NewString("g")}, States: []AggState{st, dst}},
		}},
	}
	got, err := DecodeChunk(ch.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Shard != 1 || got.Worker != 2 || got.Scanned != 77 || !reflect.DeepEqual(got.Seqs, ch.Seqs) || !reflect.DeepEqual(got.Rows, ch.Rows) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	g := got.Partial.Groups[0]
	if v, _ := g.States[0].result("SUM"); v.I != 14 {
		t.Fatalf("plain state lost: %+v", g.States[0])
	}
	if v, _ := g.States[1].result("COUNT"); v.I != 2 {
		t.Fatalf("distinct state lost: %+v", g.States[1])
	}
	// Distinct merge across decoded states unions correctly.
	other := newAggState(true)
	other.add(value.NewString("b"))
	other.add(value.NewString("c"))
	merged := g.States[1]
	merged.merge(other)
	if v, _ := merged.result("COUNT"); v.I != 3 {
		t.Fatalf("distinct merge after decode: %+v", merged)
	}
}

func TestTopologyOwners(t *testing.T) {
	topo := Topology{Shards: 4, Replicas: 2}
	for s := 0; s < 4; s++ {
		owners := topo.Owners(s)
		want := []int{s, (s + 1) % 4}
		if !reflect.DeepEqual(owners, want) {
			t.Fatalf("shard %d owners %v, want %v", s, owners, want)
		}
	}
	if got := (Topology{Shards: 1}).ReplicaCount(); got != 1 {
		t.Fatalf("single shard replica count %d", got)
	}
	if (Topology{Shards: 1}).Enabled() || !(Topology{Shards: 2}).Enabled() {
		t.Fatal("Enabled thresholds wrong")
	}
}

func TestShardOfStable(t *testing.T) {
	if ShardOf(value.Null, 4) != 0 {
		t.Fatal("NULL must land on shard 0")
	}
	if ShardOf(value.NewInt(42), 1) != 0 {
		t.Fatal("single shard must be 0")
	}
	counts := make([]int, 4)
	for i := int64(0); i < 4000; i++ {
		counts[ShardOf(value.NewInt(i), 4)]++
	}
	for s, c := range counts {
		if c < 500 {
			t.Fatalf("shard %d badly skewed: %d/4000 (%v)", s, c, counts)
		}
	}
}

func TestWorkerFaultSites(t *testing.T) {
	inj := faults.New(1)
	inj.FailN("dist.worker.0.exec", 1)
	w := NewWorker(0, 1, inj)
	w.Register("T", testSchema())
	err := w.Execute(context.Background(), &Fragment{Table: "T", Binding: "T", Snapshot: 1}, func(*Chunk) error { return nil })
	if err == nil || !faults.IsTransient(err) {
		t.Fatalf("expected injected transient error, got %v", err)
	}
}

func TestPrepareFailureVotesNo(t *testing.T) {
	w := NewWorker(3, 1, nil)
	w.Register("T", testSchema())
	w.BufferInsert(9, "MISSING", 0, 1, intRow(1, 2))
	if err := w.Prepare(9); err == nil {
		t.Fatal("prepare against unregistered table must vote no")
	}
	w.Kill()
	if err := w.Prepare(9); err == nil {
		t.Fatal("dead worker must vote no")
	}
	if w.Name() != "dist:worker:3" {
		t.Fatalf("participant name %q", w.Name())
	}
}

func TestEmptyShardStreams(t *testing.T) {
	topo := Topology{Shards: 2, Replicas: 1}
	workers := []*Worker{NewWorker(0, 1, nil), NewWorker(1, 1, nil)}
	for _, w := range workers {
		w.Register("T", testSchema())
	}
	tr := NewLocal(workers)
	res := gather(t, tr, topo, &Fragment{Snapshot: 1, Table: "T", Binding: "T"}, 0)
	if len(res.Rows) != 0 || res.Scanned != 0 {
		t.Fatalf("empty fleet returned %+v", res)
	}
	// Aggregate over empty shards: zero groups (the engine's post-merge
	// handles the empty-global-group row).
	res = gather(t, tr, topo, &Fragment{Snapshot: 1, Table: "T", Binding: "T",
		Agg: &AggFragment{Aggs: []AggCall{{Func: "COUNT"}}}}, 0)
	if len(res.Partial.Groups) != 0 {
		t.Fatalf("empty aggregate returned %+v", res.Partial)
	}
}

func TestLoadCommittedIdempotent(t *testing.T) {
	w := NewWorker(0, 1, nil)
	w.Register("T", testSchema())
	rows := []value.Row{intRow(5, 50)}
	for i := 0; i < 3; i++ {
		if err := w.LoadCommitted("T", 0, []int64{5}, rows, 1); err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
	}
	if got := w.ShardRowCount("T", 0, 1); got != 1 {
		t.Fatalf("idempotent load broken: %d rows", got)
	}
}

func TestWorkerTablesListing(t *testing.T) {
	w := NewWorker(0, 1, nil)
	w.Register("b", testSchema())
	w.Register("A", testSchema())
	if got := w.Tables(); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Fatalf("tables %v", got)
	}
	w.Drop("a")
	if got := w.Tables(); !reflect.DeepEqual(got, []string{"B"}) {
		t.Fatalf("tables after drop %v", got)
	}
}

func TestChunkEmissionOrderWithinWorker(t *testing.T) {
	// Many morsels on one shard: sequences must still come back ascending.
	w := NewWorker(0, 4, nil)
	w.Register("T", testSchema())
	n := 3*4096 + 17
	seqs := make([]int64, n)
	rows := make([]value.Row, n)
	for i := 0; i < n; i++ {
		seqs[i] = int64(i)
		rows[i] = intRow(int64(i), int64(i%5))
	}
	if err := w.LoadCommitted("T", 0, seqs, rows, 1); err != nil {
		t.Fatalf("load: %v", err)
	}
	var got []int64
	err := w.Execute(context.Background(), &Fragment{Snapshot: 1, Table: "T", Binding: "T", Where: "B = 2", Width: 4}, func(ch *Chunk) error {
		got = append(got, ch.Seqs...)
		return nil
	})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("sequence regression at %d: %d after %d", i, got[i], got[i-1])
		}
	}
	want := 0
	for i := 0; i < n; i++ {
		if i%5 == 2 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("got %d rows, want %d", len(got), want)
	}
}

// countingCaller wraps a Caller and counts Call invocations: the
// regression guard for the removed nil-Caller bypass — every worker
// attempt, failover retries included, must route through the guard.
type countingCaller struct {
	inner fed.Caller
	mu    sync.Mutex
	calls int
	sites map[string]int
}

func (c *countingCaller) Call(ctx context.Context, target, kind, site string, fn func() error) error {
	c.mu.Lock()
	c.calls++
	if c.sites == nil {
		c.sites = map[string]int{}
	}
	c.sites[site]++
	c.mu.Unlock()
	return c.inner.Call(ctx, target, kind, site, fn)
}

func TestEveryAttemptRoutesThroughCaller(t *testing.T) {
	topo := Topology{Shards: 3, Replicas: 2}
	tr := seedFleet(t, topo, 300, false)
	tr.Worker(1).Kill()
	cc := &countingCaller{inner: testCaller()}
	c := &Coordinator{Topo: topo, Transport: tr, Caller: cc}
	res, err := c.Gather(context.Background(), &Fragment{Snapshot: 1, Table: "T", Binding: "T"}, 0)
	if err != nil {
		t.Fatalf("gather: %v", err)
	}
	if cc.calls != res.Fragments {
		t.Fatalf("attempts bypassed the caller: %d Call invocations, %d fragments", cc.calls, res.Fragments)
	}
	if res.Failovers == 0 {
		t.Fatal("expected a failover with a dead primary")
	}
	for site := range cc.sites {
		if !strings.HasPrefix(site, "dist.worker.") || !strings.HasSuffix(site, ".run") {
			t.Fatalf("unexpected fault site %q", site)
		}
	}
}

func TestCommitFaultSiteRetries(t *testing.T) {
	inj := faults.New(1)
	w := NewWorker(0, 1, inj)
	w.Register("T", testSchema())
	w.BufferInsert(7, "T", 0, 1, intRow(1, 10))
	if err := w.Prepare(7); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	inj.FailN("dist.worker.0.commit", 1)
	err := w.Commit(7, 2)
	if err == nil || !faults.IsTransient(err) {
		t.Fatalf("expected injected transient commit error, got %v", err)
	}
	// The buffered ops survive the failed delivery; re-delivering the
	// decision applies them.
	if err := w.Commit(7, 2); err != nil {
		t.Fatalf("commit retry: %v", err)
	}
	if got := w.ShardRowCount("T", 0, 2); got != 1 {
		t.Fatalf("rows visible after commit retry = %d, want 1", got)
	}
}

func TestChunkFaultSiteCutsStream(t *testing.T) {
	inj := faults.New(1)
	w := NewWorker(0, 1, inj)
	w.Register("T", testSchema())
	if err := w.LoadCommitted("T", 0, []int64{1, 2}, []value.Row{intRow(1, 10), intRow(2, 20)}, 1); err != nil {
		t.Fatalf("load: %v", err)
	}
	frag := &Fragment{Snapshot: 1, Table: "T", Binding: "T"}
	inj.FailN("dist.worker.0.chunk", 1)
	err := w.Execute(context.Background(), frag, func(*Chunk) error { return nil })
	if err == nil || !faults.IsTransient(err) {
		t.Fatalf("expected injected mid-stream error, got %v", err)
	}
	// A rerun after the schedule drains streams the full shard.
	var n int
	if err := w.Execute(context.Background(), frag, func(ch *Chunk) error { n += len(ch.Seqs); return nil }); err != nil {
		t.Fatalf("clean rerun: %v", err)
	}
	if n != 2 {
		t.Fatalf("rerun rows = %d, want 2", n)
	}
}

func TestRunFaultSiteRetriesSameOwner(t *testing.T) {
	topo := Topology{Shards: 2, Replicas: 1}
	tr := seedFleet(t, topo, 20, false)
	inj := faults.New(3)
	inj.SetSleep(func(time.Duration) {})
	inj.FailN("dist.worker.1.run", 1)
	c := &Coordinator{Topo: topo, Transport: tr, Caller: &fed.GuardedCall{
		Health: fed.NewHealth(1000, 0),
		Retry:  faults.RetryPolicy{MaxAttempts: 2, Sleep: func(time.Duration) {}},
		Faults: inj,
		Span:   "fragment",
	}}
	res, err := c.Gather(context.Background(), &Fragment{Snapshot: 1, Table: "T", Binding: "T"}, 0)
	if err != nil {
		t.Fatalf("gather through injected run fault: %v", err)
	}
	if len(res.Rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(res.Rows))
	}
	// The retry happens inside the guarded call against the same owner: no
	// replica switch-over is recorded.
	if res.Failovers != 0 {
		t.Fatalf("in-call retry must not count as failover, got %d", res.Failovers)
	}
}
