package dist

import (
	"encoding/binary"
	"fmt"

	"hana/internal/value"
)

// Chunk is one exchange unit streamed from a worker back to the
// coordinator: the surviving rows of one scan morsel in columnar
// (value.Batch) form with their global scan sequences, one morsel's join
// output, or a whole fragment's aggregate partial. Chunks arrive in local
// sequence order within a worker's stream; the coordinator's k-way merge
// across shard streams restores the exact single-node order.
type Chunk struct {
	Shard  int
	Worker int
	// Seqs holds the global scan sequence of every row, ascending. For
	// join chunks the sequence is the probe row's, repeated per match.
	Seqs []int64
	// Batch carries scan output in columnar form (in-process transports
	// hand it over without boxing; the wire codec materializes).
	Batch *value.Batch
	// Rows carries join output, or decoded scan rows after a wire
	// round-trip. At most one of Batch/Rows is set.
	Rows []value.Row
	// Partial carries an aggregate fragment's group table (no rows ship).
	Partial *Partial
	// Scanned counts the snapshot-visible rows the morsel examined before
	// filtering (executor statistics).
	Scanned int64
}

// RowsOf materializes the chunk's rows, decoding the batch on first use.
func (c *Chunk) RowsOf() []value.Row {
	if c.Batch != nil {
		c.Rows, c.Batch = c.Batch.MaterializeRows(), nil
	}
	return c.Rows
}

// Partial is the exact-mergeable aggregate state of one fragment: one entry
// per group in the shard's first-seen order.
type Partial struct {
	Groups []PartialGroup
}

// PartialGroup is one group's key and per-aggregate states. MinSeq is the
// smallest global scan sequence that contributed — merged groups sort by it
// to reproduce the serial first-seen group order.
type PartialGroup struct {
	MinSeq int64
	Key    value.Row
	States []AggState
}

// AggState is one aggregate's mergeable accumulator, restricted to the
// exactly-mergeable subset the planner ships: COUNT, MIN, MAX and
// integer-only SUM. DISTINCT states carry the value set instead; every
// shipped DISTINCT aggregate is order-insensitive (set count, integer sum,
// min/max), so set union loses nothing.
type AggState struct {
	Count    int64
	SumI     int64
	HasVal   bool
	Min, Max value.Value
	// Distinct is the observed value set in local first-seen order; nil for
	// non-distinct states (IsDistinct tells an empty set from none).
	IsDistinct bool
	Distinct   []value.Value
	seen       map[value.Value]bool
}

// newAggState mirrors exec's accumulator initialization.
func newAggState(distinct bool) AggState {
	s := AggState{Min: value.Null, Max: value.Null, IsDistinct: distinct}
	if distinct {
		s.seen = map[value.Value]bool{}
	}
	return s
}

// add folds one non-COUNT(*) argument value into the state, replicating
// exec's aggState.add for the shipped subset.
func (s *AggState) add(v value.Value) {
	if v.IsNull() {
		return
	}
	if s.IsDistinct {
		if s.seen[v] {
			return
		}
		s.seen[v] = true
		s.Distinct = append(s.Distinct, v)
		return
	}
	s.HasVal = true
	s.Count++
	if v.K == value.KindInt {
		s.SumI += v.I
	}
	if s.Min.IsNull() || value.Compare(v, s.Min) < 0 {
		s.Min = v
	}
	if s.Max.IsNull() || value.Compare(v, s.Max) > 0 {
		s.Max = v
	}
}

// merge folds another state for the same group into s. DISTINCT states
// union their value sets; plain states add their counters.
func (s *AggState) merge(o AggState) {
	if s.IsDistinct {
		if s.seen == nil {
			s.seen = map[value.Value]bool{}
			for _, v := range s.Distinct {
				s.seen[v] = true
			}
		}
		for _, v := range o.Distinct {
			if !s.seen[v] {
				s.seen[v] = true
				s.Distinct = append(s.Distinct, v)
			}
		}
		return
	}
	s.HasVal = s.HasVal || o.HasVal
	s.Count += o.Count
	s.SumI += o.SumI
	if !o.Min.IsNull() && (s.Min.IsNull() || value.Compare(o.Min, s.Min) < 0) {
		s.Min = o.Min
	}
	if !o.Max.IsNull() && (s.Max.IsNull() || value.Compare(o.Max, s.Max) > 0) {
		s.Max = o.Max
	}
}

// result finalizes the state for one shipped aggregate function, matching
// exec's aggState.result on the eligible subset bit for bit.
func (s *AggState) result(fn string) (value.Value, error) {
	if s.IsDistinct {
		switch fn {
		case "COUNT":
			return value.NewInt(int64(len(s.Distinct))), nil
		case "SUM":
			if len(s.Distinct) == 0 {
				return value.Null, nil
			}
			var sum int64
			for _, v := range s.Distinct {
				sum += v.I
			}
			return value.NewInt(sum), nil
		case "MIN", "MAX":
			out := value.Null
			for _, v := range s.Distinct {
				if out.IsNull() || (fn == "MIN" && value.Compare(v, out) < 0) || (fn == "MAX" && value.Compare(v, out) > 0) {
					out = v
				}
			}
			return out, nil
		}
		return value.Null, fmt.Errorf("aggregate %s(DISTINCT) is not distributable", fn)
	}
	switch fn {
	case "COUNT":
		return value.NewInt(s.Count), nil
	case "SUM":
		if !s.HasVal {
			return value.Null, nil
		}
		return value.NewInt(s.SumI), nil
	case "MIN":
		return s.Min, nil
	case "MAX":
		return s.Max, nil
	}
	return value.Null, fmt.Errorf("aggregate %s is not distributable", fn)
}

// Result finalizes the state for one shipped aggregate function; the
// coordinator-side planner calls it on merged groups. It matches exec's
// accumulator finalization on the eligible subset bit for bit.
func (s *AggState) Result(fn string) (value.Value, error) { return s.result(fn) }

// EmptyAggResult is the aggregate's value over zero input rows (SQL's
// global group on an empty table): COUNT → 0, SUM/MIN/MAX → NULL.
func EmptyAggResult(fn string, distinct bool) (value.Value, error) {
	s := newAggState(distinct)
	return s.result(fn)
}

// DistributableAgg reports whether a shipped aggregate function is in the
// exact-mergeable subset (the planner additionally requires SUM arguments
// to be integer-typed).
func DistributableAgg(fn string) bool {
	switch fn {
	case "COUNT", "SUM", "MIN", "MAX":
		return true
	}
	return false
}

const chunkWireVersion = 1

// Encode renders the chunk in the wire format; batches materialize (a
// network transport ships rows, not vector pointers).
func (c *Chunk) Encode() []byte {
	buf := []byte{chunkWireVersion}
	buf = binary.AppendUvarint(buf, uint64(c.Shard))
	buf = binary.AppendUvarint(buf, uint64(c.Worker))
	buf = binary.AppendUvarint(buf, uint64(c.Scanned))
	buf = binary.AppendUvarint(buf, uint64(len(c.Seqs)))
	for _, s := range c.Seqs {
		buf = binary.AppendVarint(buf, s)
	}
	rows := c.RowsOf()
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	for _, r := range rows {
		buf = value.AppendRow(buf, r)
	}
	if c.Partial != nil {
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(c.Partial.Groups)))
		for _, g := range c.Partial.Groups {
			buf = binary.AppendVarint(buf, g.MinSeq)
			buf = value.AppendRow(buf, g.Key)
			buf = binary.AppendUvarint(buf, uint64(len(g.States)))
			for _, st := range g.States {
				buf = binary.AppendVarint(buf, st.Count)
				buf = binary.AppendVarint(buf, st.SumI)
				buf = appendBool(buf, st.HasVal)
				buf = value.AppendValue(buf, st.Min)
				buf = value.AppendValue(buf, st.Max)
				buf = appendBool(buf, st.IsDistinct)
				buf = binary.AppendUvarint(buf, uint64(len(st.Distinct)))
				for _, v := range st.Distinct {
					buf = value.AppendValue(buf, v)
				}
			}
		}
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// DecodeChunk parses an encoded chunk.
func DecodeChunk(b []byte) (*Chunk, error) {
	d := &wireReader{b: b}
	if v := d.byte(); v != chunkWireVersion {
		return nil, fmt.Errorf("chunk decode: unsupported version %d", v)
	}
	c := &Chunk{}
	c.Shard = int(d.uvarint())
	c.Worker = int(d.uvarint())
	c.Scanned = int64(d.uvarint())
	ns := int(d.uvarint())
	for i := 0; i < ns && d.err == nil; i++ {
		c.Seqs = append(c.Seqs, d.varint())
	}
	nr := int(d.uvarint())
	for i := 0; i < nr && d.err == nil; i++ {
		c.Rows = append(c.Rows, d.row())
	}
	if d.bool() {
		p := &Partial{}
		ng := int(d.uvarint())
		for i := 0; i < ng && d.err == nil; i++ {
			g := PartialGroup{MinSeq: d.varint(), Key: d.row()}
			nst := int(d.uvarint())
			for j := 0; j < nst && d.err == nil; j++ {
				st := AggState{
					Count:  d.varint(),
					SumI:   d.varint(),
					HasVal: d.bool(),
					Min:    d.value(),
					Max:    d.value(),
				}
				st.IsDistinct = d.bool()
				nd := int(d.uvarint())
				for k := 0; k < nd && d.err == nil; k++ {
					st.Distinct = append(st.Distinct, d.value())
				}
				g.States = append(g.States, st)
			}
			p.Groups = append(p.Groups, g)
		}
		c.Partial = p
	}
	if d.err != nil {
		return nil, fmt.Errorf("chunk decode: %w", d.err)
	}
	return c, nil
}
