package dist

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"hana/internal/exec"
	"hana/internal/expr"
	"hana/internal/faults"
	"hana/internal/sqlparse"
	"hana/internal/value"
)

// Worker is one shard node: it holds committed, sequence-tagged copies of
// the shards it owns (primary or replica), executes fragments over them
// with its own morsel pool, and participates in the engine's two-phase
// commit so cross-shard writes land atomically on every replica.
type Worker struct {
	id   int
	pool *exec.Pool
	inj  *faults.Injector

	mu sync.RWMutex
	// hana:guardedby mu
	dead bool
	// tables is keyed by upper-case table name.
	// hana:guardedby mu
	tables map[string]*workerTable

	txMu sync.Mutex
	// hana:guardedby txMu
	txOps map[uint64][]txOp
}

// workerTable is one table's shard copies plus the schema fragments bind
// against.
type workerTable struct {
	schema *value.Schema
	shards map[int]*shardCopy
}

// shardCopy is the replica of one shard: rows ascending by global scan
// sequence, each stamped with the commit IDs that inserted and (possibly)
// deleted it — the worker-side mirror of the engine's MVCC visibility.
type shardCopy struct {
	rows []shardRow
}

type shardRow struct {
	seq int64
	ins uint64 // inserting commit ID
	del uint64 // deleting commit ID (0 = live)
	row value.Row
}

// morselOut is one scan morsel's surviving rows with their sequences.
type morselOut struct {
	rows []value.Row
	seqs []int64
}

// txOp is one buffered replicated write awaiting two-phase commit.
type txOp struct {
	del   bool
	table string
	shard int
	seq   int64
	row   value.Row
}

// NewWorker creates a worker with its own morsel pool of the given width
// (0 = GOMAXPROCS). The injector drives the worker's fault sites
// (dist.worker.<id>.exec, .chunk, .prepare, .commit); nil disables them.
func NewWorker(id, parallelism int, inj *faults.Injector) *Worker {
	return &Worker{
		id:     id,
		pool:   exec.NewPool(parallelism),
		inj:    inj,
		tables: map[string]*workerTable{},
		txOps:  map[uint64][]txOp{},
	}
}

// ID returns the worker's index in the topology.
func (w *Worker) ID() int { return w.id }

// site builds the worker's fault-injection site name for an operation.
func (w *Worker) site(op string) string {
	return fmt.Sprintf("dist.worker.%d.%s", w.id, op)
}

// Kill marks the worker dead: every call fails fatally until Revive. The
// chaos suite uses this to model node loss mid-query.
func (w *Worker) Kill() {
	w.mu.Lock()
	w.dead = true
	w.mu.Unlock()
}

// Revive brings a killed worker back (its shard data is intact — the node
// "rejoined").
func (w *Worker) Revive() {
	w.mu.Lock()
	w.dead = false
	w.mu.Unlock()
}

// Alive reports liveness.
func (w *Worker) Alive() bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return !w.dead
}

func (w *Worker) downErr() error {
	return faults.Fatal(fmt.Errorf("dist worker %d is down", w.id))
}

// Register installs (or resets) a table's schema on the worker. Existing
// shard data for the name is dropped — the engine reseeds after schema
// changes.
func (w *Worker) Register(table string, schema *value.Schema) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tables[strings.ToUpper(table)] = &workerTable{schema: schema, shards: map[int]*shardCopy{}}
}

// Drop removes a table's shard copies.
func (w *Worker) Drop(table string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.tables, strings.ToUpper(table))
}

// Tables lists the registered table names (sorted, for system views).
func (w *Worker) Tables() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, 0, len(w.tables))
	for name := range w.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ShardRowCount returns the live row count the worker holds for a table
// shard at the given snapshot.
func (w *Worker) ShardRowCount(table string, shard int, snapshot uint64) int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	wt := w.tables[strings.ToUpper(table)]
	if wt == nil {
		return 0
	}
	sc := wt.shards[shard]
	if sc == nil {
		return 0
	}
	n := 0
	for _, r := range sc.rows {
		if r.visible(snapshot) {
			n++
		}
	}
	return n
}

func (r *shardRow) visible(snapshot uint64) bool {
	return r.ins <= snapshot && (r.del == 0 || r.del > snapshot)
}

// getShard resolves a table's shard copy, creating it on first write.
func (w *Worker) getShardLocked(table string, shard int) (*shardCopy, error) {
	wt := w.tables[strings.ToUpper(table)]
	if wt == nil {
		return nil, faults.Fatal(fmt.Errorf("worker %d: table %s not registered", w.id, table))
	}
	sc := wt.shards[shard]
	if sc == nil {
		sc = &shardCopy{}
		wt.shards[shard] = sc
	}
	return sc, nil
}

// applyInsert lands a committed row at its sequence position. Out-of-order
// commits (two transactions committing in the reverse of their sequence
// order) insert in the middle, keeping the copy sorted.
func (sc *shardCopy) applyInsert(seq int64, cid uint64, row value.Row) {
	i := sort.Search(len(sc.rows), func(i int) bool { return sc.rows[i].seq >= seq })
	if i < len(sc.rows) && sc.rows[i].seq == seq {
		// Idempotent re-delivery (2PC retry): keep the first apply.
		return
	}
	sc.rows = append(sc.rows, shardRow{})
	copy(sc.rows[i+1:], sc.rows[i:])
	sc.rows[i] = shardRow{seq: seq, ins: cid, row: row}
}

func (sc *shardCopy) applyDelete(seq int64, cid uint64) error {
	i := sort.Search(len(sc.rows), func(i int) bool { return sc.rows[i].seq >= seq })
	if i >= len(sc.rows) || sc.rows[i].seq != seq {
		return fmt.Errorf("delete of unknown sequence %d", seq)
	}
	if sc.rows[i].del == 0 {
		sc.rows[i].del = cid
	}
	return nil
}

// LoadCommitted bulk-applies committed rows (initial seeding, BulkLoad
// mirroring, recovery reseed). seqs and rows are parallel slices.
func (w *Worker) LoadCommitted(table string, shard int, seqs []int64, rows []value.Row, cid uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return w.downErr()
	}
	sc, err := w.getShardLocked(table, shard)
	if err != nil {
		return err
	}
	for i, r := range rows {
		sc.applyInsert(seqs[i], cid, r)
	}
	return nil
}

// --- two-phase commit participant ---

// Name implements txn.Participant.
func (w *Worker) Name() string { return fmt.Sprintf("dist:worker:%d", w.id) }

// BufferInsert queues a replicated insert for the transaction.
func (w *Worker) BufferInsert(tid uint64, table string, shard int, seq int64, row value.Row) {
	w.txMu.Lock()
	defer w.txMu.Unlock()
	w.txOps[tid] = append(w.txOps[tid], txOp{table: table, shard: shard, seq: seq, row: row})
}

// BufferDelete queues a replicated delete for the transaction.
func (w *Worker) BufferDelete(tid uint64, table string, shard int, seq int64) {
	w.txMu.Lock()
	defer w.txMu.Unlock()
	w.txOps[tid] = append(w.txOps[tid], txOp{del: true, table: table, shard: shard, seq: seq})
}

// Prepare implements txn.Participant: the worker votes yes when it is alive
// and every buffered write targets a registered table.
func (w *Worker) Prepare(tid uint64) error {
	if !w.Alive() {
		return w.downErr()
	}
	if err := w.inj.Check(w.site("prepare")); err != nil {
		return err
	}
	w.txMu.Lock()
	ops := w.txOps[tid]
	w.txMu.Unlock()
	w.mu.RLock()
	missing := ""
	for _, op := range ops {
		if w.tables[strings.ToUpper(op.table)] == nil {
			missing = op.table
			break
		}
	}
	w.mu.RUnlock()
	if missing != "" {
		return faults.Fatal(fmt.Errorf("worker %d: table %s not registered", w.id, missing))
	}
	return nil
}

// Commit implements txn.Participant: buffered writes become visible at the
// commit ID on every shard copy this worker holds.
func (w *Worker) Commit(tid, cid uint64) error {
	if err := w.inj.Check(w.site("commit")); err != nil {
		return err
	}
	w.txMu.Lock()
	ops := w.txOps[tid]
	delete(w.txOps, tid)
	w.txMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, op := range ops {
		sc, err := w.getShardLocked(op.table, op.shard)
		if err != nil {
			return err
		}
		if op.del {
			if err := sc.applyDelete(op.seq, cid); err != nil {
				return fmt.Errorf("worker %d table %s shard %d: %w", w.id, op.table, op.shard, err)
			}
		} else {
			sc.applyInsert(op.seq, cid, op.row)
		}
	}
	return nil
}

// Abort implements txn.Participant: buffered writes are dropped.
func (w *Worker) Abort(tid uint64) error {
	w.txMu.Lock()
	delete(w.txOps, tid)
	w.txMu.Unlock()
	return nil
}

// --- fragment execution ---

// Execute runs one fragment, streaming result chunks to the sink in morsel
// order. The sink is called on the worker's goroutine; a sink error aborts
// the stream.
func (w *Worker) Execute(ctx context.Context, f *Fragment, sink func(*Chunk) error) error {
	if !w.Alive() {
		return w.downErr()
	}
	if err := w.inj.Check(w.site("exec")); err != nil {
		return err
	}
	rows, seqs, schema, err := w.snapshotShard(f)
	if err != nil {
		return err
	}
	pred, err := parsePredicate(f.Where, schema)
	if err != nil {
		return err
	}

	// Morsel-parallel filter: boundaries depend only on the row count, and
	// kept rows reassemble in morsel order, so the surviving sequence
	// stream is identical at any pool width.
	size := exec.DefaultMorselSize
	nm := (len(rows) + size - 1) / size
	outs := make([]morselOut, nm)
	if nm > 0 {
		_, err = w.pool.Run(ctx, nm, f.Width, func(_ context.Context, m int) error {
			lo := m * size
			hi := lo + size
			if hi > len(rows) {
				hi = len(rows)
			}
			mo, err := filterMorsel(pred, rows[lo:hi], seqs[lo:hi])
			if err != nil {
				return err
			}
			outs[m] = mo
			return nil
		})
		if err != nil {
			return err
		}
	}

	switch {
	case f.Agg != nil:
		return w.runAggregate(f, schema, outs, int64(len(rows)), sink)
	case f.Join != nil:
		return w.runJoin(f, schema, outs, int64(len(rows)), sink)
	}
	// Gather scan: one chunk per morsel, rows in columnar form.
	for m := range outs {
		scanned := int64(size)
		if (m+1)*size > len(rows) {
			scanned = int64(len(rows) - m*size)
		}
		ch := &Chunk{
			Shard:   f.Shard,
			Worker:  w.id,
			Seqs:    outs[m].seqs,
			Batch:   value.BatchFromRows(schema, outs[m].rows),
			Scanned: scanned,
		}
		if err := w.emit(ch, sink); err != nil {
			return err
		}
	}
	if nm == 0 {
		// Empty shard still reports its (zero) scan so streams stay uniform.
		return w.emit(&Chunk{Shard: f.Shard, Worker: w.id}, sink)
	}
	return nil
}

// filterMorsel runs the shipped predicate over one morsel's rows, keeping
// survivors in order. A nil predicate keeps the whole slice without copying.
func filterMorsel(pred expr.Expr, rows []value.Row, seqs []int64) (morselOut, error) {
	if pred == nil {
		return morselOut{rows: rows, seqs: seqs}, nil
	}
	kept := make([]value.Row, 0, len(rows))
	keptSeqs := make([]int64, 0, len(rows))
	for i := range rows {
		ok, err := expr.Truthy(pred, rows[i])
		if err != nil {
			return morselOut{}, err
		}
		if ok {
			kept = append(kept, rows[i])
			keptSeqs = append(keptSeqs, seqs[i])
		}
	}
	return morselOut{rows: kept, seqs: keptSeqs}, nil
}

// emit checks the mid-stream fault site and worker liveness before handing
// a chunk to the sink — the point where a dying worker cuts a stream short.
func (w *Worker) emit(ch *Chunk, sink func(*Chunk) error) error {
	if !w.Alive() {
		return w.downErr()
	}
	if err := w.inj.Check(w.site("chunk")); err != nil {
		return err
	}
	return sink(ch)
}

// snapshotShard extracts the fragment's snapshot-visible rows in sequence
// order under the read lock. Row values are immutable once applied, so the
// extracted slices are safe outside the lock.
func (w *Worker) snapshotShard(f *Fragment) ([]value.Row, []int64, *value.Schema, error) {
	w.mu.RLock()
	wt := w.tables[strings.ToUpper(f.Table)]
	var (
		schema *value.Schema
		rows   []value.Row
		seqs   []int64
	)
	if wt != nil {
		schema = wt.schema.Qualify(f.Binding)
		if sc := wt.shards[f.Shard]; sc != nil {
			rows, seqs = sc.visibleRows(f.Snapshot)
		}
	}
	w.mu.RUnlock()
	if wt == nil {
		return nil, nil, nil, faults.Fatal(fmt.Errorf("worker %d: table %s not registered", w.id, f.Table))
	}
	return rows, seqs, schema, nil
}

// visibleRows extracts the shard copy's snapshot-visible rows in sequence
// order. Caller holds the worker's read lock.
func (sc *shardCopy) visibleRows(snapshot uint64) ([]value.Row, []int64) {
	rows := make([]value.Row, 0, len(sc.rows))
	seqs := make([]int64, 0, len(sc.rows))
	for i := range sc.rows {
		if sc.rows[i].visible(snapshot) {
			rows = append(rows, sc.rows[i].row)
			seqs = append(seqs, sc.rows[i].seq)
		}
	}
	return rows, seqs
}

// runAggregate folds the filtered rows (in sequence order) into one partial
// group table and emits it as a single chunk.
func (w *Worker) runAggregate(f *Fragment, schema *value.Schema, outs []morselOut, scanned int64, sink func(*Chunk) error) error {
	groupBy, err := parseExprList(f.Agg.GroupBy, schema)
	if err != nil {
		return err
	}
	// args[i] is nil for COUNT(*).
	args := make([]expr.Expr, len(f.Agg.Aggs))
	for i, a := range f.Agg.Aggs {
		if a.Arg == "" {
			continue
		}
		es, err := parseExprList([]string{a.Arg}, schema)
		if err != nil {
			return err
		}
		args[i] = es[0]
	}
	p, err := foldAggregate(f.Agg.Aggs, groupBy, args, outs)
	if err != nil {
		return err
	}
	return w.emit(&Chunk{Shard: f.Shard, Worker: w.id, Partial: p, Scanned: scanned}, sink)
}

// foldAggregate folds the filtered rows (in sequence order) into one
// partial group table — the per-row aggregate loop of a shard fragment.
func foldAggregate(aggs []AggCall, groupBy, args []expr.Expr, outs []morselOut) (*Partial, error) {
	keyOrds := make([]int, len(groupBy))
	for i := range keyOrds {
		keyOrds[i] = i
	}
	type group struct {
		minSeq int64
		key    value.Row
		states []AggState
	}
	table := map[uint64][]*group{}
	order := make([]*group, 0, 64)
	key := make(value.Row, len(groupBy))
	for _, mo := range outs {
		for ri, row := range mo.rows {
			for i, g := range groupBy {
				v, err := g.Eval(row)
				if err != nil {
					return nil, err
				}
				key[i] = v
			}
			hsh := key.Hash(keyOrds)
			var grp *group
			for _, g := range table[hsh] {
				if key.EqualAt(g.key, keyOrds, keyOrds) {
					grp = g
					break
				}
			}
			if grp == nil {
				grp = &group{minSeq: mo.seqs[ri], key: key.Clone(), states: make([]AggState, 0, len(aggs))}
				for _, a := range aggs {
					grp.states = append(grp.states, newAggState(a.Distinct))
				}
				table[hsh] = append(table[hsh], grp)
				order = append(order, grp)
			}
			for i, a := range aggs {
				if a.Arg == "" { // COUNT(*)
					grp.states[i].Count++
					grp.states[i].HasVal = true
					continue
				}
				v, err := args[i].Eval(row)
				if err != nil {
					return nil, err
				}
				grp.states[i].add(v)
			}
		}
	}
	p := &Partial{Groups: make([]PartialGroup, 0, len(order))}
	for _, g := range order {
		p.Groups = append(p.Groups, PartialGroup{MinSeq: g.minSeq, Key: g.key, States: g.states})
	}
	return p, nil
}

// runJoin probes the filtered shard rows against the broadcast build side,
// replicating the serial hash join's semantics exactly: FNV-1a key hashing,
// NULL keys never match, matches emitted in build-input order, residual
// evaluated on the combined row. Output rows carry their probe row's
// sequence, so the coordinator merge restores probe-input order globally.
func (w *Worker) runJoin(f *Fragment, schema *value.Schema, outs []morselOut, scanned int64, sink func(*Chunk) error) error {
	j := f.Join
	buildSchema := &value.Schema{Cols: j.BuildCols}
	probeKeys, err := parseExprList(j.ProbeKeys, schema)
	if err != nil {
		return err
	}
	buildKeys, err := parseExprList(j.BuildKeys, buildSchema)
	if err != nil {
		return err
	}
	combined := schema.Concat(buildSchema)
	residual, err := parsePredicate(j.Residual, combined)
	if err != nil {
		return err
	}

	jt, err := buildJoinTable(buildKeys, j.BuildRows)
	if err != nil {
		return err
	}
	lw, rw := schema.Len(), buildSchema.Len()
	vals := make([]value.Value, len(probeKeys))
	for _, mo := range outs {
		out, outSeqs, err := probeJoinMorsel(jt, probeKeys, residual, j.BuildRows, lw, rw, vals, mo)
		if err != nil {
			return err
		}
		if err := w.emit(&Chunk{Shard: f.Shard, Worker: w.id, Seqs: outSeqs, Rows: out}, sink); err != nil {
			return err
		}
	}
	// Report the scan count once (join chunks are per morsel, the scan
	// covers the whole shard).
	return w.emit(&Chunk{Shard: f.Shard, Worker: w.id, Scanned: scanned}, sink)
}

// joinTable is one broadcast build side hashed for probing: chains hold
// build indices in input order (the serial chain order), vals the evaluated
// key columns per build row (nil for rows with a NULL key).
type joinTable struct {
	chains map[uint64][]int
	vals   [][]value.Value
}

// buildJoinTable hashes the broadcast rows — the per-build-row loop.
func buildJoinTable(buildKeys []expr.Expr, buildRows []value.Row) (*joinTable, error) {
	jt := &joinTable{chains: map[uint64][]int{}, vals: make([][]value.Value, len(buildRows))}
	for i, row := range buildRows {
		vals := make([]value.Value, 0, len(buildKeys))
		var h uint64 = 1469598103934665603
		hasNull := false
		for _, ke := range buildKeys {
			v, err := ke.Eval(row)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				hasNull = true
				break
			}
			vals = append(vals, v)
			h = h*1099511628211 ^ v.Hash()
		}
		if hasNull {
			continue // NULL keys never match
		}
		jt.vals[i] = vals
		jt.chains[h] = append(jt.chains[h], i)
	}
	return jt, nil
}

// probeJoinMorsel probes one morsel's filtered rows against the build
// table — the per-probe-row loop. vals is the caller's reusable key
// scratch; output rows carry their probe row's sequence.
func probeJoinMorsel(jt *joinTable, probeKeys []expr.Expr, residual expr.Expr, buildRows []value.Row, lw, rw int, vals []value.Value, mo morselOut) ([]value.Row, []int64, error) {
	out := make([]value.Row, 0, len(mo.rows))
	outSeqs := make([]int64, 0, len(mo.rows))
	for ri, l := range mo.rows {
		var h uint64 = 1469598103934665603
		hasNull := false
		for k, ke := range probeKeys {
			v, err := ke.Eval(l)
			if err != nil {
				return nil, nil, err
			}
			if v.IsNull() {
				hasNull = true
				break
			}
			vals[k] = v
			h = h*1099511628211 ^ v.Hash()
		}
		if hasNull {
			continue
		}
		for _, bi := range jt.chains[h] {
			bv := jt.vals[bi]
			eq := true
			for k := range vals {
				if value.Compare(vals[k], bv[k]) != 0 {
					eq = false
					break
				}
			}
			if !eq {
				continue
			}
			combinedRow := make(value.Row, lw+rw)
			copy(combinedRow[:lw], l)
			copy(combinedRow[lw:], buildRows[bi])
			if residual != nil {
				keep, err := expr.Truthy(residual, combinedRow)
				if err != nil {
					return nil, nil, err
				}
				if !keep {
					continue
				}
			}
			out = append(out, combinedRow)
			outSeqs = append(outSeqs, mo.seqs[ri])
		}
	}
	return out, outSeqs, nil
}

// parsePredicate round-trips a rendered predicate back into a bound
// expression ("" = none) — the same SQL-text seam shipped federated
// statements use.
func parsePredicate(sql string, schema *value.Schema) (expr.Expr, error) {
	if sql == "" {
		return nil, nil
	}
	st, err := sqlparse.Parse("SELECT 1 WHERE " + sql)
	if err != nil {
		return nil, faults.Fatal(fmt.Errorf("fragment predicate %q: %w", sql, err))
	}
	sel, ok := st.(*sqlparse.SelectStmt)
	if !ok || sel.Where == nil {
		return nil, faults.Fatal(fmt.Errorf("fragment predicate %q did not parse", sql))
	}
	if err := expr.Bind(sel.Where, schema); err != nil {
		return nil, faults.Fatal(fmt.Errorf("fragment predicate %q: %w", sql, err))
	}
	return sel.Where, nil
}

// parseExprList round-trips rendered expressions into bound expressions.
func parseExprList(sqls []string, schema *value.Schema) ([]expr.Expr, error) {
	if len(sqls) == 0 {
		return nil, nil
	}
	st, err := sqlparse.Parse("SELECT " + strings.Join(sqls, ", "))
	if err != nil {
		return nil, faults.Fatal(fmt.Errorf("fragment expressions %v: %w", sqls, err))
	}
	sel, ok := st.(*sqlparse.SelectStmt)
	if !ok || len(sel.Items) != len(sqls) {
		return nil, faults.Fatal(fmt.Errorf("fragment expressions %v did not parse", sqls))
	}
	out := make([]expr.Expr, len(sqls))
	for i, item := range sel.Items {
		if err := expr.Bind(item.Expr, schema); err != nil {
			return nil, faults.Fatal(fmt.Errorf("fragment expression %q: %w", sqls[i], err))
		}
		out[i] = item.Expr
	}
	return out, nil
}
