// Package dist implements scale-out execution: a coordinator that compiles
// query pieces into plan fragments, N worker shards that execute them over
// hash-sharded replicas of hot tables, and a gather exchange that merges the
// workers' partial streams back into exactly the single-node result.
//
// The design follows the paper's growth from one columnar engine into a
// distributed infrastructure: the engine node stays authoritative (MVCC,
// WAL, savepoints), while workers hold committed, sequence-tagged copies of
// shardable tables. Every shipped row carries its global scan sequence, so
// the coordinator's k-way merge reproduces the exact serial scan order —
// the property that makes distributed results byte-identical to local ones
// at any shard count, replica count and worker-pool width.
//
// Workers are in-process goroutine nodes behind the Transport interface; a
// net/rpc transport can slot in later without touching the planner, because
// fragments and chunks already round-trip through the wire codec.
package dist

import "hana/internal/value"

// Topology describes the worker fleet: how many shards hot tables split
// into (one worker per shard) and how many copies of each shard exist.
type Topology struct {
	// Shards is the worker count; 0 or 1 disables distributed execution.
	Shards int
	// Replicas is the number of workers holding each shard (primary +
	// backups). 0 defaults to 2 when sharding is on, and is capped at
	// Shards. Replicas make worker death survivable mid-query.
	Replicas int
}

// Enabled reports whether the topology describes a real worker fleet.
func (t Topology) Enabled() bool { return t.Shards > 1 }

// ReplicaCount resolves the effective copies per shard.
func (t Topology) ReplicaCount() int {
	r := t.Replicas
	if r <= 0 {
		r = 2
	}
	if r > t.Shards {
		r = t.Shards
	}
	if r < 1 {
		r = 1
	}
	return r
}

// Owners lists the workers holding a shard, primary first. Shard s lives on
// workers s, s+1, … (mod Shards), so load spreads evenly and losing one
// worker leaves every shard with a live replica.
func (t Topology) Owners(shard int) []int {
	n := t.ReplicaCount()
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = (shard + i) % t.Shards
	}
	return out
}

// ShardOf routes a shard-key value to its shard. NULL keys land on shard 0.
func ShardOf(v value.Value, shards int) int {
	if shards <= 1 {
		return 0
	}
	if v.IsNull() {
		return 0
	}
	return int(v.Hash() % uint64(shards))
}
