package dist

import (
	"encoding/binary"
	"fmt"

	"hana/internal/value"
)

// Fragment is one unit of distributed work: scan one shard of one table,
// filter it with the pushed predicate, and either ship the surviving rows
// (tagged with their global scan sequence), fold them into an aggregate
// partial, or probe them against a broadcast build side. Predicates and key
// expressions travel as rendered SQL and are re-parsed and re-bound at the
// worker — the same round-trip the federation layer uses for shipped
// statements — so the wire format has no expression-tree encoding.
type Fragment struct {
	// Query tags the fragment with the statement's trace id (spans only).
	Query uint64
	// Shard selects which shard's replica the worker reads.
	Shard int
	// Snapshot is the MVCC commit-ID ceiling: workers serve exactly the
	// rows committed at or before it, matching the engine-side snapshot.
	Snapshot uint64
	// Width caps the worker's morsel parallelism for this fragment
	// (0 = the worker pool's size).
	Width int
	// Table is the catalog table name; Binding qualifies the scan schema
	// (the FROM alias), so shipped expressions bind exactly as they would
	// against the local leaf.
	Table   string
	Binding string
	// Where is the rendered conjunction pushed into the shard scan ("" =
	// none).
	Where string

	// At most one of Agg/Join is set; nil means a plain gather scan.
	Agg  *AggFragment
	Join *JoinFragment
}

// AggFragment asks the worker for per-group aggregate partials instead of
// rows. Only exact-mergeable aggregates are ever shipped (COUNT, MIN, MAX,
// and SUM over integer arguments, each with optional DISTINCT) — everything
// else gathers rows and aggregates at the coordinator, keeping float
// summation order identical to single-node execution.
type AggFragment struct {
	GroupBy []string // rendered group-key expressions
	Aggs    []AggCall
}

// AggCall is one shipped aggregate: Func(Arg) with optional DISTINCT.
// Empty Arg means COUNT(*).
type AggCall struct {
	Func     string
	Arg      string
	Distinct bool
}

// JoinFragment broadcasts a realized build side to every shard of the probe
// table: each worker builds the same hash table in the same row order, so
// per-probe-row match chains come out in build-input order — exactly the
// serial hash join's emission order.
type JoinFragment struct {
	ProbeKeys []string // rendered probe-side key expressions
	BuildKeys []string // rendered build-side key expressions
	Residual  string   // rendered residual over probe++build columns ("" = none)
	BuildCols []value.Column
	BuildRows []value.Row
}

const fragmentWireVersion = 1

// Encode renders the fragment in the platform's wire format (uvarint
// framing over the value codec). Encoding is deterministic: equal fragments
// produce identical bytes.
func (f *Fragment) Encode() []byte {
	buf := []byte{fragmentWireVersion}
	buf = binary.AppendUvarint(buf, f.Query)
	buf = binary.AppendUvarint(buf, uint64(f.Shard))
	buf = binary.AppendUvarint(buf, f.Snapshot)
	buf = binary.AppendUvarint(buf, uint64(f.Width))
	buf = appendString(buf, f.Table)
	buf = appendString(buf, f.Binding)
	buf = appendString(buf, f.Where)
	if f.Agg != nil {
		buf = append(buf, 1)
		buf = appendStrings(buf, f.Agg.GroupBy)
		buf = binary.AppendUvarint(buf, uint64(len(f.Agg.Aggs)))
		for _, a := range f.Agg.Aggs {
			buf = appendString(buf, a.Func)
			buf = appendString(buf, a.Arg)
			buf = appendBool(buf, a.Distinct)
		}
	} else {
		buf = append(buf, 0)
	}
	if f.Join != nil {
		buf = append(buf, 1)
		buf = appendStrings(buf, f.Join.ProbeKeys)
		buf = appendStrings(buf, f.Join.BuildKeys)
		buf = appendString(buf, f.Join.Residual)
		buf = binary.AppendUvarint(buf, uint64(len(f.Join.BuildCols)))
		for _, c := range f.Join.BuildCols {
			buf = appendString(buf, c.Name)
			buf = append(buf, byte(c.Kind))
			buf = appendBool(buf, c.Nullable)
		}
		buf = binary.AppendUvarint(buf, uint64(len(f.Join.BuildRows)))
		for _, r := range f.Join.BuildRows {
			buf = value.AppendRow(buf, r)
		}
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// DecodeFragment parses an encoded fragment.
func DecodeFragment(b []byte) (*Fragment, error) {
	d := &wireReader{b: b}
	if v := d.byte(); v != fragmentWireVersion {
		return nil, fmt.Errorf("fragment decode: unsupported version %d", v)
	}
	f := &Fragment{}
	f.Query = d.uvarint()
	f.Shard = int(d.uvarint())
	f.Snapshot = d.uvarint()
	f.Width = int(d.uvarint())
	f.Table = d.string()
	f.Binding = d.string()
	f.Where = d.string()
	if d.bool() {
		agg := &AggFragment{GroupBy: d.strings()}
		n := int(d.uvarint())
		for i := 0; i < n && d.err == nil; i++ {
			agg.Aggs = append(agg.Aggs, AggCall{Func: d.string(), Arg: d.string(), Distinct: d.bool()})
		}
		f.Agg = agg
	}
	if d.bool() {
		j := &JoinFragment{
			ProbeKeys: d.strings(),
			BuildKeys: d.strings(),
			Residual:  d.string(),
		}
		nc := int(d.uvarint())
		for i := 0; i < nc && d.err == nil; i++ {
			j.BuildCols = append(j.BuildCols, value.Column{Name: d.string(), Kind: value.Kind(d.byte()), Nullable: d.bool()})
		}
		nr := int(d.uvarint())
		for i := 0; i < nr && d.err == nil; i++ {
			j.BuildRows = append(j.BuildRows, d.row())
		}
		f.Join = j
	}
	if d.err != nil {
		return nil, fmt.Errorf("fragment decode: %w", d.err)
	}
	return f, nil
}

// --- wire helpers ---

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendStrings(buf []byte, ss []string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ss)))
	for _, s := range ss {
		buf = appendString(buf, s)
	}
	return buf
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// wireReader is a cursor over an encoded payload; the first malformed field
// latches err and every later read returns a zero value.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (d *wireReader) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("truncated %s at offset %d", what, d.off)
	}
}

func (d *wireReader) byte() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *wireReader) bool() bool { return d.byte() != 0 }

func (d *wireReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *wireReader) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *wireReader) string() string {
	l := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)-d.off) < l {
		d.fail("string")
		return ""
	}
	s := string(d.b[d.off : d.off+int(l)])
	d.off += int(l)
	return s
}

func (d *wireReader) strings() []string {
	n := int(d.uvarint())
	if n == 0 || d.err != nil {
		return nil
	}
	// Cap the prealloc: n is wire data, and a corrupt length must surface
	// as a short-buffer decode error, not an oversized allocation.
	out := make([]string, 0, min(n, 64))
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.string())
	}
	return out
}

func (d *wireReader) row() value.Row {
	if d.err != nil {
		return nil
	}
	r, n, err := value.DecodeRow(d.b[d.off:])
	if err != nil {
		d.err = err
		return nil
	}
	d.off += n
	return r
}

func (d *wireReader) value() value.Value {
	if d.err != nil {
		return value.Null
	}
	v, n, err := value.DecodeValue(d.b[d.off:])
	if err != nil {
		d.err = err
		return value.Null
	}
	d.off += n
	return v
}
