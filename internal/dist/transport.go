package dist

import (
	"context"
	"fmt"

	"hana/internal/faults"
)

// ChunkSink receives one exchange chunk; returning an error aborts the
// worker's stream.
type ChunkSink func(*Chunk) error

// Transport delivers fragments to workers and streams chunks back. The
// in-process Local transport is the only implementation today; a net/rpc
// transport slots in here without touching the planner or coordinator,
// because fragments and chunks already round-trip through the wire codec.
type Transport interface {
	// Workers reports the fleet size.
	Workers() int
	// Run executes the fragment on the given worker, streaming chunks to
	// the sink in order. Errors keep their faults classification so the
	// coordinator can retry transients and fail over fatals.
	Run(ctx context.Context, worker int, f *Fragment, sink ChunkSink) error
}

// Local is the in-process transport: workers are goroutine nodes in the
// same address space. With Wire set, every fragment and chunk round-trips
// through the wire codec, exercising exactly the bytes a network transport
// would ship — the conformance mode the codec tests and chaos suite use.
type Local struct {
	workers []*Worker
	// Wire forces encode/decode round-trips on both directions.
	Wire bool
}

// NewLocal builds the in-process transport over the worker fleet.
func NewLocal(workers []*Worker) *Local {
	return &Local{workers: workers}
}

// Workers implements Transport.
func (l *Local) Workers() int { return len(l.workers) }

// Worker exposes a node for seeding, chaos control and 2PC enlistment.
func (l *Local) Worker(i int) *Worker { return l.workers[i] }

// Run implements Transport.
func (l *Local) Run(ctx context.Context, worker int, f *Fragment, sink ChunkSink) error {
	if worker < 0 || worker >= len(l.workers) {
		return faults.Fatal(fmt.Errorf("dist: no worker %d in a fleet of %d", worker, len(l.workers)))
	}
	w := l.workers[worker]
	if !l.Wire {
		return w.Execute(ctx, f, func(ch *Chunk) error { return sink(ch) })
	}
	df, err := DecodeFragment(f.Encode())
	if err != nil {
		return faults.Fatal(fmt.Errorf("dist: fragment wire round-trip: %w", err))
	}
	return w.Execute(ctx, df, func(ch *Chunk) error {
		dc, err := DecodeChunk(ch.Encode())
		if err != nil {
			return faults.Fatal(fmt.Errorf("dist: chunk wire round-trip: %w", err))
		}
		return sink(dc)
	})
}
