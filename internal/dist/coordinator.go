package dist

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"hana/internal/fed"
	"hana/internal/value"
)

// Coordinator fans a fragment template out to every shard, survives replica
// failures by retrying the next owner, and merges the returned chunk
// streams back into the exact single-node row order.
type Coordinator struct {
	Topo      Topology
	Transport Transport
	// Caller guards each worker attempt (breaker + retry + fault site +
	// span). Required: every attempt routes through it, so the breaker and
	// chaos machinery can never be bypassed. The engine installs a
	// fed.GuardedCall; tests do the same.
	Caller fed.Caller
}

// GatherResult is the merged output of one distributed fragment fan-out.
type GatherResult struct {
	// Rows and Seqs are the merged row stream in ascending global sequence
	// order — exactly the serial scan (or probe) order. Unset for
	// aggregate fragments.
	Rows []value.Row
	Seqs []int64
	// Partial is the merged aggregate state, groups sorted by MinSeq (the
	// serial first-seen group order). Set only for aggregate fragments.
	Partial *Partial
	// Scanned totals the snapshot-visible rows examined across shards.
	Scanned int64
	// Fragments counts worker attempts; Failovers counts replica
	// switch-overs after a primary failed.
	Fragments int
	Failovers int
}

// Gather runs the template on every shard (at most fanout shards in flight;
// 0 = all) and merges the streams. The template's Shard field is assigned
// per fan-out; everything else ships as-is.
func (c *Coordinator) Gather(ctx context.Context, tmpl *Fragment, fanout int) (*GatherResult, error) {
	shards := c.Topo.Shards
	if shards < 1 {
		shards = 1
	}
	if fanout <= 0 || fanout > shards {
		fanout = shards
	}
	perShard := make([][]*Chunk, shards)
	failovers := make([]int, shards)
	errs := make([]error, shards)
	sem := make(chan struct{}, fanout)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f := *tmpl
			f.Shard = s
			perShard[s], failovers[s], errs[s] = c.runShard(ctx, &f)
		}(s)
	}
	wg.Wait()

	res := &GatherResult{}
	for s := 0; s < shards; s++ {
		if errs[s] != nil {
			return nil, errs[s]
		}
		res.Failovers += failovers[s]
		res.Fragments += 1 + failovers[s]
		for _, ch := range perShard[s] {
			res.Scanned += ch.Scanned
		}
	}
	if tmpl.Agg != nil {
		res.Partial = mergePartials(perShard)
		return res, nil
	}
	res.Rows, res.Seqs = mergeStreams(perShard)
	return res, nil
}

// runShard executes one shard's fragment against its owners in order,
// failing over to the next replica when an attempt fails. Each attempt
// restarts the chunk buffer, so a stream cut mid-way never leaks partial
// rows into the merge.
func (c *Coordinator) runShard(ctx context.Context, f *Fragment) ([]*Chunk, int, error) {
	owners := c.Topo.Owners(f.Shard)
	var lastErr error
	for i, owner := range owners {
		var buf []*Chunk
		attempt := func() error {
			buf = buf[:0]
			return c.Transport.Run(ctx, owner, f, func(ch *Chunk) error {
				buf = append(buf, ch)
				return nil
			})
		}
		target := fmt.Sprintf("dist.worker.%d", owner)
		err := c.Caller.Call(ctx, target, "fragment", target+".run", attempt)
		if err == nil {
			return buf, i, nil
		}
		lastErr = err
	}
	return nil, len(owners) - 1, fmt.Errorf("dist: shard %d failed on all %d replicas: %w", f.Shard, len(owners), lastErr)
}

// mergeStreams k-way merges the per-shard chunk streams by global sequence.
// Within a shard the stream is already ascending (morsel order), and one
// sequence lives on exactly one shard, so picking the smallest head
// sequence reproduces the serial order; equal sequences (a probe row's
// multiple join matches) stay in their within-shard emission order.
func mergeStreams(perShard [][]*Chunk) ([]value.Row, []int64) {
	type cursor struct {
		rows []value.Row
		seqs []int64
		i    int
	}
	cursors := make([]*cursor, 0, len(perShard))
	total := 0
	for _, chunks := range perShard {
		cur := &cursor{}
		for _, ch := range chunks {
			rows := ch.RowsOf()
			cur.rows = append(cur.rows, rows...)
			cur.seqs = append(cur.seqs, ch.Seqs...)
		}
		total += len(cur.rows)
		if len(cur.rows) > 0 {
			cursors = append(cursors, cur)
		}
	}
	rows := make([]value.Row, 0, total)
	seqs := make([]int64, 0, total)
	for len(cursors) > 0 {
		best := 0
		for i := 1; i < len(cursors); i++ {
			if cursors[i].seqs[cursors[i].i] < cursors[best].seqs[cursors[best].i] {
				best = i
			}
		}
		cur := cursors[best]
		// Drain the run of equal sequences from this cursor so a probe
		// row's matches stay contiguous and ordered.
		seq := cur.seqs[cur.i]
		for cur.i < len(cur.seqs) && cur.seqs[cur.i] == seq {
			rows = append(rows, cur.rows[cur.i])
			seqs = append(seqs, seq)
			cur.i++
		}
		if cur.i == len(cur.seqs) {
			cursors = append(cursors[:best], cursors[best+1:]...)
		}
	}
	return rows, seqs
}

// mergePartials unions the shards' aggregate partials: states for the same
// group key merge (exact for the shipped subset), and the merged groups
// sort by their minimum contributing sequence — the order the serial
// aggregate would have first seen each group.
func mergePartials(perShard [][]*Chunk) *Partial {
	total := 0
	for _, chunks := range perShard {
		for _, ch := range chunks {
			if ch.Partial != nil {
				total += len(ch.Partial.Groups)
			}
		}
	}
	table := map[uint64][]*PartialGroup{}
	order := make([]*PartialGroup, 0, total)
	var ords []int
	for _, chunks := range perShard {
		for _, ch := range chunks {
			if ch.Partial == nil {
				continue
			}
			for gi := range ch.Partial.Groups {
				g := &ch.Partial.Groups[gi]
				if ords == nil {
					ords = ordinals(len(g.Key))
				}
				h := g.Key.Hash(ords)
				var dst *PartialGroup
				for _, cand := range table[h] {
					if cand.Key.EqualAt(g.Key, ords, ords) {
						dst = cand
						break
					}
				}
				if dst == nil {
					cp := PartialGroup{MinSeq: g.MinSeq, Key: g.Key, States: g.States}
					order = append(order, &cp)
					table[h] = append(table[h], &cp)
					continue
				}
				if g.MinSeq < dst.MinSeq {
					dst.MinSeq = g.MinSeq
				}
				for i := range dst.States {
					dst.States[i].merge(g.States[i])
				}
			}
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].MinSeq < order[j].MinSeq })
	p := &Partial{Groups: make([]PartialGroup, len(order))}
	for i, g := range order {
		p.Groups[i] = *g
	}
	return p
}

func ordinals(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
