package dist

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"hana/internal/value"
)

// TestWorkerStressKillReviveReseed hammers the exact surface the guardedby
// annotations cover: Worker.mu-guarded shard state and txMu-guarded 2PC
// buffers, under concurrent queries, kill/revive cycles, idempotent
// reseeds and a live 2PC stream. Run under -race (make race) this is the
// dynamic counterpart to the static field-discipline checks.
func TestWorkerStressKillReviveReseed(t *testing.T) {
	topo := Topology{Shards: 3, Replicas: 2}
	const rows = 90
	tr := seedFleet(t, topo, rows, false)
	c := &Coordinator{Topo: topo, Transport: tr, Caller: testCaller()}

	iters := 40
	if testing.Short() {
		iters = 8
	}

	reseed := func(owner int) {
		// Replays the seedFleet data (same seqs, same cid): idempotent by
		// contract, so it can race with queries without changing results.
		w := tr.Worker(owner)
		for i := 0; i < rows; i++ {
			row := intRow(int64(i), int64(i*10))
			shard := ShardOf(row[0], topo.Shards)
			for _, o := range topo.Owners(shard) {
				if o != owner {
					continue
				}
				err := w.LoadCommitted("T", shard, []int64{int64(i)}, []value.Row{row.Clone()}, 1)
				if err != nil && !strings.Contains(err.Error(), "is down") {
					t.Errorf("reseed worker %d: %v", owner, err)
				}
			}
		}
	}

	var (
		wg        sync.WaitGroup
		gathers   int64
		failovers int64
	)
	// Two query loops: every gather must succeed (only worker 1 ever dies,
	// and every shard has a surviving replica) and return the full table.
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			frag := &Fragment{Snapshot: 1, Table: "T", Binding: "T"}
			for i := 0; i < iters; i++ {
				res, err := c.Gather(context.Background(), frag, 0)
				if err != nil {
					t.Errorf("gather %d: %v", i, err)
					return
				}
				if len(res.Rows) != rows {
					t.Errorf("gather %d: %d rows, want %d", i, len(res.Rows), rows)
					return
				}
				atomic.AddInt64(&gathers, 1)
				atomic.AddInt64(&failovers, int64(res.Failovers))
			}
		}()
	}
	// Chaos loop: kill and revive worker 1 (replica coverage keeps every
	// shard reachable throughout).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters*2; i++ {
			tr.Worker(1).Kill()
			// Hold the dead state across a few scheduler quanta so the
			// query loops actually observe it and fail over.
			for y := 0; y < 50; y++ {
				runtime.Gosched()
			}
			tr.Worker(1).Revive()
			for y := 0; y < 10; y++ {
				runtime.Gosched()
			}
		}
	}()
	// Reseed loop: idempotent replays against live and dying workers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			reseed(i % topo.Shards)
		}
	}()
	// 2PC loop against worker 2 (never killed): inserts commit at cids
	// above the query snapshot, aborts roll back cleanly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := tr.Worker(2)
		for i := 0; i < iters; i++ {
			tid := uint64(1000 + i)
			seq := int64(1_000_000 + i)
			w.BufferInsert(tid, "T", 2, seq, intRow(seq, 0))
			if err := w.Prepare(tid); err != nil {
				t.Errorf("prepare %d: %v", tid, err)
				return
			}
			if i%2 == 0 {
				if err := w.Commit(tid, uint64(2+i)); err != nil {
					t.Errorf("commit %d: %v", tid, err)
					return
				}
			} else {
				if err := w.Abort(tid); err != nil {
					t.Errorf("abort %d: %v", tid, err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced invariants: the snapshot-1 view is untouched by the churn,
	// and exactly the committed half of the 2PC stream is visible above it.
	tr.Worker(1).Revive()
	res, err := c.Gather(context.Background(), &Fragment{Snapshot: 1, Table: "T", Binding: "T"}, 0)
	if err != nil || len(res.Rows) != rows {
		t.Fatalf("final gather: %v, %d rows", err, len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[0].I != int64(i) {
			t.Fatalf("row %d out of order after stress: %v", i, row)
		}
	}
	committed := (iters + 1) / 2
	base := tr.Worker(2).ShardRowCount("T", 2, 1)
	if got := tr.Worker(2).ShardRowCount("T", 2, uint64(2+iters)); got != base+committed {
		t.Fatalf("committed inserts visible = %d, want %d (+%d base)", got, base+committed, base)
	}
	t.Logf("stress: %d gathers, %d failovers", gathers, failovers)
}
