package esp

import (
	"testing"
	"time"

	"hana/internal/faults"
	"hana/internal/hdfs"
	"hana/internal/value"
)

func sinkRows(lo, hi int) []value.Row {
	var out []value.Row
	for i := lo; i < hi; i++ {
		out = append(out, ev(int64(i), "M", float64(i)))
	}
	return out
}

// countArchivedLines totals data lines across the sink's part files.
func countArchivedLines(t *testing.T, cluster *hdfs.Cluster, dir string) int {
	t.Helper()
	n := 0
	for _, fi := range cluster.List(dir) {
		data, err := cluster.ReadFile(fi.Path)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range data {
			if b == '\n' {
				n++
			}
		}
	}
	return n
}

func TestSinkSpillsOnTransientFlushFailureWithoutDuplication(t *testing.T) {
	cluster := newTestCluster()
	inj := faults.New(1)
	inj.SetSleep(func(time.Duration) {})
	sink := NewHDFSArchiveSink(cluster, "/arch", 3)
	sink.SetInjector(inj)
	sink.SetRetryPolicy(faults.RetryPolicy{MaxAttempts: 2, Sleep: func(time.Duration) {}})

	// Every flush attempt fails for a while: the rotate inside Consume must
	// spill (keep the rows, keep the stream moving), not error.
	inj.FailN("esp.flush", 100)
	if err := sink.Consume(sinkRows(0, 5), eventSchema()); err != nil {
		t.Fatalf("transient rotate failure must spill, got %v", err)
	}
	if sink.Spills() == 0 {
		t.Fatal("spill not recorded")
	}
	if sink.Pending() != 5 {
		t.Fatalf("pending = %d, want 5 buffered rows", sink.Pending())
	}
	if got := countArchivedLines(t, cluster, "/arch"); got != 0 {
		t.Fatalf("rows leaked to HDFS during outage: %d", got)
	}

	// Outage over: the next batch triggers a rotation that drains the
	// spilled rows; nothing is duplicated and nothing is lost.
	inj.Reset()
	if err := sink.Consume(sinkRows(5, 7), eventSchema()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Pending() != 0 {
		t.Fatalf("pending after Close = %d", sink.Pending())
	}
	if got := countArchivedLines(t, cluster, "/arch"); got != 7 {
		t.Fatalf("archived rows = %d, want exactly 7 (no loss, no duplication)", got)
	}
	if sink.RowsWritten() != 7 {
		t.Fatalf("RowsWritten = %d", sink.RowsWritten())
	}
}

func TestSinkFlushRetriesTransientFailures(t *testing.T) {
	cluster := newTestCluster()
	inj := faults.New(1)
	inj.SetSleep(func(time.Duration) {})
	sink := NewHDFSArchiveSink(cluster, "/arch", 100)
	sink.SetInjector(inj)
	sink.SetRetryPolicy(faults.RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}})
	if err := sink.Consume(sinkRows(0, 4), eventSchema()); err != nil {
		t.Fatal(err)
	}
	// Two injected failures are absorbed by the three flush attempts.
	inj.FailN("esp.flush", 2)
	if err := sink.Flush(); err != nil {
		t.Fatalf("flush retry must absorb transients: %v", err)
	}
	if got := countArchivedLines(t, cluster, "/arch"); got != 4 {
		t.Fatalf("archived rows = %d, want 4", got)
	}
}

func TestSinkFatalFlushErrorSurfaces(t *testing.T) {
	cluster := newTestCluster()
	inj := faults.New(1)
	inj.SetSleep(func(time.Duration) {})
	sink := NewHDFSArchiveSink(cluster, "/arch", 2)
	sink.SetInjector(inj)
	sink.SetRetryPolicy(faults.RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}})
	inj.FailFatal("esp.flush", 1)
	err := sink.Consume(sinkRows(0, 2), eventSchema())
	if err == nil {
		t.Fatal("fatal flush error must surface")
	}
	if !faults.IsFatal(err) {
		t.Fatalf("classification lost: %v", err)
	}
	// The rows are still buffered; a later Flush delivers them exactly once.
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := countArchivedLines(t, cluster, "/arch"); got != 2 {
		t.Fatalf("archived rows = %d, want 2", got)
	}
}

func TestSinkCloseFlushesPartialPart(t *testing.T) {
	cluster := newTestCluster()
	sink := NewHDFSArchiveSink(cluster, "/arch", 1000)
	if err := sink.Consume(sinkRows(0, 3), eventSchema()); err != nil {
		t.Fatal(err)
	}
	if got := countArchivedLines(t, cluster, "/arch"); got != 0 {
		t.Fatal("below-threshold rows must still be buffered")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if got := countArchivedLines(t, cluster, "/arch"); got != 3 {
		t.Fatalf("Close must flush the partial part, got %d rows", got)
	}
}
