package esp

import (
	"fmt"
	"strings"
	"sync"

	"hana/internal/hdfs"
	"hana/internal/value"
)

// HDFSArchiveSink pushes raw events into HDFS — the paper's dedicated
// adapter ("the raw data may be pushed into an existing HDFS using a
// dedicated adapter such that it is possible to perform a detailed offline
// analysis of the raw data"). Rows are buffered and rotated into
// tab-separated part files under a directory, ready for map-reduce input.
type HDFSArchiveSink struct {
	mu       sync.Mutex
	cluster  *hdfs.Cluster
	dir      string
	rotate   int // rows per part file
	buf      strings.Builder
	buffered int
	part     int
	written  int64
}

// NewHDFSArchiveSink creates a sink writing under dir, rotating files
// every rotateRows rows (default 10000).
func NewHDFSArchiveSink(cluster *hdfs.Cluster, dir string, rotateRows int) *HDFSArchiveSink {
	if rotateRows <= 0 {
		rotateRows = 10000
	}
	return &HDFSArchiveSink{cluster: cluster, dir: dir, rotate: rotateRows}
}

// Consume implements Sink.
func (s *HDFSArchiveSink) Consume(rows []value.Row, _ *value.Schema) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				s.buf.WriteByte('\t')
			}
			if v.IsNull() {
				s.buf.WriteString(`\N`)
			} else {
				s.buf.WriteString(strings.NewReplacer("\t", " ", "\n", " ").Replace(v.String()))
			}
		}
		s.buf.WriteByte('\n')
		s.buffered++
		s.written++
		if s.buffered >= s.rotate {
			if err := s.flushLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush forces the current buffer into a part file.
func (s *HDFSArchiveSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *HDFSArchiveSink) flushLocked() error {
	if s.buffered == 0 {
		return nil
	}
	name := fmt.Sprintf("%s/part-%05d", s.dir, s.part)
	if err := s.cluster.WriteFile(name, []byte(s.buf.String())); err != nil {
		return err
	}
	s.part++
	s.buffered = 0
	s.buf.Reset()
	return nil
}

// RowsWritten reports the total rows accepted.
func (s *HDFSArchiveSink) RowsWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}
