package esp

import (
	"fmt"
	"strings"
	"sync"

	"hana/internal/faults"
	"hana/internal/hdfs"
	"hana/internal/value"
)

// HDFSArchiveSink pushes raw events into HDFS — the paper's dedicated
// adapter ("the raw data may be pushed into an existing HDFS using a
// dedicated adapter such that it is possible to perform a detailed offline
// analysis of the raw data"). Rows are buffered and rotated into
// tab-separated part files under a directory, ready for map-reduce input.
//
// Delivery contract: Consume always absorbs the whole batch into the
// buffer before any flush, so the caller never needs to resend rows and a
// retried flush can never duplicate them (part files are written under a
// stable name that is only advanced after a successful write, and
// WriteFile replaces). A transient rotate-flush failure spills — the rows
// stay buffered, the stream is not blocked — and the next rotation, an
// explicit Flush, or Close retries the write.
type HDFSArchiveSink struct {
	mu      sync.Mutex
	cluster *hdfs.Cluster
	dir     string
	rotate  int // rows per part file
	// hana:guardedby mu
	buf strings.Builder
	// hana:guardedby mu
	buffered int
	// hana:guardedby mu
	part int
	// hana:guardedby mu
	written int64
	// hana:guardedby mu
	spills int64
	retry    faults.RetryPolicy
	inj      *faults.Injector
}

// NewHDFSArchiveSink creates a sink writing under dir, rotating files
// every rotateRows rows (default 10000).
func NewHDFSArchiveSink(cluster *hdfs.Cluster, dir string, rotateRows int) *HDFSArchiveSink {
	if rotateRows <= 0 {
		rotateRows = 10000
	}
	return &HDFSArchiveSink{cluster: cluster, dir: dir, rotate: rotateRows}
}

// SetRetryPolicy configures flush retries (zero value = faults defaults).
func (s *HDFSArchiveSink) SetRetryPolicy(p faults.RetryPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retry = p
}

// SetInjector routes part-file flushes through a fault injector at the
// "esp.flush" site (the cluster's "hdfs.write" site fires independently).
func (s *HDFSArchiveSink) SetInjector(inj *faults.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inj = inj
}

// Consume implements Sink. The batch is fully absorbed before any flush is
// attempted; see the type comment for the delivery contract.
func (s *HDFSArchiveSink) Consume(rows []value.Row, _ *value.Schema) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				s.buf.WriteByte('\t')
			}
			if v.IsNull() {
				s.buf.WriteString(`\N`)
			} else {
				s.buf.WriteString(strings.NewReplacer("\t", " ", "\n", " ").Replace(v.String()))
			}
		}
		s.buf.WriteByte('\n')
		s.buffered++
		s.written++
		if s.buffered >= s.rotate {
			if err := s.flushLocked(); err != nil {
				//lint:ignore locksafe IsTransient only walks the error chain, it takes no locks
				if faults.IsTransient(err) {
					// Spill: keep the rows buffered and keep the stream
					// moving; a later rotation or Flush retries the part.
					s.spills++
					continue
				}
				return err
			}
		}
	}
	return nil
}

// Flush forces the current buffer into a part file.
func (s *HDFSArchiveSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

// Close flushes any buffered rows and detaches the sink from new writes.
// It is the stream-teardown hook: without it, rows below the rotation
// threshold would be stranded in memory.
func (s *HDFSArchiveSink) Close() error {
	return s.Flush()
}

func (s *HDFSArchiveSink) flushLocked() error {
	if s.buffered == 0 {
		return nil
	}
	// The part number only advances after a successful write, so every
	// retry rewrites the same name and WriteFile's replace semantics make
	// the flush idempotent.
	name := fmt.Sprintf("%s/part-%05d", s.dir, s.part)
	data := []byte(s.buf.String())
	err := s.retry.Do("esp.flush", func() error {
		if err := s.inj.Check("esp.flush"); err != nil {
			return err
		}
		return s.cluster.WriteFile(name, data)
	})
	if err != nil {
		return err
	}
	s.part++
	s.buffered = 0
	s.buf.Reset()
	return nil
}

// RowsWritten reports the total rows accepted.
func (s *HDFSArchiveSink) RowsWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}

// Pending reports rows absorbed but not yet flushed to HDFS.
func (s *HDFSArchiveSink) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buffered
}

// Spills counts rotate-flushes that failed transiently and were deferred.
func (s *HDFSArchiveSink) Spills() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spills
}
