package esp

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentPublishAndRead hammers one window from four publisher and
// four reader goroutines. Run under `go test -race`, it guards the
// project/stream/window locking: unsynchronized access to the retained
// event slice or the per-pattern counters shows up immediately.
func TestConcurrentPublishAndRead(t *testing.T) {
	p := NewProject()
	if _, err := p.CreateInputStream("s", eventSchema()); err != nil {
		t.Fatal(err)
	}
	w, err := p.CreateWindow("w", `SELECT * FROM s KEEP 100 ROWS`)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = w.RawCount()
				if _, err := w.Rows(t0().Add(time.Hour)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 250; i++ {
				ts := t0().Add(time.Duration(i) * time.Millisecond)
				if err := p.Publish("s", ev(int64(g*1000+i), "CALL_START", 1), ts); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if w.RawCount() != 100 {
		t.Fatalf("window retained %d rows, want 100", w.RawCount())
	}
}

// TestPatternActionRepublishes wires a pattern action that publishes back
// into a second stream of the same project — the re-entrancy that used to
// deadlock when actions fired while the pattern mutex was held. The action
// must run strictly after the lock is released.
func TestPatternActionRepublishes(t *testing.T) {
	p := NewProject()
	if _, err := p.CreateInputStream("calls", eventSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateInputStream("alerts", eventSchema()); err != nil {
		t.Fatal(err)
	}
	aw, err := p.CreateWindow("aw", `SELECT * FROM alerts KEEP 100 ROWS`)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := p.CreatePattern("outage", "calls", []string{
		`event_type = 'CALL_DROP'`,
		`event_type = 'CALL_DROP'`,
	}, time.Minute, func(evs []Event) {
		if err := p.Publish("alerts", ev(99, "ALERT", 0), evs[len(evs)-1].Time); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			ts := t0().Add(time.Duration(i) * time.Second)
			if err := p.Publish("calls", ev(1, "CALL_DROP", 0), ts); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publish deadlocked: pattern action re-entered the project while a lock was held")
	}

	if pat.MatchCount() == 0 {
		t.Fatal("pattern never matched")
	}
	if aw.RawCount() == 0 {
		t.Fatal("action's re-published alerts never reached the alert window")
	}
}

// TestConcurrentPatternMatching publishes matching event sequences from
// several goroutines while others poll MatchCount — the counter is only
// reachable through the locked getter.
func TestConcurrentPatternMatching(t *testing.T) {
	p := NewProject()
	if _, err := p.CreateInputStream("s", eventSchema()); err != nil {
		t.Fatal(err)
	}
	pat, err := p.CreatePattern("pair", "s", []string{
		`event_type = 'CALL_DROP'`,
		`event_type = 'CALL_DROP'`,
	}, time.Hour, func([]Event) {})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = pat.MatchCount()
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 100; i++ {
				ts := t0().Add(time.Duration(g*100+i) * time.Second)
				if err := p.Publish("s", ev(int64(g), "CALL_DROP", 0), ts); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if pat.MatchCount() == 0 {
		t.Fatal("no matches under concurrency")
	}
}
