// Package esp implements the event stream processor of §3.2 — the
// platform's substitute for SAP Sybase ESP. A Project hosts input streams
// and continuous queries (windows) written in the CCL dialect (SELECT …
// FROM stream [WHERE …] [GROUP BY …] KEEP n ROWS|SECONDS|MINUTES).
//
// The three integration patterns of the paper are supported:
//
//  1. Prefilter/pre-aggregate and forward — subscribe a sink to a stream or
//     window and push its rows into a HANA table.
//  2. ESP join — reference tables loaded from HANA are joined to events as
//     they arrive, enriching the stream.
//  3. HANA join — a window exposes its current content as a table the HANA
//     engine can read mid-query.
//
// As in the paper, no transactional guarantees are provided on streams.
package esp

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"hana/internal/expr"
	"hana/internal/sqlparse"
	"hana/internal/value"
)

// Event is one stream record with its event time.
type Event struct {
	Time time.Time
	Row  value.Row
}

// Sink consumes forwarded rows (use case 1: "forward … permanently store
// the window content under the control of the database system").
type Sink interface {
	Consume(rows []value.Row, schema *value.Schema) error
}

// SinkFunc adapts a function to a Sink.
type SinkFunc func(rows []value.Row, schema *value.Schema) error

// Consume implements Sink.
func (f SinkFunc) Consume(rows []value.Row, schema *value.Schema) error { return f(rows, schema) }

// Stream is a typed event stream.
type Stream struct {
	name   string
	schema *value.Schema

	mu sync.Mutex
	// hana:guardedby mu
	windows []*Window
	// hana:guardedby mu
	sinks []sinkBinding
	// hana:guardedby mu
	patterns []*Pattern
	// hana:guardedby mu
	enriched []*derivedBinding
	// hana:guardedby mu
	count int64
}

type sinkBinding struct {
	pred expr.Expr // nil = all events
	sink Sink
}

type derivedBinding struct {
	out    *Stream
	ref    *refTable
	keyIn  expr.Expr
	refKey int
}

// Name returns the stream name.
func (s *Stream) Name() string { return s.name }

// Schema returns the event schema.
func (s *Stream) Schema() *value.Schema { return s.schema }

// EventCount returns the number of events published.
func (s *Stream) EventCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// refTable is a reference snapshot pushed from the database (use case 2:
// "slowly changing data is pushed during CCL query execution from the SAP
// HANA store into the ESP and there joined with raw data elements").
type refTable struct {
	name   string
	schema *value.Schema
	keyOrd int
	mu     sync.RWMutex
	// hana:guardedby mu
	index map[uint64][]value.Row
}

func (r *refTable) lookup(v value.Value) []value.Row {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []value.Row
	for _, row := range r.index[v.Hash()] {
		if value.Compare(row[r.keyOrd], v) == 0 {
			out = append(out, row)
		}
	}
	return out
}

// Project is one ESP deployment unit holding streams, windows, reference
// tables and patterns.
type Project struct {
	mu sync.Mutex
	// hana:guardedby mu
	streams map[string]*Stream
	// hana:guardedby mu
	windows map[string]*Window
	// hana:guardedby mu
	refs map[string]*refTable
}

// NewProject creates an empty project.
func NewProject() *Project {
	return &Project{
		streams: map[string]*Stream{},
		windows: map[string]*Window{},
		refs:    map[string]*refTable{},
	}
}

// CreateInputStream declares a stream (CCL: CREATE INPUT STREAM).
func (p *Project) CreateInputStream(name string, schema *value.Schema) (*Stream, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := strings.ToUpper(name)
	if _, ok := p.streams[key]; ok {
		return nil, fmt.Errorf("esp: stream %s already exists", name)
	}
	s := &Stream{name: name, schema: schema.Clone()}
	p.streams[key] = s
	return s, nil
}

// Stream resolves a stream.
func (p *Project) Stream(name string) (*Stream, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.streams[strings.ToUpper(name)]
	return s, ok
}

// Window resolves a window.
func (p *Project) Window(name string) (*Window, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.windows[strings.ToUpper(name)]
	return w, ok
}

// LoadReferenceTable pushes (or replaces) a reference snapshot keyed by the
// named column.
func (p *Project) LoadReferenceTable(name string, schema *value.Schema, rows []value.Row, keyCol string) error {
	keyOrd := schema.Find(keyCol)
	if keyOrd < 0 {
		return fmt.Errorf("esp: key column %s not in reference schema", keyCol)
	}
	rt := &refTable{name: name, schema: schema.Clone(), keyOrd: keyOrd, index: map[uint64][]value.Row{}}
	for _, r := range rows {
		h := r[keyOrd].Hash()
		rt.index[h] = append(rt.index[h], r.Clone())
	}
	p.mu.Lock()
	p.refs[strings.ToUpper(name)] = rt
	p.mu.Unlock()
	return nil
}

// Publish pushes one event into a stream at the given event time,
// synchronously updating every attached window, sink, enrichment and
// pattern.
func (p *Project) Publish(stream string, row value.Row, ts time.Time) error {
	s, ok := p.Stream(stream)
	if !ok {
		return fmt.Errorf("esp: stream %s not found", stream)
	}
	return s.publish(Event{Time: ts, Row: row})
}

func (s *Stream) publish(ev Event) error {
	if len(ev.Row) != s.schema.Len() {
		return fmt.Errorf("esp: event arity %d does not match stream %s%s", len(ev.Row), s.name, s.schema)
	}
	s.mu.Lock()
	s.count++
	windows := s.windows
	sinks := s.sinks
	patterns := s.patterns
	enriched := s.enriched
	s.mu.Unlock()
	for _, w := range windows {
		if err := w.offer(ev); err != nil {
			return err
		}
	}
	for _, sb := range sinks {
		if sb.pred != nil {
			keep, err := expr.Truthy(sb.pred, ev.Row)
			if err != nil {
				return err
			}
			if !keep {
				continue
			}
		}
		if err := sb.sink.Consume([]value.Row{ev.Row}, s.schema); err != nil {
			return err
		}
	}
	for _, pat := range patterns {
		pat.offer(ev)
	}
	for _, d := range enriched {
		kv, err := d.keyIn.Eval(ev.Row)
		if err != nil {
			return err
		}
		for _, ref := range d.ref.lookup(kv) {
			combined := append(append(value.Row{}, ev.Row...), ref...)
			if err := d.out.publish(Event{Time: ev.Time, Row: combined}); err != nil {
				return err
			}
		}
	}
	return nil
}

// SubscribeSink attaches a sink with an optional CCL filter expression
// (use case 1, prefilter-and-forward).
func (p *Project) SubscribeSink(stream string, filter string, sink Sink) error {
	s, ok := p.Stream(stream)
	if !ok {
		return fmt.Errorf("esp: stream %s not found", stream)
	}
	var pred expr.Expr
	if filter != "" {
		e, err := sqlparse.ParseExpr(filter)
		if err != nil {
			return fmt.Errorf("esp: filter: %w", err)
		}
		if err := expr.Bind(e, s.schema); err != nil {
			return err
		}
		pred = e
	}
	s.mu.Lock()
	s.sinks = append(s.sinks, sinkBinding{pred: pred, sink: sink})
	s.mu.Unlock()
	return nil
}

// CreateEnrichedStream derives a new stream joining each event against a
// reference table on equality (use case 2, "ESP join": "city names are
// attached to raw geo-spatial information coming from GPS sensors").
func (p *Project) CreateEnrichedStream(name, source, refName, eventKey string) (*Stream, error) {
	s, ok := p.Stream(source)
	if !ok {
		return nil, fmt.Errorf("esp: stream %s not found", source)
	}
	p.mu.Lock()
	rt, ok := p.refs[strings.ToUpper(refName)]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("esp: reference table %s not loaded", refName)
	}
	key, err := sqlparse.ParseExpr(eventKey)
	if err != nil {
		return nil, err
	}
	if err := expr.Bind(key, s.schema); err != nil {
		return nil, err
	}
	out, err := p.CreateInputStream(name, s.schema.Concat(rt.schema))
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.enriched = append(s.enriched, &derivedBinding{out: out, ref: rt, keyIn: key, refKey: rt.keyOrd})
	s.mu.Unlock()
	return out, nil
}
