package esp

import (
	"testing"
	"time"

	"hana/internal/hdfs"
	"hana/internal/value"
)

func eventSchema() *value.Schema {
	return value.NewSchema(
		value.Column{Name: "cell_id", Kind: value.KindInt},
		value.Column{Name: "event_type", Kind: value.KindVarchar},
		value.Column{Name: "signal", Kind: value.KindDouble},
	)
}

func ev(cell int64, typ string, sig float64) value.Row {
	return value.Row{value.NewInt(cell), value.NewString(typ), value.NewDouble(sig)}
}

func t0() time.Time { return time.Date(2015, 3, 23, 10, 0, 0, 0, time.UTC) }

func TestStreamAndRowWindow(t *testing.T) {
	p := NewProject()
	if _, err := p.CreateInputStream("network_events", eventSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateInputStream("network_events", eventSchema()); err == nil {
		t.Fatal("duplicate stream must error")
	}
	w, err := p.CreateWindow("recent", `SELECT * FROM network_events KEEP 3 ROWS`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := p.Publish("network_events", ev(int64(i), "CALL_START", 50), t0().Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if w.RawCount() != 3 {
		t.Fatalf("row window retained %d", w.RawCount())
	}
	rows, err := w.Rows(t0().Add(10 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 || rows.Data[0][0].Int() != 2 {
		t.Fatalf("window rows = %v", rows.Data)
	}
}

func TestTimeWindowEviction(t *testing.T) {
	p := NewProject()
	_, _ = p.CreateInputStream("s", eventSchema())
	w, err := p.CreateWindow("last_minute", `SELECT * FROM s KEEP 1 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	_ = p.Publish("s", ev(1, "A", 1), t0())
	_ = p.Publish("s", ev(2, "A", 1), t0().Add(30*time.Second))
	_ = p.Publish("s", ev(3, "A", 1), t0().Add(90*time.Second))
	// Event at t0 is outside [t+30s, t+90s] horizon.
	rows, _ := w.Rows(t0().Add(90 * time.Second))
	if rows.Len() != 2 {
		t.Fatalf("time eviction: %d rows", rows.Len())
	}
	// Reading later evicts more.
	rows, _ = w.Rows(t0().Add(10 * time.Minute))
	if rows.Len() != 0 {
		t.Fatalf("all rows must expire: %d", rows.Len())
	}
}

func TestFilteredWindow(t *testing.T) {
	p := NewProject()
	_, _ = p.CreateInputStream("s", eventSchema())
	w, err := p.CreateWindow("drops", `SELECT cell_id, signal FROM s WHERE event_type = 'CALL_DROP' KEEP 100 ROWS`)
	if err != nil {
		t.Fatal(err)
	}
	_ = p.Publish("s", ev(1, "CALL_START", 80), t0())
	_ = p.Publish("s", ev(1, "CALL_DROP", 20), t0())
	_ = p.Publish("s", ev(2, "CALL_DROP", 10), t0())
	if w.RawCount() != 2 {
		t.Fatalf("filter retained %d", w.RawCount())
	}
	rows, _ := w.Rows(t0())
	if rows.Schema.Len() != 2 {
		t.Fatalf("projection schema = %v", rows.Schema)
	}
}

func TestAggregatedWindow(t *testing.T) {
	p := NewProject()
	_, _ = p.CreateInputStream("s", eventSchema())
	w, err := p.CreateWindow("health", `SELECT cell_id, AVG(signal) avg_signal, COUNT(*) n
		FROM s GROUP BY cell_id KEEP 5 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	_ = p.Publish("s", ev(1, "M", 10), t0())
	_ = p.Publish("s", ev(1, "M", 20), t0().Add(time.Second))
	_ = p.Publish("s", ev(2, "M", 50), t0().Add(2*time.Second))
	rows, err := w.Rows(t0().Add(3 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("groups = %v", rows.Data)
	}
	byCell := map[int64]value.Row{}
	for _, r := range rows.Data {
		byCell[r[0].Int()] = r
	}
	if byCell[1][1].Float() != 15 || byCell[1][2].Int() != 2 {
		t.Fatalf("cell 1 agg = %v", byCell[1])
	}
}

func TestPrefilterForwardSink(t *testing.T) {
	p := NewProject()
	_, _ = p.CreateInputStream("s", eventSchema())
	var forwarded []value.Row
	err := p.SubscribeSink("s", `signal < 30`, SinkFunc(func(rows []value.Row, _ *value.Schema) error {
		for _, r := range rows {
			forwarded = append(forwarded, r.Clone())
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	_ = p.Publish("s", ev(1, "M", 80), t0())
	_ = p.Publish("s", ev(2, "M", 10), t0())
	_ = p.Publish("s", ev(3, "M", 25), t0())
	if len(forwarded) != 2 {
		t.Fatalf("forwarded %d", len(forwarded))
	}
}

func TestESPJoinEnrichment(t *testing.T) {
	p := NewProject()
	_, _ = p.CreateInputStream("gps", value.NewSchema(
		value.Column{Name: "city_id", Kind: value.KindInt},
		value.Column{Name: "speed", Kind: value.KindDouble},
	))
	refSchema := value.NewSchema(
		value.Column{Name: "id", Kind: value.KindInt},
		value.Column{Name: "city_name", Kind: value.KindVarchar},
	)
	_ = p.LoadReferenceTable("cities", refSchema, []value.Row{
		{value.NewInt(1), value.NewString("Brussels")},
		{value.NewInt(2), value.NewString("Walldorf")},
	}, "id")
	out, err := p.CreateEnrichedStream("gps_named", "gps", "cities", "city_id")
	if err != nil {
		t.Fatal(err)
	}
	var got []value.Row
	_ = p.SubscribeSink("gps_named", "", SinkFunc(func(rows []value.Row, _ *value.Schema) error {
		for _, r := range rows {
			got = append(got, r.Clone())
		}
		return nil
	}))
	_ = p.Publish("gps", value.Row{value.NewInt(2), value.NewDouble(88)}, t0())
	_ = p.Publish("gps", value.Row{value.NewInt(9), value.NewDouble(10)}, t0()) // no city match
	if len(got) != 1 || got[0][3].String() != "Walldorf" {
		t.Fatalf("enriched = %v", got)
	}
	if out.Schema().Len() != 4 {
		t.Fatal("enriched schema")
	}
}

func TestPatternDetection(t *testing.T) {
	p := NewProject()
	_, _ = p.CreateInputStream("s", eventSchema())
	var fired int
	pat, err := p.CreatePattern("outage", "s", []string{
		`event_type = 'CALL_DROP'`,
		`event_type = 'CALL_DROP'`,
		`event_type = 'CALL_DROP'`,
	}, time.Minute, func(evs []Event) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	// Three drops within a minute → match.
	_ = p.Publish("s", ev(1, "CALL_DROP", 0), t0())
	_ = p.Publish("s", ev(1, "CALL_START", 0), t0().Add(time.Second))
	_ = p.Publish("s", ev(1, "CALL_DROP", 0), t0().Add(2*time.Second))
	_ = p.Publish("s", ev(1, "CALL_DROP", 0), t0().Add(3*time.Second))
	if fired != 1 || pat.MatchCount() != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// Drops spread beyond the window do not match.
	fired = 0
	_ = p.Publish("s", ev(2, "CALL_DROP", 0), t0().Add(10*time.Minute))
	_ = p.Publish("s", ev(2, "CALL_DROP", 0), t0().Add(12*time.Minute))
	_ = p.Publish("s", ev(2, "CALL_DROP", 0), t0().Add(14*time.Minute))
	if fired != 0 {
		t.Fatalf("out-of-window pattern fired %d", fired)
	}
}

func TestForwardAggregatedWindow(t *testing.T) {
	p := NewProject()
	_, _ = p.CreateInputStream("s", eventSchema())
	w, _ := p.CreateWindow("agg", `SELECT cell_id, COUNT(*) n FROM s GROUP BY cell_id KEEP 10 ROWS`)
	_ = p.Publish("s", ev(1, "M", 1), t0())
	_ = p.Publish("s", ev(1, "M", 1), t0())
	var got []value.Row
	err := w.Forward(t0(), SinkFunc(func(rows []value.Row, _ *value.Schema) error {
		got = rows
		return nil
	}))
	if err != nil || len(got) != 1 || got[0][1].Int() != 2 {
		t.Fatalf("forward = %v %v", got, err)
	}
}

func TestPublishErrors(t *testing.T) {
	p := NewProject()
	if err := p.Publish("missing", nil, t0()); err == nil {
		t.Fatal("missing stream")
	}
	_, _ = p.CreateInputStream("s", eventSchema())
	if err := p.Publish("s", value.Row{value.NewInt(1)}, t0()); err == nil {
		t.Fatal("arity mismatch")
	}
	if _, err := p.CreateWindow("w", `SELECT * FROM s`); err == nil {
		t.Fatal("KEEP required")
	}
	if _, err := p.CreateWindow("w", `SELECT * FROM nostream KEEP 1 ROWS`); err == nil {
		t.Fatal("unknown source stream")
	}
}

func TestHDFSArchiveSink(t *testing.T) {
	cluster := newTestCluster()
	p := NewProject()
	_, _ = p.CreateInputStream("s", eventSchema())
	sink := NewHDFSArchiveSink(cluster, "/archive/s", 3)
	if err := p.SubscribeSink("s", "", sink); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		_ = p.Publish("s", ev(int64(i), "M", float64(i)), t0())
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.RowsWritten() != 7 {
		t.Fatalf("written = %d", sink.RowsWritten())
	}
	files := cluster.List("/archive/s")
	if len(files) != 3 { // 3 + 3 + 1 rows
		t.Fatalf("part files = %d", len(files))
	}
	data, err := cluster.ReadFile(files[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(data); got != "0\tM\t0\n1\tM\t1\n2\tM\t2\n" {
		t.Fatalf("archive content = %q", got)
	}
}

func newTestCluster() *hdfs.Cluster {
	return hdfs.NewCluster(2, hdfs.WithBlockSize(1<<16), hdfs.WithReplication(1))
}

func TestWindowBufferCompaction(t *testing.T) {
	p := NewProject()
	_, _ = p.CreateInputStream("s", eventSchema())
	w, _ := p.CreateWindow("small", `SELECT * FROM s KEEP 10 ROWS`)
	// Stream far more events than the retention; the internal buffer must
	// stay bounded (amortized compaction) and the content correct.
	for i := 0; i < 100000; i++ {
		_ = p.Publish("s", ev(int64(i), "M", 0), t0().Add(time.Duration(i)*time.Millisecond))
	}
	if w.RawCount() != 10 {
		t.Fatalf("retained = %d", w.RawCount())
	}
	if cap(w.buf) > 4096 {
		t.Fatalf("buffer not compacted: cap = %d", cap(w.buf))
	}
	rows, err := w.Rows(t0().Add(200 * time.Second))
	if err != nil || rows.Len() != 10 {
		t.Fatalf("rows = %d %v", rows.Len(), err)
	}
	if rows.Data[0][0].Int() != 99990 {
		t.Fatalf("oldest retained = %v", rows.Data[0][0])
	}
}
