package esp

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"hana/internal/exec"
	"hana/internal/expr"
	"hana/internal/sqlparse"
	"hana/internal/value"
)

// Window is a continuous query over a stream with a CCL retention clause.
// Raw matching events are retained per KEEP; the (optionally aggregated)
// window content is computed on read, so HANA-join readers always see the
// current state.
type Window struct {
	name   string
	sel    *sqlparse.SelectStmt
	source *Stream
	keep   *sqlparse.KeepClause

	where expr.Expr

	mu sync.Mutex
	// buf retains raw events in arrival order; live region is buf[start:].
	// hana:guardedby mu
	buf []Event
	// start is the eviction cursor; compacted lazily so offer() stays
	// amortized O(1).
	// hana:guardedby mu
	start int
	// hana:guardedby mu
	last time.Time
}

// CreateWindow compiles a CCL continuous query:
//
//	CREATE WINDOW name AS SELECT … FROM stream [WHERE …] [GROUP BY …] KEEP …
//
// expressed here as the SELECT text.
func (p *Project) CreateWindow(name, ccl string) (*Window, error) {
	st, err := sqlparse.Parse(ccl)
	if err != nil {
		return nil, fmt.Errorf("esp: %w", err)
	}
	sel, ok := st.(*sqlparse.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("esp: window definition must be a SELECT")
	}
	if sel.Keep == nil {
		return nil, fmt.Errorf("esp: window definition requires a KEEP clause")
	}
	ref, ok := sel.From.(*sqlparse.TableRef)
	if !ok {
		return nil, fmt.Errorf("esp: window source must be a single stream")
	}
	src, ok := p.Stream(ref.Name())
	if !ok {
		return nil, fmt.Errorf("esp: stream %s not found", ref.Name())
	}
	w := &Window{name: name, sel: sel, source: src, keep: sel.Keep}
	if sel.Where != nil {
		pred := expr.Clone(sel.Where)
		if err := expr.Bind(pred, src.schema); err != nil {
			return nil, err
		}
		w.where = pred
	}
	p.mu.Lock()
	key := strings.ToUpper(name)
	if _, exists := p.windows[key]; exists {
		p.mu.Unlock()
		return nil, fmt.Errorf("esp: window %s already exists", name)
	}
	p.windows[key] = w
	p.mu.Unlock()
	src.mu.Lock()
	src.windows = append(src.windows, w)
	src.mu.Unlock()
	return w, nil
}

// offer ingests one event (filtered, retained).
func (w *Window) offer(ev Event) error {
	if w.where != nil {
		keep, err := expr.Truthy(w.where, ev.Row)
		if err != nil {
			return err
		}
		if !keep {
			return nil
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, Event{Time: ev.Time, Row: ev.Row.Clone()})
	if ev.Time.After(w.last) {
		w.last = ev.Time
	}
	w.evictLocked(ev.Time)
	return nil
}

func (w *Window) evictLocked(now time.Time) {
	if w.keep.Unit == sqlparse.KeepRows {
		if over := (len(w.buf) - w.start) - int(w.keep.N); over > 0 {
			w.start += over
		}
	} else {
		horizon := now.Add(-time.Duration(w.keep.Duration()) * time.Microsecond)
		for w.start < len(w.buf) && w.buf[w.start].Time.Before(horizon) {
			w.start++
		}
	}
	// Amortized compaction: reclaim the dead prefix once it dominates.
	if w.start > 1024 && w.start*2 > len(w.buf) {
		live := len(w.buf) - w.start
		copy(w.buf, w.buf[w.start:])
		for i := live; i < len(w.buf); i++ {
			w.buf[i] = Event{} // release retained rows
		}
		w.buf = w.buf[:live]
		w.start = 0
	}
}

// RawCount reports retained raw events (after filtering and eviction).
func (w *Window) RawCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf) - w.start
}

// Rows computes the current window content at the given time: time-based
// retention is applied, then the projection/aggregation of the CCL query.
// This is the surface the HANA-join integration reads (use case 3).
func (w *Window) Rows(now time.Time) (*value.Rows, error) {
	w.mu.Lock()
	w.evictLocked(now)
	live := w.buf[w.start:]
	raw := make([]value.Row, len(live))
	for i, ev := range live {
		raw[i] = ev.Row
	}
	w.mu.Unlock()

	in := exec.Iter(exec.NewSlice(w.source.schema, raw))
	sel := w.sel

	// Aggregation.
	needAgg := len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		if it.Expr != nil && expr.HasAggregate(it.Expr) {
			needAgg = true
		}
	}
	items := sel.Items
	if needAgg {
		var groups []expr.Expr
		outSchema := &value.Schema{}
		groupNames := make([]string, len(sel.GroupBy))
		for i, g := range sel.GroupBy {
			bg := expr.Clone(g)
			if err := expr.Bind(bg, w.source.schema); err != nil {
				return nil, err
			}
			groups = append(groups, bg)
			name := g.SQL()
			if c, ok := g.(*expr.ColRef); ok {
				name = c.Name
			}
			groupNames[i] = name
			outSchema.Cols = append(outSchema.Cols, value.Column{Name: name, Kind: value.KindVarchar, Nullable: true})
		}
		// Collect aggregates.
		var specs []exec.AggSpec
		aggNames := map[string]bool{}
		for _, it := range sel.Items {
			expr.Walk(it.Expr, func(n expr.Expr) bool {
				f, ok := n.(*expr.Func)
				if !ok || !f.IsAggregate() || aggNames[f.SQL()] {
					return true
				}
				aggNames[f.SQL()] = true
				spec := exec.AggSpec{Func: f.Name, Distinct: f.Distinct}
				if !f.Star {
					arg := expr.Clone(f.Args[0])
					if err := expr.Bind(arg, w.source.schema); err == nil {
						spec.Arg = arg
					}
				}
				specs = append(specs, spec)
				outSchema.Cols = append(outSchema.Cols, value.Column{Name: f.SQL(), Kind: value.KindDouble, Nullable: true})
				return false
			})
		}
		in = &exec.HashAggregate{In: in, GroupBy: groups, Aggs: specs, Out: outSchema}
		// Rewrite items over the aggregate output.
		groupSQL := map[string]string{}
		for i, g := range sel.GroupBy {
			groupSQL[g.SQL()] = groupNames[i]
		}
		newItems := make([]sqlparse.SelectItem, len(items))
		for i, it := range items {
			e := expr.Rewrite(it.Expr, func(n expr.Expr) expr.Expr {
				if f, ok := n.(*expr.Func); ok && f.IsAggregate() {
					return expr.Col(f.SQL())
				}
				if name, ok := groupSQL[n.SQL()]; ok {
					return expr.Col(name)
				}
				return nil
			})
			newItems[i] = sqlparse.SelectItem{Expr: e, Alias: it.Alias, Star: it.Star, Qual: it.Qual}
		}
		items = newItems
	}

	// Projection (star = all source columns pre-aggregation).
	inSchema := in.Schema()
	out := &value.Schema{}
	var exprs []expr.Expr
	for _, it := range items {
		if it.Star {
			for i, c := range inSchema.Cols {
				cr := expr.Col(c.Name)
				cr.Ord = i
				exprs = append(exprs, cr)
				out.Cols = append(out.Cols, c)
			}
			continue
		}
		be := expr.Clone(it.Expr)
		if err := expr.Bind(be, inSchema); err != nil {
			return nil, err
		}
		exprs = append(exprs, be)
		name := it.Alias
		if name == "" {
			if c, ok := it.Expr.(*expr.ColRef); ok {
				name = c.Name
			} else {
				name = it.Expr.SQL()
			}
		}
		out.Cols = append(out.Cols, value.Column{Name: name, Kind: value.KindDouble, Nullable: true})
	}
	return exec.Materialize(exec.ProjectIter(in, exprs, out))
}

// Forward pushes the current window content into a sink (use case 1 for
// aggregated windows: periodic forwarding of pre-aggregated state).
func (w *Window) Forward(now time.Time, sink Sink) error {
	rows, err := w.Rows(now)
	if err != nil {
		return err
	}
	return sink.Consume(rows.Data, rows.Schema)
}

// Pattern detects an ordered sequence of predicate matches within a time
// bound and fires an action — the paper's "detect predefined patterns in
// the event stream and trigger corresponding actions".
type Pattern struct {
	name   string
	steps  []expr.Expr
	within time.Duration
	action func(matched []Event)

	mu sync.Mutex
	// hana:guardedby mu
	partial [][]Event
	// hana:guardedby mu
	matches int64
}

// MatchCount reports how many times the pattern has fired.
func (pat *Pattern) MatchCount() int64 {
	pat.mu.Lock()
	defer pat.mu.Unlock()
	return pat.matches
}

// CreatePattern compiles step filter expressions against the stream schema
// and attaches the pattern.
func (p *Project) CreatePattern(name, stream string, stepFilters []string, within time.Duration, action func([]Event)) (*Pattern, error) {
	s, ok := p.Stream(stream)
	if !ok {
		return nil, fmt.Errorf("esp: stream %s not found", stream)
	}
	if len(stepFilters) == 0 {
		return nil, fmt.Errorf("esp: pattern needs at least one step")
	}
	pat := &Pattern{name: name, within: within, action: action}
	for _, f := range stepFilters {
		e, err := sqlparse.ParseExpr(f)
		if err != nil {
			return nil, fmt.Errorf("esp: pattern step: %w", err)
		}
		if err := expr.Bind(e, s.schema); err != nil {
			return nil, err
		}
		pat.steps = append(pat.steps, e)
	}
	s.mu.Lock()
	s.patterns = append(s.patterns, pat)
	s.mu.Unlock()
	return pat, nil
}

func (pat *Pattern) offer(ev Event) {
	complete := pat.advance(ev)
	// Fire actions after releasing pat.mu: an action that publishes back
	// into the stream re-enters offer, and sync.Mutex is not reentrant.
	for _, m := range complete {
		if pat.action != nil {
			pat.action(m)
		}
	}
}

// advance updates partial matches under the lock and returns completed
// sequences.
func (pat *Pattern) advance(ev Event) [][]Event {
	pat.mu.Lock()
	defer pat.mu.Unlock()
	// Expire partial matches outside the window.
	horizon := ev.Time.Add(-pat.within)
	kept := pat.partial[:0]
	for _, pm := range pat.partial {
		if !pm[0].Time.Before(horizon) {
			kept = append(kept, pm)
		}
	}
	pat.partial = kept
	// Advance existing partials.
	var complete [][]Event
	for i, pm := range pat.partial {
		next := pat.steps[len(pm)]
		if ok, _ := expr.Truthy(next, ev.Row); ok {
			extended := append(append([]Event{}, pm...), ev)
			if len(extended) == len(pat.steps) {
				complete = append(complete, extended)
				pat.partial[i] = nil
			} else {
				pat.partial[i] = extended
			}
		}
	}
	kept = pat.partial[:0]
	for _, pm := range pat.partial {
		if pm != nil {
			kept = append(kept, pm)
		}
	}
	pat.partial = kept
	// Start a new partial.
	if ok, _ := expr.Truthy(pat.steps[0], ev.Row); ok {
		if len(pat.steps) == 1 {
			complete = append(complete, []Event{ev})
		} else {
			pat.partial = append(pat.partial, []Event{ev})
		}
	}
	pat.matches += int64(len(complete))
	return complete
}
