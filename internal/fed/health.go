package fed

import (
	"sort"
	"sync"
	"time"

	"hana/internal/faults"
)

// Health tracks per-remote-source circuit breakers. The engine consults it
// before shipping work to a source and reports it through the
// M_REMOTE_SOURCE_HEALTH monitoring view. Breakers are created lazily on
// first use, one per remote-source name.
type Health struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	// hana:guardedby mu
	now func() time.Time
	// hana:guardedby mu
	breakers map[string]*faults.Breaker
	// hana:guardedby mu
	observer func(faults.BreakerStats)
}

// NewHealth creates a breaker registry. threshold and cooldown apply to
// every breaker it creates; zero values take the faults package defaults.
func NewHealth(threshold int, cooldown time.Duration) *Health {
	return &Health{
		threshold: threshold,
		cooldown:  cooldown,
		breakers:  map[string]*faults.Breaker{},
	}
}

// SetClock replaces the clock used by all current and future breakers
// (deterministic tests).
func (h *Health) SetClock(now func() time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.now = now
	for _, b := range h.breakers {
		b.SetClock(now)
	}
}

// SetObserver installs a callback forwarded to every current and future
// breaker: it fires with a fresh stats snapshot on each state-changing
// breaker event, outside the breaker's lock. The engine uses it to mirror
// breaker state into the observability registry.
func (h *Health) SetObserver(fn func(faults.BreakerStats)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.observer = fn
	for _, b := range h.breakers {
		b.SetObserver(fn)
	}
}

// Breaker returns the breaker for a remote source, creating it on first
// use.
func (h *Health) Breaker(source string) *faults.Breaker {
	h.mu.Lock()
	defer h.mu.Unlock()
	b, ok := h.breakers[source]
	if !ok {
		//lint:ignore locksafe NewBreaker is a constructor; the new breaker's lock is unshared
		b = faults.NewBreaker(source, h.threshold, h.cooldown, h.now)
		if h.observer != nil {
			b.SetObserver(h.observer)
		}
		h.breakers[source] = b
	}
	return b
}

// Snapshot returns breaker stats for every known source, sorted by name.
func (h *Health) Snapshot() []faults.BreakerStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]faults.BreakerStats, 0, len(h.breakers))
	for _, b := range h.breakers {
		out = append(out, b.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
