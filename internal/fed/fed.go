// Package fed implements the Smart Data Access (SDA) federation framework
// of §4.2: a capability-based adapter abstraction over remote data sources.
// Remote sources are registered through adapter factories, expose remote
// tables as virtual tables, describe what query constructs they can process
// (CAP_* flags), and execute shipped subqueries. The remote-materialization
// cache key and validity logic of §4.4 also lives here.
package fed

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hana/internal/value"
)

// Capabilities describes what a remote source can execute, mirroring the
// paper's capability property files ("CAP_JOINS : true, CAP_JOINS_OUTER :
// true").
type Capabilities struct {
	Select       bool // plain projections and predicates
	Joins        bool // CAP_JOINS
	JoinsOuter   bool // CAP_JOINS_OUTER
	GroupBy      bool // CAP_GROUP_BY
	OrderBy      bool // CAP_ORDER_BY
	Limit        bool // CAP_LIMIT
	Subqueries   bool // CAP_SUBQUERIES (EXISTS / IN subselects)
	Insert       bool // DML support (IQ yes; Hive no)
	Transactions bool // transactional guarantees (IQ yes; Hive no)
	RemoteCache  bool // supports materializing query results remotely (§4.4)
}

// Map renders the capabilities as a property map for display, in the
// paper's CAP_* notation.
func (c Capabilities) Map() map[string]bool {
	return map[string]bool{
		"CAP_SELECT":       c.Select,
		"CAP_JOINS":        c.Joins,
		"CAP_JOINS_OUTER":  c.JoinsOuter,
		"CAP_GROUP_BY":     c.GroupBy,
		"CAP_ORDER_BY":     c.OrderBy,
		"CAP_LIMIT":        c.Limit,
		"CAP_SUBQUERIES":   c.Subqueries,
		"CAP_INSERT":       c.Insert,
		"CAP_TRANSACTIONS": c.Transactions,
		"CAP_REMOTE_CACHE": c.RemoteCache,
	}
}

// TableStats are remote statistics the optimizer consults ("we rely on the
// statistics available in the Hive MetaStore, e.g. the row count and number
// of files used for a table").
type TableStats struct {
	RowCount int64
	Files    int
	Bytes    int64
}

// QueryOptions modify shipped-query execution.
type QueryOptions struct {
	// UseCache requests remote materialization (the USE_REMOTE_CACHE hint).
	UseCache bool
	// Validity is the maximum acceptable age of a cached result
	// (remote_cache_validity).
	Validity time.Duration
}

// QueryResult is the result of a shipped query plus execution metadata.
type QueryResult struct {
	Rows *value.Rows
	// FromCache reports whether the result was served from a remote
	// materialization.
	FromCache bool
	// FromFallback reports whether the result was served from the engine's
	// validity-bounded fallback cache because the source was unreachable
	// (§4.4 remote caching as degradation, not just acceleration).
	FromFallback bool
	// MaterializeTime is the extra time spent creating the remote
	// materialization (zero on cache hits and uncached runs).
	MaterializeTime time.Duration
}

// Adapter is one connection to a remote source. Implementations: the Hive
// adapter (hiveodbc) in internal/hive, the direct-HDFS/map-reduce adapter
// (hadoop) in internal/hive, and the test adapters.
type Adapter interface {
	// Name returns the adapter type name (e.g. "hiveodbc").
	Name() string
	// Capabilities describes supported pushdown constructs.
	Capabilities() Capabilities
	// TableSchema resolves a remote object path to a schema.
	TableSchema(path []string) (*value.Schema, error)
	// TableStats returns remote statistics if available.
	TableStats(path []string) (TableStats, bool)
	// Query executes a shipped statement in the platform's SQL dialect.
	Query(sql string, opts QueryOptions) (*QueryResult, error)
}

// FunctionAdapter is implemented by adapters that can invoke remote jobs as
// table functions (§4.3 CREATE VIRTUAL FUNCTION … AT source).
type FunctionAdapter interface {
	Adapter
	// CallFunction runs the remote job described by config and returns its
	// rows under the declared schema.
	CallFunction(config map[string]string, schema *value.Schema) (*value.Rows, error)
}

// WriteAdapter is implemented by adapters supporting DML pushdown (the
// extended storage: "a data load issued against such an external table
// directly moves the data into the external store").
type WriteAdapter interface {
	Adapter
	Insert(path []string, rows []value.Row) error
}

// Factory instantiates an adapter from CREATE REMOTE SOURCE clauses.
type Factory func(config, credentials map[string]string) (Adapter, error)

// Registry maps adapter type names to factories. A process-wide default
// registry is populated by adapter packages at init time.
type Registry struct {
	mu sync.RWMutex
	// hana:guardedby mu
	factories map[string]Factory
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{factories: map[string]Factory{}} }

// Register adds a factory (case-insensitive name), replacing any previous
// registration.
func (r *Registry) Register(name string, f Factory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.factories[strings.ToLower(name)] = f
}

// Open instantiates an adapter by type name.
func (r *Registry) Open(name string, config, credentials map[string]string) (Adapter, error) {
	r.mu.RLock()
	f, ok := r.factories[strings.ToLower(name)]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("no SDA adapter registered for %q (have %v)", name, r.Names())
	}
	return f(config, credentials)
}

// Names lists registered adapter types, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CacheKey computes the remote-materialization key of §4.4: "a hash key is
// computed from the HiveQL statement, parameters, and the host
// information. With this hash key we can ensure that the same query is
// cached at most once."
func CacheKey(statement string, params []value.Value, host string) string {
	h := sha256.New()
	h.Write([]byte(statement))
	for _, p := range params {
		h.Write([]byte{0})
		h.Write([]byte(p.SQLLiteral()))
	}
	h.Write([]byte{0})
	h.Write([]byte(host))
	return hex.EncodeToString(h.Sum(nil))[:24]
}

// CacheEntry is one remote materialization.
type CacheEntry struct {
	Key       string
	TempTable string
	Created   time.Time
	Rows      int64
}

// Expired reports whether the entry is older than the validity window.
func (e CacheEntry) Expired(validity time.Duration, now time.Time) bool {
	if validity <= 0 {
		return false
	}
	return now.Sub(e.Created) > validity
}
