package fed

import (
	"context"

	"hana/internal/faults"
	"hana/internal/obs"
)

// Caller is the single guarded-call seam for every remote boundary the
// platform owns: federated queries, virtual-function calls, and distributed
// worker fragments all go through one Call so the circuit breaker, retry
// policy, fault-injection site and trace span attach in exactly one place.
type Caller interface {
	// Call runs fn against the named target under the target's breaker and
	// the configured retry policy. target keys the breaker; kind labels the
	// span ("query", "call", "fragment"); site is the fault-injection and
	// retry-telemetry key. The returned error is classified: a breaker
	// rejection wraps faults.ErrCircuitOpen, injected and adapter errors
	// keep their transient/fatal classification.
	Call(ctx context.Context, target, kind, site string, fn func() error) error
}

// GuardedCall is the standard Caller: per-target breakers from Health,
// retries from the template policy, deterministic fault injection, and one
// trace span per call carrying the attempt count and breaker outcome.
type GuardedCall struct {
	// Health supplies the per-target circuit breakers.
	Health *Health
	// Retry is the template policy; its OnRetry is chained after the
	// breaker/metrics bookkeeping.
	Retry faults.RetryPolicy
	// Faults injects failures at the call site before fn runs (nil = off).
	Faults *faults.Injector
	// Span names the trace span ("remote" for federation, "fragment" for
	// distributed workers). Empty defaults to "remote".
	Span string
	// OnRetry observes each retry decision (metrics counters).
	OnRetry func()
}

var _ Caller = (*GuardedCall)(nil)

// Call implements Caller.
func (g *GuardedCall) Call(ctx context.Context, target, kind, site string, fn func() error) error {
	name := g.Span
	if name == "" {
		name = "remote"
	}
	sp := obs.SpanFrom(ctx).StartSpan(name)
	defer sp.End()
	sp.SetAttr("source", target)
	sp.SetAttr("kind", kind)
	br := g.Health.Breaker(target)
	if err := br.Allow(); err != nil {
		sp.Note("breaker open")
		return err
	}
	pol := g.Retry
	prev := pol.OnRetry
	pol.OnRetry = func(op string, attempt int, err error) {
		br.NoteRetry()
		if g.OnRetry != nil {
			g.OnRetry()
		}
		if prev != nil {
			prev(op, attempt, err)
		}
	}
	var attempts int64
	err := pol.DoCtx(ctx, site, func() error {
		attempts++
		if err := g.Faults.Check(site); err != nil {
			return err
		}
		return fn()
	})
	sp.SetAttrInt("attempts", attempts)
	if err != nil {
		br.Failure(err)
		sp.SetAttr("breaker", br.Snapshot().State.String())
		return err
	}
	br.Success()
	return nil
}
