package fed

import (
	"errors"
	"testing"
	"time"

	"hana/internal/value"
)

type dummyAdapter struct{ name string }

func (d *dummyAdapter) Name() string               { return d.name }
func (d *dummyAdapter) Capabilities() Capabilities { return Capabilities{Select: true} }
func (d *dummyAdapter) TableSchema([]string) (*value.Schema, error) {
	return value.NewSchema(), nil
}
func (d *dummyAdapter) TableStats([]string) (TableStats, bool) { return TableStats{}, false }
func (d *dummyAdapter) Query(string, QueryOptions) (*QueryResult, error) {
	return &QueryResult{Rows: value.NewRows(value.NewSchema())}, nil
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register("HiveODBC", func(cfg, cred map[string]string) (Adapter, error) {
		if cfg["DSN"] == "" {
			return nil, errors.New("missing DSN")
		}
		return &dummyAdapter{name: "hiveodbc"}, nil
	})
	a, err := r.Open("hiveodbc", map[string]string{"DSN": "hive1"}, nil)
	if err != nil || a.Name() != "hiveodbc" {
		t.Fatalf("open: %v %v", a, err)
	}
	if _, err := r.Open("hiveodbc", map[string]string{}, nil); err == nil {
		t.Fatal("factory error must propagate")
	}
	if _, err := r.Open("nope", nil, nil); err == nil {
		t.Fatal("unknown adapter must error")
	}
	if len(r.Names()) != 1 || r.Names()[0] != "hiveodbc" {
		t.Fatalf("names = %v", r.Names())
	}
}

func TestCacheKeyProperties(t *testing.T) {
	k1 := CacheKey("SELECT * FROM t WHERE a > 1", nil, "hive1:10000")
	k2 := CacheKey("SELECT * FROM t WHERE a > 1", nil, "hive1:10000")
	if k1 != k2 {
		t.Fatal("same statement+host must key identically")
	}
	if CacheKey("SELECT * FROM t WHERE a > 2", nil, "hive1:10000") == k1 {
		t.Fatal("different statements must key differently")
	}
	if CacheKey("SELECT * FROM t WHERE a > 1", nil, "other:9") == k1 {
		t.Fatal("different hosts must key differently")
	}
	p1 := CacheKey("SELECT * FROM t WHERE a = ?", []value.Value{value.NewInt(1)}, "h")
	p2 := CacheKey("SELECT * FROM t WHERE a = ?", []value.Value{value.NewInt(2)}, "h")
	if p1 == p2 {
		t.Fatal("different parameters must key differently")
	}
}

func TestCacheEntryExpiry(t *testing.T) {
	now := time.Now()
	e := CacheEntry{Created: now.Add(-10 * time.Minute)}
	if !e.Expired(5*time.Minute, now) {
		t.Fatal("entry older than validity must expire")
	}
	if e.Expired(20*time.Minute, now) {
		t.Fatal("entry within validity must not expire")
	}
	if e.Expired(0, now) {
		t.Fatal("zero validity means no expiry")
	}
}

func TestCapabilityMap(t *testing.T) {
	c := Capabilities{Select: true, Joins: true, JoinsOuter: true}
	m := c.Map()
	if !m["CAP_JOINS"] || !m["CAP_JOINS_OUTER"] || m["CAP_GROUP_BY"] {
		t.Fatalf("capability map = %v", m)
	}
}
