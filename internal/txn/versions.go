package txn

import "sync"

// RowVersions tracks MVCC visibility for the rows of one table fragment.
// Each row id carries an insert stamp and an optional delete stamp; a stamp
// is either a commit ID (committed) or a transaction ID of an in-flight
// writer. Readers see a row when its insert is visible in their snapshot
// and its delete (if any) is not.
type RowVersions struct {
	mu sync.RWMutex

	insCID []uint64 // 0 = inserted by in-flight txn (see insTID)
	insTID []uint64
	delCID []uint64 // 0 = not deleted (unless delTID set)
	delTID []uint64
}

// NewRowVersions creates an empty version store.
func NewRowVersions() *RowVersions { return &RowVersions{} }

// Len returns the number of tracked rows.
func (v *RowVersions) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.insCID)
}

// Insert registers a new row written by tid. Row ids must be appended in
// order.
func (v *RowVersions) Insert(rowID int, tid uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.insCID) <= rowID {
		v.insCID = append(v.insCID, 0)
		v.insTID = append(v.insTID, 0)
		v.delCID = append(v.delCID, 0)
		v.delTID = append(v.delTID, 0)
	}
	v.insTID[rowID] = tid
}

// InsertCommitted registers a row that is immediately visible (bulk loads
// outside transactions).
func (v *RowVersions) InsertCommitted(rowID int, cid uint64) {
	v.Insert(rowID, 0)
	v.mu.Lock()
	v.insCID[rowID] = cid
	v.insTID[rowID] = 0
	v.mu.Unlock()
}

// Delete stamps a row as deleted by tid. It returns ErrConflict when the
// row is already deleted (committed) or being deleted by another in-flight
// transaction — the platform's write-write conflict rule (first writer
// wins).
func (v *RowVersions) Delete(rowID int, tid uint64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if rowID >= len(v.insCID) {
		return ErrNotActive
	}
	if v.delCID[rowID] != 0 {
		return ErrConflict
	}
	if v.delTID[rowID] != 0 && v.delTID[rowID] != tid {
		return ErrConflict
	}
	v.delTID[rowID] = tid
	return nil
}

// CommitTID stamps every change of tid with the commit ID.
func (v *RowVersions) CommitTID(tid, cid uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := range v.insTID {
		if v.insTID[i] == tid {
			v.insTID[i] = 0
			v.insCID[i] = cid
		}
		if v.delTID[i] == tid {
			v.delTID[i] = 0
			v.delCID[i] = cid
		}
	}
}

// AbortTID reverts every change of tid. Aborted inserts become permanently
// invisible.
func (v *RowVersions) AbortTID(tid uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := range v.insTID {
		if v.insTID[i] == tid {
			v.insTID[i] = 0
			v.insCID[i] = ^uint64(0) // never visible
		}
		if v.delTID[i] == tid {
			v.delTID[i] = 0
		}
	}
}

// Visible reports whether rowID is visible to a reader with the given
// snapshot CID and own transaction ID (0 for autonomous statements).
func (v *RowVersions) Visible(rowID int, snapshot, tid uint64) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if rowID >= len(v.insCID) {
		return false
	}
	insVisible := false
	if v.insTID[rowID] != 0 {
		insVisible = tid != 0 && v.insTID[rowID] == tid // own uncommitted write
	} else {
		insVisible = v.insCID[rowID] != 0 && v.insCID[rowID] <= snapshot
	}
	if !insVisible {
		return false
	}
	if v.delTID[rowID] != 0 {
		return !(tid != 0 && v.delTID[rowID] == tid) // own delete hides it
	}
	return v.delCID[rowID] == 0 || v.delCID[rowID] > snapshot
}

// LiveCount counts rows visible at the snapshot (tid 0).
func (v *RowVersions) LiveCount(snapshot uint64) int {
	v.mu.RLock()
	n := len(v.insCID)
	v.mu.RUnlock()
	count := 0
	for i := 0; i < n; i++ {
		if v.Visible(i, snapshot, 0) {
			count++
		}
	}
	return count
}
