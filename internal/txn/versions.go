package txn

import (
	"sort"
	"sync"
)

// RowVersions tracks MVCC visibility for the rows of one table fragment.
// Each row id carries an insert stamp and an optional delete stamp; a stamp
// is either a commit ID (committed) or a transaction ID of an in-flight
// writer. Readers see a row when its insert is visible in their snapshot
// and its delete (if any) is not.
type RowVersions struct {
	mu sync.RWMutex

	// insCID holds 0 when the row was inserted by an in-flight txn (see
	// insTID).
	// hana:guardedby mu
	insCID []uint64
	// hana:guardedby mu
	insTID []uint64
	// delCID holds 0 when the row is not deleted (unless delTID is set).
	// hana:guardedby mu
	delCID []uint64
	// hana:guardedby mu
	delTID []uint64
}

// NewRowVersions creates an empty version store.
func NewRowVersions() *RowVersions { return &RowVersions{} }

// Len returns the number of tracked rows.
func (v *RowVersions) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.insCID)
}

// Insert registers a new row written by tid. Row ids must be appended in
// order.
func (v *RowVersions) Insert(rowID int, tid uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.insCID) <= rowID {
		v.insCID = append(v.insCID, 0)
		v.insTID = append(v.insTID, 0)
		v.delCID = append(v.delCID, 0)
		v.delTID = append(v.delTID, 0)
	}
	v.insTID[rowID] = tid
}

// InsertCommitted registers a row that is immediately visible (bulk loads
// outside transactions).
func (v *RowVersions) InsertCommitted(rowID int, cid uint64) {
	v.Insert(rowID, 0)
	v.mu.Lock()
	v.insCID[rowID] = cid
	v.insTID[rowID] = 0
	v.mu.Unlock()
}

// Delete stamps a row as deleted by tid. It returns ErrConflict when the
// row is already deleted (committed) or being deleted by another in-flight
// transaction — the platform's write-write conflict rule (first writer
// wins).
func (v *RowVersions) Delete(rowID int, tid uint64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if rowID >= len(v.insCID) {
		return ErrNotActive
	}
	if v.delCID[rowID] != 0 {
		return ErrConflict
	}
	if v.delTID[rowID] != 0 && v.delTID[rowID] != tid {
		return ErrConflict
	}
	v.delTID[rowID] = tid
	return nil
}

// CommitTID stamps every change of tid with the commit ID.
func (v *RowVersions) CommitTID(tid, cid uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := range v.insTID {
		if v.insTID[i] == tid {
			v.insTID[i] = 0
			v.insCID[i] = cid
		}
		if v.delTID[i] == tid {
			v.delTID[i] = 0
			v.delCID[i] = cid
		}
	}
}

// AbortTID reverts every change of tid. Aborted inserts become permanently
// invisible.
func (v *RowVersions) AbortTID(tid uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := range v.insTID {
		if v.insTID[i] == tid {
			v.insTID[i] = 0
			v.insCID[i] = ^uint64(0) // never visible
		}
		if v.delTID[i] == tid {
			v.delTID[i] = 0
		}
	}
}

// Visible reports whether rowID is visible to a reader with the given
// snapshot CID and own transaction ID (0 for autonomous statements).
func (v *RowVersions) Visible(rowID int, snapshot, tid uint64) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if rowID >= len(v.insCID) {
		return false
	}
	insVisible := false
	if v.insTID[rowID] != 0 {
		insVisible = tid != 0 && v.insTID[rowID] == tid // own uncommitted write
	} else {
		insVisible = v.insCID[rowID] != 0 && v.insCID[rowID] <= snapshot
	}
	if !insVisible {
		return false
	}
	if v.delTID[rowID] != 0 {
		return !(tid != 0 && v.delTID[rowID] == tid) // own delete hides it
	}
	return v.delCID[rowID] == 0 || v.delCID[rowID] > snapshot
}

// VersionSnapshot is a copyable export of a RowVersions state — the
// per-partition visibility vector a savepoint persists and recovery
// restores.
type VersionSnapshot struct {
	InsCID []uint64
	InsTID []uint64
	DelCID []uint64
	DelTID []uint64
}

// Export copies the version state.
func (v *RowVersions) Export() VersionSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return VersionSnapshot{
		InsCID: append([]uint64(nil), v.insCID...),
		InsTID: append([]uint64(nil), v.insTID...),
		DelCID: append([]uint64(nil), v.delCID...),
		DelTID: append([]uint64(nil), v.delTID...),
	}
}

// Import replaces the version state with a previously exported snapshot.
func (v *RowVersions) Import(s VersionSnapshot) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.insCID = append([]uint64(nil), s.InsCID...)
	v.insTID = append([]uint64(nil), s.InsTID...)
	v.delCID = append([]uint64(nil), s.DelCID...)
	v.delTID = append([]uint64(nil), s.DelTID...)
}

// PendingTIDs lists the distinct transaction IDs that still hold
// uncommitted stamps, sorted. After recovery's outcome pass, any TID left
// here that is not in-doubt belongs to a transaction the crash cut short —
// it must be aborted.
func (v *RowVersions) PendingTIDs() []uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	seen := map[uint64]bool{}
	for i := range v.insTID {
		if v.insTID[i] != 0 {
			seen[v.insTID[i]] = true
		}
		if v.delTID[i] != 0 {
			seen[v.delTID[i]] = true
		}
	}
	out := make([]uint64, 0, len(seen))
	for tid := range seen {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LiveCount counts rows visible at the snapshot (tid 0).
func (v *RowVersions) LiveCount(snapshot uint64) int {
	v.mu.RLock()
	n := len(v.insCID)
	v.mu.RUnlock()
	count := 0
	for i := 0; i < n; i++ {
		if v.Visible(i, snapshot, 0) {
			count++
		}
	}
	return count
}
