package txn

import (
	"os"
	"path/filepath"
	"testing"

	"hana/internal/faults"
	"hana/internal/obs"
)

// writeFixtureLog creates a WAL with n committed-transaction record groups
// and returns its path plus the file size.
func writeFixtureLog(t *testing.T, n int) (string, int64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tid := uint64(i + 1)
		if err := l.Append(Record{Type: RecBegin, TID: tid}); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(Record{Type: RecData, TID: tid, Note: "payload-for-" + string(rune('a'+i%26))}); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(Record{Type: RecCommit, TID: tid, CID: uint64(i + 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, st.Size()
}

func replayAll(t *testing.T, l *Log) ([]Record, ReplayStats) {
	t.Helper()
	var recs []Record
	stats, err := l.ReplayVerified(func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, stats
}

func tornTotal(reg *obs.Registry) int64 {
	return reg.Counter("wal.torn_tail_total").Load()
}

func TestWALAppendSingleWriteFraming(t *testing.T) {
	path, _ := writeFixtureLog(t, 3)
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recs, stats := replayAll(t, l)
	if len(recs) != 9 || stats.TornTail {
		t.Fatalf("want 9 clean records, got %d (torn=%v reason=%q)", len(recs), stats.TornTail, stats.Reason)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

func TestWALTruncatedTailRecoversValidPrefix(t *testing.T) {
	path, size := writeFixtureLog(t, 4)
	// Tear the last record in half — the single-buffer append means a crash
	// can only ever produce exactly this shape.
	if err := os.Truncate(path, size-7); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetObs(reg)
	recs, stats := replayAll(t, l)
	if len(recs) != 11 {
		t.Fatalf("want the 11-record valid prefix, got %d", len(recs))
	}
	if !stats.TornTail || stats.Reason == "" {
		t.Fatalf("torn tail not reported: %+v", stats)
	}
	if got := tornTotal(reg); got != 1 {
		t.Fatalf("wal.torn_tail_total = %d, want 1", got)
	}
	// The file must have been truncated to the valid prefix…
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != stats.TornOff {
		t.Fatalf("file size %d, want truncated to %d", st.Size(), stats.TornOff)
	}
	// …and appends must continue with monotonic LSNs.
	if err := l.Append(Record{Type: RecAbort, TID: 99}); err != nil {
		t.Fatal(err)
	}
	recs, stats = replayAll(t, l)
	if stats.TornTail || len(recs) != 12 || recs[11].LSN != 12 {
		t.Fatalf("post-repair append broken: %d records, torn=%v", len(recs), stats.TornTail)
	}
}

func TestWALFlippedCRCByteStopsReplay(t *testing.T) {
	path, size := writeFixtureLog(t, 4)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside the third-to-last record: the CRC check
	// must reject it and everything after it.
	b[size-50] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetObs(reg)
	recs, stats := replayAll(t, l)
	if !stats.TornTail {
		t.Fatalf("flipped byte not detected: %+v", stats)
	}
	if len(recs) >= 12 {
		t.Fatalf("corrupt record replayed: %d records", len(recs))
	}
	if got := tornTotal(reg); got != 1 {
		t.Fatalf("wal.torn_tail_total = %d, want 1", got)
	}
	// Every surviving record must still be a valid prefix (monotonic LSNs).
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("surviving prefix not contiguous at %d", i)
		}
	}
}

func TestWALZeroLengthNoteRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: RecData, TID: 1, Note: ""}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: RecCommit, TID: 1, CID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, stats := replayAll(t, l2)
	if stats.TornTail || len(recs) != 2 {
		t.Fatalf("zero-length note mishandled: %d records, torn=%v", len(recs), stats.TornTail)
	}
	if recs[0].Note != "" || recs[0].Type != RecData {
		t.Fatalf("record round-trip broken: %+v", recs[0])
	}
}

func TestWALGarbageTailAfterValidPrefix(t *testing.T) {
	path, _ := writeFixtureLog(t, 2)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recs, stats := replayAll(t, l)
	if len(recs) != 6 || !stats.TornTail {
		t.Fatalf("garbage tail: got %d records, torn=%v", len(recs), stats.TornTail)
	}
}

func TestWALSyncPolicyAndOffsets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetSyncPolicy(SyncPolicy{Mode: SyncCommit})
	if err := l.Append(Record{Type: RecBegin, TID: 1}); err != nil {
		t.Fatal(err)
	}
	w, d := l.Offsets()
	if d >= w {
		t.Fatalf("BEGIN must not fsync under SyncCommit: written=%d durable=%d", w, d)
	}
	if err := l.Append(Record{Type: RecCommit, TID: 1, CID: 2}); err != nil {
		t.Fatal(err)
	}
	w, d = l.Offsets()
	if d != w {
		t.Fatalf("COMMIT must group-commit everything: written=%d durable=%d", w, d)
	}
	st := l.Stats()
	if st.Syncs != 1 || st.Appends != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// SyncEvery batching: every 2nd append syncs even without decisions.
	l.SetSyncPolicy(SyncPolicy{Mode: SyncNever, Every: 2})
	if err := l.Append(Record{Type: RecData, TID: 2, Note: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: RecData, TID: 2, Note: "y"}); err != nil {
		t.Fatal(err)
	}
	w, d = l.Offsets()
	if d != w {
		t.Fatalf("SyncEvery=2 must have synced: written=%d durable=%d", w, d)
	}
}

func TestWALInjectorSites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	inj := faults.New(1)
	l.SetInjector(inj)
	l.SetSyncPolicy(SyncPolicy{Mode: SyncAlways})
	inj.FailAfter("wal.append", 2, 1)
	if err := l.Append(Record{Type: RecBegin, TID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: RecData, TID: 1, Note: "n"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: RecCommit, TID: 1, CID: 2}); err == nil {
		t.Fatal("third append should have been injected")
	}
	inj.FailN("wal.fsync", 1)
	if err := l.Append(Record{Type: RecCommit, TID: 1, CID: 2}); err == nil {
		t.Fatal("fsync failure must surface through Append")
	}
	if inj.Injected("wal.fsync") != 1 || inj.Injected("wal.append") != 1 {
		t.Fatalf("injection counters: fsync=%d append=%d", inj.Injected("wal.fsync"), inj.Injected("wal.append"))
	}
}

func TestWALTruncateBefore(t *testing.T) {
	path, _ := writeFixtureLog(t, 5) // LSNs 1..15
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.TruncateBefore(9); err != nil {
		t.Fatal(err)
	}
	recs, stats := replayAll(t, l)
	if len(recs) != 6 || recs[0].LSN != 10 || stats.TornTail {
		t.Fatalf("truncate kept %d records, first LSN %d", len(recs), recs[0].LSN)
	}
	// New appends continue past the old high-water mark.
	lsn, err := l.AppendLSN(Record{Type: RecBegin, TID: 42})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 16 {
		t.Fatalf("append after truncation got LSN %d, want 16", lsn)
	}
	// Reopen: the truncated log must still load cleanly.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, stats = replayAll(t, l2)
	if len(recs) != 7 || stats.TornTail || stats.LastLSN != 16 {
		t.Fatalf("reopen after truncation: %d records, last LSN %d", len(recs), stats.LastLSN)
	}
}

func TestWALScanFileReadOnly(t *testing.T) {
	path, size := writeFixtureLog(t, 3)
	if err := os.Truncate(path, size-3); err != nil {
		t.Fatal(err)
	}
	n := 0
	stats, err := ScanFile(path, func(Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !stats.TornTail || n != 8 {
		t.Fatalf("scan: torn=%v records=%d", stats.TornTail, n)
	}
	// ScanFile must not repair the file.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != size-3 {
		t.Fatalf("ScanFile modified the file: %d -> %d", size-3, st.Size())
	}
}

func TestMemLogTruncateAndLSNs(t *testing.T) {
	l := NewMemLog()
	for i := 0; i < 5; i++ {
		if err := l.Append(Record{Type: RecBegin, TID: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateBefore(3); err != nil {
		t.Fatal(err)
	}
	recs, _ := replayAll(t, l)
	if len(recs) != 2 || recs[0].LSN != 4 {
		t.Fatalf("mem truncate: %d records, first LSN %d", len(recs), recs[0].LSN)
	}
}
