package txn

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"hana/internal/faults"
)

// fakePart is a scripted participant.
type fakePart struct {
	name       string
	prepareErr error
	commitErr  error
	mu         sync.Mutex
	prepared   []uint64
	committed  []uint64
	aborted    []uint64
}

func (f *fakePart) Name() string { return f.name }
func (f *fakePart) Prepare(tid uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.prepareErr != nil {
		return f.prepareErr
	}
	f.prepared = append(f.prepared, tid)
	return nil
}
func (f *fakePart) Commit(tid, cid uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.commitErr != nil {
		err := f.commitErr
		f.commitErr = nil
		return err
	}
	f.committed = append(f.committed, tid)
	return nil
}
func (f *fakePart) Abort(tid uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.aborted = append(f.aborted, tid)
	return nil
}

func TestCommitAssignsMonotonicCIDs(t *testing.T) {
	m := NewManager(nil)
	t1 := m.Begin()
	t2 := m.Begin()
	c1, err := m.Commit(t1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.Commit(t2)
	if err != nil {
		t.Fatal(err)
	}
	if c2 <= c1 {
		t.Fatalf("cids not monotonic: %d %d", c1, c2)
	}
	if m.ActiveCount() != 0 {
		t.Fatal("active txns remain")
	}
}

func TestSnapshotIsolationOrdering(t *testing.T) {
	m := NewManager(nil)
	t1 := m.Begin()
	snap1 := t1.Snapshot
	cid, _ := m.Commit(t1)
	t2 := m.Begin()
	if t2.Snapshot < cid {
		t.Fatal("later txn must see earlier commit")
	}
	if snap1 >= cid {
		t.Fatal("snapshot must precede own commit id")
	}
}

func TestTwoPhaseCommitHappyPath(t *testing.T) {
	m := NewManager(nil)
	p := &fakePart{name: "extstore"}
	tx := m.Begin()
	tx.Enlist(p)
	tx.Enlist(p) // duplicate enlist is a no-op
	cid, err := m.Commit(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.prepared) != 1 || len(p.committed) != 1 {
		t.Fatalf("prepare=%v commit=%v", p.prepared, p.committed)
	}
	if cid == 0 || tx.State() != StateCommitted {
		t.Fatal("commit state")
	}
}

func TestPrepareFailureAbortsAll(t *testing.T) {
	m := NewManager(nil)
	good := &fakePart{name: "good"}
	bad := &fakePart{name: "bad", prepareErr: errors.New("disk full")}
	tx := m.Begin()
	tx.Enlist(good)
	tx.Enlist(bad)
	undone := false
	tx.OnAbort(func() { undone = true })
	if _, err := m.Commit(tx); err == nil {
		t.Fatal("commit must fail")
	}
	if tx.State() != StateAborted || !undone {
		t.Fatal("abort not propagated")
	}
	if len(good.aborted) != 1 {
		t.Fatal("previously-prepared participant must be aborted")
	}
	if len(good.committed) != 0 {
		t.Fatal("nothing may commit")
	}
}

func TestCommitPhaseFailureLeavesInDoubt(t *testing.T) {
	m := NewManager(nil)
	p := &fakePart{name: "extstore", commitErr: errors.New("network down")}
	tx := m.Begin()
	tx.Enlist(p)
	cid, err := m.Commit(tx)
	if err != nil {
		t.Fatalf("decision was commit; coordinator must not fail: %v", err)
	}
	if cid == 0 {
		t.Fatal("cid must be assigned")
	}
	ind := m.InDoubt()
	if ind[tx.TID] != "extstore" {
		t.Fatalf("in-doubt = %v", ind)
	}
	// Manual resolution re-delivers the commit.
	if err := m.Resolve(tx.TID, p, true); err != nil {
		t.Fatal(err)
	}
	if len(m.InDoubt()) != 0 || len(p.committed) != 1 {
		t.Fatal("resolution failed")
	}
	if err := m.Resolve(tx.TID, p, true); err == nil {
		t.Fatal("resolving a resolved txn must error")
	}
}

func TestAbortRunsUndoInReverseOrder(t *testing.T) {
	m := NewManager(nil)
	tx := m.Begin()
	var order []int
	tx.OnAbort(func() { order = append(order, 1) })
	tx.OnAbort(func() { order = append(order, 2) })
	if err := m.Abort(tx); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("undo order = %v", order)
	}
	if err := m.Abort(tx); err == nil {
		t.Fatal("double abort must error")
	}
	if _, err := m.Commit(tx); err == nil {
		t.Fatal("commit after abort must error")
	}
}

func TestInjectedFailures(t *testing.T) {
	m := NewManager(nil)
	inj := faults.New(1)
	m.SetInjector(inj)
	p := &fakePart{name: "ext"}
	inj.FailN("txn.prepare.ext", 1)
	tx := m.Begin()
	tx.Enlist(p)
	if _, err := m.Commit(tx); err == nil {
		t.Fatal("injected prepare failure must abort")
	}
	inj.FailN("txn.commit.ext", 1)
	tx2 := m.Begin()
	tx2.Enlist(p)
	if _, err := m.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	if len(m.InDoubt()) != 1 {
		t.Fatal("injected commit failure must leave in-doubt")
	}
	// The injected schedule is drained: resolution re-delivers the commit.
	if err := m.Resolve(tx2.TID, p, true); err != nil {
		t.Fatal(err)
	}
	if len(m.InDoubt()) != 0 {
		t.Fatal("resolve must drain the in-doubt branch")
	}

	// Abort-side resolution is guarded by its own fault site: a failed
	// abort delivery keeps the branch in-doubt until a retry lands.
	inj.FailN("txn.commit.ext", 1)
	tx3 := m.Begin()
	tx3.Enlist(p)
	if _, err := m.Commit(tx3); err != nil {
		t.Fatal(err)
	}
	if len(m.InDoubt()) != 1 {
		t.Fatal("injected commit failure must leave in-doubt")
	}
	inj.FailN("txn.abort.ext", 1)
	if err := m.Resolve(tx3.TID, p, false); err == nil {
		t.Fatal("injected abort failure must surface")
	}
	if len(m.InDoubt()) != 1 {
		t.Fatal("failed abort delivery must keep the branch in-doubt")
	}
	if err := m.Resolve(tx3.TID, p, false); err != nil {
		t.Fatal(err)
	}
	if len(m.InDoubt()) != 0 {
		t.Fatal("abort resolution must drain the in-doubt branch")
	}
	if len(p.aborted) != 1 || p.aborted[0] != tx3.TID {
		t.Fatalf("participant abort deliveries = %v", p.aborted)
	}
}

func TestWALReplayAndRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	log, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(log)
	t1 := m.Begin()
	cid1, _ := m.Commit(t1)
	t2 := m.Begin()
	_ = m.Abort(t2)
	p := &fakePart{name: "ext", commitErr: errors.New("down")}
	t3 := m.Begin()
	t3.Enlist(p)
	_, _ = m.Commit(t3) // leaves t3 in-doubt
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// Recover from the log.
	log2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	m2, err := Recover(log2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.LastCID() < cid1 {
		t.Fatalf("recovered lastCID %d < %d", m2.LastCID(), cid1)
	}
	if got := m2.InDoubtTIDs(); len(got) != 1 || got[0] != t3.TID {
		t.Fatalf("recovered in-doubt = %v", got)
	}
	// New TIDs must not collide.
	t4 := m2.Begin()
	if t4.TID <= t3.TID {
		t.Fatalf("tid reuse: %d <= %d", t4.TID, t3.TID)
	}
}

func TestMemLog(t *testing.T) {
	log := NewMemLog()
	if err := log.Append(Record{Type: RecBegin, TID: 7}); err != nil {
		t.Fatal(err)
	}
	if err := log.Append(Record{Type: RecCommit, TID: 7, CID: 9}); err != nil {
		t.Fatal(err)
	}
	var types []RecordType
	_ = log.Replay(func(r Record) error {
		types = append(types, r.Type)
		return nil
	})
	if len(types) != 2 || types[1] != RecCommit {
		t.Fatalf("mem log replay = %v", types)
	}
}

func TestRowVersionsVisibility(t *testing.T) {
	v := NewRowVersions()
	// Row 0: committed at CID 5.
	v.InsertCommitted(0, 5)
	// Row 1: in-flight insert by TID 100.
	v.Insert(1, 100)
	if !v.Visible(0, 5, 0) || v.Visible(0, 4, 0) {
		t.Fatal("committed insert visibility by snapshot")
	}
	if v.Visible(1, 10, 0) {
		t.Fatal("uncommitted insert visible to others")
	}
	if !v.Visible(1, 10, 100) {
		t.Fatal("own uncommitted insert must be visible")
	}
	v.CommitTID(100, 7)
	if !v.Visible(1, 7, 0) || v.Visible(1, 6, 0) {
		t.Fatal("post-commit visibility")
	}
}

func TestRowVersionsDeleteAndConflict(t *testing.T) {
	v := NewRowVersions()
	v.InsertCommitted(0, 1)
	if err := v.Delete(0, 50); err != nil {
		t.Fatal(err)
	}
	// Second in-flight deleter conflicts.
	if err := v.Delete(0, 51); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflict expected, got %v", err)
	}
	// Own re-delete is idempotent.
	if err := v.Delete(0, 50); err != nil {
		t.Fatal("own delete must not conflict")
	}
	// Deleter sees the row as gone; others still see it.
	if v.Visible(0, 10, 50) {
		t.Fatal("own delete must hide row")
	}
	if !v.Visible(0, 10, 0) {
		t.Fatal("uncommitted delete must not hide row from others")
	}
	v.CommitTID(50, 9)
	if v.Visible(0, 9, 0) || !v.Visible(0, 8, 0) {
		t.Fatal("committed delete snapshot visibility")
	}
	// Deleting an already-deleted row conflicts.
	if err := v.Delete(0, 60); !errors.Is(err, ErrConflict) {
		t.Fatal("delete of deleted row must conflict")
	}
}

func TestRowVersionsAbort(t *testing.T) {
	v := NewRowVersions()
	v.Insert(0, 10)
	v.InsertCommitted(1, 1)
	_ = v.Delete(1, 10)
	v.AbortTID(10)
	if v.Visible(0, 100, 0) || v.Visible(0, 100, 10) {
		t.Fatal("aborted insert must never be visible")
	}
	if !v.Visible(1, 100, 0) {
		t.Fatal("aborted delete must restore row")
	}
	// Row can be deleted again after the abort.
	if err := v.Delete(1, 11); err != nil {
		t.Fatal(err)
	}
}

func TestLiveCount(t *testing.T) {
	v := NewRowVersions()
	for i := 0; i < 10; i++ {
		v.InsertCommitted(i, uint64(i+1))
	}
	_ = v.Delete(3, 99)
	v.CommitTID(99, 20)
	if got := v.LiveCount(20); got != 9 {
		t.Fatalf("live at 20 = %d", got)
	}
	if got := v.LiveCount(5); got != 5 {
		t.Fatalf("live at 5 = %d", got)
	}
}
