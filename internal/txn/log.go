package txn

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"hana/internal/faults"
	"hana/internal/obs"
)

// RecordType tags WAL records.
type RecordType uint8

// WAL record types.
const (
	RecBegin RecordType = iota + 1
	RecPrepare
	RecCommit
	RecAbort
	RecInDoubt
	RecResolve
	RecData // opaque payload logged by storage engines for redo

	recMaxType = RecData
)

func (t RecordType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecPrepare:
		return "PREPARE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecInDoubt:
		return "INDOUBT"
	case RecResolve:
		return "RESOLVE"
	case RecData:
		return "DATA"
	}
	return fmt.Sprintf("REC(%d)", uint8(t))
}

// Record is one WAL entry. Note carries the participant name for RecInDoubt
// and arbitrary redo payloads for RecData. LSN is assigned by the log on
// append and filled in during replay; callers never set it.
type Record struct {
	Type RecordType
	TID  uint64
	CID  uint64
	Note string
	LSN  uint64
}

// SyncMode selects when the log fsyncs appended records to stable storage.
type SyncMode uint8

// Sync modes. SyncNever is the legacy behavior (flush to the OS, never
// fsync — crash-consistency at the process level only). SyncCommit fsyncs
// at transaction decision points (PREPARE/COMMIT/RESOLVE), which gives
// group commit for free: every record appended since the last sync rides
// along with the decision's fsync. SyncAlways fsyncs every append.
const (
	SyncNever SyncMode = iota
	SyncCommit
	SyncAlways
)

// String names the mode.
func (m SyncMode) String() string {
	switch m {
	case SyncNever:
		return "NEVER"
	case SyncCommit:
		return "COMMIT"
	case SyncAlways:
		return "ALWAYS"
	}
	return "?"
}

// SyncPolicy configures durability of appends. Every > 0 additionally
// fsyncs after that many appends regardless of mode (a SyncEvery batcher
// bounding the unsynced window under long-running bulk work).
type SyncPolicy struct {
	Mode  SyncMode
	Every int
}

// On-disk format. The file opens with an 8-byte magic; each record is
//
//	[4B CRC32][8B LSN][1B type][8B TID][8B CID][4B noteLen][note…]
//
// with the CRC (IEEE) covering everything after itself. LSNs are strictly
// increasing; replay treats a short read, a CRC mismatch, an out-of-range
// type, an insane note length or a non-monotonic LSN as the torn tail of an
// interrupted write and truncates the log there.
const (
	walMagic     = "HANAWAL2"
	recHeaderLen = 4 + 8 + 1 + 8 + 8 + 4
	maxNoteLen   = 16 << 20
)

// LogStats is a point-in-time snapshot of the log's counters for the
// M_WAL_STATISTICS view and the recovery report.
type LogStats struct {
	LastLSN     uint64
	Appends     int64
	Bytes       int64
	Syncs       int64
	TornTails   int64
	WrittenOff  int64
	DurableOff  int64
	SyncMode    SyncMode
	Truncations int64
}

// ReplayStats reports what a verified replay observed.
type ReplayStats struct {
	Records  int
	LastLSN  uint64
	TornTail bool   // a bad record terminated the scan before EOF
	TornOff  int64  // file offset of the first bad byte
	Reason   string // why the scan stopped early
}

// Log is an append-only write-ahead log backed by a file (or purely
// in-memory when created with NewMemLog). Appends are synchronous and
// serialized; each record is framed with an LSN and a CRC32 and written
// with a single write call, so a crash can only ever tear the tail.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	// mem backs the log when f == nil.
	// hana:guardedby mu
	mem []Record
	// nextLSN is the next LSN to assign.
	// hana:guardedby mu
	nextLSN uint64

	policy SyncPolicy
	inj    *faults.Injector
	reg    *obs.Registry
	// written is the file offset after the last valid record.
	// hana:guardedby mu
	written int64
	// durable is the file offset covered by the last successful fsync.
	// hana:guardedby mu
	durable int64
	// hana:guardedby mu
	sinceSync int

	// hana:guardedby mu
	appends int64
	// hana:guardedby mu
	bytes int64
	// hana:guardedby mu
	syncs int64
	// hana:guardedby mu
	tornTails int64
	// hana:guardedby mu
	truncations int64
}

// initFromFile scans the existing content for the end of the valid record
// prefix: appends resume there, so a torn tail left by a crash is
// overwritten rather than extended.
//
// hana:owned called only from OpenLog before the Log is published
func (l *Log) initFromFile() error {
	st, err := l.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < int64(len(walMagic)) {
		// Empty or torn-inside-the-magic file: start fresh.
		if err := l.f.Truncate(0); err != nil {
			return err
		}
		if _, err := l.f.WriteAt([]byte(walMagic), 0); err != nil {
			return err
		}
		l.written = int64(len(walMagic))
		l.durable = 0
		l.nextLSN = 1
		return nil
	}
	var magic [len(walMagic)]byte
	if _, err := l.f.ReadAt(magic[:], 0); err != nil {
		return err
	}
	if string(magic[:]) != walMagic {
		return fmt.Errorf("wal: %s is not a WAL file (bad magic)", l.path)
	}
	stats, err := scanRecords(io.NewSectionReader(l.f, 0, st.Size()), nil)
	if err != nil {
		return err
	}
	l.written = stats.TornOff
	if !stats.TornTail {
		l.written = st.Size()
	}
	l.durable = l.written
	l.nextLSN = stats.LastLSN + 1
	return nil
}

// OpenLog opens (creating if needed) a file-backed WAL.
func OpenLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open wal: %w", err)
	}
	l := &Log{f: f, path: path, nextLSN: 1}
	if err := l.initFromFile(); err != nil {
		//lint:ignore errdrop the open error is what surfaces; close is cleanup of a half-opened handle
		_ = f.Close()
		return nil, fmt.Errorf("open wal: %w", err)
	}
	return l, nil
}

// NewMemLog creates an in-memory log (tests, ephemeral engines).
func NewMemLog() *Log { return &Log{nextLSN: 1} }

// SetSyncPolicy selects the fsync policy for subsequent appends.
func (l *Log) SetSyncPolicy(p SyncPolicy) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.policy = p
}

// SetInjector routes appends and fsyncs through a fault injector (sites
// "wal.append" and "wal.fsync"). A nil injector disables injection.
func (l *Log) SetInjector(inj *faults.Injector) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inj = inj
}

// SetObs publishes the log's counters into a registry (wal.* metrics).
// Without one, counters land in obs.Default.
func (l *Log) SetObs(reg *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reg = reg
}

func (l *Log) regLocked() *obs.Registry {
	if l.reg != nil {
		return l.reg
	}
	return obs.Default
}

func encodeRecord(lsn uint64, r Record) []byte {
	buf := make([]byte, recHeaderLen+len(r.Note))
	binary.LittleEndian.PutUint64(buf[4:], lsn)
	buf[12] = byte(r.Type)
	binary.LittleEndian.PutUint64(buf[13:], r.TID)
	binary.LittleEndian.PutUint64(buf[21:], r.CID)
	binary.LittleEndian.PutUint32(buf[29:], uint32(len(r.Note)))
	copy(buf[recHeaderLen:], r.Note)
	binary.LittleEndian.PutUint32(buf[0:], crc32.ChecksumIEEE(buf[4:]))
	return buf
}

// Append writes one record: the full frame is built in one buffer and
// handed to a single write call, so the kernel never sees a half-framed
// record boundary. Whether the write is fsynced depends on the policy. The
// error matters: a commit decision that never reached the log must not be
// acted on, so the coordinator checks it at the 2PC decision point.
func (l *Log) Append(r Record) error {
	_, err := l.AppendLSN(r)
	return err
}

// AppendLSN is Append returning the assigned LSN.
func (l *Log) AppendLSN(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.inj.Check("wal.append"); err != nil {
		return 0, fmt.Errorf("wal append: %w", err)
	}
	lsn := l.nextLSN
	if l.f == nil {
		r.LSN = lsn
		l.mem = append(l.mem, r)
		l.nextLSN++
		return lsn, nil
	}
	if len(r.Note) > maxNoteLen {
		return 0, fmt.Errorf("wal append: note length %d exceeds limit", len(r.Note))
	}
	buf := encodeRecord(lsn, r)
	if _, err := l.f.WriteAt(buf, l.written); err != nil {
		return 0, fmt.Errorf("wal append: %w", err)
	}
	l.written += int64(len(buf))
	l.nextLSN++
	l.sinceSync++
	l.appends++
	l.bytes += int64(len(buf))
	reg := l.regLocked()
	reg.Counter("wal.appends_total").Inc()
	reg.Counter("wal.bytes_total").Add(int64(len(buf)))
	if l.shouldSyncLocked(r.Type) {
		if err := l.syncLocked(); err != nil {
			return 0, fmt.Errorf("wal append: %w", err)
		}
	}
	return lsn, nil
}

func (l *Log) shouldSyncLocked(t RecordType) bool {
	if l.policy.Every > 0 && l.sinceSync >= l.policy.Every {
		return true
	}
	switch l.policy.Mode {
	case SyncAlways:
		return true
	case SyncCommit:
		return t == RecPrepare || t == RecCommit || t == RecResolve
	}
	return false
}

// Sync fsyncs the log to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.f == nil {
		return nil
	}
	if err := l.inj.Check("wal.fsync"); err != nil {
		return fmt.Errorf("wal fsync: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal fsync: %w", err)
	}
	l.durable = l.written
	l.sinceSync = 0
	l.syncs++
	l.regLocked().Counter("wal.syncs_total").Inc()
	return nil
}

// LastLSN returns the LSN of the most recently appended record (0 when the
// log is empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Offsets reports the file offset after the last append and the offset
// covered by the last successful fsync. The gap between them is exactly
// the state a machine crash may lose — the crashpoint harness truncates
// the file somewhere inside it to simulate one.
func (l *Log) Offsets() (written, durable int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.written, l.durable
}

// Stats snapshots the log counters.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LogStats{
		LastLSN:     l.nextLSN - 1,
		Appends:     l.appends,
		Bytes:       l.bytes,
		Syncs:       l.syncs,
		TornTails:   l.tornTails,
		WrittenOff:  l.written,
		DurableOff:  l.durable,
		SyncMode:    l.policy.Mode,
		Truncations: l.truncations,
	}
}

// scanRecords reads framed records from r, calling fn (which may be nil)
// for each valid one. It never fails on a torn or corrupt tail: the scan
// stops at the first bad record and reports it in the stats. The returned
// error is only ever fn's.
func scanRecords(r io.Reader, fn func(Record) error) (ReplayStats, error) {
	stats := ReplayStats{TornOff: int64(len(walMagic))}
	br := newCountingReader(r)
	var magic [len(walMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != walMagic {
		stats.TornTail = true
		stats.TornOff = 0
		stats.Reason = "missing or short file magic"
		return stats, nil
	}
	var prevLSN uint64
	for {
		start := br.n
		var hdr [recHeaderLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				stats.TornOff = start
				return stats, nil
			}
			stats.TornTail, stats.TornOff, stats.Reason = true, start, "short record header"
			return stats, nil
		}
		lsn := binary.LittleEndian.Uint64(hdr[4:])
		typ := RecordType(hdr[12])
		noteLen := binary.LittleEndian.Uint32(hdr[29:])
		if typ < RecBegin || typ > recMaxType {
			stats.TornTail, stats.TornOff, stats.Reason = true, start, fmt.Sprintf("invalid record type %d", typ)
			return stats, nil
		}
		if noteLen > maxNoteLen {
			stats.TornTail, stats.TornOff, stats.Reason = true, start, fmt.Sprintf("implausible note length %d", noteLen)
			return stats, nil
		}
		if lsn <= prevLSN {
			stats.TornTail, stats.TornOff, stats.Reason = true, start, fmt.Sprintf("non-monotonic LSN %d after %d", lsn, prevLSN)
			return stats, nil
		}
		note := make([]byte, noteLen)
		if _, err := io.ReadFull(br, note); err != nil {
			stats.TornTail, stats.TornOff, stats.Reason = true, start, "short record payload"
			return stats, nil
		}
		crc := crc32.ChecksumIEEE(hdr[4:])
		crc = crc32.Update(crc, crc32.IEEETable, note)
		if crc != binary.LittleEndian.Uint32(hdr[0:]) {
			stats.TornTail, stats.TornOff, stats.Reason = true, start, "CRC mismatch"
			return stats, nil
		}
		prevLSN = lsn
		stats.Records++
		stats.LastLSN = lsn
		stats.TornOff = br.n
		if fn != nil {
			rec := Record{
				Type: typ,
				TID:  binary.LittleEndian.Uint64(hdr[13:]),
				CID:  binary.LittleEndian.Uint64(hdr[21:]),
				Note: string(note),
				LSN:  lsn,
			}
			if err := fn(rec); err != nil {
				return stats, err
			}
		}
	}
}

// countingReader tracks the byte offset of an io.Reader.
type countingReader struct {
	r io.Reader
	n int64
}

func newCountingReader(r io.Reader) *countingReader { return &countingReader{r: r} }

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Replay streams every record to fn in append order. A torn or corrupt
// tail is tolerated: replay covers the valid prefix and truncates the file
// behind it (see ReplayVerified for the details).
func (l *Log) Replay(fn func(Record) error) error {
	_, err := l.ReplayVerified(fn)
	return err
}

// ReplayVerified streams the valid record prefix to fn and reports what it
// saw. When the scan stops at a bad record — the torn tail of a write that
// a crash interrupted, or corruption — the file is truncated to the valid
// prefix so the next append cannot graft new records onto garbage, and
// wal.torn_tail_total is incremented.
func (l *Log) ReplayVerified(fn func(Record) error) (ReplayStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		var stats ReplayStats
		for _, r := range l.mem {
			if err := fn(r); err != nil {
				return stats, err
			}
			stats.Records++
			stats.LastLSN = r.LSN
		}
		return stats, nil
	}
	st, err := l.f.Stat()
	if err != nil {
		return ReplayStats{}, fmt.Errorf("wal replay: %w", err)
	}
	stats, err := scanRecords(io.NewSectionReader(l.f, 0, st.Size()), fn)
	if err != nil {
		return stats, err
	}
	if stats.TornTail {
		if err := l.f.Truncate(stats.TornOff); err != nil {
			return stats, fmt.Errorf("wal truncate torn tail: %w", err)
		}
		l.written = stats.TornOff
		if l.durable > l.written {
			l.durable = l.written
		}
		l.nextLSN = stats.LastLSN + 1
		l.tornTails++
		l.regLocked().Counter("wal.torn_tail_total").Inc()
	}
	return stats, nil
}

// TruncateBefore drops every record with LSN <= lsn — the savepoint
// truncation: once a snapshot covering the prefix is durably installed,
// only the suffix is needed for recovery. The surviving records are
// rewritten to a temp file that atomically replaces the log, so a crash
// mid-truncation leaves either the old or the new log, never a hybrid.
func (l *Log) TruncateBefore(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		keep := l.mem[:0:0]
		for _, r := range l.mem {
			if r.LSN > lsn {
				keep = append(keep, r)
			}
		}
		l.mem = keep
		l.truncations++
		return nil
	}
	tmpPath := l.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal truncate: %w", err)
	}
	if _, err := tmp.Write([]byte(walMagic)); err != nil {
		//lint:ignore errdrop the write error is what surfaces; close is cleanup of the failed temp file
		_ = tmp.Close()
		return fmt.Errorf("wal truncate: %w", err)
	}
	st, err := l.f.Stat()
	if err != nil {
		//lint:ignore errdrop the stat error is what surfaces; close is cleanup of the failed temp file
		_ = tmp.Close()
		return fmt.Errorf("wal truncate: %w", err)
	}
	var werr error
	_, serr := scanRecords(io.NewSectionReader(l.f, 0, st.Size()), func(r Record) error {
		if r.LSN <= lsn || werr != nil {
			return nil
		}
		_, werr = tmp.Write(encodeRecord(r.LSN, r))
		return nil
	})
	if serr == nil {
		serr = werr
	}
	if serr == nil {
		serr = tmp.Sync()
	}
	if err := tmp.Close(); serr == nil {
		serr = err
	}
	if serr != nil {
		return fmt.Errorf("wal truncate: %w", serr)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		return fmt.Errorf("wal truncate: %w", err)
	}
	nf, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal truncate: reopen: %w", err)
	}
	//lint:ignore errdrop the old descriptor points at the renamed-over inode; nothing left to flush
	_ = l.f.Close()
	l.f = nf
	nst, err := nf.Stat()
	if err != nil {
		return fmt.Errorf("wal truncate: %w", err)
	}
	l.written = nst.Size()
	l.durable = nst.Size()
	l.sinceSync = 0
	l.truncations++
	l.regLocked().Counter("wal.truncations_total").Inc()
	return nil
}

// ScanFile reads a WAL file without opening it for writing and without
// repairing anything — the read-only path behind `platformctl wal dump`
// and `wal fsck`, and the crash harness's durable-evidence probe. fn may
// be nil to just collect stats.
func ScanFile(path string, fn func(Record) error) (ReplayStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return ReplayStats{}, fmt.Errorf("wal scan: %w", err)
	}
	//lint:ignore errdrop read-only scan: closing the descriptor cannot lose data
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return ReplayStats{}, fmt.Errorf("wal scan: %w", err)
	}
	return scanRecords(io.NewSectionReader(f, 0, st.Size()), fn)
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.f.Close()
}

// Path returns the backing file path ("" for in-memory logs).
func (l *Log) Path() string { return l.path }
