package txn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
)

// RecordType tags WAL records.
type RecordType uint8

// WAL record types.
const (
	RecBegin RecordType = iota + 1
	RecPrepare
	RecCommit
	RecAbort
	RecInDoubt
	RecResolve
	RecData // opaque payload logged by storage engines for redo
)

// Record is one WAL entry. Note carries the participant name for RecInDoubt
// and arbitrary redo payloads for RecData.
type Record struct {
	Type RecordType
	TID  uint64
	CID  uint64
	Note string
}

// Log is an append-only write-ahead log backed by a file (or purely
// in-memory when created with NewMemLog). Appends are synchronous and
// serialized.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
	mem  []Record // used when f == nil
}

// OpenLog opens (creating if needed) a file-backed WAL.
func OpenLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open wal: %w", err)
	}
	return &Log{f: f, w: bufio.NewWriter(f), path: path}, nil
}

// NewMemLog creates an in-memory log (tests, ephemeral engines).
func NewMemLog() *Log { return &Log{} }

// Append writes one record durably (flushed through the bufio layer; fsync
// is deliberately omitted — crash-consistency at the process level is
// enough for this reproduction). The error matters: a commit decision that
// never reached the log must not be acted on, so the coordinator checks it
// at the 2PC decision point.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		l.mem = append(l.mem, r)
		return nil
	}
	var buf [25]byte
	buf[0] = byte(r.Type)
	binary.LittleEndian.PutUint64(buf[1:], r.TID)
	binary.LittleEndian.PutUint64(buf[9:], r.CID)
	binary.LittleEndian.PutUint64(buf[17:], uint64(len(r.Note)))
	if _, err := l.w.Write(buf[:]); err != nil {
		return fmt.Errorf("wal append: %w", err)
	}
	if _, err := l.w.WriteString(r.Note); err != nil {
		return fmt.Errorf("wal append: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal append: %w", err)
	}
	return nil
}

// Replay streams every record to fn in append order.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		for _, r := range l.mem {
			if err := fn(r); err != nil {
				return err
			}
		}
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(l.f)
	for {
		var buf [25]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			if err == io.EOF {
				break
			}
			return fmt.Errorf("wal replay: %w", err)
		}
		rec := Record{
			Type: RecordType(buf[0]),
			TID:  binary.LittleEndian.Uint64(buf[1:]),
			CID:  binary.LittleEndian.Uint64(buf[9:]),
		}
		noteLen := binary.LittleEndian.Uint64(buf[17:])
		if noteLen > 0 {
			nb := make([]byte, noteLen)
			if _, err := io.ReadFull(r, nb); err != nil {
				return fmt.Errorf("wal replay note: %w", err)
			}
			rec.Note = string(nb)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	// Restore append position.
	_, err := l.f.Seek(0, io.SeekEnd)
	return err
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Close()
}

// Path returns the backing file path ("" for in-memory logs).
func (l *Log) Path() string { return l.path }
