package txn

import (
	"path/filepath"
	"sync"
	"testing"
)

// TestConcurrentCommitAbort drives the coordinator from eight goroutines —
// half committing, half aborting — against one shared participant and a
// real file-backed WAL. Under `go test -race` this exercises the manager's
// TID/CID allocation, the participant registry, and the log writer; the
// assertions pin 2PC bookkeeping: every commit prepared and committed
// exactly once, every abort delivered, all CIDs unique.
func TestConcurrentCommitAbort(t *testing.T) {
	log, err := OpenLog(filepath.Join(t.TempDir(), "wal"))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(log)
	p := &fakePart{name: "shared"}

	const workers = 8
	const perWorker = 50
	cids := make([][]uint64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := m.Begin()
				tx.Enlist(p)
				if (g+i)%2 == 0 {
					cid, err := m.Commit(tx)
					if err != nil {
						t.Error(err)
						return
					}
					cids[g] = append(cids[g], cid)
				} else if err := m.Abort(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	seen := map[uint64]bool{}
	commits := 0
	for _, list := range cids {
		for _, cid := range list {
			if seen[cid] {
				t.Fatalf("commit ID %d assigned twice", cid)
			}
			seen[cid] = true
			commits++
		}
	}
	p.mu.Lock()
	prepared, committed, aborted := len(p.prepared), len(p.committed), len(p.aborted)
	p.mu.Unlock()
	if prepared != commits || committed != commits {
		t.Fatalf("participant saw %d prepares / %d commits, want %d",
			prepared, committed, commits)
	}
	if aborted != workers*perWorker-commits {
		t.Fatalf("participant saw %d aborts, want %d",
			aborted, workers*perWorker-commits)
	}
}

// TestConcurrentRowVersionVisibility stresses one RowVersions store with
// concurrent inserters/committers and visibility readers — the MVCC hot
// path every scan takes.
func TestConcurrentRowVersionVisibility(t *testing.T) {
	v := NewRowVersions()
	const writers = 4
	const rowsPerWriter = 200
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rowsPerWriter; i++ {
				rowID := g*rowsPerWriter + i
				tid := uint64(1000 + rowID)
				v.Insert(rowID, tid)
				v.CommitTID(tid, uint64(2000+rowID))
			}
		}(g)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = v.LiveCount(^uint64(0))
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if got := v.LiveCount(^uint64(0)); got != writers*rowsPerWriter {
		t.Fatalf("live rows = %d, want %d", got, writers*rowsPerWriter)
	}
}
