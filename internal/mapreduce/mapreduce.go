// Package mapreduce implements the Hadoop-style map-reduce engine that runs
// over the simulated HDFS: jobs with map, combine and reduce functions,
// block-granular input splits, a slot-limited task scheduler (the paper's
// cluster ran 240 map and 120 reduce tasks), a sort-shuffle-merge phase,
// counters, and a configurable per-job startup latency modeling the job
// submission overhead of a real cluster.
package mapreduce

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hana/internal/faults"
	"hana/internal/hdfs"
	"hana/internal/obs"
)

// MapFunc processes one input line, emitting key/value pairs.
type MapFunc func(line string, emit func(k, v string))

// ReduceFunc processes one key group, emitting output pairs.
type ReduceFunc func(key string, values []string, emit func(k, v string))

// TaggedInput pairs a set of inputs with their own mapper — the mechanism
// behind reduce-side joins, where each join side tags its records.
type TaggedInput struct {
	Paths []string
	Map   MapFunc
}

// Job describes one map-reduce job. Either Inputs+Map or TaggedInputs is
// set.
type Job struct {
	Name         string
	Inputs       []string // HDFS files or directories
	Output       string   // HDFS directory for part files
	Map          MapFunc
	TaggedInputs []TaggedInput // alternative to Inputs/Map (reduce-side joins)
	Combine      ReduceFunc    // optional map-side pre-aggregation
	Reduce       ReduceFunc    // nil = map-only job
	NumReducers  int           // 0 = engine default
}

// Config tunes the engine.
type Config struct {
	MapSlots        int           // concurrent map tasks (default 240, as in the paper's cluster)
	ReduceSlots     int           // concurrent reduce tasks (default 120)
	DefaultReducers int           // reducers per job when the job doesn't say (default 4)
	JobStartup      time.Duration // simulated job submission overhead
	TaskStartup     time.Duration // simulated per-task scheduling overhead
	// Faults injects failures at "mapreduce.map", "mapreduce.reduce" (the
	// task attempts) on top of the cluster's own "hdfs.*" sites; nil
	// disables injection.
	Faults *faults.Injector
	// Retry governs task re-scheduling and block re-reads; the zero value
	// takes the faults package defaults (3 attempts).
	Retry faults.RetryPolicy
}

func (c Config) withDefaults() Config {
	if c.MapSlots <= 0 {
		c.MapSlots = 240
	}
	if c.ReduceSlots <= 0 {
		c.ReduceSlots = 120
	}
	if c.DefaultReducers <= 0 {
		c.DefaultReducers = 4
	}
	return c
}

// Counters aggregates task statistics.
type Counters struct {
	MapInputRecords   atomic.Int64
	MapOutputRecords  atomic.Int64
	CombineOutRecords atomic.Int64
	ReduceInputGroups atomic.Int64
	ReduceOutRecords  atomic.Int64
	TaskRetries       atomic.Int64
}

// merge folds a task-local scratch counter set into the engine totals.
// Tasks count into a scratch set and merge only on a successful attempt,
// so a re-scheduled task never double-counts.
func (c *Counters) merge(s *Counters) {
	c.MapInputRecords.Add(s.MapInputRecords.Load())
	c.MapOutputRecords.Add(s.MapOutputRecords.Load())
	c.CombineOutRecords.Add(s.CombineOutRecords.Load())
	c.ReduceInputGroups.Add(s.ReduceInputGroups.Load())
	c.ReduceOutRecords.Add(s.ReduceOutRecords.Load())
}

// JobResult reports one job's execution.
type JobResult struct {
	MapTasks    int
	ReduceTasks int
	Duration    time.Duration
	OutputFiles []string
}

// Engine executes jobs on a cluster.
type Engine struct {
	cluster *hdfs.Cluster
	cfg     Config

	// Counters accumulate across jobs; JobsRun counts executed jobs.
	Counters Counters
	JobsRun  atomic.Int64
}

// NewEngine creates an engine over the cluster.
func NewEngine(c *hdfs.Cluster, cfg Config) *Engine {
	return &Engine{cluster: c, cfg: cfg.withDefaults()}
}

// retry returns the task retry policy with retries counted per job run.
func (e *Engine) retry() faults.RetryPolicy {
	p := e.cfg.Retry
	onRetry := p.OnRetry
	p.OnRetry = func(op string, attempt int, err error) {
		e.Counters.TaskRetries.Add(1)
		if onRetry != nil {
			onRetry(op, attempt, err)
		}
	}
	return p
}

// Cluster returns the underlying HDFS.
func (e *Engine) Cluster() *hdfs.Cluster { return e.cluster }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

type kv struct{ k, v string }

// sleepCtx waits for d or until the context is canceled, mirroring
// RetryPolicy.DoCtx's backoff semantics: the simulated startup latencies
// must abort mid-sleep when the caller gives up, not run to completion.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Run executes the job synchronously and returns its result.
//
// Deprecated: use RunCtx — it aborts startup delays, task scheduling, and
// retry backoff when the caller cancels.
func (e *Engine) Run(job *Job) (*JobResult, error) {
	return e.RunCtx(context.Background(), job)
}

// RunCtx executes the job synchronously under the caller's context and
// returns its result. Cancellation interrupts the job- and task-startup
// delays, stops retry backoff between attempts (RetryPolicy.DoCtx), and
// fails the job with the context's error.
func (e *Engine) RunCtx(ctx context.Context, job *Job) (*JobResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if err := sleepCtx(ctx, e.cfg.JobStartup); err != nil {
		return nil, fmt.Errorf("job %s: %w", job.Name, err)
	}
	e.JobsRun.Add(1)

	type taggedSplit struct {
		lines []string
		fn    MapFunc
	}
	var splits []taggedSplit
	if len(job.TaggedInputs) > 0 {
		for _, ti := range job.TaggedInputs {
			ss, err := e.computeSplits(ctx, ti.Paths)
			if err != nil {
				return nil, fmt.Errorf("job %s: %w", job.Name, err)
			}
			for _, s := range ss {
				splits = append(splits, taggedSplit{lines: s, fn: ti.Map})
			}
		}
	} else {
		ss, err := e.computeSplits(ctx, job.Inputs)
		if err != nil {
			return nil, fmt.Errorf("job %s: %w", job.Name, err)
		}
		for _, s := range ss {
			splits = append(splits, taggedSplit{lines: s, fn: job.Map})
		}
	}
	reducers := job.NumReducers
	if reducers <= 0 {
		reducers = e.cfg.DefaultReducers
	}
	if job.Reduce == nil {
		reducers = 0
	}

	// Map phase: each task produces per-partition output.
	type mapOut struct {
		parts [][]kv
		err   error
	}
	outs := make([]mapOut, len(splits))
	sem := make(chan struct{}, e.cfg.MapSlots)
	var wg sync.WaitGroup
	for i, split := range splits {
		wg.Add(1)
		go func(i int, lines []string, mapFn MapFunc) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := sleepCtx(ctx, e.cfg.TaskStartup); err != nil {
				outs[i] = mapOut{err: err}
				return
			}
			// Each attempt is a fresh task execution on scratch state;
			// counters merge only once the attempt succeeds, so a
			// re-scheduled task never double-counts.
			var parts [][]kv
			var scratch *Counters
			err := e.retry().DoCtx(ctx, "mapreduce.map", func() error {
				scratch = &Counters{}
				if err := e.cfg.Faults.Check("mapreduce.map"); err != nil {
					return err
				}
				nparts := reducers
				if nparts == 0 {
					nparts = 1
				}
				parts = make([][]kv, nparts)
				emit := func(k, v string) {
					p := 0
					if reducers > 0 {
						p = int(hashKey(k) % uint64(reducers))
					}
					parts[p] = append(parts[p], kv{k, v})
					scratch.MapOutputRecords.Add(1)
				}
				for _, line := range lines {
					scratch.MapInputRecords.Add(1)
					mapFn(line, emit)
				}
				if job.Combine != nil && reducers > 0 {
					for p := range parts {
						parts[p] = combine(parts[p], job.Combine, scratch)
					}
				}
				return nil
			})
			if err == nil {
				e.Counters.merge(scratch)
			}
			outs[i] = mapOut{parts: parts, err: err}
		}(i, split.lines, split.fn)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("job %s: map task %d: %w", job.Name, i, o.err)
		}
	}

	res := &JobResult{MapTasks: len(splits), ReduceTasks: reducers}

	if job.Reduce == nil {
		// Map-only: write each task's output as a part-m file.
		for i, o := range outs {
			name := fmt.Sprintf("%s/part-m-%05d", job.Output, i)
			if err := e.writePart(ctx, name, o.parts[0]); err != nil {
				return nil, fmt.Errorf("job %s: %w", job.Name, err)
			}
			res.OutputFiles = append(res.OutputFiles, name)
		}
		res.Duration = time.Since(start)
		e.publishObs(res.Duration)
		return res, nil
	}

	// Shuffle: merge per-partition streams, sort by key, group.
	var rwg sync.WaitGroup
	rerrs := make([]error, reducers)
	rsem := make(chan struct{}, e.cfg.ReduceSlots)
	partNames := make([]string, reducers)
	for r := 0; r < reducers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			rsem <- struct{}{}
			defer func() { <-rsem }()
			if err := sleepCtx(ctx, e.cfg.TaskStartup); err != nil {
				rerrs[r] = err
				return
			}
			var all []kv
			for _, o := range outs {
				all = append(all, o.parts[r]...)
			}
			sort.SliceStable(all, func(i, j int) bool { return all[i].k < all[j].k })
			var out []kv
			var scratch *Counters
			err := e.retry().DoCtx(ctx, "mapreduce.reduce", func() error {
				scratch = &Counters{}
				if err := e.cfg.Faults.Check("mapreduce.reduce"); err != nil {
					return err
				}
				out = out[:0]
				emit := func(k, v string) {
					out = append(out, kv{k, v})
					scratch.ReduceOutRecords.Add(1)
				}
				for i := 0; i < len(all); {
					j := i
					for j < len(all) && all[j].k == all[i].k {
						j++
					}
					vals := make([]string, 0, j-i)
					for _, p := range all[i:j] {
						vals = append(vals, p.v)
					}
					scratch.ReduceInputGroups.Add(1)
					job.Reduce(all[i].k, vals, emit)
					i = j
				}
				return nil
			})
			if err != nil {
				rerrs[r] = fmt.Errorf("reduce task %d: %w", r, err)
				return
			}
			e.Counters.merge(scratch)
			name := fmt.Sprintf("%s/part-r-%05d", job.Output, r)
			if err := e.writePart(ctx, name, out); err != nil {
				rerrs[r] = err
				return
			}
			partNames[r] = name
		}(r)
	}
	rwg.Wait()
	for _, err := range rerrs {
		if err != nil {
			return nil, err
		}
	}
	res.OutputFiles = partNames
	res.Duration = time.Since(start)
	e.publishObs(res.Duration)
	return res, nil
}

// publishObs mirrors the engine's cumulative counters into the process-wide
// metrics registry so map-reduce activity is visible alongside query
// execution (gauges track the running totals; the histogram records per-job
// latency).
func (e *Engine) publishObs(d time.Duration) {
	obs.Default.Counter("mapreduce.jobs_run").Inc()
	obs.Default.Histogram("mapreduce.job_us", nil).Observe(d.Microseconds())
	obs.Default.Gauge("mapreduce.map_input_records").Set(e.Counters.MapInputRecords.Load())
	obs.Default.Gauge("mapreduce.map_output_records").Set(e.Counters.MapOutputRecords.Load())
	obs.Default.Gauge("mapreduce.combine_out_records").Set(e.Counters.CombineOutRecords.Load())
	obs.Default.Gauge("mapreduce.reduce_input_groups").Set(e.Counters.ReduceInputGroups.Load())
	obs.Default.Gauge("mapreduce.reduce_out_records").Set(e.Counters.ReduceOutRecords.Load())
	obs.Default.Gauge("mapreduce.task_retries").Set(e.Counters.TaskRetries.Load())
}

// RunChain executes a DAG expressed as an ordered job list (each job's
// inputs may be previous outputs).
//
// Deprecated: use RunChainCtx — it stops the chain (and interrupts the
// running job) when the caller cancels.
func (e *Engine) RunChain(jobs []*Job) ([]*JobResult, error) {
	return e.RunChainCtx(context.Background(), jobs)
}

// RunChainCtx executes the chain under the caller's context; completed
// results are returned alongside the first error.
func (e *Engine) RunChainCtx(ctx context.Context, jobs []*Job) ([]*JobResult, error) {
	var out []*JobResult
	for _, j := range jobs {
		r, err := e.RunCtx(ctx, j)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

func combine(in []kv, fn ReduceFunc, counters *Counters) []kv {
	sort.SliceStable(in, func(i, j int) bool { return in[i].k < in[j].k })
	var out []kv
	emit := func(k, v string) {
		out = append(out, kv{k, v})
		counters.CombineOutRecords.Add(1)
	}
	for i := 0; i < len(in); {
		j := i
		for j < len(in) && in[j].k == in[i].k {
			j++
		}
		vals := make([]string, 0, j-i)
		for _, p := range in[i:j] {
			vals = append(vals, p.v)
		}
		fn(in[i].k, vals, emit)
		i = j
	}
	return out
}

// computeSplits resolves inputs (files or directories) into per-block line
// splits.
func (e *Engine) computeSplits(ctx context.Context, inputs []string) ([][]string, error) {
	var files []*hdfs.FileInfo
	for _, in := range inputs {
		fi, err := e.cluster.Stat(in)
		if err != nil {
			return nil, err
		}
		if fi.Size == 0 && len(fi.Blocks) == 0 {
			// Directory: take its files.
			files = append(files, e.cluster.List(in)...)
			continue
		}
		files = append(files, fi)
	}
	var splits [][]string
	for _, fi := range files {
		data, err := e.readInput(ctx, fi)
		if err != nil {
			return nil, err
		}
		lines := splitLines(string(data))
		if len(lines) == 0 {
			continue
		}
		nblocks := len(fi.Blocks)
		if nblocks <= 1 {
			splits = append(splits, lines)
			continue
		}
		// One split per block, at line granularity.
		per := (len(lines) + nblocks - 1) / nblocks
		for off := 0; off < len(lines); off += per {
			end := off + per
			if end > len(lines) {
				end = len(lines)
			}
			splits = append(splits, lines[off:end])
		}
	}
	return splits, nil
}

// readInput assembles a file block by block. hdfs.ReadBlock already fails
// over across surviving replicas; on top of that the engine retries each
// block (dead nodes may be revived between attempts) and contextualizes
// the final error, preserving the cluster's "all replicas dead" cause.
func (e *Engine) readInput(ctx context.Context, fi *hdfs.FileInfo) ([]byte, error) {
	out := make([]byte, 0, fi.Size)
	for _, b := range fi.Blocks {
		var data []byte
		err := e.retry().DoCtx(ctx, "hdfs.read", func() error {
			d, err := e.cluster.ReadBlock(b)
			if err != nil {
				return err
			}
			data = d
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("input %s block %d: %w", fi.Path, b.ID, err)
		}
		out = append(out, data...)
	}
	return out, nil
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// writePart writes one task's output file, retrying transient cluster
// failures. WriteFile replaces the target, so a retry never duplicates.
func (e *Engine) writePart(ctx context.Context, name string, pairs []kv) error {
	var b strings.Builder
	for _, p := range pairs {
		if p.k != "" {
			b.WriteString(p.k)
			b.WriteByte('\t')
		}
		b.WriteString(p.v)
		b.WriteByte('\n')
	}
	data := []byte(b.String())
	return e.retry().DoCtx(ctx, "hdfs.write", func() error {
		return e.cluster.WriteFile(name, data)
	})
}

func hashKey(k string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k))
	return h.Sum64()
}
