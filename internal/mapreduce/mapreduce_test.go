package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"hana/internal/faults"
	"hana/internal/hdfs"
)

func newTestEngine(t *testing.T) (*Engine, *hdfs.Cluster) {
	t.Helper()
	c := hdfs.NewCluster(3, hdfs.WithBlockSize(256), hdfs.WithReplication(2))
	return NewEngine(c, Config{MapSlots: 8, ReduceSlots: 4, DefaultReducers: 3}), c
}

func readOutput(t *testing.T, c *hdfs.Cluster, dir string) []string {
	t.Helper()
	var lines []string
	for _, fi := range c.List(dir) {
		data, err := c.ReadFile(fi.Path)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
			if l != "" {
				lines = append(lines, l)
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func TestWordCount(t *testing.T) {
	e, c := newTestEngine(t)
	doc := "the quick brown fox\nthe lazy dog\nthe fox"
	_ = c.WriteFile("/in/doc.txt", []byte(doc))
	job := &Job{
		Name:   "wordcount",
		Inputs: []string{"/in/doc.txt"},
		Output: "/out/wc",
		Map: func(line string, emit func(k, v string)) {
			for _, w := range strings.Fields(line) {
				emit(w, "1")
			}
		},
		Reduce: func(key string, values []string, emit func(k, v string)) {
			sum := 0
			for _, v := range values {
				n, _ := strconv.Atoi(v)
				sum += n
			}
			emit(key, strconv.Itoa(sum))
		},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReduceTasks != 3 {
		t.Fatalf("reducers = %d", res.ReduceTasks)
	}
	lines := readOutput(t, c, "/out/wc")
	want := map[string]string{"the": "3", "fox": "2", "quick": "1", "brown": "1", "lazy": "1", "dog": "1"}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v", lines)
	}
	for _, l := range lines {
		parts := strings.SplitN(l, "\t", 2)
		if want[parts[0]] != parts[1] {
			t.Fatalf("count %s = %s", parts[0], parts[1])
		}
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	e, c := newTestEngine(t)
	var b strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&b, "k%d\n", i%4)
	}
	_ = c.WriteFile("/in/keys.txt", []byte(b.String()))
	sum := func(key string, values []string, emit func(k, v string)) {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(v)
			total += n
		}
		emit(key, strconv.Itoa(total))
	}
	job := &Job{
		Name:   "combined",
		Inputs: []string{"/in/keys.txt"},
		Output: "/out/comb",
		Map: func(line string, emit func(k, v string)) {
			emit(line, "1")
		},
		Combine: sum,
		Reduce:  sum,
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	lines := readOutput(t, c, "/out/comb")
	if len(lines) != 4 {
		t.Fatalf("groups = %v", lines)
	}
	for _, l := range lines {
		if !strings.HasSuffix(l, "\t250") {
			t.Fatalf("combiner sum wrong: %s", l)
		}
	}
	if e.Counters.CombineOutRecords.Load() == 0 {
		t.Fatal("combiner did not run")
	}
}

func TestMapOnlyJob(t *testing.T) {
	e, c := newTestEngine(t)
	_ = c.WriteFile("/in/nums.txt", []byte("1\n2\n3\n4\n5"))
	job := &Job{
		Name:   "filter",
		Inputs: []string{"/in/nums.txt"},
		Output: "/out/filtered",
		Map: func(line string, emit func(k, v string)) {
			n, _ := strconv.Atoi(line)
			if n%2 == 0 {
				emit("", line)
			}
		},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReduceTasks != 0 {
		t.Fatal("map-only must not run reducers")
	}
	lines := readOutput(t, c, "/out/filtered")
	if len(lines) != 2 || lines[0] != "2" || lines[1] != "4" {
		t.Fatalf("filtered = %v", lines)
	}
}

func TestDirectoryInputAndMultiBlockSplits(t *testing.T) {
	e, c := newTestEngine(t)
	// Two part files; one spans multiple 256-byte blocks.
	var big strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&big, "row-%04d\n", i)
	}
	_ = c.WriteFile("/warehouse/t/part-00000", []byte(big.String()))
	_ = c.WriteFile("/warehouse/t/part-00001", []byte("row-x\nrow-y\n"))
	job := &Job{
		Name:   "count",
		Inputs: []string{"/warehouse/t"},
		Output: "/out/count",
		Map:    func(line string, emit func(k, v string)) { emit("all", "1") },
		Reduce: func(key string, values []string, emit func(k, v string)) {
			emit(key, strconv.Itoa(len(values)))
		},
		NumReducers: 1,
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.MapTasks < 3 {
		t.Fatalf("expected multiple block splits, got %d map tasks", res.MapTasks)
	}
	lines := readOutput(t, c, "/out/count")
	if len(lines) != 1 || lines[0] != "all\t202" {
		t.Fatalf("count = %v", lines)
	}
}

func TestChainOfJobs(t *testing.T) {
	e, c := newTestEngine(t)
	_ = c.WriteFile("/in/data", []byte("a 1\nb 2\na 3\nb 4"))
	j1 := &Job{
		Name: "stage1", Inputs: []string{"/in/data"}, Output: "/tmp/s1",
		Map: func(line string, emit func(k, v string)) {
			f := strings.Fields(line)
			emit(f[0], f[1])
		},
		Reduce: func(key string, values []string, emit func(k, v string)) {
			sum := 0
			for _, v := range values {
				n, _ := strconv.Atoi(v)
				sum += n
			}
			emit(key, strconv.Itoa(sum))
		},
		NumReducers: 2,
	}
	j2 := &Job{
		Name: "stage2", Inputs: []string{"/tmp/s1"}, Output: "/out/final",
		Map: func(line string, emit func(k, v string)) {
			parts := strings.SplitN(line, "\t", 2)
			emit("total", parts[1])
		},
		Reduce: func(key string, values []string, emit func(k, v string)) {
			sum := 0
			for _, v := range values {
				n, _ := strconv.Atoi(v)
				sum += n
			}
			emit("", strconv.Itoa(sum))
		},
		NumReducers: 1,
	}
	results, err := e.RunChain([]*Job{j1, j2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || e.JobsRun.Load() != 2 {
		t.Fatal("chain accounting")
	}
	lines := readOutput(t, c, "/out/final")
	if len(lines) != 1 || lines[0] != "10" {
		t.Fatalf("final = %v", lines)
	}
}

func TestMissingInputFails(t *testing.T) {
	e, _ := newTestEngine(t)
	job := &Job{Name: "x", Inputs: []string{"/nope"}, Output: "/out",
		Map: func(string, func(k, v string)) {}}
	if _, err := e.Run(job); err == nil {
		t.Fatal("missing input must fail")
	}
}

func TestCountersAccumulate(t *testing.T) {
	e, c := newTestEngine(t)
	_ = c.WriteFile("/in/d", []byte("x\ny\nz"))
	job := &Job{Name: "c", Inputs: []string{"/in/d"}, Output: "/out/c",
		Map:         func(line string, emit func(k, v string)) { emit(line, "1") },
		Reduce:      func(k string, vs []string, emit func(k, v string)) { emit(k, "1") },
		NumReducers: 1,
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	if e.Counters.MapInputRecords.Load() != 3 || e.Counters.ReduceInputGroups.Load() != 3 {
		t.Fatalf("counters: %+v", e.Counters.MapInputRecords.Load())
	}
}

func wordCountJob(name, in, out string) *Job {
	return &Job{
		Name:   name,
		Inputs: []string{in},
		Output: out,
		Map: func(line string, emit func(k, v string)) {
			for _, w := range strings.Fields(line) {
				emit(w, "1")
			}
		},
		Reduce: func(key string, values []string, emit func(k, v string)) {
			emit(key, strconv.Itoa(len(values)))
		},
		NumReducers: 1,
	}
}

func TestJobSurvivesDatanodeLossViaReplicas(t *testing.T) {
	e, c := newTestEngine(t)
	var doc strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&doc, "alpha beta gamma line%d\n", i)
	}
	_ = c.WriteFile("/in/big.txt", []byte(doc.String()))
	// Replication factor is 2, so losing any single datanode leaves one
	// live replica of every input block.
	c.KillNode(0)
	res, err := e.Run(wordCountJob("failover", "/in/big.txt", "/out/failover"))
	if err != nil {
		t.Fatalf("job must fall back to surviving replicas: %v", err)
	}
	if res.MapTasks < 2 {
		t.Fatalf("want a multi-block input, got %d map tasks", res.MapTasks)
	}
	for _, l := range readOutput(t, c, "/out/failover") {
		parts := strings.SplitN(l, "\t", 2)
		if (parts[0] == "alpha" || parts[0] == "beta") && parts[1] != "40" {
			t.Fatalf("lost records reading via replicas: %s", l)
		}
	}
}

func TestAllReplicasDeadIsClassifiedTransient(t *testing.T) {
	c := hdfs.NewCluster(3, hdfs.WithBlockSize(256), hdfs.WithReplication(2))
	e := NewEngine(c, Config{MapSlots: 4, ReduceSlots: 2, DefaultReducers: 1,
		Retry: faults.RetryPolicy{MaxAttempts: 2, Sleep: func(time.Duration) {}}})
	_ = c.WriteFile("/in/doc.txt", []byte("a b c\nd e f"))
	for i := 0; i < c.NumNodes(); i++ {
		c.KillNode(i)
	}
	_, err := e.Run(wordCountJob("dead", "/in/doc.txt", "/out/dead"))
	if err == nil {
		t.Fatal("job over dead cluster must fail")
	}
	if !strings.Contains(err.Error(), "all replicas dead") {
		t.Fatalf("error must name the replica outage: %v", err)
	}
	if !faults.IsTransient(err) {
		t.Fatalf("replica outage must stay retryable through wrapping: %v", err)
	}
	// Reviving the nodes makes the same job succeed: the failure really
	// was transient.
	for i := 0; i < c.NumNodes(); i++ {
		c.ReviveNode(i)
	}
	if _, err := e.Run(wordCountJob("dead2", "/in/doc.txt", "/out/dead2")); err != nil {
		t.Fatal(err)
	}
}

func TestMapTaskRetriesDoNotDoubleCount(t *testing.T) {
	c := hdfs.NewCluster(3, hdfs.WithBlockSize(256), hdfs.WithReplication(2))
	inj := faults.New(7)
	inj.SetSleep(func(time.Duration) {})
	e := NewEngine(c, Config{MapSlots: 4, ReduceSlots: 2, DefaultReducers: 1,
		Faults: inj,
		Retry:  faults.RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}})
	_ = c.WriteFile("/in/doc.txt", []byte("x\ny\nz"))
	// Two injected map failures are absorbed by the three attempts.
	inj.FailN("mapreduce.map", 2)
	if _, err := e.Run(wordCountJob("retry", "/in/doc.txt", "/out/retry")); err != nil {
		t.Fatalf("transient map failures must be re-scheduled: %v", err)
	}
	if got := e.Counters.TaskRetries.Load(); got != 2 {
		t.Fatalf("TaskRetries = %d, want 2", got)
	}
	// Scratch counters merge only on the successful attempt, so retried
	// tasks never double-count.
	if got := e.Counters.MapInputRecords.Load(); got != 3 {
		t.Fatalf("MapInputRecords = %d, want 3 (no double-count on retry)", got)
	}
}

func TestRunCtxCancelAbortsStartupDelays(t *testing.T) {
	e, c := newTestEngine(t)
	// Startup delays far longer than the test's patience: only a
	// mid-sleep abort can return in time.
	e.cfg.JobStartup = 10 * time.Second
	e.cfg.TaskStartup = 10 * time.Second
	_ = c.WriteFile("/in/doc.txt", []byte("a b\nc"))

	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(20*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	_, err := e.RunCtx(ctx, wordCountJob("cancel", "/in/doc.txt", "/out/cancel"))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx under canceled ctx = %v, want context.Canceled in chain", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancel took %v: the JobStartup sleep did not abort mid-sleep", elapsed)
	}
}

func TestRunCtxCancelAbortsTaskStartup(t *testing.T) {
	e, c := newTestEngine(t)
	// Job startup is instant; the cancel must land inside the per-task
	// scheduling delay instead.
	e.cfg.TaskStartup = 10 * time.Second
	_ = c.WriteFile("/in/doc.txt", []byte("a b\nc"))

	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(20*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	_, err := e.RunCtx(ctx, wordCountJob("cancel2", "/in/doc.txt", "/out/cancel2"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx under canceled ctx = %v, want context.Canceled in chain", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel took %v: the TaskStartup sleep did not abort mid-sleep", elapsed)
	}
}

func TestRunChainCtxStopsOnCancel(t *testing.T) {
	e, c := newTestEngine(t)
	_ = c.WriteFile("/in/doc.txt", []byte("a b\nc"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the chain must not run any job
	res, err := e.RunChainCtx(ctx, []*Job{
		wordCountJob("chain1", "/in/doc.txt", "/out/chain1"),
		wordCountJob("chain2", "/in/doc.txt", "/out/chain2"),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunChainCtx = %v, want context.Canceled in chain", err)
	}
	if len(res) != 0 {
		t.Fatalf("canceled chain returned %d results, want 0", len(res))
	}
	if got := e.JobsRun.Load(); got != 0 {
		t.Fatalf("JobsRun = %d after pre-canceled chain, want 0", got)
	}
}
