package platform

import (
	"context"
	"testing"
	"time"

	"hana/internal/engine"
	"hana/internal/value"
)

func newPlatform(t *testing.T) *Platform {
	t.Helper()
	return New(t.TempDir())
}

func TestArtifactRepositoryVersioning(t *testing.T) {
	p := newPlatform(t)
	a1 := p.SaveArtifact("schema", ArtifactDDL, `CREATE TABLE t (a BIGINT)`)
	if a1.Version != 1 {
		t.Fatalf("v = %d", a1.Version)
	}
	a2 := p.SaveArtifact("schema", ArtifactDDL, `CREATE TABLE t (a BIGINT, b DOUBLE)`)
	if a2.Version != 2 {
		t.Fatalf("v = %d", a2.Version)
	}
	if got, _ := p.Artifact("SCHEMA"); got.Version != 2 {
		t.Fatal("case-insensitive lookup")
	}
	if len(p.Artifacts()) != 1 {
		t.Fatal("artifact list")
	}
}

func TestDeployAndTransportLifecycle(t *testing.T) {
	p := newPlatform(t)
	p.SaveArtifact("schema", ArtifactDDL, `
		CREATE TABLE readings (equip VARCHAR(10), v DOUBLE);
		CREATE TABLE alerts (msg VARCHAR(100))`)
	p.SaveArtifact("seed", ArtifactScript, `INSERT INTO readings VALUES ('EQ1', 1.5)`)
	if err := p.Deploy(TierDev, "schema", "seed"); err != nil {
		t.Fatal(err)
	}
	dev, _ := p.System(TierDev)
	res, err := dev.Engine.ExecuteContext(context.Background(), `SELECT COUNT(*) FROM readings`)
	if err != nil || res.Rows[0][0].Int() != 1 {
		t.Fatalf("dev deploy: %v %v", res, err)
	}
	if p.DeployedVersion(TierDev, "schema") != 1 {
		t.Fatal("deployed version")
	}
	// Test tier is untouched until transport.
	test, _ := p.System(TierTest)
	if _, err := test.Engine.ExecuteContext(context.Background(), `SELECT * FROM readings`); err == nil {
		t.Fatal("test tier must not have the table yet")
	}
	if err := p.Transport(TierDev, TierTest); err != nil {
		t.Fatal(err)
	}
	res, err = test.Engine.ExecuteContext(context.Background(), `SELECT COUNT(*) FROM readings`)
	if err != nil || res.Rows[0][0].Int() != 1 {
		t.Fatalf("transport: %v %v", res, err)
	}
	if err := p.Transport(TierProd, TierTest); err == nil {
		t.Fatal("transport from empty tier must error")
	}
}

func TestDeployAtomicCompensation(t *testing.T) {
	p := newPlatform(t)
	p.SaveArtifact("good", ArtifactDDL, `CREATE TABLE ok1 (a BIGINT)`)
	p.SaveArtifact("bad", ArtifactDDL, `CREATE TABLE ok2 (a BIGINT); CREATE BROKEN SYNTAX`)
	if err := p.Deploy(TierDev, "good", "bad"); err == nil {
		t.Fatal("broken deploy must fail")
	}
	dev, _ := p.System(TierDev)
	// Everything created during the failed deployment is rolled back.
	if _, err := dev.Engine.ExecuteContext(context.Background(), `SELECT * FROM ok1`); err == nil {
		t.Fatal("ok1 must be compensated away")
	}
	if _, err := dev.Engine.ExecuteContext(context.Background(), `SELECT * FROM ok2`); err == nil {
		t.Fatal("ok2 must be compensated away")
	}
	if p.DeployedVersion(TierDev, "good") != 0 {
		t.Fatal("failed deploy must not record versions")
	}
	if err := p.Deploy(TierDev, "missing"); err == nil {
		t.Fatal("unknown artifact must error")
	}
}

func TestCCLArtifactDeployment(t *testing.T) {
	p := newPlatform(t)
	dev, _ := p.System(TierDev)
	_, err := dev.ESP.CreateInputStream("events", value.NewSchema(
		value.Column{Name: "cell", Kind: value.KindInt},
		value.Column{Name: "sig", Kind: value.KindDouble},
	))
	if err != nil {
		t.Fatal(err)
	}
	p.SaveArtifact("monitoring", ArtifactCCL,
		"WINDOW health AS SELECT cell, AVG(sig) FROM events GROUP BY cell KEEP 5 MINUTES")
	if err := p.Deploy(TierDev, "monitoring"); err != nil {
		t.Fatal(err)
	}
	if _, ok := dev.ESP.Window("health"); !ok {
		t.Fatal("window not deployed")
	}
	p.SaveArtifact("badccl", ArtifactCCL, "NOT A WINDOW LINE")
	if err := p.Deploy(TierDev, "badccl"); err == nil {
		t.Fatal("bad CCL must error")
	}
}

func TestUnifiedCredentials(t *testing.T) {
	p := newPlatform(t)
	p.Users().AddUser("ana", "pw1", RoleAnalyst)
	p.Users().AddUser("ing", "pw2", RoleIngestor)
	p.Users().AddUser("root", "pw3", RoleAdmin)

	if _, err := p.Login(TierDev, "ana", "wrong"); err == nil {
		t.Fatal("bad password must fail")
	}
	dev, _ := p.System(TierDev)
	if _, err := dev.Engine.ExecuteContext(context.Background(), `CREATE TABLE t (a BIGINT)`); err != nil {
		t.Fatal(err)
	}
	_, err := dev.ESP.CreateInputStream("s", value.NewSchema(value.Column{Name: "a", Kind: value.KindInt}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ESP.CreateWindow("w", `SELECT * FROM s KEEP 10 ROWS`); err != nil {
		t.Fatal(err)
	}

	ana, err := p.Login(TierDev, "ana", "pw1")
	if err != nil {
		t.Fatal(err)
	}
	// Analyst: can query engine and windows, cannot publish.
	if _, err := ana.Query(`SELECT COUNT(*) FROM t`); err != nil {
		t.Fatal(err)
	}
	if _, err := ana.WindowRows("w", time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := ana.PublishEvent("s", value.Row{value.NewInt(1)}, time.Now()); err == nil {
		t.Fatal("analyst must not publish")
	}
	// Ingestor: can publish, cannot query — same credential store across
	// both components.
	ing, _ := p.Login(TierDev, "ing", "pw2")
	if err := ing.PublishEvent("s", value.Row{value.NewInt(1)}, time.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := ing.Query(`SELECT 1`); err == nil {
		t.Fatal("ingestor must not query")
	}
	// Admin can do everything.
	root, _ := p.Login(TierDev, "root", "pw3")
	if _, err := root.Query(`SELECT 1`); err != nil {
		t.Fatal(err)
	}
	if err := root.PublishEvent("s", value.Row{value.NewInt(2)}, time.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestSynchronizedBackupRestore(t *testing.T) {
	p := newPlatform(t)
	dev, _ := p.System(TierDev)
	// One in-memory table, one extended table, one hybrid table with aging.
	script := `
		CREATE TABLE hot (id BIGINT, v VARCHAR(10));
		CREATE TABLE archive (id BIGINT, payload VARCHAR(20)) USING EXTENDED STORAGE;
		CREATE TABLE sales (id BIGINT, d DATE, cold BOOLEAN)
			PARTITION BY RANGE (d) (
				PARTITION VALUES < DATE '2014-01-01' USING EXTENDED STORAGE,
				PARTITION OTHERS)
			WITH AGING ON (cold);
		INSERT INTO hot VALUES (1,'a'), (2,'b');
		INSERT INTO archive VALUES (10,'old-1'), (11,'old-2');
		INSERT INTO sales VALUES (1, DATE '2013-06-01', FALSE), (2, DATE '2015-06-01', FALSE)`
	if _, err := dev.Engine.ExecuteContext(context.Background(), script, engine.WithScript()); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := p.Backup(TierDev, dir); err != nil {
		t.Fatal(err)
	}
	// Restore into a fresh tier.
	if err := p.Restore(TierTest, dir); err != nil {
		t.Fatal(err)
	}
	test, _ := p.System(TierTest)
	for _, q := range []struct {
		sql  string
		want int64
	}{
		{`SELECT COUNT(*) FROM hot`, 2},
		{`SELECT COUNT(*) FROM archive`, 2},
		{`SELECT COUNT(*) FROM sales`, 2},
	} {
		res, err := test.Engine.ExecuteContext(context.Background(), q.sql)
		if err != nil || res.Rows[0][0].Int() != q.want {
			t.Fatalf("%s: %v %v", q.sql, res, err)
		}
	}
	// Placement survives: archive is still an extended table, sales is
	// still hybrid with its cold partition populated by range.
	meta, _ := test.Engine.Catalog().Table("archive")
	if meta.Placement.String() != "EXTENDED" {
		t.Fatalf("archive placement = %v", meta.Placement)
	}
	parts, err := test.Engine.PartitionRowCounts("sales")
	if err != nil {
		t.Fatal(err)
	}
	if !parts[0].Cold || parts[0].Rows != 1 || parts[1].Rows != 1 {
		t.Fatalf("restored partitions = %+v", parts)
	}
	// Aging still works after restore.
	if _, err := test.Engine.ExecuteContext(context.Background(), `UPDATE sales SET cold = TRUE WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	moved, err := test.Engine.RunAging("sales")
	if err != nil || moved != 1 {
		t.Fatalf("aging after restore: %d %v", moved, err)
	}
}

func TestBackupIsSnapshotConsistent(t *testing.T) {
	p := newPlatform(t)
	dev, _ := p.System(TierDev)
	if _, err := dev.Engine.ExecuteContext(context.Background(), `CREATE TABLE t (a BIGINT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Engine.ExecuteContext(context.Background(), `INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := p.Backup(TierDev, dir); err != nil {
		t.Fatal(err)
	}
	// Post-backup writes must not appear in the restore.
	if _, err := dev.Engine.ExecuteContext(context.Background(), `INSERT INTO t VALUES (2)`); err != nil {
		t.Fatal(err)
	}
	if err := p.Restore(TierProd, dir); err != nil {
		t.Fatal(err)
	}
	prod, _ := p.System(TierProd)
	res, _ := prod.Engine.ExecuteContext(context.Background(), `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("restored rows = %v", res.Rows)
	}
}
