package platform

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hana/internal/catalog"
	"hana/internal/engine"
	"hana/internal/value"
)

// Backups are coordinated across the in-memory engine and the extended
// store: every table — hot, extended or hybrid — is exported under one
// MVCC snapshot, so the restored system is transactionally consistent
// across engines (§2: "backup and recovery between the main-memory based
// SAP HANA core database and the extended IQ store is synchronized
// providing a consistent recovery mechanism").

// backupManifest records the backup content.
type backupManifest struct {
	Tier      string        `json:"tier"`
	CreatedAt time.Time     `json:"created_at"`
	Tables    []backupTable `json:"tables"`
}

type backupTable struct {
	Name        string                  `json:"name"`
	Cols        []value.Column          `json:"cols"`
	Placement   catalog.Placement       `json:"placement"`
	PartitionBy string                  `json:"partition_by,omitempty"`
	Partitions  []catalog.PartitionMeta `json:"partitions,omitempty"`
	AgingColumn string                  `json:"aging_column,omitempty"`
	Rows        int64                   `json:"rows"`
}

// Backup exports every table of the tier under one snapshot into dir.
//
// Deprecated: use BackupCtx.
func (p *Platform) Backup(tier Tier, dir string) error {
	return p.BackupCtx(context.Background(), tier, dir)
}

// BackupCtx is Backup under the caller's context: every per-table snapshot
// SELECT threads it, so a canceled backup stops between tables.
func (p *Platform) BackupCtx(ctx context.Context, tier Tier, dir string) error {
	sys, err := p.System(tier)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// One transaction = one snapshot for every table, spanning the
	// in-memory store and the extended store.
	tx := sys.Engine.Begin()
	defer func() { _ = sys.Engine.Rollback(tx) }()

	man := backupManifest{Tier: string(tier), CreatedAt: time.Now()}
	for _, name := range sys.Engine.Catalog().TableNames() {
		meta, _ := sys.Engine.Catalog().Table(name)
		res, err := sys.Engine.ExecuteContext(ctx, "SELECT * FROM "+quoteIdent(name), engine.WithTx(tx))
		if err != nil {
			return fmt.Errorf("backup %s: %w", name, err)
		}
		f, err := os.Create(filepath.Join(dir, strings.ToLower(name)+".rows"))
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		for _, row := range res.Rows {
			if err := enc.Encode(row); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		man.Tables = append(man.Tables, backupTable{
			Name:        meta.Name,
			Cols:        meta.Schema.Cols,
			Placement:   meta.Placement,
			PartitionBy: meta.PartitionBy,
			Partitions:  meta.Partitions,
			AgingColumn: meta.AgingColumn,
			Rows:        int64(len(res.Rows)),
		})
	}
	data, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644)
}

// Restore loads a backup into a tier, recreating every table (including
// its placement: extended-storage tables go back to the extended store,
// hybrid partitioning and aging columns are preserved).
//
// Deprecated: use RestoreCtx.
func (p *Platform) Restore(tier Tier, dir string) error {
	return p.RestoreCtx(context.Background(), tier, dir)
}

// RestoreCtx is Restore under the caller's context: every recreated
// table's DDL threads it, so a canceled restore stops between tables.
func (p *Platform) RestoreCtx(ctx context.Context, tier Tier, dir string) error {
	sys, err := p.System(tier)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	var man backupManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return err
	}
	for _, bt := range man.Tables {
		ddl := restoreDDL(bt)
		if _, err := sys.Engine.ExecuteContext(ctx, ddl); err != nil {
			return fmt.Errorf("restore %s: %w", bt.Name, err)
		}
		f, err := os.Open(filepath.Join(dir, strings.ToLower(bt.Name)+".rows"))
		if err != nil {
			return err
		}
		dec := json.NewDecoder(f)
		var rows []value.Row
		for dec.More() {
			var row value.Row
			if err := dec.Decode(&row); err != nil {
				f.Close()
				return fmt.Errorf("restore %s: %w", bt.Name, err)
			}
			rows = append(rows, row)
		}
		f.Close()
		if err := sys.Engine.BulkLoad(bt.Name, rows); err != nil {
			return fmt.Errorf("restore %s: %w", bt.Name, err)
		}
	}
	return nil
}

// restoreDDL regenerates the CREATE TABLE statement from catalog metadata.
func restoreDDL(bt backupTable) string {
	var b strings.Builder
	b.WriteString("CREATE ")
	if bt.Placement == catalog.PlacementRow {
		b.WriteString("ROW ")
	}
	b.WriteString("TABLE " + quoteIdent(bt.Name) + " (")
	for i, c := range bt.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(quoteIdent(c.Name) + " " + c.Kind.String())
		if !c.Nullable {
			b.WriteString(" NOT NULL")
		}
	}
	b.WriteString(")")
	switch bt.Placement {
	case catalog.PlacementExtended:
		b.WriteString(" USING EXTENDED STORAGE")
	case catalog.PlacementHybrid:
		b.WriteString(" PARTITION BY RANGE (" + quoteIdent(bt.PartitionBy) + ") (")
		for i, pm := range bt.Partitions {
			if i > 0 {
				b.WriteString(", ")
			}
			if pm.Others {
				b.WriteString("PARTITION OTHERS")
			} else {
				b.WriteString("PARTITION VALUES < " + pm.UpperBound.SQLLiteral())
			}
			if pm.Cold {
				b.WriteString(" USING EXTENDED STORAGE")
			}
		}
		b.WriteString(")")
	}
	if bt.AgingColumn != "" {
		b.WriteString(" WITH AGING ON (" + quoteIdent(bt.AgingColumn) + ")")
	}
	return b.String()
}

func quoteIdent(s string) string { return `"` + strings.ReplaceAll(s, `"`, `""`) + `"` }
