// Package platform implements the umbrella "SAP HANA data platform" of §2:
// the added-Value services above the individual engines —
//
//   - an integrated repository of application artifacts with atomic
//     deployment and dev→test→prod transport ("application code in
//     combination with database schema and pre-loaded content can be
//     atomically deployed or transported from development via test to a
//     production system");
//   - single control of access rights with credentials shared across
//     components ("a query in the SAP HANA event stream processor may run
//     with the same credentials as a corresponding query in the SAP HANA
//     core database system");
//   - synchronized backup and recovery across the in-memory engine and the
//     extended store ("backup and recovery … is synchronized providing a
//     consistent recovery mechanism").
package platform

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hana/internal/engine"
	"hana/internal/esp"
	"hana/internal/value"
)

// Tier is one system in the transport landscape.
type Tier string

// Standard landscape tiers.
const (
	TierDev  Tier = "DEV"
	TierTest Tier = "TEST"
	TierProd Tier = "PROD"
)

// ArtifactKind classifies repository artifacts.
type ArtifactKind string

// Artifact kinds.
const (
	ArtifactDDL    ArtifactKind = "ddl"    // SQL schema objects
	ArtifactCCL    ArtifactKind = "ccl"    // ESP continuous queries
	ArtifactScript ArtifactKind = "script" // SQL content/seed scripts
	ArtifactMRJob  ArtifactKind = "mr-job" // map-reduce driver references
)

// Artifact is one versioned development object.
type Artifact struct {
	Name    string
	Kind    ArtifactKind
	Content string // SQL/CCL text, or driver class for MR jobs
	Version int
}

// System is one tier's runtime: a core engine and an ESP project sharing
// the platform credentials.
type System struct {
	Tier   Tier
	Engine *engine.Engine
	ESP    *esp.Project

	deployed    map[string]int // artifact name → deployed version
	deployOrder []string       // first-deployment order, preserved by transport
}

// Platform is the single point of control.
type Platform struct {
	mu      sync.Mutex
	systems map[Tier]*System
	repo    map[string]*Artifact
	users   *Credentials
}

// New creates a platform with the given tiers, each backed by its own
// engine instance (extended storage under dir/<tier>).
func New(baseDir string, tiers ...Tier) *Platform {
	if len(tiers) == 0 {
		tiers = []Tier{TierDev, TierTest, TierProd}
	}
	p := &Platform{
		systems: map[Tier]*System{},
		repo:    map[string]*Artifact{},
		users:   NewCredentials(),
	}
	for _, t := range tiers {
		p.systems[t] = &System{
			Tier:     t,
			Engine:   engine.New(engine.Config{ExtendedStorageDir: fmt.Sprintf("%s/%s/extstore", baseDir, strings.ToLower(string(t)))}),
			ESP:      esp.NewProject(),
			deployed: map[string]int{},
		}
	}
	return p
}

// System returns a tier's runtime.
func (p *Platform) System(t Tier) (*System, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.systems[t]
	if !ok {
		return nil, fmt.Errorf("platform: tier %s not configured", t)
	}
	return s, nil
}

// --- artifact repository and lifecycle management ---

// SaveArtifact stores (or versions up) an artifact in the repository.
func (p *Platform) SaveArtifact(name string, kind ArtifactKind, content string) *Artifact {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.repo[strings.ToUpper(name)]
	if !ok {
		a = &Artifact{Name: name, Kind: kind}
		p.repo[strings.ToUpper(name)] = a
	}
	a.Kind = kind
	a.Content = content
	a.Version++
	return a
}

// Artifact fetches a repository entry.
func (p *Platform) Artifact(name string) (*Artifact, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.repo[strings.ToUpper(name)]
	return a, ok
}

// Artifacts lists repository entries sorted by name.
func (p *Platform) Artifacts() []*Artifact {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Artifact, 0, len(p.repo))
	for _, a := range p.repo {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Deploy applies a set of artifacts to a tier atomically: if any artifact
// fails, previously-applied DDL of this deployment is rolled back by
// dropping the objects it created (compensation), and the deployment
// records are not updated.
//
// Deprecated: use DeployCtx.
func (p *Platform) Deploy(tier Tier, names ...string) error {
	return p.DeployCtx(context.Background(), tier, names...)
}

// DeployCtx is Deploy under the caller's context: the context threads
// through every artifact's DDL execution, so a canceled deployment stops
// between statements and its compensation still runs.
func (p *Platform) DeployCtx(ctx context.Context, tier Tier, names ...string) error {
	sys, err := p.System(tier)
	if err != nil {
		return err
	}
	p.mu.Lock()
	arts := make([]*Artifact, 0, len(names))
	for _, n := range names {
		a, ok := p.repo[strings.ToUpper(n)]
		if !ok {
			p.mu.Unlock()
			return fmt.Errorf("platform: artifact %s not in repository", n)
		}
		arts = append(arts, a)
	}
	p.mu.Unlock()

	var created []string // table names created, for compensation
	for _, a := range arts {
		if err := p.applyArtifact(ctx, sys, a, &created); err != nil {
			for i := len(created) - 1; i >= 0; i-- {
				// Compensation must run even when the deploy failed because
				// ctx was canceled — a half-deployed tier is worse than a
				// slow rollback.
				//lint:ignore ctxflow compensation DROPs must survive a canceled deploy ctx
				_, _ = sys.Engine.ExecuteContext(context.Background(), "DROP TABLE IF EXISTS "+created[i])
			}
			return fmt.Errorf("platform: deploying %s to %s: %w", a.Name, tier, err)
		}
	}
	p.mu.Lock()
	for _, a := range arts {
		key := strings.ToUpper(a.Name)
		if _, seen := sys.deployed[key]; !seen {
			sys.deployOrder = append(sys.deployOrder, key)
		}
		sys.deployed[key] = a.Version
	}
	p.mu.Unlock()
	return nil
}

func (p *Platform) applyArtifact(ctx context.Context, sys *System, a *Artifact, created *[]string) error {
	switch a.Kind {
	case ArtifactDDL, ArtifactScript:
		// Track CREATE TABLE statements for compensation.
		for _, stmtText := range strings.Split(a.Content, ";") {
			trimmed := strings.TrimSpace(stmtText)
			if trimmed == "" {
				continue
			}
			if _, err := sys.Engine.ExecuteContext(ctx, trimmed); err != nil {
				return err
			}
			upper := strings.ToUpper(trimmed)
			if strings.HasPrefix(upper, "CREATE TABLE") || strings.HasPrefix(upper, "CREATE COLUMN TABLE") ||
				strings.HasPrefix(upper, "CREATE ROW TABLE") || strings.HasPrefix(upper, "CREATE FLEXIBLE TABLE") {
				fields := strings.Fields(trimmed)
				for i, f := range fields {
					if strings.EqualFold(f, "TABLE") && i+1 < len(fields) {
						name := strings.TrimFunc(fields[i+1], func(r rune) bool { return r == '(' || r == '"' })
						*created = append(*created, name)
						break
					}
				}
			}
		}
		return nil
	case ArtifactCCL:
		// Content: "WINDOW <name> AS <select … keep …>" lines.
		for _, line := range strings.Split(a.Content, "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || !strings.EqualFold(fields[0], "WINDOW") || !strings.EqualFold(fields[2], "AS") {
				return fmt.Errorf("bad CCL artifact line %q (want WINDOW <name> AS <select>)", line)
			}
			if _, err := sys.ESP.CreateWindow(fields[1], fields[3]); err != nil {
				return err
			}
		}
		return nil
	case ArtifactMRJob:
		// MR job artifacts are references; nothing to instantiate here —
		// the virtual function DDL that uses them is a DDL artifact.
		return nil
	}
	return fmt.Errorf("unknown artifact kind %s", a.Kind)
}

// DeployedVersion reports the artifact version running on a tier (0 = not
// deployed).
func (p *Platform) DeployedVersion(tier Tier, name string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	sys, ok := p.systems[tier]
	if !ok {
		return 0
	}
	return sys.deployed[strings.ToUpper(name)]
}

// Transport promotes every artifact deployed on from (at its deployed
// version) to the to tier — "transported from development via test to a
// production system".
//
// Deprecated: use TransportCtx.
func (p *Platform) Transport(from, to Tier) error {
	return p.TransportCtx(context.Background(), from, to)
}

// TransportCtx is Transport under the caller's context.
func (p *Platform) TransportCtx(ctx context.Context, from, to Tier) error {
	p.mu.Lock()
	src, ok := p.systems[from]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("platform: tier %s not configured", from)
	}
	// Replay in original deployment order so dependencies (schema before
	// content) hold on the target tier.
	names := append([]string{}, src.deployOrder...)
	p.mu.Unlock()
	if len(names) == 0 {
		return fmt.Errorf("platform: nothing deployed on %s", from)
	}
	return p.DeployCtx(ctx, to, names...)
}

// --- single control of access rights ---

// Role grants component access.
type Role string

// Roles.
const (
	RoleAdmin    Role = "admin"
	RoleAnalyst  Role = "analyst"  // query engine + read ESP windows
	RoleIngestor Role = "ingestor" // publish to ESP streams
)

// Credentials is the platform-wide user registry: one credential works
// against every component.
type Credentials struct {
	mu    sync.Mutex
	users map[string]credEntry
}

type credEntry struct {
	password string
	roles    map[Role]bool
}

// NewCredentials creates an empty registry.
func NewCredentials() *Credentials {
	return &Credentials{users: map[string]credEntry{}}
}

// Users exposes the platform registry.
func (p *Platform) Users() *Credentials { return p.users }

// AddUser registers a user with roles.
func (c *Credentials) AddUser(user, password string, roles ...Role) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := credEntry{password: password, roles: map[Role]bool{}}
	for _, r := range roles {
		e.roles[r] = true
	}
	c.users[strings.ToLower(user)] = e
}

// Authenticate verifies a credential.
func (c *Credentials) Authenticate(user, password string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.users[strings.ToLower(user)]
	return ok && e.password == password
}

// Authorize checks component access: "engine.query", "esp.publish",
// "esp.query", "platform.admin".
func (c *Credentials) Authorize(user string, action string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.users[strings.ToLower(user)]
	if !ok {
		return false
	}
	if e.roles[RoleAdmin] {
		return true
	}
	switch action {
	case "engine.query", "esp.query":
		return e.roles[RoleAnalyst]
	case "esp.publish":
		return e.roles[RoleIngestor]
	}
	return false
}

// Session is an authenticated handle running with the same credentials
// against every component.
type Session struct {
	user string
	sys  *System
	p    *Platform
}

// Login opens a session on a tier.
func (p *Platform) Login(tier Tier, user, password string) (*Session, error) {
	if !p.users.Authenticate(user, password) {
		return nil, fmt.Errorf("platform: authentication failed for %s", user)
	}
	sys, err := p.System(tier)
	if err != nil {
		return nil, err
	}
	return &Session{user: user, sys: sys, p: p}, nil
}

// Query runs SQL on the tier's engine under the session's credentials.
//
// Deprecated: use QueryCtx.
func (s *Session) Query(sql string) (*engine.Result, error) {
	return s.QueryCtx(context.Background(), sql)
}

// QueryCtx runs SQL on the tier's engine under the session's credentials
// and the caller's context.
func (s *Session) QueryCtx(ctx context.Context, sql string) (*engine.Result, error) {
	if !s.p.users.Authorize(s.user, "engine.query") {
		return nil, fmt.Errorf("platform: user %s is not authorized for engine.query", s.user)
	}
	return s.sys.Engine.ExecuteContext(ctx, sql)
}

// PublishEvent pushes an event into the tier's ESP under the same
// credentials.
func (s *Session) PublishEvent(stream string, row value.Row, ts time.Time) error {
	if !s.p.users.Authorize(s.user, "esp.publish") {
		return fmt.Errorf("platform: user %s is not authorized for esp.publish", s.user)
	}
	return s.sys.ESP.Publish(stream, row, ts)
}

// WindowRows reads an ESP window under the same credentials (the paper's
// example: "a query in the … ESP may run with the same credentials as a
// corresponding query in the … core database system").
func (s *Session) WindowRows(window string, now time.Time) (*value.Rows, error) {
	if !s.p.users.Authorize(s.user, "esp.query") {
		return nil, fmt.Errorf("platform: user %s is not authorized for esp.query", s.user)
	}
	w, ok := s.sys.ESP.Window(window)
	if !ok {
		return nil, fmt.Errorf("platform: window %s not found", window)
	}
	return w.Rows(now)
}
