package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"

	"hana/internal/expr"
	"hana/internal/value"
)

func mustSelect(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("expected SelectStmt, got %T", st)
	}
	return sel
}

func TestSimpleSelect(t *testing.T) {
	s := mustSelect(t, "SELECT product_name, brand_name FROM VIRTUAL_PRODUCT")
	if len(s.Items) != 2 {
		t.Fatalf("items = %d", len(s.Items))
	}
	tr, ok := s.From.(*TableRef)
	if !ok || tr.Name() != "VIRTUAL_PRODUCT" {
		t.Fatalf("from = %#v", s.From)
	}
}

func TestSelectStarAndLimit(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM t LIMIT 10")
	if !s.Items[0].Star || s.Limit != 10 {
		t.Fatal("star/limit parse failed")
	}
	s = mustSelect(t, "SELECT TOP 5 * FROM t")
	if s.Limit != 5 {
		t.Fatal("TOP parse failed")
	}
	s = mustSelect(t, "SELECT t.* FROM t")
	if !s.Items[0].Star || s.Items[0].Qual != "t" {
		t.Fatal("qualified star parse failed")
	}
}

func TestPaperJoinQuery(t *testing.T) {
	// The example query from §4.4 of the paper.
	s := mustSelect(t, `SELECT c_custkey, c_name, o_orderkey, o_orderstatus
		FROM customer JOIN orders ON c_custkey = o_custkey
		WHERE c_mktsegment = 'HOUSEHOLD'`)
	j, ok := s.From.(*JoinExpr)
	if !ok || j.Type != JoinInner {
		t.Fatalf("join parse: %#v", s.From)
	}
	if j.On == nil || s.Where == nil {
		t.Fatal("missing ON/WHERE")
	}
}

func TestRemoteCacheHint(t *testing.T) {
	s := mustSelect(t, `SELECT a FROM t WHERE a > 1 WITH HINT (USE_REMOTE_CACHE)`)
	if !s.HasHint("use_remote_cache") {
		t.Fatal("hint not recognized")
	}
	if s.HasHint("NO_SUCH") {
		t.Fatal("phantom hint")
	}
}

func TestGroupByHavingOrderBy(t *testing.T) {
	s := mustSelect(t, `SELECT l_orderkey, SUM(l_quantity) q FROM lineitem
		GROUP BY l_orderkey HAVING SUM(l_quantity) > 300 ORDER BY q DESC, l_orderkey`)
	if len(s.GroupBy) != 1 || s.Having == nil || len(s.OrderBy) != 2 {
		t.Fatal("clauses missing")
	}
	if !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatal("order direction")
	}
	if s.Items[1].Alias != "q" {
		t.Fatalf("alias = %q", s.Items[1].Alias)
	}
}

func TestDateLiteralAndBetween(t *testing.T) {
	s := mustSelect(t, `SELECT * FROM lineitem WHERE l_shipdate >= DATE '1994-01-01'
		AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24`)
	conjs := expr.SplitConjuncts(s.Where)
	if len(conjs) != 3 {
		t.Fatalf("conjuncts = %d", len(conjs))
	}
	if _, ok := conjs[1].(*expr.Between); !ok {
		t.Fatalf("expected Between, got %T", conjs[1])
	}
}

func TestInListAndSubquery(t *testing.T) {
	s := mustSelect(t, `SELECT * FROM orders WHERE o_orderpriority IN ('1-URGENT', '2-HIGH')`)
	if _, ok := s.Where.(*expr.In); !ok {
		t.Fatalf("IN list: %T", s.Where)
	}
	s = mustSelect(t, `SELECT * FROM orders WHERE o_orderkey IN
		(SELECT l_orderkey FROM lineitem GROUP BY l_orderkey HAVING SUM(l_quantity) > 300)`)
	iq, ok := s.Where.(*InSubqueryExpr)
	if !ok {
		t.Fatalf("IN subquery: %T", s.Where)
	}
	if len(iq.Sel.GroupBy) != 1 {
		t.Fatal("inner group by missing")
	}
	s = mustSelect(t, `SELECT * FROM partsupp WHERE ps_suppkey NOT IN
		(SELECT s_suppkey FROM supplier WHERE s_comment LIKE '%Customer%Complaints%')`)
	iq, ok = s.Where.(*InSubqueryExpr)
	if !ok || !iq.Negate {
		t.Fatalf("NOT IN subquery: %#v", s.Where)
	}
}

func TestExistsCorrelated(t *testing.T) {
	// TPC-H Q4 pattern.
	s := mustSelect(t, `SELECT o_orderpriority, COUNT(*) AS order_count FROM orders
		WHERE o_orderdate >= DATE '1993-07-01' AND EXISTS (
			SELECT * FROM lineitem WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
		GROUP BY o_orderpriority`)
	conjs := expr.SplitConjuncts(s.Where)
	if len(conjs) != 2 {
		t.Fatalf("conjuncts = %d", len(conjs))
	}
	ex, ok := conjs[1].(*ExistsExpr)
	if !ok || ex.Negate {
		t.Fatalf("EXISTS: %T", conjs[1])
	}
}

func TestLeftOuterJoinWithComplexOn(t *testing.T) {
	// TPC-H Q13 pattern.
	s := mustSelect(t, `SELECT c_custkey, COUNT(o_orderkey) FROM customer
		LEFT OUTER JOIN orders ON c_custkey = o_custkey AND o_comment NOT LIKE '%special%requests%'
		GROUP BY c_custkey`)
	j := s.From.(*JoinExpr)
	if j.Type != JoinLeft {
		t.Fatal("left join")
	}
	if len(expr.SplitConjuncts(j.On)) != 2 {
		t.Fatal("compound ON")
	}
}

func TestCommaJoin(t *testing.T) {
	s := mustSelect(t, `SELECT * FROM customer, orders, lineitem
		WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey`)
	j, ok := s.From.(*JoinExpr)
	if !ok || j.Type != JoinCross {
		t.Fatalf("comma join: %#v", s.From)
	}
	if _, ok := j.L.(*JoinExpr); !ok {
		t.Fatal("left-deep comma join expected")
	}
}

func TestSubqueryInFrom(t *testing.T) {
	s := mustSelect(t, `SELECT avg(c_count) FROM (SELECT c_custkey, COUNT(o_orderkey) c_count
		FROM customer LEFT OUTER JOIN orders ON c_custkey = o_custkey GROUP BY c_custkey) c_orders`)
	sq, ok := s.From.(*SubqueryTable)
	if !ok || sq.Alias != "c_orders" {
		t.Fatalf("derived table: %#v", s.From)
	}
}

func TestCaseExpr(t *testing.T) {
	s := mustSelect(t, `SELECT SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
		THEN 1 ELSE 0 END) FROM orders`)
	f := s.Items[0].Expr.(*expr.Func)
	if _, ok := f.Args[0].(*expr.CaseWhen); !ok {
		t.Fatalf("CASE inside SUM: %T", f.Args[0])
	}
	// Simple CASE form.
	s = mustSelect(t, `SELECT CASE a WHEN 1 THEN 'one' ELSE 'other' END FROM t`)
	if _, ok := s.Items[0].Expr.(*expr.CaseWhen); !ok {
		t.Fatal("simple CASE")
	}
}

func TestCountDistinctStar(t *testing.T) {
	s := mustSelect(t, `SELECT COUNT(DISTINCT ps_suppkey), COUNT(*) FROM partsupp`)
	f0 := s.Items[0].Expr.(*expr.Func)
	if !f0.Distinct {
		t.Fatal("DISTINCT flag")
	}
	f1 := s.Items[1].Expr.(*expr.Func)
	if !f1.Star {
		t.Fatal("star flag")
	}
}

func TestTableFunctionInFrom(t *testing.T) {
	// §4.3 virtual function usage.
	s := mustSelect(t, `SELECT A.EQUIP_ID, B.PRESSURE FROM EQUIPMENTS A
		JOIN PLANT100_SENSOR_RECORDS() B ON A.EQUIP_ID = B.EQUIP_ID WHERE B.PRESSURE > 90`)
	j := s.From.(*JoinExpr)
	tf, ok := j.R.(*TableFuncRef)
	if !ok || tf.Name != "PLANT100_SENSOR_RECORDS" || tf.Alias != "B" {
		t.Fatalf("table function: %#v", j.R)
	}
}

func TestCreateTableExtendedStorage(t *testing.T) {
	st, err := Parse(`CREATE TABLE psa_data (id BIGINT PRIMARY KEY, payload VARCHAR(200), load_date DATE)
		USING EXTENDED STORAGE`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if ct.Storage != StorageExtended || ct.Hybrid {
		t.Fatalf("storage=%v hybrid=%v", ct.Storage, ct.Hybrid)
	}
	if !ct.Cols[0].PrimKey || !ct.Cols[0].NotNull {
		t.Fatal("primary key flags")
	}
	if ct.Cols[2].Kind != value.KindDate {
		t.Fatal("date column kind")
	}
}

func TestCreateHybridTableWithPartitions(t *testing.T) {
	st, err := Parse(`CREATE TABLE sales (id BIGINT, region VARCHAR(10), amount DOUBLE, sale_date DATE, cold BOOLEAN)
		USING HYBRID EXTENDED STORAGE
		PARTITION BY RANGE (sale_date) (
			PARTITION VALUES < DATE '2014-01-01' USING EXTENDED STORAGE,
			PARTITION OTHERS)
		WITH AGING ON (cold)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if !ct.Hybrid || ct.PartitionBy != "sale_date" || len(ct.Partitions) != 2 {
		t.Fatalf("%+v", ct)
	}
	if ct.Partitions[0].Storage != StorageExtended || ct.Partitions[1].Storage != StorageColumn {
		t.Fatal("partition storage classes")
	}
	if !ct.Partitions[1].Others {
		t.Fatal("OTHERS partition")
	}
	if ct.AgingColumn != "cold" {
		t.Fatalf("aging column = %q", ct.AgingColumn)
	}
}

func TestCreateRowAndFlexibleTable(t *testing.T) {
	st, err := Parse(`CREATE ROW TABLE config (k VARCHAR(50), v VARCHAR(200))`)
	if err != nil {
		t.Fatal(err)
	}
	if st.(*CreateTableStmt).Storage != StorageRow {
		t.Fatal("row storage")
	}
	st, err = Parse(`CREATE FLEXIBLE TABLE events (id BIGINT)`)
	if err != nil {
		t.Fatal(err)
	}
	if !st.(*CreateTableStmt).Flexible {
		t.Fatal("flexible flag")
	}
}

func TestCreateRemoteSourcePaperSyntax(t *testing.T) {
	// Verbatim from §4.2 of the paper.
	st, err := Parse(`CREATE REMOTE SOURCE HIVE1 ADAPTER "hiveodbc"
		CONFIGURATION 'DSN=hive1'
		WITH CREDENTIAL TYPE 'PASSWORD' USING 'user=dfuser;password=dfpass'`)
	if err != nil {
		t.Fatal(err)
	}
	rs := st.(*CreateRemoteSourceStmt)
	if rs.Name != "HIVE1" || rs.Adapter != "hiveodbc" || rs.Configuration != "DSN=hive1" {
		t.Fatalf("%+v", rs)
	}
	if rs.CredentialType != "PASSWORD" || rs.Credentials != "user=dfuser;password=dfpass" {
		t.Fatalf("%+v", rs)
	}
}

func TestCreateVirtualTablePaperSyntax(t *testing.T) {
	st, err := Parse(`CREATE VIRTUAL TABLE "VIRTUAL_PRODUCT" AT "HIVE1"."dflo"."dflo"."product"`)
	if err != nil {
		t.Fatal(err)
	}
	vt := st.(*CreateVirtualTableStmt)
	if vt.Name != "VIRTUAL_PRODUCT" || vt.Source != "HIVE1" || len(vt.Remote) != 3 {
		t.Fatalf("%+v", vt)
	}
	if vt.Remote[2] != "product" {
		t.Fatal("remote path")
	}
}

func TestCreateVirtualFunctionPaperSyntax(t *testing.T) {
	st, err := Parse(`CREATE VIRTUAL FUNCTION PLANT100_SENSOR_RECORDS()
		RETURNS TABLE (EQUIP_ID VARCHAR(30), PRESSURE DOUBLE)
		CONFIGURATION 'hana.mapred.driver.class = com.customer.hadoop.SensorMRDriver;
		hana.mapred.jobFiles = job.jar, library.jar;
		mapred.reducer.count = 1'
		AT MRSERVER`)
	if err != nil {
		t.Fatal(err)
	}
	vf := st.(*CreateVirtualFunctionStmt)
	if vf.Name != "PLANT100_SENSOR_RECORDS" || len(vf.Returns) != 2 || vf.Source != "MRSERVER" {
		t.Fatalf("%+v", vf)
	}
	if vf.Returns[1].Kind != value.KindDouble {
		t.Fatal("returns column kind")
	}
	if !strings.Contains(vf.Configuration, "SensorMRDriver") {
		t.Fatal("configuration text")
	}
}

func TestInsertVariants(t *testing.T) {
	st, err := Parse(`INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if len(ins.Values) != 2 || len(ins.Cols) != 2 {
		t.Fatalf("%+v", ins)
	}
	st, err = Parse(`INSERT INTO hot SELECT * FROM staging WHERE ok = TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	if st.(*InsertStmt).Select == nil {
		t.Fatal("insert-select")
	}
}

func TestUpdateDelete(t *testing.T) {
	st, err := Parse(`UPDATE t SET a = a + 1, b = 'x' WHERE id = 5`)
	if err != nil {
		t.Fatal(err)
	}
	up := st.(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("%+v", up)
	}
	st, err = Parse(`DELETE FROM t WHERE id = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if st.(*DeleteStmt).Where == nil {
		t.Fatal("delete where")
	}
}

func TestDropStatements(t *testing.T) {
	for _, c := range []struct{ sql, kind string }{
		{"DROP TABLE t", "TABLE"},
		{"DROP TABLE IF EXISTS t", "TABLE"},
		{"DROP REMOTE SOURCE HIVE1", "REMOTE SOURCE"},
		{"DROP VIRTUAL TABLE vt", "VIRTUAL TABLE"},
	} {
		st, err := Parse(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if st.(*DropStmt).Kind != c.kind {
			t.Fatalf("%s kind = %s", c.sql, st.(*DropStmt).Kind)
		}
	}
}

func TestKeepClauseCCL(t *testing.T) {
	s := mustSelect(t, `SELECT cell_id, AVG(signal) FROM network_events GROUP BY cell_id KEEP 5 MINUTES`)
	if s.Keep == nil || s.Keep.Unit != KeepMinutes || s.Keep.N != 5 {
		t.Fatalf("keep = %+v", s.Keep)
	}
	if s.Keep.Duration() != 5*60e6 {
		t.Fatal("duration micros")
	}
	s = mustSelect(t, `SELECT * FROM events KEEP 100 ROWS`)
	if s.Keep.Unit != KeepRows || s.Keep.Duration() != 0 {
		t.Fatal("row window")
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`
		CREATE TABLE a (x BIGINT);
		INSERT INTO a VALUES (1);
		-- a comment
		SELECT * FROM a;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
}

func TestParams(t *testing.T) {
	s := mustSelect(t, `SELECT * FROM t WHERE a = ? AND b = ?`)
	conjs := expr.SplitConjuncts(s.Where)
	p0 := conjs[0].(*expr.BinOp).R.(*expr.Param)
	p1 := conjs[1].(*expr.BinOp).R.(*expr.Param)
	if p0.Index != 0 || p1.Index != 1 {
		t.Fatalf("param indexes %d %d", p0.Index, p1.Index)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"FOO BAR",
		"CREATE TABLE t (a NOTATYPE)",
		"SELECT * FROM t WHERE a = 'unterminated",
		"INSERT INTO t",
		"SELECT * FROM t GROUP BY",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestRenderSelectRoundTrip(t *testing.T) {
	orig := `SELECT c_custkey, COUNT(*) AS n FROM customer JOIN orders ON c_custkey = o_custkey WHERE c_mktsegment = 'HOUSEHOLD' GROUP BY c_custkey HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 10`
	s := mustSelect(t, orig)
	rendered := RenderSelect(s)
	// The rendered text must parse back to an equivalent statement.
	s2 := mustSelect(t, rendered)
	if RenderSelect(s2) != rendered {
		t.Fatalf("render not stable:\n%s\n%s", rendered, RenderSelect(s2))
	}
	for _, want := range []string{"GROUP BY", "HAVING", "ORDER BY", "LIMIT 10", "'HOUSEHOLD'"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered %q missing %q", rendered, want)
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	s := mustSelect(t, `SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3`)
	or, ok := s.Where.(*expr.BinOp)
	if !ok || or.Op != expr.OpOr {
		t.Fatalf("top must be OR: %#v", s.Where)
	}
	// Arithmetic: 1 + 2 * 3 = 7.
	s = mustSelect(t, `SELECT 1 + 2 * 3`)
	v, err := s.Items[0].Expr.Eval(nil)
	if err != nil || v.Int() != 7 {
		t.Fatalf("precedence eval: %v %v", v, err)
	}
	// Parens: (1 + 2) * 3 = 9.
	s = mustSelect(t, `SELECT (1 + 2) * 3`)
	v, _ = s.Items[0].Expr.Eval(nil)
	if v.Int() != 9 {
		t.Fatal("paren precedence")
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	s := mustSelect(t, `SELECT "weird col" FROM "My Table"`)
	if s.From.(*TableRef).Name() != "My Table" {
		t.Fatal("quoted table name")
	}
	if s.Items[0].Expr.(*expr.ColRef).Name != "weird col" {
		t.Fatal("quoted column name")
	}
}

func TestNegativeNumbersFolded(t *testing.T) {
	s := mustSelect(t, `SELECT * FROM t WHERE a > -5 AND b < -2.5`)
	conjs := expr.SplitConjuncts(s.Where)
	lit := conjs[0].(*expr.BinOp).R.(*expr.Literal)
	if lit.Val.Int() != -5 {
		t.Fatal("negative int literal")
	}
}

func TestParserNeverPanics(t *testing.T) {
	// Arbitrary input must produce a value or an error, never a panic.
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		_, _ = ParseExpr(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Targeted nasties.
	for _, s := range []string{
		"SELECT (((((", "SELECT * FROM t WHERE a IN (", "'", `"`,
		"SELECT CASE", "CREATE TABLE t (", ";;;;", "SELECT -", "SELECT ?",
		"SELECT * FROM t ORDER BY", "SELECT a FROM t KEEP", "\x00\x01",
		"SELECT 99999999999999999999999999999",
	} {
		_, _ = Parse(s)
	}
}

func TestAlterTableParse(t *testing.T) {
	st, err := Parse(`ALTER TABLE t ADD (b VARCHAR(10), c DOUBLE)`)
	if err != nil {
		t.Fatal(err)
	}
	at := st.(*AlterTableStmt)
	if at.Table != "t" || len(at.Add) != 2 || at.Add[1].Kind != value.KindDouble {
		t.Fatalf("%+v", at)
	}
	if _, err := Parse(`ALTER TABLE t DROP x`); err == nil {
		t.Fatal("unsupported ALTER must error")
	}
}

func TestCommentsInsideStatements(t *testing.T) {
	s := mustSelect(t, `SELECT a /* inline
		comment */ FROM t -- trailing
		WHERE a > 1`)
	if s.Where == nil {
		t.Fatal("comment handling")
	}
}
