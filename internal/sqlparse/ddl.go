package sqlparse

import (
	"strconv"
	"strings"

	"hana/internal/expr"
	"hana/internal/value"
)

// parseCreate dispatches the CREATE statements of the dialect.
func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.matchKws("REMOTE", "SOURCE"):
		return p.parseCreateRemoteSource()
	case p.matchKws("VIRTUAL", "TABLE"):
		return p.parseCreateVirtualTable()
	case p.matchKws("VIRTUAL", "FUNCTION"):
		return p.parseCreateVirtualFunction()
	case p.matchKws("ROW", "TABLE"):
		return p.parseCreateTable(StorageRow, false)
	case p.matchKws("COLUMN", "TABLE"):
		return p.parseCreateTable(StorageColumn, false)
	case p.matchKws("FLEXIBLE", "TABLE"):
		return p.parseCreateTable(StorageColumn, true)
	case p.matchKw("TABLE"):
		return p.parseCreateTable(StorageColumn, false)
	}
	return nil, p.errorf("unsupported CREATE %q", p.peek().text)
}

func (p *parser) parseCreateTable(storage StorageClass, flexible bool) (Statement, error) {
	st := &CreateTableStmt{Storage: storage, Flexible: flexible}
	if p.matchKws("IF", "NOT", "EXISTS") {
		st.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, col)
		if !p.matchPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	// USING [HYBRID] EXTENDED STORAGE
	if p.matchKw("USING") {
		if p.matchKw("HYBRID") {
			st.Hybrid = true
		}
		if err := p.expectKw("EXTENDED"); err != nil {
			return nil, err
		}
		if err := p.expectKw("STORAGE"); err != nil {
			return nil, err
		}
		st.Storage = StorageExtended
	}
	// PARTITION BY RANGE (col) (PARTITION VALUES < lit [USING EXTENDED STORAGE], …, PARTITION OTHERS […])
	if p.matchKws("PARTITION", "BY") {
		if err := p.expectKw("RANGE"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.PartitionBy = col
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			if err := p.expectKw("PARTITION"); err != nil {
				return nil, err
			}
			var pd PartitionDef
			if p.matchKw("OTHERS") {
				pd.Others = true
			} else {
				if err := p.expectKw("VALUES"); err != nil {
					return nil, err
				}
				if err := p.expectPunct("<"); err != nil {
					return nil, err
				}
				bound, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				pd.Bound = bound
			}
			if p.matchKw("USING") {
				if err := p.expectKw("EXTENDED"); err != nil {
					return nil, err
				}
				if err := p.expectKw("STORAGE"); err != nil {
					return nil, err
				}
				pd.Storage = StorageExtended
			} else {
				pd.Storage = StorageColumn
			}
			st.Partitions = append(st.Partitions, pd)
			if !p.matchPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if len(st.Partitions) > 0 {
			st.Hybrid = true
		}
	}
	// WITH AGING ON (col): flag column controlling hot→cold movement.
	if p.matchKws("WITH", "AGING", "ON") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.AgingColumn = col
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	var cd ColumnDef
	name, err := p.ident()
	if err != nil {
		return cd, err
	}
	cd.Name = name
	tn, err := p.typeName()
	if err != nil {
		return cd, err
	}
	cd.TypeName = tn
	k, ok := value.KindFromSQL(tn)
	if !ok {
		return cd, p.errorf("unknown column type %q", tn)
	}
	cd.Kind = k
	for {
		switch {
		case p.matchKws("NOT", "NULL"):
			cd.NotNull = true
		case p.matchKws("PRIMARY", "KEY"):
			cd.PrimKey = true
			cd.NotNull = true
		case p.matchKw("NULL"):
			// explicit nullable, default
		default:
			return cd, nil
		}
	}
}

func (p *parser) parseCreateRemoteSource() (Statement, error) {
	st := &CreateRemoteSourceStmt{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectKw("ADAPTER"); err != nil {
		return nil, err
	}
	adapter := p.peek()
	if adapter.kind != tokIdent && adapter.kind != tokQuotedIdent && adapter.kind != tokString {
		return nil, p.errorf("expected adapter name, got %q", adapter.text)
	}
	p.pos++
	st.Adapter = adapter.text
	if p.matchKw("CONFIGURATION") {
		cfg := p.peek()
		if cfg.kind != tokString {
			return nil, p.errorf("CONFIGURATION expects a string literal")
		}
		p.pos++
		st.Configuration = cfg.text
	}
	if p.matchKws("WITH", "CREDENTIAL", "TYPE") {
		ct := p.peek()
		if ct.kind != tokString {
			return nil, p.errorf("CREDENTIAL TYPE expects a string literal")
		}
		p.pos++
		st.CredentialType = ct.text
		if err := p.expectKw("USING"); err != nil {
			return nil, err
		}
		cr := p.peek()
		if cr.kind != tokString {
			return nil, p.errorf("USING expects a string literal")
		}
		p.pos++
		st.Credentials = cr.text
	}
	return st, nil
}

func (p *parser) parseCreateVirtualTable() (Statement, error) {
	st := &CreateVirtualTableStmt{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectKw("AT"); err != nil {
		return nil, err
	}
	var parts []string
	for {
		part, err := p.ident()
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
		if !p.matchPunct(".") {
			break
		}
	}
	if len(parts) < 2 {
		return nil, p.errorf("CREATE VIRTUAL TABLE AT requires source and remote object path")
	}
	st.Source = parts[0]
	st.Remote = parts[1:]
	return st, nil
}

func (p *parser) parseCreateVirtualFunction() (Statement, error) {
	st := &CreateVirtualFunctionStmt{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectKw("RETURNS"); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		st.Returns = append(st.Returns, col)
		if !p.matchPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.matchKw("CONFIGURATION") {
		cfg := p.peek()
		if cfg.kind != tokString {
			return nil, p.errorf("CONFIGURATION expects a string literal")
		}
		p.pos++
		st.Configuration = cfg.text
	}
	if err := p.expectKw("AT"); err != nil {
		return nil, err
	}
	src, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Source = src
	return st, nil
}

// parseAlter handles ALTER TABLE t ADD (col type [, col type …]).
func (p *parser) parseAlter() (Statement, error) {
	if err := p.expectKw("ALTER"); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	st := &AlterTableStmt{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if err := p.expectKw("ADD"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		cd, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		st.Add = append(st.Add, cd)
		if !p.matchPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKw("DROP"); err != nil {
		return nil, err
	}
	st := &DropStmt{}
	switch {
	case p.matchKws("REMOTE", "SOURCE"):
		st.Kind = "REMOTE SOURCE"
	case p.matchKws("VIRTUAL", "TABLE"):
		st.Kind = "VIRTUAL TABLE"
	case p.matchKws("VIRTUAL", "FUNCTION"):
		st.Kind = "VIRTUAL FUNCTION"
	case p.matchKw("TABLE"):
		st.Kind = "TABLE"
	default:
		return nil, p.errorf("unsupported DROP %q", p.peek().text)
	}
	if p.matchKws("IF", "EXISTS") {
		st.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	st := &InsertStmt{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.matchPunct("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if !p.matchPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if p.matchKw("VALUES") {
		for {
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			var row []expr.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.matchPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			st.Values = append(st.Values, row)
			if !p.matchPunct(",") {
				break
			}
		}
		return st, nil
	}
	if p.isKw("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sel
		return st, nil
	}
	return nil, p.errorf("INSERT expects VALUES or SELECT")
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKw("UPDATE"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, struct {
			Col string
			E   expr.Expr
		}{col, e})
		if !p.matchPunct(",") {
			break
		}
	}
	if p.matchKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	st := &DeleteStmt{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.matchKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

// RenderSelect regenerates SQL text from a SelectStmt; the federation layer
// uses it to ship subqueries to remote sources (the remote dialect is the
// same).
func RenderSelect(s *SelectStmt) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.Qual != "":
			b.WriteString(it.Qual + ".*")
		case it.Star:
			b.WriteString("*")
		default:
			b.WriteString(it.Expr.SQL())
			if it.Alias != "" {
				b.WriteString(" AS " + it.Alias)
			}
		}
	}
	if s.From != nil {
		b.WriteString(" FROM ")
		renderTableExpr(&b, s.From)
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.SQL())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.SQL())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT " + strconv.FormatInt(s.Limit, 10))
	}
	return b.String()
}

func renderTableExpr(b *strings.Builder, te TableExpr) {
	switch t := te.(type) {
	case *TableRef:
		b.WriteString(strings.Join(t.Parts, "."))
		if t.Alias != "" {
			b.WriteString(" " + t.Alias)
		}
	case *JoinExpr:
		renderTableExpr(b, t.L)
		if t.Type == JoinCross {
			b.WriteString(", ")
			renderTableExpr(b, t.R)
			return
		}
		b.WriteString(" " + t.Type.String() + " JOIN ")
		renderTableExpr(b, t.R)
		if t.On != nil {
			b.WriteString(" ON " + t.On.SQL())
		}
	case *SubqueryTable:
		b.WriteString("(" + RenderSelect(t.Sel) + ")")
		if t.Alias != "" {
			b.WriteString(" " + t.Alias)
		}
	case *TableFuncRef:
		b.WriteString(t.Name + "(")
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.SQL())
		}
		b.WriteString(")")
		if t.Alias != "" {
			b.WriteString(" " + t.Alias)
		}
	}
}
