// Package sqlparse implements the lexer and recursive-descent parser for
// the platform's SQL dialect. The dialect covers the statements used in the
// paper: analytical SELECT (joins, subqueries, GROUP BY/HAVING, ORDER BY,
// LIMIT, WITH HINT), DML, DDL with extended-storage and partitioning
// clauses, federation DDL (CREATE REMOTE SOURCE / VIRTUAL TABLE / VIRTUAL
// FUNCTION) and the CCL window clause (KEEP …) used by the event stream
// processor.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token categories.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokQuotedIdent
	tokString
	tokNumber
	tokPunct
)

type token struct {
	kind tokKind
	text string // identifier text (original case), string contents, number text or punctuation
	pos  int    // byte offset, for error messages
}

// lexer splits SQL text into tokens. Comments (-- … and /* … */) are
// skipped.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case c == '"':
			s, err := l.lexQuotedIdent()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokQuotedIdent, text: s, pos: start})
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			l.toks = append(l.toks, token{kind: tokNumber, text: l.lexNumber(), pos: start})
		case isIdentStart(c):
			l.toks = append(l.toks, token{kind: tokIdent, text: l.lexIdent(), pos: start})
		default:
			p, err := l.lexPunct()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokPunct, text: p, pos: start})
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *lexer) lexString() (string, error) {
	// Opening quote consumed here; '' escapes a quote.
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("unterminated string literal at offset %d", l.pos)
}

func (l *lexer) lexQuotedIdent() (string, error) {
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
				b.WriteByte('"')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("unterminated quoted identifier at offset %d", l.pos)
}

func (l *lexer) lexNumber() string {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			return l.src[start:l.pos]
		}
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexIdent() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

var twoCharPunct = map[string]bool{
	"<=": true, ">=": true, "<>": true, "!=": true, "||": true, ":=": true,
}

func (l *lexer) lexPunct() (string, error) {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharPunct[two] {
			l.pos += 2
			return two, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', ';', '*', '+', '-', '/', '=', '<', '>', '?':
		l.pos++
		return string(c), nil
	}
	return "", fmt.Errorf("unexpected character %q at offset %d", string(rune(c)), l.pos)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || c == '#' ||
		unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }
