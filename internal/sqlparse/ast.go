package sqlparse

import (
	"strings"

	"hana/internal/expr"
	"hana/internal/value"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectItem is one entry of a select list.
type SelectItem struct {
	Expr  expr.Expr
	Alias string
	Star  bool // SELECT * (Expr nil; Qualifier optionally set, e.g. t.*)
	Qual  string
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// KeepUnit is the unit of a CCL KEEP clause.
type KeepUnit int

// Keep units.
const (
	KeepRows KeepUnit = iota
	KeepSeconds
	KeepMinutes
	KeepHours
)

// KeepClause is a CCL window retention specification ("KEEP 100 ROWS",
// "KEEP 5 MINUTES").
type KeepClause struct {
	N    int64
	Unit KeepUnit
}

// Duration returns the retention in microseconds for time-based windows; 0
// for row-based.
func (k *KeepClause) Duration() int64 {
	switch k.Unit {
	case KeepSeconds:
		return k.N * 1e6
	case KeepMinutes:
		return k.N * 60e6
	case KeepHours:
		return k.N * 3600e6
	}
	return 0
}

// SelectStmt is a (possibly nested) query block.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableExpr // nil for "SELECT <exprs>" without FROM
	Where    expr.Expr
	GroupBy  []expr.Expr
	Having   expr.Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 = none
	Hints    []string
	Keep     *KeepClause // CCL only
}

func (*SelectStmt) stmt() {}

// HasHint reports whether the query carries the named hint
// (case-insensitive), e.g. USE_REMOTE_CACHE.
func (s *SelectStmt) HasHint(name string) bool {
	for _, h := range s.Hints {
		if strings.EqualFold(h, name) {
			return true
		}
	}
	return false
}

// JoinType enumerates join flavors.
type JoinType int

// Join types.
const (
	JoinInner JoinType = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
)

// String names the join type.
func (j JoinType) String() string {
	switch j {
	case JoinInner:
		return "INNER"
	case JoinLeft:
		return "LEFT OUTER"
	case JoinRight:
		return "RIGHT OUTER"
	case JoinFull:
		return "FULL OUTER"
	case JoinCross:
		return "CROSS"
	}
	return "?"
}

// TableExpr is a FROM-clause item.
type TableExpr interface{ tableExpr() }

// TableRef names a stored, virtual or remote table. Parts holds the
// dot-separated path as written ("dflo"."dflo"."product" has three parts).
type TableRef struct {
	Parts []string
	Alias string
}

func (*TableRef) tableExpr() {}

// Name returns the last path element, the table's local name.
func (t *TableRef) Name() string { return t.Parts[len(t.Parts)-1] }

// Binding returns the name other clauses refer to this table by.
func (t *TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name()
}

// JoinExpr is an explicit join.
type JoinExpr struct {
	Type JoinType
	L, R TableExpr
	On   expr.Expr // nil for CROSS
}

func (*JoinExpr) tableExpr() {}

// SubqueryTable is a derived table: (SELECT …) alias.
type SubqueryTable struct {
	Sel   *SelectStmt
	Alias string
}

func (*SubqueryTable) tableExpr() {}

// TableFuncRef calls a (virtual) table function in FROM:
// PLANT100_SENSOR_RECORDS() B.
type TableFuncRef struct {
	Name  string
	Args  []expr.Expr
	Alias string
}

func (*TableFuncRef) tableExpr() {}

// Binding returns the name other clauses use for this function's rows.
func (t *TableFuncRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// Subquery expression nodes. They implement expr.Expr so they can sit in
// predicates; the planner replaces them before execution, so Eval errors.

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct {
	Sel *SelectStmt
}

// Eval fails: the planner must rewrite subqueries.
func (s *SubqueryExpr) Eval(value.Row) (value.Value, error) {
	return value.Null, errUnplanned("scalar subquery")
}

// SQL renders the subquery, so shipped statements regenerate faithfully.
func (s *SubqueryExpr) SQL() string { return "(" + RenderSelect(s.Sel) + ")" }

// ExistsExpr is [NOT] EXISTS (SELECT …).
type ExistsExpr struct {
	Sel    *SelectStmt
	Negate bool
}

// Eval fails: the planner must rewrite subqueries.
func (e *ExistsExpr) Eval(value.Row) (value.Value, error) {
	return value.Null, errUnplanned("EXISTS subquery")
}

// SQL renders the subquery, so shipped statements regenerate faithfully.
func (e *ExistsExpr) SQL() string {
	if e.Negate {
		return "NOT EXISTS (" + RenderSelect(e.Sel) + ")"
	}
	return "EXISTS (" + RenderSelect(e.Sel) + ")"
}

// InSubqueryExpr is e [NOT] IN (SELECT …).
type InSubqueryExpr struct {
	E      expr.Expr
	Sel    *SelectStmt
	Negate bool
}

// Eval fails: the planner must rewrite subqueries.
func (e *InSubqueryExpr) Eval(value.Row) (value.Value, error) {
	return value.Null, errUnplanned("IN subquery")
}

// SQL renders the subquery, so shipped statements regenerate faithfully.
func (e *InSubqueryExpr) SQL() string {
	n := ""
	if e.Negate {
		n = "NOT "
	}
	return "(" + e.E.SQL() + " " + n + "IN (" + RenderSelect(e.Sel) + "))"
}

type unplannedErr string

func (u unplannedErr) Error() string { return string(u) }

func errUnplanned(what string) error {
	return unplannedErr(what + " must be rewritten by the planner before evaluation")
}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name     string
	TypeName string // as written, e.g. VARCHAR(30)
	Kind     value.Kind
	NotNull  bool
	PrimKey  bool
}

// StorageClass says where a table or partition lives.
type StorageClass int

// Storage classes. StorageExtended is the paper's "USING EXTENDED STORAGE"
// (disk-based IQ store); StorageRow the in-memory row store; StorageColumn
// the default in-memory column store.
const (
	StorageColumn StorageClass = iota
	StorageRow
	StorageExtended
)

// String names the storage class.
func (s StorageClass) String() string {
	switch s {
	case StorageColumn:
		return "COLUMN"
	case StorageRow:
		return "ROW"
	case StorageExtended:
		return "EXTENDED"
	}
	return "?"
}

// PartitionDef is one range partition: PARTITION VALUES < bound, or
// PARTITION OTHERS for the rest bucket. Storage selects hot (column) or
// cold (extended) placement per partition.
type PartitionDef struct {
	Bound   expr.Expr // nil for OTHERS
	Others  bool
	Storage StorageClass
}

// CreateTableStmt covers CREATE [ROW|COLUMN|FLEXIBLE] TABLE with the
// extended-storage, partitioning and aging clauses of the dialect.
type CreateTableStmt struct {
	Name        string
	Cols        []ColumnDef
	Storage     StorageClass
	Hybrid      bool // USING HYBRID EXTENDED STORAGE
	Flexible    bool // CREATE FLEXIBLE TABLE: schema extension on insert
	PartitionBy string
	Partitions  []PartitionDef
	AgingColumn string // WITH AGING ON (col): flag column driving hot→cold moves
	IfNotExists bool
}

func (*CreateTableStmt) stmt() {}

// AlterTableStmt is ALTER TABLE t ADD (col type) — schema modification,
// supported uniformly for in-memory, extended and hybrid tables (§3.1).
type AlterTableStmt struct {
	Table string
	Add   []ColumnDef
}

func (*AlterTableStmt) stmt() {}

// DropStmt drops a table, remote source, virtual table or function.
type DropStmt struct {
	Kind     string // TABLE, REMOTE SOURCE, VIRTUAL TABLE, VIRTUAL FUNCTION
	Name     string
	IfExists bool
}

func (*DropStmt) stmt() {}

// InsertStmt is INSERT INTO t [(cols)] VALUES (…),(…) or INSERT … SELECT.
type InsertStmt struct {
	Table  string
	Cols   []string
	Values [][]expr.Expr
	Select *SelectStmt
}

func (*InsertStmt) stmt() {}

// UpdateStmt is UPDATE t SET c = e, … WHERE ….
type UpdateStmt struct {
	Table string
	Set   []struct {
		Col string
		E   expr.Expr
	}
	Where expr.Expr
}

func (*UpdateStmt) stmt() {}

// DeleteStmt is DELETE FROM t WHERE ….
type DeleteStmt struct {
	Table string
	Where expr.Expr
}

func (*DeleteStmt) stmt() {}

// CreateRemoteSourceStmt registers an SDA remote source:
//
//	CREATE REMOTE SOURCE HIVE1 ADAPTER "hiveodbc"
//	  CONFIGURATION 'DSN=hive1'
//	  WITH CREDENTIAL TYPE 'PASSWORD' USING 'user=u;password=p'
type CreateRemoteSourceStmt struct {
	Name           string
	Adapter        string
	Configuration  string
	CredentialType string
	Credentials    string
}

func (*CreateRemoteSourceStmt) stmt() {}

// CreateVirtualTableStmt exposes a remote table:
//
//	CREATE VIRTUAL TABLE "VT" AT "SRC"."db"."schema"."table"
type CreateVirtualTableStmt struct {
	Name   string
	Source string   // first path element
	Remote []string // remaining path elements identifying the remote object
}

func (*CreateVirtualTableStmt) stmt() {}

// CreateVirtualFunctionStmt exposes a remote map-reduce job as a table
// function (§4.3 of the paper).
type CreateVirtualFunctionStmt struct {
	Name          string
	Returns       []ColumnDef
	Configuration string
	Source        string
}

func (*CreateVirtualFunctionStmt) stmt() {}

// ExplainStmt wraps a SELECT for plan display. With Trace set (EXPLAIN
// TRACE <select>) the statement is executed and its full span timeline is
// returned alongside the plan.
type ExplainStmt struct {
	Sel   *SelectStmt
	Trace bool
}

func (*ExplainStmt) stmt() {}
