package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"hana/internal/expr"
	"hana/internal/value"
)

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.matchPunct(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return st, nil
}

// ParseAll parses a script of semicolon-separated statements.
func ParseAll(src string) ([]Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var out []Statement
	for !p.atEOF() {
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.matchPunct(";") && !p.atEOF() {
			return nil, p.errorf("expected ';' between statements, got %q", p.peek().text)
		}
		for p.matchPunct(";") {
		}
	}
	return out, nil
}

// ParseExpr parses a single scalar expression; the ESP CCL filter compiler
// uses it.
func ParseExpr(src string) (expr.Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return e, nil
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func newParser(src string) (*parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &parser{src: src, toks: toks}, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peekAt(n int) token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errorf(format string, args ...any) error {
	off := p.peek().pos
	line := 1 + strings.Count(p.src[:min(off, len(p.src))], "\n")
	return fmt.Errorf("parse error at line %d (offset %d): %s", line, off, fmt.Sprintf(format, args...))
}

// isKw reports whether the current token is the given bare keyword.
func (p *parser) isKw(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) matchKw(kw string) bool {
	if p.isKw(kw) {
		p.pos++
		return true
	}
	return false
}

// matchKws matches a fixed sequence of keywords atomically.
func (p *parser) matchKws(kws ...string) bool {
	for i, kw := range kws {
		t := p.peekAt(i)
		if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
			return false
		}
	}
	p.pos += len(kws)
	return true
}

func (p *parser) expectKw(kw string) error {
	if !p.matchKw(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) matchPunct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.matchPunct(s) {
		return p.errorf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

// ident consumes an (optionally quoted) identifier.
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind == tokIdent || t.kind == tokQuotedIdent {
		p.pos++
		return t.text, nil
	}
	return "", p.errorf("expected identifier, got %q", t.text)
}

// reserved keywords that terminate alias positions.
var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "HAVING": true,
	"ORDER": true, "LIMIT": true, "TOP": true, "JOIN": true, "INNER": true,
	"LEFT": true, "RIGHT": true, "FULL": true, "CROSS": true, "OUTER": true,
	"ON": true, "AND": true, "OR": true, "NOT": true, "AS": true, "UNION": true,
	"WITH": true, "INTO": true, "VALUES": true, "SET": true, "KEEP": true,
	"EVERY": true, "USING": true, "AT": true, "BY": true, "ASC": true, "DESC": true,
	"IN": true, "IS": true, "LIKE": true, "BETWEEN": true, "EXISTS": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"PARTITION": true, "HINT": true,
}

// aliasIdent consumes an identifier usable as an alias (not reserved).
func (p *parser) aliasIdent() (string, bool) {
	t := p.peek()
	if t.kind == tokQuotedIdent {
		p.pos++
		return t.text, true
	}
	if t.kind == tokIdent && !reserved[strings.ToUpper(t.text)] {
		p.pos++
		return t.text, true
	}
	return "", false
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isKw("SELECT"):
		return p.parseSelect()
	case p.isKw("EXPLAIN"):
		p.pos++
		trace := p.matchKw("TRACE")
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Sel: sel, Trace: trace}, nil
	case p.isKw("CREATE"):
		return p.parseCreate()
	case p.isKw("ALTER"):
		return p.parseAlter()
	case p.isKw("DROP"):
		return p.parseDrop()
	case p.isKw("INSERT"):
		return p.parseInsert()
	case p.isKw("UPDATE"):
		return p.parseUpdate()
	case p.isKw("DELETE"):
		return p.parseDelete()
	}
	return nil, p.errorf("unsupported statement starting with %q", p.peek().text)
}

// --- SELECT ---

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	if p.matchKw("DISTINCT") {
		s.Distinct = true
	}
	if p.matchKw("TOP") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		s.Limit = n
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.matchPunct(",") {
			break
		}
	}
	if p.matchKw("FROM") {
		from, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		s.From = from
	}
	if p.matchKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.matchKws("GROUP", "BY") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.matchPunct(",") {
				break
			}
		}
	}
	if p.matchKw("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.matchKws("ORDER", "BY") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Expr: e}
			if p.matchKw("DESC") {
				it.Desc = true
			} else {
				p.matchKw("ASC")
			}
			s.OrderBy = append(s.OrderBy, it)
			if !p.matchPunct(",") {
				break
			}
		}
	}
	if p.matchKw("LIMIT") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		s.Limit = n
	}
	if p.matchKw("KEEP") {
		k, err := p.parseKeep()
		if err != nil {
			return nil, err
		}
		s.Keep = k
	}
	if p.isKw("WITH") && strings.EqualFold(p.peekAt(1).text, "HINT") {
		p.pos += 2
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			h, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.Hints = append(s.Hints, h)
			if !p.matchPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) parseKeep() (*KeepClause, error) {
	n, err := p.intLiteral()
	if err != nil {
		return nil, err
	}
	k := &KeepClause{N: n}
	switch {
	case p.matchKw("ROWS") || p.matchKw("ROW"):
		k.Unit = KeepRows
	case p.matchKw("SECONDS") || p.matchKw("SECOND") || p.matchKw("SEC"):
		k.Unit = KeepSeconds
	case p.matchKw("MINUTES") || p.matchKw("MINUTE") || p.matchKw("MIN"):
		k.Unit = KeepMinutes
	case p.matchKw("HOURS") || p.matchKw("HOUR"):
		k.Unit = KeepHours
	default:
		return nil, p.errorf("expected KEEP unit (ROWS/SECONDS/MINUTES/HOURS), got %q", p.peek().text)
	}
	return k, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.matchPunct("*") {
		return SelectItem{Star: true}, nil
	}
	// qualified star: t.*
	if p.peek().kind == tokIdent && p.peekAt(1).text == "." && p.peekAt(2).text == "*" {
		qual := p.next().text
		p.pos += 2
		return SelectItem{Star: true, Qual: qual}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.matchKw("AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if a, ok := p.aliasIdent(); ok {
		item.Alias = a
	}
	return item, nil
}

// --- FROM / joins ---

func (p *parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parseJoinChain()
	if err != nil {
		return nil, err
	}
	// Comma joins (implicit cross joins restricted by WHERE).
	for p.matchPunct(",") {
		right, err := p.parseJoinChain()
		if err != nil {
			return nil, err
		}
		left = &JoinExpr{Type: JoinCross, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseJoinChain() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var jt JoinType
		switch {
		case p.matchKws("INNER", "JOIN") || p.matchKw("JOIN"):
			jt = JoinInner
		case p.matchKws("LEFT", "OUTER", "JOIN") || p.matchKws("LEFT", "JOIN"):
			jt = JoinLeft
		case p.matchKws("RIGHT", "OUTER", "JOIN") || p.matchKws("RIGHT", "JOIN"):
			jt = JoinRight
		case p.matchKws("FULL", "OUTER", "JOIN") || p.matchKws("FULL", "JOIN"):
			jt = JoinFull
		case p.matchKws("CROSS", "JOIN"):
			jt = JoinCross
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &JoinExpr{Type: jt, L: left, R: right}
		if jt != JoinCross {
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

func (p *parser) parseTablePrimary() (TableExpr, error) {
	if p.matchPunct("(") {
		if p.isKw("SELECT") {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			st := &SubqueryTable{Sel: sel}
			p.matchKw("AS")
			if a, ok := p.aliasIdent(); ok {
				st.Alias = a
			}
			return st, nil
		}
		// Parenthesized join tree.
		te, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return te, nil
	}
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	parts := []string{first}
	for p.peek().kind == tokPunct && p.peek().text == "." {
		p.pos++
		part, err := p.ident()
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
	}
	// Table function: name(args).
	if p.matchPunct("(") {
		var args []expr.Expr
		if !p.matchPunct(")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.matchPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		tf := &TableFuncRef{Name: strings.Join(parts, "."), Args: args}
		p.matchKw("AS")
		if a, ok := p.aliasIdent(); ok {
			tf.Alias = a
		}
		return tf, nil
	}
	tr := &TableRef{Parts: parts}
	p.matchKw("AS")
	if a, ok := p.aliasIdent(); ok {
		tr.Alias = a
	}
	return tr, nil
}

// --- expressions ---

func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.matchKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = expr.Bin(expr.OpOr, l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.matchKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = expr.Bin(expr.OpAnd, l, r)
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.matchKw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.Not(e), nil
	}
	return p.parsePredicate()
}

var cmpOps = map[string]expr.Op{
	"=": expr.OpEq, "<>": expr.OpNe, "!=": expr.OpNe,
	"<": expr.OpLt, "<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) parsePredicate() (expr.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// comparison
	if t := p.peek(); t.kind == tokPunct {
		if op, ok := cmpOps[t.text]; ok {
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return expr.Bin(op, l, r), nil
		}
	}
	negate := false
	save := p.pos
	if p.matchKw("NOT") {
		negate = true
	}
	switch {
	case p.matchKw("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &expr.Between{E: l, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.matchKw("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &expr.Like{E: l, Pattern: pat, Negate: negate}, nil
	case p.matchKw("IN"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.isKw("SELECT") {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &InSubqueryExpr{E: l, Sel: sel, Negate: negate}, nil
		}
		var list []expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.matchPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &expr.In{E: l, List: list, Negate: negate}, nil
	case p.matchKw("IS"):
		neg2 := p.matchKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		isn := &expr.IsNull{E: l, Negate: neg2}
		if negate {
			return expr.Not(isn), nil
		}
		return isn, nil
	}
	if negate {
		p.pos = save // stray NOT belongs to an outer production
	}
	return l, nil
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct {
			return l, nil
		}
		var op expr.Op
		switch t.text {
		case "+":
			op = expr.OpAdd
		case "-":
			op = expr.OpSub
		case "||":
			op = expr.OpConcat
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = expr.Bin(op, l, r)
	}
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct {
			return l, nil
		}
		var op expr.Op
		switch t.text {
		case "*":
			op = expr.OpMul
		case "/":
			op = expr.OpDiv
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = expr.Bin(op, l, r)
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.peek().kind == tokPunct && p.peek().text == "-" {
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Constant-fold negative literals.
		if l, ok := e.(*expr.Literal); ok {
			switch l.Val.K {
			case value.KindInt:
				return expr.Lit(value.NewInt(-l.Val.I)), nil
			case value.KindDouble:
				return expr.Lit(value.NewDouble(-l.Val.F)), nil
			}
		}
		return &expr.UnOp{Op: expr.OpNeg, E: e}, nil
	}
	if p.peek().kind == tokPunct && p.peek().text == "+" {
		p.pos++
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q: %v", t.text, err)
			}
			return expr.Lit(value.NewDouble(f)), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q: %v", t.text, err)
		}
		return expr.Int(i), nil
	case tokString:
		p.pos++
		return expr.Str(t.text), nil
	case tokPunct:
		switch t.text {
		case "(":
			p.pos++
			if p.isKw("SELECT") {
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Sel: sel}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "?":
			p.pos++
			return &expr.Param{Index: p.countParams()}, nil
		}
	case tokIdent, tokQuotedIdent:
		return p.parseIdentExpr()
	}
	return nil, p.errorf("unexpected token %q in expression", t.text)
}

// countParams numbers '?' placeholders in order of appearance.
func (p *parser) countParams() int {
	n := 0
	for i := 0; i < p.pos-1; i++ {
		if p.toks[i].kind == tokPunct && p.toks[i].text == "?" {
			n++
		}
	}
	return n
}

func (p *parser) parseIdentExpr() (expr.Expr, error) {
	t := p.peek()
	upper := strings.ToUpper(t.text)
	if t.kind == tokIdent {
		switch upper {
		case "NULL":
			p.pos++
			return expr.Lit(value.Null), nil
		case "TRUE":
			p.pos++
			return expr.Lit(value.NewBool(true)), nil
		case "FALSE":
			p.pos++
			return expr.Lit(value.NewBool(false)), nil
		case "DATE":
			if p.peekAt(1).kind == tokString {
				p.pos++
				s := p.next().text
				v, err := value.ParseDate(s)
				if err != nil {
					return nil, p.errorf("%v", err)
				}
				return expr.Lit(v), nil
			}
		case "TIMESTAMP":
			if p.peekAt(1).kind == tokString {
				p.pos++
				s := p.next().text
				v, err := value.ParseTimestamp(s)
				if err != nil {
					return nil, p.errorf("%v", err)
				}
				return expr.Lit(v), nil
			}
		case "CAST":
			p.pos++
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			tn, err := p.typeName()
			if err != nil {
				return nil, err
			}
			k, ok := value.KindFromSQL(tn)
			if !ok {
				return nil, p.errorf("unknown type %q in CAST", tn)
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &expr.Cast{E: e, To: k}, nil
		case "CASE":
			return p.parseCase()
		case "EXISTS":
			p.pos++
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Sel: sel}, nil
		}
	}
	// Identifier chain: a, a.b, a.b.c — or function call.
	p.pos++
	name := t.text
	for p.peek().kind == tokPunct && p.peek().text == "." {
		p.pos++
		nt := p.peek()
		if nt.kind != tokIdent && nt.kind != tokQuotedIdent {
			return nil, p.errorf("expected identifier after '.', got %q", nt.text)
		}
		p.pos++
		name += "." + nt.text
	}
	if p.matchPunct("(") {
		f := &expr.Func{Name: strings.ToUpper(name)}
		if p.matchPunct("*") {
			f.Star = true
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return f, nil
		}
		if !p.matchPunct(")") {
			if p.matchKw("DISTINCT") {
				f.Distinct = true
			}
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				f.Args = append(f.Args, a)
				if !p.matchPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		return f, nil
	}
	return expr.Col(name), nil
}

func (p *parser) parseCase() (expr.Expr, error) {
	if err := p.expectKw("CASE"); err != nil {
		return nil, err
	}
	c := &expr.CaseWhen{}
	// Simple CASE (CASE e WHEN v THEN …) is rewritten to searched form.
	var operand expr.Expr
	if !p.isKw("WHEN") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		operand = e
	}
	for p.matchKw("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if operand != nil {
			cond = expr.Eq(expr.Clone(operand), cond)
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, struct {
			Cond expr.Expr
			Then expr.Expr
		}{cond, then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN branch")
	}
	if p.matchKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) intLiteral() (int64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errorf("expected integer, got %q", t.text)
	}
	p.pos++
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errorf("bad integer %q", t.text)
	}
	return n, nil
}

// typeName consumes a SQL type, including an optional (n[,m]) suffix.
func (p *parser) typeName() (string, error) {
	base, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.matchPunct("(") {
		base += "("
		for !p.matchPunct(")") {
			base += p.next().text
		}
		base += ")"
	}
	return base, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
