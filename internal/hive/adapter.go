package hive

import (
	"context"

	"fmt"
	"strings"
	"sync"
	"time"

	"hana/internal/fed"
	"hana/internal/mapreduce"
	"hana/internal/value"
)

// Server is one "Hive + Hadoop installation": metastore, MR engine and
// executor, addressed by SDA adapters through a host name (the DSN). The
// host name feeds the remote-materialization cache key (§4.4: statement,
// parameters "and the host information").
type Server struct {
	Host string
	MS   *Metastore
	MR   *mapreduce.Engine
	Exec *Executor

	// Stats for benchmarks.
	mu               sync.Mutex
	QueriesRun       int64
	CacheHits        int64
	Materializations int64
}

// NewServer assembles a server.
func NewServer(host string, ms *Metastore, mr *mapreduce.Engine) *Server {
	return &Server{Host: host, MS: ms, MR: mr, Exec: NewExecutor(ms, mr)}
}

// serverRegistry lets CREATE REMOTE SOURCE resolve a DSN to an in-process
// server, standing in for the ODBC connection of the paper.
var (
	registryMu sync.Mutex
	servers    = map[string]*Server{}
)

// RegisterServer publishes a server under its DSN.
func RegisterServer(s *Server) {
	registryMu.Lock()
	defer registryMu.Unlock()
	servers[strings.ToLower(s.Host)] = s
}

// UnregisterServer removes a DSN.
func UnregisterServer(host string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	delete(servers, strings.ToLower(host))
}

func lookupServer(dsn string) (*Server, error) {
	registryMu.Lock()
	defer registryMu.Unlock()
	s, ok := servers[strings.ToLower(dsn)]
	if !ok {
		return nil, fmt.Errorf("hive: no server registered for DSN %q", dsn)
	}
	return s, nil
}

// Adapter is the hiveodbc SDA adapter: it ships SQL statements to a Hive
// server and implements the remote-materialization protocol.
type Adapter struct {
	server *Server
}

// NewAdapterFactory returns the factory registered as "hiveodbc".
func NewAdapterFactory() fed.Factory {
	return func(config, credentials map[string]string) (fed.Adapter, error) {
		dsn := config["DSN"]
		if dsn == "" {
			return nil, fmt.Errorf("hiveodbc: CONFIGURATION must contain DSN")
		}
		if credentials != nil && credentials["user"] == "" && len(credentials) > 0 {
			return nil, fmt.Errorf("hiveodbc: credentials must contain user")
		}
		s, err := lookupServer(dsn)
		if err != nil {
			return nil, err
		}
		return &Adapter{server: s}, nil
	}
}

// Name implements fed.Adapter.
func (a *Adapter) Name() string { return "hiveodbc" }

// Capabilities implements fed.Adapter. Hive supports SELECT shipping with
// joins, outer joins, group-by and subqueries but no transactions or DML
// (§4.2: "for Hive and Hadoop only select statements without transactional
// guarantees are supported … CAP_JOINS : true and CAP_JOINS_OUTER : true").
func (a *Adapter) Capabilities() fed.Capabilities {
	return fed.Capabilities{
		Select:      true,
		Joins:       true,
		JoinsOuter:  true,
		GroupBy:     true,
		Subqueries:  true,
		RemoteCache: true,
	}
}

// TableSchema implements fed.Adapter; the last path element is the table.
func (a *Adapter) TableSchema(path []string) (*value.Schema, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("hiveodbc: empty remote path")
	}
	ti, ok := a.server.MS.Table(path[len(path)-1])
	if !ok {
		return nil, fmt.Errorf("hiveodbc: remote table %s not found", strings.Join(path, "."))
	}
	return ti.Schema.Clone(), nil
}

// TableStats implements fed.Adapter using metastore statistics.
func (a *Adapter) TableStats(path []string) (fed.TableStats, bool) {
	if len(path) == 0 {
		return fed.TableStats{}, false
	}
	ti, ok := a.server.MS.Table(path[len(path)-1])
	if !ok {
		return fed.TableStats{}, false
	}
	return fed.TableStats{RowCount: ti.RowCount, Files: ti.Files, Bytes: ti.Bytes}, true
}

// Query implements fed.Adapter: execute the shipped statement, optionally
// through the remote-materialization cache.
func (a *Adapter) Query(sql string, opts fed.QueryOptions) (*fed.QueryResult, error) {
	a.server.mu.Lock()
	a.server.QueriesRun++
	a.server.mu.Unlock()

	if opts.UseCache {
		key := fed.CacheKey(sql, nil, a.server.Host)
		if entry, ok := a.server.MS.CacheLookup(key, opts.Validity, time.Now()); ok {
			rows, err := a.server.MS.ReadTable(entry.TempTable)
			if err == nil {
				a.server.mu.Lock()
				a.server.CacheHits++
				a.server.mu.Unlock()
				return &fed.QueryResult{Rows: rows, FromCache: true}, nil
			}
			// Fall through and recompute if the temp table is damaged.
		}
		rows, err := a.server.Exec.Query(sql)
		if err != nil {
			return nil, err
		}
		// Materialize via two-phase CTAS and register under the key.
		matStart := time.Now()
		tmp := a.server.MS.NewTempTableName()
		if _, err := a.server.MS.CreateTable(tmp, rows.Schema, true); err != nil {
			return nil, err
		}
		if err := a.server.MS.LoadRows(tmp, rows.Data, 2); err != nil {
			return nil, err
		}
		a.server.MS.CacheStore(fed.CacheEntry{
			Key: key, TempTable: tmp, Created: time.Now(), Rows: int64(rows.Len()),
		})
		a.server.mu.Lock()
		a.server.Materializations++
		a.server.mu.Unlock()
		return &fed.QueryResult{Rows: rows, MaterializeTime: time.Since(matStart)}, nil
	}

	rows, err := a.server.Exec.Query(sql)
	if err != nil {
		return nil, err
	}
	return &fed.QueryResult{Rows: rows}, nil
}

// --- hadoop adapter: direct HDFS / map-reduce access (§4.3) ---

// Driver builds a map-reduce job from a virtual-function configuration.
// Implementations are registered under their driver class name.
type Driver func(server *Server, config map[string]string) (*mapreduce.Job, error)

var (
	driverMu sync.Mutex
	drivers  = map[string]Driver{}
)

// RegisterDriver publishes a map-reduce driver class.
func RegisterDriver(class string, d Driver) {
	driverMu.Lock()
	defer driverMu.Unlock()
	drivers[class] = d
}

// HadoopAdapter exposes a Hadoop cluster for CREATE VIRTUAL FUNCTION and
// raw HDFS access, registered as adapter type "hadoop".
type HadoopAdapter struct {
	server *Server
}

// NewHadoopAdapterFactory returns the factory registered as "hadoop". The
// configuration carries webhdfs/webhcatalog endpoints; the host part of
// webhdfs selects the registered server.
func NewHadoopAdapterFactory() fed.Factory {
	return func(config, credentials map[string]string) (fed.Adapter, error) {
		endpoint := config["webhdfs"]
		if endpoint == "" {
			return nil, fmt.Errorf("hadoop: CONFIGURATION must contain webhdfs endpoint")
		}
		host := endpoint
		host = strings.TrimPrefix(host, "http://")
		host = strings.TrimPrefix(host, "https://")
		if i := strings.IndexByte(host, ':'); i >= 0 {
			host = host[:i]
		}
		s, err := lookupServer(host)
		if err != nil {
			return nil, err
		}
		return &HadoopAdapter{server: s}, nil
	}
}

// Name implements fed.Adapter.
func (h *HadoopAdapter) Name() string { return "hadoop" }

// Capabilities implements fed.Adapter: the raw adapter only invokes jobs.
func (h *HadoopAdapter) Capabilities() fed.Capabilities {
	return fed.Capabilities{Select: true}
}

// TableSchema implements fed.Adapter (shared metastore).
func (h *HadoopAdapter) TableSchema(path []string) (*value.Schema, error) {
	ti, ok := h.server.MS.Table(path[len(path)-1])
	if !ok {
		return nil, fmt.Errorf("hadoop: table %s not found", strings.Join(path, "."))
	}
	return ti.Schema.Clone(), nil
}

// TableStats implements fed.Adapter.
func (h *HadoopAdapter) TableStats(path []string) (fed.TableStats, bool) {
	ti, ok := h.server.MS.Table(path[len(path)-1])
	if !ok {
		return fed.TableStats{}, false
	}
	return fed.TableStats{RowCount: ti.RowCount, Files: ti.Files}, true
}

// Query implements fed.Adapter by delegating to the Hive executor.
func (h *HadoopAdapter) Query(sql string, _ fed.QueryOptions) (*fed.QueryResult, error) {
	rows, err := h.server.Exec.Query(sql)
	if err != nil {
		return nil, err
	}
	return &fed.QueryResult{Rows: rows}, nil
}

// CallFunction implements fed.FunctionAdapter: run the configured
// map-reduce driver and decode its output under the declared schema.
func (h *HadoopAdapter) CallFunction(config map[string]string, schema *value.Schema) (*value.Rows, error) {
	class := config["hana.mapred.driver.class"]
	if class == "" {
		return nil, fmt.Errorf("hadoop: configuration must set hana.mapred.driver.class")
	}
	driverMu.Lock()
	d, ok := drivers[class]
	driverMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("hadoop: no driver registered for class %s", class)
	}
	job, err := d(h.server, config)
	if err != nil {
		return nil, err
	}
	//lint:ignore ctxflow fed.Adapter.CallFunction is a context-free boundary; the simulated cluster owns this root
	if _, err := h.server.MR.RunCtx(context.Background(), job); err != nil {
		return nil, err
	}
	defer func() { _ = h.server.MS.Cluster().Remove(job.Output) }()
	return h.server.MS.ReadDir(job.Output, schema)
}
