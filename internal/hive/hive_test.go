package hive

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"hana/internal/fed"
	"hana/internal/hdfs"
	"hana/internal/mapreduce"
	"hana/internal/value"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	cluster := hdfs.NewCluster(3, hdfs.WithBlockSize(4096), hdfs.WithReplication(2))
	ms := NewMetastore(cluster, "/warehouse")
	mr := mapreduce.NewEngine(cluster, mapreduce.Config{MapSlots: 8, ReduceSlots: 4, DefaultReducers: 2})
	return NewServer("hive1", ms, mr)
}

func loadCustomersOrders(t *testing.T, s *Server) {
	t.Helper()
	custSchema := value.NewSchema(
		value.Column{Name: "c_custkey", Kind: value.KindInt},
		value.Column{Name: "c_name", Kind: value.KindVarchar},
		value.Column{Name: "c_mktsegment", Kind: value.KindVarchar},
	)
	ordSchema := value.NewSchema(
		value.Column{Name: "o_orderkey", Kind: value.KindInt},
		value.Column{Name: "o_custkey", Kind: value.KindInt},
		value.Column{Name: "o_total", Kind: value.KindDouble},
		value.Column{Name: "o_comment", Kind: value.KindVarchar},
	)
	if _, err := s.MS.CreateTable("customer", custSchema, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MS.CreateTable("orders", ordSchema, false); err != nil {
		t.Fatal(err)
	}
	var custs, ords []value.Row
	segs := []string{"HOUSEHOLD", "AUTOMOBILE", "BUILDING"}
	for i := 1; i <= 30; i++ {
		custs = append(custs, value.Row{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("Customer#%03d", i)),
			value.NewString(segs[i%3]),
		})
	}
	for i := 1; i <= 100; i++ {
		ords = append(ords, value.Row{
			value.NewInt(int64(i)),
			value.NewInt(int64(i%30 + 1)),
			value.NewDouble(float64(i) * 10),
			value.NewString(fmt.Sprintf("order comment %d", i)),
		})
	}
	if err := s.MS.LoadRows("customer", custs, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.MS.LoadRows("orders", ords, 3); err != nil {
		t.Fatal(err)
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	schema := value.NewSchema(
		value.Column{Name: "a", Kind: value.KindInt},
		value.Column{Name: "b", Kind: value.KindVarchar},
		value.Column{Name: "c", Kind: value.KindDouble},
		value.Column{Name: "d", Kind: value.KindDate},
	)
	d, _ := value.ParseDate("1995-03-15")
	rows := []value.Row{
		{value.NewInt(1), value.NewString("plain"), value.NewDouble(1.5), d},
		{value.NewInt(-2), value.NewString("tab\tand\nnewline\\"), value.Null, value.Null},
		{value.Null, value.NewString(`\N literal-ish`), value.NewDouble(0), d},
	}
	for _, r := range rows {
		line := EncodeRow(r)
		got, err := DecodeRow(line, schema)
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		for i := range r {
			if r[i].IsNull() != got[i].IsNull() {
				t.Fatalf("null mismatch at %d: %v vs %v", i, r[i], got[i])
			}
			if !r[i].IsNull() && value.Compare(r[i], got[i]) != 0 {
				t.Fatalf("value mismatch at %d: %v vs %v", i, r[i], got[i])
			}
		}
	}
}

func TestMetastoreAndStats(t *testing.T) {
	s := newTestServer(t)
	loadCustomersOrders(t, s)
	ti, ok := s.MS.Table("ORDERS")
	if !ok || ti.RowCount != 100 || ti.Files != 3 {
		t.Fatalf("stats = %+v", ti)
	}
	rows, err := s.MS.ReadTable("customer")
	if err != nil || rows.Len() != 30 {
		t.Fatalf("read table: %v %d", err, rows.Len())
	}
	if err := s.MS.DropTable("customer"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.MS.Table("customer"); ok {
		t.Fatal("dropped")
	}
}

func TestSimpleScanQuery(t *testing.T) {
	s := newTestServer(t)
	loadCustomersOrders(t, s)
	rows, err := s.Exec.Query(`SELECT c_name FROM customer WHERE c_mktsegment = 'HOUSEHOLD'`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 10 {
		t.Fatalf("rows = %d", rows.Len())
	}
	if s.MR.JobsRun.Load() == 0 {
		t.Fatal("expected a map-reduce scan job")
	}
}

func TestJoinQuery(t *testing.T) {
	s := newTestServer(t)
	loadCustomersOrders(t, s)
	rows, err := s.Exec.Query(`SELECT c_name, o_total FROM customer JOIN orders ON c_custkey = o_custkey
		WHERE c_mktsegment = 'HOUSEHOLD' AND o_total > 500`)
	if err != nil {
		t.Fatal(err)
	}
	// customers in HOUSEHOLD: keys where i%3==0 → custkey 1..30 with i%3==0;
	// orders with total > 500: 51..100 (50 orders), distributed over custkeys.
	if rows.Len() == 0 {
		t.Fatal("join returned nothing")
	}
	for _, r := range rows.Data {
		if r[1].Float() <= 500 {
			t.Fatalf("filter leak: %v", r)
		}
	}
}

func TestAggregationQuery(t *testing.T) {
	s := newTestServer(t)
	loadCustomersOrders(t, s)
	rows, err := s.Exec.Query(`SELECT c_mktsegment, COUNT(*), SUM(o_total), AVG(o_total), MIN(o_total), MAX(o_total)
		FROM customer JOIN orders ON c_custkey = o_custkey
		GROUP BY c_mktsegment`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 {
		t.Fatalf("groups = %d", rows.Len())
	}
	var totalCount, totalSum float64
	for _, r := range rows.Data {
		totalCount += float64(r[1].Int())
		totalSum += r[2].Float()
		if r[4].Float() > r[5].Float() {
			t.Fatalf("min > max: %v", r)
		}
	}
	if totalCount != 100 {
		t.Fatalf("total count = %f", totalCount)
	}
	if totalSum != 50500 { // sum of 10..1000 step 10
		t.Fatalf("total sum = %f", totalSum)
	}
}

func TestGlobalAggregate(t *testing.T) {
	s := newTestServer(t)
	loadCustomersOrders(t, s)
	rows, err := s.Exec.Query(`SELECT COUNT(*), SUM(o_total) FROM orders WHERE o_total > 900`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Data[0][0].Int() != 10 {
		t.Fatalf("global agg = %v", rows.Data)
	}
}

func TestHavingAndOrderLimit(t *testing.T) {
	s := newTestServer(t)
	loadCustomersOrders(t, s)
	rows, err := s.Exec.Query(`SELECT o_custkey, SUM(o_total) total FROM orders
		GROUP BY o_custkey HAVING SUM(o_total) > 1500 ORDER BY total DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 {
		t.Fatalf("rows = %d", rows.Len())
	}
	if rows.Data[0][1].Float() < rows.Data[1][1].Float() {
		t.Fatal("order")
	}
}

func TestLeftOuterJoinWithOnFilter(t *testing.T) {
	s := newTestServer(t)
	loadCustomersOrders(t, s)
	// Every order total is <= 1000, so the ON filter drops all matches for
	// most customers → COUNT(o_orderkey) = 0 for them (Q13 shape).
	rows, err := s.Exec.Query(`SELECT c_custkey, COUNT(o_orderkey) FROM customer
		LEFT OUTER JOIN orders ON c_custkey = o_custkey AND o_total > 990
		GROUP BY c_custkey`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 30 {
		t.Fatalf("left join must keep all customers: %d", rows.Len())
	}
	var withOrders int
	for _, r := range rows.Data {
		if r[1].Int() > 0 {
			withOrders++
		}
	}
	if withOrders != 1 { // only order 100 (total 1000) passes
		t.Fatalf("customers with orders = %d", withOrders)
	}
}

func TestInSubquery(t *testing.T) {
	s := newTestServer(t)
	loadCustomersOrders(t, s)
	rows, err := s.Exec.Query(`SELECT c_name FROM customer WHERE c_custkey IN
		(SELECT o_custkey FROM orders WHERE o_total > 970)`)
	if err != nil {
		t.Fatal(err)
	}
	// orders 98,99,100 → custkeys 9,10,11.
	if rows.Len() != 3 {
		t.Fatalf("IN subquery rows = %d", rows.Len())
	}
}

func TestCorrelatedExists(t *testing.T) {
	s := newTestServer(t)
	loadCustomersOrders(t, s)
	rows, err := s.Exec.Query(`SELECT COUNT(*) FROM customer WHERE EXISTS
		(SELECT * FROM orders WHERE o_custkey = c_custkey AND o_total > 970)`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Int() != 3 {
		t.Fatalf("EXISTS count = %v", rows.Data)
	}
	// NOT EXISTS complements.
	rows, err = s.Exec.Query(`SELECT COUNT(*) FROM customer WHERE NOT EXISTS
		(SELECT * FROM orders WHERE o_custkey = c_custkey AND o_total > 970)`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Int() != 27 {
		t.Fatalf("NOT EXISTS count = %v", rows.Data)
	}
}

func TestDistinctAggFallsBackToDriver(t *testing.T) {
	s := newTestServer(t)
	loadCustomersOrders(t, s)
	rows, err := s.Exec.Query(`SELECT COUNT(DISTINCT c_mktsegment) FROM customer`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Int() != 3 {
		t.Fatalf("count distinct = %v", rows.Data)
	}
}

func TestCaseExpressionAggregate(t *testing.T) {
	s := newTestServer(t)
	loadCustomersOrders(t, s)
	rows, err := s.Exec.Query(`SELECT SUM(CASE WHEN o_total > 500 THEN 1 ELSE 0 END) FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Int() != 50 {
		t.Fatalf("case sum = %v", rows.Data)
	}
}

func TestAdapterQueryAndCaps(t *testing.T) {
	s := newTestServer(t)
	loadCustomersOrders(t, s)
	RegisterServer(s)
	defer UnregisterServer(s.Host)
	factory := NewAdapterFactory()
	a, err := factory(map[string]string{"DSN": "hive1"}, map[string]string{"user": "dfuser", "password": "dfpass"})
	if err != nil {
		t.Fatal(err)
	}
	caps := a.Capabilities()
	if !caps.Joins || !caps.JoinsOuter || !caps.GroupBy || caps.Insert || caps.Transactions {
		t.Fatalf("caps = %+v", caps)
	}
	schema, err := a.TableSchema([]string{"dflo", "dflo", "customer"})
	if err != nil || schema.Len() != 3 {
		t.Fatalf("schema: %v %v", schema, err)
	}
	st, ok := a.TableStats([]string{"orders"})
	if !ok || st.RowCount != 100 || st.Files != 3 {
		t.Fatalf("stats = %+v", st)
	}
	res, err := a.Query(`SELECT COUNT(*) FROM orders`, fed.QueryOptions{})
	if err != nil || res.Rows.Data[0][0].Int() != 100 {
		t.Fatalf("query: %v %v", res, err)
	}
	if res.FromCache {
		t.Fatal("uncached query must not report cache")
	}
}

func TestRemoteMaterializationCache(t *testing.T) {
	s := newTestServer(t)
	loadCustomersOrders(t, s)
	RegisterServer(s)
	defer UnregisterServer(s.Host)
	a, err := NewAdapterFactory()(map[string]string{"DSN": "hive1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sql := `SELECT c_name FROM customer WHERE c_mktsegment = 'HOUSEHOLD'`
	opts := fed.QueryOptions{UseCache: true, Validity: time.Hour}

	jobsBefore := s.MR.JobsRun.Load()
	res1, err := a.Query(sql, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res1.FromCache || res1.MaterializeTime <= 0 {
		t.Fatalf("first run must materialize: %+v", res1)
	}
	jobsCold := s.MR.JobsRun.Load() - jobsBefore
	if jobsCold == 0 {
		t.Fatal("cold run must execute MR jobs")
	}

	res2, err := a.Query(sql, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.FromCache {
		t.Fatal("second run must hit the cache")
	}
	if s.MR.JobsRun.Load() != jobsBefore+jobsCold {
		t.Fatal("cache hit must not run MR jobs")
	}
	if res2.Rows.Len() != res1.Rows.Len() {
		t.Fatal("cache returned different rows")
	}

	// Different statements key separately.
	res3, err := a.Query(`SELECT c_name FROM customer WHERE c_mktsegment = 'BUILDING'`, opts)
	if err != nil || res3.FromCache {
		t.Fatal("different statement must not hit the cache")
	}
	if s.MS.CacheSize() != 2 {
		t.Fatalf("cache entries = %d", s.MS.CacheSize())
	}

	// Expiry: a zero-age validity expires everything.
	time.Sleep(2 * time.Millisecond)
	res4, err := a.Query(sql, fed.QueryOptions{UseCache: true, Validity: time.Millisecond})
	if err != nil || res4.FromCache {
		t.Fatal("expired entry must be recomputed")
	}

	// Invalidate-all drops temp tables.
	s.MS.CacheInvalidateAll()
	if s.MS.CacheSize() != 0 {
		t.Fatal("invalidate all")
	}
}

func TestHadoopVirtualFunctionDriver(t *testing.T) {
	s := newTestServer(t)
	RegisterServer(s)
	defer UnregisterServer(s.Host)
	// Raw sensor lines in HDFS, outside any Hive table.
	_ = s.MS.Cluster().WriteFile("/plant100/sensors.log",
		[]byte("EQ1 95.5\nEQ2 30.0\nEQ1 99.1\nEQ3 91.0\n"))
	RegisterDriver("com.customer.hadoop.SensorMRDriver", func(server *Server, config map[string]string) (*mapreduce.Job, error) {
		return &mapreduce.Job{
			Name:   "sensor-extract",
			Inputs: []string{"/plant100/sensors.log"},
			Output: "/tmp/sensor-out",
			Map: func(line string, emit func(k, v string)) {
				f := strings.Fields(line)
				if len(f) == 2 {
					emit("", f[0]+"\t"+f[1])
				}
			},
		}, nil
	})
	a, err := NewHadoopAdapterFactory()(map[string]string{
		"webhdfs":     "http://hive1:50070",
		"webhcatalog": "http://hive1:50111",
	}, map[string]string{"user": "hadoop"})
	if err != nil {
		t.Fatal(err)
	}
	fa := a.(fed.FunctionAdapter)
	schema := value.NewSchema(
		value.Column{Name: "EQUIP_ID", Kind: value.KindVarchar},
		value.Column{Name: "PRESSURE", Kind: value.KindDouble},
	)
	rows, err := fa.CallFunction(map[string]string{
		"hana.mapred.driver.class": "com.customer.hadoop.SensorMRDriver",
	}, schema)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 4 {
		t.Fatalf("function rows = %d", rows.Len())
	}
	if _, err := fa.CallFunction(map[string]string{"hana.mapred.driver.class": "nope"}, schema); err == nil {
		t.Fatal("unknown driver must error")
	}
}

func TestExecutorErrors(t *testing.T) {
	s := newTestServer(t)
	if _, err := s.Exec.Query(`SELECT * FROM missing`); err == nil {
		t.Fatal("missing table")
	}
	if _, err := s.Exec.Query(`INSERT INTO x VALUES (1)`); err == nil {
		t.Fatal("non-select must error")
	}
	if _, err := s.Exec.Query(`SELECT 1`); err == nil {
		t.Fatal("select without from unsupported in hive")
	}
}

func TestCacheInvalidationOnLoad(t *testing.T) {
	s := newTestServer(t)
	loadCustomersOrders(t, s)
	s.MS.SetInvalidateCacheOnLoad(true)
	RegisterServer(s)
	defer UnregisterServer(s.Host)
	a, _ := NewAdapterFactory()(map[string]string{"DSN": s.Host}, nil)
	opts := fed.QueryOptions{UseCache: true, Validity: time.Hour}
	sql := `SELECT c_name FROM customer WHERE c_mktsegment = 'HOUSEHOLD'`
	if _, err := a.Query(sql, opts); err != nil {
		t.Fatal(err)
	}
	if s.MS.CacheSize() != 1 {
		t.Fatal("materialization missing")
	}
	// Loading new base data invalidates every materialization.
	if err := s.MS.LoadRows("customer", []value.Row{{
		value.NewInt(999), value.NewString("Customer#999"), value.NewString("HOUSEHOLD"),
	}}, 1); err != nil {
		t.Fatal(err)
	}
	if s.MS.CacheSize() != 0 {
		t.Fatal("cache must be invalidated on load")
	}
	// The recomputed result includes the new row.
	res, err := a.Query(sql, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache {
		t.Fatal("must recompute after invalidation")
	}
	if res.Rows.Len() != 11 {
		t.Fatalf("rows = %d, want 11 (10 + new)", res.Rows.Len())
	}
}

func TestDerivedTableAggregation(t *testing.T) {
	// Q13 shape entirely inside Hive: aggregate over a derived table that
	// itself aggregates an outer join.
	s := newTestServer(t)
	loadCustomersOrders(t, s)
	rows, err := s.Exec.Query(`
		SELECT c_count, COUNT(*) custdist FROM (
			SELECT c_custkey, COUNT(o_orderkey) c_count
			FROM customer LEFT OUTER JOIN orders ON c_custkey = o_custkey
			GROUP BY c_custkey
		) c_orders
		GROUP BY c_count ORDER BY custdist DESC`)
	if err != nil {
		t.Fatal(err)
	}
	// 100 orders over custkeys (i%30)+1: keys 1..10 get 4 orders, 11..30
	// get 3 → two distinct c_count groups.
	if rows.Len() != 2 {
		t.Fatalf("groups = %v", rows.Data)
	}
	var total int64
	for _, r := range rows.Data {
		total += r[1].Int()
	}
	if total != 30 {
		t.Fatalf("customers accounted = %d", total)
	}
}

func TestDateFiltersThroughMapReduce(t *testing.T) {
	s := newTestServer(t)
	schema := value.NewSchema(
		value.Column{Name: "id", Kind: value.KindInt},
		value.Column{Name: "d", Kind: value.KindDate},
	)
	_, _ = s.MS.CreateTable("events", schema, false)
	base, _ := value.ParseDate("2014-01-01")
	var rows []value.Row
	for i := 0; i < 300; i++ {
		rows = append(rows, value.Row{value.NewInt(int64(i)), value.NewDate(base.I + int64(i))})
	}
	_ = s.MS.LoadRows("events", rows, 2)
	got, err := s.Exec.Query(`SELECT COUNT(*) FROM events
		WHERE d >= DATE '2014-02-01' AND d < DATE '2014-03-01'`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0][0].Int() != 28 {
		t.Fatalf("feb count = %v", got.Data[0][0])
	}
}
