package hive

import (
	"context"

	"fmt"
	"strconv"
	"strings"

	"hana/internal/exec"
	"hana/internal/expr"
	"hana/internal/mapreduce"
	"hana/internal/sqlparse"
	"hana/internal/value"
)

// finish applies aggregation (as an MR job with combiners), HAVING,
// projection, DISTINCT, ORDER BY and LIMIT. Post-aggregation stages run in
// the driver, as Hive's final single-reducer stages do.
func (x *Executor) finish(sel *sqlparse.SelectStmt, rel *interRel) (*value.Rows, error) {
	items := sel.Items
	needAgg := len(sel.GroupBy) > 0
	for _, it := range items {
		if it.Expr != nil && expr.HasAggregate(it.Expr) {
			needAgg = true
		}
	}
	if sel.Having != nil && expr.HasAggregate(sel.Having) {
		needAgg = true
	}

	var rows *value.Rows
	var err error
	having := sel.Having
	if needAgg {
		if hasDistinctAgg(sel) {
			// DISTINCT aggregates cannot merge partials; aggregate in the
			// driver over the materialized relation.
			rows, items, having, err = x.driverAggregate(sel, rel)
		} else {
			rows, items, having, err = x.mrAggregate(sel, rel)
		}
		if err != nil {
			return nil, err
		}
	} else {
		rows, err = x.materialize(rel)
		if err != nil {
			return nil, err
		}
	}

	// Expand stars.
	items, err = expandItems(items, rows.Schema)
	if err != nil {
		return nil, err
	}

	it := exec.Iter(exec.NewSlice(rows.Schema, rows.Data))
	if having != nil {
		pred, err := bindClone(having, rows.Schema)
		if err != nil {
			return nil, err
		}
		it = exec.FilterIter(it, pred)
	}
	out := &value.Schema{}
	var exprs []expr.Expr
	for _, item := range items {
		be, err := bindClone(item.Expr, rows.Schema)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, be)
		out.Cols = append(out.Cols, value.Column{Name: itemName(item), Kind: kindOf(item.Expr, rows.Schema), Nullable: true})
	}
	it = exec.ProjectIter(it, exprs, out)
	if sel.Distinct {
		it = &exec.Distinct{In: it}
	}
	if len(sel.OrderBy) > 0 {
		keys := make([]exec.SortKey, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			oe := o.Expr
			for _, item := range items {
				if item.Expr != nil && item.Expr.SQL() == oe.SQL() {
					oe = expr.Col(itemName(item))
					break
				}
			}
			be, err := bindClone(oe, out)
			if err != nil {
				return nil, fmt.Errorf("hive: ORDER BY: %w", err)
			}
			keys[i] = exec.SortKey{E: be, Desc: o.Desc}
		}
		it = &exec.Sort{In: it, Keys: keys}
	}
	if sel.Limit >= 0 {
		it = &exec.Limit{In: it, N: sel.Limit}
	}
	return exec.Materialize(it)
}

// materialize reads the relation applying pending filters driver-side.
func (x *Executor) materialize(rel *interRel) (*value.Rows, error) {
	rows, err := x.ms.ReadDir(rel.dir, rel.schema)
	if err != nil {
		return nil, err
	}
	if len(rel.pending) == 0 {
		return rows, nil
	}
	pred, err := bindClone(expr.And(cloneAll(rel.pending)...), rel.schema)
	if err != nil {
		return nil, err
	}
	kept := rows.Data[:0]
	for _, r := range rows.Data {
		ok, err := expr.Truthy(pred, r)
		if err != nil {
			return nil, err
		}
		if ok {
			kept = append(kept, r)
		}
	}
	rows.Data = kept
	return rows, nil
}

func hasDistinctAgg(sel *sqlparse.SelectStmt) bool {
	found := false
	check := func(e expr.Expr) {
		expr.Walk(e, func(n expr.Expr) bool {
			if f, ok := n.(*expr.Func); ok && f.IsAggregate() && f.Distinct {
				found = true
			}
			return true
		})
	}
	for _, it := range sel.Items {
		if it.Expr != nil {
			check(it.Expr)
		}
	}
	if sel.Having != nil {
		check(sel.Having)
	}
	return found
}

// collectAggs finds the distinct aggregate calls across the statement.
func collectAggs(sel *sqlparse.SelectStmt) []*expr.Func {
	var out []*expr.Func
	seen := map[string]bool{}
	add := func(e expr.Expr) {
		expr.Walk(e, func(n expr.Expr) bool {
			if f, ok := n.(*expr.Func); ok && f.IsAggregate() {
				if !seen[f.SQL()] {
					seen[f.SQL()] = true
					out = append(out, f)
				}
				return false
			}
			return true
		})
	}
	for _, it := range sel.Items {
		if it.Expr != nil {
			add(it.Expr)
		}
	}
	if sel.Having != nil {
		add(sel.Having)
	}
	for _, o := range sel.OrderBy {
		add(o.Expr)
	}
	return out
}

// aggRewrite replaces aggregate calls and group expressions with column
// references into the aggregate output schema.
func aggRewrite(sel *sqlparse.SelectStmt, groupNames []string) (items []sqlparse.SelectItem, having expr.Expr) {
	groupSQL := map[string]string{}
	for i, g := range sel.GroupBy {
		groupSQL[g.SQL()] = groupNames[i]
	}
	rw := func(e expr.Expr) expr.Expr {
		if e == nil {
			return nil
		}
		return expr.Rewrite(e, func(n expr.Expr) expr.Expr {
			if f, ok := n.(*expr.Func); ok && f.IsAggregate() {
				return expr.Col(f.SQL())
			}
			if name, ok := groupSQL[n.SQL()]; ok {
				return expr.Col(name)
			}
			return nil
		})
	}
	items = make([]sqlparse.SelectItem, len(sel.Items))
	for i, it := range sel.Items {
		items[i] = sqlparse.SelectItem{Expr: rw(it.Expr), Alias: it.Alias, Star: it.Star, Qual: it.Qual}
	}
	return items, rw(sel.Having)
}

// aggOutSchema builds the [groups…, aggs…] schema.
func aggOutSchema(sel *sqlparse.SelectStmt, aggs []*expr.Func, in *value.Schema) (*value.Schema, []string) {
	out := &value.Schema{}
	groupNames := make([]string, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		name := g.SQL()
		if c, ok := g.(*expr.ColRef); ok {
			name = c.Name
		}
		groupNames[i] = name
		out.Cols = append(out.Cols, value.Column{Name: name, Kind: kindOf(g, in), Nullable: true})
	}
	for _, f := range aggs {
		out.Cols = append(out.Cols, value.Column{Name: f.SQL(), Kind: kindOf(f, in), Nullable: true})
	}
	return out, groupNames
}

// driverAggregate aggregates in the driver (DISTINCT aggregates).
func (x *Executor) driverAggregate(sel *sqlparse.SelectStmt, rel *interRel) (*value.Rows, []sqlparse.SelectItem, expr.Expr, error) {
	rows, err := x.materialize(rel)
	if err != nil {
		return nil, nil, nil, err
	}
	aggs := collectAggs(sel)
	outSchema, groupNames := aggOutSchema(sel, aggs, rows.Schema)
	groups := make([]expr.Expr, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		if groups[i], err = bindClone(g, rows.Schema); err != nil {
			return nil, nil, nil, err
		}
	}
	specs := make([]exec.AggSpec, len(aggs))
	for i, f := range aggs {
		specs[i] = exec.AggSpec{Func: f.Name, Distinct: f.Distinct}
		if !f.Star {
			arg, err := bindClone(f.Args[0], rows.Schema)
			if err != nil {
				return nil, nil, nil, err
			}
			specs[i].Arg = arg
		}
	}
	agg := &exec.HashAggregate{In: exec.NewSlice(rows.Schema, rows.Data), GroupBy: groups, Aggs: specs, Out: outSchema}
	out, err := exec.Materialize(agg)
	if err != nil {
		return nil, nil, nil, err
	}
	items, having := aggRewrite(sel, groupNames)
	return out, items, having, nil
}

// mrAggregate runs the aggregation as a map-reduce job with a combiner.
func (x *Executor) mrAggregate(sel *sqlparse.SelectStmt, rel *interRel) (*value.Rows, []sqlparse.SelectItem, expr.Expr, error) {
	aggs := collectAggs(sel)
	outSchema, groupNames := aggOutSchema(sel, aggs, rel.schema)

	boundGroups := make([]expr.Expr, len(sel.GroupBy))
	var err error
	for i, g := range sel.GroupBy {
		if boundGroups[i], err = bindClone(g, rel.schema); err != nil {
			return nil, nil, nil, err
		}
	}
	type aggArg struct {
		fn  string
		arg expr.Expr // nil for COUNT(*)
	}
	args := make([]aggArg, len(aggs))
	for i, f := range aggs {
		args[i] = aggArg{fn: f.Name}
		if !f.Star {
			if len(f.Args) != 1 {
				return nil, nil, nil, fmt.Errorf("hive: aggregate %s expects one argument", f.Name)
			}
			if args[i].arg, err = bindClone(f.Args[0], rel.schema); err != nil {
				return nil, nil, nil, err
			}
		}
	}

	var pending expr.Expr
	if len(rel.pending) > 0 {
		if pending, err = bindClone(expr.And(cloneAll(rel.pending)...), rel.schema); err != nil {
			return nil, nil, nil, err
		}
		rel.pending = nil
	}

	schema := rel.schema
	mapper := func(line string, emit func(k, v string)) {
		row, err := DecodeRow(line, schema)
		if err != nil {
			return
		}
		if pending != nil {
			ok, err := expr.Truthy(pending, row)
			if err != nil || !ok {
				return
			}
		}
		keyVals := make([]value.Value, len(boundGroups))
		for i, g := range boundGroups {
			v, err := g.Eval(row)
			if err != nil {
				return
			}
			keyVals[i] = v
		}
		partials := make([]string, len(args))
		for i, a := range args {
			var p partial
			if a.arg == nil {
				p.count = 1
				p.hasVal = true
			} else {
				v, err := a.arg.Eval(row)
				if err != nil {
					return
				}
				p.add(v)
			}
			partials[i] = p.encode()
		}
		emit(EncodeKey(keyVals), strings.Join(partials, "\x02"))
	}
	merge := func(key string, values []string, emit func(k, v string)) {
		acc := make([]partial, len(args))
		for _, v := range values {
			parts := strings.Split(v, "\x02")
			if len(parts) != len(args) {
				continue
			}
			for i, ps := range parts {
				p, err := decodePartial(ps)
				if err != nil {
					continue
				}
				acc[i].merge(p)
			}
		}
		out := make([]string, len(args))
		for i := range acc {
			out[i] = acc[i].encode()
		}
		emit(key, strings.Join(out, "\x02"))
	}

	out := x.tmpDir()
	job := &mapreduce.Job{
		Name:    "groupby",
		Inputs:  []string{rel.dir},
		Output:  out,
		Map:     mapper,
		Combine: merge,
		Reduce:  merge,
	}
	//lint:ignore ctxflow the hive executor runs behind the context-free fed.Adapter.Query boundary
	if _, err := x.mr.RunCtx(context.Background(), job); err != nil {
		return nil, nil, nil, err
	}
	defer func() { _ = x.ms.cluster.Remove(out) }()

	// Decode the reducer output into [groups…, aggs…] rows.
	rows := value.NewRows(outSchema)
	groupKinds := make([]value.Kind, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		groupKinds[i] = kindOf(g, rel.schema)
	}
	for _, fi := range x.ms.cluster.List(out) {
		data, err := x.ms.cluster.ReadFile(fi.Path)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
			if line == "" {
				continue
			}
			var keyPart, valPart string
			if len(boundGroups) > 0 {
				i := strings.IndexByte(line, '\t')
				if i < 0 {
					continue
				}
				keyPart, valPart = line[:i], line[i+1:]
			} else {
				// Global aggregate: reducer key is the empty group.
				valPart = strings.TrimPrefix(line, "\t")
			}
			row := make(value.Row, 0, outSchema.Len())
			if len(boundGroups) > 0 {
				for i, part := range strings.Split(keyPart, "\x01") {
					s, isNull := decodeField(part)
					if isNull {
						row = append(row, value.Null)
						continue
					}
					v, err := parseTyped(s, groupKinds[i])
					if err != nil {
						return nil, nil, nil, err
					}
					row = append(row, v)
				}
			}
			for i, ps := range strings.Split(valPart, "\x02") {
				p, err := decodePartial(ps)
				if err != nil {
					return nil, nil, nil, err
				}
				row = append(row, p.result(args[i].fn))
			}
			rows.Append(row)
		}
	}
	// A global aggregate over empty input still yields one row.
	if len(boundGroups) == 0 && rows.Len() == 0 {
		row := make(value.Row, len(args))
		for i, a := range args {
			row[i] = (&partial{}).result(a.fn)
		}
		rows.Append(row)
	}
	items, having := aggRewrite(sel, groupNames)
	return rows, items, having, nil
}

// partial is a mergeable aggregate state, text-serializable for the
// shuffle.
type partial struct {
	count   int64
	sum     float64
	sumI    int64
	intOnly bool
	hasVal  bool
	min     value.Value
	max     value.Value
}

func (p *partial) add(v value.Value) {
	if v.IsNull() {
		return
	}
	if !p.hasVal {
		p.intOnly = true
	}
	p.hasVal = true
	p.count++
	switch v.K {
	case value.KindInt:
		p.sumI += v.I
		p.sum += float64(v.I)
	case value.KindDouble:
		p.intOnly = false
		p.sum += v.F
	default:
		p.intOnly = false
	}
	if p.min.IsNull() || value.Compare(v, p.min) < 0 {
		p.min = v
	}
	if p.max.IsNull() || value.Compare(v, p.max) > 0 {
		p.max = v
	}
}

func (p *partial) merge(o partial) {
	if !o.hasVal {
		return
	}
	if !p.hasVal {
		*p = o
		return
	}
	p.count += o.count
	p.sum += o.sum
	p.sumI += o.sumI
	p.intOnly = p.intOnly && o.intOnly
	if p.min.IsNull() || (!o.min.IsNull() && value.Compare(o.min, p.min) < 0) {
		p.min = o.min
	}
	if p.max.IsNull() || (!o.max.IsNull() && value.Compare(o.max, p.max) > 0) {
		p.max = o.max
	}
}

func (p *partial) result(fn string) value.Value {
	switch fn {
	case "COUNT":
		return value.NewInt(p.count)
	case "SUM":
		if !p.hasVal {
			return value.Null
		}
		if p.intOnly {
			return value.NewInt(p.sumI)
		}
		return value.NewDouble(p.sum)
	case "AVG":
		if p.count == 0 {
			return value.Null
		}
		return value.NewDouble(p.sum / float64(p.count))
	case "MIN":
		return p.min
	case "MAX":
		return p.max
	}
	return value.Null
}

func (p *partial) encode() string {
	intOnly := "0"
	if p.intOnly {
		intOnly = "1"
	}
	hasVal := "0"
	if p.hasVal {
		hasVal = "1"
	}
	return strings.Join([]string{
		strconv.FormatInt(p.count, 10),
		strconv.FormatFloat(p.sum, 'g', -1, 64),
		strconv.FormatInt(p.sumI, 10),
		intOnly,
		hasVal,
		encodeTyped(p.min),
		encodeTyped(p.max),
	}, "\x03")
}

func decodePartial(s string) (partial, error) {
	parts := strings.Split(s, "\x03")
	if len(parts) != 7 {
		return partial{}, fmt.Errorf("hive: bad partial %q", s)
	}
	var p partial
	var err error
	if p.count, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
		return p, err
	}
	if p.sum, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return p, err
	}
	if p.sumI, err = strconv.ParseInt(parts[2], 10, 64); err != nil {
		return p, err
	}
	p.intOnly = parts[3] == "1"
	p.hasVal = parts[4] == "1"
	if p.min, err = decodeTyped(parts[5]); err != nil {
		return p, err
	}
	if p.max, err = decodeTyped(parts[6]); err != nil {
		return p, err
	}
	return p, nil
}

// encodeTyped serializes a value with its kind tag so MIN/MAX round-trip.
func encodeTyped(v value.Value) string {
	if v.IsNull() {
		return "n"
	}
	switch v.K {
	case value.KindInt:
		return "i" + strconv.FormatInt(v.I, 10)
	case value.KindDouble:
		return "d" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case value.KindDate:
		return "D" + strconv.FormatInt(v.I, 10)
	case value.KindTimestamp:
		return "T" + strconv.FormatInt(v.I, 10)
	case value.KindBool:
		return "b" + strconv.FormatInt(v.I, 10)
	default:
		return "s" + v.S
	}
}

func decodeTyped(s string) (value.Value, error) {
	if s == "" || s == "n" {
		return value.Null, nil
	}
	body := s[1:]
	switch s[0] {
	case 'i':
		i, err := strconv.ParseInt(body, 10, 64)
		return value.NewInt(i), err
	case 'd':
		f, err := strconv.ParseFloat(body, 64)
		return value.NewDouble(f), err
	case 'D':
		i, err := strconv.ParseInt(body, 10, 64)
		return value.NewDate(i), err
	case 'T':
		i, err := strconv.ParseInt(body, 10, 64)
		return value.NewTimestamp(i), err
	case 'b':
		i, err := strconv.ParseInt(body, 10, 64)
		return value.NewBool(i != 0), err
	case 's':
		return value.NewString(body), nil
	}
	return value.Null, fmt.Errorf("hive: bad typed value %q", s)
}

// expandItems expands * and t.* select items.
func expandItems(items []sqlparse.SelectItem, s *value.Schema) ([]sqlparse.SelectItem, error) {
	var out []sqlparse.SelectItem
	for _, item := range items {
		if !item.Star {
			out = append(out, item)
			continue
		}
		matched := false
		for _, col := range s.Cols {
			if item.Qual != "" {
				prefix := strings.ToUpper(item.Qual) + "."
				if !strings.HasPrefix(strings.ToUpper(col.Name), prefix) {
					continue
				}
			}
			out = append(out, sqlparse.SelectItem{Expr: expr.Col(col.Name)})
			matched = true
		}
		if !matched {
			return nil, fmt.Errorf("hive: star expansion found no columns for %q", item.Qual)
		}
	}
	return out, nil
}

func itemName(item sqlparse.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if c, ok := item.Expr.(*expr.ColRef); ok {
		if dot := strings.LastIndexByte(c.Name, '.'); dot >= 0 {
			return c.Name[dot+1:]
		}
		return c.Name
	}
	return item.Expr.SQL()
}

// kindOf guesses an expression's result kind.
func kindOf(e expr.Expr, s *value.Schema) value.Kind {
	switch n := e.(type) {
	case *expr.ColRef:
		if i := s.Find(n.Name); i >= 0 {
			return s.Cols[i].Kind
		}
	case *expr.Literal:
		return n.Val.K
	case *expr.Cast:
		return n.To
	case *expr.Func:
		switch n.Name {
		case "COUNT":
			return value.KindInt
		case "AVG", "STDDEV", "VAR":
			return value.KindDouble
		case "SUM", "MIN", "MAX":
			if len(n.Args) == 1 {
				return kindOf(n.Args[0], s)
			}
		case "YEAR", "MONTH", "DAY", "LENGTH":
			return value.KindInt
		case "UPPER", "LOWER", "SUBSTR", "SUBSTRING", "CONCAT":
			return value.KindVarchar
		}
		return value.KindDouble
	case *expr.BinOp:
		if n.Op.Comparison() || n.Op == expr.OpAnd || n.Op == expr.OpOr {
			return value.KindBool
		}
		lk, rk := kindOf(n.L, s), kindOf(n.R, s)
		if lk == value.KindInt && rk == value.KindInt && n.Op != expr.OpDiv {
			return value.KindInt
		}
		if lk == value.KindDate {
			return lk
		}
		return value.KindDouble
	case *expr.CaseWhen:
		if len(n.Whens) > 0 {
			return kindOf(n.Whens[0].Then, s)
		}
	}
	return value.KindDouble
}
