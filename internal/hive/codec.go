// Package hive implements the SQL-on-Hadoop layer the paper federates with
// (§4): a metastore holding table schemas, warehouse directories and the
// statistics the SDA optimizer consults; a compiler translating query
// blocks into DAGs of map-reduce jobs (scan jobs with pushed filters,
// reduce-side joins, aggregation jobs with combiners); the two-phase CREATE
// TABLE AS SELECT used for remote materialization (§4.4); and the
// `hiveodbc` and `hadoop` SDA adapters.
package hive

import (
	"fmt"
	"strconv"
	"strings"

	"hana/internal/value"
)

// Rows are stored in HDFS as text lines, tab-separated, with \N for NULL —
// Hive's classic LazySimpleSerDe text format.

// EncodeRow serializes one row.
func EncodeRow(row value.Row) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = encodeField(v)
	}
	return strings.Join(parts, "\t")
}

func encodeField(v value.Value) string {
	if v.IsNull() {
		return `\N`
	}
	s := v.String()
	if strings.ContainsAny(s, "\t\n\\") {
		s = strings.NewReplacer("\\", `\\`, "\t", `\t`, "\n", `\n`).Replace(s)
	}
	return s
}

func decodeField(s string) (string, bool) {
	if s == `\N` {
		return "", true
	}
	if strings.ContainsRune(s, '\\') {
		s = strings.NewReplacer(`\\`, "\\", `\t`, "\t", `\n`, "\n").Replace(s)
	}
	return s, false
}

// DecodeRow parses one line under the schema.
func DecodeRow(line string, schema *value.Schema) (value.Row, error) {
	fields := strings.Split(line, "\t")
	if len(fields) != schema.Len() {
		return nil, fmt.Errorf("hive: row has %d fields, schema %d: %q", len(fields), schema.Len(), line)
	}
	row := make(value.Row, len(fields))
	for i, f := range fields {
		s, isNull := decodeField(f)
		if isNull {
			row[i] = value.Null
			continue
		}
		v, err := parseTyped(s, schema.Cols[i].Kind)
		if err != nil {
			return nil, fmt.Errorf("hive: column %s: %w", schema.Cols[i].Name, err)
		}
		row[i] = v
	}
	return row, nil
}

func parseTyped(s string, k value.Kind) (value.Value, error) {
	switch k {
	case value.KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return value.Null, err
		}
		return value.NewInt(i), nil
	case value.KindDouble:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return value.Null, err
		}
		return value.NewDouble(f), nil
	case value.KindBool:
		return value.NewBool(strings.EqualFold(s, "true")), nil
	case value.KindDate:
		return value.ParseDate(s)
	case value.KindTimestamp:
		return value.ParseTimestamp(s)
	default:
		return value.NewString(s), nil
	}
}

// EncodeKey serializes join/group key values into a sortable string.
func EncodeKey(vals []value.Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = encodeField(v)
	}
	return strings.Join(parts, "\x01")
}

// keyHasNull reports whether an encoded key contains a NULL component
// (NULL join keys never match).
func keyHasNull(key string) bool {
	for _, part := range strings.Split(key, "\x01") {
		if part == `\N` {
			return true
		}
	}
	return false
}
