package hive

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"hana/internal/fed"
	"hana/internal/hdfs"
	"hana/internal/value"
)

// TableInfo is one metastore entry: schema, warehouse location and the
// statistics the paper's federated optimizer reads ("the row count and
// number of files used for a table").
type TableInfo struct {
	Name     string
	Schema   *value.Schema
	Dir      string
	RowCount int64
	Files    int
	Bytes    int64
	Temp     bool // CTAS temporary table (remote materialization target)
}

// Metastore is the Hive metastore plus the remote-materialization cache
// registry of §4.4.
type Metastore struct {
	mu      sync.RWMutex
	cluster *hdfs.Cluster
	root    string // warehouse root, e.g. /warehouse
	tables  map[string]*TableInfo
	cache   map[string]fed.CacheEntry
	nextTmp int

	// invalidateOnLoad drops all materializations when base data changes —
	// the conservative stance for "when the tables in Hive are being
	// frequently updated" (§4.4). Off by default: the paper's default
	// freshness control is the validity window.
	invalidateOnLoad bool
}

// SetInvalidateCacheOnLoad toggles cache invalidation on base-table loads.
func (m *Metastore) SetInvalidateCacheOnLoad(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.invalidateOnLoad = on
}

// NewMetastore creates a metastore over the cluster.
func NewMetastore(cluster *hdfs.Cluster, warehouseRoot string) *Metastore {
	if warehouseRoot == "" {
		warehouseRoot = "/warehouse"
	}
	cluster.MkdirAll(warehouseRoot)
	return &Metastore{
		cluster: cluster,
		root:    warehouseRoot,
		tables:  map[string]*TableInfo{},
		cache:   map[string]fed.CacheEntry{},
	}
}

// Cluster exposes the underlying HDFS.
func (m *Metastore) Cluster() *hdfs.Cluster { return m.cluster }

// CreateTable registers a table with an empty warehouse directory. This is
// phase one of the two-phase CTAS: "first the schema resulting from the
// SELECT part is created, and then the target table is created [and
// filled]".
func (m *Metastore) CreateTable(name string, schema *value.Schema, temp bool) (*TableInfo, error) {
	m.mu.Lock()
	key := strings.ToUpper(name)
	if _, ok := m.tables[key]; ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("hive: table %s already exists", name)
	}
	ti := &TableInfo{
		Name:   name,
		Schema: schema.Clone(),
		Dir:    m.root + "/" + strings.ToLower(name),
		Temp:   temp,
	}
	m.tables[key] = ti
	m.mu.Unlock()
	// Create the warehouse directory after releasing the metastore lock:
	// MkdirAll is an HDFS (namenode) round-trip and must not run under a
	// local metadata mutex (lock class hive.Metastore.mu must not nest
	// hdfs.Cluster.mu — see internal/lint/lockrank.go). The entry is
	// published first; MkdirAll is idempotent, so a concurrent writer
	// racing the mkdir at worst re-creates the same directory.
	m.cluster.MkdirAll(ti.Dir)
	return ti, nil
}

// Table resolves a table (case-insensitive).
func (m *Metastore) Table(name string) (*TableInfo, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ti, ok := m.tables[strings.ToUpper(name)]
	return ti, ok
}

// DropTable removes a table and its files.
func (m *Metastore) DropTable(name string) error {
	m.mu.Lock()
	key := strings.ToUpper(name)
	ti, ok := m.tables[key]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("hive: table %s not found", name)
	}
	delete(m.tables, key)
	m.mu.Unlock()
	// Remove the warehouse files outside the metastore lock (HDFS
	// round-trip; same lock-ordering rule as CreateTable). The entry is
	// already unpublished, so readers cannot resolve the table while its
	// files disappear.
	return m.cluster.Remove(ti.Dir)
}

// TableNames lists tables.
func (m *Metastore) TableNames() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for _, t := range m.tables {
		out = append(out, t.Name)
	}
	return out
}

// LoadRows writes rows into the table as numPartFiles text part files and
// updates the statistics. It appends to existing data.
func (m *Metastore) LoadRows(name string, rows []value.Row, numPartFiles int) error {
	ti, ok := m.Table(name)
	if !ok {
		return fmt.Errorf("hive: table %s not found", name)
	}
	if numPartFiles < 1 {
		numPartFiles = 1
	}
	per := (len(rows) + numPartFiles - 1) / numPartFiles
	if per == 0 {
		per = 1
	}
	m.mu.Lock()
	base := ti.Files
	m.mu.Unlock()
	written := 0
	var bytes int64
	for i := 0; written < len(rows); i++ {
		end := written + per
		if end > len(rows) {
			end = len(rows)
		}
		var b strings.Builder
		for _, r := range rows[written:end] {
			b.WriteString(EncodeRow(r))
			b.WriteByte('\n')
		}
		path := fmt.Sprintf("%s/part-%05d", ti.Dir, base+i)
		if err := m.cluster.WriteFile(path, []byte(b.String())); err != nil {
			return err
		}
		bytes += int64(b.Len())
		written = end
	}
	m.mu.Lock()
	ti.RowCount += int64(len(rows))
	ti.Files += (len(rows) + per - 1) / per
	ti.Bytes += bytes
	invalidate := m.invalidateOnLoad && !ti.Temp
	m.mu.Unlock()
	if invalidate {
		m.CacheInvalidateAll()
	}
	return nil
}

// ReadTable materializes all rows of a table (used for cache hits and
// small results).
func (m *Metastore) ReadTable(name string) (*value.Rows, error) {
	ti, ok := m.Table(name)
	if !ok {
		return nil, fmt.Errorf("hive: table %s not found", name)
	}
	return m.ReadDir(ti.Dir, ti.Schema)
}

// ReadDir decodes every line under an HDFS directory with the schema.
func (m *Metastore) ReadDir(dir string, schema *value.Schema) (*value.Rows, error) {
	out := value.NewRows(schema.Clone())
	for _, fi := range m.cluster.List(dir) {
		data, err := m.cluster.ReadFile(fi.Path)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
			if line == "" {
				continue
			}
			row, err := DecodeRow(line, schema)
			if err != nil {
				return nil, err
			}
			out.Append(row)
		}
	}
	return out, nil
}

// NewTempTableName allocates a unique temp table name for CTAS
// materializations.
func (m *Metastore) NewTempTableName() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTmp++
	return fmt.Sprintf("tmp_mat_%06d", m.nextTmp)
}

// CacheLookup returns a valid cache entry for the key, dropping expired
// entries (remote_cache_validity semantics of §4.4: "If it discovers that
// the data set is outdated, it discards the old data set").
func (m *Metastore) CacheLookup(key string, validity time.Duration, now time.Time) (fed.CacheEntry, bool) {
	m.mu.Lock()
	e, ok := m.cache[key]
	m.mu.Unlock()
	if !ok {
		return fed.CacheEntry{}, false
	}
	if e.Expired(validity, now) {
		m.mu.Lock()
		delete(m.cache, key)
		m.mu.Unlock()
		_ = m.DropTable(e.TempTable)
		return fed.CacheEntry{}, false
	}
	return e, true
}

// CacheStore registers a materialization.
func (m *Metastore) CacheStore(e fed.CacheEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cache[e.Key] = e
}

// CacheInvalidateAll clears the cache registry and drops the temp tables —
// used when base data changes.
func (m *Metastore) CacheInvalidateAll() {
	m.mu.Lock()
	entries := m.cache
	m.cache = map[string]fed.CacheEntry{}
	m.mu.Unlock()
	for _, e := range entries {
		_ = m.DropTable(e.TempTable)
	}
}

// CacheSize reports the number of live cache entries.
func (m *Metastore) CacheSize() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.cache)
}
