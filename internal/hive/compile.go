package hive

import (
	"context"

	"fmt"
	"strings"
	"sync/atomic"

	"hana/internal/expr"
	"hana/internal/mapreduce"
	"hana/internal/sqlparse"
	"hana/internal/value"
)

// Executor compiles query blocks into DAGs of map-reduce jobs and runs
// them — the Hive query compiler of §4.4: "the Hive compiler generates a
// DAG of map-reduce jobs corresponding to the federated query".
type Executor struct {
	ms  *Metastore
	mr  *mapreduce.Engine
	seq atomic.Int64
}

// NewExecutor creates an executor.
func NewExecutor(ms *Metastore, mr *mapreduce.Engine) *Executor {
	return &Executor{ms: ms, mr: mr}
}

// interRel is an intermediate relation: an HDFS directory of encoded rows
// plus filters not yet applied.
type interRel struct {
	dir     string
	schema  *value.Schema
	pending []expr.Expr
	temps   []string // temp dirs to clean up
}

func (x *Executor) tmpDir() string {
	return fmt.Sprintf("/tmp/hive-exec/%06d", x.seq.Add(1))
}

// Query parses and executes a statement, returning the result rows.
func (x *Executor) Query(sql string) (*value.Rows, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("hive: %w", err)
	}
	sel, ok := st.(*sqlparse.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("hive: only SELECT is supported, got %T", st)
	}
	return x.Select(sel)
}

// Select executes one query block.
func (x *Executor) Select(sel *sqlparse.SelectStmt) (*value.Rows, error) {
	rel, transforms, err := x.buildRel(sel)
	if err != nil {
		return nil, err
	}
	defer x.cleanup(rel)
	for _, tf := range transforms {
		rel, err = x.applyTransform(rel, tf)
		if err != nil {
			return nil, err
		}
	}
	return x.finish(sel, rel)
}

func (x *Executor) cleanup(rel *interRel) {
	for _, d := range rel.temps {
		_ = x.ms.cluster.Remove(d)
	}
}

type hiveTransform struct {
	anti      bool
	outerExpr expr.Expr
	sel       *sqlparse.SelectStmt
}

// buildRel plans FROM and WHERE into an intermediate relation plus pending
// subquery transforms.
func (x *Executor) buildRel(sel *sqlparse.SelectStmt) (*interRel, []hiveTransform, error) {
	var pool []expr.Expr
	var transforms []hiveTransform
	for _, c := range expr.SplitConjuncts(sel.Where) {
		switch n := c.(type) {
		case *sqlparse.InSubqueryExpr:
			transforms = append(transforms, hiveTransform{anti: n.Negate, outerExpr: n.E, sel: n.Sel})
			continue
		case *sqlparse.ExistsExpr:
			transforms = append(transforms, hiveTransform{anti: n.Negate, sel: n.Sel})
			continue
		case *expr.UnOp:
			if n.Op == expr.OpNot {
				if ex, ok := n.E.(*sqlparse.ExistsExpr); ok {
					transforms = append(transforms, hiveTransform{anti: !ex.Negate, sel: ex.Sel})
					continue
				}
				if in, ok := n.E.(*sqlparse.InSubqueryExpr); ok {
					transforms = append(transforms, hiveTransform{anti: !in.Negate, outerExpr: in.E, sel: in.Sel})
					continue
				}
			}
		}
		pool = append(pool, c)
	}
	rel, err := x.planFrom(sel.From, &pool)
	if err != nil {
		return nil, nil, err
	}
	rel.pending = append(rel.pending, pool...)
	return rel, transforms, nil
}

func (x *Executor) planFrom(te sqlparse.TableExpr, pool *[]expr.Expr) (*interRel, error) {
	switch t := te.(type) {
	case nil:
		return nil, fmt.Errorf("hive: SELECT without FROM is not supported")
	case *sqlparse.TableRef:
		return x.planLeaf(t, pool)
	case *sqlparse.JoinExpr:
		switch t.Type {
		case sqlparse.JoinInner, sqlparse.JoinCross:
			if t.On != nil {
				*pool = append(*pool, expr.SplitConjuncts(t.On)...)
			}
			l, err := x.planFrom(t.L, pool)
			if err != nil {
				return nil, err
			}
			r, err := x.planFrom(t.R, pool)
			if err != nil {
				return nil, err
			}
			return x.joinRels(l, r, pool, false, nil)
		case sqlparse.JoinLeft:
			l, err := x.planFrom(t.L, pool)
			if err != nil {
				return nil, err
			}
			var empty []expr.Expr
			r, err := x.planFrom(t.R, &empty)
			if err != nil {
				return nil, err
			}
			return x.joinRels(l, r, nil, true, t.On)
		default:
			return nil, fmt.Errorf("hive: %s JOIN is not supported", t.Type)
		}
	case *sqlparse.SubqueryTable:
		rows, err := x.Select(t.Sel)
		if err != nil {
			return nil, err
		}
		dir := x.tmpDir()
		if err := x.writeRows(dir, rows.Data); err != nil {
			return nil, err
		}
		return &interRel{dir: dir, schema: rows.Schema.Qualify(t.Alias), temps: []string{dir}}, nil
	}
	return nil, fmt.Errorf("hive: unsupported FROM element %T", te)
}

// planLeaf resolves a base table and pushes its covered filters into a
// map-only scan job.
func (x *Executor) planLeaf(t *sqlparse.TableRef, pool *[]expr.Expr) (*interRel, error) {
	ti, ok := x.ms.Table(t.Name())
	if !ok {
		return nil, fmt.Errorf("hive: table %s not found in metastore", t.Name())
	}
	schema := ti.Schema.Qualify(t.Binding())
	rel := &interRel{dir: ti.Dir, schema: schema}
	var covered []expr.Expr
	rest := (*pool)[:0:0]
	for _, c := range *pool {
		if coversSchema(schema, c) {
			covered = append(covered, c)
		} else {
			rest = append(rest, c)
		}
	}
	*pool = rest
	if len(covered) == 0 {
		return rel, nil
	}
	// Map-only filter scan.
	pred, err := bindClone(expr.And(cloneAll(covered)...), schema)
	if err != nil {
		return nil, err
	}
	out := x.tmpDir()
	job := &mapreduce.Job{
		Name:   "scan-" + ti.Name,
		Inputs: []string{ti.Dir},
		Output: out,
		Map:    filterMap(schema, pred),
	}
	//lint:ignore ctxflow the hive executor runs behind the context-free fed.Adapter.Query boundary
	if _, err := x.mr.RunCtx(context.Background(), job); err != nil {
		return nil, err
	}
	return &interRel{dir: out, schema: schema, temps: []string{out}}, nil
}

func filterMap(schema *value.Schema, pred expr.Expr) mapreduce.MapFunc {
	return func(line string, emit func(k, v string)) {
		row, err := DecodeRow(line, schema)
		if err != nil {
			return
		}
		ok, err := expr.Truthy(pred, row)
		if err != nil || !ok {
			return
		}
		emit("", line)
	}
}

// joinRels runs a reduce-side join job.
func (x *Executor) joinRels(l, r *interRel, pool *[]expr.Expr, outer bool, on expr.Expr) (*interRel, error) {
	combined := l.schema.Concat(r.schema)

	var leftKeys, rightKeys []expr.Expr
	var residual []expr.Expr
	consider := func(conjs []expr.Expr) []expr.Expr {
		var rest []expr.Expr
		for _, c := range conjs {
			if lk, rk, ok := equiPair(c, l.schema, r.schema); ok {
				leftKeys = append(leftKeys, lk)
				rightKeys = append(rightKeys, rk)
				continue
			}
			if coversSchema(r.schema, c) && outer {
				// Right-side-only ON conjuncts of an outer join filter the
				// right input before the join.
				r.pending = append(r.pending, c)
				continue
			}
			if coversSchema(combined, c) {
				residual = append(residual, c)
				continue
			}
			rest = append(rest, c)
		}
		return rest
	}
	if outer {
		consider(expr.SplitConjuncts(on))
	} else if pool != nil {
		*pool = consider(*pool)
	}
	if len(leftKeys) == 0 {
		return nil, fmt.Errorf("hive: join without equality keys is not supported")
	}

	lMap, err := x.sideMapper("L", l, leftKeys)
	if err != nil {
		return nil, err
	}
	rMap, err := x.sideMapper("R", r, rightKeys)
	if err != nil {
		return nil, err
	}
	var res expr.Expr
	if len(residual) > 0 {
		if res, err = bindClone(expr.And(cloneAll(residual)...), combined); err != nil {
			return nil, err
		}
	}
	out := x.tmpDir()
	rightWidth := r.schema.Len()
	job := &mapreduce.Job{
		Name:   "join",
		Output: out,
		TaggedInputs: []mapreduce.TaggedInput{
			{Paths: []string{l.dir}, Map: lMap},
			{Paths: []string{r.dir}, Map: rMap},
		},
		Reduce: joinReduce(l.schema, r.schema, rightWidth, outer, res),
	}
	//lint:ignore ctxflow the hive executor runs behind the context-free fed.Adapter.Query boundary
	if _, err := x.mr.RunCtx(context.Background(), job); err != nil {
		return nil, err
	}
	temps := append(append([]string{}, l.temps...), r.temps...)
	return &interRel{dir: out, schema: combined, temps: append(temps, out)}, nil
}

// sideMapper tags and keys one join input, applying the side's pending
// filters.
func (x *Executor) sideMapper(tag string, rel *interRel, keys []expr.Expr) (mapreduce.MapFunc, error) {
	var pred expr.Expr
	if len(rel.pending) > 0 {
		var err error
		pred, err = bindClone(expr.And(cloneAll(rel.pending)...), rel.schema)
		if err != nil {
			return nil, err
		}
		rel.pending = nil
	}
	bound := make([]expr.Expr, len(keys))
	for i, k := range keys {
		bk, err := bindClone(k, rel.schema)
		if err != nil {
			return nil, err
		}
		bound[i] = bk
	}
	schema := rel.schema
	return func(line string, emit func(k, v string)) {
		row, err := DecodeRow(line, schema)
		if err != nil {
			return
		}
		if pred != nil {
			ok, err := expr.Truthy(pred, row)
			if err != nil || !ok {
				return
			}
		}
		vals := make([]value.Value, len(bound))
		for i, k := range bound {
			v, err := k.Eval(row)
			if err != nil {
				return
			}
			vals[i] = v
		}
		emit(EncodeKey(vals), tag+"\x00"+line)
	}, nil
}

func joinReduce(ls, rs *value.Schema, rightWidth int, outer bool, residual expr.Expr) mapreduce.ReduceFunc {
	return func(key string, values []string, emit func(k, v string)) {
		nullKey := keyHasNull(key)
		var lefts, rights []string
		for _, v := range values {
			i := strings.IndexByte(v, 0)
			if i < 0 {
				continue
			}
			if v[:i] == "L" {
				lefts = append(lefts, v[i+1:])
			} else {
				rights = append(rights, v[i+1:])
			}
		}
		if nullKey {
			rights = nil // NULL keys never match
		}
		for _, ll := range lefts {
			lrow, err := DecodeRow(ll, ls)
			if err != nil {
				continue
			}
			matched := false
			for _, rl := range rights {
				rrow, err := DecodeRow(rl, rs)
				if err != nil {
					continue
				}
				combined := append(append(value.Row{}, lrow...), rrow...)
				if residual != nil {
					ok, err := expr.Truthy(residual, combined)
					if err != nil || !ok {
						continue
					}
				}
				matched = true
				emit("", EncodeRow(combined))
			}
			if outer && !matched {
				nulls := make(value.Row, rightWidth)
				for i := range nulls {
					nulls[i] = value.Null
				}
				emit("", EncodeRow(append(append(value.Row{}, lrow...), nulls...)))
			}
		}
	}
}

// applyTransform runs a semi/anti join MR job for an IN/EXISTS subquery.
func (x *Executor) applyTransform(rel *interRel, tf hiveTransform) (*interRel, error) {
	var outerKeys, innerKeys []expr.Expr
	innerSel := tf.sel

	if tf.outerExpr != nil {
		// IN subquery: inner block as written must yield one column.
		outerKeys = []expr.Expr{tf.outerExpr}
	} else {
		// Correlated EXISTS: extract equality correlation.
		innerSchema, err := x.fromSchemaPreview(tf.sel.From)
		if err != nil {
			return nil, err
		}
		var remaining []expr.Expr
		for _, c := range expr.SplitConjuncts(tf.sel.Where) {
			if o, in := corrPair(c, rel.schema, innerSchema); o != nil {
				outerKeys = append(outerKeys, o)
				innerKeys = append(innerKeys, in)
				continue
			}
			remaining = append(remaining, c)
		}
		if len(outerKeys) == 0 {
			return nil, fmt.Errorf("hive: uncorrelated EXISTS is not supported")
		}
		items := make([]sqlparse.SelectItem, len(innerKeys))
		for i, k := range innerKeys {
			items[i] = sqlparse.SelectItem{Expr: expr.Clone(k)}
		}
		innerSel = &sqlparse.SelectStmt{Items: items, From: tf.sel.From, Where: expr.And(remaining...), Limit: -1}
	}

	innerRows, err := x.Select(innerSel)
	if err != nil {
		return nil, err
	}
	innerDir := x.tmpDir()
	if err := x.writeRows(innerDir, innerRows.Data); err != nil {
		return nil, err
	}
	innerSchema := innerRows.Schema
	innerKeyExprs := make([]expr.Expr, innerSchema.Len())
	for i, c := range innerSchema.Cols {
		k := expr.Col(c.Name)
		k.Ord = i
		innerKeyExprs[i] = k
	}
	if tf.outerExpr != nil && innerSchema.Len() != 1 {
		return nil, fmt.Errorf("hive: IN subquery must return one column")
	}

	lMap, err := x.sideMapper("L", rel, outerKeys)
	if err != nil {
		return nil, err
	}
	innerRel := &interRel{dir: innerDir, schema: innerSchema}
	rMap, err := x.sideMapper("R", innerRel, innerKeyExprs)
	if err != nil {
		return nil, err
	}
	out := x.tmpDir()
	anti := tf.anti
	job := &mapreduce.Job{
		Name:   "semijoin",
		Output: out,
		TaggedInputs: []mapreduce.TaggedInput{
			{Paths: []string{rel.dir}, Map: lMap},
			{Paths: []string{innerDir}, Map: rMap},
		},
		Reduce: func(key string, values []string, emit func(k, v string)) {
			hasRight := false
			var lefts []string
			for _, v := range values {
				i := strings.IndexByte(v, 0)
				if i < 0 {
					continue
				}
				if v[:i] == "L" {
					lefts = append(lefts, v[i+1:])
				} else {
					hasRight = true
				}
			}
			if keyHasNull(key) {
				hasRight = false
			}
			if hasRight != anti {
				for _, l := range lefts {
					emit("", l)
				}
			}
		},
	}
	//lint:ignore ctxflow the hive executor runs behind the context-free fed.Adapter.Query boundary
	if _, err := x.mr.RunCtx(context.Background(), job); err != nil {
		return nil, err
	}
	temps := append(append([]string{}, rel.temps...), innerDir, out)
	return &interRel{dir: out, schema: rel.schema, temps: temps}, nil
}

func (x *Executor) writeRows(dir string, rows []value.Row) error {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(EncodeRow(r))
		b.WriteByte('\n')
	}
	return x.ms.cluster.WriteFile(dir+"/part-00000", []byte(b.String()))
}

// fromSchemaPreview resolves the schema a FROM tree produces.
func (x *Executor) fromSchemaPreview(te sqlparse.TableExpr) (*value.Schema, error) {
	switch t := te.(type) {
	case *sqlparse.TableRef:
		ti, ok := x.ms.Table(t.Name())
		if !ok {
			return nil, fmt.Errorf("hive: table %s not found", t.Name())
		}
		return ti.Schema.Qualify(t.Binding()), nil
	case *sqlparse.JoinExpr:
		l, err := x.fromSchemaPreview(t.L)
		if err != nil {
			return nil, err
		}
		r, err := x.fromSchemaPreview(t.R)
		if err != nil {
			return nil, err
		}
		return l.Concat(r), nil
	}
	return nil, fmt.Errorf("hive: unsupported FROM element %T", te)
}

// helpers

func cloneAll(es []expr.Expr) []expr.Expr {
	out := make([]expr.Expr, len(es))
	for i, e := range es {
		out[i] = expr.Clone(e)
	}
	return out
}

func bindClone(e expr.Expr, s *value.Schema) (expr.Expr, error) {
	c := expr.Clone(e)
	if err := expr.Bind(c, s); err != nil {
		return nil, err
	}
	return c, nil
}

func coversSchema(s *value.Schema, e expr.Expr) bool {
	for _, c := range expr.Columns(e) {
		if s.Find(c) < 0 {
			return false
		}
	}
	return true
}

func equiPair(c expr.Expr, ls, rs *value.Schema) (lk, rk expr.Expr, ok bool) {
	b, isBin := c.(*expr.BinOp)
	if !isBin || b.Op != expr.OpEq {
		return nil, nil, false
	}
	if _, lit := b.L.(*expr.Literal); lit {
		return nil, nil, false
	}
	if _, lit := b.R.(*expr.Literal); lit {
		return nil, nil, false
	}
	if coversSchema(ls, b.L) && coversSchema(rs, b.R) {
		return b.L, b.R, true
	}
	if coversSchema(ls, b.R) && coversSchema(rs, b.L) {
		return b.R, b.L, true
	}
	return nil, nil, false
}

func corrPair(c expr.Expr, outer, inner *value.Schema) (expr.Expr, expr.Expr) {
	b, ok := c.(*expr.BinOp)
	if !ok || b.Op != expr.OpEq {
		return nil, nil
	}
	isOuterSide := func(e expr.Expr) bool {
		cols := expr.Columns(e)
		if len(cols) == 0 {
			return false
		}
		for _, col := range cols {
			if inner.Find(col) >= 0 || outer.Find(col) < 0 {
				return false
			}
		}
		return true
	}
	isInnerSide := func(e expr.Expr) bool {
		cols := expr.Columns(e)
		if len(cols) == 0 {
			return false
		}
		for _, col := range cols {
			if inner.Find(col) < 0 {
				return false
			}
		}
		return true
	}
	if isOuterSide(b.L) && isInnerSide(b.R) {
		return b.L, b.R
	}
	if isOuterSide(b.R) && isInnerSide(b.L) {
		return b.R, b.L
	}
	return nil, nil
}
