package expr

import (
	"math"
	"strings"
	"testing"

	"hana/internal/value"
)

func ev(t *testing.T, e Expr) value.Value {
	t.Helper()
	v, err := e.Eval(nil)
	if err != nil {
		t.Fatalf("%s: %v", e.SQL(), err)
	}
	return v
}

func TestMoreScalarFunctions(t *testing.T) {
	if ev(t, Call("LOWER", Str("ABC"))).String() != "abc" {
		t.Error("LOWER")
	}
	if ev(t, Call("TRIM", Str("  x "))).String() != "x" {
		t.Error("TRIM")
	}
	if ev(t, Call("LENGTH", Str("hello"))).Int() != 5 {
		t.Error("LENGTH")
	}
	if ev(t, Call("SQRT", Lit(value.NewDouble(16)))).Float() != 4 {
		t.Error("SQRT")
	}
	if ev(t, Call("FLOOR", Lit(value.NewDouble(2.9)))).Int() != 2 {
		t.Error("FLOOR")
	}
	if ev(t, Call("CEIL", Lit(value.NewDouble(2.1)))).Int() != 3 {
		t.Error("CEIL")
	}
	if ev(t, Call("CEILING", Lit(value.NewDouble(-2.1)))).Int() != -2 {
		t.Error("CEILING")
	}
	if !ev(t, Call("NULLIF", Int(3), Int(3))).IsNull() {
		t.Error("NULLIF equal")
	}
	if ev(t, Call("NULLIF", Int(3), Int(4))).Int() != 3 {
		t.Error("NULLIF differ")
	}
	if ev(t, Call("CONCAT", Str("a"), Str("b"), Str("c"))).String() != "abc" {
		t.Error("CONCAT")
	}
	if !ev(t, Call("CONCAT", Str("a"), Lit(value.Null))).IsNull() {
		t.Error("CONCAT with NULL")
	}
	if ev(t, Call("IFNULL", Lit(value.Null), Str("d"))).String() != "d" {
		t.Error("IFNULL")
	}
	d, _ := value.ParseDate("2015-03-23")
	if ev(t, Call("DAY", Lit(d))).Int() != 23 {
		t.Error("DAY")
	}
	if ev(t, Call("TO_VARCHAR", Int(5))).String() != "5" {
		t.Error("TO_VARCHAR")
	}
	if ev(t, Call("TO_INTEGER", Str("12"))).Int() != 12 {
		t.Error("TO_INTEGER")
	}
	if ev(t, Call("TO_DOUBLE", Str("1.5"))).Float() != 1.5 {
		t.Error("TO_DOUBLE")
	}
	if ev(t, Call("TO_DATE", Str("2015-03-23"))).K != value.KindDate {
		t.Error("TO_DATE")
	}
	if ev(t, Call("SUBSTR", Str("abc"), Int(10))).String() != "" {
		t.Error("SUBSTR past end")
	}
	if ev(t, Call("SUBSTR", Str("abcdef"), Int(2))).String() != "bcdef" {
		t.Error("SUBSTR two-arg")
	}
	// NULL propagation.
	for _, fn := range []string{"UPPER", "LOWER", "LENGTH", "TRIM", "ABS", "ROUND", "SQRT", "FLOOR", "CEIL", "YEAR", "MONTH", "DAY"} {
		if !ev(t, Call(fn, Lit(value.Null))).IsNull() {
			t.Errorf("%s(NULL) must be NULL", fn)
		}
	}
	// Arity errors.
	for _, bad := range []Expr{Call("UPPER"), Call("MOD", Int(1)), Call("SUBSTR", Str("x"))} {
		if _, err := bad.Eval(nil); err == nil {
			t.Errorf("%s must fail arity check", bad.SQL())
		}
	}
	if _, err := Call("MOD", Int(1), Int(0)).Eval(nil); err == nil {
		t.Error("MOD by zero must error")
	}
	if _, err := Call("ABS", Str("x")).Eval(nil); err == nil {
		t.Error("ABS on string must error")
	}
}

func TestGeoFunctions(t *testing.T) {
	// Walldorf → Brussels ≈ 352 km.
	d := ev(t, Call("ST_DISTANCE",
		Lit(value.NewDouble(49.306)), Lit(value.NewDouble(8.642)),
		Lit(value.NewDouble(50.850)), Lit(value.NewDouble(4.352))))
	if d.Float() < 300e3 || d.Float() > 420e3 {
		t.Errorf("distance = %f", d.Float())
	}
	// Zero distance to self.
	z := ev(t, Call("ST_DISTANCE",
		Lit(value.NewDouble(10)), Lit(value.NewDouble(20)),
		Lit(value.NewDouble(10)), Lit(value.NewDouble(20))))
	if z.Float() != 0 {
		t.Errorf("self distance = %f", z.Float())
	}
	in := ev(t, Call("ST_WITHIN_RECT",
		Lit(value.NewDouble(49)), Lit(value.NewDouble(8)),
		Lit(value.NewDouble(45)), Lit(value.NewDouble(2)),
		Lit(value.NewDouble(55)), Lit(value.NewDouble(12))))
	if !in.Bool() {
		t.Error("ST_WITHIN_RECT inside")
	}
	if !ev(t, Call("ST_DISTANCE", Lit(value.Null), Int(0), Int(0), Int(0))).IsNull() {
		t.Error("ST_DISTANCE NULL propagation")
	}
}

func TestCastNodeAndSQL(t *testing.T) {
	c := &Cast{E: Str("42"), To: value.KindInt}
	if ev(t, c).Int() != 42 {
		t.Error("CAST eval")
	}
	if c.SQL() != "CAST('42' AS BIGINT)" {
		t.Errorf("CAST sql = %s", c.SQL())
	}
	if _, err := (&Cast{E: Str("xx"), To: value.KindInt}).Eval(nil); err == nil {
		t.Error("bad cast must error")
	}
}

func TestSQLRenderers(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&Between{E: Col("a"), Lo: Int(1), Hi: Int(2)}, "(a BETWEEN 1 AND 2)"},
		{&Between{E: Col("a"), Lo: Int(1), Hi: Int(2), Negate: true}, "(a NOT BETWEEN 1 AND 2)"},
		{&IsNull{E: Col("a")}, "(a IS NULL)"},
		{&IsNull{E: Col("a"), Negate: true}, "(a IS NOT NULL)"},
		{&Like{E: Col("a"), Pattern: Str("x%")}, "(a LIKE 'x%')"},
		{&Like{E: Col("a"), Pattern: Str("x%"), Negate: true}, "(a NOT LIKE 'x%')"},
		{&In{E: Col("a"), List: []Expr{Int(1), Int(2)}, Negate: true}, "(a NOT IN (1, 2))"},
		{Not(Col("p")), "(NOT p)"},
		{&UnOp{Op: OpNeg, E: Col("a")}, "(-a)"},
		{Bin(OpConcat, Str("a"), Str("b")), "('a' || 'b')"},
		{&Param{Index: 0}, "?"},
	}
	for _, c := range cases {
		if got := c.e.SQL(); got != c.want {
			t.Errorf("SQL = %q want %q", got, c.want)
		}
	}
	cw := &CaseWhen{Else: Str("e")}
	cw.Whens = append(cw.Whens, struct {
		Cond Expr
		Then Expr
	}{Col("c"), Str("t")})
	if got := cw.SQL(); !strings.Contains(got, "WHEN c THEN 't' ELSE 'e' END") {
		t.Errorf("CASE sql = %q", got)
	}
	f := &Func{Name: "COUNT", Star: true}
	if f.SQL() != "COUNT(*)" {
		t.Error("COUNT(*) sql")
	}
	fd := &Func{Name: "COUNT", Distinct: true, Args: []Expr{Col("a")}}
	if fd.SQL() != "COUNT(DISTINCT a)" {
		t.Errorf("distinct sql = %s", fd.SQL())
	}
}

func TestConcatOperatorEval(t *testing.T) {
	v := ev(t, Bin(OpConcat, Str("foo"), Int(7)))
	if v.String() != "foo7" {
		t.Errorf("concat = %v", v)
	}
	if !ev(t, Bin(OpConcat, Lit(value.Null), Str("x"))).IsNull() {
		t.Error("NULL || x is NULL")
	}
}

func TestNegationEval(t *testing.T) {
	if ev(t, &UnOp{Op: OpNeg, E: Int(5)}).Int() != -5 {
		t.Error("negate int")
	}
	if ev(t, &UnOp{Op: OpNeg, E: Lit(value.NewDouble(2.5))}).Float() != -2.5 {
		t.Error("negate double")
	}
	if _, err := (&UnOp{Op: OpNeg, E: Str("x")}).Eval(nil); err == nil {
		t.Error("negate string must error")
	}
}

func TestRoundHalfAndVariance(t *testing.T) {
	if ev(t, Call("ROUND", Lit(value.NewDouble(2.5)))).Float() != 3 {
		t.Error("ROUND half")
	}
	if v := ev(t, Call("ROUND", Lit(value.NewDouble(math.Pi)), Int(4))).Float(); v != 3.1416 {
		t.Errorf("ROUND(pi,4) = %v", v)
	}
}

func TestWalkStopsOnFalse(t *testing.T) {
	e := Bin(OpAnd, Col("a"), Bin(OpOr, Col("b"), Col("c")))
	var visited int
	Walk(e, func(Expr) bool {
		visited++
		return visited < 2 // stop descending after the second node
	})
	if visited >= 6 {
		t.Errorf("walk did not stop: %d nodes", visited)
	}
}
