package expr

import (
	"fmt"
	"strings"

	"hana/internal/value"
)

// Walk calls fn on every node of the tree in pre-order. If fn returns
// false, children of that node are not visited.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch n := e.(type) {
	case *BinOp:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *UnOp:
		Walk(n.E, fn)
	case *IsNull:
		Walk(n.E, fn)
	case *Between:
		Walk(n.E, fn)
		Walk(n.Lo, fn)
		Walk(n.Hi, fn)
	case *In:
		Walk(n.E, fn)
		for _, el := range n.List {
			Walk(el, fn)
		}
	case *Like:
		Walk(n.E, fn)
		Walk(n.Pattern, fn)
	case *Func:
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case *Cast:
		Walk(n.E, fn)
	case *CaseWhen:
		for _, w := range n.Whens {
			Walk(w.Cond, fn)
			Walk(w.Then, fn)
		}
		Walk(n.Else, fn)
	}
}

// Clone deep-copies an expression tree.
func Clone(e Expr) Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *ColRef:
		c := *n
		return &c
	case *Literal:
		c := *n
		return &c
	case *Param:
		c := *n
		return &c
	case *BinOp:
		return &BinOp{Op: n.Op, L: Clone(n.L), R: Clone(n.R)}
	case *UnOp:
		return &UnOp{Op: n.Op, E: Clone(n.E)}
	case *IsNull:
		return &IsNull{E: Clone(n.E), Negate: n.Negate}
	case *Between:
		return &Between{E: Clone(n.E), Lo: Clone(n.Lo), Hi: Clone(n.Hi), Negate: n.Negate}
	case *In:
		list := make([]Expr, len(n.List))
		for i, el := range n.List {
			list[i] = Clone(el)
		}
		return &In{E: Clone(n.E), List: list, Negate: n.Negate}
	case *Like:
		return &Like{E: Clone(n.E), Pattern: Clone(n.Pattern), Negate: n.Negate}
	case *Func:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Clone(a)
		}
		return &Func{Name: n.Name, Args: args, Distinct: n.Distinct, Star: n.Star}
	case *Cast:
		return &Cast{E: Clone(n.E), To: n.To}
	case *CaseWhen:
		c := &CaseWhen{Else: Clone(n.Else)}
		c.Whens = make([]struct {
			Cond Expr
			Then Expr
		}, len(n.Whens))
		for i, w := range n.Whens {
			c.Whens[i].Cond = Clone(w.Cond)
			c.Whens[i].Then = Clone(w.Then)
		}
		return c
	}
	// Foreign node types (e.g. the parser's subquery expressions) are
	// treated as opaque leaves and shared rather than copied.
	return e
}

// Bind resolves every ColRef in the tree against the schema, returning an
// error listing unresolved columns. Bind mutates the tree; callers that
// reuse plan fragments should Clone first.
func Bind(e Expr, s *value.Schema) error {
	var missing []string
	Walk(e, func(n Expr) bool {
		switch c := n.(type) {
		case *ColRef:
			if ord := s.Find(c.Name); ord >= 0 {
				c.Ord = ord
			} else {
				missing = append(missing, c.Name)
			}
		case *In:
			c.prepare()
		}
		return true
	})
	if len(missing) > 0 {
		return fmt.Errorf("unresolved column(s) %s in schema %s", strings.Join(missing, ", "), s)
	}
	return nil
}

// Columns returns the distinct column names referenced by the tree, in
// first-appearance order.
func Columns(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	Walk(e, func(n Expr) bool {
		if c, ok := n.(*ColRef); ok {
			key := strings.ToUpper(c.Name)
			if !seen[key] {
				seen[key] = true
				out = append(out, c.Name)
			}
		}
		return true
	})
	return out
}

// HasAggregate reports whether the tree contains an aggregate function
// call.
func HasAggregate(e Expr) bool {
	found := false
	Walk(e, func(n Expr) bool {
		if f, ok := n.(*Func); ok && f.IsAggregate() {
			found = true
			return false
		}
		return true
	})
	return found
}

// SplitConjuncts flattens a predicate into its AND-ed conjuncts. A nil
// input yields nil.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinOp); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// SubstituteParams replaces Param nodes with literal values by index.
func SubstituteParams(e Expr, params []value.Value) (Expr, error) {
	var firstErr error
	out := rewrite(e, func(n Expr) Expr {
		p, ok := n.(*Param)
		if !ok {
			return nil
		}
		if p.Index < 0 || p.Index >= len(params) {
			if firstErr == nil {
				firstErr = fmt.Errorf("parameter ?%d out of range (%d bound)", p.Index, len(params))
			}
			return nil
		}
		return Lit(params[p.Index])
	})
	return out, firstErr
}

// RenameColumns rewrites column references using the mapping (upper-case
// keys); unmapped references are kept. Used when pushing predicates through
// projections and when generating remote SQL with different column names.
func RenameColumns(e Expr, mapping map[string]string) Expr {
	return rewrite(e, func(n Expr) Expr {
		c, ok := n.(*ColRef)
		if !ok {
			return nil
		}
		if to, ok := mapping[strings.ToUpper(c.Name)]; ok {
			return Col(to)
		}
		return nil
	})
}

// Rewrite clones the tree, replacing any node for which repl returns
// non-nil. The replacement subtree is used verbatim (not descended into).
func Rewrite(e Expr, repl func(Expr) Expr) Expr { return rewrite(e, repl) }

// rewrite clones the tree, replacing any node for which repl returns
// non-nil.
func rewrite(e Expr, repl func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	if r := repl(e); r != nil {
		return r
	}
	switch n := e.(type) {
	case *ColRef, *Literal, *Param:
		return Clone(e)
	case *BinOp:
		return &BinOp{Op: n.Op, L: rewrite(n.L, repl), R: rewrite(n.R, repl)}
	case *UnOp:
		return &UnOp{Op: n.Op, E: rewrite(n.E, repl)}
	case *IsNull:
		return &IsNull{E: rewrite(n.E, repl), Negate: n.Negate}
	case *Between:
		return &Between{E: rewrite(n.E, repl), Lo: rewrite(n.Lo, repl), Hi: rewrite(n.Hi, repl), Negate: n.Negate}
	case *In:
		list := make([]Expr, len(n.List))
		for i, el := range n.List {
			list[i] = rewrite(el, repl)
		}
		return &In{E: rewrite(n.E, repl), List: list, Negate: n.Negate}
	case *Like:
		return &Like{E: rewrite(n.E, repl), Pattern: rewrite(n.Pattern, repl), Negate: n.Negate}
	case *Func:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = rewrite(a, repl)
		}
		return &Func{Name: n.Name, Args: args, Distinct: n.Distinct, Star: n.Star}
	case *Cast:
		return &Cast{E: rewrite(n.E, repl), To: n.To}
	case *CaseWhen:
		c := &CaseWhen{Else: rewrite(n.Else, repl)}
		c.Whens = make([]struct {
			Cond Expr
			Then Expr
		}, len(n.Whens))
		for i, w := range n.Whens {
			c.Whens[i].Cond = rewrite(w.Cond, repl)
			c.Whens[i].Then = rewrite(w.Then, repl)
		}
		return c
	}
	// Foreign node types pass through unchanged, like Clone.
	return e
}

// Truthy evaluates a predicate against a row: NULL and errors count as
// false (SQL WHERE semantics); the error is still returned for diagnosis.
func Truthy(e Expr, row value.Row) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	return v.K == value.KindBool && v.Bool(), nil
}
