package expr

import (
	"sort"
	"strings"

	"hana/internal/value"
)

// Vectorized predicate evaluation (ROADMAP item 2). SelectBatch refines a
// batch's selection vector through a predicate without materializing rows:
// conjuncts whose operands are column vectors and literals compile to
// three-valued kernels that run over primitive arrays — and, for VARCHAR
// columns still in dictionary-encoded form, over dictionary codes, so an
// equality against a sorted main dictionary costs one binary search per
// batch plus one integer compare per row.
//
// Kernels return one of three verdicts per row. The encoding is ordered
// false < null < true so that AND is min() and OR is max(), which matches
// SQL three-valued logic for operands that are genuine booleans — and every
// compiled kernel yields only genuine booleans or NULL, never a coerced
// non-bool truth value, keeping the composition exact.
//
// Conjuncts that do not compile (arbitrary arithmetic, CASE, scalar
// functions, correlated nodes) fall back to one row-major pass that
// re-evaluates the FULL predicate through Expr.Eval on the rows surviving
// the kernels. Because a conjunction is genuinely true only when every
// bool-or-null conjunct is true, pre-filtering by compiled conjuncts and
// then re-checking the whole predicate selects exactly the rows the
// row-at-a-time path selects. The one visible difference is error order:
// rows a kernel rejects are never row-evaluated, so an evaluation error the
// row path would report (e.g. division by zero in a later conjunct) can be
// skipped; DESIGN.md documents this divergence.

// Tri-state verdicts, ordered so AND=min and OR=max.
const (
	triFalse int8 = 0
	triNull  int8 = 1
	triTrue  int8 = 2
)

func triBool(b bool) int8 {
	if b {
		return triTrue
	}
	return triFalse
}

// triKernel evaluates one predicate conjunct for a physical row index.
type triKernel func(i int) int8

// SelectBatch filters b in place: after the call, b's selection vector
// lists exactly the physical rows for which pred is genuinely true, in
// ascending order — the same rows the row-at-a-time exec.Filter would keep.
// A nil predicate keeps everything. Errors from non-compiled conjuncts are
// propagated (first surviving row in batch order wins).
func SelectBatch(pred Expr, b *value.Batch) error {
	if pred == nil {
		return nil
	}
	conjs := SplitConjuncts(pred)
	kernels := make([]triKernel, 0, len(conjs))
	needFallback := false
	for _, c := range conjs {
		if k, ok := compileTri(c, b); ok {
			kernels = append(kernels, k)
		} else {
			needFallback = true
		}
	}
	if len(kernels) > 0 {
		applyKernels(b, kernels)
	}
	if !needFallback {
		return nil
	}
	// Row-major fallback: re-evaluate the full predicate on survivors. The
	// scratch row is reused; FillRow boxes on the stack, so the pass costs
	// one allocation per batch, none per row.
	row := make(value.Row, len(b.Cols))
	n := b.Len()
	sel := b.Sel
	if sel == nil {
		sel = make([]int32, n)
		for i := range sel {
			sel[i] = int32(i)
		}
	}
	out := sel[:0]
	for _, i := range sel {
		b.FillRow(int(i), row)
		ok, err := Truthy(pred, row)
		if err != nil {
			return err
		}
		if ok {
			out = append(out, i)
		}
	}
	b.Sel = out
	return nil
}

// applyKernels keeps the rows every kernel accepts (AND semantics: a false
// or NULL verdict drops the row). The selection is refined in place; when
// the batch has no selection yet, one is allocated.
func applyKernels(b *value.Batch, kernels []triKernel) {
	if b.Sel == nil {
		sel := make([]int32, 0, b.N)
	scan:
		for i := 0; i < b.N; i++ {
			for _, k := range kernels {
				if k(i) != triTrue {
					continue scan
				}
			}
			sel = append(sel, int32(i))
		}
		b.Sel = sel
		return
	}
	out := b.Sel[:0]
live:
	for _, i := range b.Sel {
		for _, k := range kernels {
			if k(int(i)) != triTrue {
				continue live
			}
		}
		out = append(out, i)
	}
	b.Sel = out
}

// constKernel returns a kernel with a fixed verdict.
func constKernel(v int8) triKernel { return func(int) int8 { return v } }

// compileTri compiles a predicate subtree into a tri-state kernel. It
// succeeds only for subtrees that (a) cannot fail at evaluation time and
// (b) yield only genuine booleans or NULL — the properties the kernel
// composition relies on.
func compileTri(e Expr, b *value.Batch) (triKernel, bool) {
	switch n := e.(type) {
	case *Literal:
		if n.Val.IsNull() {
			return constKernel(triNull), true
		}
		if n.Val.K == value.KindBool {
			return constKernel(triBool(n.Val.Bool())), true
		}
		return nil, false
	case *ColRef:
		v, ok := colVec(n, b)
		if !ok {
			return nil, false
		}
		if v.Pruned {
			return constKernel(triNull), true
		}
		if v.Vals != nil || v.Kind != value.KindBool {
			return nil, false
		}
		ints := v.Ints
		return func(i int) int8 {
			if v.Null(i) {
				return triNull
			}
			return triBool(ints[i] != 0)
		}, true
	case *UnOp:
		if n.Op != OpNot {
			return nil, false
		}
		k, ok := compileTri(n.E, b)
		if !ok {
			return nil, false
		}
		return func(i int) int8 { return 2 - k(i) }, true
	case *BinOp:
		switch {
		case n.Op == OpAnd:
			l, ok := compileTri(n.L, b)
			if !ok {
				return nil, false
			}
			r, ok := compileTri(n.R, b)
			if !ok {
				return nil, false
			}
			return func(i int) int8 { return min8(l(i), r(i)) }, true
		case n.Op == OpOr:
			l, ok := compileTri(n.L, b)
			if !ok {
				return nil, false
			}
			r, ok := compileTri(n.R, b)
			if !ok {
				return nil, false
			}
			return func(i int) int8 { return max8(l(i), r(i)) }, true
		case n.Op.Comparison():
			return compileCmp(n.Op, n.L, n.R, b)
		}
		return nil, false
	case *Between:
		ge, ok := compileCmp(OpGe, n.E, n.Lo, b)
		if !ok {
			return nil, false
		}
		le, ok := compileCmp(OpLe, n.E, n.Hi, b)
		if !ok {
			return nil, false
		}
		neg := n.Negate
		return func(i int) int8 {
			a := ge(i)
			if a == triNull {
				return triNull
			}
			c := le(i)
			if c == triNull {
				return triNull
			}
			in := a == triTrue && c == triTrue
			return triBool(in != neg)
		}, true
	case *In:
		return compileIn(n, b)
	case *Like:
		return compileLike(n, b)
	case *IsNull:
		switch op := n.E.(type) {
		case *ColRef:
			v, ok := colVec(op, b)
			if !ok {
				return nil, false
			}
			neg := n.Negate
			return func(i int) int8 { return triBool(v.Null(i) != neg) }, true
		case *Literal:
			return constKernel(triBool(op.Val.IsNull() != n.Negate)), true
		}
		return nil, false
	}
	return nil, false
}

func min8(a, b int8) int8 {
	if a < b {
		return a
	}
	return b
}

func max8(a, b int8) int8 {
	if a > b {
		return a
	}
	return b
}

// colVec resolves a bound column reference to its vector in the batch.
func colVec(c *ColRef, b *value.Batch) (*value.Vec, bool) {
	if c.Ord < 0 || c.Ord >= len(b.Cols) {
		return nil, false
	}
	return &b.Cols[c.Ord], true
}

// cmpOperand is a comparison operand: either a column vector or a literal.
type cmpOperand struct {
	vec *value.Vec
	lit value.Value
}

func compileOperand(e Expr, b *value.Batch) (cmpOperand, bool) {
	switch n := e.(type) {
	case *ColRef:
		v, ok := colVec(n, b)
		if !ok {
			return cmpOperand{}, false
		}
		if v.Pruned { // pruned columns read as NULL everywhere
			return cmpOperand{lit: value.Null}, true
		}
		if v.Vals != nil { // boxed columns keep the row-major path
			return cmpOperand{}, false
		}
		return cmpOperand{vec: v}, true
	case *Literal:
		return cmpOperand{lit: n.Val}, true
	}
	return cmpOperand{}, false
}

// cmpVerdict maps a three-way comparison result to the operator's verdict.
func cmpVerdict(op Op, c int) int8 {
	switch op {
	case OpEq:
		return triBool(c == 0)
	case OpNe:
		return triBool(c != 0)
	case OpLt:
		return triBool(c < 0)
	case OpLe:
		return triBool(c <= 0)
	case OpGt:
		return triBool(c > 0)
	default: // OpGe
		return triBool(c >= 0)
	}
}

// compileCmp compiles `l op r` where both operands are column vectors or
// literals, mirroring value.Compare's promotion rules exactly: Int-Int
// compares integers, any Double promotes to float, temporal kinds compare
// by encoding, and incomparable kind pairs compare by kind tag (a constant
// per batch). NULL on either side yields NULL.
func compileCmp(op Op, l, r Expr, b *value.Batch) (triKernel, bool) {
	lo, ok := compileOperand(l, b)
	if !ok {
		return nil, false
	}
	ro, ok := compileOperand(r, b)
	if !ok {
		return nil, false
	}
	switch {
	case lo.vec == nil && ro.vec == nil:
		if lo.lit.IsNull() || ro.lit.IsNull() {
			return constKernel(triNull), true
		}
		return constKernel(cmpVerdict(op, value.Compare(lo.lit, ro.lit))), true
	case lo.vec != nil && ro.vec == nil:
		return compileCmpVecLit(op, lo.vec, ro.lit, false)
	case lo.vec == nil:
		return compileCmpVecLit(op, ro.vec, lo.lit, true)
	default:
		return compileCmpVecVec(op, lo.vec, ro.vec)
	}
}

// compileCmpVecLit compiles vec-vs-literal; flip=true means the literal is
// the left operand (the comparison sign is negated).
func compileCmpVecLit(op Op, v *value.Vec, lit value.Value, flip bool) (triKernel, bool) {
	if lit.IsNull() {
		return constKernel(triNull), true
	}
	sign := 1
	if flip {
		sign = -1
	}
	vk, lk := v.Kind, lit.K
	intKernel := func(litI int64) triKernel {
		ints := v.Ints
		return func(i int) int8 {
			if v.Null(i) {
				return triNull
			}
			return cmpVerdict(op, sign*cmpInt64(ints[i], litI))
		}
	}
	floatKernel := func(litF float64) triKernel {
		if vk == value.KindDouble {
			fs := v.Floats
			return func(i int) int8 {
				if v.Null(i) {
					return triNull
				}
				return cmpVerdict(op, sign*cmpF64(fs[i], litF))
			}
		}
		ints := v.Ints
		return func(i int) int8 {
			if v.Null(i) {
				return triNull
			}
			return cmpVerdict(op, sign*cmpF64(float64(ints[i]), litF))
		}
	}
	switch {
	case numericVecKind(vk) && numericVecKind(lk):
		if vk == value.KindInt && lk == value.KindInt {
			return intKernel(lit.I), true
		}
		return floatKernel(lit.Float()), true
	case vk != lk:
		if temporalVecKind(vk) && temporalVecKind(lk) {
			return intKernel(lit.I), true
		}
		// Incomparable kinds: value.Compare orders by kind tag, which is
		// constant for the whole vector; NULL rows still yield NULL.
		vd := cmpVerdict(op, sign*cmpInt64(int64(vk), int64(lk)))
		return func(i int) int8 {
			if v.Null(i) {
				return triNull
			}
			return vd
		}, true
	case vk == value.KindDouble:
		return floatKernel(lit.F), true
	case vk == value.KindVarchar:
		return compileCmpStrLit(op, v, lit.S, sign), true
	default: // Bool, Int, Date, Timestamp: integer payloads
		return intKernel(lit.I), true
	}
}

// compileCmpStrLit compares a VARCHAR vector against a string literal. On a
// sorted dictionary the literal's rank is found once per batch and rows
// compare codes against it; on an unsorted (delta) dictionary a verdict per
// dictionary entry is precomputed; materialized strings compare directly.
func compileCmpStrLit(op Op, v *value.Vec, lit string, sign int) triKernel {
	if v.Codes != nil {
		dict, codes := v.Dict, v.Codes
		if v.Sorted {
			lb := sort.SearchStrings(dict, lit)
			exact := lb < len(dict) && dict[lb] == lit
			return func(i int) int8 {
				if v.Null(i) {
					return triNull
				}
				c := int(codes[i])
				cmp := 1
				switch {
				case c < lb:
					cmp = -1
				case c == lb && exact:
					cmp = 0
				}
				return cmpVerdict(op, sign*cmp)
			}
		}
		verdicts := make([]int8, len(dict))
		for c, s := range dict {
			verdicts[c] = cmpVerdict(op, sign*strings.Compare(s, lit))
		}
		return func(i int) int8 {
			if v.Null(i) {
				return triNull
			}
			return verdicts[codes[i]]
		}
	}
	strs := v.Strs
	return func(i int) int8 {
		if v.Null(i) {
			return triNull
		}
		return cmpVerdict(op, sign*strings.Compare(strs[i], lit))
	}
}

// compileCmpVecVec compiles vec-vs-vec comparisons for numeric and temporal
// payloads (the VARCHAR-vs-VARCHAR case keeps the row path: the two vectors
// generally use different dictionaries).
func compileCmpVecVec(op Op, a, bv *value.Vec) (triKernel, bool) {
	ak, bk := a.Kind, bv.Kind
	nulls := func(i int) bool { return a.Null(i) || bv.Null(i) }
	intCmp := func() triKernel {
		ai, bi := a.Ints, bv.Ints
		return func(i int) int8 {
			if nulls(i) {
				return triNull
			}
			return cmpVerdict(op, cmpInt64(ai[i], bi[i]))
		}
	}
	switch {
	case numericVecKind(ak) && numericVecKind(bk):
		if ak == value.KindInt && bk == value.KindInt {
			return intCmp(), true
		}
		af, bf := vecFloatGetter(a), vecFloatGetter(bv)
		return func(i int) int8 {
			if nulls(i) {
				return triNull
			}
			return cmpVerdict(op, cmpF64(af(i), bf(i)))
		}, true
	case ak != bk:
		if temporalVecKind(ak) && temporalVecKind(bk) {
			return intCmp(), true
		}
		vd := cmpVerdict(op, cmpInt64(int64(ak), int64(bk)))
		return func(i int) int8 {
			if nulls(i) {
				return triNull
			}
			return vd
		}, true
	case ak == value.KindDouble:
		af, bf := a.Floats, bv.Floats
		return func(i int) int8 {
			if nulls(i) {
				return triNull
			}
			return cmpVerdict(op, cmpF64(af[i], bf[i]))
		}, true
	case ak == value.KindVarchar:
		return nil, false
	default:
		return intCmp(), true
	}
}

func vecFloatGetter(v *value.Vec) func(int) float64 {
	if v.Kind == value.KindDouble {
		fs := v.Floats
		return func(i int) float64 { return fs[i] }
	}
	ints := v.Ints
	return func(i int) float64 { return float64(ints[i]) }
}

func numericVecKind(k value.Kind) bool  { return k == value.KindInt || k == value.KindDouble }
func temporalVecKind(k value.Kind) bool { return k == value.KindDate || k == value.KindTimestamp }

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// compileIn compiles `E [NOT] IN (literals…)`. Dictionary-encoded VARCHAR
// vectors get a verdict per dictionary entry (one set probe per distinct
// value instead of one per row); other vectors re-run the exact membership
// logic per row on an unboxed value.
func compileIn(n *In, b *value.Batch) (triKernel, bool) {
	for _, el := range n.List {
		if _, ok := el.(*Literal); !ok {
			return nil, false
		}
	}
	switch e := n.E.(type) {
	case *Literal:
		return constKernel(inVerdict(n, e.Val)), true
	case *ColRef:
		v, ok := colVec(e, b)
		if !ok {
			return nil, false
		}
		if v.Pruned {
			return constKernel(triNull), true
		}
		if v.Vals == nil && v.Codes != nil && v.Kind == value.KindVarchar {
			verdicts := make([]int8, len(v.Dict))
			for c, s := range v.Dict {
				verdicts[c] = inVerdict(n, value.Value{K: value.KindVarchar, S: s})
			}
			codes := v.Codes
			return func(i int) int8 {
				if v.Null(i) {
					return triNull
				}
				return verdicts[codes[i]]
			}, true
		}
		return func(i int) int8 { return inVerdict(n, v.Value(i)) }, true
	}
	return nil, false
}

// inVerdict mirrors In.Eval for an all-literal list (which cannot fail).
func inVerdict(n *In, v value.Value) int8 {
	if v.IsNull() {
		return triNull
	}
	if n.strs != nil && v.K == value.KindVarchar {
		if n.strs[v.S] {
			return triBool(!n.Negate)
		}
		if n.strNull {
			return triNull
		}
		return triBool(n.Negate)
	}
	sawNull := false
	for _, el := range n.List {
		lv := el.(*Literal).Val
		if lv.IsNull() {
			sawNull = true
			continue
		}
		if value.Compare(v, lv) == 0 {
			return triBool(!n.Negate)
		}
	}
	if sawNull {
		return triNull
	}
	return triBool(n.Negate)
}

// compileLike compiles `E [NOT] LIKE 'pattern'` for VARCHAR vectors with a
// literal pattern. Dictionary-encoded vectors match each distinct value
// once; materialized vectors match per row.
func compileLike(n *Like, b *value.Batch) (triKernel, bool) {
	pl, ok := n.Pattern.(*Literal)
	if !ok {
		return nil, false
	}
	if pl.Val.IsNull() {
		return constKernel(triNull), true
	}
	pat := pl.Val.String()
	neg := n.Negate
	switch e := n.E.(type) {
	case *Literal:
		if e.Val.IsNull() {
			return constKernel(triNull), true
		}
		return constKernel(triBool(likeMatch(e.Val.String(), pat) != neg)), true
	case *ColRef:
		v, ok := colVec(e, b)
		if !ok {
			return nil, false
		}
		if v.Pruned {
			return constKernel(triNull), true
		}
		if v.Vals != nil || v.Kind != value.KindVarchar {
			return nil, false
		}
		if v.Codes != nil {
			verdicts := make([]int8, len(v.Dict))
			for c, s := range v.Dict {
				verdicts[c] = triBool(likeMatch(s, pat) != neg)
			}
			codes := v.Codes
			return func(i int) int8 {
				if v.Null(i) {
					return triNull
				}
				return verdicts[codes[i]]
			}, true
		}
		strs := v.Strs
		return func(i int) int8 {
			if v.Null(i) {
				return triNull
			}
			return triBool(likeMatch(strs[i], pat) != neg)
		}, true
	}
	return nil, false
}

// EvalBatch evaluates e for every live row of b, returning a vector of
// b.Len() results. Bound column references on an unfiltered batch share the
// batch's vector directly; everything else evaluates row-major into a boxed
// vector through the exact same Eval path the row executor uses, so results
// are byte-identical by construction. The first evaluation error aborts.
func EvalBatch(e Expr, b *value.Batch) (value.Vec, error) {
	if c, ok := e.(*ColRef); ok && b.Sel == nil {
		if v, ok := colVec(c, b); ok && !v.Pruned {
			return *v, nil
		}
	}
	n := b.Len()
	out := value.Vec{Kind: value.KindNull, Vals: make([]value.Value, n)}
	// Numeric arithmetic trees run as compiled kernels over the vectors;
	// kernel results equal Eval's bit for bit.
	if kern, ok := EvalKernel(e, b); ok {
		for k := 0; k < n; k++ {
			v, err := kern(b.RowIndex(k))
			if err != nil {
				return value.Vec{}, err
			}
			out.Vals[k] = v
		}
		return out, nil
	}
	row := make(value.Row, len(b.Cols))
	for k := 0; k < n; k++ {
		b.FillRow(b.RowIndex(k), row)
		v, err := e.Eval(row)
		if err != nil {
			return value.Vec{}, err
		}
		out.Vals[k] = v
	}
	return out, nil
}
