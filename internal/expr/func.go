package expr

import (
	"fmt"
	"math"
	"strings"

	"hana/internal/value"
)

// Func is a scalar or aggregate function call. Aggregate functions (SUM,
// COUNT, AVG, MIN, MAX) are recognized by name; the executor's aggregation
// operator intercepts them, so Eval on an aggregate is an error. COUNT(*)
// is represented with Star=true and no arguments.
type Func struct {
	Name     string
	Args     []Expr
	Distinct bool // COUNT(DISTINCT x)
	Star     bool // COUNT(*)
}

// Call builds a function node.
func Call(name string, args ...Expr) *Func {
	return &Func{Name: strings.ToUpper(name), Args: args}
}

// AggregateFuncs is the set of supported aggregate function names.
var AggregateFuncs = map[string]bool{
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
	"STDDEV": true, "VAR": true, "CORR": true,
}

// IsAggregate reports whether the function is an aggregate.
func (f *Func) IsAggregate() bool { return AggregateFuncs[f.Name] }

// Eval evaluates a scalar function.
func (f *Func) Eval(row value.Row) (value.Value, error) {
	if f.IsAggregate() {
		return value.Null, fmt.Errorf("aggregate %s evaluated outside aggregation operator", f.Name)
	}
	args := make([]value.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(row)
		if err != nil {
			return value.Null, err
		}
		args[i] = v
	}
	return evalScalar(f.Name, args)
}

// SQL renders the call.
func (f *Func) SQL() string {
	if f.Star {
		return f.Name + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.SQL()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return f.Name + "(" + d + strings.Join(parts, ", ") + ")"
}

func needArgs(name string, args []value.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("%s expects %d argument(s), got %d", name, n, len(args))
	}
	return nil
}

func evalScalar(name string, args []value.Value) (value.Value, error) {
	switch name {
	case "UPPER":
		if err := needArgs(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.NewString(strings.ToUpper(args[0].String())), nil
	case "LOWER":
		if err := needArgs(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.NewString(strings.ToLower(args[0].String())), nil
	case "LENGTH":
		if err := needArgs(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.NewInt(int64(len(args[0].String()))), nil
	case "SUBSTR", "SUBSTRING":
		if len(args) != 2 && len(args) != 3 {
			return value.Null, fmt.Errorf("%s expects 2 or 3 arguments", name)
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		s := args[0].String()
		start := int(args[1].Int()) - 1 // SQL is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return value.NewString(""), nil
		}
		end := len(s)
		if len(args) == 3 {
			if e := start + int(args[2].Int()); e < end {
				end = e
			}
			if end < start {
				end = start
			}
		}
		return value.NewString(s[start:end]), nil
	case "TRIM":
		if err := needArgs(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.NewString(strings.TrimSpace(args[0].String())), nil
	case "ABS":
		if err := needArgs(name, args, 1); err != nil {
			return value.Null, err
		}
		v := args[0]
		switch v.K {
		case value.KindNull:
			return value.Null, nil
		case value.KindInt:
			if v.I < 0 {
				return value.NewInt(-v.I), nil
			}
			return v, nil
		case value.KindDouble:
			return value.NewDouble(math.Abs(v.F)), nil
		}
		return value.Null, fmt.Errorf("ABS on %s", v.K)
	case "ROUND":
		if len(args) != 1 && len(args) != 2 {
			return value.Null, fmt.Errorf("ROUND expects 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		scale := 0.0
		if len(args) == 2 {
			scale = float64(args[1].Int())
		}
		p := math.Pow(10, scale)
		return value.NewDouble(math.Round(args[0].Float()*p) / p), nil
	case "SQRT":
		if err := needArgs(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.NewDouble(math.Sqrt(args[0].Float())), nil
	case "FLOOR":
		if err := needArgs(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.NewInt(int64(math.Floor(args[0].Float()))), nil
	case "CEIL", "CEILING":
		if err := needArgs(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.NewInt(int64(math.Ceil(args[0].Float()))), nil
	case "MOD":
		if err := needArgs(name, args, 2); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return value.Null, nil
		}
		if args[1].Int() == 0 {
			return value.Null, fmt.Errorf("MOD by zero")
		}
		return value.NewInt(args[0].Int() % args[1].Int()), nil
	case "COALESCE", "IFNULL":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return value.Null, nil
	case "NULLIF":
		if err := needArgs(name, args, 2); err != nil {
			return value.Null, err
		}
		if !args[0].IsNull() && !args[1].IsNull() && value.Compare(args[0], args[1]) == 0 {
			return value.Null, nil
		}
		return args[0], nil
	case "YEAR":
		if err := needArgs(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.NewInt(int64(args[0].Time().Year())), nil
	case "MONTH":
		if err := needArgs(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.NewInt(int64(args[0].Time().Month())), nil
	case "DAY", "DAYOFMONTH":
		if err := needArgs(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.NewInt(int64(args[0].Time().Day())), nil
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			if a.IsNull() {
				return value.Null, nil
			}
			b.WriteString(a.String())
		}
		return value.NewString(b.String()), nil
	case "CAST_INT", "TO_INT", "TO_INTEGER", "TO_BIGINT":
		if err := needArgs(name, args, 1); err != nil {
			return value.Null, err
		}
		return value.Cast(args[0], value.KindInt)
	case "TO_DOUBLE", "TO_DECIMAL":
		if err := needArgs(name, args, 1); err != nil {
			return value.Null, err
		}
		return value.Cast(args[0], value.KindDouble)
	case "TO_VARCHAR", "TO_CHAR":
		if err := needArgs(name, args, 1); err != nil {
			return value.Null, err
		}
		return value.Cast(args[0], value.KindVarchar)
	case "TO_DATE":
		if err := needArgs(name, args, 1); err != nil {
			return value.Null, err
		}
		return value.Cast(args[0], value.KindDate)
	case "ST_DISTANCE":
		// Geo-spatial support (§1 Variety): great-circle distance in
		// meters between (lat1, lon1) and (lat2, lon2), WGS84 haversine.
		if err := needArgs(name, args, 4); err != nil {
			return value.Null, err
		}
		for _, a := range args {
			if a.IsNull() {
				return value.Null, nil
			}
		}
		return value.NewDouble(haversineMeters(
			args[0].Float(), args[1].Float(), args[2].Float(), args[3].Float())), nil
	case "ST_WITHIN_RECT":
		// Point-in-bounding-box test: (lat, lon, minLat, minLon, maxLat, maxLon).
		if err := needArgs(name, args, 6); err != nil {
			return value.Null, err
		}
		for _, a := range args {
			if a.IsNull() {
				return value.Null, nil
			}
		}
		lat, lon := args[0].Float(), args[1].Float()
		in := lat >= args[2].Float() && lat <= args[4].Float() &&
			lon >= args[3].Float() && lon <= args[5].Float()
		return value.NewBool(in), nil
	}
	return value.Null, fmt.Errorf("unknown function %s", name)
}

// haversineMeters computes the great-circle distance on the WGS84 mean
// sphere.
func haversineMeters(lat1, lon1, lat2, lon2 float64) float64 {
	const r = 6371008.8 // mean earth radius in meters
	toRad := math.Pi / 180
	dLat := (lat2 - lat1) * toRad
	dLon := (lon2 - lon1) * toRad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*toRad)*math.Cos(lat2*toRad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * r * math.Asin(math.Min(1, math.Sqrt(a)))
}

// Cast is an explicit CAST(e AS type) node.
type Cast struct {
	E  Expr
	To value.Kind
}

// Eval performs the conversion.
func (c *Cast) Eval(row value.Row) (value.Value, error) {
	v, err := c.E.Eval(row)
	if err != nil {
		return value.Null, err
	}
	return value.Cast(v, c.To)
}

// SQL renders the cast.
func (c *Cast) SQL() string {
	return "CAST(" + c.E.SQL() + " AS " + c.To.String() + ")"
}
