package expr

import (
	"testing"

	"hana/internal/value"
)

// Per-row expression evaluation must not allocate: Eval runs once per row
// per node on every scan, filter, and join.

func TestEvalZeroAllocs(t *testing.T) {
	s := value.NewSchema(
		value.Column{Name: "K", Kind: value.KindVarchar},
		value.Column{Name: "N", Kind: value.KindInt},
	)
	row := value.Row{value.NewString("EUROPE"), value.NewInt(9)}

	cases := []struct {
		name string
		e    Expr
	}{
		{"colref", Col("N")},
		{"binop", Bin(OpAdd, Col("N"), Int(1))},
		{"compare", Bin(OpLt, Col("N"), Int(100))},
		{"between", &Between{E: Col("N"), Lo: Int(0), Hi: Int(10)}},
		{"in-literal-set", &In{E: Col("K"), List: []Expr{Str("ASIA"), Str("EUROPE"), Str("AFRICA")}}},
	}
	for _, tc := range cases {
		if err := Bind(tc.e, s); err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(200, func() {
			if _, err := tc.e.Eval(row); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: Eval allocates %.1f times per row, want 0", tc.name, n)
		}
	}
}

// TestInLiteralSetSemantics pins the Bind-built fast path against the
// linear fallback, NULL propagation included.
func TestInLiteralSetSemantics(t *testing.T) {
	s := value.NewSchema(value.Column{Name: "K", Kind: value.KindVarchar})
	mk := func(negate bool, list ...Expr) *In {
		in := &In{E: Col("K"), List: list, Negate: negate}
		if err := Bind(in, s); err != nil {
			t.Fatal(err)
		}
		if in.strs == nil {
			t.Fatal("literal fast path not built")
		}
		return in
	}
	eval := func(in *In, v value.Value) value.Value {
		got, err := in.Eval(value.Row{v})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	in := mk(false, Str("A"), Str("B"))
	if got := eval(in, value.NewString("B")); !got.Bool() {
		t.Errorf("B IN (A,B) = %v, want true", got)
	}
	if got := eval(in, value.NewString("C")); got.Bool() || got.IsNull() {
		t.Errorf("C IN (A,B) = %v, want false", got)
	}
	if got := eval(in, value.Null); !got.IsNull() {
		t.Errorf("NULL IN (A,B) = %v, want NULL", got)
	}

	withNull := mk(false, Str("A"), Lit(value.Null))
	if got := eval(withNull, value.NewString("C")); !got.IsNull() {
		t.Errorf("C IN (A,NULL) = %v, want NULL", got)
	}
	if got := eval(withNull, value.NewString("A")); !got.Bool() {
		t.Errorf("A IN (A,NULL) = %v, want true", got)
	}

	neg := mk(true, Str("A"))
	if got := eval(neg, value.NewString("B")); !got.Bool() {
		t.Errorf("B NOT IN (A) = %v, want true", got)
	}

	// Mixed kinds must keep the Compare fallback (ints equate to doubles).
	mixed := &In{E: Col("K"), List: []Expr{Int(1), Str("A")}}
	if err := Bind(mixed, s); err != nil {
		t.Fatal(err)
	}
	if mixed.strs != nil {
		t.Error("mixed-kind list must not take the string fast path")
	}
}
