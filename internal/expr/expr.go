// Package expr defines the scalar expression trees shared by the SQL
// parser, the query planner/executor, the continuous-query engine (ESP) and
// the HiveQL compiler. Expressions evaluate against a value.Row bound to a
// value.Schema, and can be rendered back to SQL text for query shipping to
// remote sources (the SDA federation layer regenerates remote statements
// from plan fragments).
package expr

import (
	"fmt"
	"strings"

	"hana/internal/value"
)

// Op enumerates binary and unary operators.
type Op int

// Operators. Comparison operators use SQL three-valued logic: any NULL
// operand yields NULL, which predicates treat as "not satisfied".
const (
	OpInvalid Op = iota
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNot
	OpNeg
	OpConcat
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpNot: "NOT", OpNeg: "-", OpConcat: "||",
}

// String returns the SQL spelling of the operator.
func (o Op) String() string { return opNames[o] }

// Comparison reports whether the operator is a comparison.
func (o Op) Comparison() bool { return o >= OpEq && o <= OpGe }

// Expr is a scalar expression node.
type Expr interface {
	// Eval evaluates the expression against a row. Bind must have been
	// called on the tree with the row's schema first.
	Eval(row value.Row) (value.Value, error)
	// SQL renders the node back to parseable SQL text.
	SQL() string
}

// ColRef references a column by (possibly qualified) name. Ord is resolved
// by Bind; an unbound ColRef evaluates to an error.
type ColRef struct {
	Name string
	Ord  int
}

// Col builds an unbound column reference.
func Col(name string) *ColRef { return &ColRef{Name: name, Ord: -1} }

// Eval returns the referenced column value.
func (c *ColRef) Eval(row value.Row) (value.Value, error) {
	if c.Ord < 0 || c.Ord >= len(row) {
		return value.Null, fmt.Errorf("unbound column reference %q", c.Name)
	}
	return row[c.Ord], nil
}

// SQL renders the column name.
func (c *ColRef) SQL() string { return c.Name }

// Literal is a constant value.
type Literal struct {
	Val value.Value
}

// Lit builds a literal node.
func Lit(v value.Value) *Literal { return &Literal{Val: v} }

// Int is shorthand for an integer literal.
func Int(i int64) *Literal { return Lit(value.NewInt(i)) }

// Str is shorthand for a string literal.
func Str(s string) *Literal { return Lit(value.NewString(s)) }

// Eval returns the constant.
func (l *Literal) Eval(value.Row) (value.Value, error) { return l.Val, nil }

// SQL renders the literal.
func (l *Literal) SQL() string { return l.Val.SQLLiteral() }

// Param is a positional query parameter ("?"), substituted before
// execution; evaluating an unsubstituted parameter is an error.
type Param struct {
	Index int
}

// Eval fails: parameters must be substituted before evaluation.
func (p *Param) Eval(value.Row) (value.Value, error) {
	return value.Null, fmt.Errorf("unsubstituted parameter ?%d", p.Index)
}

// SQL renders the placeholder.
func (p *Param) SQL() string { return "?" }

// BinOp is a binary operation.
type BinOp struct {
	Op   Op
	L, R Expr
}

// Bin builds a binary node.
func Bin(op Op, l, r Expr) *BinOp { return &BinOp{Op: op, L: l, R: r} }

// Eq builds l = r.
func Eq(l, r Expr) *BinOp { return Bin(OpEq, l, r) }

// And folds a conjunction; nil inputs are dropped, and an empty input
// yields nil (meaning "always true" to the planner).
func And(es ...Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = Bin(OpAnd, out, e)
		}
	}
	return out
}

// Eval applies the operator with SQL NULL semantics. AND/OR use
// three-valued logic (NULL AND FALSE = FALSE, NULL OR TRUE = TRUE).
func (b *BinOp) Eval(row value.Row) (value.Value, error) {
	switch b.Op {
	case OpAnd, OpOr:
		l, err := b.L.Eval(row)
		if err != nil {
			return value.Null, err
		}
		// Short circuit.
		if b.Op == OpAnd && l.K == value.KindBool && !l.Bool() {
			return value.NewBool(false), nil
		}
		if b.Op == OpOr && l.K == value.KindBool && l.Bool() {
			return value.NewBool(true), nil
		}
		r, err := b.R.Eval(row)
		if err != nil {
			return value.Null, err
		}
		if b.Op == OpAnd {
			if r.K == value.KindBool && !r.Bool() {
				return value.NewBool(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return value.Null, nil
			}
			return value.NewBool(l.Bool() && r.Bool()), nil
		}
		if r.K == value.KindBool && r.Bool() {
			return value.NewBool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return value.Null, nil
		}
		return value.NewBool(l.Bool() || r.Bool()), nil
	}
	l, err := b.L.Eval(row)
	if err != nil {
		return value.Null, err
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return value.Null, err
	}
	switch b.Op {
	case OpAdd:
		return value.Add(l, r)
	case OpSub:
		return value.Sub(l, r)
	case OpMul:
		return value.Mul(l, r)
	case OpDiv:
		return value.Div(l, r)
	case OpConcat:
		if l.IsNull() || r.IsNull() {
			return value.Null, nil
		}
		return value.NewString(l.String() + r.String()), nil
	}
	if b.Op.Comparison() {
		if l.IsNull() || r.IsNull() {
			return value.Null, nil
		}
		c := value.Compare(l, r)
		switch b.Op {
		case OpEq:
			return value.NewBool(c == 0), nil
		case OpNe:
			return value.NewBool(c != 0), nil
		case OpLt:
			return value.NewBool(c < 0), nil
		case OpLe:
			return value.NewBool(c <= 0), nil
		case OpGt:
			return value.NewBool(c > 0), nil
		case OpGe:
			return value.NewBool(c >= 0), nil
		}
	}
	return value.Null, fmt.Errorf("unknown binary operator %v", b.Op)
}

// SQL renders the operation with full parenthesization.
func (b *BinOp) SQL() string {
	return "(" + b.L.SQL() + " " + b.Op.String() + " " + b.R.SQL() + ")"
}

// UnOp is a unary operation (NOT, numeric negation).
type UnOp struct {
	Op Op
	E  Expr
}

// Not negates a predicate.
func Not(e Expr) *UnOp { return &UnOp{Op: OpNot, E: e} }

// Eval applies the unary operator.
func (u *UnOp) Eval(row value.Row) (value.Value, error) {
	v, err := u.E.Eval(row)
	if err != nil {
		return value.Null, err
	}
	if v.IsNull() {
		return value.Null, nil
	}
	switch u.Op {
	case OpNot:
		return value.NewBool(!v.Bool()), nil
	case OpNeg:
		switch v.K {
		case value.KindInt:
			return value.NewInt(-v.I), nil
		case value.KindDouble:
			return value.NewDouble(-v.F), nil
		}
		return value.Null, fmt.Errorf("cannot negate %s", v.K)
	}
	return value.Null, fmt.Errorf("unknown unary operator %v", u.Op)
}

// SQL renders the operation.
func (u *UnOp) SQL() string {
	if u.Op == OpNot {
		return "(NOT " + u.E.SQL() + ")"
	}
	return "(-" + u.E.SQL() + ")"
}

// IsNull tests for (non-)NULL.
type IsNull struct {
	E      Expr
	Negate bool // IS NOT NULL
}

// Eval tests NULL-ness.
func (n *IsNull) Eval(row value.Row) (value.Value, error) {
	v, err := n.E.Eval(row)
	if err != nil {
		return value.Null, err
	}
	return value.NewBool(v.IsNull() != n.Negate), nil
}

// SQL renders the test.
func (n *IsNull) SQL() string {
	if n.Negate {
		return "(" + n.E.SQL() + " IS NOT NULL)"
	}
	return "(" + n.E.SQL() + " IS NULL)"
}

// Between is e BETWEEN lo AND hi (inclusive both ends).
type Between struct {
	E, Lo, Hi Expr
	Negate    bool
}

// Eval applies the range test.
func (b *Between) Eval(row value.Row) (value.Value, error) {
	v, err := b.E.Eval(row)
	if err != nil {
		return value.Null, err
	}
	lo, err := b.Lo.Eval(row)
	if err != nil {
		return value.Null, err
	}
	hi, err := b.Hi.Eval(row)
	if err != nil {
		return value.Null, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return value.Null, nil
	}
	in := value.Compare(v, lo) >= 0 && value.Compare(v, hi) <= 0
	return value.NewBool(in != b.Negate), nil
}

// SQL renders the range test.
func (b *Between) SQL() string {
	not := ""
	if b.Negate {
		not = "NOT "
	}
	return "(" + b.E.SQL() + " " + not + "BETWEEN " + b.Lo.SQL() + " AND " + b.Hi.SQL() + ")"
}

// In is e IN (list). Subqueries are decorrelated by the planner into joins
// or materialized into the List before execution.
type In struct {
	E      Expr
	List   []Expr
	Negate bool

	// strs is the all-VARCHAR-literal fast path prepared by Bind: Eval
	// probes this set instead of re-evaluating the list per row. Built
	// during binding (never lazily) so the bound tree stays immutable
	// under parallel morsel execution. strNull records a literal NULL in
	// the list.
	strs    map[string]bool
	strNull bool
}

// prepare builds the literal-set fast path when every list element is a
// VARCHAR (or NULL) literal. Mixed-kind lists keep the per-row Compare
// path, which equates values across numeric kinds.
func (i *In) prepare() {
	strs := make(map[string]bool, len(i.List))
	sawNull := false
	for _, el := range i.List {
		lit, ok := el.(*Literal)
		if !ok {
			return
		}
		if lit.Val.IsNull() {
			sawNull = true
			continue
		}
		if lit.Val.K != value.KindVarchar {
			return
		}
		strs[lit.Val.S] = true
	}
	i.strs, i.strNull = strs, sawNull
}

// Eval applies the membership test.
func (i *In) Eval(row value.Row) (value.Value, error) {
	v, err := i.E.Eval(row)
	if err != nil {
		return value.Null, err
	}
	if v.IsNull() {
		return value.Null, nil
	}
	if i.strs != nil && v.K == value.KindVarchar {
		if i.strs[v.S] {
			return value.NewBool(!i.Negate), nil
		}
		if i.strNull {
			return value.Null, nil
		}
		return value.NewBool(i.Negate), nil
	}
	sawNull := false
	for _, el := range i.List {
		ev, err := el.Eval(row)
		if err != nil {
			return value.Null, err
		}
		if ev.IsNull() {
			sawNull = true
			continue
		}
		if value.Compare(v, ev) == 0 {
			return value.NewBool(!i.Negate), nil
		}
	}
	if sawNull {
		return value.Null, nil
	}
	return value.NewBool(i.Negate), nil
}

// SQL renders the membership test.
func (i *In) SQL() string {
	parts := make([]string, len(i.List))
	for j, el := range i.List {
		parts[j] = el.SQL()
	}
	not := ""
	if i.Negate {
		not = "NOT "
	}
	return "(" + i.E.SQL() + " " + not + "IN (" + strings.Join(parts, ", ") + "))"
}

// Like is e LIKE pattern with % and _ wildcards.
type Like struct {
	E       Expr
	Pattern Expr
	Negate  bool
}

// Eval applies the pattern match.
func (l *Like) Eval(row value.Row) (value.Value, error) {
	v, err := l.E.Eval(row)
	if err != nil {
		return value.Null, err
	}
	p, err := l.Pattern.Eval(row)
	if err != nil {
		return value.Null, err
	}
	if v.IsNull() || p.IsNull() {
		return value.Null, nil
	}
	m := likeMatch(v.String(), p.String())
	return value.NewBool(m != l.Negate), nil
}

// SQL renders the pattern match.
func (l *Like) SQL() string {
	not := ""
	if l.Negate {
		not = "NOT "
	}
	return "(" + l.E.SQL() + " " + not + "LIKE " + l.Pattern.SQL() + ")"
}

// likeMatch implements SQL LIKE with %, _ via iterative backtracking.
func likeMatch(s, pat string) bool {
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		if pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]) {
			si++
			pi++
		} else if pi < len(pat) && pat[pi] == '%' {
			star = pi
			mark = si
			pi++
		} else if star >= 0 {
			pi = star + 1
			mark++
			si = mark
		} else {
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// CaseWhen is a searched CASE expression.
type CaseWhen struct {
	Whens []struct {
		Cond Expr
		Then Expr
	}
	Else Expr // nil means ELSE NULL
}

// Eval returns the first branch whose condition is true.
func (c *CaseWhen) Eval(row value.Row) (value.Value, error) {
	for _, w := range c.Whens {
		cond, err := w.Cond.Eval(row)
		if err != nil {
			return value.Null, err
		}
		if cond.K == value.KindBool && cond.Bool() {
			return w.Then.Eval(row)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(row)
	}
	return value.Null, nil
}

// SQL renders the CASE expression.
func (c *CaseWhen) SQL() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		b.WriteString(" WHEN ")
		b.WriteString(w.Cond.SQL())
		b.WriteString(" THEN ")
		b.WriteString(w.Then.SQL())
	}
	if c.Else != nil {
		b.WriteString(" ELSE ")
		b.WriteString(c.Else.SQL())
	}
	b.WriteString(" END")
	return b.String()
}
