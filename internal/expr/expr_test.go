package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"hana/internal/value"
)

func testSchema() *value.Schema {
	return value.NewSchema(
		value.Column{Name: "a", Kind: value.KindInt},
		value.Column{Name: "b", Kind: value.KindDouble},
		value.Column{Name: "s", Kind: value.KindVarchar},
		value.Column{Name: "d", Kind: value.KindDate},
	)
}

func testRow() value.Row {
	d, _ := value.ParseDate("1994-06-15")
	return value.Row{value.NewInt(10), value.NewDouble(2.5), value.NewString("HOUSEHOLD"), d}
}

func mustEval(t *testing.T, e Expr) value.Value {
	t.Helper()
	if err := Bind(e, testSchema()); err != nil {
		t.Fatal(err)
	}
	v, err := e.Eval(testRow())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmeticAndComparison(t *testing.T) {
	v := mustEval(t, Bin(OpAdd, Col("a"), Int(5)))
	if v.Int() != 15 {
		t.Fatalf("a+5 = %v", v)
	}
	v = mustEval(t, Bin(OpMul, Col("a"), Col("b")))
	if v.Float() != 25 {
		t.Fatalf("a*b = %v", v)
	}
	v = mustEval(t, Bin(OpGt, Col("a"), Int(9)))
	if !v.Bool() {
		t.Fatal("10 > 9")
	}
	v = mustEval(t, Bin(OpLe, Col("b"), Lit(value.NewDouble(2.5))))
	if !v.Bool() {
		t.Fatal("2.5 <= 2.5")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	null := Lit(value.Null)
	tr := Lit(value.NewBool(true))
	fa := Lit(value.NewBool(false))

	v := mustEval(t, Bin(OpAnd, null, fa))
	if v.IsNull() || v.Bool() {
		t.Fatal("NULL AND FALSE = FALSE")
	}
	v = mustEval(t, Bin(OpAnd, null, tr))
	if !v.IsNull() {
		t.Fatal("NULL AND TRUE = NULL")
	}
	v = mustEval(t, Bin(OpOr, null, tr))
	if v.IsNull() || !v.Bool() {
		t.Fatal("NULL OR TRUE = TRUE")
	}
	v = mustEval(t, Bin(OpOr, null, fa))
	if !v.IsNull() {
		t.Fatal("NULL OR FALSE = NULL")
	}
	v = mustEval(t, Bin(OpEq, null, Int(1)))
	if !v.IsNull() {
		t.Fatal("NULL = 1 is NULL")
	}
	v = mustEval(t, Not(null))
	if !v.IsNull() {
		t.Fatal("NOT NULL is NULL")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"HOUSEHOLD", "HOUSE%", true},
		{"HOUSEHOLD", "%HOLD", true},
		{"HOUSEHOLD", "%USE%", true},
		{"HOUSEHOLD", "H_USEHOLD", true},
		{"HOUSEHOLD", "H_SEHOLD", false},
		{"", "%", true},
		{"abc", "abc", true},
		{"abc", "ab", false},
		{"promo burnished", "promo%", true},
		{"MEDIUM POLISHED", "%POLISHED%", true},
		{"a%b", "a%b", true}, // literal % matched by wildcard
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q)=%v want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestLikeExprAndNegate(t *testing.T) {
	e := &Like{E: Col("s"), Pattern: Str("HOUSE%")}
	if !mustEval(t, e).Bool() {
		t.Fatal("LIKE should match")
	}
	ne := &Like{E: Col("s"), Pattern: Str("HOUSE%"), Negate: true}
	if mustEval(t, ne).Bool() {
		t.Fatal("NOT LIKE should not match")
	}
}

func TestInList(t *testing.T) {
	e := &In{E: Col("s"), List: []Expr{Str("AUTO"), Str("HOUSEHOLD")}}
	if !mustEval(t, e).Bool() {
		t.Fatal("IN should match")
	}
	e2 := &In{E: Col("s"), List: []Expr{Str("AUTO")}, Negate: true}
	if !mustEval(t, e2).Bool() {
		t.Fatal("NOT IN should match")
	}
	// NOT IN with a NULL in the list and no match is NULL.
	e3 := &In{E: Col("s"), List: []Expr{Str("AUTO"), Lit(value.Null)}, Negate: true}
	if !mustEval(t, e3).IsNull() {
		t.Fatal("NOT IN over list containing NULL with no match must be NULL")
	}
}

func TestBetween(t *testing.T) {
	e := &Between{E: Col("a"), Lo: Int(5), Hi: Int(10)}
	if !mustEval(t, e).Bool() {
		t.Fatal("10 BETWEEN 5 AND 10")
	}
	e2 := &Between{E: Col("a"), Lo: Int(11), Hi: Int(20)}
	if mustEval(t, e2).Bool() {
		t.Fatal("10 NOT BETWEEN 11 AND 20")
	}
}

func TestIsNull(t *testing.T) {
	if !mustEval(t, &IsNull{E: Lit(value.Null)}).Bool() {
		t.Fatal("NULL IS NULL")
	}
	if !mustEval(t, &IsNull{E: Col("a"), Negate: true}).Bool() {
		t.Fatal("a IS NOT NULL")
	}
}

func TestCase(t *testing.T) {
	c := &CaseWhen{}
	c.Whens = append(c.Whens, struct {
		Cond Expr
		Then Expr
	}{Bin(OpGt, Col("a"), Int(5)), Str("big")})
	c.Else = Str("small")
	if got := mustEval(t, c); got.String() != "big" {
		t.Fatalf("CASE = %v", got)
	}
}

func TestScalarFunctions(t *testing.T) {
	if mustEval(t, Call("UPPER", Str("abc"))).String() != "ABC" {
		t.Error("UPPER")
	}
	if mustEval(t, Call("SUBSTR", Col("s"), Int(1), Int(5))).String() != "HOUSE" {
		t.Error("SUBSTR")
	}
	if mustEval(t, Call("YEAR", Col("d"))).Int() != 1994 {
		t.Error("YEAR")
	}
	if mustEval(t, Call("MONTH", Col("d"))).Int() != 6 {
		t.Error("MONTH")
	}
	if mustEval(t, Call("COALESCE", Lit(value.Null), Int(7))).Int() != 7 {
		t.Error("COALESCE")
	}
	if mustEval(t, Call("MOD", Int(7), Int(3))).Int() != 1 {
		t.Error("MOD")
	}
	if mustEval(t, Call("ABS", Int(-4))).Int() != 4 {
		t.Error("ABS")
	}
	if mustEval(t, Call("ROUND", Lit(value.NewDouble(2.567)), Int(2))).Float() != 2.57 {
		t.Error("ROUND")
	}
	if _, err := Call("NO_SUCH_FN", Int(1)).Eval(testRow()); err == nil {
		t.Error("unknown function must error")
	}
}

func TestAggregateDetection(t *testing.T) {
	sum := Call("SUM", Col("a"))
	if !sum.IsAggregate() {
		t.Fatal("SUM is an aggregate")
	}
	if !HasAggregate(Bin(OpMul, sum, Int(2))) {
		t.Fatal("HasAggregate should find nested aggregate")
	}
	if HasAggregate(Bin(OpAdd, Col("a"), Int(1))) {
		t.Fatal("no aggregate here")
	}
	if _, err := sum.Eval(testRow()); err == nil {
		t.Fatal("evaluating an aggregate directly must error")
	}
}

func TestBindErrors(t *testing.T) {
	e := Bin(OpEq, Col("nope"), Int(1))
	err := Bind(e, testSchema())
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("expected unresolved column error, got %v", err)
	}
}

func TestSplitConjuncts(t *testing.T) {
	p := And(Eq(Col("a"), Int(1)), Eq(Col("b"), Int(2)), Eq(Col("s"), Str("x")))
	cs := SplitConjuncts(p)
	if len(cs) != 3 {
		t.Fatalf("got %d conjuncts", len(cs))
	}
	if SplitConjuncts(nil) != nil {
		t.Fatal("nil predicate has no conjuncts")
	}
	// OR is not split.
	if got := SplitConjuncts(Bin(OpOr, Eq(Col("a"), Int(1)), Eq(Col("a"), Int(2)))); len(got) != 1 {
		t.Fatalf("OR split into %d", len(got))
	}
}

func TestColumnsAndClone(t *testing.T) {
	e := And(Eq(Col("a"), Int(1)), Bin(OpGt, Col("b"), Col("a")))
	cols := Columns(e)
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Fatalf("Columns = %v", cols)
	}
	c := Clone(e)
	if err := Bind(c, testSchema()); err != nil {
		t.Fatal(err)
	}
	// The original must remain unbound.
	var unbound bool
	Walk(e, func(n Expr) bool {
		if cr, ok := n.(*ColRef); ok && cr.Ord == -1 {
			unbound = true
		}
		return true
	})
	if !unbound {
		t.Fatal("Clone must not alias column nodes")
	}
}

func TestSubstituteParams(t *testing.T) {
	e := Eq(Col("a"), &Param{Index: 0})
	e2, err := SubstituteParams(e, []value.Value{value.NewInt(10)})
	if err != nil {
		t.Fatal(err)
	}
	if err := Bind(e2, testSchema()); err != nil {
		t.Fatal(err)
	}
	v, err := e2.Eval(testRow())
	if err != nil || !v.Bool() {
		t.Fatalf("substituted eval: %v %v", v, err)
	}
	if _, err := SubstituteParams(e, nil); err == nil {
		t.Fatal("missing parameter must error")
	}
}

func TestRenameColumns(t *testing.T) {
	e := Eq(Col("c_custkey"), Col("o_custkey"))
	r := RenameColumns(e, map[string]string{"C_CUSTKEY": "t1.c_custkey"})
	if !strings.Contains(r.SQL(), "t1.c_custkey") {
		t.Fatalf("rename failed: %s", r.SQL())
	}
	if !strings.Contains(e.SQL(), "(c_custkey") {
		t.Fatalf("original mutated: %s", e.SQL())
	}
}

func TestSQLRoundTripRendering(t *testing.T) {
	e := And(
		Eq(Col("c_mktsegment"), Str("HOUSEHOLD")),
		Bin(OpLt, Col("o_orderdate"), Lit(mustDate(t, "1995-03-15"))),
	)
	sql := e.SQL()
	for _, want := range []string{"c_mktsegment", "'HOUSEHOLD'", "DATE '1995-03-15'", "AND"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL rendering %q missing %q", sql, want)
		}
	}
}

func mustDate(t *testing.T, s string) value.Value {
	t.Helper()
	d, err := value.ParseDate(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTruthy(t *testing.T) {
	ok, err := Truthy(nil, testRow())
	if !ok || err != nil {
		t.Fatal("nil predicate is true")
	}
	e := Eq(Col("a"), Int(10))
	if err := Bind(e, testSchema()); err != nil {
		t.Fatal(err)
	}
	ok, err = Truthy(e, testRow())
	if !ok || err != nil {
		t.Fatal("a = 10 should hold")
	}
	// NULL predicate result is not truthy.
	n := Bin(OpEq, Lit(value.Null), Int(1))
	ok, err = Truthy(n, testRow())
	if ok || err != nil {
		t.Fatal("NULL comparison is not truthy")
	}
}

func TestLikeMatchProperty(t *testing.T) {
	// Every string matches itself and "%".
	f := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true // skip strings containing wildcards
		}
		return likeMatch(s, s) && likeMatch(s, "%")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAndFolding(t *testing.T) {
	if And() != nil {
		t.Fatal("empty And is nil")
	}
	single := Eq(Col("a"), Int(1))
	if And(nil, single, nil) != single {
		t.Fatal("And with one non-nil returns it")
	}
	if len(SplitConjuncts(And(single, Eq(Col("b"), Int(2))))) != 2 {
		t.Fatal("And of two splits to two")
	}
}
