package expr

import (
	"fmt"

	"hana/internal/value"
)

// Numeric expression kernels: arithmetic trees over bound numeric columns
// and literals compile to per-row closures reading the batch's primitive
// arrays, skipping both row materialization and the tree-walking
// interpreter. Every case mirrors value arithmetic exactly — the same
// promotion rules (INT op INT stays INT except division, anything touching
// a DOUBLE promotes each operand via Value.Float), the same NULL
// propagation (checked before the division-by-zero test), and the same
// error messages — so a kernel's result is the Value Eval would produce on
// a materialized row, bit for bit.

// numFn is a compiled numeric subtree. kind is the static result kind;
// exactly one of f (KindDouble) and n (KindInt) is set. The bool result
// reports SQL NULL.
type numFn struct {
	kind value.Kind
	f    func(i int) (float64, bool, error)
	n    func(i int) (int64, bool, error)
}

// floatFn returns the subtree as a float evaluator, promoting integer
// results exactly as Value.Float does.
func (k numFn) floatFn() func(i int) (float64, bool, error) {
	if k.f != nil {
		return k.f
	}
	n := k.n
	return func(i int) (float64, bool, error) {
		v, null, err := n(i)
		return float64(v), null, err
	}
}

func constNullNum() numFn {
	return numFn{kind: value.KindInt, n: func(int) (int64, bool, error) { return 0, true, nil }}
}

// compileNum compiles a numeric subtree. ok=false means some node falls
// outside the supported set (non-numeric kinds, boxed vectors, operators
// with non-arithmetic semantics such as DATE+INT) and the caller must keep
// the row-major Eval path.
func compileNum(e Expr, b *value.Batch) (numFn, bool) {
	switch n := e.(type) {
	case *Literal:
		v := n.Val
		switch v.K {
		case value.KindNull:
			return constNullNum(), true
		case value.KindInt:
			c := v.I
			return numFn{kind: value.KindInt, n: func(int) (int64, bool, error) { return c, false, nil }}, true
		case value.KindDouble:
			c := v.F
			return numFn{kind: value.KindDouble, f: func(int) (float64, bool, error) { return c, false, nil }}, true
		}
		return numFn{}, false
	case *ColRef:
		v, ok := colVec(n, b)
		if !ok || v.Vals != nil {
			return numFn{}, false
		}
		if v.Pruned { // pruned columns read as NULL everywhere
			return constNullNum(), true
		}
		switch v.Kind {
		case value.KindInt:
			ints := v.Ints
			return numFn{kind: value.KindInt, n: func(i int) (int64, bool, error) {
				if v.Null(i) {
					return 0, true, nil
				}
				return ints[i], false, nil
			}}, true
		case value.KindDouble:
			fs := v.Floats
			return numFn{kind: value.KindDouble, f: func(i int) (float64, bool, error) {
				if v.Null(i) {
					return 0, true, nil
				}
				return fs[i], false, nil
			}}, true
		}
		return numFn{}, false
	case *BinOp:
		switch n.Op {
		case OpAdd, OpSub, OpMul, OpDiv:
		default:
			return numFn{}, false
		}
		l, ok := compileNum(n.L, b)
		if !ok {
			return numFn{}, false
		}
		r, ok := compileNum(n.R, b)
		if !ok {
			return numFn{}, false
		}
		// INT op INT stays INT for +,-,* (Go int64 ops wrap exactly like
		// value arithmetic's); everything else — including all divisions —
		// promotes both operands to float64.
		if n.Op != OpDiv && l.kind == value.KindInt && r.kind == value.KindInt {
			ln, rn := l.n, r.n
			op := n.Op
			return numFn{kind: value.KindInt, n: func(i int) (int64, bool, error) {
				a, anull, err := ln(i)
				if err != nil {
					return 0, false, err
				}
				c, cnull, err := rn(i)
				if err != nil {
					return 0, false, err
				}
				if anull || cnull {
					return 0, true, nil
				}
				switch op {
				case OpAdd:
					return a + c, false, nil
				case OpSub:
					return a - c, false, nil
				default: // OpMul
					return a * c, false, nil
				}
			}}, true
		}
		lf, rf := l.floatFn(), r.floatFn()
		op := n.Op
		return numFn{kind: value.KindDouble, f: func(i int) (float64, bool, error) {
			x, xnull, err := lf(i)
			if err != nil {
				return 0, false, err
			}
			y, ynull, err := rf(i)
			if err != nil {
				return 0, false, err
			}
			if xnull || ynull {
				return 0, true, nil
			}
			switch op {
			case OpAdd:
				return x + y, false, nil
			case OpSub:
				return x - y, false, nil
			case OpMul:
				return x * y, false, nil
			default: // OpDiv
				if y == 0 {
					return 0, false, fmt.Errorf("division by zero")
				}
				return x / y, false, nil
			}
		}}, true
	}
	return numFn{}, false
}

// EvalKernel compiles e into a per-physical-row evaluator over b's vectors.
// It covers numeric arithmetic trees (the typical aggregate arguments and
// computed projections); ok=false means an unsupported node and the caller
// keeps the row-major Eval path. Bare column references and lone literals
// are rejected too — callers read those directly. A kernel returns exactly
// the Value Eval would produce on the materialized row, including NULL
// propagation and error text.
func EvalKernel(e Expr, b *value.Batch) (func(i int) (value.Value, error), bool) {
	switch e.(type) {
	case *ColRef, *Literal:
		return nil, false
	}
	k, ok := compileNum(e, b)
	if !ok {
		return nil, false
	}
	if k.f != nil {
		f := k.f
		return func(i int) (value.Value, error) {
			v, null, err := f(i)
			if err != nil || null {
				return value.Null, err
			}
			return value.NewDouble(v), nil
		}, true
	}
	n := k.n
	return func(i int) (value.Value, error) {
		v, null, err := n(i)
		if err != nil || null {
			return value.Null, err
		}
		return value.NewInt(v), nil
	}, true
}
