// Package hdfs simulates the Hadoop Distributed File System used as the
// platform's cheap background store (§4 of the paper): a namenode holding
// the namespace and block map, datanodes holding replicated fixed-size
// blocks, block-granular reads with locality information for the
// map-reduce scheduler, and replica failover when a datanode dies.
package hdfs

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"

	"hana/internal/faults"
)

// BlockID identifies one block cluster-wide.
type BlockID int64

// BlockInfo is the namenode's record of one block.
type BlockInfo struct {
	ID       BlockID
	Len      int
	Replicas []int // datanode ids holding the block
}

// FileInfo is the namenode's record of one file.
type FileInfo struct {
	Path   string
	Size   int64
	Blocks []BlockInfo
}

// dataNode stores block payloads.
type dataNode struct {
	id     int
	mu     sync.RWMutex
	blocks map[BlockID][]byte
	alive  bool
}

// Cluster is one HDFS instance: a namenode plus datanodes.
type Cluster struct {
	mu        sync.RWMutex
	blockSize int
	replicas  int
	nodes     []*dataNode
	files     map[string]*FileInfo
	dirs      map[string]bool
	nextBlock BlockID
	nextNode  int
	inj       *faults.Injector

	// Stats
	BytesWritten int64
	BytesRead    int64
}

// SetInjector routes cluster IO through a fault injector: writes consult
// the "hdfs.write" site and block reads "hdfs.read". A nil injector
// disables injection.
func (c *Cluster) SetInjector(inj *faults.Injector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inj = inj
}

func (c *Cluster) injector() *faults.Injector {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.inj
}

// Option configures a cluster.
type Option func(*Cluster)

// WithBlockSize sets the block size in bytes (default 4 MiB).
func WithBlockSize(n int) Option { return func(c *Cluster) { c.blockSize = n } }

// WithReplication sets the replication factor (default 3, capped at the
// node count).
func WithReplication(n int) Option { return func(c *Cluster) { c.replicas = n } }

// NewCluster starts a cluster with the given number of datanodes.
func NewCluster(nodes int, opts ...Option) *Cluster {
	if nodes < 1 {
		nodes = 1
	}
	c := &Cluster{
		blockSize: 4 << 20,
		replicas:  3,
		files:     map[string]*FileInfo{},
		dirs:      map[string]bool{"/": true},
	}
	for i := 0; i < nodes; i++ {
		c.nodes = append(c.nodes, &dataNode{id: i, blocks: map[BlockID][]byte{}, alive: true})
	}
	for _, o := range opts {
		o(c)
	}
	if c.replicas > nodes {
		c.replicas = nodes
	}
	return c
}

// NumNodes returns the datanode count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

func clean(p string) string {
	p = path.Clean("/" + p)
	return p
}

// MkdirAll creates a directory and its parents.
func (c *Cluster) MkdirAll(dir string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mkdirLocked(clean(dir))
}

func (c *Cluster) mkdirLocked(dir string) {
	for dir != "/" {
		c.dirs[dir] = true
		dir = path.Dir(dir)
	}
}

// WriteFile stores a file, splitting it into replicated blocks. An
// existing file at the path is replaced.
func (c *Cluster) WriteFile(p string, data []byte) error {
	if err := c.injector().Check("hdfs.write"); err != nil {
		return err
	}
	p = clean(p)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dirs[p] {
		return fmt.Errorf("hdfs: %s is a directory", p)
	}
	if old, ok := c.files[p]; ok {
		c.removeBlocksLocked(old)
	}
	fi := &FileInfo{Path: p, Size: int64(len(data))}
	for off := 0; off < len(data) || (len(data) == 0 && off == 0); off += c.blockSize {
		end := off + c.blockSize
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		bi := BlockInfo{ID: c.nextBlock, Len: len(chunk)}
		c.nextBlock++
		// Round-robin placement with replication.
		placed := 0
		for try := 0; try < len(c.nodes) && placed < c.replicas; try++ {
			n := c.nodes[(c.nextNode+try)%len(c.nodes)]
			if !n.alive {
				continue
			}
			n.mu.Lock()
			cp := make([]byte, len(chunk))
			copy(cp, chunk)
			n.blocks[bi.ID] = cp
			n.mu.Unlock()
			bi.Replicas = append(bi.Replicas, n.id)
			placed++
		}
		c.nextNode = (c.nextNode + 1) % len(c.nodes)
		if placed == 0 {
			// Dead nodes may be revived, so placement failure is retryable.
			//lint:ignore locksafe Transient only wraps the error, it takes no locks
			return faults.Transient(fmt.Errorf("hdfs: no alive datanodes"))
		}
		fi.Blocks = append(fi.Blocks, bi)
		c.BytesWritten += int64(len(chunk))
		if len(data) == 0 {
			break
		}
	}
	c.files[p] = fi
	c.mkdirLocked(path.Dir(p))
	return nil
}

// ReadFile reads a whole file, failing over across replicas.
func (c *Cluster) ReadFile(p string) ([]byte, error) {
	p = clean(p)
	c.mu.RLock()
	fi, ok := c.files[p]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("hdfs: file %s not found", p)
	}
	out := make([]byte, 0, fi.Size)
	for _, b := range fi.Blocks {
		data, err := c.ReadBlock(b)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return out, nil
}

// ReadBlock reads one block from any alive replica.
func (c *Cluster) ReadBlock(b BlockInfo) ([]byte, error) {
	if err := c.injector().Check("hdfs.read"); err != nil {
		return nil, err
	}
	for _, nid := range b.Replicas {
		n := c.nodes[nid]
		n.mu.RLock()
		alive := n.alive
		data, ok := n.blocks[b.ID]
		n.mu.RUnlock()
		if alive && ok {
			c.mu.Lock()
			c.BytesRead += int64(len(data))
			c.mu.Unlock()
			return data, nil
		}
	}
	// Every replica is on a dead node; reviving any of them makes the
	// block readable again, so the failure is classified transient.
	return nil, faults.Transient(fmt.Errorf("hdfs: block %d unavailable (all replicas dead)", b.ID))
}

// Stat returns file metadata.
func (c *Cluster) Stat(p string) (*FileInfo, error) {
	p = clean(p)
	c.mu.RLock()
	defer c.mu.RUnlock()
	fi, ok := c.files[p]
	if !ok {
		if c.dirs[p] {
			return &FileInfo{Path: p}, nil
		}
		return nil, fmt.Errorf("hdfs: %s not found", p)
	}
	cp := *fi
	return &cp, nil
}

// Exists reports whether a file or directory exists.
func (c *Cluster) Exists(p string) bool {
	p = clean(p)
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, f := c.files[p]
	return f || c.dirs[p]
}

// List returns the files directly under a directory, sorted by path.
func (c *Cluster) List(dir string) []*FileInfo {
	dir = clean(dir)
	prefix := dir
	if prefix != "/" {
		prefix += "/"
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*FileInfo
	for p, fi := range c.files {
		if strings.HasPrefix(p, prefix) && !strings.Contains(p[len(prefix):], "/") {
			cp := *fi
			out = append(out, &cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Remove deletes a file or directory tree.
func (c *Cluster) Remove(p string) error {
	p = clean(p)
	c.mu.Lock()
	defer c.mu.Unlock()
	if fi, ok := c.files[p]; ok {
		c.removeBlocksLocked(fi)
		delete(c.files, p)
		return nil
	}
	if c.dirs[p] {
		prefix := p + "/"
		for fp, fi := range c.files {
			if strings.HasPrefix(fp, prefix) {
				c.removeBlocksLocked(fi)
				delete(c.files, fp)
			}
		}
		for d := range c.dirs {
			if d == p || strings.HasPrefix(d, prefix) {
				delete(c.dirs, d)
			}
		}
		return nil
	}
	return fmt.Errorf("hdfs: %s not found", p)
}

func (c *Cluster) removeBlocksLocked(fi *FileInfo) {
	for _, b := range fi.Blocks {
		for _, nid := range b.Replicas {
			n := c.nodes[nid]
			n.mu.Lock()
			delete(n.blocks, b.ID)
			n.mu.Unlock()
		}
	}
}

// Rename moves a file.
func (c *Cluster) Rename(from, to string) error {
	from, to = clean(from), clean(to)
	c.mu.Lock()
	defer c.mu.Unlock()
	fi, ok := c.files[from]
	if !ok {
		return fmt.Errorf("hdfs: %s not found", from)
	}
	if _, exists := c.files[to]; exists {
		return fmt.Errorf("hdfs: %s already exists", to)
	}
	delete(c.files, from)
	fi.Path = to
	c.files[to] = fi
	c.mkdirLocked(path.Dir(to))
	return nil
}

// KillNode marks a datanode dead (failure injection).
func (c *Cluster) KillNode(id int) {
	n := c.nodes[id]
	n.mu.Lock()
	n.alive = false
	n.mu.Unlock()
}

// ReviveNode brings a datanode back (its blocks are intact).
func (c *Cluster) ReviveNode(id int) {
	n := c.nodes[id]
	n.mu.Lock()
	n.alive = true
	n.mu.Unlock()
}

// TotalUsed reports bytes stored across datanodes (including replicas).
func (c *Cluster) TotalUsed() int64 {
	var total int64
	for _, n := range c.nodes {
		n.mu.RLock()
		for _, b := range n.blocks {
			total += int64(len(b))
		}
		n.mu.RUnlock()
	}
	return total
}

// AppendFile appends data to a file (creating it if missing). HDFS appends
// are block-aligned here for simplicity.
func (c *Cluster) AppendFile(p string, data []byte) error {
	p = clean(p)
	c.mu.RLock()
	_, ok := c.files[p]
	c.mu.RUnlock()
	if !ok {
		return c.WriteFile(p, data)
	}
	old, err := c.ReadFile(p)
	if err != nil {
		return err
	}
	return c.WriteFile(p, append(old, data...))
}
