package hdfs

import (
	"bytes"
	"fmt"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	c := NewCluster(3, WithBlockSize(16), WithReplication(2))
	data := []byte("hello hadoop distributed file system, this spans several blocks")
	if err := c.WriteFile("/data/f.txt", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("/data/f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
	fi, err := c.Stat("/data/f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != int64(len(data)) {
		t.Fatalf("size = %d", fi.Size)
	}
	if len(fi.Blocks) != (len(data)+15)/16 {
		t.Fatalf("blocks = %d", len(fi.Blocks))
	}
	for _, b := range fi.Blocks {
		if len(b.Replicas) != 2 {
			t.Fatalf("replicas = %d", len(b.Replicas))
		}
	}
}

func TestReplicaFailover(t *testing.T) {
	c := NewCluster(3, WithBlockSize(8), WithReplication(2))
	data := []byte("abcdefghijklmnopqrstuvwxyz")
	_ = c.WriteFile("/f", data)
	// Kill one node: every block still has a live replica.
	c.KillNode(0)
	got, err := c.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("failover read: %v", err)
	}
	// Kill all nodes → unreadable.
	c.KillNode(1)
	c.KillNode(2)
	if _, err := c.ReadFile("/f"); err == nil {
		t.Fatal("read must fail with all replicas dead")
	}
	// Reviving nodes 1 and 2 covers every block's replica set again
	// (round-robin placement spreads pairs over (0,1), (1,2), (2,0)).
	c.ReviveNode(1)
	c.ReviveNode(2)
	if _, err := c.ReadFile("/f"); err != nil {
		t.Fatal("revive must restore reads")
	}
}

func TestListAndRemove(t *testing.T) {
	c := NewCluster(2)
	for i := 0; i < 3; i++ {
		_ = c.WriteFile(fmt.Sprintf("/warehouse/t1/part-%05d", i), []byte("x"))
	}
	_ = c.WriteFile("/warehouse/t2/part-00000", []byte("y"))
	files := c.List("/warehouse/t1")
	if len(files) != 3 {
		t.Fatalf("list = %d", len(files))
	}
	if files[0].Path != "/warehouse/t1/part-00000" {
		t.Fatalf("sorted list: %s", files[0].Path)
	}
	// Directory remove is recursive.
	if err := c.Remove("/warehouse/t1"); err != nil {
		t.Fatal(err)
	}
	if c.Exists("/warehouse/t1/part-00000") {
		t.Fatal("removed file still exists")
	}
	if !c.Exists("/warehouse/t2/part-00000") {
		t.Fatal("sibling removed")
	}
	// Blocks are freed on the datanodes.
	used := c.TotalUsed()
	if used == 0 {
		t.Fatal("t2 should still use space")
	}
	_ = c.Remove("/warehouse")
	if c.TotalUsed() != 0 {
		t.Fatalf("space not freed: %d", c.TotalUsed())
	}
}

func TestOverwriteFreesOldBlocks(t *testing.T) {
	c := NewCluster(1, WithReplication(1))
	_ = c.WriteFile("/f", bytes.Repeat([]byte("a"), 1000))
	_ = c.WriteFile("/f", []byte("tiny"))
	if c.TotalUsed() != 4 {
		t.Fatalf("old blocks leaked: %d", c.TotalUsed())
	}
	got, _ := c.ReadFile("/f")
	if string(got) != "tiny" {
		t.Fatal("overwrite content")
	}
}

func TestRename(t *testing.T) {
	c := NewCluster(1)
	_ = c.WriteFile("/tmp/x", []byte("data"))
	if err := c.Rename("/tmp/x", "/final/y"); err != nil {
		t.Fatal(err)
	}
	if c.Exists("/tmp/x") || !c.Exists("/final/y") {
		t.Fatal("rename")
	}
	if err := c.Rename("/nope", "/z"); err == nil {
		t.Fatal("missing source must error")
	}
}

func TestAppendFile(t *testing.T) {
	c := NewCluster(1)
	_ = c.AppendFile("/log", []byte("line1\n"))
	_ = c.AppendFile("/log", []byte("line2\n"))
	got, _ := c.ReadFile("/log")
	if string(got) != "line1\nline2\n" {
		t.Fatalf("append = %q", got)
	}
}

func TestEmptyFile(t *testing.T) {
	c := NewCluster(1)
	if err := c.WriteFile("/empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("/empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty read: %v %q", err, got)
	}
}

func TestReplicationCappedAtNodeCount(t *testing.T) {
	c := NewCluster(2, WithReplication(5))
	_ = c.WriteFile("/f", []byte("x"))
	fi, _ := c.Stat("/f")
	if len(fi.Blocks[0].Replicas) != 2 {
		t.Fatalf("replicas = %d", len(fi.Blocks[0].Replicas))
	}
}
