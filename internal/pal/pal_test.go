package pal

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestAprioriClassicExample(t *testing.T) {
	txns := []Transaction{
		{"bread", "milk"},
		{"bread", "diapers", "beer", "eggs"},
		{"milk", "diapers", "beer", "cola"},
		{"bread", "milk", "diapers", "beer"},
		{"bread", "milk", "diapers", "cola"},
	}
	rules, err := Apriori(txns, AprioriParams{MinSupport: 0.4, MinConfidence: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules mined")
	}
	// {beer} => diapers has confidence 1.0 (all 3 beer baskets have diapers).
	found := false
	for _, r := range rules {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == "beer" && r.Consequent == "diapers" {
			found = true
			if r.Confidence != 1.0 {
				t.Fatalf("beer=>diapers confidence = %f", r.Confidence)
			}
			if r.Support != 0.6 {
				t.Fatalf("beer=>diapers support = %f", r.Support)
			}
			if r.Lift < 1.24 || r.Lift > 1.26 { // 1.0 / 0.8
				t.Fatalf("lift = %f", r.Lift)
			}
		}
	}
	if !found {
		t.Fatalf("beer=>diapers not mined; got %v", rules)
	}
	// Rules are sorted by confidence.
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Fatal("rules not sorted by confidence")
		}
	}
}

func TestAprioriMinSupportPrunes(t *testing.T) {
	txns := []Transaction{
		{"a", "b"}, {"a", "b"}, {"a", "b"}, {"c", "d"},
	}
	rules, err := Apriori(txns, AprioriParams{MinSupport: 0.5, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		for _, it := range append(r.Antecedent, r.Consequent) {
			if it == "c" || it == "d" {
				t.Fatalf("infrequent item leaked into %v", r)
			}
		}
	}
}

func TestAprioriEmptyAndDuplicates(t *testing.T) {
	if _, err := Apriori(nil, AprioriParams{}); err == nil {
		t.Fatal("empty input must error")
	}
	// Duplicate items within a transaction count once.
	txns := []Transaction{{"x", "x", "y"}, {"x", "y"}}
	rules, err := Apriori(txns, AprioriParams{MinSupport: 0.9, MinConfidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Support > 1.0 {
			t.Fatalf("support > 1: %v", r)
		}
	}
}

func TestThreeItemRules(t *testing.T) {
	// a,b together always imply c.
	var txns []Transaction
	for i := 0; i < 10; i++ {
		txns = append(txns, Transaction{"a", "b", "c"})
	}
	txns = append(txns, Transaction{"a", "d"}, Transaction{"b", "d"})
	rules, err := Apriori(txns, AprioriParams{MinSupport: 0.5, MinConfidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rules {
		if len(r.Antecedent) == 2 && r.Consequent == "c" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no {a,b}=>c rule in %v", rules)
	}
}

func TestClassifierWarrantyScenario(t *testing.T) {
	// Synthetic diagnosis readouts: code P0301+P0171 strongly predicts a
	// warranty claim, mirroring §4.1.
	rng := rand.New(rand.NewSource(5))
	var txns []Transaction
	for i := 0; i < 500; i++ {
		tx := Transaction{fmt.Sprintf("code%d", rng.Intn(20))}
		if rng.Float64() < 0.3 {
			tx = append(tx, "P0301", "P0171")
			if rng.Float64() < 0.9 {
				tx = append(tx, "WARRANTY_CLAIM")
			}
		} else if rng.Float64() < 0.05 {
			tx = append(tx, "WARRANTY_CLAIM")
		}
		txns = append(txns, tx)
	}
	rules, err := Apriori(txns, AprioriParams{MinSupport: 0.05, MinConfidence: 0.8, MaxItemsetLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	clf := NewClassifier(rules, "WARRANTY_CLAIM")
	if clf.NumRules() == 0 {
		t.Fatal("no warranty rules mined")
	}
	// A readout with the risky pattern scores high…
	score, rule := clf.Score(Transaction{"code3", "P0301", "P0171"})
	if score < 0.8 || rule == nil {
		t.Fatalf("risky readout score = %f", score)
	}
	// …a clean readout scores zero.
	score, _ = clf.Score(Transaction{"code3"})
	if score != 0 {
		t.Fatalf("clean readout score = %f", score)
	}
}
