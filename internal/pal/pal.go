// Package pal is the predictive analysis library used in the paper's
// automotive warranty scenario (§4.1): "With the SAP predictive analysis
// library using the apriori algorithm thousands of association rules were
// discovered with confidence between 80% and 100%. The derived models then
// were used to classify new readouts as warranty candidates in real-time."
//
// It implements the apriori frequent-itemset algorithm, association-rule
// derivation with support/confidence/lift, and a rule-based classifier.
package pal

import (
	"fmt"
	"sort"
	"strings"
)

// Transaction is one basket of items (e.g. diagnostic codes of one car).
type Transaction []string

// Rule is an association rule Antecedent ⇒ Consequent.
type Rule struct {
	Antecedent []string
	Consequent string
	Support    float64 // fraction of transactions containing both sides
	Confidence float64 // support(both) / support(antecedent)
	Lift       float64 // confidence / support(consequent)
}

// String renders the rule.
func (r Rule) String() string {
	return fmt.Sprintf("{%s} => %s (sup %.3f, conf %.3f, lift %.2f)",
		strings.Join(r.Antecedent, ","), r.Consequent, r.Support, r.Confidence, r.Lift)
}

// AprioriParams tunes the mining run.
type AprioriParams struct {
	MinSupport    float64 // minimum itemset support (0..1)
	MinConfidence float64 // minimum rule confidence (0..1)
	MaxItemsetLen int     // cap on itemset size (0 = 4)
}

// Apriori mines association rules from transactions.
func Apriori(txns []Transaction, p AprioriParams) ([]Rule, error) {
	if len(txns) == 0 {
		return nil, fmt.Errorf("pal: no transactions")
	}
	if p.MinSupport <= 0 {
		p.MinSupport = 0.1
	}
	if p.MinConfidence <= 0 {
		p.MinConfidence = 0.8
	}
	if p.MaxItemsetLen <= 0 {
		p.MaxItemsetLen = 4
	}
	n := float64(len(txns))
	minCount := int(p.MinSupport*n + 0.999999)
	if minCount < 1 {
		minCount = 1
	}

	// Deduplicate and sort items within transactions.
	sets := make([][]string, len(txns))
	for i, t := range txns {
		seen := map[string]bool{}
		var s []string
		for _, it := range t {
			if !seen[it] {
				seen[it] = true
				s = append(s, it)
			}
		}
		sort.Strings(s)
		sets[i] = s
	}

	// L1.
	counts := map[string]int{}
	for _, s := range sets {
		for _, it := range s {
			counts[it]++
		}
	}
	supports := map[string]int{} // canonical itemset key → count
	var current [][]string
	for it, c := range counts {
		if c >= minCount {
			current = append(current, []string{it})
			supports[it] = c
		}
	}
	sortItemsets(current)

	// Level-wise candidate generation.
	all := append([][]string{}, current...)
	for k := 2; k <= p.MaxItemsetLen && len(current) > 0; k++ {
		cands := generateCandidates(current)
		next := current[:0:0]
		for _, cand := range cands {
			c := 0
			for _, s := range sets {
				if containsAll(s, cand) {
					c++
				}
			}
			if c >= minCount {
				next = append(next, cand)
				supports[key(cand)] = c
			}
		}
		current = next
		all = append(all, current...)
	}

	// Rules: for each frequent itemset of size ≥ 2, each item can be the
	// consequent.
	var rules []Rule
	for _, is := range all {
		if len(is) < 2 {
			continue
		}
		both := supports[key(is)]
		for i, cons := range is {
			ant := append(append([]string{}, is[:i]...), is[i+1:]...)
			antCount, ok := supports[key(ant)]
			if !ok || antCount == 0 {
				continue
			}
			conf := float64(both) / float64(antCount)
			if conf < p.MinConfidence {
				continue
			}
			consSup := float64(supports[cons]) / n
			r := Rule{
				Antecedent: ant,
				Consequent: cons,
				Support:    float64(both) / n,
				Confidence: conf,
			}
			if consSup > 0 {
				r.Lift = conf / consSup
			}
			rules = append(rules, r)
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		return rules[i].Support > rules[j].Support
	})
	return rules, nil
}

func key(items []string) string { return strings.Join(items, "\x00") }

func sortItemsets(sets [][]string) {
	sort.Slice(sets, func(i, j int) bool { return key(sets[i]) < key(sets[j]) })
}

// generateCandidates joins k-1 itemsets sharing a prefix (classic apriori
// join + prune).
func generateCandidates(prev [][]string) [][]string {
	var out [][]string
	prevSet := map[string]bool{}
	for _, p := range prev {
		prevSet[key(p)] = true
	}
	for i := 0; i < len(prev); i++ {
		for j := i + 1; j < len(prev); j++ {
			a, b := prev[i], prev[j]
			k := len(a)
			if key(a[:k-1]) != key(b[:k-1]) {
				continue
			}
			cand := append(append([]string{}, a...), b[k-1])
			sort.Strings(cand)
			// Prune: all (k)-subsets must be frequent.
			ok := true
			for d := 0; d < len(cand); d++ {
				sub := append(append([]string{}, cand[:d]...), cand[d+1:]...)
				if !prevSet[key(sub)] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, cand)
			}
		}
	}
	sortItemsets(out)
	return out
}

// containsAll reports whether sorted transaction s contains all sorted
// items.
func containsAll(s, items []string) bool {
	i := 0
	for _, it := range items {
		for i < len(s) && s[i] < it {
			i++
		}
		if i >= len(s) || s[i] != it {
			return false
		}
		i++
	}
	return true
}

// Classifier scores new transactions against mined rules whose consequent
// is the target class — "classify new readouts as warranty candidates in
// real-time".
type Classifier struct {
	target string
	rules  []Rule
}

// NewClassifier keeps the rules predicting the target consequent.
func NewClassifier(rules []Rule, target string) *Classifier {
	c := &Classifier{target: target}
	for _, r := range rules {
		if r.Consequent == target {
			c.rules = append(c.rules, r)
		}
	}
	return c
}

// NumRules reports the model size.
func (c *Classifier) NumRules() int { return len(c.rules) }

// Score returns the maximum confidence of any rule whose antecedent is
// satisfied by the transaction, with the matching rule; 0 when none fires.
func (c *Classifier) Score(t Transaction) (float64, *Rule) {
	s := append([]string{}, t...)
	sort.Strings(s)
	var best float64
	var bestRule *Rule
	for i := range c.rules {
		r := &c.rules[i]
		if containsAll(s, r.Antecedent) && r.Confidence > best {
			best = r.Confidence
			bestRule = r
		}
	}
	return best, bestRule
}
