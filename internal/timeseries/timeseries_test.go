package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func start() time.Time { return time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC) }

func TestAppendValuesRoundTrip(t *testing.T) {
	s := New(start(), time.Second, CompensateNone)
	want := []float64{20.5, 20.5, 20.7, 21.0, 21.0, 21.0, 19.8, -3.25, 0, 1e9}
	for _, v := range want {
		s.Append(v)
	}
	got := s.Values()
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d = %v want %v", i, got[i], want[i])
		}
	}
}

func TestXORRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		s := New(start(), time.Second, CompensateNone)
		for _, v := range vals {
			if math.IsNaN(v) {
				v = 0
			}
			s.Append(v)
		}
		got := s.Values()
		if len(got) != len(vals) {
			return false
		}
		for i, v := range vals {
			if math.IsNaN(v) {
				v = 0
			}
			if got[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMissingValueCompensation(t *testing.T) {
	// Series: 10, _, 20 on a 1s grid.
	mk := func(c Compensation) *Series {
		s := New(start(), time.Second, c)
		s.Append(10)
		s.AppendMissing()
		s.Append(20)
		return s
	}
	if _, ok := mk(CompensateNone).Value(1); ok {
		t.Fatal("None must report missing")
	}
	v, ok := mk(CompensateLOCF).Value(1)
	if !ok || v != 10 {
		t.Fatalf("LOCF = %v %v", v, ok)
	}
	v, ok = mk(CompensateLinear).Value(1)
	if !ok || v != 15 {
		t.Fatalf("Linear = %v %v", v, ok)
	}
	// Leading gap: LOCF has nothing to carry.
	s := New(start(), time.Second, CompensateLOCF)
	s.AppendMissing()
	s.Append(5)
	if _, ok := s.Value(0); ok {
		t.Fatal("leading gap under LOCF must be absent")
	}
	// Linear falls back to the next observation.
	s2 := New(start(), time.Second, CompensateLinear)
	s2.AppendMissing()
	s2.Append(5)
	if v, ok := s2.Value(0); !ok || v != 5 {
		t.Fatalf("linear leading = %v %v", v, ok)
	}
}

func TestAppendAtGridAlignment(t *testing.T) {
	s := New(start(), time.Minute, CompensateLinear)
	if err := s.AppendAt(start(), 1); err != nil {
		t.Fatal(err)
	}
	// Skipping two slots fills them as missing.
	if err := s.AppendAt(start().Add(3*time.Minute), 4); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
	if v, ok := s.Value(1); !ok || v != 2 {
		t.Fatalf("interpolated slot 1 = %v", v)
	}
	if v, ok := s.Value(2); !ok || v != 3 {
		t.Fatalf("interpolated slot 2 = %v", v)
	}
	if err := s.AppendAt(start().Add(90*time.Second), 9); err == nil {
		t.Fatal("off-grid timestamp must error")
	}
	if err := s.AppendAt(start(), 9); err == nil {
		t.Fatal("past timestamp must error")
	}
	if v, ok := s.At(start().Add(3 * time.Minute)); !ok || v != 4 {
		t.Fatalf("At = %v", v)
	}
}

func TestStats(t *testing.T) {
	s := New(start(), time.Second, CompensateNone)
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Append(v)
	}
	s.AppendMissing()
	st := s.Stats()
	if st.Count != 8 || st.Mean != 5 || st.Min != 2 || st.Max != 9 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.Stddev-2) > 1e-9 {
		t.Fatalf("stddev = %v", st.Stddev)
	}
}

func TestCorrelation(t *testing.T) {
	a := New(start(), time.Second, CompensateNone)
	b := New(start(), time.Second, CompensateNone)
	c := New(start(), time.Second, CompensateNone)
	for i := 0; i < 100; i++ {
		x := float64(i)
		a.Append(x)
		b.Append(2*x + 5) // perfectly correlated
		c.Append(100 - x) // perfectly anti-correlated
	}
	r, err := Correlate(a, b)
	if err != nil || math.Abs(r-1) > 1e-9 {
		t.Fatalf("corr(a,b) = %v %v", r, err)
	}
	r, err = Correlate(a, c)
	if err != nil || math.Abs(r+1) > 1e-9 {
		t.Fatalf("corr(a,c) = %v %v", r, err)
	}
	if _, err := Correlate(New(start(), time.Second, CompensateNone), a); err == nil {
		t.Fatal("empty series must error")
	}
}

func TestDownsample(t *testing.T) {
	s := New(start(), time.Second, CompensateNone)
	for i := 0; i < 10; i++ {
		s.Append(float64(i))
	}
	d := s.Downsample(5)
	if d.Len() != 2 {
		t.Fatalf("downsampled len = %d", d.Len())
	}
	if v, _ := d.Value(0); v != 2 {
		t.Fatalf("bucket 0 mean = %v", v)
	}
	if d.Interval != 5*time.Second {
		t.Fatal("interval scaling")
	}
}

func TestCompressionOnSensorData(t *testing.T) {
	// Slowly-varying sensor data: the XOR stream must be far below 8
	// bytes/sample, and missing slots nearly free.
	s := New(start(), time.Second, CompensateLinear)
	rng := rand.New(rand.NewSource(42))
	v := 100.0
	const n = 100000
	for i := 0; i < n; i++ {
		if i%50 == 17 {
			s.AppendMissing()
			continue
		}
		// Quantized sensor readings change rarely.
		if rng.Float64() < 0.1 {
			v += float64(rng.Intn(3)-1) * 0.25
		}
		s.Append(v)
	}
	raw := int64(n * 8)
	if s.MemSize()*4 > raw {
		t.Fatalf("compression < 4x: %d vs %d raw", s.MemSize(), raw)
	}
	// Integrity.
	if got := s.Values(); len(got) != n {
		t.Fatalf("len = %d", len(got))
	}
}

func TestTimeOf(t *testing.T) {
	s := New(start(), time.Minute, CompensateNone)
	s.Append(1)
	s.Append(2)
	if s.TimeOf(1) != start().Add(time.Minute) {
		t.Fatal("TimeOf")
	}
}
