// Package timeseries implements the time-series table extension of §1
// (Figure 2): equidistant series with an optimized internal representation
// — Gorilla-style XOR compression of float values over an implicit
// timestamp grid — plus missing-value compensation strategies and the
// correlation analysis used in the paper's telecom scenario ("perform
// correlation analysis between different sensors").
//
// The figure's claim is that this representation compresses sensor-style
// data "by more than a factor of 10 compared to row-oriented storage and
// more than a factor of 3 compared to columnar storage"; the Fig. 2 bench
// reproduces exactly that comparison.
package timeseries

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Compensation selects how missing values read back.
type Compensation int

// Compensation strategies ("missing value compensation strategies" in
// Figure 2's equidistant series definition).
const (
	// CompensateNone reports missing values as absent.
	CompensateNone Compensation = iota
	// CompensateLOCF repeats the last observed value.
	CompensateLOCF
	// CompensateLinear interpolates between neighbors.
	CompensateLinear
)

// Series is one equidistant time series. Timestamps are implicit: slot i
// is Start + i·Interval, so only values are stored — the first half of the
// footprint advantage. Values are XOR-compressed — the second half.
type Series struct {
	Start    time.Time
	Interval time.Duration
	Comp     Compensation

	n       int
	missing []uint64 // bitmap of missing slots

	// XOR bitstream state.
	stream    bitWriter
	prevBits  uint64
	prevLead  int
	prevTrail int
}

// New creates an empty series on the given grid.
func New(start time.Time, interval time.Duration, comp Compensation) *Series {
	return &Series{Start: start, Interval: interval, Comp: comp, prevLead: -1}
}

// Len returns the number of slots (observed + missing).
func (s *Series) Len() int { return s.n }

// Append adds the next observation.
func (s *Series) Append(v float64) {
	s.appendBits(math.Float64bits(v))
	s.n++
}

// AppendMissing records a gap in the grid. The compressed stream repeats
// the previous value (a single bit) and the bitmap marks the slot.
func (s *Series) AppendMissing() {
	for len(s.missing) <= s.n/64 {
		s.missing = append(s.missing, 0)
	}
	s.missing[s.n/64] |= 1 << (s.n % 64)
	s.appendBits(s.prevBits)
	s.n++
}

// AppendAt places an observation at its grid slot, filling any skipped
// slots as missing. Out-of-order or off-grid timestamps are an error.
func (s *Series) AppendAt(ts time.Time, v float64) error {
	offset := ts.Sub(s.Start)
	if offset < 0 || offset%s.Interval != 0 {
		return fmt.Errorf("timeseries: timestamp %v is off the grid (start %v, interval %v)", ts, s.Start, s.Interval)
	}
	slot := int(offset / s.Interval)
	if slot < s.n {
		return fmt.Errorf("timeseries: timestamp %v is in the past (next slot %d)", ts, s.n)
	}
	for s.n < slot {
		s.AppendMissing()
	}
	s.Append(v)
	return nil
}

func (s *Series) appendBits(bits64 uint64) {
	if s.n == 0 {
		s.stream.writeBits(bits64, 64)
		s.prevBits = bits64
		return
	}
	xor := bits64 ^ s.prevBits
	s.prevBits = bits64
	if xor == 0 {
		s.stream.writeBit(0)
		return
	}
	lead := bits.LeadingZeros64(xor)
	trail := bits.TrailingZeros64(xor)
	if lead > 31 {
		lead = 31
	}
	if s.prevLead >= 0 && lead >= s.prevLead && trail >= s.prevTrail {
		// Reuse the previous significant window: '10' + bits.
		s.stream.writeBit(1)
		s.stream.writeBit(0)
		sig := 64 - s.prevLead - s.prevTrail
		s.stream.writeBits(xor>>uint(s.prevTrail), sig)
		return
	}
	// New window: '11' + 5-bit leading + 6-bit significant length + bits.
	// A full 64-bit window is encoded as length 0 (it cannot otherwise
	// occur, since xor != 0 here).
	s.stream.writeBit(1)
	s.stream.writeBit(1)
	sig := 64 - lead - trail
	s.stream.writeBits(uint64(lead), 5)
	s.stream.writeBits(uint64(sig&63), 6)
	s.stream.writeBits(xor>>uint(trail), sig)
	s.prevLead, s.prevTrail = lead, trail
}

// IsMissing reports whether slot i was a gap.
func (s *Series) IsMissing(i int) bool {
	if i/64 >= len(s.missing) {
		return false
	}
	return s.missing[i/64]&(1<<(i%64)) != 0
}

// Values decompresses the raw stored values (missing slots carry the
// repeated previous value; apply compensation via Value).
func (s *Series) Values() []float64 {
	out := make([]float64, 0, s.n)
	r := bitReader{data: s.stream.data}
	var prev uint64
	lead, trail := -1, 0
	for i := 0; i < s.n; i++ {
		if i == 0 {
			prev = r.readBits(64)
			out = append(out, math.Float64frombits(prev))
			continue
		}
		if r.readBit() == 0 {
			out = append(out, math.Float64frombits(prev))
			continue
		}
		if r.readBit() == 0 {
			sig := 64 - lead - trail
			xor := r.readBits(sig) << uint(trail)
			prev ^= xor
		} else {
			lead = int(r.readBits(5))
			sig := int(r.readBits(6))
			if sig == 0 {
				sig = 64
			}
			trail = 64 - lead - sig
			xor := r.readBits(sig) << uint(trail)
			prev ^= xor
		}
		out = append(out, math.Float64frombits(prev))
	}
	return out
}

// Value returns slot i after compensation. ok=false when the slot is
// missing and the strategy cannot fill it.
func (s *Series) Value(i int) (float64, bool) {
	if i < 0 || i >= s.n {
		return 0, false
	}
	vals := s.Values()
	return s.valueFrom(vals, i)
}

func (s *Series) valueFrom(vals []float64, i int) (float64, bool) {
	if !s.IsMissing(i) {
		return vals[i], true
	}
	switch s.Comp {
	case CompensateLOCF:
		for j := i - 1; j >= 0; j-- {
			if !s.IsMissing(j) {
				return vals[j], true
			}
		}
		return 0, false
	case CompensateLinear:
		var lo, hi = -1, -1
		for j := i - 1; j >= 0; j-- {
			if !s.IsMissing(j) {
				lo = j
				break
			}
		}
		for j := i + 1; j < s.n; j++ {
			if !s.IsMissing(j) {
				hi = j
				break
			}
		}
		switch {
		case lo >= 0 && hi >= 0:
			frac := float64(i-lo) / float64(hi-lo)
			return vals[lo] + frac*(vals[hi]-vals[lo]), true
		case lo >= 0:
			return vals[lo], true
		case hi >= 0:
			return vals[hi], true
		}
		return 0, false
	default:
		return 0, false
	}
}

// At returns the value at a timestamp (grid-aligned).
func (s *Series) At(ts time.Time) (float64, bool) {
	offset := ts.Sub(s.Start)
	if offset < 0 || offset%s.Interval != 0 {
		return 0, false
	}
	return s.Value(int(offset / s.Interval))
}

// TimeOf returns the timestamp of slot i.
func (s *Series) TimeOf(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Interval)
}

// MemSize estimates the series footprint in bytes: the compressed value
// stream plus the missing bitmap and fixed header.
func (s *Series) MemSize() int64 {
	return int64(len(s.stream.data)) + int64(len(s.missing))*8 + 48
}

// Stats summarizes the observed (non-missing) values.
type Stats struct {
	Count    int
	Mean     float64
	Min, Max float64
	Stddev   float64
}

// Stats computes summary statistics over observed values.
func (s *Series) Stats() Stats {
	vals := s.Values()
	var st Stats
	var sum, sumSq float64
	first := true
	for i, v := range vals {
		if s.IsMissing(i) {
			continue
		}
		st.Count++
		sum += v
		sumSq += v * v
		if first {
			st.Min, st.Max = v, v
			first = false
		} else {
			if v < st.Min {
				st.Min = v
			}
			if v > st.Max {
				st.Max = v
			}
		}
	}
	if st.Count > 0 {
		st.Mean = sum / float64(st.Count)
		st.Stddev = math.Sqrt(math.Max(0, sumSq/float64(st.Count)-st.Mean*st.Mean))
	}
	return st
}

// Correlate computes the Pearson correlation of two aligned series over
// slots where both are observed (or compensable).
func Correlate(a, b *Series) (float64, error) {
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	if n == 0 {
		return 0, fmt.Errorf("timeseries: empty series")
	}
	av := a.Values()
	bv := b.Values()
	var sx, sy, sxx, syy, sxy float64
	count := 0
	for i := 0; i < n; i++ {
		x, okx := a.valueFrom(av, i)
		y, oky := b.valueFrom(bv, i)
		if !okx || !oky {
			continue
		}
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
		count++
	}
	if count < 2 {
		return 0, fmt.Errorf("timeseries: not enough aligned observations")
	}
	cn := float64(count)
	cov := sxy/cn - (sx/cn)*(sy/cn)
	vx := sxx/cn - (sx/cn)*(sx/cn)
	vy := syy/cn - (sy/cn)*(sy/cn)
	if vx <= 0 || vy <= 0 {
		return 0, fmt.Errorf("timeseries: zero variance")
	}
	return cov / math.Sqrt(vx*vy), nil
}

// Downsample aggregates the series into buckets of the given factor using
// the mean of observed values, producing a coarser series.
func (s *Series) Downsample(factor int) *Series {
	if factor < 1 {
		factor = 1
	}
	out := New(s.Start, s.Interval*time.Duration(factor), s.Comp)
	vals := s.Values()
	for i := 0; i < s.n; i += factor {
		var sum float64
		var cnt int
		for j := i; j < i+factor && j < s.n; j++ {
			if !s.IsMissing(j) {
				sum += vals[j]
				cnt++
			}
		}
		if cnt == 0 {
			out.AppendMissing()
		} else {
			out.Append(sum / float64(cnt))
		}
	}
	return out
}

// bitWriter is an append-only bitstream.
type bitWriter struct {
	data []byte
	free int // free bits in the last byte
}

func (w *bitWriter) writeBit(b int) {
	if w.free == 0 {
		w.data = append(w.data, 0)
		w.free = 8
	}
	if b != 0 {
		w.data[len(w.data)-1] |= 1 << (w.free - 1)
	}
	w.free--
}

func (w *bitWriter) writeBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.writeBit(int((v >> uint(i)) & 1))
	}
}

// bitReader reads the stream back.
type bitReader struct {
	data []byte
	pos  int // bit position
}

func (r *bitReader) readBit() int {
	byteIdx := r.pos / 8
	bitIdx := 7 - r.pos%8
	r.pos++
	if byteIdx >= len(r.data) {
		return 0
	}
	return int((r.data[byteIdx] >> uint(bitIdx)) & 1)
}

func (r *bitReader) readBits(n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<1 | uint64(r.readBit())
	}
	return v
}
