package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hana/internal/value"
)

// ViewDef declares one system view: a name, the schema it serves (declared
// once, here, instead of implicitly inside the provider), and a Fill
// function that appends the current rows. This replaces the stringly
// RegisterTableProvider(name, func) surface: M_VIEWS() can enumerate every
// registered view with its column metadata, and fills are arity-checked
// against the declared schema.
type ViewDef struct {
	Name    string
	Columns []value.Column
	Fill    func(*value.Rows) error
}

// ViewMeta describes one registered view for enumeration. Dynamic marks
// legacy providers registered through the deprecated untyped API, whose
// schema is only known at fill time.
type ViewMeta struct {
	Name    string
	Columns []value.Column
	Dynamic bool
}

type viewEntry struct {
	name    string // upper-cased registration name
	columns []value.Column
	fill    func(*value.Rows) error
	dynamic func() (*value.Rows, error)
}

// ViewRegistry is the typed system-view registry. Names are
// case-insensitive; re-registering a name replaces the previous view.
type ViewRegistry struct {
	mu sync.RWMutex
	// hana:guardedby mu
	views map[string]*viewEntry
}

// NewViewRegistry creates an empty registry.
func NewViewRegistry() *ViewRegistry {
	return &ViewRegistry{views: map[string]*viewEntry{}}
}

// Register adds a typed view. The definition must carry a name, at least
// one column, and a Fill function.
func (vr *ViewRegistry) Register(def ViewDef) error {
	if def.Name == "" {
		return fmt.Errorf("view definition has no name")
	}
	if len(def.Columns) == 0 {
		return fmt.Errorf("view %s declares no columns", def.Name)
	}
	if def.Fill == nil {
		return fmt.Errorf("view %s has no Fill function", def.Name)
	}
	name := strings.ToUpper(def.Name)
	cols := append([]value.Column(nil), def.Columns...)
	vr.mu.Lock()
	defer vr.mu.Unlock()
	vr.views[name] = &viewEntry{name: name, columns: cols, fill: def.Fill}
	return nil
}

// RegisterDynamic adds a legacy untyped provider whose schema is produced
// at fill time. New views should use Register with a declared schema.
func (vr *ViewRegistry) RegisterDynamic(name string, fill func() (*value.Rows, error)) {
	up := strings.ToUpper(name)
	vr.mu.Lock()
	defer vr.mu.Unlock()
	vr.views[up] = &viewEntry{name: up, dynamic: fill}
}

// Unregister removes a view.
func (vr *ViewRegistry) Unregister(name string) {
	vr.mu.Lock()
	defer vr.mu.Unlock()
	delete(vr.views, strings.ToUpper(name))
}

// Has reports whether a view with the given name is registered.
func (vr *ViewRegistry) Has(name string) bool {
	vr.mu.RLock()
	defer vr.mu.RUnlock()
	_, ok := vr.views[strings.ToUpper(name)]
	return ok
}

// Rows evaluates the named view. The second result reports whether the
// view exists; typed fills are arity-checked against the declared schema.
func (vr *ViewRegistry) Rows(name string) (*value.Rows, bool, error) {
	vr.mu.RLock()
	e, ok := vr.views[strings.ToUpper(name)]
	vr.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	if e.dynamic != nil {
		rows, err := e.dynamic()
		return rows, true, err
	}
	out := value.NewRows(value.NewSchema(e.columns...))
	if err := e.fill(out); err != nil {
		return nil, true, err
	}
	for i, r := range out.Data {
		if len(r) != len(e.columns) {
			return nil, true, fmt.Errorf("view %s: row %d has %d values, schema declares %d columns",
				e.name, i, len(r), len(e.columns))
		}
	}
	return out, true, nil
}

// List enumerates the registered views sorted by name.
func (vr *ViewRegistry) List() []ViewMeta {
	vr.mu.RLock()
	out := make([]ViewMeta, 0, len(vr.views))
	for _, e := range vr.views {
		out = append(out, ViewMeta{
			Name:    e.name,
			Columns: append([]value.Column(nil), e.columns...),
			Dynamic: e.dynamic != nil,
		})
	}
	vr.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
