package obs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"hana/internal/value"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fed.remote_queries")
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters never regress
	c.Add(0)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("fed.remote_queries") != c {
		t.Fatalf("second lookup returned a different counter")
	}

	g := r.Gauge("exec.workers_highwater")
	g.Set(3)
	g.SetMax(7)
	g.SetMax(2)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.SetMax(2)
	h.Observe(5)
	if c.Load() != 0 || g.Load() != 0 {
		t.Fatalf("nil metrics must read zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	st, ok := r.Snapshot().Histogram("lat")
	if !ok {
		t.Fatalf("histogram missing from snapshot")
	}
	wantCounts := []int64{2, 2, 0, 1} // <=10: {5,10}; <=100: {11,100}; <=1000: none; overflow: 5000
	if len(st.Counts) != len(wantCounts) {
		t.Fatalf("bucket count = %d, want %d", len(st.Counts), len(wantCounts))
	}
	for i, w := range wantCounts {
		if st.Counts[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (%v)", i, st.Counts[i], w, st.Counts)
		}
	}
	if st.Count != 5 || st.Sum != 5+10+11+100+5000 {
		t.Fatalf("count/sum = %d/%d", st.Count, st.Sum)
	}
	// Existing histogram keeps its bounds even if re-requested differently.
	if got := r.Histogram("lat", []int64{1}); got.bounds[0] != 10 {
		t.Fatalf("histogram bounds were replaced")
	}
	// Default bounds apply when nil is passed.
	d := r.Histogram("lat2", nil)
	if len(d.bounds) != len(LatencyBoundsUs) {
		t.Fatalf("default bounds not applied")
	}
}

func TestSnapshotSortedAndImmutable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Gauge("z").Set(9)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if v, ok := s.Counter("a"); !ok || v != 2 {
		t.Fatalf("lookup a = %d,%v", v, ok)
	}
	if _, ok := s.Counter("missing"); ok {
		t.Fatalf("lookup of missing counter succeeded")
	}
	if v, ok := s.Gauge("z"); !ok || v != 9 {
		t.Fatalf("lookup z = %d,%v", v, ok)
	}
	r.Counter("a").Add(100)
	if v, _ := s.Counter("a"); v != 2 {
		t.Fatalf("snapshot mutated after the fact: %d", v)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter(fmt.Sprintf("c%d", j%5)).Inc()
				r.Gauge("g").SetMax(int64(j))
				r.Histogram("h", nil).Observe(int64(j))
				_ = r.Snapshot()
			}
		}(i)
	}
	wg.Wait()
	s := r.Snapshot()
	var total int64
	for _, c := range s.Counters {
		total += c.Value
	}
	if total != 8*200 {
		t.Fatalf("counter total = %d, want %d", total, 8*200)
	}
}

func TestSpanTreeAndDetail(t *testing.T) {
	tr := NewTrace("SELECT 1")
	if tr.ID() == 0 {
		t.Fatalf("trace id must be nonzero")
	}
	sp := tr.StartSpan("plan")
	sp.SetAttr("strategy", "semijoin")
	sp.SetAttr("strategy", "ship-whole") // last write wins
	sp.SetAttrInt("est_rows", 42)
	sp.Note("rejected semijoin: est %d > threshold %d", 42, 10)
	child := sp.StartSpan("estimate")
	child.End()
	sp.End()
	sp.End() // idempotent
	tr.Finish(nil)

	if got := sp.Detail(); got != "strategy=ship-whole; est_rows=42; rejected semijoin: est 42 > threshold 10" {
		t.Fatalf("detail = %q", got)
	}
	if tr.Err() != "" {
		t.Fatalf("unexpected error %q", tr.Err())
	}
	var names []string
	tr.Walk(func(depth int, s *Span) {
		names = append(names, fmt.Sprintf("%d:%s", depth, s.Name()))
	})
	want := []string{"0:query", "1:plan", "2:estimate"}
	if len(names) != len(want) {
		t.Fatalf("walk = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("walk[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestTraceFinishRecordsError(t *testing.T) {
	tr := NewTrace("SELECT broken")
	tr.Finish(errors.New("boom"))
	if tr.Err() != "boom" {
		t.Fatalf("err = %q", tr.Err())
	}
	if tr.Duration() <= 0 {
		t.Fatalf("duration must be positive")
	}
}

func TestNilSpanAndTraceSafe(t *testing.T) {
	var sp *Span
	child := sp.StartSpan("x")
	if child != nil {
		t.Fatalf("nil span must produce nil children")
	}
	child.End()
	sp.End()
	sp.SetAttr("a", "b")
	sp.Note("n")
	if sp.Name() != "" || sp.Detail() != "" || sp.Duration() != 0 {
		t.Fatalf("nil span accessors must be zero")
	}
	var tr *QueryTrace
	tr.Finish(nil)
	tr.Walk(func(int, *Span) { t.Fatalf("nil trace walked") })
	if tr.Timeline() != "" || tr.Topology() != "" || tr.ID() != 0 {
		t.Fatalf("nil trace renders must be empty")
	}
}

func TestTopologySortsSiblings(t *testing.T) {
	tr := NewTrace("q")
	// Simulate racy sibling arrival order.
	b := tr.StartSpan("b-late")
	a := tr.StartSpan("a-early")
	a.End()
	b.End()
	tr.Finish(nil)
	want := "query\n  a-early\n  b-late\n"
	if got := tr.Topology(); got != want {
		t.Fatalf("topology = %q, want %q", got, want)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	if r.Cap() != 3 {
		t.Fatalf("cap = %d", r.Cap())
	}
	var ids []uint64
	for i := 0; i < 5; i++ {
		tr := NewTrace(fmt.Sprintf("q%d", i))
		tr.Finish(nil)
		r.Push(tr)
		ids = append(ids, tr.ID())
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(got))
	}
	for i, tr := range got {
		if tr.ID() != ids[i+2] {
			t.Fatalf("ring order wrong: got id %d at %d, want %d", tr.ID(), i, ids[i+2])
		}
	}
	var nilRing *TraceRing
	nilRing.Push(NewTrace("x"))
	if nilRing.Snapshot() != nil || nilRing.Cap() != 0 {
		t.Fatalf("nil ring must be inert")
	}
}

func TestContextCarriesTraceAndSpan(t *testing.T) {
	tr := NewTrace("q")
	ctx := ContextWithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatalf("trace not carried")
	}
	if SpanFrom(ctx) != tr.Root() {
		t.Fatalf("root span not current")
	}
	sp := tr.StartSpan("exec")
	ctx2 := ContextWithSpan(ctx, sp)
	if SpanFrom(ctx2) != sp {
		t.Fatalf("span not carried")
	}
	if TraceFrom(ctx2) != tr {
		t.Fatalf("trace lost when pushing span")
	}
	if TraceFrom(nil) != nil || SpanFrom(nil) != nil {
		t.Fatalf("nil context must yield nils")
	}
	sp.End()
	tr.Finish(nil)
}

func TestViewRegistryTyped(t *testing.T) {
	vr := NewViewRegistry()
	def := ViewDef{
		Name: "m_demo",
		Columns: []value.Column{
			{Name: "NAME", Kind: value.KindVarchar},
			{Name: "N", Kind: value.KindInt},
		},
		Fill: func(out *value.Rows) error {
			out.Append(value.Row{value.NewString("a"), value.NewInt(1)})
			return nil
		},
	}
	if err := vr.Register(def); err != nil {
		t.Fatalf("register: %v", err)
	}
	if !vr.Has("M_DEMO") || !vr.Has("m_demo") {
		t.Fatalf("name lookup must be case-insensitive")
	}
	rows, ok, err := vr.Rows("M_Demo")
	if err != nil || !ok {
		t.Fatalf("rows: ok=%v err=%v", ok, err)
	}
	if rows.Len() != 1 || rows.Schema.Len() != 2 {
		t.Fatalf("rows = %d x %d", rows.Len(), rows.Schema.Len())
	}
	metas := vr.List()
	if len(metas) != 1 || metas[0].Name != "M_DEMO" || metas[0].Dynamic {
		t.Fatalf("list = %+v", metas)
	}
	if len(metas[0].Columns) != 2 || metas[0].Columns[0].Name != "NAME" {
		t.Fatalf("column metadata = %+v", metas[0].Columns)
	}
	vr.Unregister("m_demo")
	if vr.Has("M_DEMO") {
		t.Fatalf("unregister failed")
	}
}

func TestViewRegistryValidation(t *testing.T) {
	vr := NewViewRegistry()
	if err := vr.Register(ViewDef{}); err == nil {
		t.Fatalf("empty def must fail")
	}
	if err := vr.Register(ViewDef{Name: "V"}); err == nil {
		t.Fatalf("missing columns must fail")
	}
	if err := vr.Register(ViewDef{Name: "V", Columns: []value.Column{{Name: "A", Kind: value.KindInt}}}); err == nil {
		t.Fatalf("missing fill must fail")
	}

	// Arity mismatches are caught at fill time.
	bad := ViewDef{
		Name:    "V",
		Columns: []value.Column{{Name: "A", Kind: value.KindInt}},
		Fill: func(out *value.Rows) error {
			out.Append(value.Row{value.NewInt(1), value.NewInt(2)})
			return nil
		},
	}
	if err := vr.Register(bad); err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, ok, err := vr.Rows("V"); !ok || err == nil {
		t.Fatalf("arity mismatch must error (ok=%v err=%v)", ok, err)
	}
	// Fill errors propagate.
	_ = vr.Register(ViewDef{
		Name:    "V",
		Columns: []value.Column{{Name: "A", Kind: value.KindInt}},
		Fill:    func(out *value.Rows) error { return errors.New("fill failed") },
	})
	if _, ok, err := vr.Rows("v"); !ok || err == nil || err.Error() != "fill failed" {
		t.Fatalf("fill error lost (ok=%v err=%v)", ok, err)
	}
	// Missing views report !ok without error.
	if _, ok, err := vr.Rows("NOPE"); ok || err != nil {
		t.Fatalf("missing view: ok=%v err=%v", ok, err)
	}
}

func TestViewRegistryDynamic(t *testing.T) {
	vr := NewViewRegistry()
	vr.RegisterDynamic("legacy", func() (*value.Rows, error) {
		rows := value.NewRows(value.NewSchema(value.Column{Name: "X", Kind: value.KindInt}))
		rows.Append(value.Row{value.NewInt(7)})
		return rows, nil
	})
	rows, ok, err := vr.Rows("LEGACY")
	if err != nil || !ok || rows.Len() != 1 {
		t.Fatalf("dynamic rows: ok=%v err=%v", ok, err)
	}
	metas := vr.List()
	if len(metas) != 1 || !metas[0].Dynamic || len(metas[0].Columns) != 0 {
		t.Fatalf("dynamic meta = %+v", metas)
	}
}
