// Package obs is the platform's unified observability layer: a process- or
// engine-scoped metrics registry (typed counters, gauges and bounded
// histograms with lock-free hot paths), per-query structured tracing
// (QueryTrace / Span, carried through contexts into the executor, the
// federation layer and the 2PC coordinator), and the typed system-view
// registry behind the M_* monitoring surface. Every layer reports into one
// registry and one coherent API reads out of it — the paper's
// single-administration-surface idea (§2) applied to telemetry.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The hot path is a single
// atomic add; a nil *Counter ignores every update so instrumentation can be
// unconditional.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (negative deltas are coerced to zero: counters never regress).
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.v.Add(d)
}

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is larger (high-water marks).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a bounded histogram: observations land in the first bucket
// whose upper bound is >= the value, or in the overflow bucket. Each bucket
// is its own atomic (sharded buckets), so concurrent morsel workers never
// serialize on a histogram lock.
type Histogram struct {
	bounds  []int64        // sorted upper bounds
	buckets []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// LatencyBoundsUs is the default microsecond bucket layout for statement
// and remote-call latencies: 100µs … 10s, one decade per bucket.
var LatencyBoundsUs = []int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// Registry holds named metrics. Registration takes a short write lock;
// updates go straight to the returned metric's atomics, so hot paths are
// lock-free once the metric handle is cached.
type Registry struct {
	mu sync.RWMutex
	// hana:guardedby mu
	counters map[string]*Counter
	// hana:guardedby mu
	gauges map[string]*Gauge
	// hana:guardedby mu
	hists map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry. Engine instances default to their
// own private registries; infrastructure without an engine scope (the
// map-reduce runtime, adapters) reports here, and the package-level
// Snapshot reads it.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (nil bounds default to LatencyBoundsUs). An
// existing histogram keeps its original bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if len(bounds) == 0 {
		bounds = LatencyBoundsUs
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// CounterStat is one counter in a Stats snapshot.
type CounterStat struct {
	Name  string
	Value int64
}

// GaugeStat is one gauge in a Stats snapshot.
type GaugeStat struct {
	Name  string
	Value int64
}

// HistogramStat is one histogram in a Stats snapshot. Counts has one entry
// per bound plus the overflow bucket.
type HistogramStat struct {
	Name   string
	Bounds []int64
	Counts []int64
	Count  int64
	Sum    int64
}

// Stats is an immutable point-in-time snapshot of a registry, each section
// sorted by metric name. Callers read metrics from here instead of reaching
// into package-level counters.
type Stats struct {
	Counters   []CounterStat
	Gauges     []GaugeStat
	Histograms []HistogramStat
}

// Counter looks up a counter value by name.
func (s Stats) Counter(name string) (int64, bool) {
	i := sort.Search(len(s.Counters), func(i int) bool { return s.Counters[i].Name >= name })
	if i < len(s.Counters) && s.Counters[i].Name == name {
		return s.Counters[i].Value, true
	}
	return 0, false
}

// Gauge looks up a gauge value by name.
func (s Stats) Gauge(name string) (int64, bool) {
	i := sort.Search(len(s.Gauges), func(i int) bool { return s.Gauges[i].Name >= name })
	if i < len(s.Gauges) && s.Gauges[i].Name == name {
		return s.Gauges[i].Value, true
	}
	return 0, false
}

// Histogram looks up a histogram snapshot by name.
func (s Stats) Histogram(name string) (HistogramStat, bool) {
	i := sort.Search(len(s.Histograms), func(i int) bool { return s.Histograms[i].Name >= name })
	if i < len(s.Histograms) && s.Histograms[i].Name == name {
		return s.Histograms[i], true
	}
	return HistogramStat{}, false
}

// Snapshot copies every metric into an immutable Stats. Individual reads
// are atomic; the snapshot as a whole is not a consistent cut (counters
// bumped mid-snapshot may or may not be included), which is the usual
// monitoring trade and never blocks writers.
func (r *Registry) Snapshot() Stats {
	r.mu.RLock()
	counters := make([]CounterStat, 0, len(r.counters))
	for n, c := range r.counters {
		counters = append(counters, CounterStat{Name: n, Value: c.Load()})
	}
	gauges := make([]GaugeStat, 0, len(r.gauges))
	for n, g := range r.gauges {
		gauges = append(gauges, GaugeStat{Name: n, Value: g.Load()})
	}
	hists := make([]HistogramStat, 0, len(r.hists))
	for n, h := range r.hists {
		st := HistogramStat{
			Name:   n,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.buckets)),
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
		}
		for i := range h.buckets {
			st.Counts[i] = h.buckets[i].Load()
		}
		hists = append(hists, st)
	}
	r.mu.RUnlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name < gauges[j].Name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	return Stats{Counters: counters, Gauges: gauges, Histograms: hists}
}

// Snapshot returns an immutable snapshot of the Default registry.
func Snapshot() Stats { return Default.Snapshot() }
