package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span (worker counts, retry
// attempts, chosen strategies). Attrs carry the numbers that vary run to
// run; the span tree itself — the topology — is deterministic for a given
// statement and data set, which is what EXPLAIN TRACE's stability
// guarantee rests on.
type Attr struct {
	Key string
	Val string
}

// Span is one timed section of a query: parse, plan, a morsel dispatch, a
// remote call, a 2PC phase. Spans form a tree under a QueryTrace; children
// may be appended concurrently (morsel workers, concurrent leaf realize),
// so every accessor locks. A nil *Span ignores every operation, letting
// instrumented code run untraced with zero branches at the call sites.
type Span struct {
	name string

	mu sync.Mutex
	// hana:guardedby mu
	start time.Time
	// hana:guardedby mu
	end time.Time
	// hana:guardedby mu
	attrs []Attr
	// hana:guardedby mu
	notes []string
	// hana:guardedby mu
	children []*Span
}

// StartSpan starts a child span. Every StartSpan must be paired with End on
// all return paths (enforced by the hanalint obsleak analyzer).
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. End is idempotent: the first call wins, so a span
// may be closed early on one path and again by a deferred End.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetAttr sets a string attribute (last write wins per key).
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = val
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
}

// SetAttrInt sets an integer attribute.
func (s *Span) SetAttrInt(key string, v int64) {
	s.SetAttr(key, fmt.Sprintf("%d", v))
}

// Note appends a free-form annotation: the planner records chosen and
// rejected strategies (with their cost estimates) here.
func (s *Span) Note(format string, args ...any) {
	if s == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	s.mu.Lock()
	s.notes = append(s.notes, msg)
	s.mu.Unlock()
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the elapsed time (zero-end spans measure to now).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Children returns a copy of the child spans in insertion order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attrs returns a copy of the attributes in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Notes returns a copy of the annotations in insertion order.
func (s *Span) Notes() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.notes...)
}

// Detail renders attrs and notes as one "k=v; ...; note" line for views.
func (s *Span) Detail() string {
	if s == nil {
		return ""
	}
	var parts []string
	for _, a := range s.Attrs() {
		parts = append(parts, a.Key+"="+a.Val)
	}
	parts = append(parts, s.Notes()...)
	return strings.Join(parts, "; ")
}

var traceSeq atomic.Uint64

// QueryTrace is the structured timeline of one statement execution: a span
// tree rooted at "query", the statement text, and the terminal error if
// any. Traces are created by ExecuteContext, threaded through the context,
// finished when the statement returns, and retained in the engine's
// TraceRing for the M_QUERY_TRACES view.
type QueryTrace struct {
	id        uint64
	statement string
	root      *Span

	mu sync.Mutex
	// hana:guardedby mu
	err string
}

// NewTrace starts a trace for one statement. IDs are process-unique and
// monotonic.
func NewTrace(statement string) *QueryTrace {
	return &QueryTrace{
		id:        traceSeq.Add(1),
		statement: statement,
		root:      &Span{name: "query", start: time.Now()},
	}
}

// ID returns the trace's process-unique id (0 on nil).
func (t *QueryTrace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Statement returns the traced statement text.
func (t *QueryTrace) Statement() string {
	if t == nil {
		return ""
	}
	return t.statement
}

// Root returns the root span.
func (t *QueryTrace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// StartSpan starts a top-level span under the root.
func (t *QueryTrace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.root.StartSpan(name)
}

// Finish closes the root span and records the statement's terminal error.
func (t *QueryTrace) Finish(err error) {
	if t == nil {
		return
	}
	if err != nil {
		t.mu.Lock()
		t.err = err.Error()
		t.mu.Unlock()
	}
	t.root.End()
}

// Err returns the recorded terminal error ("" for success).
func (t *QueryTrace) Err() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Duration returns the root span's elapsed time.
func (t *QueryTrace) Duration() time.Duration { return t.Root().Duration() }

// Walk visits every span in preorder with its depth (root = 0).
func (t *QueryTrace) Walk(fn func(depth int, s *Span)) {
	if t == nil {
		return
	}
	var rec func(depth int, s *Span)
	rec = func(depth int, s *Span) {
		fn(depth, s)
		for _, c := range s.Children() {
			rec(depth+1, c)
		}
	}
	rec(0, t.root)
}

// Timeline renders the full trace: span tree with durations, attributes
// and planner notes — the EXPLAIN TRACE display.
func (t *QueryTrace) Timeline() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	t.Walk(func(depth int, s *Span) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s [%s]", s.Name(), s.Duration().Round(time.Microsecond))
		if d := s.Detail(); d != "" {
			b.WriteString("  " + d)
		}
		b.WriteByte('\n')
	})
	if e := t.Err(); e != "" {
		fmt.Fprintf(&b, "error: %s\n", e)
	}
	return b.String()
}

// Topology renders only the span-tree structure: names and nesting, with
// sibling spans sorted by name. Timings, attributes and notes are
// excluded, and the name sort removes the arrival-order nondeterminism of
// concurrently appended siblings — so for a fixed statement and data set
// the topology is identical at every parallelism width.
func (t *QueryTrace) Topology() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	var rec func(depth int, s *Span)
	rec = func(depth int, s *Span) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.Name())
		b.WriteByte('\n')
		kids := s.Children()
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].Name() < kids[j].Name() })
		for _, c := range kids {
			rec(depth+1, c)
		}
	}
	rec(0, t.root)
	return b.String()
}

// TraceRing retains the last N finished traces for M_QUERY_TRACES.
type TraceRing struct {
	mu   sync.Mutex
	size int
	// hana:guardedby mu
	buf []*QueryTrace
	// hana:guardedby mu
	next int
	// hana:guardedby mu
	full bool
}

// DefaultTraceRingSize bounds the trace history when the engine config
// leaves it unset.
const DefaultTraceRingSize = 32

// NewTraceRing creates a ring holding the last n traces (n<=0 uses
// DefaultTraceRingSize).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = DefaultTraceRingSize
	}
	return &TraceRing{size: n, buf: make([]*QueryTrace, n)}
}

// Push appends a finished trace, evicting the oldest when full.
func (r *TraceRing) Push(t *QueryTrace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % r.size
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the retained traces, oldest first.
func (r *TraceRing) Snapshot() []*QueryTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*QueryTrace
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	res := make([]*QueryTrace, 0, len(out))
	for _, t := range out {
		if t != nil {
			res = append(res, t)
		}
	}
	return res
}

// Cap returns the ring capacity.
func (r *TraceRing) Cap() int {
	if r == nil {
		return 0
	}
	return r.size
}

type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
)

// ContextWithTrace attaches a trace to the context and makes its root span
// the current span.
func ContextWithTrace(ctx context.Context, t *QueryTrace) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx = context.WithValue(ctx, traceKey, t)
	return context.WithValue(ctx, spanKey, t.Root())
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *QueryTrace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey).(*QueryTrace)
	return t
}

// ContextWithSpan makes sp the current span: spans started from the
// returned context nest under it.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanKey, sp)
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}
