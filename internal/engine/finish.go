package engine

import (
	"fmt"
	"strings"

	"hana/internal/exec"
	"hana/internal/expr"
	"hana/internal/sqlparse"
	"hana/internal/value"
)

// finishBlock applies the post-join stages of a query block: aggregation,
// HAVING, projection, DISTINCT, ORDER BY and LIMIT.
func (p *planner) finishBlock(sel *sqlparse.SelectStmt, it exec.Iter, root *planNode) (exec.Iter, *planNode, error) {
	inSchema := it.Schema()
	items, err := expandStars(sel.Items, inSchema)
	if err != nil {
		return nil, nil, err
	}

	needAgg := len(sel.GroupBy) > 0
	if !needAgg {
		for _, item := range items {
			if expr.HasAggregate(item.Expr) {
				needAgg = true
				break
			}
		}
		if sel.Having != nil && expr.HasAggregate(sel.Having) {
			needAgg = true
		}
	}

	having := sel.Having
	orderExprs := make([]expr.Expr, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		orderExprs[i] = o.Expr
	}

	if needAgg {
		var err error
		it, items, having, orderExprs, err = p.aggregate(sel, it, items, having, orderExprs)
		if err != nil {
			return nil, nil, err
		}
		root = node(fmt.Sprintf("Hash Aggregate (%d group cols, groups)", len(sel.GroupBy)), root)
	}

	return p.finishAfterAgg(sel, it, root, items, having, orderExprs)
}

// finishAfterAgg applies the stages downstream of aggregation — HAVING,
// projection, DISTINCT, ORDER BY, LIMIT — to an input whose aggregate (if
// any) has already run. The distributed path enters here after merging
// shard partials, so both paths share one implementation of the finishing
// stages.
func (p *planner) finishAfterAgg(sel *sqlparse.SelectStmt, it exec.Iter, root *planNode, items []sqlparse.SelectItem, having expr.Expr, orderExprs []expr.Expr) (exec.Iter, *planNode, error) {
	if having != nil {
		pred, err := bindToSchema(having, it.Schema())
		if err != nil {
			return nil, nil, err
		}
		it = exec.FilterIter(it, pred)
		root = node("Having: "+pred.SQL(), root)
	}

	// Projection. ORDER BY keys that reference non-projected columns get
	// hidden sort columns appended, dropped again after the sort.
	preSchema := it.Schema()
	outSchema := &value.Schema{}
	var exprs []expr.Expr
	for _, item := range items {
		be, err := bindToSchema(item.Expr, preSchema)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, be)
		outSchema.Cols = append(outSchema.Cols, value.Column{
			Name:     outName(item),
			Kind:     inferKind(item.Expr, preSchema),
			Nullable: true,
		})
	}
	visibleWidth := len(exprs)

	type pendingKey struct {
		e    expr.Expr
		desc bool
	}
	var keys []pendingKey
	for i, o := range sel.OrderBy {
		oe := orderExprs[i]
		for _, item := range items {
			if item.Expr != nil && item.Expr.SQL() == oe.SQL() {
				oe = expr.Col(outName(item))
				break
			}
		}
		if try, err := bindToSchema(oe, outSchema); err == nil {
			keys = append(keys, pendingKey{e: try, desc: o.Desc})
			continue
		}
		// Hidden sort column evaluated against the pre-projection input.
		be, err := bindToSchema(oe, preSchema)
		if err != nil {
			return nil, nil, fmt.Errorf("ORDER BY: %w", err)
		}
		hidden := fmt.Sprintf("$sort%d", i)
		exprs = append(exprs, be)
		outSchema.Cols = append(outSchema.Cols, value.Column{Name: hidden, Kind: inferKind(oe, preSchema), Nullable: true})
		key := expr.Col(hidden)
		if err := expr.Bind(key, outSchema); err != nil {
			return nil, nil, err
		}
		keys = append(keys, pendingKey{e: key, desc: o.Desc})
	}

	it = exec.ProjectIter(it, exprs, outSchema)
	root = node("Project: "+strings.Join(outSchema.Names()[:visibleWidth], ", "), root)

	if sel.Distinct {
		if len(outSchema.Cols) != visibleWidth {
			return nil, nil, fmt.Errorf("DISTINCT with ORDER BY over non-projected columns is not supported")
		}
		it = &exec.Distinct{In: it}
		root = node("Distinct", root)
	}

	if len(keys) > 0 {
		sk := make([]exec.SortKey, len(keys))
		for i, k := range keys {
			sk[i] = exec.SortKey{E: k.e, Desc: k.desc}
		}
		it = &exec.Sort{In: it, Keys: sk}
		root = node("Sort", root)
	}
	if sel.Limit >= 0 {
		it = &exec.Limit{In: it, N: sel.Limit}
		root = node(fmt.Sprintf("Limit %d", sel.Limit), root)
	}
	// Drop hidden sort columns.
	if len(outSchema.Cols) != visibleWidth {
		finalSchema := &value.Schema{Cols: append([]value.Column{}, outSchema.Cols[:visibleWidth]...)}
		finalExprs := make([]expr.Expr, visibleWidth)
		for i := range finalExprs {
			c := expr.Col(outSchema.Cols[i].Name)
			c.Ord = i
			finalExprs[i] = c
		}
		it = exec.ProjectIter(it, finalExprs, finalSchema)
	}
	return it, root, nil
}

// applyOrderLimit sorts and limits, resolving ORDER BY expressions against
// the projection's output (aliases, repeated item expressions).
func (p *planner) applyOrderLimit(sel *sqlparse.SelectStmt, items []sqlparse.SelectItem, orderExprs []expr.Expr, it exec.Iter, root *planNode) (exec.Iter, *planNode, error) {
	if len(sel.OrderBy) > 0 {
		keys := make([]exec.SortKey, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			oe := orderExprs[i]
			// Match the textual form of a select item: ORDER BY SUM(x) when
			// SUM(x) is also projected.
			for _, item := range items {
				if item.Expr != nil && item.Expr.SQL() == oe.SQL() {
					oe = expr.Col(outName(item))
					break
				}
			}
			be, err := bindToSchema(oe, it.Schema())
			if err != nil {
				return nil, nil, fmt.Errorf("ORDER BY: %w", err)
			}
			keys[i] = exec.SortKey{E: be, Desc: o.Desc}
		}
		it = &exec.Sort{In: it, Keys: keys}
		root = node("Sort", root)
	}
	if sel.Limit >= 0 {
		it = &exec.Limit{In: it, N: sel.Limit}
		root = node(fmt.Sprintf("Limit %d", sel.Limit), root)
	}
	return it, root, nil
}

// aggregate inserts a HashAggregate and rewrites items/having/order
// expressions to reference the aggregate's output columns.
func (p *planner) aggregate(sel *sqlparse.SelectStmt, it exec.Iter, items []sqlparse.SelectItem, having expr.Expr, orderExprs []expr.Expr) (exec.Iter, []sqlparse.SelectItem, expr.Expr, []expr.Expr, error) {
	inSchema := it.Schema()

	// Group keys.
	groupNames := make([]string, len(sel.GroupBy))
	boundGroups := make([]expr.Expr, len(sel.GroupBy))
	outSchema := &value.Schema{}
	for i, g := range sel.GroupBy {
		groupNames[i] = exprName(g)
		bg, err := bindToSchema(g, inSchema)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("GROUP BY: %w", err)
		}
		boundGroups[i] = bg
		outSchema.Cols = append(outSchema.Cols, value.Column{
			Name: groupNames[i], Kind: inferKind(g, inSchema), Nullable: true,
		})
	}

	// Collect distinct aggregate calls across items, having and order by.
	var specs []exec.AggSpec
	aggCols := map[string]string{} // agg SQL → output column name
	collect := func(e expr.Expr) error {
		var err error
		expr.Walk(e, func(n expr.Expr) bool {
			f, ok := n.(*expr.Func)
			if !ok || !f.IsAggregate() {
				return true
			}
			key := f.SQL()
			if _, seen := aggCols[key]; seen {
				return false
			}
			spec := exec.AggSpec{Func: f.Name, Distinct: f.Distinct}
			if !f.Star {
				if len(f.Args) != 1 {
					err = fmt.Errorf("aggregate %s expects one argument", f.Name)
					return false
				}
				var be expr.Expr
				be, err = bindToSchema(f.Args[0], inSchema)
				if err != nil {
					return false
				}
				spec.Arg = be
			}
			aggCols[key] = key
			specs = append(specs, spec)
			outSchema.Cols = append(outSchema.Cols, value.Column{
				Name: key, Kind: inferKind(f, inSchema), Nullable: true,
			})
			return false
		})
		return err
	}
	for _, item := range items {
		if err := collect(item.Expr); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	if having != nil {
		if err := collect(having); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	for _, oe := range orderExprs {
		if err := collect(oe); err != nil {
			return nil, nil, nil, nil, err
		}
	}

	agg := &exec.ParallelHashAggregate{
		In: it, GroupBy: boundGroups, Aggs: specs, Out: outSchema,
		Pool: p.e.pool, Ctx: p.ctx, Width: p.width, Stats: p.stats,
	}

	// Rewrite expressions over the aggregate output: aggregate calls and
	// group expressions become column references.
	groupSQL := map[string]string{}
	for i, g := range sel.GroupBy {
		groupSQL[g.SQL()] = groupNames[i]
	}
	rewrite := func(e expr.Expr) expr.Expr {
		if e == nil {
			return nil
		}
		return expr.Rewrite(e, func(n expr.Expr) expr.Expr {
			if f, ok := n.(*expr.Func); ok && f.IsAggregate() {
				return expr.Col(aggCols[f.SQL()])
			}
			if name, ok := groupSQL[n.SQL()]; ok {
				return expr.Col(name)
			}
			return nil
		})
	}
	outItems := make([]sqlparse.SelectItem, len(items))
	for i, item := range items {
		outItems[i] = sqlparse.SelectItem{Expr: rewrite(item.Expr), Alias: item.Alias}
	}
	outOrder := make([]expr.Expr, len(orderExprs))
	for i, oe := range orderExprs {
		outOrder[i] = rewrite(oe)
	}
	return agg, outItems, rewrite(having), outOrder, nil
}

// expandStars replaces * and t.* items with explicit column references.
func expandStars(items []sqlparse.SelectItem, s *value.Schema) ([]sqlparse.SelectItem, error) {
	var out []sqlparse.SelectItem
	for _, item := range items {
		if !item.Star {
			out = append(out, item)
			continue
		}
		matched := false
		for _, col := range s.Cols {
			if item.Qual != "" {
				prefix := strings.ToUpper(item.Qual) + "."
				if !strings.HasPrefix(strings.ToUpper(col.Name), prefix) {
					continue
				}
			}
			out = append(out, sqlparse.SelectItem{Expr: expr.Col(col.Name)})
			matched = true
		}
		if !matched {
			return nil, fmt.Errorf("star expansion found no columns for %s.*", item.Qual)
		}
	}
	return out, nil
}

// outName is the result column name of a select item.
func outName(item sqlparse.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if c, ok := item.Expr.(*expr.ColRef); ok {
		// Unqualify: "customer.c_name" projects as "c_name".
		if dot := strings.LastIndexByte(c.Name, '.'); dot >= 0 {
			return c.Name[dot+1:]
		}
		return c.Name
	}
	return item.Expr.SQL()
}

// exprName names a grouping expression.
func exprName(g expr.Expr) string {
	if c, ok := g.(*expr.ColRef); ok {
		return c.Name
	}
	return g.SQL()
}

// inferKind guesses the result kind of an expression for schema metadata.
func inferKind(e expr.Expr, s *value.Schema) value.Kind {
	switch n := e.(type) {
	case *expr.ColRef:
		if i := s.Find(n.Name); i >= 0 {
			return s.Cols[i].Kind
		}
		return value.KindDouble
	case *expr.Literal:
		return n.Val.K
	case *expr.Cast:
		return n.To
	case *expr.Func:
		switch n.Name {
		case "COUNT":
			return value.KindInt
		case "AVG", "STDDEV", "VAR":
			return value.KindDouble
		case "SUM", "MIN", "MAX":
			if len(n.Args) == 1 {
				return inferKind(n.Args[0], s)
			}
			return value.KindDouble
		case "YEAR", "MONTH", "DAY", "LENGTH", "MOD", "FLOOR", "CEIL":
			return value.KindInt
		case "UPPER", "LOWER", "SUBSTR", "SUBSTRING", "TRIM", "CONCAT", "TO_VARCHAR":
			return value.KindVarchar
		}
		return value.KindDouble
	case *expr.BinOp:
		if n.Op.Comparison() || n.Op == expr.OpAnd || n.Op == expr.OpOr {
			return value.KindBool
		}
		if n.Op == expr.OpConcat {
			return value.KindVarchar
		}
		lk := inferKind(n.L, s)
		rk := inferKind(n.R, s)
		if lk == value.KindInt && rk == value.KindInt && n.Op != expr.OpDiv {
			return value.KindInt
		}
		if lk == value.KindDate {
			return lk
		}
		return value.KindDouble
	case *expr.UnOp:
		if n.Op == expr.OpNot {
			return value.KindBool
		}
		return inferKind(n.E, s)
	case *expr.Between, *expr.In, *expr.Like, *expr.IsNull:
		return value.KindBool
	case *expr.CaseWhen:
		if len(n.Whens) > 0 {
			return inferKind(n.Whens[0].Then, s)
		}
	}
	return value.KindDouble
}
