package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"hana/internal/obs"
	"hana/internal/value"
)

// fedJoinSQL joins a virtual table with a small local table: the planner
// must fetch V_CUSTOMER remotely (with a semijoin IN-list pushed from
// nation) and hash-join locally — every span family shows up in the trace.
const fedJoinSQL = `SELECT c_name, n_name FROM V_CUSTOMER, nation
	WHERE c_nationkey = n_nationkey AND c_mktsegment = 'HOUSEHOLD'`

func TestExplainTraceFederated(t *testing.T) {
	e, _ := newFederatedSetup(t)
	res := exec1(t, e, "EXPLAIN TRACE "+fedJoinSQL)
	if res.Message != "traced" {
		t.Fatalf("message = %q", res.Message)
	}
	if res.Trace == nil {
		t.Fatal("EXPLAIN TRACE must attach the trace to the result")
	}
	if got := res.Schema.Names(); fmt.Sprint(got) != "[trace_id span depth duration_us detail]" {
		t.Fatalf("schema = %v", got)
	}
	topo := res.Trace.Topology()
	for _, span := range []string{"query", "parse", "stmt", "plan", "exec", "remote", "morsels"} {
		if !strings.Contains(topo, span) {
			t.Fatalf("topology missing %q span:\n%s", span, topo)
		}
	}
	// The plan span records the chosen federated strategy.
	var planDetail string
	res.Trace.Walk(func(_ int, s *obs.Span) {
		if s.Name() == "plan" {
			planDetail = s.Detail()
		}
	})
	if !strings.Contains(planDetail, "chose semijoin") {
		t.Fatalf("plan span must note the chosen strategy, got %q", planDetail)
	}
	// The morsel spans record per-worker timings.
	var workerAttrs bool
	res.Trace.Walk(func(_ int, s *obs.Span) {
		if s.Name() == "morsels" && strings.Contains(s.Detail(), "w0=") {
			workerAttrs = true
		}
	})
	if !workerAttrs {
		t.Fatal("morsel spans must record per-worker morsel counts")
	}
}

// TestExplainTraceTopologyDeterministic pins the width-independence
// guarantee: timings vary between runs, but the span topology — names and
// nesting — must be identical at parallelism 1 and 4.
func TestExplainTraceTopologyDeterministic(t *testing.T) {
	e, _ := newFederatedSetup(t)
	run := func(width int) string {
		t.Helper()
		res, err := e.ExecuteContext(context.Background(), "EXPLAIN TRACE "+fedJoinSQL, WithParallelism(width))
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace.Topology()
	}
	t1 := run(1)
	t4 := run(4)
	if t1 != t4 {
		t.Fatalf("topology differs between widths:\nwidth 1:\n%s\nwidth 4:\n%s", t1, t4)
	}
}

// TestDMLTraceRecords2PCPhases pins the commit-path spans: an autonomous
// DML statement's trace must show the 2PC phases under its stmt span.
func TestDMLTraceRecords2PCPhases(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE twopc (id BIGINT)`)
	exec1(t, e, `INSERT INTO twopc VALUES (1), (2)`)
	traces := e.Traces().Snapshot()
	tr := traces[len(traces)-1]
	if tr.Statement() != `INSERT INTO twopc VALUES (1), (2)` {
		t.Fatalf("last trace = %q", tr.Statement())
	}
	spans := map[string]bool{}
	tr.Walk(func(_ int, s *obs.Span) { spans[s.Name()] = true })
	for _, want := range []string{"2pc", "2pc:prepare", "2pc:decide", "2pc:commit"} {
		if !spans[want] {
			t.Fatalf("trace missing %q span, got %v", want, spans)
		}
	}
}

func TestQueryTracesView(t *testing.T) {
	e, _ := newFederatedSetup(t)
	exec1(t, e, fedJoinSQL)
	res := exec1(t, e, `SELECT * FROM M_QUERY_TRACES()`)
	stmtCol := res.Schema.MustFind("statement")
	spanCol := res.Schema.MustFind("span")
	spans := map[string]bool{}
	for _, row := range res.Rows {
		if strings.Contains(row[stmtCol].String(), "V_CUSTOMER") {
			spans[row[spanCol].String()] = true
		}
	}
	for _, want := range []string{"query", "parse", "stmt", "plan", "exec", "remote"} {
		if !spans[want] {
			t.Fatalf("M_QUERY_TRACES missing %q span for the federated query, got %v", want, spans)
		}
	}
}

// TestFederationStatsAgreeWithTrace cross-checks the three surfaces: the
// registry-backed M_FEDERATION_STATISTICS view, the typed metrics snapshot,
// and the recorded trace must all report the same remote activity.
func TestFederationStatsAgreeWithTrace(t *testing.T) {
	e, _ := newFederatedSetup(t)
	res := exec1(t, e, fedJoinSQL)
	var remoteSpans int64
	traces := e.Traces().Snapshot()
	traces[len(traces)-1].Walk(func(_ int, s *obs.Span) {
		if s.Name() == "remote" {
			remoteSpans++
		}
	})
	if remoteSpans == 0 {
		t.Fatalf("no remote spans in trace; plan:\n%s", res.Plan)
	}
	m := e.Metrics.Snapshot()
	if m.RemoteQueries != remoteSpans {
		t.Fatalf("metrics RemoteQueries = %d, trace has %d remote spans", m.RemoteQueries, remoteSpans)
	}
	stats := exec1(t, e, `SELECT * FROM M_FEDERATION_STATISTICS()`)
	viewVals := map[string]int64{}
	for _, row := range stats.Rows {
		viewVals[row[0].String()] = row[1].Int()
	}
	if viewVals["remote_queries"] != m.RemoteQueries {
		t.Fatalf("view remote_queries = %d, metrics = %d", viewVals["remote_queries"], m.RemoteQueries)
	}
	if viewVals["semijoins_chosen"] != m.SemiJoinsChosen {
		t.Fatalf("view semijoins_chosen = %d, metrics = %d", viewVals["semijoins_chosen"], m.SemiJoinsChosen)
	}
	if len(stats.Rows) != 11 {
		t.Fatalf("M_FEDERATION_STATISTICS rows = %d, want 11", len(stats.Rows))
	}
}

func TestMViewsEnumeratesRegisteredViews(t *testing.T) {
	e := newTestEngine(t)
	res := exec1(t, e, `SELECT * FROM M_VIEWS()`)
	nameCol := res.Schema.MustFind("view_name")
	colCol := res.Schema.MustFind("column_name")
	seen := map[string]bool{}
	cols := map[string]bool{}
	for _, row := range res.Rows {
		seen[row[nameCol].String()] = true
		cols[row[nameCol].String()+"."+row[colCol].String()] = true
	}
	for _, want := range []string{
		"M_TABLES", "M_REMOTE_SOURCES", "M_VIRTUAL_TABLES",
		"M_FEDERATION_STATISTICS", "M_TRANSACTIONS", "M_REMOTE_SOURCE_HEALTH",
		"M_INDOUBT_TRANSACTIONS", "M_VIEWS", "M_QUERY_TRACES", "M_METRICS",
	} {
		if !seen[want] {
			t.Fatalf("M_VIEWS missing %s; got %v", want, seen)
		}
	}
	if !cols["M_TABLES.table_name"] {
		t.Fatal("M_VIEWS must list typed column metadata")
	}
}

// TestRegisterTableProviderCompat pins the deprecated stringly API: legacy
// providers still execute and are enumerated as dynamic views.
func TestRegisterTableProviderCompat(t *testing.T) {
	e := newTestEngine(t)
	e.RegisterTableProvider("LEGACY_VIEW", func() (*value.Rows, error) {
		out := value.NewRows(value.NewSchema(value.Column{Name: "x", Kind: value.KindInt}))
		out.Append(value.Row{value.NewInt(7)})
		return out, nil
	})
	res := exec1(t, e, `SELECT x FROM LEGACY_VIEW()`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 7 {
		t.Fatalf("rows = %v", res.Rows)
	}
	views := exec1(t, e, `SELECT * FROM M_VIEWS()`)
	nameCol := views.Schema.MustFind("view_name")
	dynCol := views.Schema.MustFind("dynamic")
	found := false
	for _, row := range views.Rows {
		if row[nameCol].String() == "LEGACY_VIEW" {
			found = true
			if !row[dynCol].Bool() {
				t.Fatal("legacy provider must be listed as dynamic")
			}
		}
	}
	if !found {
		t.Fatal("M_VIEWS must list the legacy provider")
	}
	e.UnregisterTableProvider("LEGACY_VIEW")
	if _, err := e.ExecuteContext(context.Background(), `SELECT x FROM LEGACY_VIEW()`); err == nil {
		t.Fatal("unregistered provider must not resolve")
	}
}

// TestSnapshotConcurrentWithExecution hammers the observability read paths
// while queries execute — the lock-free registry and the view registry must
// be safe to snapshot mid-flight (run under -race).
func TestSnapshotConcurrentWithExecution(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE stress (k BIGINT, v VARCHAR(10))`)
	exec1(t, e, `INSERT INTO stress VALUES (1,'a'), (2,'b'), (3,'c')`)
	const readers = 4
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st := e.Obs().Snapshot()
				if _, ok := st.Counter("exec.statements"); !ok {
					t.Error("exec.statements counter missing from snapshot")
					return
				}
				if _, ok, err := e.Views().Rows("M_METRICS"); !ok || err != nil {
					t.Errorf("M_METRICS: ok=%v err=%v", ok, err)
					return
				}
				e.Traces().Snapshot()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		exec1(t, e, `SELECT v, COUNT(*) FROM stress GROUP BY v`)
	}
	close(done)
	wg.Wait()
	if n, _ := e.Obs().Snapshot().Counter("exec.statements"); n < 50 {
		t.Fatalf("exec.statements = %d", n)
	}
}
