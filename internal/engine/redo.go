package engine

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"hana/internal/catalog"
	"hana/internal/txn"
	"hana/internal/value"
)

// Redo logging: every durable mutation of the engine's stores appends one
// typed RecData record to the WAL so crash recovery can rebuild the
// in-memory stores from the last savepoint plus the log suffix. Records are
// written *before* the store mutation inside the same critical section that
// applies it (write-ahead); replay re-attempts the mutation, and a mutation
// that failed deterministically the first time (duplicate primary key,
// arity mismatch) fails identically during replay and is skipped, keeping
// row-id assignment aligned.
//
// The record note is a compact binary frame:
//
//	[1B op][uvarint partition][uvarint rowID][uvarint len(table)][table][payload]
//
// with the payload depending on op: wire-encoded row for inserts, catalog
// JSON for DDL, empty for deletes.
const (
	redoIns       byte = 1 // hot/row-store insert; payload = wire row
	redoDel       byte = 2 // hot/row-store MVCC delete stamp
	redoExtIns    byte = 3 // extended-storage insert made durable at prepare
	redoExtDel    byte = 4 // extended-storage delete tombstone
	redoInsC      byte = 5 // bulk-loaded row, committed at Record.CID
	redoDDLCreate byte = 6 // payload = catalog.TableMeta JSON
	redoDDLDrop   byte = 7
	redoDDLAlter  byte = 8 // payload = []value.Column JSON (added columns)
)

// redoRec is one decoded redo record.
type redoRec struct {
	op      byte
	part    int
	rowID   int
	table   string
	payload []byte

	tid uint64 // from the Record envelope
	cid uint64
	lsn uint64
}

func encodeRedoNote(op byte, part, rowID int, table string, payload []byte) string {
	buf := make([]byte, 0, 1+3*binary.MaxVarintLen64+len(table)+len(payload))
	buf = append(buf, op)
	buf = binary.AppendUvarint(buf, uint64(part))
	buf = binary.AppendUvarint(buf, uint64(rowID))
	buf = binary.AppendUvarint(buf, uint64(len(table)))
	buf = append(buf, table...)
	buf = append(buf, payload...)
	return string(buf)
}

func decodeRedoNote(note string) (redoRec, error) {
	b := []byte(note)
	if len(b) < 4 {
		return redoRec{}, fmt.Errorf("redo: short note (%d bytes)", len(b))
	}
	r := redoRec{op: b[0]}
	if r.op < redoIns || r.op > redoDDLAlter {
		return redoRec{}, fmt.Errorf("redo: unknown op %d", r.op)
	}
	off := 1
	part, w := binary.Uvarint(b[off:])
	if w <= 0 {
		return redoRec{}, fmt.Errorf("redo: bad partition varint")
	}
	off += w
	rowID, w := binary.Uvarint(b[off:])
	if w <= 0 {
		return redoRec{}, fmt.Errorf("redo: bad rowID varint")
	}
	off += w
	tlen, w := binary.Uvarint(b[off:])
	if w <= 0 || uint64(len(b)-off-w) < tlen {
		return redoRec{}, fmt.Errorf("redo: bad table name length")
	}
	off += w
	r.part = int(part)
	r.rowID = int(rowID)
	r.table = string(b[off : off+int(tlen)])
	r.payload = b[off+int(tlen):]
	return r, nil
}

// logRedo appends one redo record; a nil WAL disables redo logging.
func (e *Engine) logRedo(tid, cid uint64, op byte, part, rowID int, table string, payload []byte) error {
	if e.wal == nil {
		return nil
	}
	return e.wal.Append(txn.Record{
		Type: txn.RecData,
		TID:  tid,
		CID:  cid,
		Note: encodeRedoNote(op, part, rowID, table, payload),
	})
}

func (e *Engine) logRedoRow(tid uint64, op byte, part, rowID int, table string, row value.Row) error {
	if e.wal == nil {
		return nil
	}
	var payload []byte
	if row != nil {
		payload = value.AppendRow(nil, row)
	}
	return e.logRedo(tid, 0, op, part, rowID, table, payload)
}

// logRedoDDL appends a DDL redo record (tid 0: DDL is autonomous).
func (e *Engine) logRedoDDL(op byte, table string, payload []byte) error {
	return e.logRedo(0, 0, op, 0, 0, table, payload)
}

func marshalTableMeta(meta *catalog.TableMeta) ([]byte, error) {
	// Optimizer statistics are advisory and rebuilt by ANALYZE; persisting
	// them would bloat every create record.
	clean := *meta
	clean.Stats = catalog.TableStats{}
	return json.Marshal(&clean)
}

// redoOpName names a redo op for the wal dump tool and recovery reports.
func redoOpName(op byte) string {
	switch op {
	case redoIns:
		return "INS"
	case redoDel:
		return "DEL"
	case redoExtIns:
		return "EXTINS"
	case redoExtDel:
		return "EXTDEL"
	case redoInsC:
		return "INSC"
	case redoDDLCreate:
		return "DDL-CREATE"
	case redoDDLDrop:
		return "DDL-DROP"
	case redoDDLAlter:
		return "DDL-ALTER"
	}
	return fmt.Sprintf("OP%d", op)
}

// FormatRedoNote renders a RecData note for human consumption (platformctl
// wal dump). Undecodable notes render as a length marker rather than an
// error: the dump tool must keep walking the log.
func FormatRedoNote(note string) string {
	r, err := decodeRedoNote(note)
	if err != nil {
		return fmt.Sprintf("<opaque %d bytes>", len(note))
	}
	switch r.op {
	case redoDDLCreate, redoDDLDrop, redoDDLAlter:
		return fmt.Sprintf("%s table=%s payload=%dB", redoOpName(r.op), r.table, len(r.payload))
	case redoDel, redoExtDel:
		return fmt.Sprintf("%s table=%s part=%d row=%d", redoOpName(r.op), r.table, r.part, r.rowID)
	default:
		row, _, err := value.DecodeRow(r.payload)
		if err != nil {
			return fmt.Sprintf("%s table=%s part=%d row=%d <bad payload>", redoOpName(r.op), r.table, r.part, r.rowID)
		}
		return fmt.Sprintf("%s table=%s part=%d row=%d vals=%v", redoOpName(r.op), r.table, r.part, r.rowID, row)
	}
}
