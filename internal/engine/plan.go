package engine

import (
	"context"
	"fmt"
	"strings"

	"hana/internal/exec"
	"hana/internal/expr"
	"hana/internal/fed"
	"hana/internal/obs"
	"hana/internal/sqlparse"
	"hana/internal/txn"
	"hana/internal/value"
)

// planner plans and executes one query block under a snapshot. ctx, width
// and stats thread the statement's cancellation scope, parallelism cap and
// executor counters into every morsel dispatch the plan makes. plan is the
// trace span that accumulates strategy decisions — chosen federated
// strategies and rejected alternatives with their cost estimates — as
// notes (nil when the statement is untraced).
type planner struct {
	e        *Engine
	snapshot uint64
	tid      uint64
	useCache bool

	ctx   context.Context
	width int
	stats *exec.Counters
	plan  *obs.Span

	// vector enables batch execution for in-memory scans (default on;
	// WithRowExec turns it off). needed is the statement-wide referenced
	// column-name set driving late materialization (nil = all columns).
	vector bool
	needed map[string]bool

	// localOnly pins the statement to the engine node (WithLocalOnly);
	// fanout caps concurrent shard fragments (WithShards, 0 = all).
	localOnly bool
	fanout    int
}

func (e *Engine) newPlanner(ctx context.Context, tx *txn.Txn, sel *sqlparse.SelectStmt, width int) *planner {
	if ctx == nil {
		ctx = context.Background()
	}
	p := &planner{e: e, ctx: ctx, width: width, stats: &exec.Counters{}}
	p.vector = ctx.Value(rowExecKey{}) == nil
	if o, ok := ctx.Value(distOptKey{}).(distOpt); ok {
		p.localOnly = o.localOnly
		p.fanout = o.fanout
	}
	if tx != nil {
		p.snapshot = tx.Snapshot
		p.tid = tx.TID
	} else {
		p.snapshot = e.mgr.LastCID()
	}
	if sel != nil {
		p.useCache = sel.HasHint("USE_REMOTE_CACHE")
		p.needed = collectNeeded(sel)
	}
	return p
}

// execStats snapshots the planner's executor counters for the Result.
func (p *planner) execStats() ExecStats {
	return ExecStats{
		RowsScanned: p.stats.RowsScanned.Load(),
		Morsels:     p.stats.Morsels.Load(),
		Workers:     p.stats.Workers.Load(),
	}
}

// runBlock plans and executes one top-level SELECT under plan/exec trace
// spans: "plan" covers planning and the eager realization work it performs
// (remote fetches, scans — this planner materializes during planning) and
// records the strategy decisions; "exec" covers the final drain and carries
// the executor counters.
func (p *planner) runBlock(ctx context.Context, sel *sqlparse.SelectStmt) (*value.Rows, *planNode, error) {
	parent := obs.SpanFrom(ctx)
	pl := parent.StartSpan("plan")
	p.plan = pl
	p.ctx = obs.ContextWithSpan(p.ctx, pl)
	it, root, err := p.planQueryBlock(sel)
	pl.End()
	if err != nil {
		return nil, nil, err
	}
	ex := parent.StartSpan("exec")
	defer ex.End()
	p.ctx = obs.ContextWithSpan(ctx, ex)
	rows, err := exec.Materialize(it)
	if err != nil {
		return nil, nil, err
	}
	st := p.execStats()
	ex.SetAttrInt("rows_scanned", st.RowsScanned)
	ex.SetAttrInt("morsels", st.Morsels)
	ex.SetAttrInt("workers_highwater", st.Workers)
	return rows, root, nil
}

// query plans, executes and materializes a SELECT.
func (e *Engine) query(ctx context.Context, tx *txn.Txn, sel *sqlparse.SelectStmt, width int) (*Result, error) {
	p := e.newPlanner(ctx, tx, sel, width)
	rows, root, err := p.runBlock(ctx, sel)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: rows.Schema, Rows: rows.Data, Plan: root.String(), Stats: p.execStats()}, nil
}

// explain plans (and for federated parts executes the shipping decision)
// without returning data rows. EXPLAIN TRACE additionally returns the
// recorded span timeline as rows, one per span in preorder.
func (e *Engine) explain(ctx context.Context, ex *sqlparse.ExplainStmt, width int) (*Result, error) {
	p := e.newPlanner(ctx, nil, ex.Sel, width)
	// Drain to complete lazy plan annotations.
	_, root, err := p.runBlock(ctx, ex.Sel)
	if err != nil {
		return nil, err
	}
	if !ex.Trace {
		return &Result{Plan: root.String(), Message: "explained", Stats: p.execStats()}, nil
	}
	tr := obs.TraceFrom(ctx)
	rows := traceSpanRows(tr)
	return &Result{
		Schema:  rows.Schema,
		Rows:    rows.Data,
		Plan:    root.String(),
		Message: "traced",
		Stats:   p.execStats(),
		Trace:   tr,
	}, nil
}

// traceSpanRows renders a trace's span tree as rows: one per span in
// preorder with its depth, duration and attribute/note detail.
func traceSpanRows(tr *obs.QueryTrace) *value.Rows {
	out := value.NewRows(value.NewSchema(
		value.Column{Name: "trace_id", Kind: value.KindInt},
		value.Column{Name: "span", Kind: value.KindVarchar},
		value.Column{Name: "depth", Kind: value.KindInt},
		value.Column{Name: "duration_us", Kind: value.KindInt},
		value.Column{Name: "detail", Kind: value.KindVarchar},
	))
	tr.Walk(func(depth int, s *obs.Span) {
		out.Append(value.Row{
			value.NewInt(int64(tr.ID())),
			value.NewString(s.Name()),
			value.NewInt(int64(depth)),
			value.NewInt(s.Duration().Microseconds()),
			value.NewString(s.Detail()),
		})
	})
	return out
}

// planQueryBlock plans one SELECT block: whole-statement shipping when
// every referenced table lives in one remote source (§4.2 "It is even
// possible that complete queries are processed via Hive and Hadoop"),
// otherwise local planning with per-leaf pushdown.
func (p *planner) planQueryBlock(sel *sqlparse.SelectStmt) (exec.Iter, *planNode, error) {
	if it, n, ok, err := p.tryShipWhole(sel); err != nil {
		return nil, nil, err
	} else if ok {
		return it, n, nil
	}

	// Split WHERE into plain conjuncts and subquery transforms.
	var pool []expr.Expr
	var transforms []subqueryTransform
	for _, c := range expr.SplitConjuncts(sel.Where) {
		if tf, ok := asSubqueryTransform(c); ok {
			transforms = append(transforms, tf)
			continue
		}
		c2, err := p.inlineScalarSubqueries(c)
		if err != nil {
			return nil, nil, err
		}
		pool = append(pool, c2)
	}

	rel, err := p.planFromExpr(sel.From, &pool)
	if err != nil {
		return nil, nil, err
	}
	// Single distributed leaf with nothing left in the pool: try shipping
	// the aggregation itself so only per-group partials cross the exchange.
	if rel.dst != nil && len(pool) == 0 && len(transforms) == 0 {
		if it, root, ok, err := p.tryDistAggregate(sel, rel); err != nil {
			return nil, nil, err
		} else if ok {
			return it, root, nil
		}
	}
	if err := p.realize(rel); err != nil {
		return nil, nil, err
	}
	it := exec.Iter(iterOf(rel))
	root := rel.node
	if root == nil {
		root = node("Row Source")
	}

	// Residual conjuncts that never found a single home (cross-relation
	// non-equi predicates).
	if len(pool) > 0 {
		pred, err := bindToSchema(expr.And(cloneAll(pool)...), it.Schema())
		if err != nil {
			return nil, nil, err
		}
		it = exec.FilterIter(it, pred)
		root = node("Filter: "+pred.SQL(), root)
	}

	// Apply EXISTS / IN subquery transforms as semi/anti joins.
	for _, tf := range transforms {
		var err error
		it, root, err = p.applyTransform(it, root, tf)
		if err != nil {
			return nil, nil, err
		}
	}

	return p.finishBlock(sel, it, root)
}

// planFromExpr plans a FROM tree. Inner/cross joins are flattened with the
// conjunct pool driving join keys and pushdown; left outer joins keep their
// structure.
func (p *planner) planFromExpr(te sqlparse.TableExpr, pool *[]expr.Expr) (*relation, error) {
	if te == nil {
		// SELECT without FROM: one empty row.
		return &relation{
			schema: value.NewSchema(),
			rows:   []value.Row{{}},
			local:  true,
			est:    1,
			node:   node("Single Row"),
		}, nil
	}
	switch t := te.(type) {
	case *sqlparse.JoinExpr:
		switch t.Type {
		case sqlparse.JoinInner, sqlparse.JoinCross:
			if t.On != nil {
				*pool = append(*pool, expr.SplitConjuncts(t.On)...)
			}
			l, err := p.planFromExpr(t.L, pool)
			if err != nil {
				return nil, err
			}
			r, err := p.planFromExpr(t.R, pool)
			if err != nil {
				return nil, err
			}
			return p.joinRelations(l, r, pool)
		case sqlparse.JoinLeft:
			l, err := p.planFromExpr(t.L, pool)
			if err != nil {
				return nil, err
			}
			var empty []expr.Expr
			r, err := p.planFromExpr(t.R, &empty)
			if err != nil {
				return nil, err
			}
			return p.leftOuterJoin(l, r, t.On)
		default:
			return nil, fmt.Errorf("%s JOIN is not supported", t.Type)
		}
	case *sqlparse.TableRef:
		return p.planTableLeaf(t, pool)
	case *sqlparse.SubqueryTable:
		res, _, err := p.blockRows(t.Sel)
		if err != nil {
			return nil, err
		}
		schema := res.Schema.Qualify(t.Alias)
		return &relation{
			schema: schema, rows: res.Data, local: true,
			est:  float64(len(res.Data)),
			node: node(fmt.Sprintf("Derived Table %s (%d rows)", t.Alias, len(res.Data))),
		}, nil
	case *sqlparse.TableFuncRef:
		return p.planTableFunc(t)
	}
	return nil, fmt.Errorf("unsupported FROM element %T", te)
}

// planTableLeaf builds a relation for a stored or virtual table, attaching
// pool conjuncts the leaf alone can evaluate.
func (p *planner) planTableLeaf(t *sqlparse.TableRef, pool *[]expr.Expr) (*relation, error) {
	name := t.Name()
	binding := t.Binding()

	if vt, ok := p.e.cat.VirtualTable(name); ok {
		a, err := p.e.adapter(vt.Source)
		if err != nil {
			return nil, err
		}
		schema := vt.Schema.Qualify(binding)
		rel := &relation{
			schema: schema,
			remote: &remoteRel{
				source:  vt.Source,
				adapter: a,
				tables:  []remoteTable{{path: vt.Remote, binding: binding, schema: schema}},
			},
		}
		base := int64(100000)
		if st, ok := a.TableStats(vt.Remote); ok {
			base = st.RowCount
		}
		conjs := takeCovered(rel, pool)
		for _, c := range conjs {
			rel.addConj(c)
		}
		rel.est = estimateLeaf(nil, base, conjs)
		return rel, nil
	}

	st, err := p.e.table(name)
	if err != nil {
		return nil, err
	}
	meta := st.meta
	schema := meta.Schema.Qualify(binding)

	// Extended / hybrid tables stay unrealized so the planner can choose a
	// federated strategy (remote scan, semijoin, union plan).
	if hasColdParts(st) {
		rel := &relation{schema: schema, ext: &extRel{t: st}}
		conjs := takeCovered(rel, pool)
		for _, c := range conjs {
			rel.addConj(c)
		}
		rel.est = estimateLeaf(meta, approxRowCount(st), conjs)
		return rel, nil
	}

	// Distributed leaf: the table is mirrored hash-sharded on the worker
	// fleet, so the scan (and any aggregate or broadcast join above it)
	// can execute as shipped fragments. Explicit-transaction reads stay
	// local — workers only hold committed state, and the local path sees
	// the transaction's own uncommitted rows.
	if p.tid == 0 && !p.localOnly && p.e.distFor(st) != nil {
		rel := &relation{schema: schema, dst: &distRel{t: st, name: name, binding: binding}}
		conjs := takeCovered(rel, pool)
		for _, c := range conjs {
			rel.addConj(c)
		}
		rel.est = estimateLeaf(meta, approxRowCount(st), conjs)
		return rel, nil
	}

	// Pure in-memory leaf: morsel-parallel scan over the partitions' row
	// ranges, with covered conjuncts filtered inside each morsel.
	rel := &relation{schema: schema, local: true}
	conjs := takeCovered(rel, pool)
	var pred expr.Expr
	if len(conjs) > 0 {
		var err error
		pred, err = bindToSchema(expr.And(cloneAll(conjs)...), schema)
		if err != nil {
			return nil, err
		}
	}
	if p.vector && vectorizable(st.parts) {
		batches, _, err := p.scanPartsVec(st.parts, pred, neededOrds(p.needed, meta.Schema), schema)
		if err != nil {
			return nil, err
		}
		rel.batches = batches
		kept := rel.batchRowCount()
		rel.node = node(fmt.Sprintf("%s Scan [%s] (%d rows, vectorized)", storeLabel(st), name, kept))
		if pred != nil {
			rel.node.children = append(rel.node.children, node("filter: "+pred.SQL()))
		}
		rel.est = float64(kept)
		return rel, nil
	}
	rows, _, err := p.scanParts(st.parts, nil, pred)
	if err != nil {
		return nil, err
	}
	if pred != nil {
		rel.node = node(fmt.Sprintf("%s Scan [%s] (%d rows)", storeLabel(st), name, len(rows)),
			node("filter: "+pred.SQL()))
	} else {
		rel.node = node(fmt.Sprintf("%s Scan [%s] (%d rows)", storeLabel(st), name, len(rows)))
	}
	rel.rows = rows
	rel.est = float64(len(rows))
	return rel, nil
}

func storeLabel(st *storedTable) string {
	if len(st.parts) > 0 && st.parts[0].row != nil {
		return "Row"
	}
	return "Column"
}

func hasColdParts(st *storedTable) bool {
	for _, p := range st.parts {
		if p.cold {
			return true
		}
	}
	return false
}

func approxRowCount(st *storedTable) int64 {
	if st.meta.Stats.RowCount > 0 {
		return st.meta.Stats.RowCount
	}
	var n int64
	for _, p := range st.parts {
		n += int64(p.numRows())
	}
	return n
}

// planTableFunc invokes a local table provider (HANA join over ESP window
// state) or a virtual function (§4.3) on its remote source.
func (p *planner) planTableFunc(t *sqlparse.TableFuncRef) (*relation, error) {
	if rows, ok, err := p.e.views.Rows(t.Name); ok || err != nil {
		if err != nil {
			return nil, fmt.Errorf("table provider %s: %w", t.Name, err)
		}
		schema := rows.Schema.Qualify(t.Binding())
		return &relation{
			schema: schema, rows: rows.Data, local: true,
			est:  float64(rows.Len()),
			node: node(fmt.Sprintf("Table Provider %s (%d rows)", t.Name, rows.Len())),
		}, nil
	}
	vf, ok := p.e.cat.VirtualFunction(t.Name)
	if !ok {
		return nil, fmt.Errorf("table function %s not found", t.Name)
	}
	a, err := p.e.adapter(vf.Source)
	if err != nil {
		return nil, err
	}
	fa, ok := a.(fed.FunctionAdapter)
	if !ok {
		return nil, fmt.Errorf("remote source %s cannot execute virtual functions", vf.Source)
	}
	rows, err := p.e.remoteCall(p.ctx, vf.Source, fa, vf.Configuration, vf.Returns)
	if err != nil {
		return nil, fmt.Errorf("virtual function %s: %w", t.Name, err)
	}
	schema := vf.Returns.Qualify(t.Binding())
	if err := conformRows(rows, schema); err != nil {
		return nil, err
	}
	p.e.Metrics.RemoteQueries.Inc()
	p.e.Metrics.RemoteRowsFetched.Add(int64(rows.Len()))
	return &relation{
		schema: schema, rows: rows.Data, local: true,
		est:  float64(rows.Len()),
		node: node(fmt.Sprintf("Virtual Function %s [%s] (%d rows)", t.Name, vf.Source, rows.Len())),
	}, nil
}

// takeCovered removes and returns pool conjuncts the relation can evaluate
// alone.
func takeCovered(rel *relation, pool *[]expr.Expr) []expr.Expr {
	var taken []expr.Expr
	rest := (*pool)[:0:0]
	for _, c := range *pool {
		if rel.covers(c) {
			taken = append(taken, c)
		} else {
			rest = append(rest, c)
		}
	}
	*pool = rest
	return taken
}

// joinRelations joins two relations choosing among the federated
// strategies: merge into one shipped remote query, semijoin (IN-list
// pushdown), table relocation, or local hash join.
func (p *planner) joinRelations(l, r *relation, pool *[]expr.Expr) (*relation, error) {
	combined := l.schema.Concat(r.schema)

	// Strategy: merge same-source remote relations into one shipped query.
	if l.remote != nil && r.remote != nil &&
		strings.EqualFold(l.remote.source, r.remote.source) &&
		l.remote.adapter.Capabilities().Joins {
		merged := &relation{
			schema: combined,
			remote: &remoteRel{
				source:  l.remote.source,
				adapter: l.remote.adapter,
				tables:  append(append([]remoteTable{}, l.remote.tables...), r.remote.tables...),
				conjs:   append(append([]expr.Expr{}, l.remote.conjs...), r.remote.conjs...),
			},
			est: maxf(l.est, r.est),
		}
		for _, c := range takeCovered(merged, pool) {
			merged.remote.conjs = append(merged.remote.conjs, c)
		}
		return merged, nil
	}

	// Identify equi-join keys from the pool.
	var leftKeys, rightKeys []expr.Expr
	var residual []expr.Expr
	rest := (*pool)[:0:0]
	for _, c := range *pool {
		if lk, rk, ok := equiKeys(c, l, r); ok {
			leftKeys = append(leftKeys, lk)
			rightKeys = append(rightKeys, rk)
			continue
		}
		if coversSchema(combined, c) {
			residual = append(residual, c)
			continue
		}
		rest = append(rest, c)
	}
	*pool = rest

	// Strategy: semijoin — ship the small side's join-key values as an
	// IN-list filter into the unrealized (remote or extended) side.
	if len(leftKeys) > 0 {
		if err := p.maybeSemiJoin(l, r, leftKeys, rightKeys); err != nil {
			return nil, err
		}
		if err := p.maybeSemiJoin(r, l, rightKeys, leftKeys); err != nil {
			return nil, err
		}
	}

	// Strategy: broadcast hash join — the probe side is sharded on the
	// worker fleet and the realized build side is small enough to ship to
	// every worker. Matches stream back tagged with their probe sequence,
	// so the merged output is the serial hash join's exact row order.
	if l.dst != nil && len(leftKeys) > 0 {
		if err := p.realize(r); err != nil {
			return nil, err
		}
		out, err := p.distBroadcastJoin(l, r, leftKeys, rightKeys, residual, combined)
		if err != nil {
			return nil, err
		}
		if out != nil {
			return out, nil
		}
	}

	// Strategy: table relocation — when the extended side is joined with a
	// too-large local table, execute the join at the extended store (local
	// build side shipped there).
	relocated := false
	if r.ext != nil && l.local && l.est > float64(p.e.semiJoinThreshold()) {
		relocated = true
		p.e.Metrics.RelocationsChosen.Inc()
		p.plan.Note("chose relocation: build side est %.0f > threshold %d", l.est, p.e.semiJoinThreshold())
	}

	if err := p.realizeBoth(l, r); err != nil {
		return nil, err
	}

	out := &relation{schema: combined, local: true}
	var label string
	if len(leftKeys) > 0 {
		blk, brk, err := bindKeys(leftKeys, l.schema, rightKeys, r.schema)
		if err != nil {
			return nil, err
		}
		var res expr.Expr
		if len(residual) > 0 {
			if res, err = bindToSchema(expr.And(cloneAll(residual)...), combined); err != nil {
				return nil, err
			}
		}
		out.rows, err = exec.HashJoinParallel(p.ctx, p.e.pool, p.width, 0, p.stats,
			exec.JoinInner, joinSideOf(l), joinSideOf(r), blk, brk, res, r.schema.Len())
		if err != nil {
			return nil, err
		}
		label = "Hash Join (INNER) on " + keySQL(leftKeys, rightKeys)
	} else {
		var it exec.Iter
		var on expr.Expr
		if len(residual) > 0 {
			var err error
			on, err = bindToSchema(expr.And(cloneAll(residual)...), combined)
			if err != nil {
				return nil, err
			}
			residual = nil
			label = "Nested Loop Join on " + on.SQL()
		} else {
			label = "Nested Loop Join (cross)"
		}
		it = &exec.NestedLoopJoin{Kind: exec.JoinInner, Left: iterOf(l), Right: iterOf(r), On: on}
		rows, err := exec.Materialize(it)
		if err != nil {
			return nil, err
		}
		out.rows = rows.Data
	}
	if relocated {
		label = "Table Relocation → Extended Storage: " + label
	}
	out.est = float64(len(out.rows))
	out.node = node(fmt.Sprintf("%s (%d rows)", label, len(out.rows)), l.node, r.node)
	return out, nil
}

// realizeBoth realizes two join inputs, fetching independent unrealized
// (remote / extended) leaves concurrently through the worker pool. Errors
// prefer the left side, matching the serial left-then-right order.
func (p *planner) realizeBoth(l, r *relation) error {
	if l.local || r.local {
		// At most one side does real work — realizing serially avoids
		// goroutine churn for the common local-join case.
		if err := p.realize(l); err != nil {
			return err
		}
		return p.realize(r)
	}
	rels := [2]*relation{l, r}
	_, err := p.e.pool.Run(p.ctx, 2, p.width, func(_ context.Context, i int) error {
		return p.realize(rels[i])
	})
	return err
}

// maybeSemiJoin pushes small's distinct join-key values into big as an
// IN-list when big is unrealized and small is cheap (§3.1 Semijoin: "data
// is passed from SAP HANA to the extended storage where it is used for
// filtering … in an IN-clause").
func (p *planner) maybeSemiJoin(small, big *relation, smallKeys, bigKeys []expr.Expr) error {
	if big.remote == nil && big.ext == nil {
		return nil
	}
	threshold := float64(p.e.semiJoinThreshold())
	if small.est > threshold {
		p.plan.Note("rejected semijoin: build side est %.0f > threshold %.0f", small.est, threshold)
		return nil
	}
	if err := p.realize(small); err != nil {
		return err
	}
	if float64(small.rowCount()) > threshold {
		p.plan.Note("rejected semijoin: build side %d rows > threshold %.0f", small.rowCount(), threshold)
		return nil
	}
	for i := range smallKeys {
		key, err := bindToSchema(smallKeys[i], small.schema)
		if err != nil {
			return err
		}
		seen := map[value.Value]bool{}
		var list []expr.Expr
		for _, row := range small.rowsOf() {
			v, err := key.Eval(row)
			if err != nil {
				return err
			}
			if v.IsNull() || seen[v] {
				continue
			}
			seen[v] = true
			list = append(list, expr.Lit(v))
		}
		if len(list) == 0 {
			// Empty build side: the join is empty; an impossible filter
			// short-circuits the remote scan.
			list = append(list, expr.Lit(value.Null))
		}
		big.addConj(&expr.In{E: expr.Clone(bigKeys[i]), List: list})
		if big.remote != nil {
			p.e.Metrics.SemiJoinsChosen.Inc()
			p.plan.Note("chose semijoin: shipped %d key values to %s", len(list), big.remote.source)
		}
	}
	return nil
}

// equiKeys decomposes an equality conjunct into left/right key expressions
// when each side is covered by a different relation.
func equiKeys(c expr.Expr, l, r *relation) (lk, rk expr.Expr, ok bool) {
	b, isBin := c.(*expr.BinOp)
	if !isBin || b.Op != expr.OpEq {
		return nil, nil, false
	}
	if l.covers(b.L) && r.covers(b.R) && !isLiteral(b.L) && !isLiteral(b.R) {
		return b.L, b.R, true
	}
	if l.covers(b.R) && r.covers(b.L) && !isLiteral(b.L) && !isLiteral(b.R) {
		return b.R, b.L, true
	}
	return nil, nil, false
}

func isLiteral(e expr.Expr) bool {
	_, ok := e.(*expr.Literal)
	return ok
}

func coversSchema(s *value.Schema, e expr.Expr) bool {
	for _, c := range expr.Columns(e) {
		if s.Find(c) < 0 {
			return false
		}
	}
	return true
}

func bindKeys(lk []expr.Expr, ls *value.Schema, rk []expr.Expr, rs *value.Schema) ([]expr.Expr, []expr.Expr, error) {
	bl := make([]expr.Expr, len(lk))
	br := make([]expr.Expr, len(rk))
	for i := range lk {
		var err error
		if bl[i], err = bindToSchema(lk[i], ls); err != nil {
			return nil, nil, err
		}
		if br[i], err = bindToSchema(rk[i], rs); err != nil {
			return nil, nil, err
		}
	}
	return bl, br, nil
}

func keySQL(lk, rk []expr.Expr) string {
	parts := make([]string, len(lk))
	for i := range lk {
		parts[i] = lk[i].SQL() + " = " + rk[i].SQL()
	}
	return strings.Join(parts, " AND ")
}

// leftOuterJoin plans a structural LEFT OUTER JOIN with its ON condition.
func (p *planner) leftOuterJoin(l, r *relation, on expr.Expr) (*relation, error) {
	if err := p.realizeBoth(l, r); err != nil {
		return nil, err
	}
	combined := l.schema.Concat(r.schema)
	var leftKeys, rightKeys []expr.Expr
	var residual []expr.Expr
	for _, c := range expr.SplitConjuncts(on) {
		if lk, rk, ok := equiKeys(c, l, r); ok {
			leftKeys = append(leftKeys, lk)
			rightKeys = append(rightKeys, rk)
		} else {
			residual = append(residual, c)
		}
	}
	out := &relation{schema: combined, local: true}
	if len(leftKeys) > 0 {
		blk, brk, err := bindKeys(leftKeys, l.schema, rightKeys, r.schema)
		if err != nil {
			return nil, err
		}
		var res expr.Expr
		if len(residual) > 0 {
			if res, err = bindToSchema(expr.And(cloneAll(residual)...), combined); err != nil {
				return nil, err
			}
		}
		out.rows, err = exec.HashJoinParallel(p.ctx, p.e.pool, p.width, 0, p.stats,
			exec.JoinLeftOuter, joinSideOf(l), joinSideOf(r), blk, brk, res, r.schema.Len())
		if err != nil {
			return nil, err
		}
	} else {
		bon, err := bindToSchema(on, combined)
		if err != nil {
			return nil, err
		}
		it := exec.Iter(&exec.NestedLoopJoin{Kind: exec.JoinLeftOuter, Left: iterOf(l), Right: iterOf(r), On: bon})
		rows, err := exec.Materialize(it)
		if err != nil {
			return nil, err
		}
		out.rows = rows.Data
	}
	out.est = float64(len(out.rows))
	out.node = node(fmt.Sprintf("Hash Join (LEFT OUTER) (%d rows)", len(out.rows)), l.node, r.node)
	return out, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// blockRows plans and materializes a nested query block.
func (p *planner) blockRows(sel *sqlparse.SelectStmt) (*value.Rows, *planNode, error) {
	it, n, err := p.planQueryBlock(sel)
	if err != nil {
		return nil, nil, err
	}
	rows, err := exec.Materialize(it)
	if err != nil {
		return nil, nil, err
	}
	return rows, n, nil
}
