package engine

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hana/internal/faults"
	"hana/internal/value"
)

func TestSystemViewMTables(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE plain (a BIGINT)`)
	exec1(t, e, `CREATE TABLE arch (a BIGINT) USING EXTENDED STORAGE`)
	exec1(t, e, `INSERT INTO plain VALUES (1), (2)`)
	res := exec1(t, e, `SELECT table_name, placement, row_count FROM M_TABLES() ORDER BY table_name`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].String() != "arch" || res.Rows[0][1].String() != "EXTENDED" {
		t.Fatalf("arch row = %v", res.Rows[0])
	}
	if res.Rows[1][2].Int() != 2 {
		t.Fatalf("plain row_count = %v", res.Rows[1])
	}
}

func TestSystemViewTransactions(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	res := exec1(t, e, `SELECT val FROM M_TRANSACTIONS() WHERE metric = 'active_transactions'`)
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("active = %v", res.Rows[0][0])
	}
	_ = e.Rollback(tx)
}

func TestFederationStatsView(t *testing.T) {
	e, _ := newFederatedSetup(t)
	exec1(t, e, `SELECT c_name FROM V_CUSTOMER WHERE c_custkey = 1`)
	res := exec1(t, e, `SELECT val FROM M_FEDERATION_STATISTICS() WHERE metric = 'remote_queries'`)
	if res.Rows[0][0].Int() < 1 {
		t.Fatalf("remote_queries = %v", res.Rows[0][0])
	}
	res = exec1(t, e, `SELECT COUNT(*) FROM M_VIRTUAL_TABLES()`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("virtual tables = %v", res.Rows[0][0])
	}
	res = exec1(t, e, `SELECT capabilities FROM M_REMOTE_SOURCES() WHERE source_name = 'HIVE1'`)
	if !strings.Contains(res.Rows[0][0].String(), "CAP_JOINS") {
		t.Fatalf("caps = %v", res.Rows[0][0])
	}
}

func TestExecuteParams(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (a BIGINT, s VARCHAR(10))`)
	if _, err := e.ExecuteContext(context.Background(), `INSERT INTO t VALUES (?, ?)`,
		WithParams(value.NewInt(1), value.NewString("one"))); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecuteContext(context.Background(), `INSERT INTO t VALUES (?, ?)`,
		WithParams(value.NewInt(2), value.NewString("two"))); err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecuteContext(context.Background(), `SELECT s FROM t WHERE a = ?`, WithParams(value.NewInt(2)))
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].String() != "two" {
		t.Fatalf("param select: %v %v", res, err)
	}
	// Update and delete with parameters.
	if _, err := e.ExecuteContext(context.Background(), `UPDATE t SET s = ? WHERE a = ?`,
		WithParams(value.NewString("uno"), value.NewInt(1))); err != nil {
		t.Fatal(err)
	}
	res, _ = e.ExecuteContext(context.Background(), `SELECT s FROM t WHERE a = ?`, WithParams(value.NewInt(1)))
	if res.Rows[0][0].String() != "uno" {
		t.Fatal("param update")
	}
	if _, err := e.ExecuteContext(context.Background(), `DELETE FROM t WHERE a = ?`, WithParams(value.NewInt(1))); err != nil {
		t.Fatal(err)
	}
	res = exec1(t, e, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].Int() != 1 {
		t.Fatal("param delete")
	}
	// Missing parameter errors.
	if _, err := e.ExecuteContext(context.Background(), `SELECT * FROM t WHERE a = ?`); err == nil {
		t.Fatal("missing parameter must error")
	}
}

func TestResolveInDoubtThroughEngine(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE psa (id BIGINT) USING EXTENDED STORAGE`)
	// Inject a commit-phase failure on the extended-store participant.
	inj := faults.New(1)
	e.TxnManager().SetInjector(inj)
	inj.FailN("txn.commit.extstore:psa", 1)
	tx := e.Begin()
	if _, err := e.ExecuteContext(context.Background(), `INSERT INTO psa VALUES (1)`, WithTx(tx)); err != nil {
		t.Fatal(err)
	}
	if err := e.CommitTx(tx); err != nil {
		t.Fatalf("decision was commit: %v", err)
	}
	ind := e.TxnManager().InDoubt()
	if len(ind) != 1 {
		t.Fatalf("in-doubt = %v", ind)
	}
	// Manual resolution re-delivers the commit; the row becomes visible.
	if err := e.ResolveInDoubt(tx.TID, true); err != nil {
		t.Fatal(err)
	}
	res := exec1(t, e, `SELECT COUNT(*) FROM psa`)
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("post-resolve count = %v", res.Rows[0][0])
	}
	if err := e.ResolveInDoubt(999, true); err == nil {
		t.Fatal("unknown tid must error")
	}
}

// blockManifest squats a directory on the table's manifest.json.tmp path so
// the next diskstore manifest save (and hence ext.Delete) fails; the
// returned func unblocks it.
func blockManifest(t *testing.T, dir, table string) func() {
	t.Helper()
	block := filepath.Join(dir, table, "manifest.json.tmp")
	if err := os.Mkdir(block, 0o755); err != nil {
		t.Fatal(err)
	}
	return func() {
		if err := os.Remove(block); err != nil {
			t.Fatal(err)
		}
	}
}

func TestResolveRetryAfterCommitStorageFailure(t *testing.T) {
	dir := t.TempDir()
	e := New(Config{ExtendedStorageDir: dir})
	exec1(t, e, `CREATE TABLE psb (id BIGINT) USING EXTENDED STORAGE`)
	exec1(t, e, `INSERT INTO psb VALUES (1), (2)`)
	unblock := blockManifest(t, dir, "psb")
	tx := e.Begin()
	// Delete-only branch: Prepare does no disk IO, so the injected storage
	// failure strikes inside the participant's Commit tombstone loop.
	if _, err := e.ExecuteContext(context.Background(), `DELETE FROM psb WHERE id = 1`, WithTx(tx)); err != nil {
		t.Fatal(err)
	}
	if err := e.CommitTx(tx); err != nil {
		t.Fatalf("decision was commit: %v", err)
	}
	if ind := e.TxnManager().InDoubt(); len(ind) != 1 {
		t.Fatalf("in-doubt = %v", ind)
	}
	// While storage still fails, resolution must fail too and keep the
	// branch in-doubt — not "succeed" with the commit silently lost.
	if err := e.ResolveInDoubt(tx.TID, true); err == nil {
		t.Fatal("resolve must surface the storage error")
	}
	if ind := e.TxnManager().InDoubt(); len(ind) != 1 {
		t.Fatalf("branch must stay in-doubt after failed resolve, got %v", ind)
	}
	unblock()
	if err := e.ResolveInDoubt(tx.TID, true); err != nil {
		t.Fatal(err)
	}
	if ind := e.TxnManager().InDoubt(); len(ind) != 0 {
		t.Fatalf("branch still in-doubt after resolve: %v", ind)
	}
	res := exec1(t, e, `SELECT COUNT(*) FROM psb`)
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("post-resolve count = %v, want 1 (commit lost on retry)", res.Rows[0][0])
	}
}

func TestAbortBestEffortOnStorageFailure(t *testing.T) {
	dir := t.TempDir()
	e := New(Config{ExtendedStorageDir: dir})
	exec1(t, e, `CREATE TABLE psc (id BIGINT) USING EXTENDED STORAGE`)
	exec1(t, e, `INSERT INTO psc VALUES (1)`)
	// Park the branch in-doubt with durably prepared inserts.
	inj := faults.New(1)
	e.TxnManager().SetInjector(inj)
	inj.FailN("txn.commit.extstore:psc", 1)
	tx := e.Begin()
	if _, err := e.ExecuteContext(context.Background(), `INSERT INTO psc VALUES (2), (3)`, WithTx(tx)); err != nil {
		t.Fatal(err)
	}
	if err := e.CommitTx(tx); err != nil {
		t.Fatalf("decision was commit: %v", err)
	}
	unblock := blockManifest(t, dir, "psc")
	// Abort resolution cannot tombstone the prepared rows yet, but it must
	// still revert every version stamp so they can never become visible.
	if err := e.ResolveInDoubt(tx.TID, false); err == nil {
		t.Fatal("abort must surface the storage error")
	}
	res := exec1(t, e, `SELECT COUNT(*) FROM psc`)
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("prepared rows leaked into visibility: count = %v", res.Rows[0][0])
	}
	// The participant must keep the work order so the retry can actually
	// tombstone the prepared rows rather than no-op on a vanished entry.
	e.mu.RLock()
	part := e.tables["PSC"].part2pc
	e.mu.RUnlock()
	part.mu.Lock()
	_, retained := part.ops[tx.TID]
	part.mu.Unlock()
	if !retained {
		t.Fatal("failed abort must retain the participant's work order")
	}
	// The ops entry is retained on failure, so a retry completes the abort.
	unblock()
	if err := e.ResolveInDoubt(tx.TID, false); err != nil {
		t.Fatal(err)
	}
	if ind := e.TxnManager().InDoubt(); len(ind) != 0 {
		t.Fatalf("branch still in-doubt after abort: %v", ind)
	}
	res = exec1(t, e, `SELECT COUNT(*) FROM psc`)
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("post-abort count = %v, want 1", res.Rows[0][0])
	}
}

func TestGeoSpatialFunctions(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE stations (name VARCHAR(20), lat DOUBLE, lon DOUBLE)`)
	exec1(t, e, `INSERT INTO stations VALUES
		('walldorf',  49.306, 8.642),
		('brussels',  50.850, 4.352),
		('tokyo',     35.676, 139.650)`)
	// Distance Walldorf→Brussels ≈ 350 km.
	res := exec1(t, e, `SELECT name, ST_DISTANCE(lat, lon, 49.306, 8.642) d
		FROM stations WHERE ST_DISTANCE(lat, lon, 49.306, 8.642) < 1000000 ORDER BY d`)
	if len(res.Rows) != 2 {
		t.Fatalf("within 1000km = %v", res.Rows)
	}
	if res.Rows[0][0].String() != "walldorf" || res.Rows[1][0].String() != "brussels" {
		t.Fatalf("order = %v", res.Rows)
	}
	d := res.Rows[1][1].Float()
	if d < 300000 || d > 420000 {
		t.Fatalf("walldorf-brussels distance = %f m", d)
	}
	// Bounding box over central Europe excludes Tokyo.
	res = exec1(t, e, `SELECT COUNT(*) FROM stations WHERE ST_WITHIN_RECT(lat, lon, 45, 2, 55, 12)`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("bbox count = %v", res.Rows[0][0])
	}
}

func TestAlterTableAddColumn(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (a BIGINT)`)
	exec1(t, e, `INSERT INTO t VALUES (1)`)
	exec1(t, e, `ALTER TABLE t ADD (b VARCHAR(10), c DOUBLE)`)
	exec1(t, e, `INSERT INTO t VALUES (2, 'x', 1.5)`)
	res := exec1(t, e, `SELECT a, b, c FROM t ORDER BY a`)
	if !res.Rows[0][1].IsNull() || res.Rows[1][1].String() != "x" {
		t.Fatalf("altered rows = %v", res.Rows)
	}
	if _, err := e.ExecuteContext(context.Background(), `ALTER TABLE t ADD (a BIGINT)`); err == nil {
		t.Fatal("duplicate column must error")
	}
	if _, err := e.ExecuteContext(context.Background(), `ALTER TABLE t ADD (d BIGINT NOT NULL)`); err == nil {
		t.Fatal("NOT NULL add must error")
	}
}

func TestAlterExtendedTable(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE arch (id BIGINT) USING EXTENDED STORAGE`)
	exec1(t, e, `INSERT INTO arch VALUES (1), (2)`)
	exec1(t, e, `ALTER TABLE arch ADD (note VARCHAR(20))`)
	exec1(t, e, `INSERT INTO arch VALUES (3, 'new')`)
	res := exec1(t, e, `SELECT id, note FROM arch ORDER BY id`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !res.Rows[0][1].IsNull() || res.Rows[2][1].String() != "new" {
		t.Fatalf("extended alter = %v", res.Rows)
	}
	// Old rows remain updatable after the schema change.
	exec1(t, e, `UPDATE arch SET note = 'backfilled' WHERE id = 1`)
	res = exec1(t, e, `SELECT note FROM arch WHERE id = 1`)
	if res.Rows[0][0].String() != "backfilled" {
		t.Fatalf("post-alter update = %v", res.Rows)
	}
}

func TestAlterHybridTable(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE h (id BIGINT, d DATE)
		PARTITION BY RANGE (d) (
			PARTITION VALUES < DATE '2014-01-01' USING EXTENDED STORAGE,
			PARTITION OTHERS)`)
	exec1(t, e, `INSERT INTO h VALUES (1, DATE '2013-01-01'), (2, DATE '2015-01-01')`)
	exec1(t, e, `ALTER TABLE h ADD (tag VARCHAR(8))`)
	res := exec1(t, e, `SELECT COUNT(*) FROM h WHERE tag IS NULL`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("hybrid alter = %v", res.Rows)
	}
}
