package engine

import (
	"os"
	"testing"

	"hana/internal/txn"
	"hana/internal/value"
)

func TestReviewBulkLoadExtAfterSavepoint(t *testing.T) {
	dir, _ := os.MkdirTemp("", "rev1")
	defer os.RemoveAll(dir)
	e, err := Open(Config{DataDir: dir, WALSync: txn.SyncPolicy{Mode: txn.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(`CREATE TABLE k_ext (id BIGINT, v VARCHAR(20)) USING EXTENDED STORAGE`); err != nil {
		t.Fatal(err)
	}
	if err := e.BulkLoad("k_ext", []value.Row{
		{value.NewInt(1), value.NewString("a")},
		{value.NewInt(2), value.NewString("b")},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Savepoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.BulkLoad("k_ext", []value.Row{
		{value.NewInt(3), value.NewString("c")},
		{value.NewInt(4), value.NewString("d")},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(`SELECT id FROM k_ext`)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("before close: %d rows", len(res.Rows))
	e.Close()

	e2, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer e2.Close()
	res2, err := e2.Execute(`SELECT id FROM k_ext`)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("after reopen: %d rows (want 4)", len(res2.Rows))
	if len(res2.Rows) != 4 {
		t.Fatalf("lost rows: got %d, want 4", len(res2.Rows))
	}
}
