package engine

import (
	"context"
	"sync"
	"testing"
	"time"
)

// SetClock, SetRemoteCache and SetRemoteCacheValidity are documented as
// safe to call while queries are in flight. Run them concurrently with
// local and federated reads; `go test -race` flags any unguarded access
// to the shared config.
func TestConfigMutationConcurrentWithQueries(t *testing.T) {
	e, _, _, _ := newResilientSetup(t)

	const iters = 50
	var wg sync.WaitGroup
	start := make(chan struct{})

	// Mutators: clock, remote-cache toggle, validity.
	wg.Add(3)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < iters; i++ {
			fixed := time.Unix(int64(2000+i), 0)
			e.SetClock(func() time.Time { return fixed })
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < iters; i++ {
			e.SetRemoteCache(i%2 == 0)
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < iters; i++ {
			e.SetRemoteCacheValidity(time.Duration(i) * time.Millisecond)
			_ = e.Config()
		}
	}()

	// Readers: local scans (parallel executor), federated scans (retry /
	// breaker / cache paths read the mutable config).
	for r := 0; r < 2; r++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				if _, err := e.ExecuteContext(context.Background(), `SELECT COUNT(*) FROM loc`); err != nil {
					t.Errorf("local query: %v", err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				if _, err := e.ExecuteContext(context.Background(), `SELECT k, v FROM V_T`); err != nil {
					t.Errorf("remote query: %v", err)
					return
				}
			}
		}()
	}

	close(start)
	wg.Wait()
}
