package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"hana/internal/catalog"
	"hana/internal/diskstore"
	"hana/internal/dist"
	"hana/internal/exec"
	"hana/internal/faults"
	"hana/internal/fed"
	"hana/internal/obs"
	"hana/internal/sqlparse"
	"hana/internal/txn"
	"hana/internal/value"
)

// Config tunes the engine. The remote-cache parameters mirror §4.4:
// enable_remote_cache gates the feature globally and remote_cache_validity
// bounds the age of served materializations.
type Config struct {
	// ExtendedStorageDir is where the extended (IQ) store keeps its files;
	// empty uses an in-process temp directory created lazily on first use.
	ExtendedStorageDir string
	// EnableRemoteCache corresponds to the enable_remote_cache parameter;
	// remote materialization is off by default, as in the paper.
	EnableRemoteCache bool
	// RemoteCacheValidity corresponds to remote_cache_validity.
	RemoteCacheValidity time.Duration
	// SemiJoinThreshold is the maximum estimated row count of a local input
	// for which the optimizer picks the semijoin strategy against a remote
	// or extended relation.
	SemiJoinThreshold int64
	// WAL optionally persists transaction state for recovery.
	WAL *txn.Log
	// DataDir roots the engine's durable state when opened with Open: the
	// WAL (<dir>/wal.log), savepoints (<dir>/sp_<lsn>) and — unless
	// ExtendedStorageDir overrides it — the extended store (<dir>/ext).
	DataDir string
	// WALSync selects the WAL durability policy (fsync never / on commit
	// records / every write / every N writes). The zero value keeps the
	// log's current policy.
	WALSync txn.SyncPolicy
	// CheckpointEvery schedules background savepoints at this interval;
	// zero disables the checkpointer (savepoints still run on demand).
	CheckpointEvery time.Duration
	// Faults routes every remote boundary the engine owns (federated
	// queries, virtual functions, 2PC delivery) through a fault injector;
	// nil disables injection.
	Faults *faults.Injector
	// Retry is the template policy applied to remote boundaries; zero-value
	// fields take the faults package defaults.
	Retry faults.RetryPolicy
	// BreakerThreshold is the consecutive-failure count that opens a remote
	// source's circuit breaker (0 = faults default).
	BreakerThreshold int
	// BreakerCooldown is the open-state duration before a half-open probe
	// (0 = faults default).
	BreakerCooldown time.Duration
	// Parallelism sizes the engine's shared morsel worker pool (intra-query
	// parallelism); 0 uses GOMAXPROCS. The pool is shared by all concurrent
	// statements, so this bounds total executor goroutines, not per-query.
	Parallelism int
	// Obs overrides the engine's observability registry (metrics + system
	// views read from it); nil gives the engine a private registry so
	// instances never share counters.
	Obs *obs.Registry
	// TraceRingSize bounds how many finished query traces M_QUERY_TRACES
	// retains (0 = obs.DefaultTraceRingSize).
	TraceRingSize int
	// Topology enables distributed execution: with Shards > 1 the engine
	// runs a coordinator plus that many in-process worker nodes, mirrors
	// eligible hot tables onto them hash-sharded, and executes eligible
	// scans, aggregates and joins as shipped fragments. The zero value is
	// single-node. See WithShards / WithLocalOnly for per-statement control.
	Topology dist.Topology
}

// Metrics counts engine activity for the benchmark harness. It is a typed
// facade over the engine's observability registry: each field is a live
// counter handle (registry names "fed.<snake_case>"), so hot-path updates
// are lock-free atomic adds and monitoring reads never contend with query
// execution.
type Metrics struct {
	RemoteQueries      *obs.Counter
	RemoteCacheHits    *obs.Counter
	RemoteRowsFetched  *obs.Counter
	SemiJoinsChosen    *obs.Counter
	UnionPlansChosen   *obs.Counter
	RelocationsChosen  *obs.Counter
	RemoteScansChosen  *obs.Counter
	RemoteRetries      *obs.Counter
	RemoteFallbackHits *obs.Counter
	PlannerFallbacks   *obs.Counter
	InDoubtResolved    *obs.Counter

	// Distributed-execution counters live under "dist.*" registry names and
	// are deliberately not part of fedMetricNames: M_FEDERATION_STATISTICS
	// keeps its pinned row set.
	DistQueries   *obs.Counter // fragment fan-outs executed
	DistFragments *obs.Counter // worker fragment attempts (incl. failover)
	DistRetries   *obs.Counter // guarded-call retries against workers
	DistFailovers *obs.Counter // replica switch-overs after a worker failed
	DistRowsMerged *obs.Counter // rows streamed through the exchange merge
}

// fedMetricNames maps MetricsSnapshot fields to registry counter names, in
// the display order M_FEDERATION_STATISTICS uses.
var fedMetricNames = []string{
	"fed.remote_queries",
	"fed.remote_cache_hits",
	"fed.remote_rows_fetched",
	"fed.semijoins_chosen",
	"fed.union_plans_chosen",
	"fed.relocations_chosen",
	"fed.remote_scans_chosen",
	"fed.remote_retries",
	"fed.remote_fallback_hits",
	"fed.planner_fallbacks",
	"fed.in_doubt_resolved",
}

func newMetrics(r *obs.Registry) Metrics {
	return Metrics{
		RemoteQueries:      r.Counter("fed.remote_queries"),
		RemoteCacheHits:    r.Counter("fed.remote_cache_hits"),
		RemoteRowsFetched:  r.Counter("fed.remote_rows_fetched"),
		SemiJoinsChosen:    r.Counter("fed.semijoins_chosen"),
		UnionPlansChosen:   r.Counter("fed.union_plans_chosen"),
		RelocationsChosen:  r.Counter("fed.relocations_chosen"),
		RemoteScansChosen:  r.Counter("fed.remote_scans_chosen"),
		RemoteRetries:      r.Counter("fed.remote_retries"),
		RemoteFallbackHits: r.Counter("fed.remote_fallback_hits"),
		PlannerFallbacks:   r.Counter("fed.planner_fallbacks"),
		InDoubtResolved:    r.Counter("fed.in_doubt_resolved"),
		DistQueries:        r.Counter("dist.queries"),
		DistFragments:      r.Counter("dist.fragments"),
		DistRetries:        r.Counter("dist.retries"),
		DistFailovers:      r.Counter("dist.failovers"),
		DistRowsMerged:     r.Counter("dist.rows_merged"),
	}
}

// MetricsSnapshot is a point-in-time copy of the counters.
type MetricsSnapshot struct {
	RemoteQueries      int64
	RemoteCacheHits    int64
	RemoteRowsFetched  int64
	SemiJoinsChosen    int64
	UnionPlansChosen   int64
	RelocationsChosen  int64
	RemoteScansChosen  int64
	RemoteRetries      int64
	RemoteFallbackHits int64
	PlannerFallbacks   int64
	InDoubtResolved    int64
}

// Snapshot returns a copy of the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		RemoteQueries:      m.RemoteQueries.Load(),
		RemoteCacheHits:    m.RemoteCacheHits.Load(),
		RemoteRowsFetched:  m.RemoteRowsFetched.Load(),
		SemiJoinsChosen:    m.SemiJoinsChosen.Load(),
		UnionPlansChosen:   m.UnionPlansChosen.Load(),
		RelocationsChosen:  m.RelocationsChosen.Load(),
		RemoteScansChosen:  m.RemoteScansChosen.Load(),
		RemoteRetries:      m.RemoteRetries.Load(),
		RemoteFallbackHits: m.RemoteFallbackHits.Load(),
		PlannerFallbacks:   m.PlannerFallbacks.Load(),
		InDoubtResolved:    m.InDoubtResolved.Load(),
	}
}

// Engine is one database instance — the "SAP HANA core database engine" of
// the platform, orchestrating the in-memory stores, the extended storage
// and federated remote sources behind a single SQL interface.
type Engine struct {
	// spMu is the savepoint barrier (outermost lock): commit, rollback and
	// in-doubt resolution hold it shared for the whole decide-and-stamp
	// region, so a savepoint (exclusive) never exports version vectors with
	// a commit record at LSN ≤ S whose stamps are still in flight.
	spMu sync.RWMutex

	mu       sync.RWMutex
	cfg      Config
	cat      *catalog.Catalog
	mgr      *txn.Manager
	registry *fed.Registry
	adapters map[string]fed.Adapter // keyed by upper-case source name
	tables   map[string]*storedTable
	ext      *diskstore.Store
	extDir   string
	pool     *exec.Pool

	wal        *txn.Log // redo/commit log (nil = durability off)
	ownWAL     bool     // Open created the log; Close closes it
	dataDir    string   // savepoint root ("" = savepoints unavailable)
	recovering bool     // buildStoredTable: version state comes from recovery, not backfill
	recovery   RecoveryInfo

	ckptStop chan struct{} // closes to stop the background checkpointer
	ckptDone chan struct{}

	health *fed.Health
	caller fed.Caller // guarded-call seam for federated boundaries
	now    func() time.Time

	fbMu     sync.Mutex
	fallback map[string]*fallbackEntry

	obs    *obs.Registry     // observability registry (metrics)
	views  *obs.ViewRegistry // typed M_* system-view registry
	traces *obs.TraceRing    // last N finished query traces

	dist *distRuntime // scale-out runtime (nil = single-node)

	// Metrics is exported for benchmarks and monitoring.
	Metrics Metrics
}

// New creates an engine.
func New(cfg Config) *Engine {
	if cfg.SemiJoinThreshold == 0 {
		cfg.SemiJoinThreshold = 1024
	}
	if cfg.RemoteCacheValidity == 0 {
		cfg.RemoteCacheValidity = time.Hour
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		cfg:      cfg,
		cat:      catalog.New(),
		mgr:      txn.NewManager(cfg.WAL),
		registry: fed.NewRegistry(),
		adapters: map[string]fed.Adapter{},
		tables:   map[string]*storedTable{},
		pool:     exec.NewPool(cfg.Parallelism),
		health:   fed.NewHealth(cfg.BreakerThreshold, cfg.BreakerCooldown),
		now:      time.Now,
		fallback: map[string]*fallbackEntry{},
		obs:      reg,
		views:    obs.NewViewRegistry(),
		traces:   obs.NewTraceRing(cfg.TraceRingSize),
	}
	if cfg.WAL != nil {
		e.wal = cfg.WAL
		e.wal.SetInjector(cfg.Faults)
		e.wal.SetObs(reg)
		if cfg.WALSync != (txn.SyncPolicy{}) {
			e.wal.SetSyncPolicy(cfg.WALSync)
		}
	}
	e.Metrics = newMetrics(reg)
	e.caller = &fed.GuardedCall{
		Health:  e.health,
		Retry:   cfg.Retry,
		Faults:  cfg.Faults,
		OnRetry: func() { e.Metrics.RemoteRetries.Inc() },
	}
	// Mirror breaker state into the registry so monitoring pollers read
	// gauges instead of locking every breaker.
	e.health.SetObserver(func(st faults.BreakerStats) {
		pfx := "fed.breaker." + st.Name + "."
		reg.Gauge(pfx + "state").Set(int64(st.State))
		reg.Gauge(pfx + "consec_fails").Set(int64(st.ConsecFails))
		reg.Gauge(pfx + "total_fails").Set(st.TotalFails)
		reg.Gauge(pfx + "opens").Set(st.Opens)
		reg.Gauge(pfx + "retries").Set(st.Retries)
	})
	e.mgr.SetInjector(cfg.Faults)
	e.initDist()
	e.installSystemViews()
	return e
}

// Obs exposes the engine's observability registry.
func (e *Engine) Obs() *obs.Registry { return e.obs }

// Views exposes the typed system-view registry.
func (e *Engine) Views() *obs.ViewRegistry { return e.views }

// Traces exposes the retained query traces (M_QUERY_TRACES backing ring).
func (e *Engine) Traces() *obs.TraceRing { return e.traces }

// RegisterView publishes a typed system view: the schema is declared once
// in the definition, the view becomes queryable as name() and enumerable
// via M_VIEWS().
func (e *Engine) RegisterView(def obs.ViewDef) error { return e.views.Register(def) }

// Health exposes the per-remote-source circuit breakers.
func (e *Engine) Health() *fed.Health { return e.health }

// SetClock replaces the engine's clock (breaker cooldowns and fallback-
// cache validity) for deterministic tests.
func (e *Engine) SetClock(now func() time.Time) {
	e.mu.Lock()
	e.now = now
	e.mu.Unlock()
	e.health.SetClock(now)
}

func (e *Engine) clock() func() time.Time {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.now
}

// TableProvider supplies dynamic rows for a locally registered table
// function — the mechanism behind the "HANA join" stream integration
// (§3.2 use case 3): "a native HANA query may refer to the current state
// of an ESP window and use the content of this window as join partner".
type TableProvider func() (*value.Rows, error)

// RegisterTableProvider publishes a local table function; queries call it
// as name(). The provider's schema is only known at fill time, so the view
// appears as dynamic in M_VIEWS().
//
// Deprecated: use RegisterView with a declared schema.
func (e *Engine) RegisterTableProvider(name string, p TableProvider) {
	e.views.RegisterDynamic(name, p)
}

// UnregisterTableProvider removes a local table function.
//
// Deprecated: use Views().Unregister.
func (e *Engine) UnregisterTableProvider(name string) {
	e.views.Unregister(name)
}

// Catalog exposes the metadata registry.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// TxnManager exposes the transaction coordinator.
func (e *Engine) TxnManager() *txn.Manager { return e.mgr }

// Registry exposes the SDA adapter registry so adapter packages (Hive,
// Hadoop) can be plugged in.
func (e *Engine) Registry() *fed.Registry { return e.registry }

// Config returns a snapshot of the engine configuration. It takes the
// engine lock so concurrent Set* mutations are never observed half-written.
func (e *Engine) Config() Config {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cfg
}

// remoteCacheCfg reads the runtime-mutable remote-cache parameters under
// the engine lock (SetRemoteCache/SetRemoteCacheValidity may race with
// in-flight queries otherwise).
func (e *Engine) remoteCacheCfg() (bool, time.Duration) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cfg.EnableRemoteCache, e.cfg.RemoteCacheValidity
}

// semiJoinThreshold reads the optimizer threshold under the engine lock.
func (e *Engine) semiJoinThreshold() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cfg.SemiJoinThreshold
}

// SetRemoteCache toggles the enable_remote_cache parameter at runtime.
func (e *Engine) SetRemoteCache(enabled bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.EnableRemoteCache = enabled
}

// SetRemoteCacheValidity adjusts remote_cache_validity at runtime.
func (e *Engine) SetRemoteCacheValidity(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.RemoteCacheValidity = d
}

// ExtendedStore returns the extended storage, initializing it on first use.
func (e *Engine) ExtendedStore() (*diskstore.Store, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.extStoreLocked()
}

func (e *Engine) extStoreLocked() (*diskstore.Store, error) {
	if e.ext != nil {
		return e.ext, nil
	}
	dir := e.cfg.ExtendedStorageDir
	if dir == "" {
		dir = fmt.Sprintf("%s/hana-extstore-%d", tempDir(), time.Now().UnixNano())
	}
	s, err := diskstore.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("extended storage: %w", err)
	}
	e.ext = s
	e.extDir = dir
	return s, nil
}

// Result is the outcome of one statement.
type Result struct {
	Schema   *value.Schema
	Rows     []value.Row
	Affected int64
	Message  string
	Plan     string          // EXPLAIN output
	Stats    ExecStats       // executor statistics (queries)
	Trace    *obs.QueryTrace // EXPLAIN TRACE: the recorded span timeline
}

// Execute parses and runs one statement in an autonomous transaction
// (DDL/queries) — the common path for clients.
//
// Deprecated: use ExecuteContext.
func (e *Engine) Execute(sql string) (*Result, error) {
	return e.ExecuteContext(context.Background(), sql)
}

// ExecuteScript runs a semicolon-separated script, returning the last
// result.
//
// Deprecated: use ExecuteContext with WithScript.
func (e *Engine) ExecuteScript(sql string) (*Result, error) {
	return e.ExecuteContext(context.Background(), sql, WithScript())
}

// ExecuteStmt runs one parsed statement autonomously.
//
// Deprecated: use ExecuteStmtContext.
func (e *Engine) ExecuteStmt(st sqlparse.Statement) (*Result, error) {
	return e.ExecuteStmtContext(context.Background(), st)
}

// ExecuteStmtContext runs one parsed statement autonomously under the
// caller's context.
func (e *Engine) ExecuteStmtContext(ctx context.Context, st sqlparse.Statement) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return e.execStmt(ctx, st, 0)
}

func (e *Engine) execStmt(ctx context.Context, st sqlparse.Statement, width int) (*Result, error) {
	switch s := st.(type) {
	case *sqlparse.SelectStmt:
		return e.query(ctx, nil, s, width)
	case *sqlparse.ExplainStmt:
		return e.explain(ctx, s, width)
	case *sqlparse.CreateTableStmt:
		return e.createTable(s)
	case *sqlparse.AlterTableStmt:
		return e.alterTable(s)
	case *sqlparse.DropStmt:
		return e.drop(s)
	case *sqlparse.CreateRemoteSourceStmt:
		return e.createRemoteSource(s)
	case *sqlparse.CreateVirtualTableStmt:
		return e.createVirtualTable(s)
	case *sqlparse.CreateVirtualFunctionStmt:
		return e.createVirtualFunction(s)
	case *sqlparse.InsertStmt, *sqlparse.UpdateStmt, *sqlparse.DeleteStmt:
		tx := e.Begin()
		res, err := e.execStmtTx(ctx, tx, st, width)
		if err != nil {
			_ = e.Rollback(tx)
			return nil, err
		}
		if err := e.commitTxCtx(ctx, tx); err != nil {
			return nil, err
		}
		return res, nil
	}
	return nil, fmt.Errorf("unsupported statement %T", st)
}

// Begin starts an explicit transaction.
func (e *Engine) Begin() *txn.Txn { return e.mgr.Begin() }

// CommitTx commits the transaction, stamping MVCC versions after the
// two-phase commit succeeds.
//
// Deprecated: use CommitTxContext.
func (e *Engine) CommitTx(tx *txn.Txn) error {
	return e.CommitTxContext(context.Background(), tx)
}

// CommitTxContext commits the transaction under the caller's context, so
// 2PC phases land in the query trace and a canceled caller aborts the
// retry backoff of slow participants.
func (e *Engine) CommitTxContext(ctx context.Context, tx *txn.Txn) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return e.commitTxCtx(ctx, tx)
}

// commitTxCtx is CommitTx under the statement's trace context, so 2PC
// phases land in the query trace. The whole decide-and-stamp region runs
// under the shared savepoint barrier: a savepoint that observes the commit
// record also observes its version stamps.
func (e *Engine) commitTxCtx(ctx context.Context, tx *txn.Txn) error {
	e.spMu.RLock()
	defer e.spMu.RUnlock()
	cid, err := e.mgr.CommitCtx(ctx, tx)
	if err != nil {
		dropStamps(tx)
		return err
	}
	commitStamps(tx, cid)
	return nil
}

// Rollback aborts the transaction.
func (e *Engine) Rollback(tx *txn.Txn) error {
	e.spMu.RLock()
	defer e.spMu.RUnlock()
	dropStamps(tx)
	return e.mgr.Abort(tx)
}

// ExecuteTx parses and runs a statement inside an explicit transaction.
//
// Deprecated: use ExecuteContext with WithTx.
func (e *Engine) ExecuteTx(tx *txn.Txn, sql string) (*Result, error) {
	return e.ExecuteContext(context.Background(), sql, WithTx(tx))
}

// ExecuteStmtTx runs a parsed DML/SELECT statement inside a transaction.
//
// Deprecated: use ExecuteStmtTxContext.
func (e *Engine) ExecuteStmtTx(tx *txn.Txn, st sqlparse.Statement) (*Result, error) {
	return e.ExecuteStmtTxContext(context.Background(), tx, st)
}

// ExecuteStmtTxContext runs a parsed DML/SELECT statement inside a
// transaction under the caller's context.
func (e *Engine) ExecuteStmtTxContext(ctx context.Context, tx *txn.Txn, st sqlparse.Statement) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return e.execStmtTx(ctx, tx, st, 0)
}

func (e *Engine) execStmtTx(ctx context.Context, tx *txn.Txn, st sqlparse.Statement, width int) (*Result, error) {
	switch s := st.(type) {
	case *sqlparse.SelectStmt:
		return e.query(ctx, tx, s, width)
	case *sqlparse.InsertStmt:
		return e.insert(ctx, tx, s, width)
	case *sqlparse.UpdateStmt:
		return e.update(tx, s)
	case *sqlparse.DeleteStmt:
		return e.delete(tx, s)
	}
	return nil, fmt.Errorf("statement %T not allowed in a transaction", st)
}

// table resolves a runtime table.
func (e *Engine) table(name string) (*storedTable, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[strings.ToUpper(name)]
	if !ok {
		return nil, fmt.Errorf("table %s not found", name)
	}
	return t, nil
}

// adapter resolves the adapter instance behind a remote source name.
func (e *Engine) adapter(source string) (fed.Adapter, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	a, ok := e.adapters[strings.ToUpper(source)]
	if !ok {
		return nil, fmt.Errorf("remote source %s not connected", source)
	}
	return a, nil
}

func tempDir() string { return "/tmp" }
