package engine

import (
	"context"
	"strings"

	"hana/internal/exec"
	"hana/internal/expr"
	"hana/internal/sqlparse"
	"hana/internal/value"
)

// Vectorized table scans (ROADMAP item 2). scanPartsVec is the batch
// counterpart of scanParts: each morsel decodes its row range into a
// columnar batch straight from the store's compressed form (dictionary
// codes, bit-packed integers), applies MVCC visibility as a selection
// vector, and filters through the vectorized predicate kernels. Batches
// concatenate in (partition, row-id) order with ascending selections, so
// the rows they later materialize are byte-identical to the row scan at
// any worker width.

// scanPartsVec scans in-memory partitions as columnar batches. It mirrors
// scanParts' morselization, counters and error behavior; extended
// partitions are not supported (callers route them to the row path).
// needed marks the column ordinals the statement references (nil = all);
// unneeded columns of columnar partitions are pruned (decoded as NULL).
func (p *planner) scanPartsVec(parts []*partition, pred expr.Expr, needed []bool, schema *value.Schema) ([]*value.Batch, []int, error) {
	nm := 0
	for _, part := range parts {
		nm += (part.numRows() + exec.DefaultMorselSize - 1) / exec.DefaultMorselSize
	}
	ms := make([]scanMorsel, 0, nm)
	for pi, part := range parts {
		n := part.numRows()
		for lo := 0; lo < n; lo += exec.DefaultMorselSize {
			hi := lo + exec.DefaultMorselSize
			if hi > n {
				hi = n
			}
			ms = append(ms, scanMorsel{partIdx: pi, part: part, lo: lo, hi: hi})
		}
	}

	outs := make([]*value.Batch, len(ms))
	visible := make([]int, len(ms))
	if len(ms) > 0 {
		workers, err := p.e.pool.Run(p.ctx, len(ms), p.width, func(_ context.Context, i int) error {
			m := ms[i]
			var b *value.Batch
			switch {
			case m.part.hot != nil:
				b = m.part.hot.ReadBatch(m.lo, m.hi, needed)
				sel := make([]int32, 0, b.N)
				for id := m.lo; id < m.hi; id++ {
					if m.part.vers.Visible(id, p.snapshot, p.tid) {
						sel = append(sel, int32(id-m.lo))
					}
				}
				b.Sel = sel
			default: // row-store partition: box rows, then enter the batch path
				rows, err := m.part.visibleRowsRange(p.snapshot, p.tid, m.lo, m.hi)
				if err != nil {
					return err
				}
				b = value.BatchFromRows(schema, rows)
			}
			b.Schema = schema
			visible[i] = b.Len()
			p.stats.NoteScanned(b.Len())
			if pred != nil {
				if err := expr.SelectBatch(pred, b); err != nil {
					return err
				}
			}
			outs[i] = b
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		p.stats.NoteDispatch(len(ms), workers)
	}

	perPart := make([]int, len(parts))
	batches := make([]*value.Batch, 0, len(ms))
	for i, m := range ms {
		perPart[m.partIdx] += visible[i]
		if outs[i].Len() > 0 {
			batches = append(batches, outs[i])
		}
	}
	return batches, perPart, nil
}

// neededOrds resolves the statement-wide referenced-column name set against
// a table schema. nil means every column is needed.
func neededOrds(needed map[string]bool, schema *value.Schema) []bool {
	if needed == nil {
		return nil
	}
	out := make([]bool, len(schema.Cols))
	for i, c := range schema.Cols {
		out[i] = needed[strings.ToUpper(c.Name)]
	}
	return out
}

// collectNeeded walks a full statement — including every nested subquery —
// and returns the upper-cased unqualified column names it references.
// nil means "assume everything is needed": a star item, a CCL KEEP clause,
// or an expression node the walker does not recognize disables pruning,
// keeping late materialization strictly conservative.
func collectNeeded(sel *sqlparse.SelectStmt) map[string]bool {
	set := map[string]bool{}
	all := false
	var walkExpr func(e expr.Expr)
	var walkSel func(s *sqlparse.SelectStmt)
	var walkFrom func(te sqlparse.TableExpr)
	walkExpr = func(e expr.Expr) {
		expr.Walk(e, func(n expr.Expr) bool {
			switch sq := n.(type) {
			case *expr.ColRef:
				name := sq.Name
				if i := strings.LastIndexByte(name, '.'); i >= 0 {
					name = name[i+1:]
				}
				set[strings.ToUpper(name)] = true
			case *sqlparse.SubqueryExpr:
				walkSel(sq.Sel)
			case *sqlparse.ExistsExpr:
				walkSel(sq.Sel)
			case *sqlparse.InSubqueryExpr:
				walkExpr(sq.E)
				walkSel(sq.Sel)
			case *expr.Literal, *expr.Param, *expr.BinOp, *expr.UnOp, *expr.IsNull,
				*expr.Between, *expr.In, *expr.Like, *expr.Func, *expr.Cast, *expr.CaseWhen:
				// Known scalar nodes: expr.Walk descends into their children.
			default:
				all = true // unknown node: it may hide column references
			}
			return true
		})
	}
	walkFrom = func(te sqlparse.TableExpr) {
		switch t := te.(type) {
		case *sqlparse.JoinExpr:
			walkFrom(t.L)
			walkFrom(t.R)
			walkExpr(t.On)
		case *sqlparse.SubqueryTable:
			walkSel(t.Sel)
		case *sqlparse.TableFuncRef:
			for _, a := range t.Args {
				walkExpr(a)
			}
		}
	}
	walkSel = func(s *sqlparse.SelectStmt) {
		if s == nil {
			return
		}
		for _, it := range s.Items {
			if it.Star {
				all = true
				continue
			}
			walkExpr(it.Expr)
		}
		walkFrom(s.From)
		walkExpr(s.Where)
		for _, g := range s.GroupBy {
			walkExpr(g)
		}
		walkExpr(s.Having)
		for _, o := range s.OrderBy {
			walkExpr(o.Expr)
		}
		if s.Keep != nil {
			all = true
		}
	}
	walkSel(sel)
	if all {
		return nil
	}
	return set
}

// vectorizable reports whether every partition can be scanned through the
// batch path (in-memory only; extended partitions keep the row scan).
func vectorizable(parts []*partition) bool {
	for _, part := range parts {
		if part.ext != nil {
			return false
		}
	}
	return true
}
