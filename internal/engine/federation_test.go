package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"hana/internal/fed"
	"hana/internal/hdfs"
	"hana/internal/hive"
	"hana/internal/mapreduce"
	"hana/internal/value"
)

// newFederatedSetup builds an engine connected to an in-process Hive
// server holding CUSTOMER and ORDERS, with NATION local in the engine.
func newFederatedSetup(t *testing.T) (*Engine, *hive.Server) {
	t.Helper()
	cluster := hdfs.NewCluster(3, hdfs.WithBlockSize(64<<10), hdfs.WithReplication(2))
	ms := hive.NewMetastore(cluster, "/warehouse")
	mr := mapreduce.NewEngine(cluster, mapreduce.Config{MapSlots: 8, ReduceSlots: 4, DefaultReducers: 2})
	host := fmt.Sprintf("hive-%s", t.Name())
	srv := hive.NewServer(host, ms, mr)
	hive.RegisterServer(srv)
	t.Cleanup(func() { hive.UnregisterServer(host) })

	custSchema := value.NewSchema(
		value.Column{Name: "c_custkey", Kind: value.KindInt},
		value.Column{Name: "c_name", Kind: value.KindVarchar},
		value.Column{Name: "c_nationkey", Kind: value.KindInt},
		value.Column{Name: "c_mktsegment", Kind: value.KindVarchar},
	)
	ordSchema := value.NewSchema(
		value.Column{Name: "o_orderkey", Kind: value.KindInt},
		value.Column{Name: "o_custkey", Kind: value.KindInt},
		value.Column{Name: "o_total", Kind: value.KindDouble},
	)
	if _, err := ms.CreateTable("customer", custSchema, false); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.CreateTable("orders", ordSchema, false); err != nil {
		t.Fatal(err)
	}
	segs := []string{"HOUSEHOLD", "AUTOMOBILE"}
	var custs, ords []value.Row
	for i := 1; i <= 20; i++ {
		custs = append(custs, value.Row{
			value.NewInt(int64(i)), value.NewString(fmt.Sprintf("C%02d", i)),
			value.NewInt(int64(i % 3)), value.NewString(segs[i%2]),
		})
	}
	for i := 1; i <= 60; i++ {
		ords = append(ords, value.Row{
			value.NewInt(int64(i)), value.NewInt(int64(i%20 + 1)), value.NewDouble(float64(i)),
		})
	}
	_ = ms.LoadRows("customer", custs, 2)
	_ = ms.LoadRows("orders", ords, 2)

	e := New(Config{ExtendedStorageDir: t.TempDir(), EnableRemoteCache: true})
	e.Registry().Register("hiveodbc", hive.NewAdapterFactory())
	e.Registry().Register("hadoop", hive.NewHadoopAdapterFactory())
	exec1(t, e, fmt.Sprintf(`CREATE REMOTE SOURCE HIVE1 ADAPTER "hiveodbc"
		CONFIGURATION 'DSN=%s' WITH CREDENTIAL TYPE 'PASSWORD' USING 'user=dfuser;password=dfpass'`, host))
	exec1(t, e, `CREATE VIRTUAL TABLE V_CUSTOMER AT "HIVE1"."dflo"."dflo"."customer"`)
	exec1(t, e, `CREATE VIRTUAL TABLE V_ORDERS AT "HIVE1"."dflo"."dflo"."orders"`)
	exec1(t, e, `CREATE TABLE nation (n_nationkey BIGINT, n_name VARCHAR(25))`)
	exec1(t, e, `INSERT INTO nation VALUES (0,'ALGERIA'), (1,'ARGENTINA'), (2,'BRAZIL')`)
	return e, srv
}

func TestVirtualTableScan(t *testing.T) {
	e, _ := newFederatedSetup(t)
	res := exec1(t, e, `SELECT c_name FROM V_CUSTOMER WHERE c_mktsegment = 'HOUSEHOLD'`)
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !strings.Contains(res.Plan, "Remote Query [HIVE1]") {
		t.Fatalf("plan = %s", res.Plan)
	}
	m := e.Metrics.Snapshot()
	if m.RemoteQueries != 1 || m.RemoteRowsFetched != 10 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestWholeQueryShippedJoinAggregate(t *testing.T) {
	e, srv := newFederatedSetup(t)
	// All tables remote → the complete statement ships (§4.2).
	res := exec1(t, e, `SELECT c_mktsegment, COUNT(*) n, SUM(o_total) s
		FROM V_CUSTOMER JOIN V_ORDERS ON c_custkey = o_custkey
		GROUP BY c_mktsegment ORDER BY n DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !strings.Contains(res.Plan, "Remote Query") {
		t.Fatalf("whole query should ship:\n%s", res.Plan)
	}
	var total float64
	for _, r := range res.Rows {
		total += r[2].Float()
	}
	if total != 1830 { // sum 1..60
		t.Fatalf("sum = %f", total)
	}
	if srv.MR.JobsRun.Load() == 0 {
		t.Fatal("remote side must have run MR jobs")
	}
}

func TestMixedLocalRemoteJoinWithSemijoin(t *testing.T) {
	e, _ := newFederatedSetup(t)
	// NATION is local, customers remote. The local side after the filter is
	// tiny, so the optimizer ships its key as an IN-list (semijoin).
	res := exec1(t, e, `SELECT n_name, COUNT(*) FROM nation, V_CUSTOMER
		WHERE n_nationkey = c_nationkey AND n_name = 'BRAZIL' GROUP BY n_name`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "BRAZIL" {
		t.Fatalf("rows = %v", res.Rows)
	}
	m := e.Metrics.Snapshot()
	if m.SemiJoinsChosen == 0 {
		t.Fatalf("semijoin strategy not chosen; metrics %+v\nplan:\n%s", m, res.Plan)
	}
	// Only nationkey==2 customers cross the wire.
	if m.RemoteRowsFetched >= 20 {
		t.Fatalf("semijoin should reduce transfer, fetched %d", m.RemoteRowsFetched)
	}
}

func TestRemoteCacheHintEndToEnd(t *testing.T) {
	e, srv := newFederatedSetup(t)
	q := `SELECT c_name FROM V_CUSTOMER WHERE c_mktsegment = 'HOUSEHOLD' WITH HINT (USE_REMOTE_CACHE)`
	res1 := exec1(t, e, q)
	if strings.Contains(res1.Plan, "cache hit") {
		t.Fatal("first run cannot hit the cache")
	}
	jobsAfterCold := srv.MR.JobsRun.Load()
	res2 := exec1(t, e, q)
	if !strings.Contains(res2.Plan, "remote cache hit") {
		t.Fatalf("second run must hit cache:\n%s", res2.Plan)
	}
	if srv.MR.JobsRun.Load() != jobsAfterCold {
		t.Fatal("cache hit must not run MR jobs")
	}
	if len(res1.Rows) != len(res2.Rows) {
		t.Fatal("cache changed the result")
	}
	// Without the hint, no caching even though enable_remote_cache is on.
	res3 := exec1(t, e, `SELECT c_name FROM V_CUSTOMER WHERE c_mktsegment = 'AUTOMOBILE'`)
	_ = res3
	m := e.Metrics.Snapshot()
	if m.RemoteCacheHits != 1 {
		t.Fatalf("cache hits = %d", m.RemoteCacheHits)
	}
	// Disabled globally → hint is ignored (enable_remote_cache=false).
	e.SetRemoteCache(false)
	res4 := exec1(t, e, q)
	if strings.Contains(res4.Plan, "cache hit") {
		t.Fatal("disabled cache must not serve hits")
	}
}

func TestCacheOnlyWithPredicates(t *testing.T) {
	e, srv := newFederatedSetup(t)
	// No WHERE clause → "we only materialize queries with predicates".
	exec1(t, e, `SELECT c_name FROM V_CUSTOMER WITH HINT (USE_REMOTE_CACHE)`)
	if srv.MS.CacheSize() != 0 {
		t.Fatal("predicate-less query must not be materialized")
	}
	exec1(t, e, `SELECT c_name FROM V_CUSTOMER WHERE c_custkey > 0 WITH HINT (USE_REMOTE_CACHE)`)
	if srv.MS.CacheSize() != 1 {
		t.Fatal("predicated query must be materialized")
	}
}

func TestVirtualFunctionEndToEnd(t *testing.T) {
	e, srv := newFederatedSetup(t)
	_ = srv.MS.Cluster().WriteFile("/plant100/readings.log",
		[]byte("EQ1 95.5\nEQ2 30.0\nEQ1 99.1\nEQ3 91.0\n"))
	hive.RegisterDriver("com.customer.hadoop.SensorMRDriver", func(server *hive.Server, config map[string]string) (*mapreduce.Job, error) {
		return &mapreduce.Job{
			Name:   "sensor-extract",
			Inputs: []string{"/plant100/readings.log"},
			Output: "/tmp/vf-out",
			Map: func(line string, emit func(k, v string)) {
				f := strings.Fields(line)
				if len(f) == 2 {
					emit("", f[0]+"\t"+f[1])
				}
			},
		}, nil
	})
	exec1(t, e, fmt.Sprintf(`CREATE REMOTE SOURCE MRSERVER ADAPTER hadoop
		CONFIGURATION 'webhdfs=http://%s:50070;webhcatalog=http://%s:50111'
		WITH CREDENTIAL TYPE 'password' USING 'user=hadoop;password=hadooppw'`, srv.Host, srv.Host))
	exec1(t, e, `CREATE VIRTUAL FUNCTION PLANT100_SENSOR_RECORDS()
		RETURNS TABLE (EQUIP_ID VARCHAR(30), PRESSURE DOUBLE)
		CONFIGURATION 'hana.mapred.driver.class = com.customer.hadoop.SensorMRDriver'
		AT MRSERVER`)
	// §4.3's example query joining a local table with the function.
	exec1(t, e, `CREATE TABLE equipments (equip_id VARCHAR(30), last_service DATE)`)
	exec1(t, e, `INSERT INTO equipments VALUES ('EQ1', DATE '2014-05-01'), ('EQ3', DATE '2013-01-01')`)
	res := exec1(t, e, `SELECT A.EQUIP_ID, B.PRESSURE FROM EQUIPMENTS A
		JOIN PLANT100_SENSOR_RECORDS() B ON A.EQUIP_ID = B.EQUIP_ID
		WHERE B.PRESSURE > 90 ORDER BY B.PRESSURE DESC`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].Float() != 99.1 {
		t.Fatalf("order = %v", res.Rows)
	}
}

func TestDropRemoteSourceCascades(t *testing.T) {
	e, _ := newFederatedSetup(t)
	exec1(t, e, `DROP REMOTE SOURCE HIVE1`)
	if _, err := e.ExecuteContext(context.Background(), `SELECT * FROM V_CUSTOMER`); err == nil {
		t.Fatal("virtual table must be gone with its source")
	}
}

func TestCapabilityGatedShipping(t *testing.T) {
	e, _ := newFederatedSetup(t)
	// Register a crippled adapter: no joins. Joins between its virtual
	// tables must NOT merge into one remote query.
	e.Registry().Register("limited", func(cfg, cred map[string]string) (fed.Adapter, error) {
		a, err := hive.NewAdapterFactory()(map[string]string{"DSN": cfg["DSN"]}, nil)
		if err != nil {
			return nil, err
		}
		return &limitedAdapter{Adapter: a.(*hive.Adapter)}, nil
	})
	exec1(t, e, `CREATE REMOTE SOURCE LIM ADAPTER limited CONFIGURATION 'DSN=hive-TestCapabilityGatedShipping'`)
	exec1(t, e, `CREATE VIRTUAL TABLE L_CUST AT "LIM"."db"."customer"`)
	exec1(t, e, `CREATE VIRTUAL TABLE L_ORD AT "LIM"."db"."orders"`)
	res := exec1(t, e, `SELECT COUNT(*) FROM L_CUST JOIN L_ORD ON c_custkey = o_custkey`)
	if res.Rows[0][0].Int() != 60 {
		t.Fatalf("count = %v", res.Rows)
	}
	// Two separate remote scans, joined locally.
	m := e.Metrics.Snapshot()
	if m.RemoteQueries < 2 {
		t.Fatalf("expected per-table shipping, metrics %+v\nplan:\n%s", m, res.Plan)
	}
	if strings.Contains(res.Plan, "Remote Query [LIM]") {
		t.Fatalf("whole-query ship must be blocked by capabilities:\n%s", res.Plan)
	}
}

// limitedAdapter strips join capabilities from the Hive adapter.
type limitedAdapter struct{ *hive.Adapter }

func (l *limitedAdapter) Capabilities() fed.Capabilities {
	c := l.Adapter.Capabilities()
	c.Joins = false
	c.JoinsOuter = false
	c.GroupBy = false
	c.Subqueries = false
	return c
}
