package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hana/internal/catalog"
	"hana/internal/txn"
	"hana/internal/value"
)

// Crash recovery: Open (or Recover) rebuilds an engine from its data
// directory in four steps —
//
//  1. load the newest savepoint: physical rows, version vectors, catalog
//     metadata, coordinator watermarks, in-doubt branches;
//  2. replay the WAL suffix tolerantly (a torn tail is truncated at the
//     first bad record) and rebuild the coordinator from the control
//     records;
//  3. apply redo records in LSN order. Hot/row appends re-attempt the
//     original mutation — a deterministic failure (duplicate key) is
//     skipped exactly as it failed originally, keeping row ids aligned;
//     extended-storage records are resolved per (partition, row id) with
//     last-record-wins, then applied per transaction outcome;
//  4. finalize outcomes: commit stamps in CID order, abort stamps, then
//     abort every version stamp whose transaction is neither decided nor
//     in-doubt (the crash cut it short).
//
// Prepared-but-undecided branches are re-marked in-doubt with their
// participant identity and rebuilt work orders; recovery does NOT resolve
// them — callers drive ResolveAllInDoubt (or manual ResolveInDoubt), the
// same path used for in-flight in-doubt branches.

// RecoveryInfo summarizes what recovery did; exposed via the M_RECOVERY
// system view and the crash harness.
type RecoveryInfo struct {
	Recovered      bool   // an Open against existing state ran recovery
	SavepointLSN   uint64 // 0 = no savepoint found
	WALRecords     int    // records replayed from the WAL (suffix)
	DataRecords    int    // redo records among them
	SkippedRecords int    // redo records skipped (idempotent or superseded)
	TornTail       bool   // the WAL tail was torn and truncated
	TornReason     string
	Committed      int // distinct committed transactions replayed
	Aborted        int // distinct aborted transactions replayed
	Orphaned       int // undecided transactions aborted by recovery
	InDoubt        int // branches left in-doubt for resolution
	LastLSN        uint64
}

// Open opens a durable engine rooted at cfg.DataDir: the WAL lives at
// <dir>/wal.log, savepoints at <dir>/sp_<lsn>, and — unless
// ExtendedStorageDir overrides it — the extended store at <dir>/ext.
// A fresh directory yields an empty engine; an existing one is recovered
// from its savepoint and WAL.
func Open(cfg Config) (*Engine, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("engine: Open requires Config.DataDir")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	wal, err := txn.OpenLog(filepath.Join(cfg.DataDir, "wal.log"))
	if err != nil {
		return nil, err
	}
	cfg.WAL = wal
	if cfg.WALSync == (txn.SyncPolicy{}) {
		cfg.WALSync = txn.SyncPolicy{Mode: txn.SyncCommit}
	}
	if cfg.ExtendedStorageDir == "" {
		cfg.ExtendedStorageDir = filepath.Join(cfg.DataDir, "ext")
	}
	e := New(cfg)
	e.ownWAL = true
	e.dataDir = cfg.DataDir
	if err := e.recoverFrom(); err != nil {
		_ = wal.Close()
		return nil, err
	}
	// Workers hold no durable state: rebuild the shard mirrors from the
	// recovered tables before the engine serves queries.
	if err := e.distReseedAll(); err != nil {
		_ = wal.Close()
		return nil, err
	}
	e.startCheckpointer()
	return e, nil
}

// Recover opens the engine at dir, running crash recovery — shorthand for
// Open with Config.DataDir set.
func Recover(dir string, cfg Config) (*Engine, error) {
	cfg.DataDir = dir
	return Open(cfg)
}

// Close stops the background checkpointer and releases the WAL handle when
// the engine owns it (created by Open).
func (e *Engine) Close() error {
	e.stopCheckpointer()
	if e.ownWAL && e.wal != nil {
		return e.wal.Close()
	}
	return nil
}

// WAL exposes the engine's write-ahead log (nil when durability is off).
func (e *Engine) WAL() *txn.Log { return e.wal }

// DataDir returns the durable root ("" for in-memory engines).
func (e *Engine) DataDir() string { return e.dataDir }

// RecoveryInfo reports what the last Open/Recover did.
func (e *Engine) RecoveryInfo() RecoveryInfo { return e.recovery }

// walOutcomes is the per-transaction decision state extracted from the
// replayed control records. Last decision wins: a COMMIT followed by an
// ABORT (the decision record never became durable and the coordinator
// rolled back) counts as aborted.
type walOutcomes struct {
	committed map[uint64]uint64 // tid -> cid
	aborted   map[uint64]bool
	resolved  map[uint64]bool // RecResolve seen (phase 2 completed / branch resolved)
}

func computeOutcomes(recs []txn.Record) walOutcomes {
	out := walOutcomes{
		committed: map[uint64]uint64{},
		aborted:   map[uint64]bool{},
		resolved:  map[uint64]bool{},
	}
	for _, r := range recs {
		switch r.Type {
		case txn.RecCommit:
			out.committed[r.TID] = r.CID
			delete(out.aborted, r.TID)
		case txn.RecAbort:
			out.aborted[r.TID] = true
			delete(out.committed, r.TID)
		case txn.RecResolve:
			out.resolved[r.TID] = true
		}
	}
	return out
}

// extEvent is one extended-storage redo record held back for outcome-aware
// application (see the package comment on last-record-wins).
type extEvent struct {
	op    byte
	tid   uint64
	cid   uint64 // redoInsC only
	table string
	part  int
	rowID int
	row   value.Row
}

// recoverFrom rebuilds the engine from e.dataDir. Called once from Open,
// before the engine is shared with any other goroutine.
func (e *Engine) recoverFrom() error {
	e.recovering = true
	defer func() { e.recovering = false }()
	info := RecoveryInfo{}

	manifest, spDir, err := e.loadSavepointManifest()
	if err != nil {
		return err
	}
	if manifest != nil {
		info.SavepointLSN = manifest.LSN
		if err := e.restoreSavepointTables(manifest, spDir); err != nil {
			return err
		}
	}

	var recs []txn.Record
	stats, err := e.wal.ReplayVerified(func(r txn.Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		return fmt.Errorf("recovery: WAL replay: %w", err)
	}
	info.WALRecords = stats.Records
	info.TornTail = stats.TornTail
	info.TornReason = stats.Reason
	info.LastLSN = e.wal.LastLSN()
	info.Recovered = manifest != nil || stats.Records > 0

	// Rebuild the coordinator from the suffix's control records, then lift
	// its watermarks to the savepoint's.
	mgr := txn.RecoverRecords(e.wal, recs)
	mgr.SetInjector(e.cfg.Faults)
	if manifest != nil {
		mgr.RaiseWatermarks(manifest.NextTID, manifest.LastCID)
	}
	e.mgr = mgr

	out := computeOutcomes(recs)
	info.Committed = len(out.committed)
	info.Aborted = len(out.aborted)

	// Pass 1: data records in LSN order. Hot/row records apply immediately;
	// extended-storage records collect into events for outcome-aware
	// application below.
	var extEvents []extEvent
	for _, r := range recs {
		if r.Type != txn.RecData {
			continue
		}
		info.DataRecords++
		rec, err := decodeRedoNote(r.Note)
		if err != nil {
			return fmt.Errorf("recovery: LSN %d: %w", r.LSN, err)
		}
		rec.tid, rec.cid, rec.lsn = r.TID, r.CID, r.LSN
		switch rec.op {
		case redoDDLCreate, redoDDLDrop, redoDDLAlter:
			if err := e.applyRedoDDL(rec, &extEvents); err != nil {
				return fmt.Errorf("recovery: LSN %d: %w", r.LSN, err)
			}
		case redoIns, redoInsC, redoDel:
			if rec.op == redoInsC && e.isExtPart(rec.table, rec.part) {
				// Bulk loads into extended partitions replay through the
				// outcome-aware ext pass: the disk may already hold the row
				// (diskstore durability is independent of the savepoint), but
				// its MVCC stamp still needs re-applying.
				row, _, err := value.DecodeRow(rec.payload)
				if err != nil {
					return fmt.Errorf("recovery: LSN %d: %w", r.LSN, err)
				}
				extEvents = append(extEvents, extEvent{op: rec.op, tid: rec.tid, cid: rec.cid,
					table: rec.table, part: rec.part, rowID: rec.rowID, row: row})
				continue
			}
			skipped, err := e.applyRedoMem(rec)
			if err != nil {
				return fmt.Errorf("recovery: LSN %d: %w", r.LSN, err)
			}
			if skipped {
				info.SkippedRecords++
			}
		case redoExtIns, redoExtDel:
			ev := extEvent{op: rec.op, tid: rec.tid, cid: rec.cid, table: rec.table, part: rec.part, rowID: rec.rowID}
			if rec.op == redoExtIns {
				row, _, err := value.DecodeRow(rec.payload)
				if err != nil {
					return fmt.Errorf("recovery: LSN %d: %w", r.LSN, err)
				}
				ev.row = row
			}
			extEvents = append(extEvents, ev)
		}
	}

	// Pass 2: extended storage, outcome-aware.
	inDoubtSet := e.mgr.InDoubt()
	extInfo, err := e.applyExtEvents(extEvents, out, inDoubtSet)
	if err != nil {
		return err
	}
	info.SkippedRecords += extInfo

	// Pass 3: restore in-doubt branches carried by the savepoint, unless
	// the suffix shows them resolved.
	if manifest != nil {
		if err := e.restoreSavepointBranches(manifest, out); err != nil {
			return err
		}
	}

	// Pass 4: outcome stamps. Commit in CID order so later commits of the
	// same rows land last, then abort, then orphan-abort every version
	// stamp with no decision and no in-doubt branch.
	type commit struct{ tid, cid uint64 }
	commits := make([]commit, 0, len(out.committed))
	for tid, cid := range out.committed {
		commits = append(commits, commit{tid, cid})
	}
	sort.Slice(commits, func(i, j int) bool { return commits[i].cid < commits[j].cid })
	aborts := make([]uint64, 0, len(out.aborted))
	for tid := range out.aborted {
		aborts = append(aborts, tid)
	}
	sort.Slice(aborts, func(i, j int) bool { return aborts[i] < aborts[j] })

	e.forEachPartition(func(t *storedTable, p *partition) {
		for _, c := range commits {
			p.vers.CommitTID(c.tid, c.cid)
		}
		for _, tid := range aborts {
			p.vers.AbortTID(tid)
		}
	})
	inDoubtNow := e.mgr.InDoubt()
	orphans := map[uint64]bool{}
	e.forEachPartition(func(t *storedTable, p *partition) {
		for _, tid := range p.vers.PendingTIDs() {
			if _, ok := inDoubtNow[tid]; ok {
				continue
			}
			orphans[tid] = true
			p.vers.AbortTID(tid)
		}
	})
	info.Orphaned = len(orphans)
	info.InDoubt = len(inDoubtNow)
	e.recovery = info
	e.publishRecoveryMetrics()
	return nil
}

// forEachPartition visits every partition of every table in sorted table
// order.
func (e *Engine) forEachPartition(fn func(t *storedTable, p *partition)) {
	keys := make([]string, 0, len(e.tables))
	for k := range e.tables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t := e.tables[k]
		for _, p := range t.parts {
			fn(t, p)
		}
	}
}

// loadSavepointManifest reads CURRENT and the manifest it points to.
// A missing CURRENT means no savepoint; a CURRENT pointing at a missing or
// unreadable savepoint is an error (the state is there but unusable).
func (e *Engine) loadSavepointManifest() (*spManifest, string, error) {
	cur, err := os.ReadFile(filepath.Join(e.dataDir, "CURRENT"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", nil
		}
		return nil, "", err
	}
	dir := filepath.Join(e.dataDir, strings.TrimSpace(string(cur)))
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, "", fmt.Errorf("recovery: savepoint manifest: %w", err)
	}
	var m spManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, "", fmt.Errorf("recovery: savepoint manifest: %w", err)
	}
	return &m, dir, nil
}

// restoreSavepointTables rebuilds every table from the manifest: catalog
// entry, physical rows, version vectors.
func (e *Engine) restoreSavepointTables(m *spManifest, spDir string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range m.Tables {
		meta := &catalog.TableMeta{}
		if err := json.Unmarshal(st.Meta, meta); err != nil {
			return fmt.Errorf("recovery: table meta: %w", err)
		}
		t, err := e.buildStoredTable(meta)
		if err != nil {
			return err
		}
		if err := e.cat.AddTable(meta); err != nil {
			return err
		}
		e.tables[strings.ToUpper(meta.Name)] = t
		for _, sp := range st.Parts {
			if sp.Idx < 0 || sp.Idx >= len(t.parts) {
				return fmt.Errorf("recovery: table %s: bad partition index %d", meta.Name, sp.Idx)
			}
			p := t.parts[sp.Idx]
			if sp.File != "" {
				data, err := os.ReadFile(filepath.Join(spDir, sp.File))
				if err != nil {
					return fmt.Errorf("recovery: rows of %s: %w", meta.Name, err)
				}
				off := 0
				for i := 0; i < sp.Rows; i++ {
					row, n, err := value.DecodeRow(data[off:])
					if err != nil {
						return fmt.Errorf("recovery: rows of %s: row %d: %w", meta.Name, i, err)
					}
					off += n
					if p.hot != nil {
						_, err = p.hot.Append(row)
					} else {
						_, err = p.row.Append(row)
					}
					if err != nil {
						return fmt.Errorf("recovery: rows of %s: row %d: %w", meta.Name, i, err)
					}
				}
			}
			// The version snapshot is authoritative — it overwrites whatever
			// buildStoredTable seeded for reopened extended partitions.
			p.vers.Import(sp.Vers)
		}
	}
	return nil
}

// applyRedoDDL replays a DDL record. Creates and alters are idempotent
// against the savepoint; a drop also discards pending extended-storage
// events of the dropped incarnation.
func (e *Engine) applyRedoDDL(rec redoRec, extEvents *[]extEvent) error {
	key := strings.ToUpper(rec.table)
	switch rec.op {
	case redoDDLCreate:
		e.mu.Lock()
		defer e.mu.Unlock()
		if _, ok := e.tables[key]; ok {
			return nil // already present (savepoint covered it)
		}
		meta := &catalog.TableMeta{}
		if err := json.Unmarshal(rec.payload, meta); err != nil {
			return fmt.Errorf("create %s: %w", rec.table, err)
		}
		t, err := e.buildStoredTable(meta)
		if err != nil {
			return err
		}
		if err := e.cat.AddTable(meta); err != nil {
			return err
		}
		e.tables[key] = t
	case redoDDLDrop:
		e.mu.Lock()
		t, ok := e.tables[key]
		if ok {
			for i, p := range t.parts {
				if p.ext != nil {
					suffix := ""
					if t.meta.Placement == catalog.PlacementHybrid {
						suffix = fmt.Sprintf("$p%d", i)
					}
					_ = e.ext.DropTable(t.meta.Name + suffix)
				}
			}
			delete(e.tables, key)
			_ = e.cat.DropTable(rec.table)
		}
		e.mu.Unlock()
		kept := (*extEvents)[:0]
		for _, ev := range *extEvents {
			if !strings.EqualFold(ev.table, rec.table) {
				kept = append(kept, ev)
			}
		}
		*extEvents = kept
	case redoDDLAlter:
		t, err := e.table(rec.table)
		if err != nil {
			return nil // dropped later in the log; records for it are skipped anyway
		}
		var cols []value.Column
		if err := json.Unmarshal(rec.payload, &cols); err != nil {
			return fmt.Errorf("alter %s: %w", rec.table, err)
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		for _, col := range cols {
			if t.meta.Schema.Find(col.Name) >= 0 {
				continue
			}
			for _, p := range t.parts {
				switch {
				case p.hot != nil:
					p.hot.AddColumn(col)
				case p.ext != nil:
					if err := p.ext.AddColumn(col); err != nil {
						return err
					}
				}
			}
			t.meta.Schema.Cols = append(t.meta.Schema.Cols, col)
		}
	}
	return nil
}

// isExtPart reports whether a redo record targets an extended partition of
// a table that exists at this point of the replay.
func (e *Engine) isExtPart(table string, part int) bool {
	t, err := e.table(table)
	if err != nil || part < 0 || part >= len(t.parts) {
		return false
	}
	return t.parts[part].ext != nil
}

// applyRedoMem replays one hot/row-store record. Returns whether the record
// was skipped (already covered by the savepoint, or the original mutation
// failed deterministically and fails again here).
func (e *Engine) applyRedoMem(rec redoRec) (bool, error) {
	t, err := e.table(rec.table)
	if err != nil {
		return true, nil // table dropped later in the log
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if rec.part < 0 || rec.part >= len(t.parts) {
		return false, fmt.Errorf("table %s: bad partition %d", rec.table, rec.part)
	}
	p := t.parts[rec.part]
	switch rec.op {
	case redoIns, redoInsC:
		if rec.rowID < p.numRows() {
			return true, nil // savepoint already holds the row and its stamp
		}
		if rec.rowID > p.numRows() {
			return false, fmt.Errorf("table %s: redo gap: record row %d, store at %d", rec.table, rec.rowID, p.numRows())
		}
		row, _, err := value.DecodeRow(rec.payload)
		if err != nil {
			return false, err
		}
		var appendErr error
		if p.hot != nil {
			_, appendErr = p.hot.Append(row)
		} else if p.row != nil {
			_, appendErr = p.row.Append(row)
		} else {
			return false, fmt.Errorf("table %s: %s record against extended partition", rec.table, redoOpName(rec.op))
		}
		if appendErr != nil {
			// The original append failed the same deterministic way (e.g.
			// duplicate primary key) and consumed no row id.
			return true, nil
		}
		if rec.op == redoInsC {
			p.vers.InsertCommitted(rec.rowID, rec.cid)
		} else {
			p.vers.Insert(rec.rowID, rec.tid)
		}
	case redoDel:
		if err := p.vers.Delete(rec.rowID, rec.tid); err != nil {
			// The original delete hit the same conflict; skip.
			return true, nil
		}
	}
	return false, nil
}

// applyExtEvents applies the extended-storage redo events. Insert events
// resolve per (table, partition, rowID) with last-record-wins — an append
// that failed after its record was logged consumed no row id, so a later
// record at the same id supersedes it. Application depends on the owning
// transaction's outcome: committed rows are stamped (and re-appended if the
// disk lost them), in-doubt rows keep their TID stamps and rebuild the
// participant work order, everything else is tombstoned if durable.
// Returns how many events were skipped as superseded or inapplicable.
func (e *Engine) applyExtEvents(events []extEvent, out walOutcomes, inDoubt map[uint64]string) (int, error) {
	skipped := 0
	// Winner resolution for insert-type events.
	type key struct {
		table string
		part  int
		rowID int
	}
	winner := map[key]int{} // -> index in events
	for i, ev := range events {
		if ev.op == redoExtIns || ev.op == redoInsC {
			winner[key{strings.ToUpper(ev.table), ev.part, ev.rowID}] = i
		}
	}
	// Rebuilt work orders for in-doubt branches.
	insOps := map[uint64]map[*partition][]int{}
	delOps := map[uint64]map[*partition][]int{}
	branchTable := map[uint64]string{}
	touched := map[*partition]bool{}

	// Apply inserts in (table, part, rowID) order so disk appends extend
	// each partition sequentially; deletes follow in log order.
	insIdx := make([]int, 0, len(winner))
	for i, ev := range events {
		if ev.op != redoExtIns && ev.op != redoInsC {
			continue
		}
		if winner[key{strings.ToUpper(ev.table), ev.part, ev.rowID}] != i {
			skipped++ // superseded: the original append failed
			continue
		}
		insIdx = append(insIdx, i)
	}
	sort.Slice(insIdx, func(a, b int) bool {
		x, y := events[insIdx[a]], events[insIdx[b]]
		if x.table != y.table {
			return x.table < y.table
		}
		if x.part != y.part {
			return x.part < y.part
		}
		return x.rowID < y.rowID
	})
	resolvePart := func(ev extEvent) *partition {
		t, err := e.table(ev.table)
		if err != nil || ev.part < 0 || ev.part >= len(t.parts) {
			return nil
		}
		p := t.parts[ev.part]
		if p.ext == nil {
			return nil
		}
		return p
	}
	for _, i := range insIdx {
		ev := events[i]
		p := resolvePart(ev)
		if p == nil {
			skipped++
			continue
		}
		total := int(p.ext.TotalRows())
		cid, isCommitted := out.committed[ev.tid]
		_, isInDoubt := inDoubt[ev.tid]
		if ev.op == redoInsC {
			isCommitted, cid = true, ev.cid
			isInDoubt = false
		}
		switch {
		case isCommitted || isInDoubt:
			if ev.rowID > total {
				return skipped, fmt.Errorf("recovery: table %s: ext redo gap: record row %d, store at %d", ev.table, ev.rowID, total)
			}
			if ev.rowID == total {
				// The row never reached the disk (buffered append lost with
				// the crash); the record carries it.
				if err := p.ext.Append(ev.row); err != nil {
					return skipped, fmt.Errorf("recovery: table %s: re-append row %d: %w", ev.table, ev.rowID, err)
				}
				touched[p] = true
			}
			if ev.op == redoInsC {
				p.vers.InsertCommitted(ev.rowID, cid)
			} else {
				p.vers.Insert(ev.rowID, ev.tid)
				if isInDoubt {
					addOp(insOps, ev.tid, p, ev.rowID)
					branchTable[ev.tid] = ev.table
				}
			}
		default:
			// Aborted or undecided-unprepared: tombstone what is durable.
			if ev.rowID < total {
				_, _ = p.ext.Delete(int64(ev.rowID))
			} else {
				skipped++
			}
		}
	}
	for _, ev := range events {
		if ev.op != redoExtDel {
			continue
		}
		p := resolvePart(ev)
		if p == nil {
			skipped++
			continue
		}
		_, isCommitted := out.committed[ev.tid]
		_, isInDoubt := inDoubt[ev.tid]
		switch {
		case isCommitted:
			if ev.rowID < int(p.ext.TotalRows()) {
				if _, err := p.ext.Delete(int64(ev.rowID)); err != nil {
					return skipped, fmt.Errorf("recovery: table %s: tombstone row %d: %w", ev.table, ev.rowID, err)
				}
			}
			_ = p.vers.Delete(ev.rowID, ev.tid)
		case isInDoubt:
			_ = p.vers.Delete(ev.rowID, ev.tid)
			addOp(delOps, ev.tid, p, ev.rowID)
			branchTable[ev.tid] = ev.table
		default:
			skipped++
		}
	}
	for p := range touched {
		if err := p.ext.Flush(); err != nil {
			return skipped, fmt.Errorf("recovery: flush: %w", err)
		}
	}
	// Rebuild participant work orders and attach participant identities to
	// the branches the log only knows by TID.
	tids := make([]uint64, 0, len(branchTable))
	for tid := range branchTable {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		table := branchTable[tid]
		t, err := e.table(table)
		if err != nil {
			continue
		}
		t.part2pc.restoreOps(tid, insOps[tid], delOps[tid])
		e.mgr.MarkInDoubt(tid, t.part2pc.name, out.committed[tid])
	}
	return skipped, nil
}

func addOp(m map[uint64]map[*partition][]int, tid uint64, p *partition, id int) {
	if m[tid] == nil {
		m[tid] = map[*partition][]int{}
	}
	m[tid][p] = append(m[tid][p], id)
}

// restoreSavepointBranches re-registers in-doubt branches persisted by the
// savepoint, unless the WAL suffix shows them resolved since.
func (e *Engine) restoreSavepointBranches(m *spManifest, out walOutcomes) error {
	for _, b := range m.Branch {
		if out.resolved[b.TID] {
			continue
		}
		cid := b.CID
		if c, ok := out.committed[b.TID]; ok {
			cid = c
		}
		if b.Table != "" {
			t, err := e.table(b.Table)
			if err == nil {
				ins := map[*partition][]int{}
				del := map[*partition][]int{}
				for _, ei := range b.Ins {
					if ei.Part >= 0 && ei.Part < len(t.parts) {
						ins[t.parts[ei.Part]] = ei.IDs
					}
				}
				for _, ed := range b.Del {
					if ed.Part >= 0 && ed.Part < len(t.parts) {
						del[t.parts[ed.Part]] = ed.IDs
					}
				}
				t.part2pc.restoreOps(b.TID, ins, del)
			}
		}
		e.mgr.MarkInDoubt(b.TID, b.Participant, cid)
	}
	return nil
}

// publishRecoveryMetrics mirrors RecoveryInfo into the registry for the
// M_RECOVERY system view.
func (e *Engine) publishRecoveryMetrics() {
	g := func(name string, v int64) { e.obs.Gauge(name).Set(v) }
	b := int64(0)
	if e.recovery.Recovered {
		b = 1
	}
	g("recovery.recovered", b)
	g("recovery.savepoint_lsn", int64(e.recovery.SavepointLSN))
	g("recovery.wal_records", int64(e.recovery.WALRecords))
	g("recovery.data_records", int64(e.recovery.DataRecords))
	g("recovery.skipped_records", int64(e.recovery.SkippedRecords))
	g("recovery.committed", int64(e.recovery.Committed))
	g("recovery.aborted", int64(e.recovery.Aborted))
	g("recovery.orphaned", int64(e.recovery.Orphaned))
	g("recovery.in_doubt", int64(e.recovery.InDoubt))
	t := int64(0)
	if e.recovery.TornTail {
		t = 1
	}
	g("recovery.torn_tail", t)
}
