package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"hana/internal/faults"
	"hana/internal/fed"
	"hana/internal/obs"
	"hana/internal/txn"
	"hana/internal/value"
)

// This file is the engine's resilience layer for remote boundaries: every
// shipped federated query and virtual-function call goes through a
// per-source circuit breaker and a retry policy, with a validity-bounded
// fallback cache of the last good result (§4.4 reads remote caching as a
// freshness/availability trade the user opts into; here the same trade
// keeps queries answerable while a source is down). The in-doubt resolver
// at the bottom retries 2PC phase-2 delivery until the branches drain
// (§3.1 integrated recovery).

// fallbackEntry is the last good result of one shipped statement.
type fallbackEntry struct {
	rows    *value.Rows
	created time.Time
}

// remoteQuery ships one statement to a remote source through the shared
// guarded caller (breaker + retry + fault site + "remote" span). While the
// source's breaker is open — or once retries are exhausted on a transient
// failure — a still-valid fallback-cache entry for the same statement is
// served instead, marked FromFallback.
func (e *Engine) remoteQuery(ctx context.Context, source string, a fed.Adapter, sql string, opts fed.QueryOptions) (*fed.QueryResult, error) {
	target := strings.ToUpper(source)
	site := "fed.query." + strings.ToLower(source)
	var res *fed.QueryResult
	err := e.caller.Call(ctx, target, "query", site, func() error {
		r, err := a.Query(sql, opts)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		// Fatal adapter errors mean the source answered and said no; only
		// unavailability (open breaker, exhausted transient retries) falls
		// back to the last good result.
		if errors.Is(err, faults.ErrCircuitOpen) || faults.IsTransient(err) {
			if fb, ok := e.fallbackLookup(source, sql); ok {
				obs.SpanFrom(ctx).Note("remote source %s down, served from fallback cache", target)
				return fb, nil
			}
		}
		return nil, err
	}
	e.fallbackStore(source, sql, res)
	return res, nil
}

// remoteCall invokes a virtual function through the shared guarded caller.
// Remote jobs have no cached materialization to fall back to, so an open
// breaker or exhausted retries surface as the classified error.
func (e *Engine) remoteCall(ctx context.Context, source string, fa fed.FunctionAdapter, config map[string]string, schema *value.Schema) (*value.Rows, error) {
	target := strings.ToUpper(source)
	site := "fed.call." + strings.ToLower(source)
	var rows *value.Rows
	err := e.caller.Call(ctx, target, "call", site, func() error {
		r, err := fa.CallFunction(config, schema)
		if err != nil {
			return err
		}
		rows = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// fallbackKey reuses the §4.4 cache-key derivation: statement + source.
func fallbackKey(source, sql string) string {
	return fed.CacheKey(sql, nil, strings.ToUpper(source))
}

// fallbackStore keeps a deep copy of the last good result. Rows must be
// cloned because conformRows casts result values in place downstream.
func (e *Engine) fallbackStore(source, sql string, res *fed.QueryResult) {
	if res == nil || res.Rows == nil || res.FromFallback {
		return
	}
	e.fbMu.Lock()
	defer e.fbMu.Unlock()
	e.fallback[fallbackKey(source, sql)] = &fallbackEntry{
		rows:    cloneRows(res.Rows),
		created: e.clock()(),
	}
}

// fallbackLookup serves the last good result if it is still inside the
// remote_cache_validity window.
func (e *Engine) fallbackLookup(source, sql string) (*fed.QueryResult, bool) {
	e.fbMu.Lock()
	ent, ok := e.fallback[fallbackKey(source, sql)]
	e.fbMu.Unlock()
	if !ok {
		return nil, false
	}
	_, validity := e.remoteCacheCfg()
	if validity > 0 && e.clock()().Sub(ent.created) > validity {
		return nil, false
	}
	e.Metrics.RemoteFallbackHits.Inc()
	return &fed.QueryResult{Rows: cloneRows(ent.rows), FromFallback: true}, true
}

// cloneRows deep-copies a row set (schema shared, rows and values copied).
func cloneRows(rows *value.Rows) *value.Rows {
	out := value.NewRows(rows.Schema)
	for _, r := range rows.Data {
		c := make(value.Row, len(r))
		copy(c, r)
		out.Append(c)
	}
	return out
}

// findParticipant resolves a 2PC participant name to the stored table's
// extended-storage branch.
func (e *Engine) findParticipant(name string) txn.Participant {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, t := range e.tables {
		if t.part2pc != nil && t.part2pc.Name() == name {
			return t.part2pc
		}
	}
	return nil
}

// ResolveAllInDoubt is the engine-level in-doubt resolver: it re-delivers
// the logged decision for every in-doubt branch, retrying each with the
// configured backoff, until the branches drain or a branch stays
// unresolvable. The decision is commit when a commit ID was durably
// allocated, and presumed abort otherwise (branches surfaced by crash
// recovery before the decision point).
func (e *Engine) ResolveAllInDoubt() error {
	// Resolution stamps version vectors outside commitTxCtx, so it must sit
	// inside the savepoint barrier for the same reason commits do.
	e.spMu.RLock()
	defer e.spMu.RUnlock()
	var errs []error
	for _, b := range e.mgr.InDoubtInfo() {
		part := e.findParticipant(b.Participant)
		if part == nil {
			errs = append(errs, fmt.Errorf("transaction %d: participant %s not found", b.TID, b.Participant))
			continue
		}
		commit := b.CID != 0
		tid := b.TID
		err := e.cfg.Retry.Do(fmt.Sprintf("txn.resolve.%d", tid), func() error {
			return e.mgr.Resolve(tid, part, commit)
		})
		if err != nil {
			errs = append(errs, fmt.Errorf("transaction %d: %w", tid, err))
			continue
		}
		e.Metrics.InDoubtResolved.Inc()
	}
	return errors.Join(errs...)
}
