// Package engine implements the platform's core database engine: catalog-
// backed storage over the in-memory column/row stores and the disk-based
// extended storage, MVCC transactions with two-phase commit across engines,
// a cost-based planner with the paper's federated execution strategies
// (remote scan, semijoin, table relocation, union plan, and SDA query
// shipping with remote materialization), and hybrid-table aging.
package engine

import (
	"errors"
	"fmt"
	"sync"

	"hana/internal/catalog"
	"hana/internal/colstore"
	"hana/internal/diskstore"
	"hana/internal/rowstore"
	"hana/internal/txn"
	"hana/internal/value"
)

// partition is one physical fragment of a stored table. Exactly one of
// hot/row/ext is set.
type partition struct {
	meta catalog.PartitionMeta
	cold bool
	idx  int // position in storedTable.parts; stable across restarts

	hot  *colstore.Table  // in-memory columnar
	row  *rowstore.Table  // in-memory row store
	ext  *diskstore.Table // extended storage (disk)
	vers *txn.RowVersions
}

// numRows returns raw stored rows (MVCC-unaware).
func (p *partition) numRows() int {
	switch {
	case p.hot != nil:
		return p.hot.NumRows()
	case p.row != nil:
		return p.row.NumRows()
	case p.ext != nil:
		// Include tombstoned rows: versioning handles visibility, ids are stable.
		return int(p.ext.TotalRows())
	}
	return 0
}

// storedTable is the runtime object for one catalog table: one partition
// for plain tables, several for hybrid tables.
type storedTable struct {
	mu      sync.Mutex
	eng     *Engine // owning engine (redo logging); set by buildStoredTable
	meta    *catalog.TableMeta
	parts   []*partition
	part2pc *extParticipant // shared 2PC participant for the cold partitions
}

// hotParts / coldParts filter the partitions.
func (t *storedTable) coldParts() []*partition {
	var out []*partition
	for _, p := range t.parts {
		if p.cold {
			out = append(out, p)
		}
	}
	return out
}

// partitionFor routes a row to its partition by the range-partitioning
// column; tables without partitions route to the single partition.
func (t *storedTable) partitionFor(row value.Row) (*partition, error) {
	if len(t.parts) == 1 {
		return t.parts[0], nil
	}
	ord := t.meta.Schema.Find(t.meta.PartitionBy)
	if ord < 0 {
		return nil, fmt.Errorf("partition column %s not found", t.meta.PartitionBy)
	}
	v := row[ord]
	var others *partition
	for _, p := range t.parts {
		if p.meta.Others {
			others = p
			continue
		}
		if !v.IsNull() && value.Compare(v, p.meta.UpperBound) < 0 {
			return p, nil
		}
	}
	if others != nil {
		return others, nil
	}
	return nil, fmt.Errorf("no partition accepts value %v for column %s", v, t.meta.PartitionBy)
}

// insertRow appends a row to the right partition under the transaction.
// Hot/row partitions apply immediately with MVCC stamps and undo; cold
// partitions buffer in the 2PC participant until prepare.
func (t *storedTable) insertRow(tx *txn.Txn, row value.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, err := t.partitionFor(row)
	if err != nil {
		return err
	}
	switch {
	case p.hot != nil, p.row != nil:
		// Write-ahead: the redo record and the store append are atomic under
		// t.mu, so a savepoint either sees both or neither. An append that
		// fails after the record is logged (duplicate primary key) fails
		// identically during replay and is skipped there, keeping row ids
		// aligned.
		if err := t.eng.logRedoRow(tx.TID, redoIns, p.idx, p.numRows(), t.meta.Name, row); err != nil {
			return err
		}
		var id int
		if p.hot != nil {
			id, err = p.hot.Append(row)
		} else {
			id, err = p.row.Append(row)
		}
		if err != nil {
			return err
		}
		p.vers.Insert(id, tx.TID)
		tid := tx.TID
		vers := p.vers
		tx.OnAbort(func() { vers.AbortTID(tid) })
		t.stampOnCommit(tx, p)
		t.eng.distMirrorInsert(tx, t, id, row)
	case p.ext != nil:
		// Extended storage participates in the distributed transaction; the
		// redo record is logged at prepare time, when the row id is known.
		t.part2pc.bufferInsert(tx.TID, p, row)
		tx.Enlist(t.part2pc)
	}
	return nil
}

// deleteRow stamps a visible row deleted under the transaction. It takes
// t.mu so the redo record and the version stamp are one atomic unit with
// respect to a concurrent savepoint.
func (t *storedTable) deleteRow(tx *txn.Txn, p *partition, rowID int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p.ext != nil {
		if err := t.eng.logRedoRow(tx.TID, redoExtDel, p.idx, rowID, t.meta.Name, nil); err != nil {
			return err
		}
		if err := p.vers.Delete(rowID, tx.TID); err != nil {
			return err
		}
		t.part2pc.bufferDelete(tx.TID, p, rowID)
		tx.Enlist(t.part2pc)
		return nil
	}
	if err := t.eng.logRedoRow(tx.TID, redoDel, p.idx, rowID, t.meta.Name, nil); err != nil {
		return err
	}
	if err := p.vers.Delete(rowID, tx.TID); err != nil {
		return err
	}
	tid := tx.TID
	vers := p.vers
	tx.OnAbort(func() { vers.AbortTID(tid) })
	t.stampOnCommit(tx, p)
	t.eng.distMirrorDelete(tx, t, p, rowID)
	return nil
}

// stampOnCommit arranges for the partition's version stamps to be finalized
// at commit. The engine drives this through commit hooks collected on the
// transaction; hot-store stamping is idempotent per (tid, partition).
func (t *storedTable) stampOnCommit(tx *txn.Txn, p *partition) {
	// The engine-level commit wrapper calls CommitTID for every touched
	// partition; register it in the txn-scoped touch set. Keying by the
	// transaction pointer keeps independent engine instances separate.
	touchedMu.Lock()
	defer touchedMu.Unlock()
	set := touched[tx]
	if set == nil {
		set = map[*txn.RowVersions]bool{}
		touched[tx] = set
	}
	set[p.vers] = true
}

// touched tracks which version stores each in-flight transaction wrote, so
// the engine can stamp commit IDs on commit; cleaned on commit/abort.
var (
	touchedMu sync.Mutex
	touched   = map[*txn.Txn]map[*txn.RowVersions]bool{}
)

func commitStamps(tx *txn.Txn, cid uint64) {
	touchedMu.Lock()
	set := touched[tx]
	delete(touched, tx)
	touchedMu.Unlock()
	for v := range set {
		v.CommitTID(tx.TID, cid)
	}
}

func dropStamps(tx *txn.Txn) {
	touchedMu.Lock()
	delete(touched, tx)
	touchedMu.Unlock()
}

// extParticipant is the two-phase-commit participant wrapping a table's
// cold (extended storage) partitions: writes buffer until Prepare, become
// durable at Prepare, and are stamped visible at Commit — mirroring §3.1's
// integration of the IQ store into distributed HANA transactions.
type extParticipant struct {
	name  string
	eng   *Engine // redo logging at prepare time
	table string
	mu    sync.Mutex
	ops   map[uint64]*extOps
}

type extOps struct {
	inserts map[*partition][]value.Row
	deletes map[*partition][]int
	// prepared row ids per partition (for undo of inserts)
	preparedIDs map[*partition][]int
	prepared    bool
}

func newExtParticipant(e *Engine, table string) *extParticipant {
	return &extParticipant{name: "extstore:" + table, eng: e, table: table, ops: map[uint64]*extOps{}}
}

// Name implements txn.Participant.
func (x *extParticipant) Name() string { return x.name }

func (x *extParticipant) get(tid uint64) *extOps {
	o := x.ops[tid]
	if o == nil {
		o = &extOps{
			inserts:     map[*partition][]value.Row{},
			deletes:     map[*partition][]int{},
			preparedIDs: map[*partition][]int{},
		}
		x.ops[tid] = o
	}
	return o
}

func (x *extParticipant) bufferInsert(tid uint64, p *partition, row value.Row) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.get(tid).inserts[p] = append(x.get(tid).inserts[p], row.Clone())
}

func (x *extParticipant) bufferDelete(tid uint64, p *partition, rowID int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.get(tid).deletes[p] = append(x.get(tid).deletes[p], rowID)
}

// Prepare implements txn.Participant: writes become durable but remain
// invisible (insert stamps carry the TID).
func (x *extParticipant) Prepare(tid uint64) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	o, ok := x.ops[tid]
	if !ok {
		return nil // read-only branch
	}
	// Each partition's rows, version stamps and prepared-ID list are keyed
	// by that partition alone, so cross-partition iteration order cannot
	// change any observable state.
	//lint:ignore mapdeterminism per-partition state is independent; scans read t.parts in slice order
	for p, rows := range o.inserts {
		for _, r := range rows {
			id := p.numRows()
			// Write-ahead: the EXTINS record precedes the disk append. Replay
			// resolves the rare record-without-row case (append failed after
			// logging) by letting the last record per (partition, id) win.
			if err := x.eng.logRedoRow(tid, redoExtIns, p.idx, id, x.table, r); err != nil {
				return err
			}
			if err := p.ext.Append(r); err != nil {
				return err
			}
			p.vers.Insert(id, tid)
			o.preparedIDs[p] = append(o.preparedIDs[p], id)
		}
		if err := p.ext.Flush(); err != nil {
			return err
		}
	}
	o.prepared = true
	return nil
}

// restoreOps rebuilds a prepared branch's work order during crash recovery:
// inserted row ids (already durable on disk) and buffered delete tombstones,
// keyed by partition. A later Resolve replays commit (tombstones + commit
// stamps) or abort (insert tombstones + stamp reversal) against it.
func (x *extParticipant) restoreOps(tid uint64, ins, del map[*partition][]int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	o := x.get(tid)
	// Each key's copied slice lands under that key alone — no cross-key
	// state, so iteration order is unobservable.
	//lint:ignore mapdeterminism per-partition slices are keyed independently
	for p, ids := range ins {
		o.preparedIDs[p] = append([]int(nil), ids...)
		if _, ok := o.inserts[p]; !ok {
			o.inserts[p] = nil // Commit/Abort iterate insert keys for stamping
		}
	}
	//lint:ignore mapdeterminism per-partition slices are keyed independently
	for p, ids := range del {
		o.deletes[p] = append([]int(nil), ids...)
	}
	o.prepared = true
}

// exportOps snapshots a branch's prepared ids and pending deletes per
// partition index — the savepoint representation of an in-doubt branch.
func (x *extParticipant) exportOps(tid uint64) (ins, del map[int][]int, ok bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	o, found := x.ops[tid]
	if !found {
		return nil, nil, false
	}
	ins = map[int][]int{}
	del = map[int][]int{}
	// Map-to-map copy keyed by partition index: order cannot surface.
	//lint:ignore mapdeterminism per-partition slices are keyed independently
	for p, ids := range o.preparedIDs {
		ins[p.idx] = append([]int(nil), ids...)
	}
	//lint:ignore mapdeterminism per-partition slices are keyed independently
	for p, ids := range o.deletes {
		del[p.idx] = append([]int(nil), ids...)
	}
	return ins, del, true
}

// Commit implements txn.Participant: stamps versions and persists delete
// tombstones. The ops entry is removed only after the whole work order
// succeeds: diskstore.Delete skips already-applied tombstones and CommitTID
// re-stamps harmlessly, so when a manifest-save error leaves the branch
// in-doubt, a coordinator Resolve retry completes the commit instead of
// no-opping on a vanished entry.
func (x *extParticipant) Commit(tid, cid uint64) error {
	x.mu.Lock()
	o, ok := x.ops[tid]
	x.mu.Unlock()
	if !ok {
		return nil
	}
	parts := map[*partition]bool{}
	for p := range o.inserts {
		parts[p] = true
	}
	for p, ids := range o.deletes {
		parts[p] = true
		for _, id := range ids {
			if _, err := p.ext.Delete(int64(id)); err != nil {
				return err
			}
		}
	}
	for p := range parts {
		p.vers.CommitTID(tid, cid)
	}
	x.mu.Lock()
	delete(x.ops, tid)
	x.mu.Unlock()
	return nil
}

// Abort implements txn.Participant: tombstones prepared inserts and clears
// buffered state. The coordinator drops abort errors and this participant
// has no recovery pass, so a tombstone failure must not cut the loop short:
// every partition still gets its version stamps reverted, errors are
// collected, and the ops entry is retained on failure so a later Abort
// retry re-attempts the (idempotent) deletes.
func (x *extParticipant) Abort(tid uint64) error {
	x.mu.Lock()
	o, ok := x.ops[tid]
	x.mu.Unlock()
	if !ok {
		return nil
	}
	var err error
	for p, ids := range o.preparedIDs {
		for _, id := range ids {
			if _, e := p.ext.Delete(int64(id)); e != nil {
				err = errors.Join(err, e)
			}
		}
		p.vers.AbortTID(tid)
	}
	for p := range o.deletes {
		p.vers.AbortTID(tid)
	}
	if err != nil {
		return err
	}
	x.mu.Lock()
	delete(x.ops, tid)
	x.mu.Unlock()
	return nil
}

// slabRows is how many rows' worth of values a rowSlab allocates per refill.
const slabRows = 256

// rowSlab clones rows into chunked backing arrays: one allocation per
// slabRows rows instead of one Row allocation per visible row. The carved
// slices never overlap, so the clones are as shareable as individual ones.
type rowSlab struct {
	buf []value.Value
}

func (s *rowSlab) clone(row value.Row) value.Row {
	w := len(row)
	if len(s.buf) < w {
		s.buf = make([]value.Value, slabRows*w)
	}
	dst := s.buf[:w:w]
	s.buf = s.buf[w:]
	copy(dst, row)
	return value.Row(dst)
}

// visibleRowsRange materializes the visible rows of an in-memory partition
// whose ids fall in [lo, hi) — the unit one scan morsel covers. Extended
// partitions don't support id ranges; callers hand them to visibleRows as
// a whole. The returned rows are clones, safe to share across goroutines.
func (p *partition) visibleRowsRange(snapshot, tid uint64, lo, hi int) ([]value.Row, error) {
	out := make([]value.Row, 0, hi-lo)
	var slab rowSlab
	collect := func(id int, row value.Row) bool {
		if p.vers.Visible(id, snapshot, tid) {
			out = append(out, slab.clone(row))
		}
		return true
	}
	switch {
	case p.hot != nil:
		p.hot.ScanRange(lo, hi, collect)
	case p.row != nil:
		p.row.ScanRange(lo, hi, collect)
	case p.ext != nil:
		return nil, fmt.Errorf("range scan unsupported on extended partition")
	}
	return out, nil
}

// visibleRows materializes the rows of a partition visible at the snapshot,
// optionally restricted by pushdown ranges (extended partitions use zone
// maps). The returned rows are clones.
func (p *partition) visibleRows(snapshot, tid uint64, ranges map[int]diskstore.Range) ([]value.Row, error) {
	out := make([]value.Row, 0, p.numRows())
	var slab rowSlab
	switch {
	case p.hot != nil:
		p.hot.Scan(func(id int, row value.Row) bool {
			if p.vers.Visible(id, snapshot, tid) {
				out = append(out, slab.clone(row))
			}
			return true
		})
	case p.row != nil:
		p.row.Scan(func(id int, row value.Row) bool {
			if p.vers.Visible(id, snapshot, tid) {
				out = append(out, slab.clone(row))
			}
			return true
		})
	case p.ext != nil:
		err := p.ext.Scan(nil, ranges, func(id int64, row value.Row) bool {
			if p.vers.Visible(int(id), snapshot, tid) {
				out = append(out, slab.clone(row))
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
