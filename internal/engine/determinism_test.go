package engine

import (
	"fmt"
	"strings"
	"testing"
)

// These tests pin down what the mapdeterminism analyzer enforces
// statically: with fixed inputs, plan text and catalog listings must be
// byte-identical run after run, never a function of Go's randomized map
// iteration order. Each check repeats 50 times — enough iterations that a
// map-order dependence (which reshuffles per range statement) would
// virtually always surface.

const determinismRuns = 50

// TestFederatedPlanDeterministic runs the planner's full federated
// strategy enumeration (remote ship vs semijoin vs relocation) on the same
// query 50 times and requires the chosen plan text to be stable.
func TestFederatedPlanDeterministic(t *testing.T) {
	e, _ := newFederatedSetup(t)
	q := `SELECT n_name, COUNT(*) FROM nation, V_CUSTOMER
		WHERE n_nationkey = c_nationkey AND n_name = 'BRAZIL' GROUP BY n_name`
	first := exec1(t, e, q)
	if first.Plan == "" {
		t.Fatal("no plan text")
	}
	for i := 1; i < determinismRuns; i++ {
		res := exec1(t, e, q)
		if res.Plan != first.Plan {
			t.Fatalf("plan changed on run %d:\nfirst:\n%s\nnow:\n%s", i, first.Plan, res.Plan)
		}
		if fmt.Sprint(res.Rows) != fmt.Sprint(first.Rows) {
			t.Fatalf("rows changed on run %d: %v vs %v", i, res.Rows, first.Rows)
		}
	}
}

// TestRemoteShipPlanDeterministic does the same for the whole-query
// shipping path, whose remote SQL text is assembled by the fed package.
func TestRemoteShipPlanDeterministic(t *testing.T) {
	e, _ := newFederatedSetup(t)
	q := `SELECT c_name FROM V_CUSTOMER WHERE c_mktsegment = 'HOUSEHOLD'`
	first := exec1(t, e, q)
	if !strings.Contains(first.Plan, "Remote Query [HIVE1]") {
		t.Fatalf("expected remote ship, plan:\n%s", first.Plan)
	}
	for i := 1; i < determinismRuns; i++ {
		if res := exec1(t, e, q); res.Plan != first.Plan {
			t.Fatalf("plan changed on run %d:\nfirst:\n%s\nnow:\n%s", i, first.Plan, res.Plan)
		}
	}
}

// TestSystemListingsDeterministic creates tables in deliberately unsorted
// name order and requires M_TABLES() / M_REMOTE_SOURCES() — without any
// ORDER BY — to return an identical, name-sorted listing on every run.
func TestSystemListingsDeterministic(t *testing.T) {
	e, _ := newFederatedSetup(t)
	for _, ddl := range []string{
		`CREATE TABLE zeta (a BIGINT)`,
		`CREATE TABLE alpha (a BIGINT)`,
		`CREATE TABLE midway (a BIGINT)`,
	} {
		exec1(t, e, ddl)
	}
	firstTables := exec1(t, e, `SELECT table_name, placement, row_count FROM M_TABLES()`)
	var names []string
	for _, r := range firstTables.Rows {
		names = append(names, r[0].String())
	}
	if !isSorted(names) {
		t.Fatalf("M_TABLES not name-sorted: %v", names)
	}
	firstSources := exec1(t, e, `SELECT source_name, adapter, capabilities FROM M_REMOTE_SOURCES()`)
	if len(firstSources.Rows) == 0 {
		t.Fatal("no remote sources listed")
	}
	for i := 1; i < determinismRuns; i++ {
		if res := exec1(t, e, `SELECT table_name, placement, row_count FROM M_TABLES()`); fmt.Sprint(res.Rows) != fmt.Sprint(firstTables.Rows) {
			t.Fatalf("M_TABLES changed on run %d:\n%v\nvs\n%v", i, res.Rows, firstTables.Rows)
		}
		if res := exec1(t, e, `SELECT source_name, adapter, capabilities FROM M_REMOTE_SOURCES()`); fmt.Sprint(res.Rows) != fmt.Sprint(firstSources.Rows) {
			t.Fatalf("M_REMOTE_SOURCES changed on run %d:\n%v\nvs\n%v", i, res.Rows, firstSources.Rows)
		}
	}
}

func isSorted(ss []string) bool {
	for i := 1; i < len(ss); i++ {
		if ss[i-1] > ss[i] {
			return false
		}
	}
	return true
}
