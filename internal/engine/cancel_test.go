package engine

import (
	"context"
	"errors"
	"testing"
)

// A cancelled context must surface from ExecuteContext instead of the
// query running to completion: the pool workers check ctx between
// morsels and Run reports ctx.Err().
func TestExecuteContextCancelled(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (a BIGINT)`)
	exec1(t, e, `INSERT INTO t VALUES (1), (2), (3)`)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecuteContext(ctx, `SELECT COUNT(*) FROM t`); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Federated leaves honour the same context.
	if _, err := e.ExecuteContext(ctx, `SELECT * FROM M_TABLES()`); !errors.Is(err, context.Canceled) {
		t.Fatalf("table function: err = %v, want context.Canceled", err)
	}
	// The engine recovers: the same query succeeds with a live context.
	res, err := e.ExecuteContext(context.Background(), `SELECT COUNT(*) FROM t`)
	if err != nil || res.Rows[0][0].Int() != 3 {
		t.Fatalf("after cancel: %v %v", res, err)
	}
}
