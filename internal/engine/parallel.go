package engine

import (
	"context"

	"hana/internal/diskstore"
	"hana/internal/exec"
	"hana/internal/expr"
	"hana/internal/value"
)

// scanMorsel is one unit of table-scan work: a row-id range of an in-memory
// partition, or a whole extended-storage partition (the diskstore scan is
// its own unit; zone-map ranges prune inside it).
type scanMorsel struct {
	partIdx int
	part    *partition
	lo, hi  int
	whole   bool
}

// scanParts scans the given partitions as morsels on the engine's worker
// pool, applying pred inside each morsel, and returns the kept rows
// concatenated in (partition, row-id) order — byte-identical to a serial
// scan — plus the per-partition visible (pre-filter) row counts. ranges is
// the zone-map pushdown forwarded to extended partitions only.
func (p *planner) scanParts(parts []*partition, ranges map[int]diskstore.Range, pred expr.Expr) ([]value.Row, []int, error) {
	nm := 0
	for _, part := range parts {
		if part.ext != nil {
			nm++
			continue
		}
		nm += (part.numRows() + exec.DefaultMorselSize - 1) / exec.DefaultMorselSize
	}
	ms := make([]scanMorsel, 0, nm)
	for pi, part := range parts {
		if part.ext != nil {
			ms = append(ms, scanMorsel{partIdx: pi, part: part, whole: true})
			continue
		}
		n := part.numRows()
		for lo := 0; lo < n; lo += exec.DefaultMorselSize {
			hi := lo + exec.DefaultMorselSize
			if hi > n {
				hi = n
			}
			ms = append(ms, scanMorsel{partIdx: pi, part: part, lo: lo, hi: hi})
		}
	}

	outs := make([][]value.Row, len(ms))
	visible := make([]int, len(ms))
	if len(ms) > 0 {
		workers, err := p.e.pool.Run(p.ctx, len(ms), p.width, func(_ context.Context, i int) error {
			m := ms[i]
			var rows []value.Row
			var err error
			if m.whole {
				rows, err = m.part.visibleRows(p.snapshot, p.tid, ranges)
			} else {
				rows, err = m.part.visibleRowsRange(p.snapshot, p.tid, m.lo, m.hi)
			}
			if err != nil {
				return err
			}
			visible[i] = len(rows)
			p.stats.NoteScanned(len(rows))
			if pred != nil {
				kept := rows[:0]
				for _, r := range rows {
					ok, err := expr.Truthy(pred, r)
					if err != nil {
						return err
					}
					if ok {
						kept = append(kept, r)
					}
				}
				rows = kept
			}
			outs[i] = rows
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		p.stats.NoteDispatch(len(ms), workers)
	}

	perPart := make([]int, len(parts))
	total := 0
	for i, m := range ms {
		perPart[m.partIdx] += visible[i]
		total += len(outs[i])
	}
	out := make([]value.Row, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out, perPart, nil
}
