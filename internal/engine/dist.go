package engine

import (
	"fmt"
	"sort"
	"strings"

	"hana/internal/catalog"
	"hana/internal/dist"
	"hana/internal/fed"
	"hana/internal/txn"
	"hana/internal/value"
)

// distRuntime is the engine's scale-out attachment: the worker fleet holding
// hash-sharded replicas of eligible hot tables, the transport to reach them,
// and the coordinator that fans fragments out and merges the streams. The
// engine node stays authoritative — MVCC, WAL and savepoints are untouched;
// workers mirror committed state through the same two-phase commit the
// extended store uses.
type distRuntime struct {
	topo      dist.Topology
	transport *dist.Local
	coord     *dist.Coordinator
}

// initDist builds the worker fleet when the configured topology asks for
// one. Workers share the engine's fault injector (sites dist.worker.<id>.*)
// and get per-worker circuit breakers (dist.worker.<id>) through the
// guarded caller.
func (e *Engine) initDist() {
	topo := e.cfg.Topology
	if !topo.Enabled() {
		return
	}
	workers := make([]*dist.Worker, topo.Shards)
	for i := range workers {
		workers[i] = dist.NewWorker(i, e.cfg.Parallelism, e.cfg.Faults)
	}
	tr := dist.NewLocal(workers)
	caller := &fed.GuardedCall{
		Health:  e.health,
		Retry:   e.cfg.Retry,
		Faults:  e.cfg.Faults,
		Span:    "fragment",
		OnRetry: func() { e.Metrics.DistRetries.Inc() },
	}
	e.dist = &distRuntime{
		topo:      topo,
		transport: tr,
		coord:     &dist.Coordinator{Topo: topo, Transport: tr, Caller: caller},
	}
}

// SetTopology rebuilds the worker fleet for a new topology on an
// already-constructed engine and reseeds every shardable table onto it.
// It must not run concurrently with statement execution: the fleet swap is
// unsynchronized by design, matching the setter it replaces.
//
// Deprecated: set Config.Topology before engine.New/Open instead — the
// Config field wires the fleet during construction, before recovery
// reseeds it, so tables never transit an unsharded window. SetTopology
// remains only as a bridge for callers that construct engines before
// choosing a topology.
func (e *Engine) SetTopology(topo dist.Topology) error {
	e.cfg.Topology = topo
	e.dist = nil
	e.initDist()
	return e.distReseedAll()
}

// Topology reports the engine's distributed topology (zero value when
// single-node).
func (e *Engine) Topology() dist.Topology {
	if e.dist == nil {
		return dist.Topology{}
	}
	return e.dist.topo
}

// DistTransport exposes the in-process transport for chaos tests (killing
// and reviving workers) and wire-conformance runs. Nil when single-node.
func (e *Engine) DistTransport() *dist.Local {
	if e.dist == nil {
		return nil
	}
	return e.dist.transport
}

// distFor returns the runtime when the table is shardable: exactly one hot
// (in-memory) partition and a fixed schema. Hybrid/extended tables keep
// their federated strategies; flexible tables mutate their schema on
// insert.
func (e *Engine) distFor(t *storedTable) *distRuntime {
	d := e.dist
	if d == nil || t == nil {
		return nil
	}
	if t.meta.Flexible || len(t.parts) != 1 {
		return nil
	}
	p := t.parts[0]
	if p.cold || p.ext != nil {
		return nil
	}
	return d
}

// distKey is the worker-side table key — uppercase, matching the engine's
// catalog lookup normalization.
func distKey(name string) string { return strings.ToUpper(name) }

// shardOrdOf picks the hash-sharding column: the primary key when declared,
// the first column otherwise.
func shardOrdOf(meta *catalog.TableMeta) int {
	if meta.PrimaryKey >= 0 {
		return meta.PrimaryKey
	}
	return 0
}

// distRegister installs (or refreshes) a table's schema on every worker.
// Called on CREATE TABLE and after schema-changing ALTERs; existing shard
// data on the workers is dropped, so callers reseed when rows exist.
func (e *Engine) distRegister(t *storedTable) {
	d := e.distFor(t)
	if d == nil {
		return
	}
	for i := 0; i < d.transport.Workers(); i++ {
		d.transport.Worker(i).Register(distKey(t.meta.Name), t.meta.Schema.Clone())
	}
}

// distDrop removes a table from every worker.
func (e *Engine) distDrop(name string) {
	d := e.dist
	if d == nil {
		return
	}
	for i := 0; i < d.transport.Workers(); i++ {
		d.transport.Worker(i).Drop(distKey(name))
	}
}

// distReseed re-registers and re-loads one table's committed visible rows
// onto the fleet — the recovery and schema-change path. Rows load with the
// current commit ceiling as their insert stamp: every snapshot taken from
// now on is at or above it, and no older snapshot is in flight at reseed
// time.
func (e *Engine) distReseed(t *storedTable) error {
	if e.distFor(t) == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return e.distReseedLocked(t)
}

// distReseedLocked is distReseed with t.mu already held (ALTER TABLE path).
func (e *Engine) distReseedLocked(t *storedTable) error {
	d := e.distFor(t)
	if d == nil {
		return nil
	}
	e.distRegister(t)
	p := t.parts[0]
	last := e.mgr.LastCID()
	ord := shardOrdOf(t.meta)
	perShard := map[int]*shardBuf{}
	collect := func(id int, row value.Row) bool {
		if !p.vers.Visible(id, last, 0) {
			return true
		}
		s := dist.ShardOf(row[ord], d.topo.Shards)
		b := perShard[s]
		if b == nil {
			b = &shardBuf{}
			perShard[s] = b
		}
		b.seqs = append(b.seqs, int64(id))
		b.rows = append(b.rows, row.Clone())
		return true
	}
	switch {
	case p.hot != nil:
		p.hot.Scan(collect)
	case p.row != nil:
		p.row.Scan(collect)
	}
	for s, b := range perShard {
		for _, owner := range d.topo.Owners(s) {
			if err := d.transport.Worker(owner).LoadCommitted(distKey(t.meta.Name), s, b.seqs, b.rows, last); err != nil {
				return fmt.Errorf("reseeding %s shard %d on worker %d: %w", t.meta.Name, s, owner, err)
			}
		}
	}
	return nil
}

type shardBuf struct {
	seqs []int64
	rows []value.Row
}

// distReseedAll reseeds every shardable table — the post-recovery hook.
func (e *Engine) distReseedAll() error {
	if e.dist == nil {
		return nil
	}
	e.mu.RLock()
	names := make([]string, 0, len(e.tables))
	for name := range e.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	tables := make([]*storedTable, 0, len(names))
	for _, name := range names {
		tables = append(tables, e.tables[name])
	}
	e.mu.RUnlock()
	for _, t := range tables {
		if err := e.distReseed(t); err != nil {
			return err
		}
	}
	return nil
}

// distMirrorInsert buffers a transactional insert on every replica owner of
// the row's shard and enlists the workers in the transaction's two-phase
// commit, so the replicas flip visible at exactly the engine's commit ID.
// Called under t.mu from insertRow; the row id is the global scan sequence.
func (e *Engine) distMirrorInsert(tx *txn.Txn, t *storedTable, id int, row value.Row) {
	d := e.distFor(t)
	if d == nil {
		return
	}
	shard := dist.ShardOf(row[shardOrdOf(t.meta)], d.topo.Shards)
	r := row.Clone()
	for _, owner := range d.topo.Owners(shard) {
		w := d.transport.Worker(owner)
		w.BufferInsert(tx.TID, distKey(t.meta.Name), shard, int64(id), r)
		tx.Enlist(w)
	}
}

// distMirrorDelete buffers a transactional delete. The deleted row is read
// back by id (under t.mu) to route the delete to the shard's owners.
func (e *Engine) distMirrorDelete(tx *txn.Txn, t *storedTable, p *partition, id int) {
	d := e.distFor(t)
	if d == nil {
		return
	}
	var row value.Row
	var err error
	switch {
	case p.hot != nil:
		row, err = p.hot.Get(id)
	case p.row != nil:
		row, err = p.row.Get(id)
	}
	if err != nil || row == nil {
		return
	}
	shard := dist.ShardOf(row[shardOrdOf(t.meta)], d.topo.Shards)
	for _, owner := range d.topo.Owners(shard) {
		w := d.transport.Worker(owner)
		w.BufferDelete(tx.TID, distKey(t.meta.Name), shard, int64(id))
		tx.Enlist(w)
	}
}

// distMirrorLoad mirrors a BulkLoad batch: rows are already committed at
// cid, so they apply to the replicas directly. Called under t.mu.
func (e *Engine) distMirrorLoad(t *storedTable, ids []int, rows []value.Row, cid uint64) error {
	d := e.distFor(t)
	if d == nil {
		return nil
	}
	ord := shardOrdOf(t.meta)
	perShard := map[int]*shardBuf{}
	for i, row := range rows {
		s := dist.ShardOf(row[ord], d.topo.Shards)
		b := perShard[s]
		if b == nil {
			b = &shardBuf{}
			perShard[s] = b
		}
		b.seqs = append(b.seqs, int64(ids[i]))
		b.rows = append(b.rows, row.Clone())
	}
	for s, b := range perShard {
		for _, owner := range d.topo.Owners(s) {
			if err := d.transport.Worker(owner).LoadCommitted(distKey(t.meta.Name), s, b.seqs, b.rows, cid); err != nil {
				return fmt.Errorf("mirroring bulk load of %s to worker %d: %w", t.meta.Name, owner, err)
			}
		}
	}
	return nil
}

// DistShardCounts reports, per worker, the live row count held for a table
// at the current snapshot — the data-placement view used by tests and
// M_DIST_SHARDS.
func (e *Engine) DistShardCounts(table string) (map[int]int, error) {
	if e.dist == nil {
		return nil, fmt.Errorf("distributed execution is not enabled")
	}
	t, err := e.table(table)
	if err != nil {
		return nil, err
	}
	snap := e.mgr.LastCID()
	out := map[int]int{}
	for i := 0; i < e.dist.transport.Workers(); i++ {
		w := e.dist.transport.Worker(i)
		n := 0
		for s := 0; s < e.dist.topo.Shards; s++ {
			n += w.ShardRowCount(distKey(t.meta.Name), s, snap)
		}
		out[i] = n
	}
	return out, nil
}
