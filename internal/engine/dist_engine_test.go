package engine

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"hana/internal/dist"
	"hana/internal/value"
)

// sameRowsDist fails unless the two results carry identical rows in
// identical order — the engine-level form of the byte-identity promise.
func sameRowsDist(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows vs %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if value.Compare(got.Rows[i][j], want.Rows[i][j]) != 0 {
				t.Fatalf("%s: row %d col %d: %v vs %v", label, i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

func newDistEngine(t *testing.T, shards, rows int) *Engine {
	t.Helper()
	e := New(Config{Topology: dist.Topology{Shards: shards}})
	exec1(t, e, "CREATE TABLE T (A INT PRIMARY KEY, B INT, C VARCHAR)")
	for i := 0; i < rows; i++ {
		exec1(t, e, fmt.Sprintf("INSERT INTO T VALUES (%d, %d, 'v%d')", i, i*7, i%13))
	}
	return e
}

// The end-to-end distributed read path over a transactionally mirrored
// table: shipped scans, exactly-mergeable aggregates (COUNT DISTINCT
// included), broadcast joins, and post-DML state must all be byte-identical
// to the same statement pinned local on the same engine.
func TestDistExecutionMatchesLocal(t *testing.T) {
	e := newDistEngine(t, 3, 500)
	counts, err := e.DistShardCounts("T")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if want := 500 * e.Topology().ReplicaCount(); total != want {
		t.Fatalf("replica row placement: %v sums to %d, want %d", counts, total, want)
	}
	queries := []string{
		"SELECT A, B, C FROM T WHERE MOD(A, 3) = 0",
		"SELECT COUNT(*), SUM(B), MIN(A), MAX(B), COUNT(DISTINCT C) FROM T",
		"SELECT C, COUNT(*), SUM(B) FROM T GROUP BY C ORDER BY C",
		"SELECT * FROM T WHERE A < 50 ORDER BY B DESC LIMIT 10",
		"SELECT t.A, u.B FROM T t JOIN T u ON t.A = u.A WHERE u.A < 30",
	}
	ctx := context.Background()
	for _, q := range queries {
		d, err := e.ExecuteContext(ctx, q)
		if err != nil {
			t.Fatalf("dist %s: %v", q, err)
		}
		l, err := e.ExecuteContext(ctx, q, WithLocalOnly())
		if err != nil {
			t.Fatalf("local %s: %v", q, err)
		}
		sameRowsDist(t, q, d, l)
	}
	exec1(t, e, "DELETE FROM T WHERE MOD(A, 5) = 0")
	exec1(t, e, "UPDATE T SET B = B + 1 WHERE A < 100")
	d := exec1(t, e, "SELECT COUNT(*), SUM(B) FROM T")
	l, err := e.ExecuteContext(ctx, "SELECT COUNT(*), SUM(B) FROM T", WithLocalOnly())
	if err != nil {
		t.Fatal(err)
	}
	sameRowsDist(t, "after DML", d, l)
}

// WithShards caps the fan-out without changing the answer; a width the
// topology can't satisfy is clamped, and WithShards on a single-node
// engine is a no-op rather than an error.
func TestDistWithShardsFanout(t *testing.T) {
	e := newDistEngine(t, 4, 300)
	ctx := context.Background()
	const q = "SELECT A, B FROM T WHERE B > 700"
	want, err := e.ExecuteContext(ctx, q, WithLocalOnly())
	if err != nil {
		t.Fatal(err)
	}
	for _, fanout := range []int{1, 2, 4, 16} {
		got, err := e.ExecuteContext(ctx, q, WithShards(fanout))
		if err != nil {
			t.Fatalf("fanout %d: %v", fanout, err)
		}
		sameRowsDist(t, fmt.Sprintf("fanout %d", fanout), got, want)
	}
	single := New(Config{})
	exec1(t, single, "CREATE TABLE S (A INT)")
	exec1(t, single, "INSERT INTO S VALUES (1), (2)")
	res, err := single.ExecuteContext(ctx, "SELECT A FROM S ORDER BY A", WithShards(2))
	if err != nil {
		t.Fatalf("WithShards on single-node engine: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// Reads inside an explicit transaction must stay on the engine node: the
// workers hold committed state only, so a snapshot that includes the
// transaction's own writes cannot be served remotely.
func TestDistExplicitTxnReadsStayLocal(t *testing.T) {
	e := newDistEngine(t, 3, 50)
	tx := e.Begin()
	if _, err := e.ExecuteTx(tx, "INSERT INTO T VALUES (1000, 1, 'own')"); err != nil {
		t.Fatal(err)
	}
	before := e.Metrics.DistQueries.Load()
	res, err := e.ExecuteTx(tx, "SELECT COUNT(*) FROM T WHERE A = 1000")
	if err != nil {
		t.Fatal(err)
	}
	if value.Compare(res.Rows[0][0], value.NewInt(1)) != 0 {
		t.Fatalf("transaction cannot see its own write: %v", res.Rows)
	}
	if got := e.Metrics.DistQueries.Load(); got != before {
		t.Fatalf("explicit-txn read went distributed (dist.queries %d -> %d)", before, got)
	}
	if err := e.Rollback(tx); err != nil {
		t.Fatal(err)
	}
	// After rollback the buffered mirror write must be gone fleet-wide.
	res = exec1(t, e, "SELECT COUNT(*) FROM T")
	if value.Compare(res.Rows[0][0], value.NewInt(50)) != 0 {
		t.Fatalf("rolled-back insert leaked: %v", res.Rows)
	}
}

// ALTER TABLE changes the worker-side schema, so it must reseed the fleet;
// distributed reads after the ALTER must see the widened rows.
func TestDistAlterTableReseeds(t *testing.T) {
	e := newDistEngine(t, 3, 120)
	exec1(t, e, "ALTER TABLE T ADD (D INT)")
	exec1(t, e, "UPDATE T SET D = A * 2 WHERE A < 60")
	ctx := context.Background()
	const q = "SELECT A, D FROM T WHERE D > 0 ORDER BY A"
	d, err := e.ExecuteContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	l, err := e.ExecuteContext(ctx, q, WithLocalOnly())
	if err != nil {
		t.Fatal(err)
	}
	sameRowsDist(t, "post-ALTER", d, l)
}

// Crash recovery replays the WAL into the engine node and then reseeds the
// fleet from the recovered state, so a reopened sharded engine serves
// distributed reads immediately.
func TestDistRecoveryReseeds(t *testing.T) {
	dir := t.TempDir()
	topo := dist.Topology{Shards: 3}
	e, err := Open(Config{DataDir: dir, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	exec1(t, e, "CREATE TABLE R (A INT PRIMARY KEY, B INT)")
	for i := 0; i < 90; i++ {
		exec1(t, e, fmt.Sprintf("INSERT INTO R VALUES (%d, %d)", i, i*3))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Config{DataDir: dir, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()
	before := r.Metrics.DistQueries.Load()
	got, err := r.ExecuteContext(ctx, "SELECT COUNT(*), SUM(B) FROM R")
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.DistQueries.Load() <= before {
		t.Fatal("post-recovery aggregate did not run distributed")
	}
	want, err := r.ExecuteContext(ctx, "SELECT COUNT(*), SUM(B) FROM R", WithLocalOnly())
	if err != nil {
		t.Fatal(err)
	}
	sameRowsDist(t, "post-recovery", got, want)
}

// The deprecated SetTopology bridge must land the engine in exactly the
// state Config.Topology produces: same shard placement, same rows.
func TestDeprecatedSetTopologyMatchesConfigTopology(t *testing.T) {
	topo := dist.Topology{Shards: 3}
	load := func(e *Engine) {
		exec1(t, e, "CREATE TABLE P (A INT PRIMARY KEY, B INT)")
		for i := 0; i < 150; i++ {
			exec1(t, e, fmt.Sprintf("INSERT INTO P VALUES (%d, %d)", i, i*i))
		}
	}

	viaConfig := New(Config{Topology: topo})
	load(viaConfig)

	viaSetter := New(Config{})
	load(viaSetter)
	if err := viaSetter.SetTopology(topo); err != nil {
		t.Fatal(err)
	}

	wantCounts, err := viaConfig.DistShardCounts("P")
	if err != nil {
		t.Fatal(err)
	}
	gotCounts, err := viaSetter.DistShardCounts("P")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCounts, wantCounts) {
		t.Fatalf("shard placement diverged: SetTopology %v, Config %v", gotCounts, wantCounts)
	}

	ctx := context.Background()
	for _, q := range []string{
		"SELECT A, B FROM P WHERE MOD(A, 4) = 1",
		"SELECT COUNT(*), MIN(B), MAX(B) FROM P",
	} {
		want, err := viaConfig.ExecuteContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := viaSetter.ExecuteContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		sameRowsDist(t, q, got, want)
	}
}

// The deprecated Execute wrapper must stay byte-identical to
// ExecuteContext on a sharded engine — migration to the topology-aware
// entry point must never change results.
func TestDeprecatedExecuteOnShardedEngine(t *testing.T) {
	e := newDistEngine(t, 3, 80)
	const q = "SELECT C, COUNT(*) FROM T GROUP BY C ORDER BY C"
	want, err := e.ExecuteContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	sameRowsDist(t, "Execute on sharded engine", got, want)
	if !reflect.DeepEqual(got.Schema, want.Schema) {
		t.Fatalf("schema diverged: %v vs %v", got.Schema, want.Schema)
	}
}
