package engine

import (
	"context"
	"reflect"
	"testing"

	"hana/internal/value"
)

// The deprecated Execute* variants are thin wrappers over ExecuteContext.
// These tests pin their behaviour: each wrapper must return exactly what
// the equivalent ExecuteContext call returns, so existing callers can
// migrate at their own pace.

func sameResult(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("%s rows = %v, want %v", name, got.Rows, want.Rows)
	}
	if !reflect.DeepEqual(got.Schema, want.Schema) {
		t.Fatalf("%s schema = %v, want %v", name, got.Schema, want.Schema)
	}
	if got.Affected != want.Affected {
		t.Fatalf("%s affected = %d, want %d", name, got.Affected, want.Affected)
	}
}

func TestDeprecatedExecuteMatchesExecuteContext(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (a BIGINT, b VARCHAR(10))`)
	exec1(t, e, `INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')`)

	const q = `SELECT a, b FROM t WHERE a >= 2 ORDER BY a`
	want, err := e.ExecuteContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "Execute", got, want)
}

func TestDeprecatedExecuteParamsMatchesExecuteContext(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (a BIGINT, b VARCHAR(10))`)
	exec1(t, e, `INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')`)

	const q = `SELECT b FROM t WHERE a = ?`
	p := value.NewInt(2)
	want, err := e.ExecuteContext(context.Background(), q, WithParams(p))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.ExecuteParams(q, p)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "ExecuteParams", got, want)
	if len(got.Rows) != 1 || got.Rows[0][0].String() != "y" {
		t.Fatalf("rows = %v", got.Rows)
	}
}

func TestDeprecatedExecuteTxMatchesExecuteContext(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (a BIGINT)`)
	exec1(t, e, `INSERT INTO t VALUES (1), (2)`)

	tx := e.Begin()
	defer func() { _ = e.Rollback(tx) }()
	const q = `SELECT COUNT(*) FROM t`
	want, err := e.ExecuteContext(context.Background(), q, WithTx(tx))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.ExecuteTx(tx, q)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "ExecuteTx", got, want)
	if got.Rows[0][0].Int() != 2 {
		t.Fatalf("count = %v", got.Rows)
	}
}

func TestDeprecatedExecuteScriptMatchesExecuteContext(t *testing.T) {
	const script = `
		CREATE TABLE s (a BIGINT);
		INSERT INTO s VALUES (10), (20);
		SELECT SUM(a) FROM s`

	e1 := newTestEngine(t)
	want, err := e1.ExecuteContext(context.Background(), script, WithScript())
	if err != nil {
		t.Fatal(err)
	}
	e2 := newTestEngine(t)
	got, err := e2.ExecuteScript(script)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "ExecuteScript", got, want)
	if got.Rows[0][0].Int() != 30 {
		t.Fatalf("sum = %v", got.Rows)
	}
}

// Errors must surface identically through the wrappers.
func TestDeprecatedWrappersPropagateErrors(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Execute(`SELECT * FROM nope`); err == nil {
		t.Fatal("Execute must propagate errors")
	}
	if _, err := e.ExecuteParams(`SELECT * FROM nope WHERE a = ?`, value.NewInt(1)); err == nil {
		t.Fatal("ExecuteParams must propagate errors")
	}
	tx := e.Begin()
	defer func() { _ = e.Rollback(tx) }()
	if _, err := e.ExecuteTx(tx, `SELECT * FROM nope`); err == nil {
		t.Fatal("ExecuteTx must propagate errors")
	}
	if _, err := e.ExecuteScript(`SELECT * FROM nope; SELECT 1`); err == nil {
		t.Fatal("ExecuteScript must propagate errors")
	}
}
