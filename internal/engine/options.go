package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"hana/internal/obs"
	"hana/internal/sqlparse"
	"hana/internal/txn"
	"hana/internal/value"
)

// ExecOption configures one ExecuteContext call.
type ExecOption func(*execOpts)

type execOpts struct {
	params    []value.Value
	tx        *txn.Txn
	width     int
	script    bool
	rowExec   bool
	localOnly bool
	shards    int
}

// rowExecKey marks a statement context as row-at-a-time: the planner skips
// the vectorized scan path when the key is present.
type rowExecKey struct{}

// distOptKey carries the per-statement distributed-execution override; the
// planner reads it in newPlanner.
type distOptKey struct{}

type distOpt struct {
	localOnly bool
	fanout    int
}

// WithParams binds positional ? parameters to the given values.
// Parameterized remote-materialization keys incorporate the parameter
// values (§4.4: "a hash key is computed from the HiveQL statement,
// parameters, and the host information").
func WithParams(params ...value.Value) ExecOption {
	return func(o *execOpts) { o.params = params }
}

// WithTx runs the statement inside an explicit transaction instead of an
// autonomous one.
func WithTx(tx *txn.Txn) ExecOption {
	return func(o *execOpts) { o.tx = tx }
}

// WithParallelism caps the worker count for this statement's morsel
// dispatches (1 = run everything on the calling goroutine; 0 or unset =
// the engine pool size). The result is identical at any setting: morsel
// boundaries depend only on the data, so parallelism only changes which
// goroutine computes each partial.
func WithParallelism(n int) ExecOption {
	return func(o *execOpts) { o.width = n }
}

// WithScript treats sql as a semicolon-separated script, executing every
// statement and returning the last result.
func WithScript() ExecOption {
	return func(o *execOpts) { o.script = true }
}

// WithRowExec forces the classic row-at-a-time executor instead of the
// vectorized batch path. Both produce byte-identical results; the option
// exists for equivalence testing and as the before-side of the vectorized
// benchmarks.
func WithRowExec() ExecOption {
	return func(o *execOpts) { o.rowExec = true }
}

// WithShards caps how many shard fragments of this statement are in flight
// at once (0 or unset = all shards at once). The result is identical at any
// setting — the exchange merge restores the serial row order regardless of
// arrival order — so the cap only trades latency for coordinator load. On a
// single-node engine the option is a no-op.
func WithShards(n int) ExecOption {
	return func(o *execOpts) { o.shards = n }
}

// WithLocalOnly pins this statement to the engine node: the planner skips
// distributed fragments even when a topology is configured. Results are
// byte-identical to the distributed plan; the option exists for equivalence
// testing and for statements that must not touch the worker fleet.
func WithLocalOnly() ExecOption {
	return func(o *execOpts) { o.localOnly = true }
}

// ExecStats reports what the executor did for one statement: rows read by
// table-scan morsels, morsels dispatched across all pool runs, and the
// high-water worker count of any single dispatch.
type ExecStats struct {
	RowsScanned int64
	Morsels     int64
	Workers     int64
}

// PartitionCount is one partition's visible-row count, flagging cold
// (extended-storage) partitions.
type PartitionCount struct {
	Cold bool
	Rows int64
}

// ExecuteContext is the engine's core entry point: it parses and runs sql
// with the given options, under a context that cancels morsel workers,
// retry backoffs and remote fetches. All other Execute* variants are
// wrappers over it.
//
// Every call gets a structured QueryTrace: parse, per-statement execution,
// planning, morsel dispatch, remote calls and 2PC phases record spans into
// it through the context, and the finished trace lands in the engine's
// trace ring for M_QUERY_TRACES.
func (e *Engine) ExecuteContext(ctx context.Context, sql string, opts ...ExecOption) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var o execOpts
	for _, fn := range opts {
		fn(&o)
	}
	tr := obs.NewTrace(sql)
	ctx = obs.ContextWithTrace(ctx, tr)
	start := time.Now()
	defer func() {
		tr.Finish(err)
		e.traces.Push(tr)
		e.obs.Counter("exec.statements").Inc()
		e.obs.Histogram("exec.statement_us", nil).Observe(time.Since(start).Microseconds())
		if res != nil {
			e.obs.Counter("exec.rows_scanned").Add(res.Stats.RowsScanned)
			e.obs.Counter("exec.morsels").Add(res.Stats.Morsels)
			e.obs.Gauge("exec.workers_highwater").SetMax(res.Stats.Workers)
		}
	}()
	if o.script {
		ps := tr.StartSpan("parse")
		stmts, perr := sqlparse.ParseAll(sql)
		ps.SetAttrInt("statements", int64(len(stmts)))
		ps.End()
		if perr != nil {
			return nil, perr
		}
		var last *Result
		for _, st := range stmts {
			if last, err = e.execParsed(ctx, st, &o); err != nil {
				return nil, err
			}
		}
		return last, nil
	}
	ps := tr.StartSpan("parse")
	st, perr := sqlparse.Parse(sql)
	ps.End()
	if perr != nil {
		return nil, perr
	}
	return e.execParsed(ctx, st, &o)
}

func (e *Engine) execParsed(ctx context.Context, st sqlparse.Statement, o *execOpts) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := obs.TraceFrom(ctx).StartSpan("stmt")
	defer sp.End()
	sp.SetAttr("type", strings.TrimPrefix(fmt.Sprintf("%T", st), "*sqlparse."))
	ctx = obs.ContextWithSpan(ctx, sp)
	if len(o.params) > 0 {
		var err error
		if st, err = substituteStmtParams(st, o.params); err != nil {
			return nil, err
		}
	}
	if o.rowExec {
		ctx = context.WithValue(ctx, rowExecKey{}, true)
	}
	if o.localOnly || o.shards > 0 {
		ctx = context.WithValue(ctx, distOptKey{}, distOpt{localOnly: o.localOnly, fanout: o.shards})
	}
	if o.tx != nil {
		return e.execStmtTx(ctx, o.tx, st, o.width)
	}
	return e.execStmt(ctx, st, o.width)
}
