package engine

import (
	"context"
	"encoding/json"
	"fmt"

	"hana/internal/expr"
	"hana/internal/sqlparse"
	"hana/internal/txn"
	"hana/internal/value"
)

func (e *Engine) insert(ctx context.Context, tx *txn.Txn, st *sqlparse.InsertStmt, width int) (*Result, error) {
	t, err := e.table(st.Table)
	if err != nil {
		return nil, err
	}
	schema := t.meta.Schema
	// Map the insert column list to schema ordinals (full schema if absent).
	ords := make([]int, 0, len(st.Cols))
	if len(st.Cols) > 0 {
		for _, c := range st.Cols {
			o := schema.Find(c)
			if o < 0 {
				if t.meta.Flexible {
					// Flexible tables extend their schema on insert (§1
					// "Variety": "extend the schema during insert operations
					// without the need to explicitly trigger DDL").
					o, err = e.extendFlexible(t, c)
					if err != nil {
						return nil, err
					}
				} else {
					return nil, fmt.Errorf("column %s not in table %s", c, st.Table)
				}
			}
			ords = append(ords, o)
		}
	} else {
		for i := range schema.Cols {
			ords = append(ords, i)
		}
	}

	buildRow := func(vals []value.Value) (value.Row, error) {
		if len(vals) != len(ords) {
			return nil, fmt.Errorf("expected %d values, got %d", len(ords), len(vals))
		}
		row := make(value.Row, schema.Len())
		for i := range row {
			row[i] = value.Null
		}
		for i, o := range ords {
			v, err := value.Cast(vals[i], schema.Cols[o].Kind)
			if err != nil {
				return nil, fmt.Errorf("column %s: %w", schema.Cols[o].Name, err)
			}
			if v.IsNull() && !schema.Cols[o].Nullable {
				return nil, fmt.Errorf("column %s is NOT NULL", schema.Cols[o].Name)
			}
			row[o] = v
		}
		return row, nil
	}

	var count int64
	if st.Select != nil {
		res, err := e.query(ctx, tx, st.Select, width)
		if err != nil {
			return nil, err
		}
		for _, r := range res.Rows {
			row, err := buildRow(r)
			if err != nil {
				return nil, err
			}
			if err := t.insertRow(tx, row); err != nil {
				return nil, err
			}
			count++
		}
	} else {
		for _, exprRow := range st.Values {
			vals := make([]value.Value, len(exprRow))
			for i, ex := range exprRow {
				v, err := ex.Eval(nil)
				if err != nil {
					return nil, fmt.Errorf("INSERT values must be constant: %w", err)
				}
				vals[i] = v
			}
			row, err := buildRow(vals)
			if err != nil {
				return nil, err
			}
			if err := t.insertRow(tx, row); err != nil {
				return nil, err
			}
			count++
		}
	}
	return &Result{Affected: count, Message: fmt.Sprintf("%d row(s) inserted", count)}, nil
}

// extendFlexible adds a VARCHAR column to a flexible table on the fly. The
// implicit DDL is redo-logged like an explicit ALTER: later insert records
// carry the wider arity, so replay must widen the schema at the same point.
func (e *Engine) extendFlexible(t *storedTable, col string) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if o := t.meta.Schema.Find(col); o >= 0 {
		return o, nil
	}
	nc := value.Column{Name: col, Kind: value.KindVarchar, Nullable: true}
	if e.wal != nil {
		payload, err := json.Marshal([]value.Column{nc})
		if err != nil {
			return 0, err
		}
		if err := e.logRedoDDL(redoDDLAlter, t.meta.Name, payload); err != nil {
			return 0, fmt.Errorf("logging flexible-schema extension: %w", err)
		}
	}
	// The partition's column store extends its own schema copy; the catalog
	// schema (shared with the meta) extends alongside.
	for _, p := range t.parts {
		if p.hot != nil {
			p.hot.AddColumn(nc)
		}
	}
	t.meta.Schema.Cols = append(t.meta.Schema.Cols, nc)
	return t.meta.Schema.Len() - 1, nil
}

// target identifies one visible row of a table (partition + row id) that a
// DML statement affects.
type target struct {
	p   *partition
	id  int
	row value.Row
}

func (e *Engine) collectTargets(tx *txn.Txn, t *storedTable, st sqlparse.Statement) ([]target, error) {
	where := extractWhere(st)
	var bound expr.Expr
	if where != nil {
		var err error
		bound, err = bindToSchema(where, t.meta.Schema)
		if err != nil {
			return nil, err
		}
	}
	var out []target
	for _, p := range t.parts {
		var scanErr error
		collect := func(id int, row value.Row) bool {
			if !p.vers.Visible(id, tx.Snapshot, tx.TID) {
				return true
			}
			if bound != nil {
				keep, err := expr.Truthy(bound, row)
				if err != nil {
					scanErr = err
					return false
				}
				if !keep {
					return true
				}
			}
			out = append(out, target{p: p, id: id, row: row.Clone()})
			return true
		}
		switch {
		case p.hot != nil:
			p.hot.Scan(collect)
		case p.row != nil:
			p.row.Scan(collect)
		case p.ext != nil:
			_ = p.ext.Scan(nil, nil, func(id int64, row value.Row) bool {
				return collect(int(id), row)
			})
		}
		if scanErr != nil {
			return nil, scanErr
		}
	}
	return out, nil
}

func (e *Engine) delete(tx *txn.Txn, st *sqlparse.DeleteStmt) (*Result, error) {
	t, err := e.table(st.Table)
	if err != nil {
		return nil, err
	}
	targets, err := e.collectTargets(tx, t, st)
	if err != nil {
		return nil, err
	}
	for _, tg := range targets {
		if err := t.deleteRow(tx, tg.p, tg.id); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: int64(len(targets)), Message: fmt.Sprintf("%d row(s) deleted", len(targets))}, nil
}

// update is MVCC delete + insert of the modified row (column-store
// semantics; row-store tables share the path for uniformity).
func (e *Engine) update(tx *txn.Txn, st *sqlparse.UpdateStmt) (*Result, error) {
	t, err := e.table(st.Table)
	if err != nil {
		return nil, err
	}
	schema := t.meta.Schema
	type setter struct {
		ord int
		ex  func(value.Row) (value.Value, error)
	}
	var setters []setter
	for _, s := range st.Set {
		ord := schema.Find(s.Col)
		if ord < 0 {
			return nil, fmt.Errorf("column %s not in table %s", s.Col, st.Table)
		}
		bex, err := bindToSchema(s.E, schema)
		if err != nil {
			return nil, err
		}
		kind := schema.Cols[ord].Kind
		setters = append(setters, setter{ord: ord, ex: func(r value.Row) (value.Value, error) {
			v, err := bex.Eval(r)
			if err != nil {
				return value.Null, err
			}
			return value.Cast(v, kind)
		}})
	}
	targets, err := e.collectTargets(tx, t, st)
	if err != nil {
		return nil, err
	}
	for _, tg := range targets {
		newRow := tg.row.Clone()
		for _, s := range setters {
			v, err := s.ex(tg.row)
			if err != nil {
				return nil, err
			}
			newRow[s.ord] = v
		}
		if err := t.deleteRow(tx, tg.p, tg.id); err != nil {
			return nil, err
		}
		if err := t.insertRow(tx, newRow); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: int64(len(targets)), Message: fmt.Sprintf("%d row(s) updated", len(targets))}, nil
}

// extractWhere pulls the WHERE clause out of a DML statement.
func extractWhere(st sqlparse.Statement) expr.Expr {
	switch s := st.(type) {
	case *sqlparse.DeleteStmt:
		return s.Where
	case *sqlparse.UpdateStmt:
		return s.Where
	}
	return nil
}

// BulkLoad loads rows directly into a table outside transactional DML —
// the direct-load path for extended tables and the generator path for
// benchmarks. Rows become immediately visible.
func (e *Engine) BulkLoad(table string, rows []value.Row) error {
	t, err := e.table(table)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cid := e.mgr.LastCID()
	// Group rows per partition so extended partitions get one bulk write.
	perPart := map[*partition][]value.Row{}
	for _, r := range rows {
		if len(r) != t.meta.Schema.Len() {
			return fmt.Errorf("row arity %d does not match table %s", len(r), table)
		}
		p, err := t.partitionFor(r)
		if err != nil {
			return err
		}
		perPart[p] = append(perPart[p], r)
	}
	// Apply in partition slice order so the redo-record sequence is
	// deterministic for a given input.
	for _, p := range t.parts {
		rs, ok := perPart[p]
		if !ok {
			continue
		}
		switch {
		case p.hot != nil, p.row != nil:
			ids := make([]int, 0, len(rs))
			for _, r := range rs {
				if err := e.logRedo(0, cid, redoInsC, p.idx, p.numRows(), t.meta.Name, value.AppendRow(nil, r)); err != nil {
					return err
				}
				var id int
				var err error
				if p.hot != nil {
					id, err = p.hot.Append(r)
				} else {
					id, err = p.row.Append(r)
				}
				if err != nil {
					return err
				}
				p.vers.InsertCommitted(id, cid)
				ids = append(ids, id)
			}
			if err := e.distMirrorLoad(t, ids, rs, cid); err != nil {
				return err
			}
		case p.ext != nil:
			base := p.numRows()
			if e.wal != nil {
				for i, r := range rs {
					if err := e.logRedo(0, cid, redoInsC, p.idx, base+i, t.meta.Name, value.AppendRow(nil, r)); err != nil {
						return err
					}
				}
			}
			if err := p.ext.BulkLoad(rs); err != nil {
				return err
			}
			for i := range rs {
				p.vers.InsertCommitted(base+i, cid)
			}
		}
	}
	return nil
}

// TableRowCount returns the number of visible rows (current snapshot).
func (e *Engine) TableRowCount(table string) (int64, error) {
	t, err := e.table(table)
	if err != nil {
		return 0, err
	}
	snapshot := e.mgr.LastCID()
	var n int64
	for _, p := range t.parts {
		rows, err := p.visibleRows(snapshot, 0, nil)
		if err != nil {
			return 0, err
		}
		n += int64(len(rows))
	}
	return n, nil
}

// PartitionRowCounts reports visible rows per partition, flagging cold
// partitions — used by examples and the aging bench.
func (e *Engine) PartitionRowCounts(table string) ([]PartitionCount, error) {
	t, err := e.table(table)
	if err != nil {
		return nil, err
	}
	snapshot := e.mgr.LastCID()
	var out []PartitionCount
	for _, p := range t.parts {
		rows, err := p.visibleRows(snapshot, 0, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, PartitionCount{Cold: p.cold, Rows: int64(len(rows))})
	}
	return out, nil
}
