package engine

import (
	"fmt"

	"hana/internal/dist"
	"hana/internal/exec"
	"hana/internal/expr"
	"hana/internal/sqlparse"
	"hana/internal/value"
)

// distRel is a pending scan over the worker fleet's shard replicas of one
// hot table. Conjuncts attach unrealized so they ship inside the fragment;
// realization fans the fragment out to every shard and merges the streams
// back into the exact serial row order.
type distRel struct {
	t       *storedTable
	name    string
	binding string
	conjs   []expr.Expr
}

// renderConjs renders pushed conjuncts as one shippable predicate ("" =
// none). The worker re-parses and re-binds it against the same qualified
// schema, the round-trip the federation layer already uses.
func renderConjs(conjs []expr.Expr) string {
	if len(conjs) == 0 {
		return ""
	}
	return expr.And(cloneAll(conjs)...).SQL()
}

// distGather fans a fragment template out through the coordinator and folds
// the run's statistics into the statement counters.
func (p *planner) distGather(tmpl *dist.Fragment) (*dist.GatherResult, error) {
	tmpl.Snapshot = p.snapshot
	tmpl.Width = p.width
	res, err := p.e.dist.coord.Gather(p.ctx, tmpl, p.fanout)
	if err != nil {
		return nil, err
	}
	m := &p.e.Metrics
	m.DistQueries.Inc()
	m.DistFragments.Add(int64(res.Fragments))
	m.DistFailovers.Add(int64(res.Failovers))
	m.DistRowsMerged.Add(int64(len(res.Rows)))
	p.stats.RowsScanned.Add(res.Scanned)
	if res.Failovers > 0 {
		p.plan.Note("dist: %d replica failover(s)", res.Failovers)
	}
	return res, nil
}

// realizeDist executes the shard scan fragment and materializes the merged
// stream. Rows arrive tagged with their global scan sequence and the
// coordinator merge restores ascending order, so the result is
// byte-identical to the single-node partition scan.
func (p *planner) realizeDist(r *relation) error {
	dr := r.dst
	f := &dist.Fragment{
		Table:   distKey(dr.t.meta.Name),
		Binding: dr.binding,
		Where:   renderConjs(dr.conjs),
	}
	res, err := p.distGather(f)
	if err != nil {
		return err
	}
	shards := p.e.dist.topo.Shards
	label := fmt.Sprintf("Dist Scan [%s] (%d rows, %d shards)", dr.name, len(res.Rows), shards)
	r.node = node(label)
	if f.Where != "" {
		r.node.children = append(r.node.children, node("shipped filter: "+f.Where))
	}
	r.rows = res.Rows
	r.local = true
	r.dst = nil
	r.est = float64(len(r.rows))
	return nil
}

// tryDistAggregate plans a single-table aggregate block as a distributed
// aggregation: each shard folds its rows into mergeable per-group partials,
// the coordinator unions them, and only the finishing stages run locally.
// Only the exactly-mergeable subset ships — COUNT, MIN, MAX, and SUM over
// integer arguments (each with optional DISTINCT). Anything else returns
// ok=false and the block falls back to gather-then-aggregate, which is
// byte-identical anyway.
func (p *planner) tryDistAggregate(sel *sqlparse.SelectStmt, rel *relation) (exec.Iter, *planNode, bool, error) {
	dr := rel.dst
	inSchema := rel.schema
	items, err := expandStars(sel.Items, inSchema)
	if err != nil {
		return nil, nil, false, err
	}
	needAgg := len(sel.GroupBy) > 0
	if !needAgg {
		for _, item := range items {
			if expr.HasAggregate(item.Expr) {
				needAgg = true
				break
			}
		}
		if sel.Having != nil && expr.HasAggregate(sel.Having) {
			needAgg = true
		}
	}
	if !needAgg {
		return nil, nil, false, nil
	}

	having := sel.Having
	orderExprs := make([]expr.Expr, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		orderExprs[i] = o.Expr
	}

	// Group keys: names and kinds exactly as the serial aggregate derives
	// them, rendered SQL for the worker side.
	groupNames := make([]string, len(sel.GroupBy))
	groupSQLs := make([]string, len(sel.GroupBy))
	outSchema := &value.Schema{}
	for i, g := range sel.GroupBy {
		if _, err := bindToSchema(g, inSchema); err != nil {
			// The serial path would fail identically; let it produce the error.
			return nil, nil, false, nil
		}
		groupNames[i] = exprName(g)
		groupSQLs[i] = g.SQL()
		outSchema.Cols = append(outSchema.Cols, value.Column{
			Name: groupNames[i], Kind: inferKind(g, inSchema), Nullable: true,
		})
	}

	// Collect distinct aggregate calls across items, having and order by,
	// rejecting the block if any falls outside the mergeable subset.
	var calls []dist.AggCall
	aggCols := map[string]string{}
	shippable := true
	collect := func(e expr.Expr) {
		if e == nil || !shippable {
			return
		}
		expr.Walk(e, func(n expr.Expr) bool {
			f, ok := n.(*expr.Func)
			if !ok || !f.IsAggregate() {
				return true
			}
			key := f.SQL()
			if _, seen := aggCols[key]; seen {
				return false
			}
			if !dist.DistributableAgg(f.Name) {
				shippable = false
				return false
			}
			call := dist.AggCall{Func: f.Name, Distinct: f.Distinct}
			if f.Star {
				if f.Name != "COUNT" {
					shippable = false
					return false
				}
			} else {
				if len(f.Args) != 1 {
					shippable = false
					return false
				}
				// Float SUM is order-sensitive; keep it on the serial path so
				// summation order stays identical to single-node execution.
				if f.Name == "SUM" && inferKind(f.Args[0], inSchema) != value.KindInt {
					shippable = false
					return false
				}
				if _, err := bindToSchema(f.Args[0], inSchema); err != nil {
					shippable = false
					return false
				}
				call.Arg = f.Args[0].SQL()
			}
			aggCols[key] = key
			calls = append(calls, call)
			outSchema.Cols = append(outSchema.Cols, value.Column{
				Name: key, Kind: inferKind(f, inSchema), Nullable: true,
			})
			return false
		})
	}
	for _, item := range items {
		collect(item.Expr)
	}
	collect(having)
	for _, oe := range orderExprs {
		collect(oe)
	}
	if !shippable {
		p.plan.Note("dist: aggregate outside mergeable subset, gathering rows instead")
		return nil, nil, false, nil
	}

	f := &dist.Fragment{
		Table:   distKey(dr.t.meta.Name),
		Binding: dr.binding,
		Where:   renderConjs(dr.conjs),
		Agg:     &dist.AggFragment{GroupBy: groupSQLs, Aggs: calls},
	}
	res, err := p.distGather(f)
	if err != nil {
		return nil, nil, false, err
	}

	// Finalize the merged partials into aggregate output rows; group order
	// is the serial first-seen order (merged groups sort by MinSeq).
	rows := make([]value.Row, 0, len(res.Partial.Groups))
	for _, g := range res.Partial.Groups {
		row := make(value.Row, 0, len(g.Key)+len(calls))
		row = append(row, g.Key...)
		for i, c := range calls {
			v, err := g.States[i].Result(c.Func)
			if err != nil {
				return nil, nil, false, err
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	if len(sel.GroupBy) == 0 && len(rows) == 0 {
		// SQL's single global group over empty input.
		row := make(value.Row, 0, len(calls))
		for _, c := range calls {
			v, err := dist.EmptyAggResult(c.Func, c.Distinct)
			if err != nil {
				return nil, nil, false, err
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}

	shards := p.e.dist.topo.Shards
	root := node(fmt.Sprintf("Dist Hash Aggregate [%s] (%d group cols, %d groups, %d shards)",
		dr.name, len(sel.GroupBy), len(rows), shards))
	if f.Where != "" {
		root.children = append(root.children, node("shipped filter: "+f.Where))
	}

	// Rewrite items/having/order over the aggregate output, exactly as the
	// serial aggregate does, then share its finishing stages.
	groupSQL := map[string]string{}
	for i, g := range sel.GroupBy {
		groupSQL[g.SQL()] = groupNames[i]
	}
	rewrite := func(e expr.Expr) expr.Expr {
		if e == nil {
			return nil
		}
		return expr.Rewrite(e, func(n expr.Expr) expr.Expr {
			if f, ok := n.(*expr.Func); ok && f.IsAggregate() {
				return expr.Col(aggCols[f.SQL()])
			}
			if name, ok := groupSQL[n.SQL()]; ok {
				return expr.Col(name)
			}
			return nil
		})
	}
	outItems := make([]sqlparse.SelectItem, len(items))
	for i, item := range items {
		outItems[i] = sqlparse.SelectItem{Expr: rewrite(item.Expr), Alias: item.Alias}
	}
	outOrder := make([]expr.Expr, len(orderExprs))
	for i, oe := range orderExprs {
		outOrder[i] = rewrite(oe)
	}

	it := exec.NewSlice(outSchema, rows)
	fit, froot, err := p.finishAfterAgg(sel, it, root, outItems, rewrite(having), outOrder)
	if err != nil {
		return nil, nil, false, err
	}
	return fit, froot, true, nil
}

// distBroadcastJoin executes probe-side-sharded ⋈ broadcast-build-side on
// the workers: every worker builds the same hash table in the same build
// row order, probes its shard's rows, and the coordinator merge restores
// probe-input order — the serial hash join's exact emission order. Returns
// nil (no error) when the join should fall back to gather + local join.
func (p *planner) distBroadcastJoin(l, r *relation, leftKeys, rightKeys, residual []expr.Expr, combined *value.Schema) (*relation, error) {
	if float64(r.rowCount()) > float64(p.e.semiJoinThreshold()) {
		p.plan.Note("dist: build side %d rows > threshold %d, gathering probe side", r.rowCount(), p.e.semiJoinThreshold())
		return nil, nil
	}
	dr := l.dst
	probeSQLs := make([]string, len(leftKeys))
	for i, k := range leftKeys {
		probeSQLs[i] = k.SQL()
	}
	buildSQLs := make([]string, len(rightKeys))
	for i, k := range rightKeys {
		buildSQLs[i] = k.SQL()
	}
	f := &dist.Fragment{
		Table:   distKey(dr.t.meta.Name),
		Binding: dr.binding,
		Where:   renderConjs(dr.conjs),
		Join: &dist.JoinFragment{
			ProbeKeys: probeSQLs,
			BuildKeys: buildSQLs,
			Residual:  renderConjs(residual),
			BuildCols: r.schema.Cols,
			BuildRows: r.rowsOf(),
		},
	}
	res, err := p.distGather(f)
	if err != nil {
		return nil, err
	}
	out := &relation{schema: combined, local: true, rows: res.Rows}
	out.est = float64(len(out.rows))
	label := fmt.Sprintf("Dist Broadcast Hash Join (INNER) on %s (%d rows, %d shards)",
		keySQL(leftKeys, rightKeys), len(out.rows), p.e.dist.topo.Shards)
	probeNode := node(fmt.Sprintf("Dist Scan [%s] (probe, sharded)", dr.name))
	if f.Where != "" {
		probeNode.children = append(probeNode.children, node("shipped filter: "+f.Where))
	}
	out.node = node(label, probeNode, r.node)
	return out, nil
}
