package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"hana/internal/faults"
	"hana/internal/fed"
	"hana/internal/value"
)

// fakeAdapter returns canned (k, v) rows for every shipped query, so tests
// can exercise the retry/breaker/fallback layer without a Hive server.
type fakeAdapter struct {
	mu      sync.Mutex
	schema  *value.Schema
	data    []value.Row
	queries int
}

func (a *fakeAdapter) Name() string { return "fakeadapter" }

func (a *fakeAdapter) Capabilities() fed.Capabilities {
	return fed.Capabilities{Select: true, Joins: true, GroupBy: true, OrderBy: true, Limit: true, Subqueries: true}
}

func (a *fakeAdapter) TableSchema(path []string) (*value.Schema, error) { return a.schema, nil }

func (a *fakeAdapter) TableStats(path []string) (fed.TableStats, bool) {
	return fed.TableStats{RowCount: int64(len(a.data))}, true
}

func (a *fakeAdapter) Query(sql string, opts fed.QueryOptions) (*fed.QueryResult, error) {
	a.mu.Lock()
	a.queries++
	a.mu.Unlock()
	// Fresh copies: the engine casts result values in place.
	rows := value.NewRows(a.schema)
	for _, r := range a.data {
		c := make(value.Row, len(r))
		copy(c, r)
		rows.Append(c)
	}
	return &fed.QueryResult{Rows: rows}, nil
}

func (a *fakeAdapter) queryCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queries
}

// newResilientSetup builds an engine over a fake remote source with fault
// injection, no-op sleeps, a 2-failure breaker and a controllable clock.
func newResilientSetup(t *testing.T) (*Engine, *faults.Injector, *fakeAdapter, *time.Time) {
	t.Helper()
	inj := faults.New(7)
	inj.SetSleep(func(time.Duration) {})
	e := New(Config{
		ExtendedStorageDir: t.TempDir(),
		Faults:             inj,
		Retry:              faults.RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}},
		BreakerThreshold:   2,
		BreakerCooldown:    time.Second,
		SemiJoinThreshold:  1, // keep leaf SQL free of shipped IN-lists
	})
	now := time.Unix(1000, 0)
	e.SetClock(func() time.Time { return now })
	fake := &fakeAdapter{
		schema: value.NewSchema(
			value.Column{Name: "k", Kind: value.KindInt},
			value.Column{Name: "v", Kind: value.KindVarchar},
		),
		data: []value.Row{
			{value.NewInt(1), value.NewString("a")},
			{value.NewInt(2), value.NewString("b")},
			{value.NewInt(3), value.NewString("c")},
		},
	}
	e.Registry().Register("fakeadapter", func(config, credentials map[string]string) (fed.Adapter, error) {
		return fake, nil
	})
	exec1(t, e, `CREATE REMOTE SOURCE FAKE1 ADAPTER "fakeadapter" CONFIGURATION 'DSN=fake'`)
	exec1(t, e, `CREATE VIRTUAL TABLE V_T AT "FAKE1"."r"."r"."t"`)
	exec1(t, e, `CREATE TABLE loc (id BIGINT, name VARCHAR(10))`)
	exec1(t, e, `INSERT INTO loc VALUES (1,'uno'), (2,'dos'), (3,'tres')`)
	return e, inj, fake, &now
}

func TestRemoteQueryRetriesTransient(t *testing.T) {
	e, inj, fake, _ := newResilientSetup(t)
	inj.FailN("fed.query.fake1", 2)
	res := exec1(t, e, `SELECT k, v FROM V_T`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	m := e.Metrics.Snapshot()
	if m.RemoteRetries != 2 {
		t.Fatalf("RemoteRetries = %d, want 2", m.RemoteRetries)
	}
	if fake.queryCount() != 1 {
		t.Fatalf("adapter calls = %d, want 1 (injector failed before the adapter)", fake.queryCount())
	}
	if st := e.Health().Breaker("FAKE1").State(); st != faults.BreakerClosed {
		t.Fatalf("breaker = %v, want CLOSED after eventual success", st)
	}
}

func TestBreakerOpensServesFallbackAndRecovers(t *testing.T) {
	e, inj, fake, now := newResilientSetup(t)
	// Healthy run populates the fallback cache for this statement.
	exec1(t, e, `SELECT k, v FROM V_T`)
	calls := fake.queryCount()

	// Exhaust retries twice: threshold 2 consecutive failures opens the
	// breaker, but both statements still answer from the fallback cache.
	inj.FailN("fed.query.fake1", 100)
	for i := 0; i < 2; i++ {
		res := exec1(t, e, `SELECT k, v FROM V_T`)
		if len(res.Rows) != 3 {
			t.Fatalf("run %d rows = %v", i, res.Rows)
		}
		if !strings.Contains(res.Plan, "[fallback cache]") {
			t.Fatalf("run %d plan must mark the fallback:\n%s", i, res.Plan)
		}
	}
	if st := e.Health().Breaker("FAKE1").State(); st != faults.BreakerOpen {
		t.Fatalf("breaker = %v, want OPEN", st)
	}
	// Open breaker: served without touching the injector or adapter.
	checked := inj.Calls("fed.query")
	res := exec1(t, e, `SELECT k, v FROM V_T`)
	if len(res.Rows) != 3 || inj.Calls("fed.query") != checked {
		t.Fatalf("open breaker must serve fallback without remote calls")
	}
	// The health view reports the open circuit.
	hv := exec1(t, e, `SELECT source_name, breaker_state FROM M_REMOTE_SOURCE_HEALTH()`)
	if len(hv.Rows) != 1 || hv.Rows[0][0].String() != "FAKE1" || hv.Rows[0][1].String() != "OPEN" {
		t.Fatalf("M_REMOTE_SOURCE_HEALTH = %v", hv.Rows)
	}

	// Fault repaired + cooldown elapsed: the half-open probe closes the
	// circuit and results come from the adapter again.
	inj.Reset()
	*now = now.Add(2 * time.Second)
	res = exec1(t, e, `SELECT k, v FROM V_T`)
	if strings.Contains(res.Plan, "[fallback cache]") {
		t.Fatalf("recovered source must serve live rows:\n%s", res.Plan)
	}
	if st := e.Health().Breaker("FAKE1").State(); st != faults.BreakerClosed {
		t.Fatalf("breaker = %v, want CLOSED after probe", st)
	}
	if fake.queryCount() <= calls {
		t.Fatal("probe must have reached the adapter")
	}
	if m := e.Metrics.Snapshot(); m.RemoteFallbackHits != 3 {
		t.Fatalf("RemoteFallbackHits = %d, want 3", m.RemoteFallbackHits)
	}
}

func TestFallbackRespectsValidity(t *testing.T) {
	e, inj, _, now := newResilientSetup(t)
	e.SetRemoteCacheValidity(time.Minute)
	exec1(t, e, `SELECT k, v FROM V_T`)
	inj.FailN("fed.query.fake1", 100)
	// Entry aged out: the classified failure surfaces instead of stale rows.
	*now = now.Add(2 * time.Minute)
	_, err := e.ExecuteContext(context.Background(), `SELECT k, v FROM V_T`)
	if err == nil {
		t.Fatal("expired fallback must not be served")
	}
	if !faults.IsClassified(err) {
		t.Fatalf("error must stay classified: %v", err)
	}
}

func TestShipWholeDeclinesOnOpenBreaker(t *testing.T) {
	e, inj, _, _ := newResilientSetup(t)
	// Seed the per-leaf fallback with a mixed local/remote join (ship-whole
	// does not apply, so the leaf statement is what gets cached).
	mixed := `SELECT v, name FROM V_T, loc WHERE k = id`
	if res := exec1(t, e, mixed); len(res.Rows) != 3 {
		t.Fatalf("mixed rows = %v", res.Rows)
	}
	// Open the breaker with two exhausted statements that miss the cache.
	inj.FailN("fed.query.fake1", 100)
	for i := 0; i < 2; i++ {
		if _, err := e.ExecuteContext(context.Background(), `SELECT k FROM V_T WHERE k > 0`); err == nil {
			t.Fatal("uncached statement must fail while the source is down")
		}
	}
	if st := e.Health().Breaker("FAKE1").State(); st != faults.BreakerOpen {
		t.Fatalf("breaker = %v, want OPEN", st)
	}
	// A never-before-seen pure-remote statement: ship-whole declines on the
	// open breaker and per-leaf planning answers from the leaf fallback.
	before := e.Metrics.Snapshot().PlannerFallbacks
	res := exec1(t, e, `SELECT k, v FROM V_T`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !strings.Contains(res.Plan, "[fallback cache]") {
		t.Fatalf("leaf fallback must be marked:\n%s", res.Plan)
	}
	if after := e.Metrics.Snapshot().PlannerFallbacks; after != before+1 {
		t.Fatalf("PlannerFallbacks = %d, want %d", after, before+1)
	}

	// The mixed join keeps answering through its leaf fallback too.
	if res := exec1(t, e, mixed); len(res.Rows) != 3 {
		t.Fatalf("mixed rows during outage = %v", res.Rows)
	}
}

func TestResolveAllInDoubtDrainsWithRetries(t *testing.T) {
	inj := faults.New(3)
	inj.SetSleep(func(time.Duration) {})
	e := New(Config{
		ExtendedStorageDir: t.TempDir(),
		Faults:             inj,
		Retry:              faults.RetryPolicy{MaxAttempts: 4, Sleep: func(time.Duration) {}},
	})
	exec1(t, e, `CREATE TABLE psa (id BIGINT) USING EXTENDED STORAGE`)
	// Phase 2 fails at commit time and twice more during resolution.
	inj.FailN("txn.commit.extstore:psa", 1)
	tx := e.Begin()
	if _, err := e.ExecuteContext(context.Background(), `INSERT INTO psa VALUES (1)`, WithTx(tx)); err != nil {
		t.Fatal(err)
	}
	if err := e.CommitTx(tx); err != nil {
		t.Fatalf("decision was commit: %v", err)
	}
	iv := exec1(t, e, `SELECT transaction_id, decision, resolution_attempts FROM M_INDOUBT_TRANSACTIONS()`)
	if len(iv.Rows) != 1 || iv.Rows[0][1].String() != "COMMIT" {
		t.Fatalf("M_INDOUBT_TRANSACTIONS = %v", iv.Rows)
	}
	inj.FailN("txn.commit.extstore:psa", 2)
	if err := e.ResolveAllInDoubt(); err != nil {
		t.Fatalf("resolver must absorb two failed re-deliveries: %v", err)
	}
	if ind := e.TxnManager().InDoubt(); len(ind) != 0 {
		t.Fatalf("in-doubt after resolver: %v", ind)
	}
	res := exec1(t, e, `SELECT COUNT(*) FROM psa`)
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("committed row lost: %v", res.Rows[0][0])
	}
	if m := e.Metrics.Snapshot(); m.InDoubtResolved != 1 {
		t.Fatalf("InDoubtResolved = %d, want 1", m.InDoubtResolved)
	}
	// Branch drained: a second run is a no-op, not an error.
	if err := e.ResolveAllInDoubt(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteCallRetriesAndBreaks(t *testing.T) {
	e, inj, _, _ := newResilientSetup(t)
	// remoteCall is exercised through the same breaker as queries; check
	// the classified error surfaces once retries drain on a fatal fault.
	inj.FailFatal("fed.query.fake1", 1)
	_, err := e.ExecuteContext(context.Background(), `SELECT k FROM V_T WHERE k = 1`)
	if err == nil {
		t.Fatal("fatal fault must fail the statement")
	}
	if !faults.IsFatal(err) {
		t.Fatalf("fatal classification lost: %v", err)
	}
	// A single fatal failure is below the threshold: circuit stays closed
	// and the next statement succeeds without retries.
	if st := e.Health().Breaker("FAKE1").State(); st != faults.BreakerClosed {
		t.Fatalf("breaker = %v, want CLOSED", st)
	}
	if res := exec1(t, e, `SELECT k FROM V_T WHERE k = 1`); len(res.Rows) == 0 {
		t.Fatal("source must serve again")
	}
}

func TestClassifiedErrorsSurviveEngineWrapping(t *testing.T) {
	e, inj, _, _ := newResilientSetup(t)
	inj.FailN("fed.query.fake1", 100)
	_, err := e.ExecuteContext(context.Background(), `SELECT k, v FROM V_T WHERE v = 'zzz'`)
	if err == nil {
		t.Fatal("want error")
	}
	if !faults.IsTransient(err) || !faults.IsClassified(err) {
		t.Fatalf("classification lost through planner wrapping: %v", err)
	}
	if errors.Is(err, faults.ErrCircuitOpen) {
		t.Fatalf("first failure must be the injected fault, not a breaker rejection: %v", err)
	}
}

// fakeFuncAdapter adds a virtual-function surface to the fake adapter so
// the fed.call.* guard can be exercised without a Hadoop cluster.
type fakeFuncAdapter struct {
	*fakeAdapter
	cmu   sync.Mutex
	calls int
}

func (a *fakeFuncAdapter) CallFunction(config map[string]string, schema *value.Schema) (*value.Rows, error) {
	a.cmu.Lock()
	a.calls++
	a.cmu.Unlock()
	rows := value.NewRows(schema)
	rows.Append(value.Row{value.NewInt(1), value.NewString("a")})
	rows.Append(value.Row{value.NewInt(2), value.NewString("b")})
	return rows, nil
}

func (a *fakeFuncAdapter) callCount() int {
	a.cmu.Lock()
	defer a.cmu.Unlock()
	return a.calls
}

func TestRemoteCallRetriesTransient(t *testing.T) {
	// The injector is built inline (not via newResilientSetup) so the
	// guardcall coverage gate can statically tie the fed.call schedule
	// below to this engine's fault plan.
	inj := faults.New(7)
	inj.SetSleep(func(time.Duration) {})
	e := New(Config{
		ExtendedStorageDir: t.TempDir(),
		Faults:             inj,
		Retry:              faults.RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}},
		BreakerThreshold:   2,
		BreakerCooldown:    time.Second,
	})
	fake := &fakeAdapter{
		schema: value.NewSchema(
			value.Column{Name: "k", Kind: value.KindInt},
			value.Column{Name: "v", Kind: value.KindVarchar},
		),
	}
	ffa := &fakeFuncAdapter{fakeAdapter: fake}
	e.Registry().Register("fakefunc", func(config, credentials map[string]string) (fed.Adapter, error) {
		return ffa, nil
	})
	exec1(t, e, `CREATE REMOTE SOURCE FAKE2 ADAPTER "fakefunc" CONFIGURATION 'DSN=fake'`)
	exec1(t, e, `CREATE VIRTUAL FUNCTION SENSOR_ROWS()
		RETURNS TABLE (K BIGINT, V VARCHAR(10))
		CONFIGURATION 'job=sensor'
		AT FAKE2`)
	inj.FailN("fed.call.fake2", 2)
	res := exec1(t, e, `SELECT K, V FROM SENSOR_ROWS()`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if ffa.callCount() != 1 {
		t.Fatalf("adapter calls = %d, want 1 (injector failed before the adapter)", ffa.callCount())
	}
	m := e.Metrics.Snapshot()
	if m.RemoteRetries != 2 {
		t.Fatalf("RemoteRetries = %d, want 2", m.RemoteRetries)
	}
}
