package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"hana/internal/value"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	return New(Config{ExtendedStorageDir: t.TempDir()})
}

func exec1(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	res, err := e.ExecuteContext(context.Background(), sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE products (id BIGINT PRIMARY KEY, name VARCHAR(50), price DOUBLE)`)
	exec1(t, e, `INSERT INTO products VALUES (1, 'widget', 9.99), (2, 'gadget', 19.99), (3, 'doohickey', 4.99)`)
	res := exec1(t, e, `SELECT name, price FROM products WHERE price > 5 ORDER BY price DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].String() != "gadget" || res.Rows[1][0].String() != "widget" {
		t.Fatalf("order: %v", res.Rows)
	}
	if res.Schema.Cols[0].Name != "name" {
		t.Fatalf("schema = %v", res.Schema)
	}
}

func TestInsertColumnListAndNulls(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (a BIGINT, b VARCHAR(10), c DOUBLE)`)
	exec1(t, e, `INSERT INTO t (b, a) VALUES ('x', 7)`)
	res := exec1(t, e, `SELECT a, b, c FROM t`)
	if res.Rows[0][0].Int() != 7 || res.Rows[0][1].String() != "x" || !res.Rows[0][2].IsNull() {
		t.Fatalf("row = %v", res.Rows[0])
	}
	// NOT NULL enforcement.
	exec1(t, e, `CREATE TABLE nn (a BIGINT NOT NULL)`)
	if _, err := e.ExecuteContext(context.Background(), `INSERT INTO nn VALUES (NULL)`); err == nil {
		t.Fatal("NOT NULL must be enforced")
	}
}

func TestUpdateDelete(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (id BIGINT, v DOUBLE)`)
	exec1(t, e, `INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)`)
	res := exec1(t, e, `UPDATE t SET v = v + 1 WHERE id >= 2`)
	if res.Affected != 2 {
		t.Fatalf("updated %d", res.Affected)
	}
	res = exec1(t, e, `SELECT SUM(v) FROM t`)
	if res.Rows[0][0].Float() != 62 {
		t.Fatalf("sum = %v", res.Rows[0][0])
	}
	res = exec1(t, e, `DELETE FROM t WHERE id = 1`)
	if res.Affected != 1 {
		t.Fatal("delete")
	}
	res = exec1(t, e, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestSnapshotIsolationAcrossTransactions(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (id BIGINT)`)
	exec1(t, e, `INSERT INTO t VALUES (1)`)

	reader := e.Begin() // snapshot before writer commits
	writer := e.Begin()
	if _, err := e.ExecuteContext(context.Background(), `INSERT INTO t VALUES (2)`, WithTx(writer)); err != nil {
		t.Fatal(err)
	}
	// Writer sees own write; reader does not.
	res, err := e.ExecuteContext(context.Background(), `SELECT COUNT(*) FROM t`, WithTx(writer))
	if err != nil || res.Rows[0][0].Int() != 2 {
		t.Fatalf("writer view: %v %v", res, err)
	}
	res, err = e.ExecuteContext(context.Background(), `SELECT COUNT(*) FROM t`, WithTx(reader))
	if err != nil || res.Rows[0][0].Int() != 1 {
		t.Fatalf("reader view: %v %v", res, err)
	}
	if err := e.CommitTx(writer); err != nil {
		t.Fatal(err)
	}
	// Reader's snapshot still excludes the commit.
	res, _ = e.ExecuteContext(context.Background(), `SELECT COUNT(*) FROM t`, WithTx(reader))
	if res.Rows[0][0].Int() != 1 {
		t.Fatal("snapshot must be stable")
	}
	_ = e.CommitTx(reader)
	// New statement sees everything.
	res = exec1(t, e, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatal("post-commit view")
	}
}

func TestRollbackUndoesWrites(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (id BIGINT)`)
	tx := e.Begin()
	if _, err := e.ExecuteContext(context.Background(), `INSERT INTO t VALUES (1)`, WithTx(tx)); err != nil {
		t.Fatal(err)
	}
	if err := e.Rollback(tx); err != nil {
		t.Fatal(err)
	}
	res := exec1(t, e, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].Int() != 0 {
		t.Fatal("rollback must undo insert")
	}
}

func TestWriteWriteConflict(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (id BIGINT)`)
	exec1(t, e, `INSERT INTO t VALUES (1)`)
	t1 := e.Begin()
	t2 := e.Begin()
	if _, err := e.ExecuteContext(context.Background(), `DELETE FROM t WHERE id = 1`, WithTx(t1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecuteContext(context.Background(), `DELETE FROM t WHERE id = 1`, WithTx(t2)); err == nil {
		t.Fatal("second deleter must conflict")
	}
	_ = e.Rollback(t2)
	if err := e.CommitTx(t1); err != nil {
		t.Fatal(err)
	}
}

func TestJoinsAndAggregation(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE customer (c_custkey BIGINT, c_name VARCHAR(30), c_mktsegment VARCHAR(15))`)
	exec1(t, e, `CREATE TABLE orders (o_orderkey BIGINT, o_custkey BIGINT, o_total DOUBLE)`)
	exec1(t, e, `INSERT INTO customer VALUES (1,'alice','HOUSEHOLD'), (2,'bob','AUTO'), (3,'carol','HOUSEHOLD')`)
	exec1(t, e, `INSERT INTO orders VALUES (10,1,100), (11,1,50), (12,2,75), (13,3,20)`)

	// Paper §4.4 example query shape.
	res := exec1(t, e, `SELECT c_custkey, c_name, o_orderkey
		FROM customer JOIN orders ON c_custkey = o_custkey
		WHERE c_mktsegment = 'HOUSEHOLD' ORDER BY o_orderkey`)
	if len(res.Rows) != 3 {
		t.Fatalf("join rows = %v", res.Rows)
	}

	// Comma join + aggregation + having + alias order.
	res = exec1(t, e, `SELECT c_name, SUM(o_total) total, COUNT(*) n
		FROM customer, orders WHERE c_custkey = o_custkey
		GROUP BY c_name HAVING SUM(o_total) > 30 ORDER BY total DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("agg rows = %v", res.Rows)
	}
	if res.Rows[0][0].String() != "alice" || res.Rows[0][1].Float() != 150 || res.Rows[0][2].Int() != 2 {
		t.Fatalf("top group = %v", res.Rows[0])
	}
}

func TestLeftOuterJoinCountBug(t *testing.T) {
	// TPC-H Q13 shape: COUNT(col) over null-extended rows counts 0.
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE customer (c_custkey BIGINT)`)
	exec1(t, e, `CREATE TABLE orders (o_orderkey BIGINT, o_custkey BIGINT, o_comment VARCHAR(40))`)
	exec1(t, e, `INSERT INTO customer VALUES (1), (2)`)
	exec1(t, e, `INSERT INTO orders VALUES (10, 1, 'normal')`)
	res := exec1(t, e, `SELECT c_custkey, COUNT(o_orderkey) c_count
		FROM customer LEFT OUTER JOIN orders ON c_custkey = o_custkey
		GROUP BY c_custkey ORDER BY c_custkey`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].Int() != 1 || res.Rows[1][1].Int() != 0 {
		t.Fatalf("counts = %v", res.Rows)
	}
}

func TestInSubqueryAndExists(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE orders (o_orderkey BIGINT, o_prio VARCHAR(10))`)
	exec1(t, e, `CREATE TABLE lineitem (l_orderkey BIGINT, l_qty DOUBLE, l_commit DATE, l_receipt DATE)`)
	exec1(t, e, `INSERT INTO orders VALUES (1,'HIGH'), (2,'LOW'), (3,'HIGH')`)
	exec1(t, e, `INSERT INTO lineitem VALUES
		(1, 400, DATE '1994-01-01', DATE '1994-02-01'),
		(2, 10,  DATE '1994-01-05', DATE '1994-01-02'),
		(3, 100, DATE '1994-01-01', DATE '1994-01-01')`)

	// Uncorrelated IN subquery with HAVING (Q18 shape).
	res := exec1(t, e, `SELECT o_orderkey FROM orders WHERE o_orderkey IN
		(SELECT l_orderkey FROM lineitem GROUP BY l_orderkey HAVING SUM(l_qty) > 300)`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("IN subquery = %v", res.Rows)
	}

	// Correlated EXISTS (Q4 shape).
	res = exec1(t, e, `SELECT o_prio, COUNT(*) FROM orders WHERE EXISTS
		(SELECT * FROM lineitem WHERE l_orderkey = o_orderkey AND l_commit < l_receipt)
		GROUP BY o_prio ORDER BY o_prio`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "HIGH" || res.Rows[0][1].Int() != 1 {
		t.Fatalf("EXISTS = %v", res.Rows)
	}

	// NOT IN subquery (Q16 shape).
	res = exec1(t, e, `SELECT o_orderkey FROM orders WHERE o_orderkey NOT IN
		(SELECT l_orderkey FROM lineitem WHERE l_qty > 50) ORDER BY o_orderkey`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Fatalf("NOT IN = %v", res.Rows)
	}

	// NOT EXISTS.
	res = exec1(t, e, `SELECT COUNT(*) FROM orders WHERE NOT EXISTS
		(SELECT * FROM lineitem WHERE l_orderkey = o_orderkey AND l_qty > 50)`)
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("NOT EXISTS = %v", res.Rows)
	}
}

func TestScalarSubquery(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (v DOUBLE)`)
	exec1(t, e, `INSERT INTO t VALUES (1), (2), (3), (10)`)
	res := exec1(t, e, `SELECT COUNT(*) FROM t WHERE v > (SELECT AVG(v) FROM t)`)
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("scalar subquery = %v", res.Rows)
	}
}

func TestDerivedTable(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (g BIGINT, v DOUBLE)`)
	exec1(t, e, `INSERT INTO t VALUES (1,10),(1,20),(2,30)`)
	res := exec1(t, e, `SELECT AVG(s) FROM (SELECT g, SUM(v) s FROM t GROUP BY g) x`)
	if res.Rows[0][0].Float() != 30 {
		t.Fatalf("derived = %v", res.Rows)
	}
}

func TestDistinctAndCountDistinct(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (a BIGINT, b VARCHAR(5))`)
	exec1(t, e, `INSERT INTO t VALUES (1,'x'),(1,'x'),(2,'y'),(2,'z')`)
	res := exec1(t, e, `SELECT DISTINCT a FROM t`)
	if len(res.Rows) != 2 {
		t.Fatal("distinct")
	}
	res = exec1(t, e, `SELECT COUNT(DISTINCT b) FROM t`)
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("count distinct = %v", res.Rows)
	}
}

func TestExtendedStorageTable(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE psa (id BIGINT, payload VARCHAR(40)) USING EXTENDED STORAGE`)
	exec1(t, e, `INSERT INTO psa VALUES (1,'a'), (2,'b'), (3,'c')`)
	res := exec1(t, e, `SELECT COUNT(*) FROM psa`)
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("ext count = %v", res.Rows)
	}
	// Filter pushdown happens in the extended scan.
	res = exec1(t, e, `SELECT payload FROM psa WHERE id >= 2 ORDER BY id`)
	if len(res.Rows) != 2 || res.Rows[0][0].String() != "b" {
		t.Fatalf("ext filter = %v", res.Rows)
	}
	if !strings.Contains(res.Plan, "Extended Storage") {
		t.Fatalf("plan should mention extended storage:\n%s", res.Plan)
	}
	// DML on extended tables participates in transactions.
	exec1(t, e, `DELETE FROM psa WHERE id = 1`)
	res = exec1(t, e, `SELECT COUNT(*) FROM psa`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatal("ext delete")
	}
	exec1(t, e, `UPDATE psa SET payload = 'updated' WHERE id = 2`)
	res = exec1(t, e, `SELECT payload FROM psa WHERE id = 2`)
	if res.Rows[0][0].String() != "updated" {
		t.Fatalf("ext update = %v", res.Rows)
	}
}

func TestExtendedStorageRollback(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE psa (id BIGINT) USING EXTENDED STORAGE`)
	tx := e.Begin()
	if _, err := e.ExecuteContext(context.Background(), `INSERT INTO psa VALUES (1)`, WithTx(tx)); err != nil {
		t.Fatal(err)
	}
	_ = e.Rollback(tx)
	res := exec1(t, e, `SELECT COUNT(*) FROM psa`)
	if res.Rows[0][0].Int() != 0 {
		t.Fatal("aborted extended insert must be invisible")
	}
}

func TestHybridTableAndAging(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE sales (id BIGINT, amount DOUBLE, sale_date DATE, cold BOOLEAN)
		PARTITION BY RANGE (sale_date) (
			PARTITION VALUES < DATE '2014-01-01' USING EXTENDED STORAGE,
			PARTITION OTHERS)
		WITH AGING ON (cold)`)
	exec1(t, e, `INSERT INTO sales VALUES
		(1, 10, DATE '2013-05-01', FALSE),
		(2, 20, DATE '2014-06-01', FALSE),
		(3, 30, DATE '2014-07-01', TRUE),
		(4, 40, DATE '2015-01-01', FALSE)`)

	// Row routing: id 1 went cold by range.
	parts, err := e.PartitionRowCounts("sales")
	if err != nil {
		t.Fatal(err)
	}
	if parts[0].Rows != 1 || !parts[0].Cold || parts[1].Rows != 3 {
		t.Fatalf("partition counts = %+v", parts)
	}

	// Query spans both partitions (Union Plan).
	res := exec1(t, e, `SELECT SUM(amount) FROM sales`)
	if res.Rows[0][0].Float() != 100 {
		t.Fatalf("sum = %v", res.Rows)
	}
	if !strings.Contains(res.Plan, "Union Plan") {
		t.Fatalf("expected union plan:\n%s", res.Plan)
	}

	// Aging moves the flagged row (id 3) to cold storage.
	moved, err := e.RunAging("sales")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("moved = %d", moved)
	}
	parts, _ = e.PartitionRowCounts("sales")
	if parts[0].Rows != 2 || parts[1].Rows != 2 {
		t.Fatalf("post-aging counts = %+v", parts)
	}
	// Data is intact.
	res = exec1(t, e, `SELECT SUM(amount) FROM sales`)
	if res.Rows[0][0].Float() != 100 {
		t.Fatalf("post-aging sum = %v", res.Rows)
	}
	// Partition pruning: predicate restricted to hot range should not touch cold.
	res = exec1(t, e, `SELECT SUM(amount) FROM sales WHERE sale_date >= DATE '2014-01-01' AND cold = FALSE`)
	if res.Rows[0][0].Float() != 60 {
		t.Fatalf("pruned sum = %v", res.Rows)
	}
}

func TestFlexibleTable(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE FLEXIBLE TABLE events (id BIGINT)`)
	exec1(t, e, `INSERT INTO events (id) VALUES (1)`)
	// Insert with a brand-new column extends the schema on the fly.
	exec1(t, e, `INSERT INTO events (id, source) VALUES (2, 'sensor-7')`)
	res := exec1(t, e, `SELECT id, source FROM events ORDER BY id`)
	if len(res.Rows) != 2 {
		t.Fatal("rows")
	}
	if !res.Rows[0][1].IsNull() || res.Rows[1][1].String() != "sensor-7" {
		t.Fatalf("flexible rows = %v", res.Rows)
	}
}

func TestRowStoreTable(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE ROW TABLE config (k VARCHAR(20) PRIMARY KEY, v VARCHAR(20))`)
	exec1(t, e, `INSERT INTO config VALUES ('a','1'), ('b','2')`)
	res := exec1(t, e, `SELECT v FROM config WHERE k = 'b'`)
	if res.Rows[0][0].String() != "2" {
		t.Fatal("row store point query")
	}
	if !strings.Contains(res.Plan, "Row Scan") {
		t.Fatalf("plan = %s", res.Plan)
	}
}

func TestInsertSelectBetweenStores(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE hot (id BIGINT, v DOUBLE)`)
	exec1(t, e, `CREATE TABLE archive (id BIGINT, v DOUBLE) USING EXTENDED STORAGE`)
	exec1(t, e, `INSERT INTO hot VALUES (1,1),(2,2),(3,3)`)
	res := exec1(t, e, `INSERT INTO archive SELECT id, v FROM hot WHERE id > 1`)
	if res.Affected != 2 {
		t.Fatal("insert-select")
	}
	res = exec1(t, e, `SELECT COUNT(*) FROM archive`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatal("archive count")
	}
}

func TestDropTable(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (a BIGINT)`)
	exec1(t, e, `DROP TABLE t`)
	if _, err := e.ExecuteContext(context.Background(), `SELECT * FROM t`); err == nil {
		t.Fatal("dropped table must not resolve")
	}
	exec1(t, e, `DROP TABLE IF EXISTS t`)
}

func TestExplain(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (a BIGINT)`)
	exec1(t, e, `INSERT INTO t VALUES (1)`)
	res := exec1(t, e, `EXPLAIN SELECT a FROM t WHERE a = 1`)
	if !strings.Contains(res.Plan, "Column Scan") || !strings.Contains(res.Plan, "Project") {
		t.Fatalf("explain = %s", res.Plan)
	}
}

func TestAnalyzeBuildsHistograms(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (a BIGINT, s VARCHAR(10))`)
	for i := 0; i < 50; i++ {
		exec1(t, e, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'v%d')`, i%10, i%3))
	}
	if err := e.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	meta, _ := e.Catalog().Table("t")
	if meta.Stats.RowCount != 50 {
		t.Fatalf("rowcount = %d", meta.Stats.RowCount)
	}
	h := meta.Histogram("a")
	if h == nil || h.Total != 50 {
		t.Fatal("histogram missing")
	}
	if est := h.EstimateEq(value.NewInt(3)); est < 3 || est > 8 {
		t.Fatalf("estimate = %f", est)
	}
}

func TestCaseExpressionQuery(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE o (prio VARCHAR(10))`)
	exec1(t, e, `INSERT INTO o VALUES ('1-URGENT'), ('2-HIGH'), ('5-LOW')`)
	res := exec1(t, e, `SELECT SUM(CASE WHEN prio = '1-URGENT' OR prio = '2-HIGH' THEN 1 ELSE 0 END) FROM o`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("case agg = %v", res.Rows)
	}
}

func TestGroupByExpression(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE ts (d DATE, v DOUBLE)`)
	exec1(t, e, `INSERT INTO ts VALUES (DATE '2014-01-05', 1), (DATE '2014-03-05', 2), (DATE '2015-01-05', 4)`)
	res := exec1(t, e, `SELECT YEAR(d), SUM(v) FROM ts GROUP BY YEAR(d) ORDER BY YEAR(d)`)
	if len(res.Rows) != 2 || res.Rows[0][1].Float() != 3 || res.Rows[1][1].Float() != 4 {
		t.Fatalf("group expr = %v", res.Rows)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	e := newTestEngine(t)
	res := exec1(t, e, `SELECT 1 + 2, UPPER('x')`)
	if res.Rows[0][0].Int() != 3 || res.Rows[0][1].String() != "X" {
		t.Fatalf("no-from select = %v", res.Rows)
	}
}

func TestTableAliases(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE n (nk BIGINT, name VARCHAR(20))`)
	exec1(t, e, `INSERT INTO n VALUES (1,'a'), (2,'b')`)
	// Self join with aliases.
	res := exec1(t, e, `SELECT x.name, y.name FROM n x, n y WHERE x.nk = 1 AND y.nk = 2`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "a" || res.Rows[0][1].String() != "b" {
		t.Fatalf("self join = %v", res.Rows)
	}
}
