package engine

import (
	"fmt"
	"sort"
	"strings"

	"hana/internal/catalog"
	"hana/internal/diskstore"
	"hana/internal/exec"
	"hana/internal/expr"
	"hana/internal/fed"
	"hana/internal/sqlparse"
	"hana/internal/value"
)

// planNode is one node of the EXPLAIN tree.
type planNode struct {
	label    string
	children []*planNode
}

func node(label string, children ...*planNode) *planNode {
	return &planNode{label: label, children: children}
}

func (n *planNode) render(b *strings.Builder, indent int) {
	for i := 0; i < indent; i++ {
		b.WriteString("  ")
	}
	b.WriteString(n.label)
	b.WriteByte('\n')
	for _, c := range n.children {
		c.render(b, indent+1)
	}
}

// String renders the plan tree.
func (n *planNode) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

// relation is the planner's intermediate: either already-materialized local
// rows, a shippable remote query under construction, or an extended-storage
// scan under construction. Conjuncts attach to unrealized relations so the
// chosen federated strategy can push them down.
type relation struct {
	schema *value.Schema
	rows   []value.Row // local, materialized (nil unless local)
	// batches holds a vectorized local scan's output still in columnar
	// form; rowsOf materializes it on demand. At most one of rows/batches
	// is set for a local relation.
	batches []*value.Batch
	local   bool

	remote *remoteRel
	ext    *extRel
	dst    *distRel

	est  float64
	node *planNode
}

// rowsOf returns the relation's materialized rows, decoding batches on
// first use. Batch payloads decode in batch order with ascending selection
// vectors, so the result is byte-identical to the row-path scan.
func (r *relation) rowsOf() []value.Row {
	if r.batches != nil {
		rows := make([]value.Row, 0, r.batchRowCount())
		for _, b := range r.batches {
			rows = append(rows, b.MaterializeRows()...)
		}
		r.rows, r.batches = rows, nil
	}
	return r.rows
}

func (r *relation) batchRowCount() int {
	n := 0
	for _, b := range r.batches {
		n += b.Len()
	}
	return n
}

// joinSideOf hands a realized local relation to the parallel hash join
// without forcing batch materialization: columnar scans stay columnar and
// the join boxes only the rows it emits.
func joinSideOf(r *relation) exec.JoinSide {
	if r.batches != nil {
		return exec.JoinSide{Batches: r.batches}
	}
	return exec.JoinSide{Rows: r.rowsOf()}
}

// rowCount returns the realized relation's row count without forcing batch
// materialization.
func (r *relation) rowCount() int {
	if r.batches != nil {
		return r.batchRowCount()
	}
	return len(r.rows)
}

// remoteRel is a query being assembled for one SDA remote source.
type remoteRel struct {
	source  string
	adapter fed.Adapter
	// tables are the remote objects with their local bindings.
	tables []remoteTable
	conjs  []expr.Expr
}

type remoteTable struct {
	path    []string
	binding string
	schema  *value.Schema // qualified by binding
}

// extRel is a pending scan over extended-storage (cold) partitions plus the
// hot fragments of the same hybrid table.
type extRel struct {
	t     *storedTable
	conjs []expr.Expr
}

// addConj pushes a predicate into the unrealized relation.
func (r *relation) addConj(c expr.Expr) {
	switch {
	case r.remote != nil:
		r.remote.conjs = append(r.remote.conjs, c)
	case r.ext != nil:
		r.ext.conjs = append(r.ext.conjs, c)
	case r.dst != nil:
		r.dst.conjs = append(r.dst.conjs, c)
	}
}

// covers reports whether every column in the expression resolves in the
// relation's schema.
func (r *relation) covers(e expr.Expr) bool {
	for _, c := range expr.Columns(e) {
		if r.schema.Find(c) < 0 {
			return false
		}
	}
	return true
}

// realize turns the relation into materialized local rows.
func (p *planner) realize(r *relation) error {
	switch {
	case r.local:
		return nil
	case r.remote != nil:
		return p.realizeRemote(r)
	case r.ext != nil:
		return p.realizeExt(r)
	case r.dst != nil:
		return p.realizeDist(r)
	}
	return fmt.Errorf("empty relation")
}

// realizeRemote ships the assembled query to the remote source ("Remote
// Scan" in SDA terms) and materializes the result as a transient virtual
// table.
func (p *planner) realizeRemote(r *relation) error {
	rr := r.remote
	sel := &sqlparse.SelectStmt{Limit: -1}
	for _, col := range r.schema.Cols {
		sel.Items = append(sel.Items, sqlparse.SelectItem{Expr: expr.Col(col.Name)})
	}
	var from sqlparse.TableExpr
	for _, t := range rr.tables {
		ref := &sqlparse.TableRef{Parts: t.path, Alias: t.binding}
		if from == nil {
			from = ref
		} else {
			from = &sqlparse.JoinExpr{Type: sqlparse.JoinCross, L: from, R: ref}
		}
	}
	sel.From = from
	sel.Where = expr.And(cloneAll(rr.conjs)...)
	sql := sqlparse.RenderSelect(sel)

	opts := p.remoteOpts(sel.Where != nil)
	res, err := p.e.remoteQuery(p.ctx, rr.source, rr.adapter, sql, opts)
	if err != nil {
		return fmt.Errorf("remote source %s: %w", rr.source, err)
	}
	p.e.Metrics.RemoteQueries.Inc()
	p.e.Metrics.RemoteRowsFetched.Add(int64(res.Rows.Len()))
	if res.FromCache {
		p.e.Metrics.RemoteCacheHits.Inc()
	}
	label := fmt.Sprintf("Remote Row Scan [%s] (%d rows)", rr.source, res.Rows.Len())
	if res.FromCache {
		label += " [remote cache hit]"
	}
	if res.FromFallback {
		label += " [fallback cache]"
	}
	r.node = node(label, node("shipped: "+sql))
	if err := conformRows(res.Rows, r.schema); err != nil {
		return fmt.Errorf("remote source %s returned incompatible rows: %w", rr.source, err)
	}
	r.rows = res.Rows.Data
	r.local = true
	r.remote = nil
	r.est = float64(len(r.rows))
	return nil
}

// remoteOpts derives QueryOptions from the session hint and engine config
// (§4.4: hint + enable_remote_cache + predicate-only rule; the adapter
// enforces remote_cache_validity).
func (p *planner) remoteOpts(hasPredicates bool) fed.QueryOptions {
	enabled, validity := p.e.remoteCacheCfg()
	use := p.useCache && enabled && hasPredicates
	return fed.QueryOptions{UseCache: use, Validity: validity}
}

// conformRows casts remote result rows to the expected schema (SDA
// "applies the required data type conversions").
func conformRows(rows *value.Rows, want *value.Schema) error {
	if rows.Schema.Len() != want.Len() {
		return fmt.Errorf("arity %d, want %d", rows.Schema.Len(), want.Len())
	}
	for i, r := range rows.Data {
		for j := range r {
			v, err := value.Cast(r[j], want.Cols[j].Kind)
			if err != nil {
				return err
			}
			rows.Data[i][j] = v
		}
	}
	return nil
}

// realizeExt executes the pending extended-storage scan: predicates are
// pushed into the scan (zone-map ranges on cold chunks), hot and cold
// fragments are combined with a union ("Union Plan"), and hot-only or
// cold-only access is pruned via the partition bounds.
func (p *planner) realizeExt(r *relation) error {
	er := r.ext
	t := er.t
	// Bind pushed conjuncts against the (qualified) leaf schema.
	var bound []expr.Expr
	for _, c := range er.conjs {
		bc, err := bindToSchema(c, r.schema)
		if err != nil {
			return err
		}
		bound = append(bound, bc)
	}
	pred := expr.And(bound...)
	ranges, inCount := extractRanges(bound, t.meta.Schema)

	// Hot and cold fragments scan in parallel: in-memory partitions as
	// row-range morsels, extended partitions as whole-partition morsels,
	// all dispatched through the shared pool and reassembled in partition
	// order (identical to the serial scan order).
	partOrd := -1
	if t.meta.PartitionBy != "" {
		partOrd = t.meta.Schema.Find(t.meta.PartitionBy)
	}
	var survived []*partition
	var usedCold, usedHot bool
	for _, part := range t.parts {
		if partOrd >= 0 && prunePartition(part, t, partOrd, ranges) {
			continue
		}
		survived = append(survived, part)
		if part.cold {
			usedCold = true
		} else {
			usedHot = true
		}
	}
	out, perPart, err := p.scanParts(survived, ranges, pred)
	if err != nil {
		return err
	}
	var hotRows, coldRows int
	for i, part := range survived {
		if part.cold {
			coldRows += perPart[i]
		} else {
			hotRows += perPart[i]
		}
	}
	// Plan labeling + strategy metrics.
	switch {
	case usedHot && usedCold:
		label := fmt.Sprintf("Union Plan [%s] (hot %d ∪ cold %d rows scanned)", t.meta.Name, hotRows, coldRows)
		if inCount > 0 {
			label += fmt.Sprintf(" + Semijoin (%d values shipped)", inCount)
		}
		r.node = node(label)
		p.e.Metrics.UnionPlansChosen.Inc()
		p.plan.Note("chose union plan for %s: hot %d ∪ cold %d rows", t.meta.Name, hotRows, coldRows)
		if inCount > 0 {
			p.e.Metrics.SemiJoinsChosen.Inc()
		}
	case usedCold && inCount > 0:
		r.node = node(fmt.Sprintf("Semijoin → Extended Storage [%s] (%d values shipped, %d rows scanned)", t.meta.Name, inCount, coldRows))
		p.e.Metrics.SemiJoinsChosen.Inc()
		p.plan.Note("chose semijoin → extended storage for %s: %d values shipped", t.meta.Name, inCount)
	case usedCold:
		r.node = node(fmt.Sprintf("Remote Scan → Extended Storage [%s] (%d rows scanned)", t.meta.Name, coldRows))
		p.e.Metrics.RemoteScansChosen.Inc()
		p.plan.Note("chose remote scan → extended storage for %s: %d rows", t.meta.Name, coldRows)
	default:
		r.node = node(fmt.Sprintf("Column Scan [%s] (%d rows)", t.meta.Name, hotRows))
	}
	if pred != nil {
		r.node.children = append(r.node.children, node("pushed filter: "+pred.SQL()))
	}
	r.rows = out
	r.local = true
	r.ext = nil
	r.est = float64(len(out))
	return nil
}

// prunePartition reports whether the partition's value range provably
// misses the pushed ranges on the partitioning column.
func prunePartition(part *partition, t *storedTable, partOrd int, ranges map[int]diskstore.Range) bool {
	rg, ok := ranges[partOrd]
	if !ok {
		return false
	}
	// Determine the partition's [lower, upper) window from the ordered
	// bound list.
	var lower, upper *value.Value
	var prev *value.Value
	for i := range t.meta.Partitions {
		pm := &t.meta.Partitions[i]
		if pm.Others {
			continue
		}
		b := pm.UpperBound
		if t.parts[i] == part {
			lower, upper = prev, &b
		}
		prev = &b
	}
	if part.meta.Others {
		lower, upper = prev, nil
	}
	if upper != nil && rg.Lo != nil && value.Compare(*upper, *rg.Lo) <= 0 {
		return true
	}
	if lower != nil && rg.Hi != nil && value.Compare(*lower, *rg.Hi) > 0 {
		return true
	}
	return false
}

// extractRanges derives zone-map ranges per column ordinal from bound
// conjuncts (col CMP literal, BETWEEN, IN-lists). It also reports how many
// IN-list values were pushed (the semijoin strategy's shipped values).
func extractRanges(conjs []expr.Expr, schema *value.Schema) (map[int]diskstore.Range, int) {
	ranges := map[int]diskstore.Range{}
	inCount := 0
	setLo := func(ord int, v value.Value) {
		r := ranges[ord]
		if r.Lo == nil || value.Compare(v, *r.Lo) > 0 {
			r.Lo = &v
		}
		ranges[ord] = r
	}
	setHi := func(ord int, v value.Value) {
		r := ranges[ord]
		if r.Hi == nil || value.Compare(v, *r.Hi) < 0 {
			r.Hi = &v
		}
		ranges[ord] = r
	}
	for _, c := range conjs {
		switch n := c.(type) {
		case *expr.BinOp:
			col, lit, op := colOpLiteral(n)
			if col == nil {
				continue
			}
			ord := schema.Find(col.Name)
			if ord < 0 {
				continue
			}
			switch op {
			case expr.OpEq:
				setLo(ord, lit)
				setHi(ord, lit)
			case expr.OpGt, expr.OpGe:
				setLo(ord, lit)
			case expr.OpLt, expr.OpLe:
				setHi(ord, lit)
			}
		case *expr.Between:
			col, ok := n.E.(*expr.ColRef)
			if !ok || n.Negate {
				continue
			}
			ord := schema.Find(col.Name)
			if ord < 0 {
				continue
			}
			if lo, ok := n.Lo.(*expr.Literal); ok {
				setLo(ord, lo.Val)
			}
			if hi, ok := n.Hi.(*expr.Literal); ok {
				setHi(ord, hi.Val)
			}
		case *expr.In:
			if n.Negate {
				continue
			}
			col, ok := n.E.(*expr.ColRef)
			if !ok {
				continue
			}
			ord := schema.Find(col.Name)
			if ord < 0 {
				continue
			}
			var vals []value.Value
			allLit := true
			for _, el := range n.List {
				if l, ok := el.(*expr.Literal); ok {
					vals = append(vals, l.Val)
				} else {
					allLit = false
					break
				}
			}
			if !allLit || len(vals) == 0 {
				continue
			}
			inCount += len(vals)
			sort.Slice(vals, func(i, j int) bool { return value.Compare(vals[i], vals[j]) < 0 })
			setLo(ord, vals[0])
			setHi(ord, vals[len(vals)-1])
		}
	}
	return ranges, inCount
}

// colOpLiteral decomposes col OP literal (or literal OP col, flipped).
func colOpLiteral(b *expr.BinOp) (*expr.ColRef, value.Value, expr.Op) {
	if !b.Op.Comparison() {
		return nil, value.Null, expr.OpInvalid
	}
	if c, ok := b.L.(*expr.ColRef); ok {
		if l, ok := b.R.(*expr.Literal); ok {
			return c, l.Val, b.Op
		}
	}
	if c, ok := b.R.(*expr.ColRef); ok {
		if l, ok := b.L.(*expr.Literal); ok {
			flip := map[expr.Op]expr.Op{
				expr.OpLt: expr.OpGt, expr.OpLe: expr.OpGe,
				expr.OpGt: expr.OpLt, expr.OpGe: expr.OpLe,
				expr.OpEq: expr.OpEq, expr.OpNe: expr.OpNe,
			}
			return c, l.Val, flip[b.Op]
		}
	}
	return nil, value.Null, expr.OpInvalid
}

func cloneAll(es []expr.Expr) []expr.Expr {
	out := make([]expr.Expr, len(es))
	for i, e := range es {
		out[i] = expr.Clone(e)
	}
	return out
}

// iterOf exposes a realized relation as an executor input: a BatchSlice
// (batch-capable) for vectorized scans, a row Slice otherwise.
func iterOf(r *relation) exec.Iter {
	if r.batches != nil {
		return exec.NewBatchSlice(r.schema, r.batches)
	}
	return exec.NewSlice(r.schema, r.rows)
}

// estimateLeaf computes the expected row count of a leaf after its pushed
// predicates, using q-error histograms when available and textbook default
// selectivities otherwise.
func estimateLeaf(meta *catalog.TableMeta, baseRows int64, conjs []expr.Expr) float64 {
	est := float64(baseRows)
	for _, c := range conjs {
		sel := 0.25
		switch n := c.(type) {
		case *expr.BinOp:
			col, lit, op := colOpLiteral(n)
			if col != nil && meta != nil {
				if h := meta.Histogram(col.Name); h != nil && h.Total > 0 {
					switch op {
					case expr.OpEq:
						sel = h.Selectivity(h.EstimateEq(lit))
					case expr.OpGt, expr.OpGe:
						sel = h.Selectivity(h.EstimateRange(&lit, nil))
					case expr.OpLt, expr.OpLe:
						sel = h.Selectivity(h.EstimateRange(nil, &lit))
					default:
						sel = 0.5
					}
					break
				}
			}
			if op == expr.OpEq {
				sel = 0.05
			} else {
				sel = 0.33
			}
		case *expr.Between:
			sel = 0.25
		case *expr.In:
			sel = 0.1
		case *expr.Like:
			sel = 0.25
		}
		est *= sel
	}
	if est < 1 {
		est = 1
	}
	return est
}
