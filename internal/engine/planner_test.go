package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"hana/internal/value"
)

func TestTableRelocationStrategy(t *testing.T) {
	e := New(Config{ExtendedStorageDir: t.TempDir(), SemiJoinThreshold: 8})
	exec1(t, e, `CREATE TABLE big_local (k BIGINT, v DOUBLE)`)
	var rows []value.Row
	for i := 0; i < 1000; i++ {
		rows = append(rows, value.Row{value.NewInt(int64(i % 50)), value.NewDouble(float64(i))})
	}
	if err := e.BulkLoad("big_local", rows); err != nil {
		t.Fatal(err)
	}
	_ = e.Analyze("big_local")
	exec1(t, e, `CREATE TABLE cold_fact (k BIGINT, amount DOUBLE) USING EXTENDED STORAGE`)
	var facts []value.Row
	for i := 0; i < 5000; i++ {
		facts = append(facts, value.Row{value.NewInt(int64(i % 50)), value.NewDouble(1)})
	}
	if err := e.BulkLoad("cold_fact", facts); err != nil {
		t.Fatal(err)
	}
	// Local side far above the semijoin threshold → relocation strategy.
	res := exec1(t, e, `SELECT SUM(amount) FROM big_local, cold_fact WHERE big_local.k = cold_fact.k`)
	if res.Rows[0][0].Float() != 100000 { // 1000 local × 100 matching facts per key / 50 keys... verify via count
		// Each local row matches 5000/50 = 100 facts → 1000*100 rows, each amount 1.
		t.Fatalf("relocated join sum = %v", res.Rows[0][0])
	}
	m := e.Metrics.Snapshot()
	if m.RelocationsChosen == 0 {
		t.Fatalf("relocation not chosen:\n%s", res.Plan)
	}
	if !strings.Contains(res.Plan, "Table Relocation") {
		t.Fatalf("plan must label relocation:\n%s", res.Plan)
	}
}

func TestRemoteLikeAndInPushdown(t *testing.T) {
	e, srv := newFederatedSetup(t)
	res := exec1(t, e, `SELECT c_custkey FROM V_CUSTOMER
		WHERE c_name LIKE 'C0%' AND c_custkey IN (1, 2, 3, 44)`)
	// C01..C09 ∩ {1,2,3,44} = {1,2,3}.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !strings.Contains(res.Plan, "LIKE") || !strings.Contains(res.Plan, "IN") {
		t.Fatalf("predicates must ship:\n%s", res.Plan)
	}
	// The shipped statement ran remotely (no local filtering of all rows).
	if srv.MR.Counters.MapInputRecords.Load() == 0 {
		t.Fatal("remote scan should have executed")
	}
}

func TestRemoteErrorPropagates(t *testing.T) {
	e, _ := newFederatedSetup(t)
	// Reference a column that does not exist remotely.
	if _, err := e.ExecuteContext(context.Background(), `SELECT no_such_col FROM V_CUSTOMER`); err == nil {
		t.Fatal("remote resolution error must propagate")
	}
}

func TestUnknownTableFunction(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.ExecuteContext(context.Background(), `SELECT * FROM NOT_A_FUNCTION()`); err == nil {
		t.Fatal("unknown function must error")
	}
}

func TestOrderByExpression(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (a BIGINT, b BIGINT)`)
	exec1(t, e, `INSERT INTO t VALUES (1, 9), (2, 5), (3, 1)`)
	res := exec1(t, e, `SELECT a FROM t ORDER BY a + b DESC`)
	if res.Rows[0][0].Int() != 1 || res.Rows[2][0].Int() != 3 {
		t.Fatalf("order by expr = %v", res.Rows)
	}
}

func TestBetweenDatePushdownToExtended(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE log (id BIGINT, d DATE) USING EXTENDED STORAGE`)
	var rows []value.Row
	base, _ := value.ParseDate("2014-01-01")
	for i := 0; i < 8192; i++ {
		rows = append(rows, value.Row{value.NewInt(int64(i)), value.NewDate(base.I + int64(i/32))})
	}
	if err := e.BulkLoad("log", rows); err != nil {
		t.Fatal(err)
	}
	ext, _ := e.ExtendedStore()
	before := ext.Stats.ChunksSkipped.Load()
	res := exec1(t, e, `SELECT COUNT(*) FROM log WHERE d BETWEEN DATE '2014-01-05' AND DATE '2014-01-06'`)
	if res.Rows[0][0].Int() != 64 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	if ext.Stats.ChunksSkipped.Load() <= before {
		t.Fatal("zone maps should skip chunks for the date range")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE counter (id BIGINT, n BIGINT)`)
	exec1(t, e, `INSERT INTO counter VALUES (1, 0)`)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := e.ExecuteContext(context.Background(), fmt.Sprintf(`INSERT INTO counter VALUES (%d, 1)`, 100+w*10+i)); err != nil {
					errs <- err
					return
				}
				if _, err := e.ExecuteContext(context.Background(), `SELECT COUNT(*), SUM(n) FROM counter`); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res := exec1(t, e, `SELECT COUNT(*) FROM counter`)
	if res.Rows[0][0].Int() != 81 {
		t.Fatalf("final count = %v", res.Rows[0][0])
	}
}

func TestSemijoinSkippedWhenLocalTooLarge(t *testing.T) {
	e, _ := newFederatedSetup(t)
	// Lower the threshold so NATION (3 rows) still qualifies but a larger
	// build side would not; verify the IN-list does not explode.
	res := exec1(t, e, `SELECT COUNT(*) FROM nation, V_CUSTOMER WHERE n_nationkey = c_nationkey`)
	if res.Rows[0][0].Int() == 0 {
		t.Fatal("join returned nothing")
	}
	// The shipped statement may include an IN(...) over 3 nation keys.
	m := e.Metrics.Snapshot()
	if m.RemoteQueries == 0 {
		t.Fatal("no remote query ran")
	}
}

func TestInsertSelectFromRemote(t *testing.T) {
	e, _ := newFederatedSetup(t)
	exec1(t, e, `CREATE TABLE local_copy (k BIGINT, n VARCHAR(10))`)
	res := exec1(t, e, `INSERT INTO local_copy SELECT c_custkey, c_name FROM V_CUSTOMER WHERE c_custkey <= 5`)
	if res.Affected != 5 {
		t.Fatalf("copied %d", res.Affected)
	}
	res = exec1(t, e, `SELECT COUNT(*) FROM local_copy`)
	if res.Rows[0][0].Int() != 5 {
		t.Fatal("rows")
	}
}

func TestHintIgnoredOnLocalQuery(t *testing.T) {
	e := newTestEngine(t)
	exec1(t, e, `CREATE TABLE t (a BIGINT)`)
	exec1(t, e, `INSERT INTO t VALUES (1)`)
	// The hint is legal but has no effect without a remote source.
	res := exec1(t, e, `SELECT a FROM t WHERE a = 1 WITH HINT (USE_REMOTE_CACHE)`)
	if len(res.Rows) != 1 {
		t.Fatal("hinted local query")
	}
}
