package engine

import (
	"context"

	"encoding/json"
	"fmt"
	"strings"

	"hana/internal/catalog"
	"hana/internal/colstore"
	"hana/internal/expr"
	"hana/internal/rowstore"
	"hana/internal/sqlparse"
	"hana/internal/txn"
	"hana/internal/value"
)

func (e *Engine) createTable(st *sqlparse.CreateTableStmt) (*Result, error) {
	schema := &value.Schema{}
	pk := -1
	for i, cd := range st.Cols {
		schema.Cols = append(schema.Cols, value.Column{
			Name:     cd.Name,
			Kind:     cd.Kind,
			Nullable: !cd.NotNull,
		})
		if cd.PrimKey {
			if pk >= 0 {
				return nil, fmt.Errorf("multiple primary key columns are not supported")
			}
			pk = i
		}
	}
	meta := &catalog.TableMeta{
		Name:        st.Name,
		Schema:      schema,
		Flexible:    st.Flexible,
		AgingColumn: st.AgingColumn,
		PrimaryKey:  pk,
	}
	switch st.Storage {
	case sqlparse.StorageRow:
		meta.Placement = catalog.PlacementRow
	case sqlparse.StorageExtended:
		meta.Placement = catalog.PlacementExtended
	default:
		meta.Placement = catalog.PlacementColumn
	}
	if len(st.Partitions) > 0 {
		meta.Placement = catalog.PlacementHybrid
		meta.PartitionBy = st.PartitionBy
		if schema.Find(st.PartitionBy) < 0 {
			return nil, fmt.Errorf("partition column %s not in table schema", st.PartitionBy)
		}
		for _, pd := range st.Partitions {
			pm := catalog.PartitionMeta{Others: pd.Others, Cold: pd.Storage == sqlparse.StorageExtended}
			if pd.Bound != nil {
				v, err := pd.Bound.Eval(nil)
				if err != nil {
					return nil, fmt.Errorf("partition bound must be a literal: %w", err)
				}
				pm.UpperBound = v
			}
			meta.Partitions = append(meta.Partitions, pm)
		}
	}
	if st.AgingColumn != "" {
		ord := schema.Find(st.AgingColumn)
		if ord < 0 {
			return nil, fmt.Errorf("aging column %s not in table schema", st.AgingColumn)
		}
		if meta.Placement != catalog.PlacementHybrid {
			return nil, fmt.Errorf("WITH AGING requires a hybrid (partitioned) table")
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.cat.Table(st.Name); ok {
		if st.IfNotExists {
			return &Result{Message: fmt.Sprintf("table %s already exists", st.Name)}, nil
		}
		return nil, fmt.Errorf("table %s already exists", st.Name)
	}
	// Write-ahead: log the create before any physical state exists, so a
	// crash between the record and registration replays to the same (empty)
	// table instead of leaving redo records against a missing catalog entry.
	if e.wal != nil {
		payload, err := marshalTableMeta(meta)
		if err != nil {
			return nil, err
		}
		if err := e.logRedoDDL(redoDDLCreate, meta.Name, payload); err != nil {
			return nil, fmt.Errorf("logging create: %w", err)
		}
	}
	t, err := e.buildStoredTable(meta)
	if err != nil {
		return nil, err
	}
	if err := e.cat.AddTable(meta); err != nil {
		return nil, err
	}
	e.tables[strings.ToUpper(st.Name)] = t
	e.distRegister(t)
	return &Result{Message: fmt.Sprintf("created %s table %s", meta.Placement, st.Name)}, nil
}

// buildStoredTable allocates the physical partitions for a catalog entry.
// Caller holds e.mu.
func (e *Engine) buildStoredTable(meta *catalog.TableMeta) (*storedTable, error) {
	t := &storedTable{eng: e, meta: meta, part2pc: newExtParticipant(e, meta.Name)}
	mk := func(pm catalog.PartitionMeta, cold bool, suffix string) (*partition, error) {
		p := &partition{meta: pm, cold: cold, vers: txn.NewRowVersions()}
		switch {
		case cold:
			store, err := e.extStoreLocked()
			if err != nil {
				return nil, err
			}
			name := meta.Name + suffix
			ext, ok := store.Table(name)
			if !ok {
				ext, err = store.CreateTable(name, meta.Schema)
				if err != nil {
					return nil, err
				}
			} else if !e.recovering {
				// Reopened store: existing rows are committed (tombstoned
				// rows stay hidden by the disk store itself). Crash recovery
				// skips this backfill — the savepoint's version snapshot and
				// the WAL suffix are authoritative there.
				for id := 0; id < int(ext.TotalRows()); id++ {
					p.vers.InsertCommitted(id, 1)
				}
			}
			p.ext = ext
		case meta.Placement == catalog.PlacementRow:
			p.row = rowstore.NewTable(meta.Schema.Clone(), meta.PrimaryKey)
		default:
			p.hot = colstore.NewTable(meta.Schema.Clone())
		}
		return p, nil
	}

	switch meta.Placement {
	case catalog.PlacementHybrid:
		for i, pm := range meta.Partitions {
			p, err := mk(pm, pm.Cold, fmt.Sprintf("$p%d", i))
			if err != nil {
				return nil, err
			}
			p.idx = i
			t.parts = append(t.parts, p)
		}
	case catalog.PlacementExtended:
		p, err := mk(catalog.PartitionMeta{Others: true, Cold: true}, true, "")
		if err != nil {
			return nil, err
		}
		t.parts = append(t.parts, p)
	default:
		p, err := mk(catalog.PartitionMeta{Others: true}, false, "")
		if err != nil {
			return nil, err
		}
		t.parts = append(t.parts, p)
	}
	return t, nil
}

// alterTable adds columns to a table: the hybrid-table concept includes
// uniform schema modification across hot and cold fragments (§3.1: "the
// extended storage technique supports schema modifications like any other
// table in SAP HANA").
func (e *Engine) alterTable(st *sqlparse.AlterTableStmt) (*Result, error) {
	t, err := e.table(st.Table)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Validate everything before logging or mutating: the redo record must
	// describe an alter that will apply cleanly during replay too.
	var added []value.Column
	for _, cd := range st.Add {
		if t.meta.Schema.Find(cd.Name) >= 0 {
			return nil, fmt.Errorf("column %s already exists in %s", cd.Name, st.Table)
		}
		if cd.NotNull {
			return nil, fmt.Errorf("ALTER TABLE ADD cannot add NOT NULL column %s to populated table", cd.Name)
		}
		if t.meta.Placement == catalog.PlacementRow {
			return nil, fmt.Errorf("row-store tables do not support ALTER TABLE ADD")
		}
		added = append(added, value.Column{Name: cd.Name, Kind: cd.Kind, Nullable: !cd.NotNull})
	}
	if e.wal != nil && len(added) > 0 {
		payload, err := json.Marshal(added)
		if err != nil {
			return nil, err
		}
		if err := e.logRedoDDL(redoDDLAlter, t.meta.Name, payload); err != nil {
			return nil, fmt.Errorf("logging alter: %w", err)
		}
	}
	for _, col := range added {
		for _, p := range t.parts {
			switch {
			case p.hot != nil:
				p.hot.AddColumn(col)
			case p.ext != nil:
				if err := p.ext.AddColumn(col); err != nil {
					return nil, err
				}
			}
		}
		t.meta.Schema.Cols = append(t.meta.Schema.Cols, col)
	}
	if len(added) > 0 {
		// Schema changed: re-register drops the workers' copies, so rebuild
		// the shard mirrors under the table lock we already hold.
		if err := e.distReseedLocked(t); err != nil {
			return nil, err
		}
	}
	return &Result{Message: fmt.Sprintf("altered table %s (+%d column(s))", st.Table, len(st.Add))}, nil
}

func (e *Engine) drop(st *sqlparse.DropStmt) (*Result, error) {
	switch st.Kind {
	case "TABLE":
		e.mu.Lock()
		defer e.mu.Unlock()
		key := strings.ToUpper(st.Name)
		t, ok := e.tables[key]
		if !ok {
			if st.IfExists {
				return &Result{Message: "nothing to drop"}, nil
			}
			return nil, fmt.Errorf("table %s not found", st.Name)
		}
		// Write-ahead: without a durable drop record, replay would rebuild
		// the table from its earlier create and insert records.
		if err := e.logRedoDDL(redoDDLDrop, t.meta.Name, nil); err != nil {
			return nil, fmt.Errorf("logging drop: %w", err)
		}
		for i, p := range t.parts {
			if p.ext != nil {
				suffix := ""
				if t.meta.Placement == catalog.PlacementHybrid {
					suffix = fmt.Sprintf("$p%d", i)
				}
				_ = e.ext.DropTable(t.meta.Name + suffix)
			}
		}
		delete(e.tables, key)
		e.distDrop(st.Name)
		_ = e.cat.DropTable(st.Name)
	case "REMOTE SOURCE":
		if err := e.cat.DropSource(st.Name); err != nil {
			if st.IfExists {
				return &Result{Message: "nothing to drop"}, nil
			}
			return nil, err
		}
		e.mu.Lock()
		delete(e.adapters, strings.ToUpper(st.Name))
		e.mu.Unlock()
	case "VIRTUAL TABLE":
		if err := e.cat.DropVirtualTable(st.Name); err != nil && !st.IfExists {
			return nil, err
		}
	case "VIRTUAL FUNCTION":
		if err := e.cat.DropVirtualFunction(st.Name); err != nil && !st.IfExists {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unsupported DROP %s", st.Kind)
	}
	return &Result{Message: fmt.Sprintf("dropped %s %s", strings.ToLower(st.Kind), st.Name)}, nil
}

func (e *Engine) createRemoteSource(st *sqlparse.CreateRemoteSourceStmt) (*Result, error) {
	src := &catalog.RemoteSource{
		Name:           st.Name,
		Adapter:        st.Adapter,
		Configuration:  catalog.ParseProps(st.Configuration),
		CredentialType: st.CredentialType,
		Credentials:    catalog.ParseProps(st.Credentials),
	}
	a, err := e.registry.Open(st.Adapter, src.Configuration, src.Credentials)
	if err != nil {
		return nil, err
	}
	if err := e.cat.AddSource(src); err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.adapters[strings.ToUpper(st.Name)] = a
	e.mu.Unlock()
	return &Result{Message: fmt.Sprintf("created remote source %s (adapter %s)", st.Name, st.Adapter)}, nil
}

func (e *Engine) createVirtualTable(st *sqlparse.CreateVirtualTableStmt) (*Result, error) {
	a, err := e.adapter(st.Source)
	if err != nil {
		return nil, err
	}
	schema, err := a.TableSchema(st.Remote)
	if err != nil {
		return nil, fmt.Errorf("resolving remote object %s: %w", strings.Join(st.Remote, "."), err)
	}
	vt := &catalog.VirtualTable{
		Name:   st.Name,
		Source: st.Source,
		Remote: st.Remote,
		Schema: schema,
	}
	if err := e.cat.AddVirtualTable(vt); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("created virtual table %s at %s", st.Name, strings.Join(st.Remote, "."))}, nil
}

func (e *Engine) createVirtualFunction(st *sqlparse.CreateVirtualFunctionStmt) (*Result, error) {
	if _, err := e.adapter(st.Source); err != nil {
		return nil, err
	}
	schema := &value.Schema{}
	for _, cd := range st.Returns {
		schema.Cols = append(schema.Cols, value.Column{Name: cd.Name, Kind: cd.Kind, Nullable: !cd.NotNull})
	}
	vf := &catalog.VirtualFunction{
		Name:          st.Name,
		Source:        st.Source,
		Returns:       schema,
		Configuration: catalog.ParseProps(st.Configuration),
	}
	if err := e.cat.AddVirtualFunction(vf); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("created virtual function %s at %s", st.Name, st.Source)}, nil
}

// Analyze collects optimizer statistics (row counts and q-error
// histograms) for a table, like an ANALYZE/UPDATE STATISTICS command.
func (e *Engine) Analyze(table string) error {
	t, err := e.table(table)
	if err != nil {
		return err
	}
	snapshot := e.mgr.LastCID()
	var rows []value.Row
	for _, p := range t.parts {
		pr, err := p.visibleRows(snapshot, 0, nil)
		if err != nil {
			return err
		}
		rows = append(rows, pr...)
	}
	stats := catalog.TableStats{
		RowCount:   int64(len(rows)),
		Histograms: map[string]*catalog.Histogram{},
	}
	for i, col := range t.meta.Schema.Cols {
		vals := make([]value.Value, len(rows))
		for j, r := range rows {
			vals[j] = r[i]
		}
		stats.Histograms[strings.ToUpper(col.Name)] = catalog.BuildHistogram(vals, 2, 64)
	}
	t.meta.Stats = stats
	return nil
}

// RunAging runs the aging pass with a background context.
//
// Deprecated: use RunAgingContext.
func (e *Engine) RunAging(table string) (int64, error) {
	return e.RunAgingContext(context.Background(), table)
}

// RunAgingContext implements the hybrid-table aging mechanism of §3.1: rows
// in hot partitions whose aging-flag column is true move to the first cold
// partition that accepts them. The move runs as one distributed
// transaction spanning the in-memory store and the extended storage; ctx
// bounds the commit.
func (e *Engine) RunAgingContext(ctx context.Context, table string) (int64, error) {
	t, err := e.table(table)
	if err != nil {
		return 0, err
	}
	if t.meta.AgingColumn == "" {
		return 0, fmt.Errorf("table %s has no aging column", table)
	}
	flagOrd := t.meta.Schema.Find(t.meta.AgingColumn)
	cold := t.coldParts()
	if len(cold) == 0 {
		return 0, fmt.Errorf("table %s has no cold partition", table)
	}
	tx := e.Begin()
	var moved int64
	for _, p := range t.parts {
		if p.cold || p.hot == nil {
			continue
		}
		type victim struct {
			id  int
			row value.Row
		}
		var victims []victim
		p.hot.Scan(func(id int, row value.Row) bool {
			if p.vers.Visible(id, tx.Snapshot, tx.TID) && row[flagOrd].K == value.KindBool && row[flagOrd].Bool() {
				victims = append(victims, victim{id: id, row: row.Clone()})
			}
			return true
		})
		for _, v := range victims {
			if err := t.deleteRow(tx, p, v.id); err != nil {
				_ = e.Rollback(tx)
				return 0, err
			}
			target := cold[0]
			// Respect range routing when the cold partitions are ranged.
			if len(t.parts) > 1 && t.meta.PartitionBy != "" {
				if routed, err := t.partitionFor(v.row); err == nil && routed.cold {
					target = routed
				}
			}
			t.part2pc.bufferInsert(tx.TID, target, v.row)
			tx.Enlist(t.part2pc)
			moved++
		}
	}
	if err := e.CommitTxContext(ctx, tx); err != nil {
		return 0, err
	}
	return moved, nil
}

// bindToSchema clones and binds an expression against a schema.
func bindToSchema(ex expr.Expr, s *value.Schema) (expr.Expr, error) {
	c := expr.Clone(ex)
	if err := expr.Bind(c, s); err != nil {
		return nil, err
	}
	return c, nil
}
