package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hana/internal/expr"
	"hana/internal/obs"
	"hana/internal/sqlparse"
	"hana/internal/value"
)

// Monitoring views, exposed as built-in table functions (query with
// SELECT * FROM M_TABLES()): the single-administration-surface idea of §2
// — one interface reports on every component. Each view is a typed
// obs.ViewDef so its column metadata is declared up front and enumerable
// through M_VIEWS().

// installSystemViews registers the M_* view definitions.
func (e *Engine) installSystemViews() {
	defs := []obs.ViewDef{
		{
			Name: "M_TABLES",
			Columns: []value.Column{
				{Name: "table_name", Kind: value.KindVarchar},
				{Name: "placement", Kind: value.KindVarchar},
				{Name: "partitions", Kind: value.KindInt},
				{Name: "row_count", Kind: value.KindInt},
				{Name: "aging_column", Kind: value.KindVarchar},
			},
			Fill: e.mTables,
		},
		{
			Name: "M_REMOTE_SOURCES",
			Columns: []value.Column{
				{Name: "source_name", Kind: value.KindVarchar},
				{Name: "adapter", Kind: value.KindVarchar},
				{Name: "capabilities", Kind: value.KindVarchar},
			},
			Fill: e.mRemoteSources,
		},
		{
			Name: "M_VIRTUAL_TABLES",
			Columns: []value.Column{
				{Name: "table_name", Kind: value.KindVarchar},
				{Name: "source_name", Kind: value.KindVarchar},
				{Name: "remote_object", Kind: value.KindVarchar},
			},
			Fill: e.mVirtualTables,
		},
		{
			Name: "M_FEDERATION_STATISTICS",
			Columns: []value.Column{
				{Name: "metric", Kind: value.KindVarchar},
				{Name: "val", Kind: value.KindInt},
			},
			Fill: e.mFederationStats,
		},
		{
			Name: "M_TRANSACTIONS",
			Columns: []value.Column{
				{Name: "metric", Kind: value.KindVarchar},
				{Name: "val", Kind: value.KindInt},
			},
			Fill: e.mTransactions,
		},
		{
			Name: "M_REMOTE_SOURCE_HEALTH",
			Columns: []value.Column{
				{Name: "source_name", Kind: value.KindVarchar},
				{Name: "breaker_state", Kind: value.KindVarchar},
				{Name: "consecutive_failures", Kind: value.KindInt},
				{Name: "total_failures", Kind: value.KindInt},
				{Name: "times_opened", Kind: value.KindInt},
				{Name: "retries", Kind: value.KindInt},
				{Name: "last_error", Kind: value.KindVarchar},
			},
			Fill: e.mRemoteSourceHealth,
		},
		{
			Name: "M_INDOUBT_TRANSACTIONS",
			Columns: []value.Column{
				{Name: "transaction_id", Kind: value.KindInt},
				{Name: "participant", Kind: value.KindVarchar},
				{Name: "commit_id", Kind: value.KindInt},
				{Name: "decision", Kind: value.KindVarchar},
				{Name: "resolution_attempts", Kind: value.KindInt},
			},
			Fill: e.mInDoubtTransactions,
		},
		{
			Name: "M_VIEWS",
			Columns: []value.Column{
				{Name: "view_name", Kind: value.KindVarchar},
				{Name: "ordinal", Kind: value.KindInt},
				{Name: "column_name", Kind: value.KindVarchar},
				{Name: "column_kind", Kind: value.KindVarchar},
				{Name: "dynamic", Kind: value.KindBool},
			},
			Fill: e.mViews,
		},
		{
			Name: "M_QUERY_TRACES",
			Columns: []value.Column{
				{Name: "trace_id", Kind: value.KindInt},
				{Name: "statement", Kind: value.KindVarchar},
				{Name: "span", Kind: value.KindVarchar},
				{Name: "depth", Kind: value.KindInt},
				{Name: "duration_us", Kind: value.KindInt},
				{Name: "detail", Kind: value.KindVarchar},
				{Name: "error", Kind: value.KindVarchar},
			},
			Fill: e.mQueryTraces,
		},
		{
			Name: "M_RECOVERY",
			Columns: []value.Column{
				{Name: "metric", Kind: value.KindVarchar},
				{Name: "val", Kind: value.KindInt},
				{Name: "detail", Kind: value.KindVarchar},
			},
			Fill: e.mRecovery,
		},
		{
			Name: "M_WAL_STATISTICS",
			Columns: []value.Column{
				{Name: "metric", Kind: value.KindVarchar},
				{Name: "val", Kind: value.KindInt},
				{Name: "detail", Kind: value.KindVarchar},
			},
			Fill: e.mWALStatistics,
		},
		{
			Name: "M_METRICS",
			Columns: []value.Column{
				{Name: "metric", Kind: value.KindVarchar},
				{Name: "kind", Kind: value.KindVarchar},
				{Name: "val", Kind: value.KindInt},
				{Name: "detail", Kind: value.KindVarchar},
			},
			Fill: e.mMetrics,
		},
	}
	for _, def := range defs {
		if err := e.views.Register(def); err != nil {
			panic(fmt.Sprintf("system view %s: %v", def.Name, err))
		}
	}
}

// mRemoteSourceHealth reports per-source circuit-breaker state: the
// operator-facing answer to "is the planner degrading because Hive is
// down, and when will it probe again?".
func (e *Engine) mRemoteSourceHealth(out *value.Rows) error {
	for _, st := range e.health.Snapshot() {
		lastErr := value.Null
		if st.LastError != "" {
			lastErr = value.NewString(st.LastError)
		}
		out.Append(value.Row{
			value.NewString(st.Name),
			value.NewString(st.State.String()),
			value.NewInt(int64(st.ConsecFails)),
			value.NewInt(st.TotalFails),
			value.NewInt(st.Opens),
			value.NewInt(st.Retries),
			lastErr,
		})
	}
	return nil
}

// mInDoubtTransactions lists unresolved 2PC branches with their decided
// commit ID and resolution attempts (§3.1 in-doubt visibility).
func (e *Engine) mInDoubtTransactions(out *value.Rows) error {
	for _, b := range e.mgr.InDoubtInfo() {
		decision := "COMMIT"
		if b.CID == 0 {
			decision = "PRESUMED ABORT"
		}
		out.Append(value.Row{
			value.NewInt(int64(b.TID)),
			value.NewString(b.Participant),
			value.NewInt(int64(b.CID)),
			value.NewString(decision),
			value.NewInt(int64(b.Retries)),
		})
	}
	return nil
}

// mRecovery reports what the last Open/Recover did — 0 rows of work on a
// fresh directory, otherwise the replay summary (savepoint LSN, records
// replayed, torn-tail truncation, outcome counts, remaining in-doubt).
func (e *Engine) mRecovery(out *value.Rows) error {
	r := e.recovery
	flag := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	rows := []struct {
		metric string
		val    int64
		detail string
	}{
		{"recovered", flag(r.Recovered), ""},
		{"savepoint_lsn", int64(r.SavepointLSN), ""},
		{"wal_records", int64(r.WALRecords), ""},
		{"data_records", int64(r.DataRecords), ""},
		{"skipped_records", int64(r.SkippedRecords), ""},
		{"torn_tail", flag(r.TornTail), r.TornReason},
		{"committed", int64(r.Committed), ""},
		{"aborted", int64(r.Aborted), ""},
		{"orphaned", int64(r.Orphaned), ""},
		{"in_doubt", int64(r.InDoubt), ""},
		{"last_lsn", int64(r.LastLSN), ""},
	}
	for _, row := range rows {
		detail := value.Null
		if row.detail != "" {
			detail = value.NewString(row.detail)
		}
		out.Append(value.Row{value.NewString(row.metric), value.NewInt(row.val), detail})
	}
	return nil
}

// mWALStatistics surfaces the live WAL counters (durability gap, fsync
// policy, torn tails tolerated) for a durable engine; empty when the engine
// runs without a WAL.
func (e *Engine) mWALStatistics(out *value.Rows) error {
	if e.wal == nil {
		return nil
	}
	s := e.wal.Stats()
	rows := []struct {
		metric string
		val    int64
		detail string
	}{
		{"last_lsn", int64(s.LastLSN), ""},
		{"appends", s.Appends, ""},
		{"bytes", s.Bytes, ""},
		{"syncs", s.Syncs, ""},
		{"torn_tails", s.TornTails, ""},
		{"written_offset", s.WrittenOff, ""},
		{"durable_offset", s.DurableOff, ""},
		{"durability_gap", s.WrittenOff - s.DurableOff, "bytes a crash could lose"},
		{"sync_mode", int64(s.SyncMode), s.SyncMode.String()},
		{"truncations", s.Truncations, ""},
	}
	for _, row := range rows {
		detail := value.Null
		if row.detail != "" {
			detail = value.NewString(row.detail)
		}
		out.Append(value.Row{value.NewString(row.metric), value.NewInt(row.val), detail})
	}
	return nil
}

func (e *Engine) mTables(out *value.Rows) error {
	for _, name := range e.cat.TableNames() {
		meta, _ := e.cat.Table(name)
		n, err := e.TableRowCount(name)
		if err != nil {
			return err
		}
		parts := int64(len(meta.Partitions))
		if parts == 0 {
			parts = 1
		}
		aging := value.Null
		if meta.AgingColumn != "" {
			aging = value.NewString(meta.AgingColumn)
		}
		out.Append(value.Row{
			value.NewString(meta.Name),
			value.NewString(meta.Placement.String()),
			value.NewInt(parts),
			value.NewInt(n),
			aging,
		})
	}
	return nil
}

func (e *Engine) mRemoteSources(out *value.Rows) error {
	e.mu.RLock()
	names := make([]string, 0, len(e.adapters))
	for n := range e.adapters {
		names = append(names, n)
	}
	e.mu.RUnlock()
	sort.Strings(names)
	for _, n := range names {
		a, err := e.adapter(n)
		if err != nil {
			continue
		}
		caps := a.Capabilities().Map()
		var on []string
		for c, v := range caps {
			if v {
				on = append(on, c)
			}
		}
		sort.Strings(on)
		out.Append(value.Row{
			value.NewString(n),
			value.NewString(a.Name()),
			value.NewString(strings.Join(on, ",")),
		})
	}
	return nil
}

func (e *Engine) mVirtualTables(out *value.Rows) error {
	// The catalog does not expose iteration over virtual tables directly;
	// list through known sources' registrations.
	for _, vt := range e.cat.VirtualTableList() {
		out.Append(value.Row{
			value.NewString(vt.Name),
			value.NewString(vt.Source),
			value.NewString(strings.Join(vt.Remote, ".")),
		})
	}
	return nil
}

// mFederationStats serves the federation counters from a registry snapshot
// — a consistent point-in-time read off the lock-free counters, never a
// recomputation under the engine lock.
func (e *Engine) mFederationStats(out *value.Rows) error {
	stats := e.obs.Snapshot()
	for _, name := range fedMetricNames {
		v, _ := stats.Counter(name)
		out.Append(value.Row{
			value.NewString(strings.TrimPrefix(name, "fed.")),
			value.NewInt(v),
		})
	}
	return nil
}

func (e *Engine) mTransactions(out *value.Rows) error {
	out.Append(value.Row{value.NewString("active_transactions"), value.NewInt(int64(e.mgr.ActiveCount()))})
	out.Append(value.Row{value.NewString("last_commit_id"), value.NewInt(int64(e.mgr.LastCID()))})
	out.Append(value.Row{value.NewString("in_doubt_transactions"), value.NewInt(int64(len(e.mgr.InDoubt())))})
	return nil
}

// mViews enumerates every registered view: one row per declared column,
// and a single all-NULL column row for dynamic (legacy provider) views
// whose schema is only known when they run.
func (e *Engine) mViews(out *value.Rows) error {
	for _, meta := range e.views.List() {
		if meta.Dynamic {
			out.Append(value.Row{
				value.NewString(meta.Name),
				value.Null,
				value.Null,
				value.Null,
				value.NewBool(true),
			})
			continue
		}
		for i, col := range meta.Columns {
			out.Append(value.Row{
				value.NewString(meta.Name),
				value.NewInt(int64(i)),
				value.NewString(col.Name),
				value.NewString(col.Kind.String()),
				value.NewBool(false),
			})
		}
	}
	return nil
}

// mQueryTraces renders the trace ring, oldest first: one row per span in
// preorder, so a query's timeline reads top to bottom.
func (e *Engine) mQueryTraces(out *value.Rows) error {
	for _, tr := range e.traces.Snapshot() {
		errv := value.Null
		if msg := tr.Err(); msg != "" {
			errv = value.NewString(msg)
		}
		tr.Walk(func(depth int, s *obs.Span) {
			out.Append(value.Row{
				value.NewInt(int64(tr.ID())),
				value.NewString(tr.Statement()),
				value.NewString(s.Name()),
				value.NewInt(int64(depth)),
				value.NewInt(s.Duration().Microseconds()),
				value.NewString(s.Detail()),
				errv,
			})
		})
	}
	return nil
}

// mMetrics dumps the whole registry — counters, gauges and histograms —
// from one snapshot.
func (e *Engine) mMetrics(out *value.Rows) error {
	stats := e.obs.Snapshot()
	for _, c := range stats.Counters {
		out.Append(value.Row{value.NewString(c.Name), value.NewString("counter"), value.NewInt(c.Value), value.Null})
	}
	for _, g := range stats.Gauges {
		out.Append(value.Row{value.NewString(g.Name), value.NewString("gauge"), value.NewInt(g.Value), value.Null})
	}
	for _, h := range stats.Histograms {
		var parts []string
		for i, b := range h.Bounds {
			parts = append(parts, fmt.Sprintf("le%d=%d", b, h.Counts[i]))
		}
		parts = append(parts, fmt.Sprintf("inf=%d", h.Counts[len(h.Bounds)]))
		detail := fmt.Sprintf("sum=%d %s", h.Sum, strings.Join(parts, " "))
		out.Append(value.Row{value.NewString(h.Name), value.NewString("histogram"), value.NewInt(h.Count), value.NewString(detail)})
	}
	return nil
}

// ExecuteParams parses and runs a statement with positional ? parameters
// bound to the given values.
//
// Deprecated: use ExecuteContext with WithParams.
func (e *Engine) ExecuteParams(sql string, params ...value.Value) (*Result, error) {
	return e.ExecuteContext(context.Background(), sql, WithParams(params...))
}

// substituteStmtParams replaces parameter placeholders across the
// statement's expressions.
func substituteStmtParams(st sqlparse.Statement, params []value.Value) (sqlparse.Statement, error) {
	sub := func(ex expr.Expr) (expr.Expr, error) {
		if ex == nil {
			return nil, nil
		}
		return expr.SubstituteParams(ex, params)
	}
	switch s := st.(type) {
	case *sqlparse.SelectStmt:
		out := *s
		var err error
		if out.Where, err = sub(s.Where); err != nil {
			return nil, err
		}
		if out.Having, err = sub(s.Having); err != nil {
			return nil, err
		}
		items := make([]sqlparse.SelectItem, len(s.Items))
		for i, it := range s.Items {
			items[i] = it
			if it.Expr != nil {
				if items[i].Expr, err = sub(it.Expr); err != nil {
					return nil, err
				}
			}
		}
		out.Items = items
		return &out, nil
	case *sqlparse.DeleteStmt:
		out := *s
		var err error
		if out.Where, err = sub(s.Where); err != nil {
			return nil, err
		}
		return &out, nil
	case *sqlparse.UpdateStmt:
		out := *s
		var err error
		if out.Where, err = sub(s.Where); err != nil {
			return nil, err
		}
		set := make([]struct {
			Col string
			E   expr.Expr
		}, len(s.Set))
		for i, sc := range s.Set {
			set[i].Col = sc.Col
			if set[i].E, err = sub(sc.E); err != nil {
				return nil, err
			}
		}
		out.Set = set
		return &out, nil
	case *sqlparse.InsertStmt:
		out := *s
		vals := make([][]expr.Expr, len(s.Values))
		for i, row := range s.Values {
			vals[i] = make([]expr.Expr, len(row))
			for j, ex := range row {
				var err error
				if vals[i][j], err = sub(ex); err != nil {
					return nil, err
				}
			}
		}
		out.Values = vals
		return &out, nil
	}
	return st, nil
}

// ResolveInDoubt exposes manual resolution of an in-doubt extended-storage
// transaction branch (§3.1: "Clients will have the ability to manually
// abort these 'in-doubt' transactions").
func (e *Engine) ResolveInDoubt(tid uint64, commit bool) error {
	// Resolution stamps version vectors outside commitTxCtx, so it must sit
	// inside the savepoint barrier for the same reason commits do.
	e.spMu.RLock()
	defer e.spMu.RUnlock()
	ind := e.mgr.InDoubt()
	name, ok := ind[tid]
	if !ok {
		return fmt.Errorf("transaction %d is not in-doubt", tid)
	}
	part := e.findParticipant(name)
	if part == nil {
		return fmt.Errorf("participant %s for transaction %d not found", name, tid)
	}
	return e.mgr.Resolve(tid, part, commit)
}
