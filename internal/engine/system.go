package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hana/internal/expr"
	"hana/internal/sqlparse"
	"hana/internal/value"
)

// Monitoring views, exposed as built-in table functions (query with
// SELECT * FROM M_TABLES()): the single-administration-surface idea of §2
// — one interface reports on every component.

// installSystemViews registers the M_* providers.
func (e *Engine) installSystemViews() {
	e.RegisterTableProvider("M_TABLES", e.mTables)
	e.RegisterTableProvider("M_REMOTE_SOURCES", e.mRemoteSources)
	e.RegisterTableProvider("M_VIRTUAL_TABLES", e.mVirtualTables)
	e.RegisterTableProvider("M_FEDERATION_STATISTICS", e.mFederationStats)
	e.RegisterTableProvider("M_TRANSACTIONS", e.mTransactions)
	e.RegisterTableProvider("M_REMOTE_SOURCE_HEALTH", e.mRemoteSourceHealth)
	e.RegisterTableProvider("M_INDOUBT_TRANSACTIONS", e.mInDoubtTransactions)
}

// mRemoteSourceHealth reports per-source circuit-breaker state: the
// operator-facing answer to "is the planner degrading because Hive is
// down, and when will it probe again?".
func (e *Engine) mRemoteSourceHealth() (*value.Rows, error) {
	out := value.NewRows(value.NewSchema(
		value.Column{Name: "source_name", Kind: value.KindVarchar},
		value.Column{Name: "breaker_state", Kind: value.KindVarchar},
		value.Column{Name: "consecutive_failures", Kind: value.KindInt},
		value.Column{Name: "total_failures", Kind: value.KindInt},
		value.Column{Name: "times_opened", Kind: value.KindInt},
		value.Column{Name: "retries", Kind: value.KindInt},
		value.Column{Name: "last_error", Kind: value.KindVarchar},
	))
	for _, st := range e.health.Snapshot() {
		lastErr := value.Null
		if st.LastError != "" {
			lastErr = value.NewString(st.LastError)
		}
		out.Append(value.Row{
			value.NewString(st.Name),
			value.NewString(st.State.String()),
			value.NewInt(int64(st.ConsecFails)),
			value.NewInt(st.TotalFails),
			value.NewInt(st.Opens),
			value.NewInt(st.Retries),
			lastErr,
		})
	}
	return out, nil
}

// mInDoubtTransactions lists unresolved 2PC branches with their decided
// commit ID and resolution attempts (§3.1 in-doubt visibility).
func (e *Engine) mInDoubtTransactions() (*value.Rows, error) {
	out := value.NewRows(value.NewSchema(
		value.Column{Name: "transaction_id", Kind: value.KindInt},
		value.Column{Name: "participant", Kind: value.KindVarchar},
		value.Column{Name: "commit_id", Kind: value.KindInt},
		value.Column{Name: "decision", Kind: value.KindVarchar},
		value.Column{Name: "resolution_attempts", Kind: value.KindInt},
	))
	for _, b := range e.mgr.InDoubtInfo() {
		decision := "COMMIT"
		if b.CID == 0 {
			decision = "PRESUMED ABORT"
		}
		out.Append(value.Row{
			value.NewInt(int64(b.TID)),
			value.NewString(b.Participant),
			value.NewInt(int64(b.CID)),
			value.NewString(decision),
			value.NewInt(int64(b.Retries)),
		})
	}
	return out, nil
}

func (e *Engine) mTables() (*value.Rows, error) {
	out := value.NewRows(value.NewSchema(
		value.Column{Name: "table_name", Kind: value.KindVarchar},
		value.Column{Name: "placement", Kind: value.KindVarchar},
		value.Column{Name: "partitions", Kind: value.KindInt},
		value.Column{Name: "row_count", Kind: value.KindInt},
		value.Column{Name: "aging_column", Kind: value.KindVarchar},
	))
	for _, name := range e.cat.TableNames() {
		meta, _ := e.cat.Table(name)
		n, err := e.TableRowCount(name)
		if err != nil {
			return nil, err
		}
		parts := int64(len(meta.Partitions))
		if parts == 0 {
			parts = 1
		}
		aging := value.Null
		if meta.AgingColumn != "" {
			aging = value.NewString(meta.AgingColumn)
		}
		out.Append(value.Row{
			value.NewString(meta.Name),
			value.NewString(meta.Placement.String()),
			value.NewInt(parts),
			value.NewInt(n),
			aging,
		})
	}
	return out, nil
}

func (e *Engine) mRemoteSources() (*value.Rows, error) {
	out := value.NewRows(value.NewSchema(
		value.Column{Name: "source_name", Kind: value.KindVarchar},
		value.Column{Name: "adapter", Kind: value.KindVarchar},
		value.Column{Name: "capabilities", Kind: value.KindVarchar},
	))
	e.mu.RLock()
	names := make([]string, 0, len(e.adapters))
	for n := range e.adapters {
		names = append(names, n)
	}
	e.mu.RUnlock()
	sort.Strings(names)
	for _, n := range names {
		a, err := e.adapter(n)
		if err != nil {
			continue
		}
		caps := a.Capabilities().Map()
		var on []string
		for c, v := range caps {
			if v {
				on = append(on, c)
			}
		}
		sort.Strings(on)
		out.Append(value.Row{
			value.NewString(n),
			value.NewString(a.Name()),
			value.NewString(strings.Join(on, ",")),
		})
	}
	return out, nil
}

func (e *Engine) mVirtualTables() (*value.Rows, error) {
	out := value.NewRows(value.NewSchema(
		value.Column{Name: "table_name", Kind: value.KindVarchar},
		value.Column{Name: "source_name", Kind: value.KindVarchar},
		value.Column{Name: "remote_object", Kind: value.KindVarchar},
	))
	// The catalog does not expose iteration over virtual tables directly;
	// list through known sources' registrations.
	for _, vt := range e.cat.VirtualTableList() {
		out.Append(value.Row{
			value.NewString(vt.Name),
			value.NewString(vt.Source),
			value.NewString(strings.Join(vt.Remote, ".")),
		})
	}
	return out, nil
}

func (e *Engine) mFederationStats() (*value.Rows, error) {
	m := e.Metrics.Snapshot()
	out := value.NewRows(value.NewSchema(
		value.Column{Name: "metric", Kind: value.KindVarchar},
		value.Column{Name: "val", Kind: value.KindInt},
	))
	for _, kv := range []struct {
		k string
		v int64
	}{
		{"remote_queries", m.RemoteQueries},
		{"remote_cache_hits", m.RemoteCacheHits},
		{"remote_rows_fetched", m.RemoteRowsFetched},
		{"semijoins_chosen", m.SemiJoinsChosen},
		{"union_plans_chosen", m.UnionPlansChosen},
		{"relocations_chosen", m.RelocationsChosen},
		{"remote_scans_chosen", m.RemoteScansChosen},
		{"remote_retries", m.RemoteRetries},
		{"remote_fallback_hits", m.RemoteFallbackHits},
		{"planner_fallbacks", m.PlannerFallbacks},
		{"in_doubt_resolved", m.InDoubtResolved},
	} {
		out.Append(value.Row{value.NewString(kv.k), value.NewInt(kv.v)})
	}
	return out, nil
}

func (e *Engine) mTransactions() (*value.Rows, error) {
	out := value.NewRows(value.NewSchema(
		value.Column{Name: "metric", Kind: value.KindVarchar},
		value.Column{Name: "val", Kind: value.KindInt},
	))
	out.Append(value.Row{value.NewString("active_transactions"), value.NewInt(int64(e.mgr.ActiveCount()))})
	out.Append(value.Row{value.NewString("last_commit_id"), value.NewInt(int64(e.mgr.LastCID()))})
	out.Append(value.Row{value.NewString("in_doubt_transactions"), value.NewInt(int64(len(e.mgr.InDoubt())))})
	return out, nil
}

// ExecuteParams parses and runs a statement with positional ? parameters
// bound to the given values.
//
// Deprecated: use ExecuteContext with WithParams.
func (e *Engine) ExecuteParams(sql string, params ...value.Value) (*Result, error) {
	return e.ExecuteContext(context.Background(), sql, WithParams(params...))
}

// substituteStmtParams replaces parameter placeholders across the
// statement's expressions.
func substituteStmtParams(st sqlparse.Statement, params []value.Value) (sqlparse.Statement, error) {
	sub := func(ex expr.Expr) (expr.Expr, error) {
		if ex == nil {
			return nil, nil
		}
		return expr.SubstituteParams(ex, params)
	}
	switch s := st.(type) {
	case *sqlparse.SelectStmt:
		out := *s
		var err error
		if out.Where, err = sub(s.Where); err != nil {
			return nil, err
		}
		if out.Having, err = sub(s.Having); err != nil {
			return nil, err
		}
		items := make([]sqlparse.SelectItem, len(s.Items))
		for i, it := range s.Items {
			items[i] = it
			if it.Expr != nil {
				if items[i].Expr, err = sub(it.Expr); err != nil {
					return nil, err
				}
			}
		}
		out.Items = items
		return &out, nil
	case *sqlparse.DeleteStmt:
		out := *s
		var err error
		if out.Where, err = sub(s.Where); err != nil {
			return nil, err
		}
		return &out, nil
	case *sqlparse.UpdateStmt:
		out := *s
		var err error
		if out.Where, err = sub(s.Where); err != nil {
			return nil, err
		}
		set := make([]struct {
			Col string
			E   expr.Expr
		}, len(s.Set))
		for i, sc := range s.Set {
			set[i].Col = sc.Col
			if set[i].E, err = sub(sc.E); err != nil {
				return nil, err
			}
		}
		out.Set = set
		return &out, nil
	case *sqlparse.InsertStmt:
		out := *s
		vals := make([][]expr.Expr, len(s.Values))
		for i, row := range s.Values {
			vals[i] = make([]expr.Expr, len(row))
			for j, ex := range row {
				var err error
				if vals[i][j], err = sub(ex); err != nil {
					return nil, err
				}
			}
		}
		out.Values = vals
		return &out, nil
	}
	return st, nil
}

// ResolveInDoubt exposes manual resolution of an in-doubt extended-storage
// transaction branch (§3.1: "Clients will have the ability to manually
// abort these 'in-doubt' transactions").
func (e *Engine) ResolveInDoubt(tid uint64, commit bool) error {
	ind := e.mgr.InDoubt()
	name, ok := ind[tid]
	if !ok {
		return fmt.Errorf("transaction %d is not in-doubt", tid)
	}
	part := e.findParticipant(name)
	if part == nil {
		return fmt.Errorf("participant %s for transaction %d not found", name, tid)
	}
	return e.mgr.Resolve(tid, part, commit)
}
