package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hana/internal/txn"
	"hana/internal/value"
)

// Savepoints (checkpoints): a consistent snapshot of every stored table —
// physical rows of the in-memory partitions, MVCC version vectors, catalog
// metadata, coordinator watermarks and the in-doubt 2PC branches — written
// as of a single WAL position S. Recovery loads the newest savepoint and
// replays only the WAL suffix past S; after a successful install the WAL is
// truncated behind S.
//
// On-disk layout under the engine's data directory:
//
//	sp_<S hex>/manifest.json   spManifest
//	sp_<S hex>/t<i>_p<j>.rows  wire-encoded physical rows of partition j
//	CURRENT                    name of the active savepoint directory
//
// The snapshot phase holds the savepoint barrier exclusively, so every
// commit/abort whose record has LSN ≤ S is fully stamped in the exported
// version vectors (see Engine.spMu). File writes, install and truncation
// happen outside the barrier.

// spManifest is the persisted savepoint metadata.
type spManifest struct {
	LSN     uint64     `json:"lsn"`      // WAL position the snapshot is consistent with
	NextTID uint64     `json:"next_tid"` // coordinator watermarks at S
	LastCID uint64     `json:"last_cid"`
	Tables  []spTable  `json:"tables"`
	Branch  []spBranch `json:"in_doubt"` // in-doubt 2PC branches at S
}

type spTable struct {
	Meta  json.RawMessage `json:"meta"` // catalog.TableMeta
	Parts []spPart        `json:"parts"`
}

type spPart struct {
	Idx  int                 `json:"idx"`
	Rows int                 `json:"rows"`           // physical rows in File
	File string              `json:"file,omitempty"` // "" for extended partitions (rows live in the diskstore)
	Vers txn.VersionSnapshot `json:"vers"`
}

type spBranch struct {
	TID         uint64     `json:"tid"`
	Participant string     `json:"participant"`
	CID         uint64     `json:"cid,omitempty"` // decided commit ID; 0 = presumed abort
	Table       string     `json:"table,omitempty"`
	Ins         []spExtIDs `json:"ins,omitempty"` // prepared (durable) insert row ids
	Del         []spExtIDs `json:"del,omitempty"` // buffered delete tombstones
}

type spExtIDs struct {
	Part int   `json:"part"`
	IDs  []int `json:"ids"`
}

// savepointWriter writes one savepoint artifact; Close syncs the file to
// disk before releasing the handle, so a renamed-in savepoint never has
// half-written members.
type savepointWriter struct {
	f *os.File
}

func newSavepointWriter(path string) (*savepointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &savepointWriter{f: f}, nil
}

func (w *savepointWriter) Write(b []byte) (int, error) { return w.f.Write(b) }

// Close syncs and closes the underlying file.
func (w *savepointWriter) Close() error {
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close()
		return err
	}
	return w.f.Close()
}

// spSnapshot is the in-memory capture taken under the barrier; files are
// written from it afterwards.
type spSnapshot struct {
	manifest spManifest
	rowFiles map[string][]byte // file name -> encoded rows
}

// Savepoint writes a consistent snapshot of the engine's durable state and
// truncates the WAL behind it. It returns the WAL position S the savepoint
// is consistent with. Injector sites: checkpoint.snapshot, checkpoint.write,
// checkpoint.install, checkpoint.truncate.
func (e *Engine) Savepoint() (uint64, error) {
	if e.wal == nil || e.dataDir == "" {
		return 0, fmt.Errorf("savepoint requires a durable engine (Open with DataDir)")
	}
	if err := e.cfg.Faults.Check("checkpoint.snapshot"); err != nil {
		return 0, fmt.Errorf("savepoint snapshot: %w", err)
	}
	snap, err := e.captureSnapshot()
	if err != nil {
		return 0, err
	}
	s := snap.manifest.LSN
	if err := e.writeSavepoint(snap); err != nil {
		return 0, err
	}
	if err := e.cfg.Faults.Check("checkpoint.truncate"); err != nil {
		return s, fmt.Errorf("savepoint truncate: %w", err)
	}
	if err := e.wal.TruncateBefore(s); err != nil {
		// The savepoint is installed; an un-truncated WAL only costs replay
		// time (replay is idempotent against the snapshot), so report but
		// keep the savepoint.
		return s, fmt.Errorf("savepoint WAL truncate: %w", err)
	}
	e.obs.Counter("wal.savepoints_total").Inc()
	e.obs.Gauge("wal.last_savepoint_lsn").Set(int64(s))
	return s, nil
}

// captureSnapshot freezes the engine under the savepoint barrier and copies
// everything the manifest needs.
func (e *Engine) captureSnapshot() (*spSnapshot, error) {
	e.spMu.Lock()
	defer e.spMu.Unlock()
	e.mu.RLock()
	defer e.mu.RUnlock()

	snap := &spSnapshot{rowFiles: map[string][]byte{}}
	snap.manifest.LSN = e.wal.LastLSN()
	snap.manifest.NextTID = e.mgr.NextTID()
	snap.manifest.LastCID = e.mgr.LastCID()

	keys := make([]string, 0, len(e.tables))
	for k := range e.tables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	byName := map[string]*storedTable{}
	for ti, k := range keys {
		t := e.tables[k]
		byName[t.meta.Name] = t
		t.mu.Lock()
		meta, err := marshalTableMeta(t.meta)
		if err != nil {
			t.mu.Unlock()
			return nil, err
		}
		st := spTable{Meta: meta}
		for pi, p := range t.parts {
			sp := spPart{Idx: pi, Vers: p.vers.Export()}
			if p.ext == nil {
				var buf []byte
				n := 0
				collect := func(id int, row value.Row) bool {
					buf = value.AppendRow(buf, row)
					n++
					return true
				}
				if p.hot != nil {
					p.hot.Scan(collect)
				} else {
					p.row.Scan(collect)
				}
				sp.Rows = n
				sp.File = fmt.Sprintf("t%d_p%d.rows", ti, pi)
				snap.rowFiles[sp.File] = buf
			}
			st.Parts = append(st.Parts, sp)
		}
		t.mu.Unlock()
		snap.manifest.Tables = append(snap.manifest.Tables, st)
	}

	// In-doubt 2PC branches: persist the decided CID and the prepared row
	// ids so recovery can rebuild the participant's work order.
	for _, b := range e.mgr.InDoubtInfo() {
		sb := spBranch{TID: b.TID, Participant: b.Participant, CID: b.CID}
		if table, ok := strings.CutPrefix(b.Participant, "extstore:"); ok {
			if t := byName[table]; t != nil {
				if ins, del, ok := t.part2pc.exportOps(b.TID); ok {
					sb.Table = table
					sb.Ins = sortedExtIDs(ins)
					sb.Del = sortedExtIDs(del)
				}
			}
		}
		snap.manifest.Branch = append(snap.manifest.Branch, sb)
	}
	return snap, nil
}

func sortedExtIDs(m map[int][]int) []spExtIDs {
	out := make([]spExtIDs, 0, len(m))
	for part, ids := range m {
		out = append(out, spExtIDs{Part: part, IDs: ids})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Part < out[j].Part })
	return out
}

// writeSavepoint persists a captured snapshot: tmp dir, synced members,
// atomic rename, CURRENT pointer swap, then GC of older savepoints.
func (e *Engine) writeSavepoint(snap *spSnapshot) error {
	name := fmt.Sprintf("sp_%016x", snap.manifest.LSN)
	tmp := filepath.Join(e.dataDir, name+".tmp")
	final := filepath.Join(e.dataDir, name)
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return err
	}
	writeMember := func(file string, data []byte) error {
		if err := e.cfg.Faults.Check("checkpoint.write"); err != nil {
			return fmt.Errorf("savepoint write %s: %w", file, err)
		}
		w, err := newSavepointWriter(filepath.Join(tmp, file))
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			_ = w.Close()
			return err
		}
		return w.Close()
	}
	files := make([]string, 0, len(snap.rowFiles))
	for f := range snap.rowFiles {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		if err := writeMember(f, snap.rowFiles[f]); err != nil {
			return err
		}
	}
	mf, err := json.MarshalIndent(&snap.manifest, "", " ")
	if err != nil {
		return err
	}
	if err := writeMember("manifest.json", mf); err != nil {
		return err
	}
	if err := e.cfg.Faults.Check("checkpoint.install"); err != nil {
		return fmt.Errorf("savepoint install: %w", err)
	}
	if err := os.RemoveAll(final); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	// CURRENT pointer swap, atomically via rename.
	curTmp := filepath.Join(e.dataDir, "CURRENT.tmp")
	w, err := newSavepointWriter(curTmp)
	if err != nil {
		return err
	}
	if _, err := w.Write([]byte(name)); err != nil {
		_ = w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := os.Rename(curTmp, filepath.Join(e.dataDir, "CURRENT")); err != nil {
		return err
	}
	e.gcSavepoints(name)
	return nil
}

// gcSavepoints removes every savepoint directory except the active one.
// Best-effort: a leftover directory is unreferenced and harmless.
func (e *Engine) gcSavepoints(keep string) {
	entries, err := os.ReadDir(e.dataDir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		n := ent.Name()
		if !ent.IsDir() || !strings.HasPrefix(n, "sp_") || n == keep {
			continue
		}
		_ = os.RemoveAll(filepath.Join(e.dataDir, n))
	}
}

// startCheckpointer launches the background savepoint schedule when
// CheckpointEvery is set on a durable engine.
func (e *Engine) startCheckpointer() {
	if e.cfg.CheckpointEvery <= 0 || e.wal == nil || e.dataDir == "" {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	e.ckptStop = stop
	e.ckptDone = done
	go func() {
		defer close(done)
		tick := time.NewTicker(e.cfg.CheckpointEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if _, err := e.Savepoint(); err != nil {
					e.obs.Counter("wal.savepoint_errors_total").Inc()
				}
			}
		}
	}()
}

// stopCheckpointer stops the background schedule and waits for it.
func (e *Engine) stopCheckpointer() {
	if e.ckptStop == nil {
		return
	}
	close(e.ckptStop)
	<-e.ckptDone
	e.ckptStop = nil
	e.ckptDone = nil
}
