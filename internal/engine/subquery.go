package engine

import (
	"fmt"

	"hana/internal/exec"
	"hana/internal/expr"
	"hana/internal/sqlparse"
	"hana/internal/value"
)

// subqueryTransform is a WHERE-clause subquery waiting to be converted to a
// semi/anti join after the FROM tree is planned.
type subqueryTransform struct {
	anti      bool
	nullAware bool                 // NOT IN semantics
	outerExpr expr.Expr            // IN-subquery comparison expression (nil for EXISTS)
	sel       *sqlparse.SelectStmt // the subquery block
}

// asSubqueryTransform recognizes [NOT] IN (SELECT …), [NOT] EXISTS (…) —
// including NOT applied via the parser's generic negation node.
func asSubqueryTransform(c expr.Expr) (subqueryTransform, bool) {
	switch n := c.(type) {
	case *sqlparse.InSubqueryExpr:
		return subqueryTransform{anti: n.Negate, nullAware: n.Negate, outerExpr: n.E, sel: n.Sel}, true
	case *sqlparse.ExistsExpr:
		return subqueryTransform{anti: n.Negate, sel: n.Sel}, true
	case *expr.UnOp:
		if n.Op != expr.OpNot {
			return subqueryTransform{}, false
		}
		if tf, ok := asSubqueryTransform(n.E); ok {
			tf.anti = !tf.anti
			tf.nullAware = tf.anti && tf.outerExpr != nil
			return tf, true
		}
	}
	return subqueryTransform{}, false
}

// applyTransform converts one subquery transform into a semi/anti hash
// join on top of the current iterator.
func (p *planner) applyTransform(it exec.Iter, root *planNode, tf subqueryTransform) (exec.Iter, *planNode, error) {
	kind := exec.JoinSemi
	label := "Semi Join (IN/EXISTS subquery)"
	if tf.anti {
		kind = exec.JoinAnti
		label = "Anti Join (NOT IN/NOT EXISTS subquery)"
	}

	if tf.outerExpr != nil {
		// IN (SELECT …): uncorrelated; the subquery's single output column
		// is the build key.
		sub, subNode, err := p.blockRows(tf.sel)
		if err != nil {
			return nil, nil, err
		}
		if sub.Schema.Len() != 1 {
			return nil, nil, fmt.Errorf("IN subquery must return one column, got %d", sub.Schema.Len())
		}
		leftKey, err := bindToSchema(tf.outerExpr, it.Schema())
		if err != nil {
			return nil, nil, err
		}
		rightKey := expr.Col(sub.Schema.Cols[0].Name)
		if err := expr.Bind(rightKey, sub.Schema); err != nil {
			return nil, nil, err
		}
		join := &exec.HashJoin{
			Kind: kind, Left: it, Right: exec.NewSlice(sub.Schema, sub.Data),
			LeftKeys:      []expr.Expr{leftKey},
			RightKeys:     []expr.Expr{rightKey},
			NullAwareAnti: tf.nullAware,
		}
		return join, node(label, root, subNode), nil
	}

	// EXISTS: decorrelate equality predicates between outer and inner
	// columns into join keys.
	innerSchema, err := p.fromSchemaPreview(tf.sel.From)
	if err != nil {
		return nil, nil, err
	}
	outerSchema := it.Schema()
	var outerKeys, innerKeys []expr.Expr
	var remaining []expr.Expr
	for _, c := range expr.SplitConjuncts(tf.sel.Where) {
		if ok, ok2 := correlationPair(c, outerSchema, innerSchema); ok != nil {
			outerKeys = append(outerKeys, ok)
			innerKeys = append(innerKeys, ok2)
			continue
		}
		remaining = append(remaining, c)
	}
	if len(outerKeys) == 0 {
		// Uncorrelated EXISTS: evaluate once.
		probe := &sqlparse.SelectStmt{Items: tf.sel.Items, From: tf.sel.From,
			Where: expr.And(remaining...), GroupBy: tf.sel.GroupBy, Having: tf.sel.Having, Limit: 1}
		rows, _, err := p.blockRows(probe)
		if err != nil {
			return nil, nil, err
		}
		exists := rows.Len() > 0
		if exists != tf.anti {
			return it, node("Exists(const true)", root), nil
		}
		return exec.NewSlice(it.Schema(), nil), node("Exists(const false)", root), nil
	}

	// Plan the inner block projecting the correlation keys.
	items := make([]sqlparse.SelectItem, len(innerKeys))
	for i, k := range innerKeys {
		items[i] = sqlparse.SelectItem{Expr: expr.Clone(k)}
	}
	subSel := &sqlparse.SelectStmt{Items: items, From: tf.sel.From, Where: expr.And(remaining...), Limit: -1}
	sub, subNode, err := p.blockRows(subSel)
	if err != nil {
		return nil, nil, err
	}
	boundOuter := make([]expr.Expr, len(outerKeys))
	boundInner := make([]expr.Expr, len(innerKeys))
	for i := range outerKeys {
		if boundOuter[i], err = bindToSchema(outerKeys[i], outerSchema); err != nil {
			return nil, nil, err
		}
		boundInner[i] = expr.Col(sub.Schema.Cols[i].Name)
		if err := expr.Bind(boundInner[i], sub.Schema); err != nil {
			return nil, nil, err
		}
	}
	join := &exec.HashJoin{
		Kind: kind, Left: it, Right: exec.NewSlice(sub.Schema, sub.Data),
		LeftKeys: boundOuter, RightKeys: boundInner,
	}
	return join, node(label+" (decorrelated)", root, subNode), nil
}

// correlationPair decomposes an equality between an outer column and an
// inner column; returns (outerExpr, innerExpr) or nils.
func correlationPair(c expr.Expr, outer, inner *value.Schema) (expr.Expr, expr.Expr) {
	b, ok := c.(*expr.BinOp)
	if !ok || b.Op != expr.OpEq {
		return nil, nil
	}
	side := func(e expr.Expr) (isOuter, isInner bool) {
		cols := expr.Columns(e)
		if len(cols) == 0 {
			return false, false
		}
		isOuter, isInner = true, true
		for _, col := range cols {
			if inner.Find(col) >= 0 {
				isOuter = false
			} else {
				isInner = false
			}
			if outer.Find(col) < 0 {
				isOuter = false
			}
		}
		return isOuter, isInner
	}
	lOuter, lInner := side(b.L)
	rOuter, rInner := side(b.R)
	if lOuter && rInner {
		return b.L, b.R
	}
	if rOuter && lInner {
		return b.R, b.L
	}
	return nil, nil
}

// inlineScalarSubqueries replaces scalar subqueries with their computed
// literal value.
func (p *planner) inlineScalarSubqueries(c expr.Expr) (expr.Expr, error) {
	var firstErr error
	out := expr.Rewrite(c, func(n expr.Expr) expr.Expr {
		sq, ok := n.(*sqlparse.SubqueryExpr)
		if !ok {
			return nil
		}
		rows, _, err := p.blockRows(sq.Sel)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return expr.Lit(value.Null)
		}
		if rows.Schema.Len() != 1 {
			if firstErr == nil {
				firstErr = fmt.Errorf("scalar subquery must return one column")
			}
			return expr.Lit(value.Null)
		}
		switch rows.Len() {
		case 0:
			return expr.Lit(value.Null)
		case 1:
			return expr.Lit(rows.Data[0][0])
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("scalar subquery returned %d rows", rows.Len())
			}
			return expr.Lit(value.Null)
		}
	})
	return out, firstErr
}

// fromSchemaPreview resolves the schema a FROM tree will produce without
// executing it — used for decorrelation analysis.
func (p *planner) fromSchemaPreview(te sqlparse.TableExpr) (*value.Schema, error) {
	switch t := te.(type) {
	case nil:
		return value.NewSchema(), nil
	case *sqlparse.TableRef:
		name, binding := t.Name(), t.Binding()
		if vt, ok := p.e.cat.VirtualTable(name); ok {
			return vt.Schema.Qualify(binding), nil
		}
		if st, err := p.e.table(name); err == nil {
			return st.meta.Schema.Qualify(binding), nil
		}
		return nil, fmt.Errorf("table %s not found", name)
	case *sqlparse.JoinExpr:
		l, err := p.fromSchemaPreview(t.L)
		if err != nil {
			return nil, err
		}
		r, err := p.fromSchemaPreview(t.R)
		if err != nil {
			return nil, err
		}
		return l.Concat(r), nil
	case *sqlparse.TableFuncRef:
		if vf, ok := p.e.cat.VirtualFunction(t.Name); ok {
			return vf.Returns.Qualify(t.Binding()), nil
		}
		return nil, fmt.Errorf("table function %s not found", t.Name)
	case *sqlparse.SubqueryTable:
		inner, err := p.fromSchemaPreview(t.Sel.From)
		if err != nil {
			return nil, err
		}
		items, err := expandStars(t.Sel.Items, inner)
		if err != nil {
			return nil, err
		}
		out := &value.Schema{}
		for _, item := range items {
			out.Cols = append(out.Cols, value.Column{
				Name: outName(item), Kind: inferKind(item.Expr, inner), Nullable: true,
			})
		}
		return out.Qualify(t.Alias), nil
	}
	return nil, fmt.Errorf("unsupported FROM element %T", te)
}
