package engine

import (
	"errors"
	"fmt"
	"strings"

	"hana/internal/exec"
	"hana/internal/expr"
	"hana/internal/faults"
	"hana/internal/fed"
	"hana/internal/sqlparse"
)

// tryShipWhole checks whether the complete statement can be processed by a
// single remote source — every referenced table (including tables inside
// WHERE subqueries) is a virtual table of the same source, and the source's
// capabilities cover the constructs used. On success the statement is
// rewritten against the remote object names, shipped, and only ORDER
// BY/LIMIT are applied locally (§4.2: "It is even possible that complete
// queries are processed via Hive and Hadoop").
func (p *planner) tryShipWhole(sel *sqlparse.SelectStmt) (exec.Iter, *planNode, bool, error) {
	info := &shipInfo{}
	if !p.shippableBlock(sel, info) || info.source == "" {
		return nil, nil, false, nil
	}
	caps := info.adapter.Capabilities()
	switch {
	case !caps.Select,
		info.tableCount > 1 && !caps.Joins,
		info.hasOuter && !caps.JoinsOuter,
		info.hasAgg && !caps.GroupBy,
		info.hasSubquery && !caps.Subqueries:
		p.plan.Note("rejected ship-whole: %s lacks capability for the statement", info.source)
		return nil, nil, false, nil
	}

	shipped := p.rewriteForShip(sel)
	// ORDER BY and LIMIT are applied locally: no ordering assumptions are
	// made about remote results (the paper's evaluation removes them for
	// the same reason).
	shipped.OrderBy = nil
	shipped.Limit = -1
	shipped.Hints = nil
	sql := sqlparse.RenderSelect(shipped)

	opts := p.remoteOpts(hasAnyPredicate(sel))
	res, err := p.e.remoteQuery(p.ctx, info.source, info.adapter, sql, opts)
	if err != nil {
		if errors.Is(err, faults.ErrCircuitOpen) {
			// The source's breaker is open and no fallback materialization
			// is valid: decline ship-whole so the planner can try per-leaf
			// strategies (which may hit leaf-level fallback entries).
			p.e.Metrics.PlannerFallbacks.Inc()
			p.plan.Note("rejected ship-whole: %s breaker open, falling back to per-leaf strategies", info.source)
			return nil, nil, false, nil
		}
		return nil, nil, false, fmt.Errorf("remote source %s: %w", info.source, err)
	}
	p.e.Metrics.RemoteQueries.Inc()
	p.e.Metrics.RemoteRowsFetched.Add(int64(res.Rows.Len()))
	if res.FromCache {
		p.e.Metrics.RemoteCacheHits.Inc()
	}
	p.plan.Note("chose ship-whole to %s: %d tables in one shipped query", info.source, info.tableCount)

	// Name the result columns after the local select items.
	schema := res.Rows.Schema
	if len(sel.Items) == schema.Len() {
		named := schema.Clone()
		for i, item := range sel.Items {
			if !item.Star {
				named.Cols[i].Name = outName(item)
			}
		}
		schema = named
	}
	label := fmt.Sprintf("Remote Query [%s] (%d rows)", info.source, res.Rows.Len())
	if res.FromCache {
		label += " [remote cache hit]"
	}
	if res.FromFallback {
		label += " [fallback cache]"
	}
	root := node(label, node("shipped: "+sql))
	it := exec.Iter(exec.Rename(exec.NewSlice(res.Rows.Schema, res.Rows.Data), schema))

	it, root, err = p.applyOrderLimit(sel, sel.Items, orderExprsOf(sel), it, root)
	if err != nil {
		return nil, nil, false, err
	}
	return it, root, true, nil
}

// hasAnyPredicate reports whether the statement carries a predicate in any
// of its query blocks (outer WHERE/HAVING, outer-join ON filters, or inside
// derived tables) — the §4.4 rule "we only materialize queries with
// predicates" applies to the statement as a whole.
func hasAnyPredicate(sel *sqlparse.SelectStmt) bool {
	if sel == nil {
		return false
	}
	if sel.Where != nil || sel.Having != nil {
		return true
	}
	var fromHas func(te sqlparse.TableExpr) bool
	fromHas = func(te sqlparse.TableExpr) bool {
		switch t := te.(type) {
		case *sqlparse.JoinExpr:
			if t.On != nil && len(expr.SplitConjuncts(t.On)) > 1 {
				// Joins with filtering ON conjuncts beyond the key count.
				return true
			}
			return fromHas(t.L) || fromHas(t.R)
		case *sqlparse.SubqueryTable:
			return hasAnyPredicate(t.Sel)
		}
		return false
	}
	return fromHas(sel.From)
}

func orderExprsOf(sel *sqlparse.SelectStmt) []expr.Expr {
	out := make([]expr.Expr, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		out[i] = o.Expr
	}
	return out
}

type shipInfo struct {
	source      string
	adapter     fed.Adapter
	tableCount  int
	hasOuter    bool
	hasAgg      bool
	hasSubquery bool
}

// shippableBlock checks one query block recursively.
func (p *planner) shippableBlock(sel *sqlparse.SelectStmt, info *shipInfo) bool {
	if sel.From == nil {
		return false
	}
	if len(sel.GroupBy) > 0 {
		info.hasAgg = true
	}
	for _, item := range sel.Items {
		if item.Expr != nil && expr.HasAggregate(item.Expr) {
			info.hasAgg = true
		}
	}
	if !p.shippableFrom(sel.From, info) {
		return false
	}
	ok := true
	for _, c := range expr.SplitConjuncts(sel.Where) {
		expr.Walk(c, func(n expr.Expr) bool {
			switch sq := n.(type) {
			case *sqlparse.InSubqueryExpr:
				info.hasSubquery = true
				if !p.shippableBlock(sq.Sel, info) {
					ok = false
				}
				return false
			case *sqlparse.ExistsExpr:
				info.hasSubquery = true
				if !p.shippableBlock(sq.Sel, info) {
					ok = false
				}
				return false
			case *sqlparse.SubqueryExpr:
				info.hasSubquery = true
				if !p.shippableBlock(sq.Sel, info) {
					ok = false
				}
				return false
			}
			return true
		})
	}
	return ok
}

func (p *planner) shippableFrom(te sqlparse.TableExpr, info *shipInfo) bool {
	switch t := te.(type) {
	case *sqlparse.TableRef:
		vt, ok := p.e.cat.VirtualTable(t.Name())
		if !ok {
			return false
		}
		if info.source == "" {
			info.source = vt.Source
			a, err := p.e.adapter(vt.Source)
			if err != nil {
				return false
			}
			info.adapter = a
		} else if !equalFold(info.source, vt.Source) {
			return false
		}
		info.tableCount++
		return true
	case *sqlparse.JoinExpr:
		if t.Type == sqlparse.JoinLeft || t.Type == sqlparse.JoinRight || t.Type == sqlparse.JoinFull {
			info.hasOuter = true
		}
		return p.shippableFrom(t.L, info) && p.shippableFrom(t.R, info)
	case *sqlparse.SubqueryTable:
		return p.shippableBlock(t.Sel, info)
	default:
		return false
	}
}

// rewriteForShip deep-copies the statement replacing virtual table names
// with their remote object paths (keeping the local binding as the alias so
// column references resolve unchanged on the remote side).
func (p *planner) rewriteForShip(sel *sqlparse.SelectStmt) *sqlparse.SelectStmt {
	out := *sel
	out.From = p.rewriteFromForShip(sel.From)
	out.Where = p.rewriteExprForShip(sel.Where)
	return &out
}

func (p *planner) rewriteFromForShip(te sqlparse.TableExpr) sqlparse.TableExpr {
	switch t := te.(type) {
	case *sqlparse.TableRef:
		if vt, ok := p.e.cat.VirtualTable(t.Name()); ok {
			return &sqlparse.TableRef{Parts: vt.Remote, Alias: t.Binding()}
		}
		return t
	case *sqlparse.JoinExpr:
		return &sqlparse.JoinExpr{Type: t.Type, L: p.rewriteFromForShip(t.L), R: p.rewriteFromForShip(t.R), On: t.On}
	case *sqlparse.SubqueryTable:
		return &sqlparse.SubqueryTable{Sel: p.rewriteForShip(t.Sel), Alias: t.Alias}
	}
	return te
}

func (p *planner) rewriteExprForShip(e expr.Expr) expr.Expr {
	if e == nil {
		return nil
	}
	return expr.Rewrite(e, func(n expr.Expr) expr.Expr {
		switch sq := n.(type) {
		case *sqlparse.InSubqueryExpr:
			return &sqlparse.InSubqueryExpr{E: sq.E, Sel: p.rewriteForShip(sq.Sel), Negate: sq.Negate}
		case *sqlparse.ExistsExpr:
			return &sqlparse.ExistsExpr{Sel: p.rewriteForShip(sq.Sel), Negate: sq.Negate}
		case *sqlparse.SubqueryExpr:
			return &sqlparse.SubqueryExpr{Sel: p.rewriteForShip(sq.Sel)}
		}
		return nil
	})
}

func equalFold(a, b string) bool { return strings.EqualFold(a, b) }
