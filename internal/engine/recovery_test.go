package engine

import (
	"context"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"hana/internal/faults"
	"hana/internal/txn"
	"hana/internal/value"
)

func openDurable(t *testing.T, dir string, cfg Config) *Engine {
	t.Helper()
	e, err := Recover(dir, cfg)
	if err != nil {
		t.Fatalf("Recover(%s): %v", dir, err)
	}
	return e
}

// renderRows renders a result set into sorted strings for order-insensitive
// comparison across restarts.
func renderRows(rows []value.Row) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRecoverCommittedAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir, Config{})
	exec1(t, e, `CREATE TABLE hot (id BIGINT, v VARCHAR(20))`)
	exec1(t, e, `CREATE TABLE hist (id BIGINT) USING EXTENDED STORAGE`)
	exec1(t, e, `INSERT INTO hot VALUES (1, 'a'), (2, 'b'), (3, 'c')`)
	exec1(t, e, `INSERT INTO hist VALUES (10), (20)`)
	exec1(t, e, `UPDATE hot SET v = 'B' WHERE id = 2`)
	exec1(t, e, `DELETE FROM hot WHERE id = 3`)
	wantHot := renderRows(exec1(t, e, `SELECT id, v FROM hot`).Rows)
	wantHist := renderRows(exec1(t, e, `SELECT id FROM hist`).Rows)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	r := openDurable(t, dir, Config{})
	defer r.Close()
	info := r.RecoveryInfo()
	if !info.Recovered {
		t.Fatalf("expected recovery to run: %+v", info)
	}
	gotHot := renderRows(exec1(t, r, `SELECT id, v FROM hot`).Rows)
	gotHist := renderRows(exec1(t, r, `SELECT id FROM hist`).Rows)
	if !sameRows(wantHot, gotHot) {
		t.Fatalf("hot rows: want %v, got %v", wantHot, gotHot)
	}
	if !sameRows(wantHist, gotHist) {
		t.Fatalf("hist rows: want %v, got %v", wantHist, gotHist)
	}
	if info.Committed == 0 || info.DataRecords == 0 {
		t.Fatalf("replay summary looks empty: %+v", info)
	}
}

func TestRecoverAbortsUndecidedTransaction(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir, Config{})
	exec1(t, e, `CREATE TABLE t (id BIGINT)`)
	exec1(t, e, `INSERT INTO t VALUES (1)`)
	// An open transaction whose decision never reaches the log: its insert
	// is redo-logged but must not survive recovery.
	tx := e.Begin()
	if _, err := e.ExecuteContext(context.Background(), `INSERT INTO t VALUES (99)`, WithTx(tx)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	r := openDurable(t, dir, Config{})
	defer r.Close()
	rows := renderRows(exec1(t, r, `SELECT id FROM t`).Rows)
	if !sameRows(rows, []string{"1"}) {
		t.Fatalf("undecided insert leaked: %v", rows)
	}
	if r.RecoveryInfo().Orphaned != 1 {
		t.Fatalf("Orphaned = %d, want 1 (%+v)", r.RecoveryInfo().Orphaned, r.RecoveryInfo())
	}
}

func TestRecoverRolledBackStaysAbsent(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir, Config{})
	exec1(t, e, `CREATE TABLE t (id BIGINT)`)
	tx := e.Begin()
	if _, err := e.ExecuteContext(context.Background(), `INSERT INTO t VALUES (7)`, WithTx(tx)); err != nil {
		t.Fatal(err)
	}
	if err := e.Rollback(tx); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `INSERT INTO t VALUES (8)`)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	r := openDurable(t, dir, Config{})
	defer r.Close()
	rows := renderRows(exec1(t, r, `SELECT id FROM t`).Rows)
	if !sameRows(rows, []string{"8"}) {
		t.Fatalf("aborted insert resurrected: %v", rows)
	}
	if r.RecoveryInfo().Aborted != 1 {
		t.Fatalf("Aborted = %d, want 1", r.RecoveryInfo().Aborted)
	}
}

func TestSavepointShrinksReplayAndTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir, Config{})
	exec1(t, e, `CREATE TABLE t (id BIGINT, v VARCHAR(10))`)
	exec1(t, e, `INSERT INTO t VALUES (1, 'pre'), (2, 'pre')`)
	preRecords := e.WAL().Stats().Appends

	s, err := e.Savepoint()
	if err != nil {
		t.Fatalf("Savepoint: %v", err)
	}
	if s == 0 {
		t.Fatal("savepoint LSN must be nonzero")
	}
	exec1(t, e, `INSERT INTO t VALUES (3, 'post')`)
	want := renderRows(exec1(t, e, `SELECT id, v FROM t`).Rows)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	r := openDurable(t, dir, Config{})
	defer r.Close()
	info := r.RecoveryInfo()
	if info.SavepointLSN != s {
		t.Fatalf("SavepointLSN = %d, want %d", info.SavepointLSN, s)
	}
	// The replayed suffix must be much smaller than the full history.
	if info.WALRecords >= int(preRecords) {
		t.Fatalf("WAL suffix not shrunk: replayed %d records, pre-savepoint history had %d",
			info.WALRecords, preRecords)
	}
	got := renderRows(exec1(t, r, `SELECT id, v FROM t`).Rows)
	if !sameRows(want, got) {
		t.Fatalf("want %v, got %v", want, got)
	}
}

func TestRecoverTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir, Config{})
	exec1(t, e, `CREATE TABLE t (id BIGINT)`)
	exec1(t, e, `INSERT INTO t VALUES (1), (2)`)
	want := renderRows(exec1(t, e, `SELECT id FROM t`).Rows)
	walPath := e.WAL().Path()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn tail: half a record of garbage after the last durable record.
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r := openDurable(t, dir, Config{})
	defer r.Close()
	if !r.RecoveryInfo().TornTail {
		t.Fatalf("torn tail not detected: %+v", r.RecoveryInfo())
	}
	got := renderRows(exec1(t, r, `SELECT id FROM t`).Rows)
	if !sameRows(want, got) {
		t.Fatalf("want %v, got %v", want, got)
	}
	// The engine keeps appending past the repaired tail.
	exec1(t, r, `INSERT INTO t VALUES (3)`)
}

func TestRecoverDDLReplay(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir, Config{})
	exec1(t, e, `CREATE TABLE keep (id BIGINT)`)
	exec1(t, e, `CREATE TABLE gone (id BIGINT)`)
	exec1(t, e, `INSERT INTO keep VALUES (1)`)
	exec1(t, e, `ALTER TABLE keep ADD (tag VARCHAR(10))`)
	exec1(t, e, `INSERT INTO keep VALUES (2, 'x')`)
	exec1(t, e, `DROP TABLE gone`)
	want := renderRows(exec1(t, e, `SELECT id, tag FROM keep`).Rows)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	r := openDurable(t, dir, Config{})
	defer r.Close()
	got := renderRows(exec1(t, r, `SELECT id, tag FROM keep`).Rows)
	if !sameRows(want, got) {
		t.Fatalf("want %v, got %v", want, got)
	}
	if _, err := r.ExecuteContext(context.Background(), `SELECT * FROM gone`); err == nil {
		t.Fatal("dropped table resurrected by replay")
	}
}

func TestRecoverInDoubtBranchAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(1)
	inj.SetSleep(func(time.Duration) {})
	e := openDurable(t, dir, Config{
		Faults: inj,
		Retry:  faults.RetryPolicy{MaxAttempts: 1},
	})
	exec1(t, e, `CREATE TABLE psa (id BIGINT) USING EXTENDED STORAGE`)
	// Phase 2 fails after the commit decision is durable: the branch goes
	// in-doubt with a decided commit.
	inj.FailN("txn.commit.extstore:psa", 1)
	tx := e.Begin()
	if _, err := e.ExecuteContext(context.Background(), `INSERT INTO psa VALUES (42)`, WithTx(tx)); err != nil {
		t.Fatal(err)
	}
	if err := e.CommitTx(tx); err != nil {
		t.Fatalf("decision was commit: %v", err)
	}
	if len(e.TxnManager().InDoubt()) != 1 {
		t.Fatalf("expected one in-doubt branch before crash")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	r := openDurable(t, dir, Config{})
	defer r.Close()
	info := r.RecoveryInfo()
	if info.InDoubt != 1 {
		t.Fatalf("InDoubt = %d, want 1 (%+v)", info.InDoubt, info)
	}
	iv := exec1(t, r, `SELECT transaction_id, decision FROM M_INDOUBT_TRANSACTIONS()`)
	if len(iv.Rows) != 1 || iv.Rows[0][1].String() != "COMMIT" {
		t.Fatalf("M_INDOUBT_TRANSACTIONS = %v", iv.Rows)
	}
	if err := r.ResolveAllInDoubt(); err != nil {
		t.Fatalf("resolving recovered branch: %v", err)
	}
	rows := renderRows(exec1(t, r, `SELECT id FROM psa`).Rows)
	if !sameRows(rows, []string{"42"}) {
		t.Fatalf("committed in-doubt row lost: %v", rows)
	}
}

func TestRecoveryViewsAndMetrics(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir, Config{WALSync: txn.SyncPolicy{Mode: txn.SyncAlways}})
	exec1(t, e, `CREATE TABLE t (id BIGINT)`)
	exec1(t, e, `INSERT INTO t VALUES (1)`)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	r := openDurable(t, dir, Config{})
	defer r.Close()
	rec := exec1(t, r, `SELECT metric, val FROM M_RECOVERY()`)
	found := map[string]int64{}
	for _, row := range rec.Rows {
		found[row[0].String()] = row[1].Int()
	}
	if found["recovered"] != 1 {
		t.Fatalf("M_RECOVERY = %v", found)
	}
	ws := exec1(t, r, `SELECT metric, val FROM M_WAL_STATISTICS()`)
	if len(ws.Rows) == 0 {
		t.Fatal("M_WAL_STATISTICS empty on durable engine")
	}
}

func TestRecoverBulkLoadAndFlexible(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir, Config{})
	exec1(t, e, `CREATE FLEXIBLE TABLE f (id BIGINT)`)
	exec1(t, e, `INSERT INTO f (id, extra) VALUES (1, 'grew')`)
	if err := e.BulkLoad("f", []value.Row{{value.NewInt(2), value.NewString("bulk")}}); err != nil {
		t.Fatal(err)
	}
	want := renderRows(exec1(t, e, `SELECT id, extra FROM f`).Rows)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	r := openDurable(t, dir, Config{})
	defer r.Close()
	got := renderRows(exec1(t, r, `SELECT id, extra FROM f`).Rows)
	if !sameRows(want, got) {
		t.Fatalf("want %v, got %v", want, got)
	}
}
