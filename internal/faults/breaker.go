package faults

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is the circuit-breaker state machine position.
type BreakerState int

// Breaker states: Closed admits calls, Open rejects them, HalfOpen admits
// exactly one probe after the cooldown.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state in M_ views and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "CLOSED"
	case BreakerOpen:
		return "OPEN"
	case BreakerHalfOpen:
		return "HALF-OPEN"
	}
	return "?"
}

// Breaker is a per-remote-source circuit breaker. Threshold consecutive
// failures open it; after Cooldown a single half-open probe is admitted,
// and its outcome closes or re-opens the circuit.
type Breaker struct {
	name      string
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu sync.Mutex
	// hana:guardedby mu
	state BreakerState
	// hana:guardedby mu
	consecFails int
	// hana:guardedby mu
	probing bool
	// hana:guardedby mu
	openedAt time.Time
	// hana:guardedby mu
	totalFails int64
	// hana:guardedby mu
	opens int64
	// hana:guardedby mu
	retries int64
	// hana:guardedby mu
	lastErr string
	// hana:guardedby mu
	observer func(BreakerStats)
}

// NewBreaker creates a breaker. threshold<=0 defaults to 3, cooldown<=0 to
// 250ms; now==nil uses time.Now.
func NewBreaker(name string, threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 250 * time.Millisecond
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{name: name, threshold: threshold, cooldown: cooldown, now: now}
}

// SetClock replaces the breaker's clock (deterministic tests).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// SetObserver installs a callback invoked with a fresh stats snapshot after
// every state-changing event (success, failure, retry, half-open probe
// admission). The observer runs outside the breaker's lock, so it may take
// its own locks — the metrics registry publishes breaker state through it.
func (b *Breaker) SetObserver(fn func(BreakerStats)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.observer = fn
}

// notifyLocked captures the observer and a snapshot while the lock is held;
// the caller must invoke the returned function after releasing b.mu.
func (b *Breaker) notifyLocked() func() {
	if b.observer == nil {
		return func() {}
	}
	fn, st := b.observer, b.snapshotLocked()
	return func() { fn(st) }
}

// Allow reports whether a call may proceed. When the circuit is open and
// the cooldown has elapsed it transitions to half-open and admits exactly
// one probe; concurrent callers keep getting the open error until the
// probe resolves via Success or Failure.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.mu.Unlock()
		return nil
	case BreakerHalfOpen:
		if b.probing {
			b.mu.Unlock()
			return fmt.Errorf("%w: %s probe in flight", ErrCircuitOpen, b.name)
		}
		b.probing = true
		b.mu.Unlock()
		return nil
	default: // BreakerOpen
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			notify := b.notifyLocked()
			b.mu.Unlock()
			notify()
			return nil
		}
		b.mu.Unlock()
		return fmt.Errorf("%w: %s cooling down", ErrCircuitOpen, b.name)
	}
}

// Success records a successful call: the circuit closes and failure
// bookkeeping resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.consecFails = 0
	b.probing = false
	b.lastErr = ""
	notify := b.notifyLocked()
	b.mu.Unlock()
	notify()
}

// Failure records a failed call. A failed half-open probe re-opens the
// circuit immediately; in the closed state the circuit opens once the
// consecutive-failure threshold is reached.
func (b *Breaker) Failure(err error) {
	b.mu.Lock()
	b.totalFails++
	b.consecFails++
	if err != nil {
		b.lastErr = err.Error()
	}
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		if b.consecFails >= b.threshold {
			b.open()
		}
	}
	b.probing = false
	notify := b.notifyLocked()
	b.mu.Unlock()
	notify()
}

func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.opens++
}

// NoteRetry counts a retry attempt against this breaker's source for
// observability (M_REMOTE_SOURCE_HEALTH).
func (b *Breaker) NoteRetry() {
	b.mu.Lock()
	b.retries++
	notify := b.notifyLocked()
	b.mu.Unlock()
	notify()
}

// BreakerStats is a point-in-time snapshot for monitoring views.
type BreakerStats struct {
	Name        string
	State       BreakerState
	ConsecFails int
	TotalFails  int64
	Opens       int64
	Retries     int64
	LastError   string
}

// Snapshot copies the breaker's counters.
func (b *Breaker) Snapshot() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.snapshotLocked()
}

func (b *Breaker) snapshotLocked() BreakerStats {
	return BreakerStats{
		Name:        b.name,
		State:       b.state,
		ConsecFails: b.consecFails,
		TotalFails:  b.totalFails,
		Opens:       b.opens,
		Retries:     b.retries,
		LastError:   b.lastErr,
	}
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
