package faults

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy retries transient failures with capped exponential backoff
// and seeded jitter. The zero value is usable and applies the defaults
// documented on each field.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 1ms);
	// it doubles per attempt.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 50ms).
	MaxDelay time.Duration
	// JitterSeed makes the jitter stream deterministic per (seed, op).
	JitterSeed int64
	// Sleep replaces time.Sleep (tests use a no-op).
	Sleep func(time.Duration)
	// Classify decides retryability (default IsTransient).
	Classify func(error) bool
	// OnRetry observes each retry decision (metrics hooks).
	OnRetry func(op string, attempt int, err error)
}

// Do runs f until it succeeds, fails non-transiently, or the attempt
// budget drains. The final error (wrapped with the attempt count when the
// budget drained) keeps the original error in its chain, so classification
// survives for callers.
func (p RetryPolicy) Do(op string, f func() error) error {
	// Do is the documented ctx-free boundary for subsystems that have no
	// caller context (Close paths, background flushes); everything with a
	// ctx must call DoCtx directly.
	//lint:ignore ctxflow Do is the deliberate ctx-free entry; ctx-bearing callers use DoCtx
	return p.DoCtx(context.Background(), op, f)
}

// DoCtx is Do with cancellation: a cancelled context aborts before the
// next attempt and interrupts backoff sleeps, returning ctx.Err(). An
// injected Sleep (tests) is still honored; cancellation is then only
// checked between attempts.
func (p RetryPolicy) DoCtx(ctx context.Context, op string, f func() error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	base := p.BaseDelay
	if base <= 0 {
		base = time.Millisecond
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 50 * time.Millisecond
	}
	classify := p.Classify
	if classify == nil {
		classify = IsTransient
	}
	rng := rand.New(rand.NewSource(seedFor(p.JitterSeed, op)))
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = f()
		if err == nil {
			return nil
		}
		if !classify(err) {
			// Permanent: retrying cannot help.
			return err
		}
		if attempt >= attempts {
			return fmt.Errorf("%s: gave up after %d attempts: %w", op, attempts, err)
		}
		if p.OnRetry != nil {
			p.OnRetry(op, attempt, err)
		}
		d := base << (attempt - 1)
		if d > maxDelay || d <= 0 {
			d = maxDelay
		}
		// Jitter in [0.5, 1.0) of the backoff, from the seeded stream.
		wait := time.Duration(float64(d) * (0.5 + 0.5*rng.Float64()))
		if p.Sleep != nil {
			p.Sleep(wait)
			continue
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}
