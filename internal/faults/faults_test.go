package faults

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestClassification(t *testing.T) {
	base := errors.New("boom")
	tr := Transient(base)
	fa := Fatal(base)
	if !IsTransient(tr) || IsTransient(fa) || IsTransient(base) {
		t.Fatalf("transient classification wrong")
	}
	if !IsFatal(fa) || IsFatal(tr) || IsFatal(base) {
		t.Fatalf("fatal classification wrong")
	}
	if Transient(nil) != nil || Fatal(nil) != nil {
		t.Fatalf("nil must stay nil")
	}
	// Classification survives wrapping.
	wrapped := fmt.Errorf("op failed: %w", tr)
	if !IsTransient(wrapped) {
		t.Fatalf("wrapping lost transient class")
	}
	if !errors.Is(wrapped, base) {
		t.Fatalf("original error lost from chain")
	}
	if !IsClassified(tr) || !IsClassified(fa) || IsClassified(base) {
		t.Fatalf("IsClassified wrong")
	}
	open := fmt.Errorf("%w: hive", ErrCircuitOpen)
	if !IsClassified(open) {
		t.Fatalf("breaker rejection must count as classified")
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	if err := in.Check("fed.query.hive"); err != nil {
		t.Fatalf("nil injector must be a no-op, got %v", err)
	}
	if in.Calls("fed") != 0 || in.Injected("fed") != 0 {
		t.Fatalf("nil injector stats must be zero")
	}
}

func TestInjectorFailNAndHierarchy(t *testing.T) {
	in := New(1)
	in.FailN("txn.commit", 2)
	// Hierarchical match: schedule on the prefix fires for full names.
	if err := in.Check("txn.commit.extstore:orders"); !IsTransient(err) {
		t.Fatalf("want injected transient, got %v", err)
	}
	if err := in.Check("txn.commit.extstore:psa"); !IsTransient(err) {
		t.Fatalf("want injected transient, got %v", err)
	}
	if err := in.Check("txn.commit.extstore:psa"); err != nil {
		t.Fatalf("schedule drained, want nil, got %v", err)
	}
	// Sibling site untouched.
	if err := in.Check("txn.prepare.extstore:psa"); err != nil {
		t.Fatalf("prepare must be clean, got %v", err)
	}
	if got := in.Calls("txn.commit"); got != 3 {
		t.Fatalf("Calls(txn.commit) = %d, want 3", got)
	}
	if got := in.Injected("txn.commit"); got != 2 {
		t.Fatalf("Injected(txn.commit) = %d, want 2", got)
	}
	if got := in.Injected("txn"); got != 2 {
		t.Fatalf("Injected(txn) = %d, want 2", got)
	}
}

func TestInjectorExactBeatsPrefix(t *testing.T) {
	in := New(1)
	in.FailN("hdfs", 5)
	in.Clear("hdfs")
	in.FailN("hdfs.write", 1)
	if err := in.Check("hdfs.read"); err != nil {
		t.Fatalf("hdfs.read must not match hdfs.write, got %v", err)
	}
	if err := in.Check("hdfs.write"); !IsTransient(err) {
		t.Fatalf("want fault at hdfs.write, got %v", err)
	}
}

func TestInjectorFailWithAndFatal(t *testing.T) {
	in := New(1)
	sentinel := errors.New("replica timeout")
	in.FailWith("hdfs.read", 1, sentinel)
	err := in.Check("hdfs.read")
	if !errors.Is(err, sentinel) || !IsTransient(err) {
		t.Fatalf("want transient sentinel, got %v", err)
	}
	in.FailFatal("fed.query.hive", 1)
	err = in.Check("fed.query.hive")
	if !IsFatal(err) {
		t.Fatalf("want fatal injected error, got %v", err)
	}
}

func TestInjectorProbDeterministic(t *testing.T) {
	run := func() []bool {
		in := New(42)
		in.FailProb("fed.query", 0.5)
		out := make([]bool, 32)
		for i := range out {
			out[i] = in.Check("fed.query.hive") != nil
		}
		return out
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different fault stream at %d", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("p=0.5 produced degenerate stream: %d/%d", fails, len(a))
	}
}

func TestInjectorLatency(t *testing.T) {
	in := New(1)
	var slept time.Duration
	in.SetSleep(func(d time.Duration) { slept += d })
	in.Latency("fed.query", 5*time.Millisecond)
	if err := in.Check("fed.query.hive"); err != nil {
		t.Fatalf("latency-only schedule must not fail, got %v", err)
	}
	if slept != 5*time.Millisecond {
		t.Fatalf("slept %v, want 5ms", slept)
	}
}

func TestInjectorConcurrentCheck(t *testing.T) {
	in := New(7)
	in.FailN("fed.query", 50)
	var wg sync.WaitGroup
	var mu sync.Mutex
	injected := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if in.Check("fed.query.hive") != nil {
					mu.Lock()
					injected++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if injected != 50 {
		t.Fatalf("FailN(50) fired %d times under concurrency", injected)
	}
}

func TestRetryDo(t *testing.T) {
	var delays []time.Duration
	p := RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    3 * time.Millisecond,
		Sleep:       func(d time.Duration) { delays = append(delays, d) },
	}
	n := 0
	err := p.Do("fed.query.hive", func() error {
		n++
		if n < 3 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("retry did not absorb transients: err=%v n=%d", err, n)
	}
	if len(delays) != 2 {
		t.Fatalf("want 2 backoff sleeps, got %d", len(delays))
	}
	for i, d := range delays {
		lo := time.Duration(float64(time.Millisecond<<i) * 0.5)
		hi := time.Millisecond << i
		if i >= 1 && hi > 3*time.Millisecond {
			hi = 3 * time.Millisecond
		}
		if d < lo || d > hi {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
}

func TestRetryGivesUpAndKeepsChain(t *testing.T) {
	base := errors.New("still down")
	p := RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}
	n := 0
	err := p.Do("op", func() error { n++; return Transient(base) })
	if n != 3 {
		t.Fatalf("attempts = %d, want 3", n)
	}
	if !errors.Is(err, base) || !IsTransient(err) {
		t.Fatalf("final error lost chain or class: %v", err)
	}
}

func TestRetryStopsOnFatalAndUnclassified(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}}
	n := 0
	_ = p.Do("op", func() error { n++; return Fatal(errors.New("nope")) })
	if n != 1 {
		t.Fatalf("fatal retried: %d attempts", n)
	}
	n = 0
	_ = p.Do("op", func() error { n++; return errors.New("semantic") })
	if n != 1 {
		t.Fatalf("unclassified retried: %d attempts", n)
	}
}

func TestRetryJitterDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var ds []time.Duration
		p := RetryPolicy{
			MaxAttempts: 5,
			JitterSeed:  99,
			Sleep:       func(d time.Duration) { ds = append(ds, d) },
		}
		_ = p.Do("fed.query.hive", func() error { return Transient(errors.New("x")) })
		return ds
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed gave different jitter at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := NewBreaker("hive", 2, 100*time.Millisecond, clock)
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker must allow: %v", err)
	}
	b.Failure(errors.New("f1"))
	if b.State() != BreakerClosed {
		t.Fatalf("one failure below threshold must not open")
	}
	b.Failure(errors.New("f2"))
	if b.State() != BreakerOpen {
		t.Fatalf("threshold failures must open, state=%v", b.State())
	}
	err := b.Allow()
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker must reject with ErrCircuitOpen, got %v", err)
	}
	// Cooldown elapses: exactly one probe admitted.
	now = now.Add(100 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe must be admitted: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second caller during probe must be rejected, got %v", err)
	}
	// Failed probe re-opens.
	b.Failure(errors.New("probe failed"))
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe must reopen, state=%v", b.State())
	}
	// Next cooldown, successful probe closes.
	now = now.Add(100 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe must be admitted: %v", err)
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("successful probe must close, state=%v", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed after recovery must allow: %v", err)
	}
	st := b.Snapshot()
	if st.Opens != 2 || st.TotalFails != 3 || st.Name != "hive" {
		t.Fatalf("snapshot wrong: %+v", st)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker("psa", 3, time.Second, func() time.Time { return time.Unix(0, 0) })
	b.Failure(errors.New("f"))
	b.Failure(errors.New("f"))
	b.Success()
	b.Failure(errors.New("f"))
	b.Failure(errors.New("f"))
	if b.State() != BreakerClosed {
		t.Fatalf("success must reset the consecutive-failure streak")
	}
	b.NoteRetry()
	b.NoteRetry()
	if st := b.Snapshot(); st.Retries != 2 {
		t.Fatalf("retries = %d, want 2", st.Retries)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	if BreakerClosed.String() != "CLOSED" || BreakerOpen.String() != "OPEN" || BreakerHalfOpen.String() != "HALF-OPEN" {
		t.Fatalf("state strings wrong")
	}
}

func TestRetryDoCtxCancelledBeforeAttempt(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 0
	err := p.DoCtx(ctx, "op", func() error { n++; return nil })
	if !errors.Is(err, context.Canceled) || n != 0 {
		t.Fatalf("err=%v attempts=%d, want Canceled and 0 attempts", err, n)
	}
}

func TestRetryDoCtxAbortsBetweenAttempts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		// Cancel while "sleeping": the next attempt must never run.
		Sleep: func(time.Duration) { cancel() },
	}
	n := 0
	err := p.DoCtx(ctx, "op", func() error { n++; return Transient(errors.New("flaky")) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 1 {
		t.Fatalf("attempts = %d, want 1 (cancelled during backoff)", n)
	}
}

func TestRetryDoCtxAbortsTimerBackoff(t *testing.T) {
	// No injected Sleep: the real timer path must select on ctx.Done.
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour}
	done := make(chan error, 1)
	go func() {
		done <- p.DoCtx(ctx, "op", func() error { return Transient(errors.New("flaky")) })
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DoCtx still sleeping an hour-long backoff after cancel")
	}
}
