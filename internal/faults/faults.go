// Package faults is the single fault surface of the platform: a
// deterministic, seedable fault injector that every remote boundary
// consults (federated queries, HDFS reads and writes, two-phase-commit
// delivery, map-reduce tasks, stream-sink flushes), an error taxonomy
// separating transient from fatal failures, a retry helper with capped
// exponential backoff and seeded jitter, and a circuit breaker with a
// half-open probe. The paper's platform promises integrated recovery for
// extended-storage transactions (§3.1) and usable federated plans over
// slow or flaky remote sources (§4.2, §4.4); this package is how the
// reproduction tests those promises.
//
// Sites are hierarchical dotted names: a schedule registered at
// "txn.commit" fires for "txn.commit.extstore:orders" too, while a
// schedule at the full name only fires for that exact boundary. The
// boundaries wired in this repository:
//
//	fed.query.<source>   shipped SDA queries (engine side, all adapters)
//	fed.call.<source>    virtual-function invocations (§4.3)
//	hdfs.write           namenode/datanode file writes
//	hdfs.read            block reads (per replica set)
//	txn.prepare.<part>   2PC phase 1 delivery
//	txn.commit.<part>    2PC phase 2 and in-doubt re-delivery
//	txn.abort.<part>     abort delivery during resolution
//	mapreduce.map        map-task execution
//	mapreduce.reduce     reduce-task execution
//	esp.flush            HDFS archive sink part-file flushes
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// classified wraps an error with its recovery class.
type classified struct {
	err       error
	transient bool
}

func (c *classified) Error() string { return c.err.Error() }
func (c *classified) Unwrap() error { return c.err }

// Transient marks an error as worth retrying: the operation may succeed
// on a later attempt (timeouts, dead replicas that may revive, injected
// chaos). Transient(nil) is nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, transient: true}
}

// Fatal marks an error as permanent: retrying cannot help (semantic
// errors, missing tables, capability violations). Fatal(nil) is nil.
func Fatal(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, transient: false}
}

// IsTransient reports whether err carries a transient classification
// anywhere in its chain. Unclassified errors are not transient: semantic
// failures must not be retried by default.
func IsTransient(err error) bool {
	var c *classified
	return errors.As(err, &c) && c.transient
}

// IsFatal reports whether err is explicitly classified fatal.
func IsFatal(err error) bool {
	var c *classified
	return errors.As(err, &c) && !c.transient
}

// ErrCircuitOpen is wrapped into errors returned when a circuit breaker
// rejects a call without attempting it.
var ErrCircuitOpen = errors.New("circuit breaker open")

// IsClassified reports whether err carries any fault classification —
// transient, fatal, or a breaker rejection. The chaos suite's invariant
// is that every failed operation returns a classified error.
func IsClassified(err error) bool {
	var c *classified
	return errors.As(err, &c) || errors.Is(err, ErrCircuitOpen)
}

// schedule is the pending fault plan for one site (or site prefix).
type schedule struct {
	skip    int           // calls to let through before failN starts draining
	failN   int           // remaining forced failures
	err     error         // error template; nil synthesizes one
	fatal   bool          // classify injected failures as fatal
	prob    float64       // per-call failure probability after failN drains
	latency time.Duration // added to every call at the site
}

// siteStats counts observations per full site name.
type siteStats struct {
	calls    int
	injected int
}

// Injector is a deterministic fault source. All mutation and consultation
// is serialized; randomness comes only from the seed, so a given schedule
// plus a given sequence of Check calls always yields the same faults. The
// zero value of *Injector (nil) is a valid no-op injector, which is how
// production paths run with no chaos configured.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	sites map[string]*schedule
	stats map[string]*siteStats
	sleep func(time.Duration)
}

// New creates an injector whose probabilistic decisions derive only from
// seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		sites: map[string]*schedule{},
		stats: map[string]*siteStats{},
		sleep: time.Sleep,
	}
}

// SetSleep replaces the latency sleeper (tests use a no-op to keep
// injected latency logical rather than wall-clock).
func (in *Injector) SetSleep(f func(time.Duration)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sleep = f
}

func (in *Injector) site(name string) *schedule {
	s, ok := in.sites[name]
	if !ok {
		s = &schedule{}
		in.sites[name] = s
	}
	return s
}

// FailN schedules the next n matching calls at site to fail with a
// transient injected error.
func (in *Injector) FailN(site string, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.site(site).failN = n
}

// FailWith schedules the next n matching calls at site to fail with err
// (classified transient).
func (in *Injector) FailWith(site string, n int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.site(site)
	s.failN = n
	s.err = err
}

// FailFatal schedules the next n matching calls at site to fail with a
// fatal injected error — the class retries must not absorb.
func (in *Injector) FailFatal(site string, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.site(site)
	s.failN = n
	s.fatal = true
}

// FailAfter lets the next skip matching calls at site succeed, then fails
// the n after that — the kill-at-a-chosen-point primitive of the crash
// harness: FailAfter("wal.fsync", k-1, 1<<30) wedges the site from its
// k-th call onward, so everything after the chosen point fails
// deterministically.
func (in *Injector) FailAfter(site string, skip, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.site(site)
	s.skip = skip
	s.failN = n
}

// FailProb makes every matching call at site fail with probability p,
// drawn from the injector's seeded stream.
func (in *Injector) FailProb(site string, p float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.site(site).prob = p
}

// Latency adds d of delay to every matching call at site.
func (in *Injector) Latency(site string, d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.site(site).latency = d
}

// Clear removes the schedule at exactly site.
func (in *Injector) Clear(site string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.sites, site)
}

// Reset removes every schedule (observation counters are kept).
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sites = map[string]*schedule{}
}

// Check is the boundary hook: every remote operation calls it with its
// full site name before doing real work. It applies scheduled latency and
// returns a classified injected error when the schedule says so, walking
// the site name hierarchically ("a.b.c" consults "a.b.c", then "a.b",
// then "a"). A nil injector checks nothing.
func (in *Injector) Check(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	st, ok := in.stats[site]
	if !ok {
		st = &siteStats{}
		in.stats[site] = st
	}
	st.calls++
	s := in.lookupLocked(site)
	var wait time.Duration
	var err error
	if s != nil {
		wait = s.latency
		fail := false
		switch {
		case s.skip > 0:
			s.skip--
		case s.failN > 0:
			s.failN--
			fail = true
		case s.prob > 0:
			fail = in.rng.Float64() < s.prob
		}
		if fail {
			st.injected++
			base := s.err
			if base == nil {
				base = fmt.Errorf("injected fault at %s", site)
			}
			if s.fatal {
				err = Fatal(base)
			} else {
				err = Transient(base)
			}
		}
	}
	sleep := in.sleep
	in.mu.Unlock()
	if wait > 0 {
		sleep(wait)
	}
	return err
}

// lookupLocked finds the most specific schedule for site.
func (in *Injector) lookupLocked(site string) *schedule {
	for {
		if s, ok := in.sites[site]; ok {
			return s
		}
		i := strings.LastIndexByte(site, '.')
		if i < 0 {
			return nil
		}
		site = site[:i]
	}
}

// Calls reports how many Check calls were observed at site or below it.
func (in *Injector) Calls(site string) int {
	return in.count(site, func(s *siteStats) int { return s.calls })
}

// Injected reports how many faults fired at site or below it.
func (in *Injector) Injected(site string) int {
	return in.count(site, func(s *siteStats) int { return s.injected })
}

func (in *Injector) count(site string, f func(*siteStats) int) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for name, s := range in.stats {
		if name == site || strings.HasPrefix(name, site+".") {
			n += f(s)
		}
	}
	return n
}

// seedFor derives a per-operation jitter seed that is stable for a given
// (policy seed, operation name) pair.
func seedFor(seed int64, op string) int64 {
	h := fnv.New64a()
	//lint:ignore errdrop fnv hash writes cannot fail
	_, _ = h.Write([]byte(op))
	return seed ^ int64(h.Sum64())
}
